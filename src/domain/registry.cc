#include "domain/registry.h"

#include "domain/arith_domain.h"
#include "domain/rel_domain.h"

namespace mmv {
namespace dom {

Result<StandardDomains> RegisterStandardDomains(DomainManager* manager,
                                                rel::Catalog* catalog) {
  StandardDomains handles;

  MMV_RETURN_NOT_OK(manager->Register(MakeArithDomain()));
  MMV_RETURN_NOT_OK(manager->Register(MakeTupleDomain()));
  MMV_RETURN_NOT_OK(manager->Register(MakeRelationalDomain("rel", catalog)));
  // Second relational alias so mediators can address two "different" DBMSs,
  // mirroring the paper's PARADOX vs DBASE split.
  MMV_RETURN_NOT_OK(
      manager->Register(MakeRelationalDomain("paradox", catalog)));
  MMV_RETURN_NOT_OK(manager->Register(MakeRelationalDomain("dbase", catalog)));

  std::unique_ptr<SpatialDomain> spatial = MakeSpatialDomain();
  handles.spatial = spatial.get();
  MMV_RETURN_NOT_OK(manager->Register(std::move(spatial)));

  MMV_ASSIGN_OR_RETURN(std::unique_ptr<FaceDomain> faces,
                       FaceDomain::Create("faces", catalog));
  handles.facextract = faces.get();
  MMV_RETURN_NOT_OK(manager->Register(std::move(faces)));

  MMV_ASSIGN_OR_RETURN(std::unique_ptr<TextDomain> text,
                       TextDomain::Create("text", catalog));
  handles.text = text.get();
  MMV_RETURN_NOT_OK(manager->Register(std::move(text)));

  return handles;
}

}  // namespace dom
}  // namespace mmv
