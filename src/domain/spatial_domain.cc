#include "domain/spatial_domain.h"

#include <cmath>
#include <functional>

namespace mmv {
namespace dom {

void SpatialDomain::AddMap(const std::string& name, double cx, double cy) {
  maps_[name] = Point{cx, cy};
  NoteLocalMutation();  // catalog-invisible state: move the epoch
}

void SpatialDomain::AddAddress(const std::string& key, double x, double y) {
  addresses_[key] = Point{x, y};
  NoteLocalMutation();  // catalog-invisible state: move the epoch
}

std::string SpatialDomain::AddressKey(const std::vector<Value>& args) {
  std::string key;
  for (const Value& v : args) {
    key += v.ToString();
    key += '|';
  }
  return key;
}

std::pair<double, double> SpatialDomain::SyntheticGeocode(
    const std::string& key) {
  size_t h = std::hash<std::string>{}(key);
  double x = static_cast<double>(h % 1000003ULL) / 1000003.0 * 1000.0;
  double y = static_cast<double>((h / 1000003ULL) % 1000003ULL) / 1000003.0 *
             1000.0;
  return {x, y};
}

Result<DcaResult> SpatialDomain::Call(const std::string& fn,
                                      const std::vector<Value>& args) {
  if (fn == "locateaddress") {
    if (args.empty()) {
      return Status::InvalidArgument("spatial:locateaddress needs >=1 arg");
    }
    std::string key = AddressKey(args);
    double x, y;
    auto it = addresses_.find(key);
    if (it != addresses_.end()) {
      x = it->second.x;
      y = it->second.y;
    } else {
      std::tie(x, y) = SyntheticGeocode(key);
    }
    return DcaResult::Finite({Value(ValueList{Value(x), Value(y)})});
  }
  if (fn == "range") {
    if (args.size() != 4 || !args[0].is_string() || !args[1].is_numeric() ||
        !args[2].is_numeric() || !args[3].is_numeric()) {
      return Status::InvalidArgument("spatial:range(map, x, y, radius)");
    }
    auto it = maps_.find(args[0].as_string());
    if (it == maps_.end()) {
      return Status::NotFound("no map named " + args[0].as_string());
    }
    double dx = args[1].numeric() - it->second.x;
    double dy = args[2].numeric() - it->second.y;
    double r = args[3].numeric();
    if (dx * dx + dy * dy <= r * r) {
      return DcaResult::Finite({Value(true)});
    }
    return DcaResult::Finite({});
  }
  if (fn == "distance") {
    if (args.size() != 4 || !args[0].is_numeric() || !args[1].is_numeric() ||
        !args[2].is_numeric() || !args[3].is_numeric()) {
      return Status::InvalidArgument("spatial:distance(x1, y1, x2, y2)");
    }
    double dx = args[0].numeric() - args[2].numeric();
    double dy = args[1].numeric() - args[3].numeric();
    return DcaResult::Finite({Value(std::sqrt(dx * dx + dy * dy))});
  }
  return Status::NotFound("spatial has no function " + fn);
}

std::unique_ptr<SpatialDomain> MakeSpatialDomain() {
  auto d = std::make_unique<SpatialDomain>();
  d->AddMap("dcareamap", 500.0, 500.0);
  return d;
}

}  // namespace dom
}  // namespace mmv
