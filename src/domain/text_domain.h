// The `text` domain: a tiny keyword-search text database (HERMES integrates
// "a text database"; this exercises a further kind of set-valued source).

#ifndef MMV_DOMAIN_TEXT_DOMAIN_H_
#define MMV_DOMAIN_TEXT_DOMAIN_H_

#include <memory>
#include <string>

#include "domain/domain.h"

namespace mmv {
namespace dom {

/// \brief Time-versioned keyword-search domain over a documents table.
///
/// Functions:
///   match(keyword)   -> doc ids whose text contains the keyword
///   words(doc_id)    -> distinct words of the document
class TextDomain : public Domain {
 public:
  /// \brief Creates the backing table `<name>_documents` in \p catalog.
  static Result<std::unique_ptr<TextDomain>> Create(std::string name,
                                                    rel::Catalog* catalog);

  /// \brief Adds a document at the current tick.
  Status AddDocument(const std::string& doc_id, const std::string& text);

  /// \brief Removes a document at the current tick.
  Status RemoveDocument(const std::string& doc_id, const std::string& text);

  Result<DcaResult> Call(const std::string& fn,
                         const std::vector<Value>& args) override;
  Result<DcaResult> CallAt(const std::string& fn,
                           const std::vector<Value>& args,
                           int64_t tick) override;

  std::vector<std::string> Functions() const override {
    return {"match", "words"};
  }

  /// Evaluation only reads the backing catalog table (Scan/RowsAt and the
  /// RW-locked lazy index); AddDocument/RemoveDocument are writer-side.
  bool ConcurrentCallSafe() const override { return true; }

 private:
  TextDomain(std::string name, rel::Catalog* catalog)
      : Domain(std::move(name)), catalog_(catalog) {}

  std::string DocTable() const { return name() + "_documents"; }

  rel::Catalog* catalog_;
};

}  // namespace dom
}  // namespace mmv

#endif  // MMV_DOMAIN_TEXT_DOMAIN_H_
