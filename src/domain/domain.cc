#include "domain/domain.h"

#include <algorithm>

namespace mmv {
namespace dom {

Status DomainManager::Register(std::unique_ptr<Domain> domain) {
  const std::string& name = domain->name();
  if (domains_.count(name)) {
    return Status::AlreadyExists("domain " + name + " already registered");
  }
  domains_[name] = std::move(domain);
  return Status::OK();
}

Result<Domain*> DomainManager::Get(const std::string& name) {
  auto it = domains_.find(name);
  if (it == domains_.end()) {
    return Status::NotFound("no domain named " + name);
  }
  return it->second.get();
}

Result<DcaResult> DomainManager::Evaluate(const std::string& domain,
                                          const std::string& function,
                                          const std::vector<Value>& args) {
  return EvaluateAt(domain, function, args, EffectiveTime());
}

Result<DcaResult> DomainManager::EvaluateAt(const std::string& domain,
                                            const std::string& function,
                                            const std::vector<Value>& args,
                                            int64_t tick) {
  // Historical snapshots are immutable; the current tick may still mutate.
  const bool cacheable = cache_enabled_ && tick < clock_->now();
  std::string key;
  if (cacheable) {
    key = domain;
    key += ':';
    key += function;
    key += '@';
    key += std::to_string(tick);
    for (const Value& v : args) {
      key += '|';
      key += v.ToString();
    }
    auto it = call_cache_.find(key);
    if (it != call_cache_.end()) {
      cache_hits_++;
      return it->second;
    }
  }
  MMV_ASSIGN_OR_RETURN(Domain * d, Get(domain));
  call_count_.fetch_add(1, std::memory_order_relaxed);
  MMV_ASSIGN_OR_RETURN(DcaResult result, d->CallAt(function, args, tick));
  if (cacheable) call_cache_[key] = result;
  return result;
}

Result<FunctionDelta> DomainManager::Delta(const std::string& domain,
                                           const std::string& function,
                                           const std::vector<Value>& args,
                                           int64_t t0, int64_t t1) {
  MMV_ASSIGN_OR_RETURN(DcaResult before, EvaluateAt(domain, function, args, t0));
  MMV_ASSIGN_OR_RETURN(DcaResult after, EvaluateAt(domain, function, args, t1));
  if (before.kind != DcaResultKind::kFinite ||
      after.kind != DcaResultKind::kFinite) {
    return Status::InvalidArgument(
        "Delta requires finite-set results for " + domain + ":" + function);
  }
  FunctionDelta delta;
  // Multiset differences.
  std::vector<bool> matched(before.values.size(), false);
  for (const Value& v : after.values) {
    bool found = false;
    for (size_t i = 0; i < before.values.size(); ++i) {
      if (!matched[i] && before.values[i] == v) {
        matched[i] = true;
        found = true;
        break;
      }
    }
    if (!found) delta.added.push_back(v);
  }
  for (size_t i = 0; i < before.values.size(); ++i) {
    if (!matched[i]) delta.removed.push_back(before.values[i]);
  }
  return delta;
}

}  // namespace dom
}  // namespace mmv
