#include "domain/face_domain.h"

namespace mmv {
namespace dom {

namespace {

std::string SurveillanceFile(const std::string& photo_id, int64_t face_id) {
  return "sv_" + photo_id + "_" + std::to_string(face_id) + ".img";
}

std::string LibraryFile(int64_t face_id) {
  return "db_" + std::to_string(face_id) + ".img";
}

}  // namespace

Result<std::unique_ptr<FaceDomain>> FaceDomain::Create(std::string name,
                                                       rel::Catalog* catalog) {
  std::unique_ptr<FaceDomain> d(new FaceDomain(std::move(name), catalog));
  MMV_RETURN_NOT_OK(catalog
                        ->CreateTable(rel::Schema{
                            d->SurveillanceTable(),
                            {"dataset", "photo_id", "face_id", "file"}})
                        .status());
  MMV_RETURN_NOT_OK(catalog
                        ->CreateTable(rel::Schema{
                            d->MugshotTable(), {"person", "face_id", "file"}})
                        .status());
  return d;
}

Result<std::string> FaceDomain::AddSurveillanceFace(
    const std::string& dataset, const std::string& photo_id,
    int64_t face_id) {
  std::string file = SurveillanceFile(photo_id, face_id);
  MMV_RETURN_NOT_OK(catalog_->Insert(
      SurveillanceTable(),
      {Value(dataset), Value(photo_id), Value(face_id), Value(file)}));
  return file;
}

Status FaceDomain::RemoveSurveillanceFace(const std::string& dataset,
                                          const std::string& photo_id,
                                          int64_t face_id) {
  return catalog_->Delete(
      SurveillanceTable(),
      {Value(dataset), Value(photo_id), Value(face_id),
       Value(SurveillanceFile(photo_id, face_id))});
}

Result<std::string> FaceDomain::AddPerson(const std::string& person_name,
                                          int64_t face_id) {
  std::string file = LibraryFile(face_id);
  MMV_RETURN_NOT_OK(catalog_->Insert(
      MugshotTable(), {Value(person_name), Value(face_id), Value(file)}));
  return file;
}

Result<int64_t> FaceDomain::FaceIdOf(const std::string& file,
                                     int64_t tick) const {
  MMV_ASSIGN_OR_RETURN(const rel::Table* sv,
                       static_cast<const rel::Catalog*>(catalog_)->GetTable(
                           SurveillanceTable()));
  for (const rel::Row& r : sv->RowsAt(tick)) {
    if (r[3].is_string() && r[3].as_string() == file) return r[2].as_int();
  }
  MMV_ASSIGN_OR_RETURN(const rel::Table* mg,
                       static_cast<const rel::Catalog*>(catalog_)->GetTable(
                           MugshotTable()));
  for (const rel::Row& r : mg->RowsAt(tick)) {
    if (r[2].is_string() && r[2].as_string() == file) return r[1].as_int();
  }
  return Status::NotFound("unknown face file " + file);
}

Result<DcaResult> FaceDomain::Call(const std::string& fn,
                                   const std::vector<Value>& args) {
  return CallAt(fn, args, catalog_->clock().now());
}

Result<DcaResult> FaceDomain::CallAt(const std::string& fn,
                                     const std::vector<Value>& args,
                                     int64_t tick) {
  if (fn == "segmentface") {
    if (args.size() != 1 || !args[0].is_string()) {
      return Status::InvalidArgument(name() + ":segmentface(dataset)");
    }
    MMV_ASSIGN_OR_RETURN(const rel::Table* sv,
                         static_cast<const rel::Catalog*>(catalog_)->GetTable(
                             SurveillanceTable()));
    std::vector<Value> out;
    for (const rel::Row& r : sv->RowsAt(tick)) {
      if (r[0] == args[0]) {
        // [result_file, origin_photo] — the pair shape of the paper.
        out.push_back(Value(ValueList{r[3], r[1]}));
      }
    }
    return DcaResult::Finite(std::move(out));
  }
  if (fn == "matchface") {
    if (args.size() != 2 || !args[0].is_string() || !args[1].is_string()) {
      return Status::InvalidArgument(name() + ":matchface(file1, file2)");
    }
    Result<int64_t> a = FaceIdOf(args[0].as_string(), tick);
    Result<int64_t> b = FaceIdOf(args[1].as_string(), tick);
    if (!a.ok() || !b.ok()) return DcaResult::Finite({});
    if (*a == *b) return DcaResult::Finite({Value(true)});
    return DcaResult::Finite({});
  }
  if (fn == "findface") {
    if (args.size() != 1 || !args[0].is_string()) {
      return Status::InvalidArgument(name() + ":findface(person)");
    }
    MMV_ASSIGN_OR_RETURN(const rel::Table* mg,
                         static_cast<const rel::Catalog*>(catalog_)->GetTable(
                             MugshotTable()));
    std::vector<Value> out;
    for (const rel::Row& r : mg->RowsAt(tick)) {
      if (r[0] == args[0]) out.push_back(r[2]);
    }
    return DcaResult::Finite(std::move(out));
  }
  if (fn == "findname") {
    if (args.size() != 1 || !args[0].is_string()) {
      return Status::InvalidArgument(name() + ":findname(face_file)");
    }
    // Resolve the face behind the file (surveillance or library), then
    // report every person registered with that face.
    Result<int64_t> fid = FaceIdOf(args[0].as_string(), tick);
    if (!fid.ok()) return DcaResult::Finite({});
    MMV_ASSIGN_OR_RETURN(const rel::Table* mg,
                         static_cast<const rel::Catalog*>(catalog_)->GetTable(
                             MugshotTable()));
    std::vector<Value> out;
    for (const rel::Row& r : mg->RowsAt(tick)) {
      if (r[1].is_int() && r[1].as_int() == *fid) out.push_back(r[0]);
    }
    return DcaResult::Finite(std::move(out));
  }
  return Status::NotFound(name() + " has no function " + fn);
}

}  // namespace dom
}  // namespace mmv
