// The `facextract` / `facedb` pair of the law-enforcement example, as one
// synthetic, time-versioned domain backed by catalog tables.
//
// The substitution (DESIGN.md Section 5): the paper's face-recognition
// packages return sets of mugshot files; we generate a synthetic catalog of
// surveillance photos and known faces with a controllable match structure.
// Adding surveillance photos at a later tick reproduces exactly the
// "surveillance data has been extended" update of Section 3 / Section 4.

#ifndef MMV_DOMAIN_FACE_DOMAIN_H_
#define MMV_DOMAIN_FACE_DOMAIN_H_

#include <memory>
#include <string>

#include "domain/domain.h"

namespace mmv {
namespace dom {

/// \brief Synthetic face-recognition domain.
///
/// Functions (all evaluated against table state as of the query tick):
///   segmentface(dataset)   -> { [mugshot_file, origin_photo], ... }
///   matchface(f1, f2)      -> { true } iff both files show the same face
///   findface(person_name)  -> { face_file, ... } mugshot library entries
///   findname(face_file)    -> { person_name, ... }
class FaceDomain : public Domain {
 public:
  /// \brief Creates backing tables `<name>_surveillance` and
  /// `<name>_mugshots` in \p catalog.
  static Result<std::unique_ptr<FaceDomain>> Create(std::string name,
                                                    rel::Catalog* catalog);

  /// \brief Records that \p photo_id in \p dataset contains \p face_id;
  /// returns the generated mugshot file name.
  Result<std::string> AddSurveillanceFace(const std::string& dataset,
                                          const std::string& photo_id,
                                          int64_t face_id);

  /// \brief Removes a surveillance observation (e.g. "the photograph was a
  /// forgery").
  Status RemoveSurveillanceFace(const std::string& dataset,
                                const std::string& photo_id, int64_t face_id);

  /// \brief Registers \p person_name with \p face_id in the mugshot
  /// library; returns the library file name.
  Result<std::string> AddPerson(const std::string& person_name,
                                int64_t face_id);

  Result<DcaResult> Call(const std::string& fn,
                         const std::vector<Value>& args) override;
  Result<DcaResult> CallAt(const std::string& fn,
                           const std::vector<Value>& args,
                           int64_t tick) override;

  std::vector<std::string> Functions() const override {
    return {"segmentface", "matchface", "findface", "findname"};
  }

  /// Evaluation only reads the backing catalog tables (RowsAt replays);
  /// the Add/Remove mutators are writer-side.
  bool ConcurrentCallSafe() const override { return true; }

 private:
  FaceDomain(std::string name, rel::Catalog* catalog)
      : Domain(std::move(name)), catalog_(catalog) {}

  std::string SurveillanceTable() const { return name() + "_surveillance"; }
  std::string MugshotTable() const { return name() + "_mugshots"; }

  /// \brief face id encoded in a generated file name, or -1.
  Result<int64_t> FaceIdOf(const std::string& file, int64_t tick) const;

  rel::Catalog* catalog_;
};

}  // namespace dom
}  // namespace mmv

#endif  // MMV_DOMAIN_FACE_DOMAIN_H_
