#include "domain/rel_domain.h"

#include <algorithm>

namespace mmv {
namespace dom {

namespace {

class RelationalDomain : public Domain {
 public:
  RelationalDomain(std::string name, rel::Catalog* catalog)
      : Domain(std::move(name)), catalog_(catalog) {}

  Result<DcaResult> Call(const std::string& fn,
                         const std::vector<Value>& args) override {
    return CallAt(fn, args, catalog_->clock().now());
  }

  Result<DcaResult> CallAt(const std::string& fn,
                           const std::vector<Value>& args,
                           int64_t tick) override {
    if (fn == "field") {
      return Field(args);
    }
    if (args.empty() || !args[0].is_string()) {
      return Status::InvalidArgument(name() + ":" + fn +
                                     " expects a table name first argument");
    }
    MMV_ASSIGN_OR_RETURN(const rel::Table* table,
                         static_cast<const rel::Catalog*>(catalog_)->GetTable(
                             args[0].as_string()));

    // As-of snapshot: when tick is the current clock we use the live table
    // (indexed); otherwise we replay the log.
    const bool current = (tick >= catalog_->clock().now());

    if (fn == "select_eq") {
      if (args.size() != 3 || !args[1].is_string()) {
        return Status::InvalidArgument(
            name() + ":select_eq(table, column, value)");
      }
      if (current) {
        MMV_ASSIGN_OR_RETURN(std::vector<rel::Row> rows,
                             table->SelectEq(args[1].as_string(), args[2]));
        return RowsResult(rows);
      }
      return FilteredSnapshot(table, tick, args[1].as_string(),
                              [&](const Value& v) { return v == args[2]; });
    }
    if (fn == "select_range") {
      if (args.size() != 4 || !args[1].is_string() || !args[2].is_numeric() ||
          !args[3].is_numeric()) {
        return Status::InvalidArgument(
            name() + ":select_range(table, column, lo, hi)");
      }
      double lo = args[2].numeric(), hi = args[3].numeric();
      if (current) {
        MMV_ASSIGN_OR_RETURN(
            std::vector<rel::Row> rows,
            table->SelectRange(args[1].as_string(), lo, hi));
        return RowsResult(rows);
      }
      return FilteredSnapshot(table, tick, args[1].as_string(),
                              [&](const Value& v) {
                                return v.is_numeric() && v.numeric() >= lo &&
                                       v.numeric() <= hi;
                              });
    }
    if (fn == "scan") {
      std::vector<rel::Row> rows =
          current ? table->Scan() : table->RowsAt(tick);
      return RowsResult(rows);
    }
    if (fn == "project") {
      if (args.size() != 2 || !args[1].is_string()) {
        return Status::InvalidArgument(name() + ":project(table, column)");
      }
      int col = table->schema().ColumnIndex(args[1].as_string());
      if (col < 0) {
        return Status::NotFound("no column " + args[1].as_string());
      }
      std::vector<rel::Row> rows =
          current ? table->Scan() : table->RowsAt(tick);
      std::vector<Value> out;
      out.reserve(rows.size());
      for (const rel::Row& r : rows) out.push_back(r[static_cast<size_t>(col)]);
      // Deduplicate (set semantics for projections).
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
      return DcaResult::Finite(std::move(out));
    }
    if (fn == "count") {
      std::vector<rel::Row> rows =
          current ? table->Scan() : table->RowsAt(tick);
      return DcaResult::Finite({Value(static_cast<int64_t>(rows.size()))});
    }
    return Status::NotFound(name() + " has no function " + fn);
  }

  std::vector<std::string> Functions() const override {
    return {"select_eq", "select_range", "scan", "project", "field", "count"};
  }

  // Evaluation only reads catalog tables; SelectEq's lazy index build is
  // RW-locked inside Table, so concurrent readers are safe.
  bool ConcurrentCallSafe() const override { return true; }

 private:
  static Result<DcaResult> Field(const std::vector<Value>& args) {
    if (args.size() != 2 || !args[0].is_list() || !args[1].is_int()) {
      return Status::InvalidArgument("field(tuple, index)");
    }
    int64_t i = args[1].as_int();
    const ValueList& l = args[0].as_list();
    if (i < 0 || static_cast<size_t>(i) >= l.size()) {
      return DcaResult::Finite({});
    }
    return DcaResult::Finite({l[static_cast<size_t>(i)]});
  }

  template <typename Pred>
  Result<DcaResult> FilteredSnapshot(const rel::Table* table, int64_t tick,
                                     const std::string& column, Pred pred) {
    int col = table->schema().ColumnIndex(column);
    if (col < 0) return Status::NotFound("no column " + column);
    std::vector<rel::Row> rows = table->RowsAt(tick);
    std::vector<rel::Row> out;
    for (rel::Row& r : rows) {
      if (pred(r[static_cast<size_t>(col)])) out.push_back(std::move(r));
    }
    return RowsResult(out);
  }

  static Result<DcaResult> RowsResult(const std::vector<rel::Row>& rows) {
    std::vector<Value> out;
    out.reserve(rows.size());
    for (const rel::Row& r : rows) out.push_back(rel::RowToValue(r));
    return DcaResult::Finite(std::move(out));
  }

  rel::Catalog* catalog_;
};

class TupleDomain : public Domain {
 public:
  TupleDomain() : Domain("tuple") {}

  Result<DcaResult> Call(const std::string& fn,
                         const std::vector<Value>& args) override {
    if (fn == "get") {
      if (args.size() != 2 || !args[0].is_list() || !args[1].is_int()) {
        return Status::InvalidArgument("tuple:get(tuple, index)");
      }
      int64_t i = args[1].as_int();
      const ValueList& l = args[0].as_list();
      if (i < 0 || static_cast<size_t>(i) >= l.size()) {
        return DcaResult::Finite({});
      }
      return DcaResult::Finite({l[static_cast<size_t>(i)]});
    }
    if (fn == "size") {
      if (args.size() != 1 || !args[0].is_list()) {
        return Status::InvalidArgument("tuple:size(tuple)");
      }
      return DcaResult::Finite(
          {Value(static_cast<int64_t>(args[0].as_list().size()))});
    }
    return Status::NotFound("tuple has no function " + fn);
  }

  std::vector<std::string> Functions() const override {
    return {"get", "size"};
  }

  // Stateless: pure projection of the argument tuple.
  bool ConcurrentCallSafe() const override { return true; }
};

}  // namespace

std::unique_ptr<Domain> MakeRelationalDomain(std::string name,
                                             rel::Catalog* catalog) {
  return std::make_unique<RelationalDomain>(std::move(name), catalog);
}

std::unique_ptr<Domain> MakeTupleDomain() {
  return std::make_unique<TupleDomain>();
}

}  // namespace dom
}  // namespace mmv
