// Domains (paper Section 2.1): named collections of functions over data
// objects. A domain call d:f(args) denotes a set of values; the DCA-atom
// in(X, d:f(args)) constrains X to that set.
//
// Domains are *time-versioned*: CallAt(f, args, t) returns the behaviour
// f_t of Section 4, and DomainManager::Delta computes f+ / f- (eqs. 6, 7).

#ifndef MMV_DOMAIN_DOMAIN_H_
#define MMV_DOMAIN_DOMAIN_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "constraint/solver.h"
#include "relational/catalog.h"

namespace mmv {
namespace dom {

/// \brief Abstract external source exposing set-valued functions.
class Domain {
 public:
  explicit Domain(std::string name) : name_(std::move(name)) {}
  virtual ~Domain() = default;

  /// \brief Domain name used in DCA-atoms (e.g. "arith", "rel").
  const std::string& name() const { return name_; }

  /// \brief Evaluates \p function on ground \p args at the current state.
  virtual Result<DcaResult> Call(const std::string& function,
                                 const std::vector<Value>& args) = 0;

  /// \brief Evaluates at historical tick \p tick (the paper's f_t).
  /// Stateless domains ignore the tick.
  virtual Result<DcaResult> CallAt(const std::string& function,
                                   const std::vector<Value>& args,
                                   int64_t tick) {
    (void)tick;
    return Call(function, args);
  }

  /// \brief Names of the functions this domain implements.
  virtual std::vector<std::string> Functions() const = 0;

  /// \brief True when Call()/CallAt() never mutate domain state — pure
  /// reads of the backing store — so concurrent evaluations are safe while
  /// no writer runs (the single-writer window StateEpoch validates).
  /// Defaults to false: a domain must opt in explicitly, because a wrong
  /// answer here is a data race, not a wrong result. Note this is a claim
  /// about the EVALUATION path only; registration-time mutators
  /// (AddMap/AddAddress-style setup) stay writer-side as ever.
  virtual bool ConcurrentCallSafe() const { return false; }

  /// \brief Count of domain-LOCAL state mutations: writes that change
  /// Call() results but go through neither the catalog nor the clock
  /// (e.g. SpatialDomain::AddAddress). DomainManager::StateEpoch folds
  /// these in so epoch-gated memos observe them.
  int64_t local_mutations() const { return local_mutations_; }

 protected:
  /// \brief Implementations call this from every mutator of internal
  /// state that is invisible to the catalog clock.
  void NoteLocalMutation() { ++local_mutations_; }

 private:
  std::string name_;
  int64_t local_mutations_ = 0;
};

/// \brief f+ / f- of one ground call between two ticks (paper eqs. 6, 7).
struct FunctionDelta {
  std::vector<Value> added;    ///< f+ : in f_{t1} but not f_{t0}
  std::vector<Value> removed;  ///< f- : in f_{t0} but not f_{t1}

  bool empty() const { return added.empty() && removed.empty(); }
};

/// \brief Owns all registered domains and routes DCA evaluation to them.
///
/// Implements DcaEvaluator so a Solver can be pointed directly at it.
/// Evaluation happens at the shared clock's current tick unless a time is
/// pinned (used to reproduce "the view materialized at time t").
class DomainManager : public DcaEvaluator {
 public:
  explicit DomainManager(rel::Clock* clock) : clock_(clock) {}

  /// \brief Registers \p domain; AlreadyExists on name clash.
  Status Register(std::unique_ptr<Domain> domain);

  /// \brief Looks up a domain by name.
  Result<Domain*> Get(const std::string& name);

  /// \brief DcaEvaluator hook: evaluates at EffectiveTime().
  Result<DcaResult> Evaluate(const std::string& domain,
                             const std::string& function,
                             const std::vector<Value>& args) override;

  /// \brief Evaluates at an explicit tick.
  Result<DcaResult> EvaluateAt(const std::string& domain,
                               const std::string& function,
                               const std::vector<Value>& args, int64_t tick);

  /// \brief Pins all Evaluate() calls to \p tick; pass -1 to unpin.
  void PinTime(int64_t tick) { pinned_ = tick; }

  /// \brief The tick Evaluate() uses: pinned time, or the clock's now.
  int64_t EffectiveTime() const {
    return pinned_ >= 0 ? pinned_ : clock_->now();
  }

  /// \brief DcaEvaluator state epoch: the effective tick combined with the
  /// clock's same-tick mutation counter and every registered domain's
  /// local-mutation counter. Tick alone would miss (a) the convenience
  /// Catalog::Insert/Delete path, which writes at the CURRENT tick
  /// without advancing the clock, and (b) domain-internal state the
  /// catalog never sees (Domain::NoteLocalMutation) — live evaluations
  /// change while now() stands still either way. Folding the counters in
  /// is conservatively sound: a live write spuriously flushes memos of
  /// pinned-historical state (which that write cannot touch), but a
  /// stale-serving epoch would be unsound. The packing (done in uint64_t
  /// — no signed-shift UB) is injective while the summed mutation count
  /// and the tick stay below 2^32, and compared only for equality (see
  /// DcaEvaluator::StateEpoch: pinning moves it backward).
  int64_t StateEpoch() const override {
    int64_t mutations = clock_->mutations();
    for (const auto& [name, domain] : domains_) {
      mutations += domain->local_mutations();
    }
    return static_cast<int64_t>(
        (static_cast<uint64_t>(mutations) << 32) ^
        (static_cast<uint64_t>(EffectiveTime()) & 0xffffffffull));
  }

  /// \brief f+ / f- of a ground call between \p t0 and \p t1. Fails for
  /// calls whose results are not finite sets (e.g. symbolic intervals).
  Result<FunctionDelta> Delta(const std::string& domain,
                              const std::string& function,
                              const std::vector<Value>& args, int64_t t0,
                              int64_t t1);

  rel::Clock* clock() { return clock_; }

  /// \brief Total number of domain calls evaluated (for benchmarks).
  int64_t call_count() const {
    return call_count_.load(std::memory_order_relaxed);
  }
  void ResetCallCount() { call_count_.store(0, std::memory_order_relaxed); }

  /// \brief DcaEvaluator hook: concurrent evaluation is safe exactly when
  /// every registered domain's evaluation path is a pure read AND the call
  /// cache is off (EvaluateAt fills call_cache_ when enabled — a write).
  /// The call counter is atomic, so it is not a disqualifier. Parallel
  /// passes that get true here evaluate through this manager directly,
  /// without the MutexDcaEvaluator serialization, under the single-writer
  /// epoch contract (StateEpoch captured before the fan-out, re-checked
  /// after, loud failure on mismatch).
  bool ConcurrentReadSafe() const override {
    if (cache_enabled_) return false;
    for (const auto& [name, domain] : domains_) {
      if (!domain->ConcurrentCallSafe()) return false;
    }
    return true;
  }

  /// \brief Enables memoization of *historical* evaluations (tick strictly
  /// before the clock's now — those snapshots are immutable, so the cache
  /// never goes stale; current-tick calls are always evaluated live).
  ///
  /// This realizes the paper's Section 5 remark that materializing the
  /// external function calls (Kemper/Kilger/Moerkotte-style function
  /// materialization) complements the view-level machinery.
  void EnableCallCache(bool enabled) {
    cache_enabled_ = enabled;
    if (!enabled) call_cache_.clear();
  }

  /// \brief Number of cache hits served (for benchmarks).
  int64_t cache_hits() const { return cache_hits_; }

 private:
  rel::Clock* clock_;
  std::unordered_map<std::string, std::unique_ptr<Domain>> domains_;
  int64_t pinned_ = -1;
  // Atomic so the ConcurrentReadSafe() fast path can count calls from
  // worker threads; relaxed ordering is enough for a statistics counter.
  std::atomic<int64_t> call_count_{0};
  bool cache_enabled_ = false;
  int64_t cache_hits_ = 0;
  std::unordered_map<std::string, DcaResult> call_cache_;
};

}  // namespace dom
}  // namespace mmv

#endif  // MMV_DOMAIN_DOMAIN_H_
