// The `spatial` domain: synthetic geocoder + range predicate standing in for
// the spatial data management package of the law-enforcement example
// (clause (2): locateaddress / range).

#ifndef MMV_DOMAIN_SPATIAL_DOMAIN_H_
#define MMV_DOMAIN_SPATIAL_DOMAIN_H_

#include <memory>
#include <string>

#include "domain/domain.h"

namespace mmv {
namespace dom {

/// \brief Synthetic spatial reasoning domain.
///
/// Functions:
///   locateaddress(streetnum, streetname, cityname, statename, zipcode)
///       -> { [x, y] }   deterministic synthetic geocoding
///   range(mapname, x, y, radius)
///       -> { true } if (x,y) lies within radius of the named map's center,
///          {} otherwise — the boolean-DCA idiom in(true, spatial:range(...))
///   distance(x1, y1, x2, y2) -> { euclidean distance }
class SpatialDomain : public Domain {
 public:
  SpatialDomain() : Domain("spatial") {}

  /// \brief Registers a named map centered at (cx, cy).
  void AddMap(const std::string& name, double cx, double cy);

  /// \brief Overrides the synthetic geocoder for one address key. The key is
  /// the concatenation of the five address fields.
  void AddAddress(const std::string& key, double x, double y);

  Result<DcaResult> Call(const std::string& fn,
                         const std::vector<Value>& args) override;

  std::vector<std::string> Functions() const override {
    return {"locateaddress", "range", "distance"};
  }

  /// Call() only reads maps_/addresses_; AddMap/AddAddress are setup-time
  /// writers, outside the single-writer evaluation window.
  bool ConcurrentCallSafe() const override { return true; }

  /// \brief The deterministic synthetic geocode of an address key:
  /// hash-derived coordinates in [0, 1000) x [0, 1000).
  static std::pair<double, double> SyntheticGeocode(const std::string& key);

  /// \brief The key under which locateaddress(args) looks up an address —
  /// use with AddAddress to pin coordinates for specific addresses.
  static std::string AddressKey(const std::vector<Value>& args);

 private:
  struct Point {
    double x, y;
  };
  std::unordered_map<std::string, Point> maps_;
  std::unordered_map<std::string, Point> addresses_;
};

/// \brief Creates a spatial domain with a default "dcareamap" centered at
/// (500, 500).
std::unique_ptr<SpatialDomain> MakeSpatialDomain();

}  // namespace dom
}  // namespace mmv

#endif  // MMV_DOMAIN_SPATIAL_DOMAIN_H_
