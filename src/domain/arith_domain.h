// The `arith` constraint domain (paper Example 2, Kanellakis-style
// constrained databases).
//
// Functions returning infinite sets (greater, less, ...) yield *symbolic
// interval* results instead of enumerations, matching the paper's remark
// that "the entire — infinite — set need not be computed all at once".

#ifndef MMV_DOMAIN_ARITH_DOMAIN_H_
#define MMV_DOMAIN_ARITH_DOMAIN_H_

#include <memory>

#include "domain/domain.h"

namespace mmv {
namespace dom {

/// \brief Creates the stateless `arith` domain.
///
/// Functions:
///   greater(x)      -> integers strictly greater than x (interval)
///   greater_eq(x)   -> integers >= x (interval)
///   less(x)         -> integers strictly less than x (interval)
///   less_eq(x)      -> integers <= x (interval)
///   between(a, b)   -> integers in [a, b] (interval)
///   real_between(a, b) -> reals in [a, b] (interval)
///   plus(x, y)      -> { x + y }
///   minus(x, y)     -> { x - y }
///   times(x, y)     -> { x * y }
///   div(x, y)       -> { x / y } ({} when y == 0)
///   mod(x, y)       -> { x mod y } ({} when y == 0; integer args)
///   abs(x)          -> { |x| }
///   min(x, y) / max(x, y) -> singleton
std::unique_ptr<Domain> MakeArithDomain();

}  // namespace dom
}  // namespace mmv

#endif  // MMV_DOMAIN_ARITH_DOMAIN_H_
