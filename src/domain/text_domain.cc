#include "domain/text_domain.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace mmv {
namespace dom {

Result<std::unique_ptr<TextDomain>> TextDomain::Create(std::string name,
                                                       rel::Catalog* catalog) {
  std::unique_ptr<TextDomain> d(new TextDomain(std::move(name), catalog));
  MMV_RETURN_NOT_OK(
      catalog->CreateTable(rel::Schema{d->DocTable(), {"doc_id", "text"}})
          .status());
  return d;
}

Status TextDomain::AddDocument(const std::string& doc_id,
                               const std::string& text) {
  return catalog_->Insert(DocTable(), {Value(doc_id), Value(text)});
}

Status TextDomain::RemoveDocument(const std::string& doc_id,
                                  const std::string& text) {
  return catalog_->Delete(DocTable(), {Value(doc_id), Value(text)});
}

Result<DcaResult> TextDomain::Call(const std::string& fn,
                                   const std::vector<Value>& args) {
  return CallAt(fn, args, catalog_->clock().now());
}

Result<DcaResult> TextDomain::CallAt(const std::string& fn,
                                     const std::vector<Value>& args,
                                     int64_t tick) {
  MMV_ASSIGN_OR_RETURN(
      const rel::Table* docs,
      static_cast<const rel::Catalog*>(catalog_)->GetTable(DocTable()));
  if (fn == "match") {
    if (args.size() != 1 || !args[0].is_string()) {
      return Status::InvalidArgument(name() + ":match(keyword)");
    }
    const std::string& kw = args[0].as_string();
    std::vector<Value> out;
    for (const rel::Row& r : docs->RowsAt(tick)) {
      if (r[1].is_string() && r[1].as_string().find(kw) != std::string::npos) {
        out.push_back(r[0]);
      }
    }
    return DcaResult::Finite(std::move(out));
  }
  if (fn == "words") {
    if (args.size() != 1 || !args[0].is_string()) {
      return Status::InvalidArgument(name() + ":words(doc_id)");
    }
    std::vector<Value> out;
    for (const rel::Row& r : docs->RowsAt(tick)) {
      if (r[0] == args[0] && r[1].is_string()) {
        std::istringstream is(r[1].as_string());
        std::string w;
        while (is >> w) out.push_back(Value(w));
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return DcaResult::Finite(std::move(out));
  }
  return Status::NotFound(name() + " has no function " + fn);
}

}  // namespace dom
}  // namespace mmv
