// The `rel` domain: exposes catalog tables as set-valued domain functions,
// playing the role of the PARADOX / DBASE / INGRES systems in HERMES.

#ifndef MMV_DOMAIN_REL_DOMAIN_H_
#define MMV_DOMAIN_REL_DOMAIN_H_

#include <memory>

#include "domain/domain.h"

namespace mmv {
namespace dom {

/// \brief Creates a relational domain named \p name over \p catalog.
///
/// Several instances with different names may wrap the same catalog, so a
/// mediator can address `paradox:` and `dbase:` separately as in the paper.
///
/// Functions (all time-versioned through the catalog's mutation logs):
///   select_eq(table, column, value)       -> matching rows (as tuples)
///   select_range(table, column, lo, hi)   -> rows with lo <= col <= hi
///   scan(table)                           -> all rows
///   project(table, column)                -> column values
///   field(tuple, index)                   -> { tuple[index] }
///   count(table)                          -> { row count }
std::unique_ptr<Domain> MakeRelationalDomain(std::string name,
                                             rel::Catalog* catalog);

/// \brief Creates the stateless `tuple` domain:
///   get(tuple, index) -> { tuple[index] }
///   size(tuple)       -> { length }
std::unique_ptr<Domain> MakeTupleDomain();

}  // namespace dom
}  // namespace mmv

#endif  // MMV_DOMAIN_REL_DOMAIN_H_
