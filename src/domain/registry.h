// One-call registration of the standard domain suite.

#ifndef MMV_DOMAIN_REGISTRY_H_
#define MMV_DOMAIN_REGISTRY_H_

#include "domain/domain.h"
#include "domain/face_domain.h"
#include "domain/spatial_domain.h"
#include "domain/text_domain.h"

namespace mmv {
namespace dom {

/// \brief Handles to the stateful domains created by RegisterStandardDomains
/// (the stateless ones need no handle).
struct StandardDomains {
  SpatialDomain* spatial = nullptr;
  FaceDomain* facextract = nullptr;  // also registered under "facedb"? no:
                                     // one FaceDomain serves both fn groups
  TextDomain* text = nullptr;
};

/// \brief Registers arith, tuple, rel (wrapping \p catalog), spatial,
/// facextract (with facedb functions) and text domains into \p manager.
///
/// The face domain is registered once under the name "faces" implementing
/// all four functions (segmentface/matchface/findface/findname), which the
/// law-enforcement mediator addresses as faces:... — the paper's split into
/// facextract/facedb is a naming convention, not a semantic one.
Result<StandardDomains> RegisterStandardDomains(DomainManager* manager,
                                                rel::Catalog* catalog);

}  // namespace dom
}  // namespace mmv

#endif  // MMV_DOMAIN_REGISTRY_H_
