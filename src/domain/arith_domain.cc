#include "domain/arith_domain.h"

#include <cmath>

namespace mmv {
namespace dom {

namespace {

Status ArityError(const std::string& fn, size_t want, size_t got) {
  return Status::InvalidArgument("arith:" + fn + " expects " +
                                 std::to_string(want) + " args, got " +
                                 std::to_string(got));
}

Status NumError(const std::string& fn) {
  return Status::TypeError("arith:" + fn + " requires numeric arguments");
}

class ArithDomain : public Domain {
 public:
  ArithDomain() : Domain("arith") {}

  Result<DcaResult> Call(const std::string& fn,
                         const std::vector<Value>& args) override {
    auto need = [&](size_t n) -> Status {
      if (args.size() != n) return ArityError(fn, n, args.size());
      for (const Value& v : args) {
        if (!v.is_numeric()) return NumError(fn);
      }
      return Status::OK();
    };

    if (fn == "greater" || fn == "greater_eq" || fn == "less" ||
        fn == "less_eq") {
      MMV_RETURN_NOT_OK(need(1));
      Interval i;
      i.integral = true;
      double x = args[0].numeric();
      if (fn == "greater") {
        i.lo = x;
        i.lo_strict = true;
      } else if (fn == "greater_eq") {
        i.lo = x;
      } else if (fn == "less") {
        i.hi = x;
        i.hi_strict = true;
      } else {
        i.hi = x;
      }
      return DcaResult::Of(i);
    }
    if (fn == "between" || fn == "real_between") {
      MMV_RETURN_NOT_OK(need(2));
      Interval i;
      i.integral = (fn == "between");
      i.lo = args[0].numeric();
      i.hi = args[1].numeric();
      return DcaResult::Of(i);
    }
    if (fn == "plus" || fn == "minus" || fn == "times" || fn == "min" ||
        fn == "max") {
      MMV_RETURN_NOT_OK(need(2));
      double a = args[0].numeric(), b = args[1].numeric();
      double r = 0;
      if (fn == "plus") r = a + b;
      if (fn == "minus") r = a - b;
      if (fn == "times") r = a * b;
      if (fn == "min") r = std::min(a, b);
      if (fn == "max") r = std::max(a, b);
      return Singleton(r, args[0].is_int() && args[1].is_int());
    }
    if (fn == "div") {
      MMV_RETURN_NOT_OK(need(2));
      if (args[1].numeric() == 0) return DcaResult::Finite({});
      return Singleton(args[0].numeric() / args[1].numeric(), false);
    }
    if (fn == "mod") {
      MMV_RETURN_NOT_OK(need(2));
      if (!args[0].is_int() || !args[1].is_int()) return NumError(fn);
      if (args[1].as_int() == 0) return DcaResult::Finite({});
      return DcaResult::Finite({Value(args[0].as_int() % args[1].as_int())});
    }
    if (fn == "abs") {
      MMV_RETURN_NOT_OK(need(1));
      return Singleton(std::fabs(args[0].numeric()), args[0].is_int());
    }
    return Status::NotFound("arith has no function " + fn);
  }

  std::vector<std::string> Functions() const override {
    return {"greater", "greater_eq", "less", "less_eq", "between",
            "real_between", "plus", "minus", "times", "div",
            "mod", "abs", "min", "max"};
  }

  // Stateless: pure arithmetic on the arguments.
  bool ConcurrentCallSafe() const override { return true; }

 private:
  static Result<DcaResult> Singleton(double v, bool integral) {
    if (integral && v == std::floor(v)) {
      return DcaResult::Finite({Value(static_cast<int64_t>(v))});
    }
    return DcaResult::Finite({Value(v)});
  }
};

}  // namespace

std::unique_ptr<Domain> MakeArithDomain() {
  return std::make_unique<ArithDomain>();
}

}  // namespace dom
}  // namespace mmv
