// Partition-count selection for intra-pass fan-out.
//
// A parallel fixpoint round shards the depth-0 candidate sequence of a
// (clause, pivot) pass — the seminaive pivot bucket — into contiguous
// ranges, one ThreadPool task each. The split must be deterministic (it
// feeds a byte-identity merge) and must never split or duplicate an entry,
// so both the shard count and the range arithmetic live here, shared by
// the fixpoint engine and StDel's step-3 fan-out and unit-tested directly.

#ifndef MMV_PLAN_PARTITION_H_
#define MMV_PLAN_PARTITION_H_

#include <algorithm>
#include <cstddef>
#include <utility>

namespace mmv {
namespace plan {

/// \brief Minimum depth-0 candidates per shard before a pivot pass is
/// worth splitting: below this, staging/merge bookkeeping outweighs the
/// join work a shard would carry. Passes under 2x this threshold run whole
/// (reported as partition_skipped_small).
constexpr size_t kMinPartitionItems = 64;

/// \brief Number of contiguous shards for \p items work units, at most
/// \p max_partitions, requiring at least \p min_per_shard items per shard.
/// Returns 1 ("do not split") for sequential callers, empty inputs and
/// windows too small to amortize the fan-out. Deterministic in its
/// arguments only — never in thread scheduling — so a parallel round's
/// shard layout is a pure function of the frozen delta window.
inline int PartitionCountFor(size_t items, int max_partitions,
                             size_t min_per_shard = kMinPartitionItems) {
  if (max_partitions <= 1 || min_per_shard == 0) return 1;
  if (items < 2 * min_per_shard) return 1;
  size_t by_items = items / min_per_shard;
  size_t cap = static_cast<size_t>(max_partitions);
  return static_cast<int>(std::min(by_items, cap));
}

/// \brief Half-open item range [begin, end) of shard \p shard out of
/// \p partitions over \p items units. The ranges of shards 0..partitions-1
/// are contiguous, disjoint and cover [0, items) exactly — no entry is
/// split across shards or enumerated twice — with sizes differing by at
/// most one (leading shards take the remainder).
inline std::pair<size_t, size_t> PartitionRange(size_t items, int partitions,
                                                int shard) {
  size_t p = static_cast<size_t>(partitions < 1 ? 1 : partitions);
  size_t s = static_cast<size_t>(shard);
  size_t base = items / p;
  size_t rem = items % p;
  size_t begin = s * base + std::min(s, rem);
  size_t end = begin + base + (s < rem ? 1 : 0);
  return {begin, end};
}

}  // namespace plan
}  // namespace mmv

#endif  // MMV_PLAN_PARTITION_H_
