// Clause plans: each core::Clause is compiled ONCE into an executable join
// plan — body atoms ordered by a selectivity cost model, per-step probe
// descriptors naming the argument positions that can hit the view's
// arg-value index, and dense variable-binding slots — so the fixpoint
// engine, insertion continuations and StDel's step-3 re-derivation checks
// all thread an incremental substitution through the clause without
// re-inspecting atom shapes per candidate.
//
// Ordering (PlanMode::kOrdered): for every seminaive pivot the plan runs
// the pivot atom first (its candidate window is the delta — the only window
// the engine knows to be small), then greedily the atom with the most
// statically ground argument positions (clause constants count double: they
// are ground unconditionally, where a slot bound by an earlier atom is only
// ground when that instance argument was). Ties break toward the lower
// observed accept ratio (adaptive feedback from the executor's candidate /
// accept counters, see PlanCache::Feedback) and then toward declared order.
// PlanMode::kDeclared compiles the identity order with first-ground-probe
// selection — bit-compatible with the PR-3 indexed join, kept as the
// plan-off baseline.
//
// Plans are immutable once built and handed out as shared_ptr<const>, so a
// future parallel-strata executor can share one PlanCache across threads
// with per-round read-only access.

#ifndef MMV_PLAN_CLAUSE_PLAN_H_
#define MMV_PLAN_CLAUSE_PLAN_H_

#include <cstdint>
#include <vector>

#include "core/clause.h"

namespace mmv {
namespace plan {

/// \brief Body-atom ordering strategy of a compiled plan.
enum class PlanMode : uint8_t {
  /// Keep the clause's written body order and probe the first ground
  /// argument position — the PR-3 indexed-join behaviour (plan-off
  /// baseline / differential oracle for the ordered plans).
  kDeclared,
  /// Selectivity-order the body per seminaive pivot and pick the smallest
  /// of multiple ground arg-value buckets per step (multi-position probes).
  kOrdered,
};

/// \brief Pattern-term classification of one body/head argument: a clause
/// constant, or a variable mapped to a dense binding slot.
struct PlanArg {
  bool is_const = false;
  Value value;    // when is_const
  int slot = -1;  // binding slot when a variable
};

/// \brief One body atom in execution order.
struct PlanStep {
  /// Index into the clause's DECLARED body (and into ClausePlan::body).
  uint16_t decl_pos = 0;
  /// Argument positions that can be ground when this step runs — clause
  /// constants, plus variables whose slot some earlier step of THIS order
  /// may have bound. Ascending; a superset of the runtime-ground set, so
  /// the executor only checks these instead of every position.
  std::vector<uint16_t> probe_positions;
};

/// \brief The execution order for one seminaive pivot position.
struct PivotOrder {
  std::vector<PlanStep> steps;
  bool reordered = false;  ///< differs from the declared body order
};

/// \brief A compiled clause: patterns in declared order plus one execution
/// order per seminaive pivot.
struct ClausePlan {
  int clause_number = -1;
  std::vector<std::vector<PlanArg>> body;  ///< declared order, per position
  std::vector<PlanArg> head;
  bool constraint_true = false;
  /// kOrdered only: evaluate every ground probe position and enumerate the
  /// smallest bucket (kDeclared probes the first ground position).
  bool multi_probe = false;
  int num_slots = 0;
  /// One execution order per seminaive pivot (empty for facts) — except
  /// under kDeclared, where every pivot runs the identical written order
  /// and a SINGLE shared entry serves all pivots (kDeclared clauses used
  /// to carry n copies of the same order). Index through order().
  std::vector<PivotOrder> orders;
  bool reordered = false;          ///< any pivot order differs from declared

  /// \brief The execution order for seminaive pivot \p pivot.
  const PivotOrder& order(size_t pivot) const {
    return orders.size() == 1 ? orders.front() : orders[pivot];
  }
  /// The clause's variables in first-appearance order — precomputed so
  /// maintenance passes (StDel step 3 renames the clause once per visited
  /// parent) can standardize apart without re-walking the clause.
  std::vector<VarId> clause_vars;
};

/// \brief Compiles \p clause under \p mode. \p accept_ratio, when non-null,
/// holds the executor-observed fraction of candidates surviving ground
/// unification per DECLARED body position (adaptive selectivity; lower =
/// more selective); it must have one entry per body atom.
ClausePlan CompileClause(const Clause& clause, PlanMode mode,
                         const std::vector<double>* accept_ratio = nullptr);

}  // namespace plan
}  // namespace mmv

#endif  // MMV_PLAN_CLAUSE_PLAN_H_
