#include "plan/clause_plan.h"

#include <algorithm>

namespace mmv {
namespace plan {

namespace {

// Ground-position score of body atom `pattern` given the slots bound by the
// steps already placed: constants count double (ground unconditionally),
// maybe-bound slots once (ground only when the binding instance argument
// was). Repeated occurrences of one bound slot all count — each is a
// rejection point.
int GroundScore(const std::vector<PlanArg>& pattern,
                const std::vector<char>& bound) {
  int score = 0;
  for (const PlanArg& a : pattern) {
    if (a.is_const) {
      score += 2;
    } else if (a.slot >= 0 && bound[static_cast<size_t>(a.slot)]) {
      score += 1;
    }
  }
  return score;
}

void MarkSlots(const std::vector<PlanArg>& pattern, std::vector<char>* bound) {
  for (const PlanArg& a : pattern) {
    if (a.slot >= 0) (*bound)[static_cast<size_t>(a.slot)] = 1;
  }
}

// Probe positions of `pattern` under the already-bound slot set: every
// constant, plus every variable position whose slot is maybe-bound.
// Ascending position order — the kDeclared executor takes the FIRST
// runtime-ground entry, matching the PR-3 scan.
std::vector<uint16_t> ProbePositions(const std::vector<PlanArg>& pattern,
                                     const std::vector<char>& bound) {
  size_t count = 0;
  for (const PlanArg& a : pattern) {
    if (a.is_const || (a.slot >= 0 && bound[static_cast<size_t>(a.slot)])) {
      ++count;
    }
  }
  std::vector<uint16_t> out;
  if (count == 0) return out;
  out.reserve(count);
  for (size_t k = 0; k < pattern.size(); ++k) {
    const PlanArg& a = pattern[k];
    if (a.is_const || (a.slot >= 0 && bound[static_cast<size_t>(a.slot)])) {
      out.push_back(static_cast<uint16_t>(k));
    }
  }
  return out;
}

// Scratch buffers reused across the per-pivot order builds of one compile,
// so a compile costs a bounded handful of allocations however many pivots
// the clause has (plans are compiled on hot maintenance paths whenever a
// run cannot share a PlanCache).
struct OrderScratch {
  std::vector<char> bound;    // slot -> bound by an already-placed step
  std::vector<char> placed;   // decl position -> already in the sequence
  std::vector<size_t> sequence;
};

PivotOrder BuildOrder(const ClausePlan& plan, size_t pivot, PlanMode mode,
                      const std::vector<double>* accept_ratio,
                      OrderScratch* scratch) {
  size_t n = plan.body.size();
  PivotOrder order;
  order.steps.reserve(n);
  std::vector<char>& bound = scratch->bound;
  std::vector<size_t>& sequence = scratch->sequence;
  bound.assign(static_cast<size_t>(plan.num_slots), 0);
  sequence.clear();

  if (mode == PlanMode::kDeclared) {
    for (size_t i = 0; i < n; ++i) sequence.push_back(i);
  } else {
    // Pivot first: its candidate window is the round's delta, the one
    // window known to be small before any statistics exist.
    std::vector<char>& placed = scratch->placed;
    placed.assign(n, 0);
    sequence.push_back(pivot);
    placed[pivot] = 1;
    MarkSlots(plan.body[pivot], &bound);
    while (sequence.size() < n) {
      size_t best = n;
      int best_score = -1;
      double best_ratio = 0;
      for (size_t i = 0; i < n; ++i) {
        if (placed[i]) continue;
        int score = GroundScore(plan.body[i], bound);
        double ratio = accept_ratio != nullptr ? (*accept_ratio)[i] : 1.0;
        if (best == n || score > best_score ||
            (score == best_score && ratio < best_ratio)) {
          best = i;
          best_score = score;
          best_ratio = ratio;
        }
      }
      sequence.push_back(best);
      placed[best] = 1;
      MarkSlots(plan.body[best], &bound);
    }
    bound.assign(static_cast<size_t>(plan.num_slots), 0);
  }

  for (size_t i = 0; i < n; ++i) {
    size_t pos = sequence[i];
    PlanStep step;
    step.decl_pos = static_cast<uint16_t>(pos);
    step.probe_positions = ProbePositions(plan.body[pos], bound);
    order.steps.push_back(std::move(step));
    MarkSlots(plan.body[pos], &bound);
    if (pos != i) order.reordered = true;
  }
  return order;
}

}  // namespace

ClausePlan CompileClause(const Clause& clause, PlanMode mode,
                         const std::vector<double>* accept_ratio) {
  ClausePlan plan;
  plan.clause_number = clause.number;
  plan.constraint_true = clause.constraint.is_true();
  plan.multi_probe = mode == PlanMode::kOrdered;
  plan.clause_vars = clause.Variables();

  // Slot numbering follows DECLARED body order (then head), so slots are
  // stable across recompiles with different execution orders — executor
  // binding state and head assembly never depend on the order chosen.
  // Clause variable counts are small, so a flat map beats a hash table.
  std::vector<std::pair<VarId, int>> slots;
  slots.reserve(plan.clause_vars.size());
  auto classify = [&slots](const Term& t) {
    PlanArg a;
    if (t.is_const()) {
      a.is_const = true;
      a.value = t.constant();
      return a;
    }
    for (const auto& [var, slot] : slots) {
      if (var == t.var()) {
        a.slot = slot;
        return a;
      }
    }
    a.slot = static_cast<int>(slots.size());
    slots.emplace_back(t.var(), a.slot);
    return a;
  };
  plan.body.reserve(clause.body.size());
  for (const BodyAtom& b : clause.body) {
    std::vector<PlanArg> args;
    args.reserve(b.args.size());
    for (const Term& t : b.args) args.push_back(classify(t));
    plan.body.push_back(std::move(args));
  }
  // Head variables get slots too (created after the body's, so body slot
  // numbering is unchanged): a head-only ("unsafe") variable occurring at
  // several head positions must map to ONE fresh variable in the executor's
  // rename-free fast path, exactly as one clause rename would map it.
  plan.head.reserve(clause.head_args.size());
  for (const Term& t : clause.head_args) plan.head.push_back(classify(t));
  plan.num_slots = static_cast<int>(slots.size());

  OrderScratch scratch;
  // kDeclared keeps the written order whatever the pivot, so one shared
  // PivotOrder serves every pivot (ClausePlan::order()).
  size_t order_count = mode == PlanMode::kDeclared && !plan.body.empty()
                           ? 1
                           : plan.body.size();
  plan.orders.reserve(order_count);
  for (size_t pivot = 0; pivot < order_count; ++pivot) {
    PivotOrder order = BuildOrder(plan, pivot, mode, accept_ratio, &scratch);
    plan.reordered = plan.reordered || order.reordered;
    plan.orders.push_back(std::move(order));
  }
  return plan;
}

}  // namespace plan
}  // namespace mmv
