#include "plan/plan_cache.h"

namespace mmv {
namespace plan {

namespace {

bool SameOrders(const ClausePlan& a, const ClausePlan& b) {
  if (a.orders.size() != b.orders.size()) return false;
  for (size_t p = 0; p < a.orders.size(); ++p) {
    const std::vector<PlanStep>& sa = a.orders[p].steps;
    const std::vector<PlanStep>& sb = b.orders[p].steps;
    if (sa.size() != sb.size()) return false;
    for (size_t i = 0; i < sa.size(); ++i) {
      if (sa[i].decl_pos != sb[i].decl_pos) return false;
    }
  }
  return true;
}

}  // namespace

std::vector<double> PlanCache::AcceptRatios(int clause_number,
                                            size_t body_size) const {
  std::vector<double> ratios(body_size, 1.0);
  auto it = observed_.find(clause_number);
  if (it == observed_.end()) return ratios;
  const Observed& o = it->second;
  for (size_t i = 0; i < body_size && i < o.candidates.size(); ++i) {
    if (o.candidates[i] > 0) {
      ratios[i] = static_cast<double>(o.accepted[i]) /
                  static_cast<double>(o.candidates[i]);
    }
  }
  return ratios;
}

void PlanCache::Revalidate(const Program& program) {
  if (have_program_ && program_id_ == program.id()) return;
  if (have_program_) stats_.invalidations++;
  plans_.clear();
  observed_.clear();
  strata_.reset();
  strata_clauses_ = 0;
  program_id_ = program.id();
  have_program_ = true;
}

std::shared_ptr<const ClausePlan> PlanCache::PlanFor(const Program& program,
                                                     const Clause& clause) {
  Revalidate(program);
  auto [it, inserted] = plans_.try_emplace(clause.number);
  Entry& entry = it->second;
  if (!inserted && !entry.dirty) {
    stats_.cache_hits++;
    return entry.plan;
  }
  if (inserted) {
    stats_.compiles++;
    ClausePlan plan = CompileClause(clause, mode_);
    if (plan.reordered) stats_.reorders++;
    entry.plan = std::make_shared<const ClausePlan>(std::move(plan));
    return entry.plan;
  }
  // Adaptive recompile: fold the observed selectivities into the cost
  // model's tie-breaks; keep the old plan object when nothing moved so
  // long-lived consumers see stable pointers, and back the evidence
  // threshold off so settled clauses stop paying for recompiles that
  // cannot change anything anymore.
  entry.dirty = false;
  Observed& obs = observed_[clause.number];
  obs.since_compile = 0;
  std::vector<double> ratios = AcceptRatios(clause.number, clause.body.size());
  stats_.compiles++;
  ClausePlan plan = CompileClause(clause, mode_, &ratios);
  if (plan.reordered) stats_.reorders++;
  if (SameOrders(plan, *entry.plan)) {
    if (obs.threshold <= kMaxRecompileThreshold / 4) obs.threshold *= 4;
  } else {
    obs.threshold = kRecompileCandidates;
    stats_.refinements++;
    entry.plan = std::make_shared<const ClausePlan>(std::move(plan));
  }
  return entry.plan;
}

std::shared_ptr<const StrataInfo> PlanCache::StrataFor(
    const Program& program) {
  Revalidate(program);
  // Appending clauses keeps the identity (and the compiled plans) but can
  // rewire the dependency graph — rebuild when the clause count moved.
  if (strata_ == nullptr || strata_clauses_ != program.size()) {
    strata_ = std::make_shared<const StrataInfo>(ComputeStrata(program));
    strata_clauses_ = program.size();
  }
  return strata_;
}

void PlanCache::Feedback(int clause_number,
                         const std::vector<int64_t>& candidates,
                         const std::vector<int64_t>& accepted) {
  if (mode_ == PlanMode::kDeclared) return;  // nothing to refine
  auto it = plans_.find(clause_number);
  if (it == plans_.end()) return;
  Observed& o = observed_[clause_number];
  o.candidates.resize(candidates.size(), 0);
  o.accepted.resize(accepted.size(), 0);
  int64_t total = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    o.candidates[i] += candidates[i];
    total += candidates[i];
  }
  for (size_t i = 0; i < accepted.size(); ++i) o.accepted[i] += accepted[i];
  o.since_compile += total;
  if (o.since_compile >= o.threshold) it->second.dirty = true;
}

void PlanCache::Clear() {
  plans_.clear();
  observed_.clear();
  strata_.reset();
  strata_clauses_ = 0;
  have_program_ = false;
  program_id_ = 0;
}

}  // namespace plan
}  // namespace mmv
