// Stratification of a Program for parallel fixpoint execution.
//
// The head-predicate dependency graph has an edge P -> Q whenever some
// clause with head Q mentions P in its body: derivations of P can feed
// derivations of Q. Condensing the graph's strongly connected components
// (mutually recursive predicate families) and layering the condensation
// topologically yields STRATA: two groups in the same stratum have no
// directed path between them in either direction (a path would force them
// into different layers), so their clauses never consume each other's
// output and their seminaive passes may run concurrently against a shared
// read-only delta window.
//
// Body predicates that head no clause (external/EDB predicates) are static
// inputs: they contribute no edges between groups and appear in no group.
//
// StrataInfo is computed once per Program and cached in the PlanCache
// alongside the compiled clause plans (plan::PlanCache::StrataFor), keyed
// on the same program identity.

#ifndef MMV_PLAN_STRATA_H_
#define MMV_PLAN_STRATA_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/program.h"

namespace mmv {
namespace plan {

/// \brief One strongly connected component of the head-predicate
/// dependency graph: a family of (mutually) recursive predicates, or a
/// single non-recursive one.
struct PredGroup {
  /// Member predicates, in name order (deterministic across runs).
  std::vector<Symbol> preds;
  /// Indices into Program::clauses() of every clause whose head predicate
  /// is a member, ascending. Includes constrained facts (the fixpoint
  /// engine's rounds skip them on its own).
  std::vector<size_t> clauses;
  /// True when the group can derive from its own output: more than one
  /// member, or a single member with a self-loop (a clause whose head
  /// predicate also appears in its body).
  bool recursive = false;
};

/// \brief One topological layer: groups with no dependency path between
/// them in either direction — safe to derive concurrently.
struct Stratum {
  /// Groups ordered by their smallest clause index (deterministic).
  std::vector<PredGroup> groups;
};

/// \brief The SCC condensation of a program's head-predicate dependency
/// graph, layered into topological strata.
struct StrataInfo {
  /// Strata in dependency order: a group in strata[i] only (transitively)
  /// consumes head predicates from strata with index < i.
  std::vector<Stratum> strata;
  /// Total number of groups across all strata.
  size_t group_count = 0;
  /// Head predicate -> index into `strata` (absent for non-head preds).
  std::unordered_map<Symbol, size_t> stratum_of;

  /// \brief The stratum index of head predicate \p pred, or -1.
  int64_t StratumOf(Symbol pred) const {
    auto it = stratum_of.find(pred);
    return it == stratum_of.end() ? -1 : static_cast<int64_t>(it->second);
  }

  /// \brief One line per stratum: "0: {a b} {c}" (debugging / tests).
  std::string ToString() const;
};

/// \brief Computes the strata of \p program. Deterministic: group member
/// order, group order within a stratum and the strata layering depend only
/// on the program's clauses.
StrataInfo ComputeStrata(const Program& program);

}  // namespace plan
}  // namespace mmv

#endif  // MMV_PLAN_STRATA_H_
