// PlanCache: the per-program store of compiled clause plans, shared by the
// fixpoint engine (materialization and every seminaive continuation),
// insertion batches, StDel's step-3 re-derivation checks and whole-batch
// maintenance pipelines.
//
// Validity: plans are keyed by clause number and tagged with the owning
// Program's identity (see Program::id() — copies get fresh identities), so
// a cache handed a different program flushes itself instead of serving
// stale plans. Appending clauses to the same program is safe — existing
// plans stay valid, new clauses compile on demand.
//
// Adaptivity: the executor reports per-clause candidate / accept counters
// through Feedback(); once a clause has accumulated enough evidence its
// plan is recompiled with the observed selectivities as tie-breakers, and
// replaced only if the order actually changed. Handed-out plans are
// shared_ptr<const>, so an executor mid-round keeps a consistent plan even
// if the cache swaps in a refined one.
//
// Determinism: under duplicate semantics results are identical whatever
// the enumeration order, so cache history (including adaptive recompiles
// triggered by earlier runs sharing the cache) never affects outcomes.
// Under SET semantics the canonical atom set is likewise order-independent,
// but the representative support retained for a deduped atom follows
// enumeration order (DupSemantics::kSet) — for bit-reproducible
// set-semantics supports use PlanMode::kDeclared or a fresh cache per run.

#ifndef MMV_PLAN_PLAN_CACHE_H_
#define MMV_PLAN_PLAN_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/program.h"
#include "plan/clause_plan.h"
#include "plan/strata.h"

namespace mmv {
namespace plan {

/// \brief Counters of one cache lifetime (monotone; consumers snapshot and
/// diff to attribute activity to one run).
struct PlanCacheStats {
  int64_t compiles = 0;
  /// Compilations whose chosen execution order differed from the clause's
  /// written body order (initial compiles and adaptive recompiles alike).
  int64_t reorders = 0;
  int64_t cache_hits = 0;
  int64_t invalidations = 0;  ///< whole-cache flushes on program change
  int64_t refinements = 0;    ///< adaptive recompiles that changed an order
};

/// \brief Per-program memo of compiled ClausePlans.
class PlanCache {
 public:
  /// Feedback threshold: a clause is reconsidered for recompilation after
  /// this many candidates have been observed since its last compile. The
  /// per-clause threshold backs off (x4, up to kMaxRecompileThreshold)
  /// each time a recompile changes nothing, so settled clauses converge
  /// to near-zero recompile overhead.
  static constexpr int64_t kRecompileCandidates = 256;
  static constexpr int64_t kMaxRecompileThreshold = int64_t{1} << 40;

  explicit PlanCache(PlanMode mode = PlanMode::kOrdered) : mode_(mode) {}

  PlanMode mode() const { return mode_; }

  /// \brief Resolves a caller-shared cache against a mode requirement: the
  /// shared cache when it exists and compiles \p mode plans, else
  /// \p fallback (typically a run- or batch-local cache built with \p mode).
  /// The one mode-mismatch policy for every layer that threads a cache —
  /// engine runs, insertion batches, whole-batch maintenance.
  static PlanCache* Select(PlanCache* shared, PlanMode mode,
                           PlanCache* fallback) {
    return shared != nullptr && shared->mode() == mode ? shared : fallback;
  }

  /// \brief The plan for \p clause (which must belong to \p program),
  /// compiling on first use and recompiling when accumulated feedback
  /// warrants. Flushes the whole cache if \p program is not the program
  /// the cache was filled from.
  std::shared_ptr<const ClausePlan> PlanFor(const Program& program,
                                            const Clause& clause);

  /// \brief The strata decomposition of \p program (see strata.h), computed
  /// once per program identity and cached alongside the plans. Shares the
  /// plans' validity rule: a different program flushes the whole cache,
  /// appending clauses to the same program recomputes the strata only
  /// (clause plans stay valid; the dependency graph may have changed).
  std::shared_ptr<const StrataInfo> StrataFor(const Program& program);

  /// \brief Reports one executor pass over clause \p clause_number:
  /// per DECLARED body position, how many candidate atoms were unified
  /// against and how many survived. Sizes must match the clause's body.
  void Feedback(int clause_number, const std::vector<int64_t>& candidates,
                const std::vector<int64_t>& accepted);

  const PlanCacheStats& stats() const { return stats_; }
  size_t size() const { return plans_.size(); }

  /// \brief Drops every plan and all accumulated feedback (stats survive).
  void Clear();

 private:
  struct Entry {
    std::shared_ptr<const ClausePlan> plan;
    bool dirty = false;  ///< enough feedback accumulated to reconsider
  };
  struct Observed {
    std::vector<int64_t> candidates;
    std::vector<int64_t> accepted;
    int64_t since_compile = 0;
    /// Evidence needed before the next recompile is considered. Backs off
    /// (x4) every time a recompile leaves the orders unchanged — once the
    /// accumulated ratios have settled they can no longer move the
    /// tie-breaks, so perpetual every-256-candidates recompiles would be
    /// pure waste on hot clauses. A recompile that DOES change the order
    /// resets the threshold.
    int64_t threshold = kRecompileCandidates;
  };

  std::vector<double> AcceptRatios(int clause_number, size_t body_size) const;

  /// Flushes the cache when \p program is not the one it was filled from.
  void Revalidate(const Program& program);

  PlanMode mode_;
  uint64_t program_id_ = 0;
  bool have_program_ = false;
  std::unordered_map<int, Entry> plans_;
  std::unordered_map<int, Observed> observed_;
  std::shared_ptr<const StrataInfo> strata_;
  size_t strata_clauses_ = 0;  ///< program size the strata were built from
  PlanCacheStats stats_;
};

}  // namespace plan
}  // namespace mmv

#endif  // MMV_PLAN_PLAN_CACHE_H_
