#include "plan/strata.h"

#include <algorithm>

namespace mmv {
namespace plan {

namespace {

// Dense node numbering of the head predicates, in first-head-appearance
// order (stable under clause appends: new heads get new nodes).
struct Graph {
  std::vector<Symbol> preds;                    // node -> predicate
  std::unordered_map<Symbol, size_t> node_of;   // predicate -> node
  std::vector<std::vector<size_t>> out;         // node -> successor nodes
  std::vector<bool> self_loop;                  // head appears in own body
};

Graph BuildGraph(const Program& program) {
  Graph g;
  for (const Clause& c : program.clauses()) {
    if (g.node_of.emplace(c.head_pred, g.preds.size()).second) {
      g.preds.push_back(c.head_pred);
    }
  }
  g.out.resize(g.preds.size());
  g.self_loop.assign(g.preds.size(), false);
  for (const Clause& c : program.clauses()) {
    size_t to = g.node_of.at(c.head_pred);
    for (const BodyAtom& b : c.body) {
      auto it = g.node_of.find(b.pred);
      if (it == g.node_of.end()) continue;  // EDB predicate: static input
      size_t from = it->second;
      if (from == to) {
        g.self_loop[to] = true;
        continue;
      }
      std::vector<size_t>& edges = g.out[from];
      if (std::find(edges.begin(), edges.end(), to) == edges.end()) {
        edges.push_back(to);
      }
    }
  }
  return g;
}

// Iterative Tarjan SCC. Component numbering is by completion order, which
// is a REVERSE topological order of the condensation (Tarjan's invariant:
// every successor of a node is in a component numbered at or below the
// node's own).
struct SccResult {
  std::vector<size_t> comp_of;  // node -> component id
  size_t count = 0;
};

SccResult TarjanScc(const Graph& g) {
  size_t n = g.preds.size();
  SccResult r;
  r.comp_of.assign(n, 0);
  std::vector<size_t> index(n, 0), lowlink(n, 0);
  std::vector<bool> visited(n, false), on_stack(n, false);
  std::vector<size_t> stack;
  size_t next_index = 1;

  struct Frame {
    size_t node;
    size_t edge = 0;
  };
  std::vector<Frame> frames;
  for (size_t root = 0; root < n; ++root) {
    if (visited[root]) continue;
    frames.push_back({root});
    while (!frames.empty()) {
      Frame& f = frames.back();
      size_t v = f.node;
      if (f.edge == 0) {
        visited[v] = true;
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      if (f.edge < g.out[v].size()) {
        size_t w = g.out[v][f.edge++];
        if (!visited[w]) {
          frames.push_back({w});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          while (true) {
            size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            r.comp_of[w] = r.count;
            if (w == v) break;
          }
          r.count++;
        }
        frames.pop_back();
        if (!frames.empty()) {
          Frame& parent = frames.back();
          lowlink[parent.node] =
              std::min(lowlink[parent.node], lowlink[v]);
        }
      }
    }
  }
  return r;
}

}  // namespace

StrataInfo ComputeStrata(const Program& program) {
  StrataInfo info;
  Graph g = BuildGraph(program);
  SccResult scc = TarjanScc(g);

  // Condensation depth: components come out of Tarjan in reverse
  // topological order, so iterating them HIGHEST-numbered first visits
  // every predecessor before its successors and one pass computes
  // depth(C) = 1 + max(depth of predecessor components), 0 when none.
  // Nodes are bucketed by component first, keeping the whole pass
  // O(nodes + edges) rather than O(components x nodes).
  std::vector<std::vector<size_t>> nodes_of(scc.count);
  for (size_t v = 0; v < g.preds.size(); ++v) {
    nodes_of[scc.comp_of[v]].push_back(v);
  }
  std::vector<size_t> depth(scc.count, 0);
  for (size_t c = scc.count; c-- > 0;) {
    for (size_t v : nodes_of[c]) {
      for (size_t w : g.out[v]) {
        size_t cw = scc.comp_of[w];
        if (cw != c) depth[cw] = std::max(depth[cw], depth[c] + 1);
      }
    }
  }

  size_t max_depth = 0;
  for (size_t c = 0; c < scc.count; ++c) max_depth = std::max(max_depth, depth[c]);
  std::vector<PredGroup> groups(scc.count);
  for (size_t v = 0; v < g.preds.size(); ++v) {
    PredGroup& grp = groups[scc.comp_of[v]];
    grp.preds.push_back(g.preds[v]);
    grp.recursive = grp.recursive || g.self_loop[v];
  }
  for (PredGroup& grp : groups) {
    if (grp.preds.size() > 1) grp.recursive = true;
    std::sort(grp.preds.begin(), grp.preds.end());  // name order
  }
  const std::vector<Clause>& clauses = program.clauses();
  for (size_t i = 0; i < clauses.size(); ++i) {
    groups[scc.comp_of[g.node_of.at(clauses[i].head_pred)]].clauses.push_back(
        i);
  }

  info.strata.resize(scc.count == 0 ? 0 : max_depth + 1);
  info.group_count = scc.count;
  // Deterministic group order within a stratum: by smallest clause index.
  // Every group has at least one clause (nodes are head predicates).
  std::vector<size_t> order(scc.count);
  for (size_t c = 0; c < scc.count; ++c) order[c] = c;
  std::sort(order.begin(), order.end(), [&groups](size_t a, size_t b) {
    return groups[a].clauses.front() < groups[b].clauses.front();
  });
  for (size_t c : order) {
    for (Symbol pred : groups[c].preds) {
      info.stratum_of.emplace(pred, depth[c]);
    }
    info.strata[depth[c]].groups.push_back(std::move(groups[c]));
  }
  return info;
}

std::string StrataInfo::ToString() const {
  std::string out;
  for (size_t i = 0; i < strata.size(); ++i) {
    out += std::to_string(i) + ":";
    for (const PredGroup& g : strata[i].groups) {
      out += " {";
      for (size_t k = 0; k < g.preds.size(); ++k) {
        if (k > 0) out += ' ';
        out += g.preds[k].name();
      }
      out += g.recursive ? " *}" : "}";
    }
    out += '\n';
  }
  return out;
}

}  // namespace plan
}  // namespace mmv
