#include "workload/law_enforcement.h"

#include <cmath>

#include "common/rng.h"
#include "parser/parser.h"

namespace mmv {
namespace workload {

std::string LawEnforcementScenario::PersonName(int i) {
  return i == 0 ? "corleone" : "person" + std::to_string(i);
}

namespace {

// The paper's clauses (1)-(3), adapted to the synthetic domain suite:
//  - faces: segmentface / matchface / findname (facextract + facedb)
//  - rel:scan over the mugshot library replaces findface with an unbound
//    person argument (so X ranges over the library, enumerably)
//  - paradox: the phonebook relational database
//  - spatial: locateaddress / range with the "dcareamap"
//  - dbase: the ABC-Corp employee database
constexpr const char* kMediator = R"(
seenwith(X, Y) <-
  in(P1, faces:segmentface("surveillance")) &
  in(P2, faces:segmentface("surveillance")) &
  in(O1, tuple:get(P1, 1)) & in(O2, tuple:get(P2, 1)) & O1 = O2 &
  in(F1, tuple:get(P1, 0)) & in(F2, tuple:get(P2, 0)) & F1 != F2 &
  in(M, rel:scan("faces_mugshots")) &
  in(X, tuple:get(M, 0)) & in(F3, tuple:get(M, 2)) &
  in(true, faces:matchface(F1, F3)) &
  in(Y, faces:findname(F2)).

swlndc(X, Y) <-
  seenwith(X, Y) &
  in(A, paradox:select_eq("phonebook", "name", Y)) &
  in(SN, tuple:get(A, 1)) & in(SS, tuple:get(A, 2)) &
  in(CN, tuple:get(A, 3)) & in(ST, tuple:get(A, 4)) &
  in(ZP, tuple:get(A, 5)) &
  in(PT, spatial:locateaddress(SN, SS, CN, ST, ZP)) &
  in(PX, tuple:get(PT, 0)) & in(PY, tuple:get(PT, 1)) &
  in(true, spatial:range("dcareamap", PX, PY, 100)).

suspect(X, Y) <-
  swlndc(X, Y) &
  in(T, dbase:select_eq("empl_abc", "name", Y)).
)";

}  // namespace

Result<std::unique_ptr<LawEnforcementScenario>> MakeLawEnforcement(
    const LawEnforcementOptions& options) {
  auto s = std::make_unique<LawEnforcementScenario>();
  s->catalog = std::make_unique<rel::Catalog>();
  s->domains = std::make_unique<dom::DomainManager>(&s->catalog->clock());
  MMV_ASSIGN_OR_RETURN(
      s->handles,
      dom::RegisterStandardDomains(s->domains.get(), s->catalog.get()));

  Rng rng(options.seed);

  // --- Relational tables ------------------------------------------------
  MMV_RETURN_NOT_OK(s->catalog
                        ->CreateTable(rel::Schema{
                            "phonebook",
                            {"name", "streetnum", "streetname", "cityname",
                             "statename", "zipcode"}})
                        .status());
  MMV_RETURN_NOT_OK(
      s->catalog->CreateTable(rel::Schema{"empl_abc", {"name", "title"}})
          .status());

  // --- People: faces, addresses, employment ------------------------------
  s->target = LawEnforcementScenario::PersonName(0);
  for (int i = 0; i < options.num_people; ++i) {
    std::string name = LawEnforcementScenario::PersonName(i);
    s->people.push_back(name);
    MMV_RETURN_NOT_OK(
        s->handles.facextract->AddPerson(name, i).status());

    // Address row + pinned synthetic coordinates.
    Value streetnum(static_cast<int64_t>(100 + i));
    Value streetname("street" + std::to_string(i));
    Value cityname("city");
    Value statename("state");
    Value zipcode(static_cast<int64_t>(20000 + i));
    MMV_RETURN_NOT_OK(s->catalog->Insert(
        "phonebook",
        {Value(name), streetnum, streetname, cityname, statename, zipcode}));
    bool near = rng.Chance(options.near_dc_prob);
    double angle = rng.Double(0, 2 * 3.141592653589793);
    double dist = near ? rng.Double(0, options.range_miles * 0.9)
                       : rng.Double(options.range_miles + 30,
                                    options.range_miles + 300);
    double x = 500.0 + dist * std::cos(angle);
    double y = 500.0 + dist * std::sin(angle);
    s->handles.spatial->AddAddress(
        dom::SpatialDomain::AddressKey(
            {streetnum, streetname, cityname, statename, zipcode}),
        x, y);
    if (near) s->near_dc.insert(name);

    if (rng.Chance(options.employee_prob)) {
      MMV_RETURN_NOT_OK(
          s->catalog->Insert("empl_abc", {Value(name), Value("staff")}));
      s->employees.insert(name);
    }
  }

  // --- Surveillance photos ------------------------------------------------
  // Every photo shows the target plus a sample of other people: the pairs
  // seen together are exactly (target, other) and (other, other').
  for (int j = 0; j < options.num_photos; ++j) {
    std::string photo = "photo" + std::to_string(j);
    std::vector<int> faces = {0};
    while (static_cast<int>(faces.size()) < options.faces_per_photo) {
      int f = static_cast<int>(rng.Int(1, options.num_people - 1));
      if (std::find(faces.begin(), faces.end(), f) == faces.end()) {
        faces.push_back(f);
      }
    }
    for (int f : faces) {
      MMV_RETURN_NOT_OK(s->handles.facextract
                            ->AddSurveillanceFace("surveillance", photo, f)
                            .status());
      if (f != 0) {
        s->expected_seenwith.insert(
            LawEnforcementScenario::PersonName(f));
      }
    }
  }

  // Ground truth: suspect(target, Y) iff seenwith(target, Y), Y lives near
  // DC and Y works for ABC Corp.
  for (const std::string& y : s->expected_seenwith) {
    if (s->near_dc.count(y) && s->employees.count(y)) {
      s->expected_suspects.insert(y);
    }
  }

  // --- Mediator program ---------------------------------------------------
  MMV_ASSIGN_OR_RETURN(s->mediator, parser::ParseProgram(kMediator));
  return s;
}

}  // namespace workload
}  // namespace mmv
