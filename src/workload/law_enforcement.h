// The paper's running example (Section 2.2): the seenwith / swlndc /
// suspect mediator over face-recognition, relational, and spatial domains,
// with synthetic generated data (DESIGN.md Section 5 substitutions).

#ifndef MMV_WORKLOAD_LAW_ENFORCEMENT_H_
#define MMV_WORKLOAD_LAW_ENFORCEMENT_H_

#include <memory>
#include <set>
#include <string>

#include "core/program.h"
#include "domain/registry.h"

namespace mmv {
namespace workload {

/// \brief Size knobs for the generated scenario.
struct LawEnforcementOptions {
  int num_people = 12;       ///< people with known faces (person 0 = target)
  int num_photos = 8;        ///< surveillance photos
  int faces_per_photo = 3;   ///< faces visible per photo (>= 2)
  double near_dc_prob = 0.5; ///< chance a person lives within range
  double employee_prob = 0.5;///< chance a person works for "abc_corp"
  double range_miles = 100;  ///< the "within 100 miles of DC" radius
  uint64_t seed = 42;
};

/// \brief A fully wired instance of the running example.
struct LawEnforcementScenario {
  std::unique_ptr<rel::Catalog> catalog;
  std::unique_ptr<dom::DomainManager> domains;
  dom::StandardDomains handles;
  Program mediator;  ///< the three clauses (1), (2), (3)

  std::string target;                       ///< "corleone"
  std::vector<std::string> people;          ///< person i name
  std::set<std::string> near_dc;            ///< people within range
  std::set<std::string> employees;          ///< people at abc_corp
  std::set<std::string> expected_seenwith;  ///< ground truth for target
  std::set<std::string> expected_suspects;  ///< ground truth for target

  /// \brief Name of person \p i ("corleone" for 0, "person<i>" otherwise).
  static std::string PersonName(int i);
};

/// \brief Builds the scenario: synthetic people/faces/photos/addresses/
/// employment and the mediator program, with ground truth recorded.
Result<std::unique_ptr<LawEnforcementScenario>> MakeLawEnforcement(
    const LawEnforcementOptions& options);

}  // namespace workload
}  // namespace mmv

#endif  // MMV_WORKLOAD_LAW_ENFORCEMENT_H_
