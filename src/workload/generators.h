// Workload generators: parameterized constrained databases (and their
// ground Datalog twins) used by the tests and by every benchmark in
// EXPERIMENTS.md.

#ifndef MMV_WORKLOAD_GENERATORS_H_
#define MMV_WORKLOAD_GENERATORS_H_

#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/program.h"
#include "datalog/program.h"
#include "maintenance/del_add.h"

namespace mmv {
namespace workload {

/// \brief Chain program of the shape
///   p0(i) facts (i in [0, width)),  p{k+1}(X) <- p{k}(X)
/// View size = width * (depth + 1); every derived atom has exactly one
/// derivation (good for measuring pure propagation).
Program MakeChain(int depth, int width);

/// \brief Diamond program:
///   base(i) facts; l(X) <- base(X); r(X) <- base(X);
///   top{k}(X) <- l(X) ... joining layers — every top atom has TWO
/// derivations, exercising DRed's rederivation (atoms survive deletion of
/// one proof).
Program MakeDiamond(int depth, int width);

/// \brief `chains` independent chain programs side by side (predicates
/// c<k>_p<level>). Deleting from one chain leaves the others untouched —
/// the regime where DRed's clause pruning (step 3a-c) shines against full
/// recomputation.
Program MakeMultiChain(int chains, int depth, int width);

/// \brief Guarded chain: p{k+1}(X) <- p{k}(X), p0(X) — every level
/// re-joins against the base relation (per-level integrity filtering, the
/// classic sideways-information-passing showcase). A naive join enumerates
/// |delta| x |p0| candidates per level; an argument-indexed join probes
/// one bucket per delta atom.
Program MakeGuardedChain(int depth, int width);

/// \brief `chains` independent guarded chains (predicates c<k>_p<level>).
Program MakeGuardedMultiChain(int chains, int depth, int width);

/// \brief Guarded chain with the guard written FIRST:
///   p{k+1}(X) <- p0(X), p{k}(X)
/// — the most selective body atom (the seminaive delta p{k}) is textually
/// last. A declared-order join scans the whole base relation before the
/// delta ever binds X; a selectivity-ordered plan runs the delta atom
/// first and probes p0's arg-value bucket per binding. The join-order
/// showcase for the plan layer.
Program MakeGuardedChainReversed(int depth, int width);

/// \brief Transitive closure over explicit edges:
///   e(a, b) facts; path(X,Y) <- e(X,Y); path(X,Y) <- e(X,Z), path(Z,Y).
Program MakeTransitiveClosure(
    const std::vector<std::pair<int, int>>& edges);

/// \brief Edges 0->1->...->n-1.
std::vector<std::pair<int, int>> ChainEdges(int n);

/// \brief Random DAG edges over n nodes (i -> j only for i < j).
std::vector<std::pair<int, int>> RandomDagEdges(Rng* rng, int n,
                                                int extra_edges);

/// \brief Non-ground interval workload (E7): base atoms carry interval
/// constraints b(X) <- lo <= X <= hi covering `width` disjoint integer
/// ranges of span `span`, chained through `depth` derived predicates with a
/// disequality sprinkled per level. [M] has width*span instances while |M|
/// has only width*(depth+1) atoms.
Program MakeIntervalChain(int depth, int width, int span);

/// \brief Random acyclic constrained program for property-based testing.
struct RandomProgramOptions {
  int base_preds = 2;
  int derived_preds = 3;
  int facts_per_pred = 4;
  int rules_per_pred = 2;
  int max_body = 2;
  int const_pool = 6;       ///< facts draw constants from [0, const_pool)
  double neq_prob = 0.3;    ///< chance a rule carries X != c
  double cmp_prob = 0.3;    ///< chance a rule carries X <= c
  double interval_fact_prob = 0.25;  ///< chance a fact is an interval atom
};
Program MakeRandomProgram(Rng* rng, const RandomProgramOptions& options);

/// \brief A deletion request for one base fact of a generated program:
/// picks the \p index-th fact clause (wrapping) and requests deletion of
/// its instances.
maint::UpdateAtom DeleteFactRequest(const Program& program, size_t index);

/// \brief Ground Datalog twin of MakeChain (for the E5 baselines).
datalog::GProgram MakeGroundChain(int depth, int width);

/// \brief Ground Datalog twin of MakeDiamond.
datalog::GProgram MakeGroundDiamond(int depth, int width);

/// \brief Ground Datalog transitive closure over edges.
datalog::GProgram MakeGroundTC(const std::vector<std::pair<int, int>>& edges);

}  // namespace workload
}  // namespace mmv

#endif  // MMV_WORKLOAD_GENERATORS_H_
