#include "workload/generators.h"

namespace mmv {
namespace workload {

namespace {

std::string Pred(const char* base, int i) {
  return std::string(base) + std::to_string(i);
}

// Adds the fact clause `pred(X) <- X = value`.
void AddGroundFact(Program* p, const std::string& pred, int64_t value) {
  Clause c;
  c.head_pred = pred;
  VarId x = p->factory()->Fresh();
  c.head_args = {Term::Var(x)};
  c.constraint.Add(Primitive::Eq(Term::Var(x), Term::Const(Value(value))));
  p->AddClause(std::move(c));
}

// Adds the fact clause `pred(X) <- lo <= X <= hi`.
void AddIntervalFact(Program* p, const std::string& pred, int64_t lo,
                     int64_t hi) {
  Clause c;
  c.head_pred = pred;
  VarId x = p->factory()->Fresh();
  c.head_args = {Term::Var(x)};
  c.constraint.Add(
      Primitive::Cmp(Term::Var(x), CmpOp::kGe, Term::Const(Value(lo))));
  c.constraint.Add(
      Primitive::Cmp(Term::Var(x), CmpOp::kLe, Term::Const(Value(hi))));
  // Keep the domain integral so instances are finitely enumerable.
  DomainCall call;
  call.domain = "arith";
  call.function = "between";
  call.args = {Term::Const(Value(lo)), Term::Const(Value(hi))};
  c.constraint.Add(Primitive::In(Term::Var(x), std::move(call)));
  p->AddClause(std::move(c));
}

// Adds the rule `head(X) <- body1(X) [, body2(X)]` with optional extras.
void AddCopyRule(Program* p, const std::string& head,
                 const std::vector<std::string>& body,
                 const std::vector<Primitive>& extras = {}) {
  Clause c;
  VarId x = p->factory()->Fresh();
  c.head_pred = head;
  c.head_args = {Term::Var(x)};
  for (const std::string& b : body) {
    c.body.push_back(BodyAtom{b, {Term::Var(x)}});
  }
  for (const Primitive& e : extras) {
    // Extras are written against variable id -1 as a placeholder; rebind.
    Primitive q = e;
    if (q.lhs.is_var()) q.lhs = Term::Var(x);
    c.constraint.Add(std::move(q));
  }
  p->AddClause(std::move(c));
}

}  // namespace

Program MakeChain(int depth, int width) {
  Program p;
  for (int i = 0; i < width; ++i) AddGroundFact(&p, "p0", i);
  for (int k = 0; k < depth; ++k) {
    AddCopyRule(&p, Pred("p", k + 1), {Pred("p", k)});
  }
  return p;
}

Program MakeMultiChain(int chains, int depth, int width) {
  Program p;
  for (int c = 0; c < chains; ++c) {
    std::string prefix = "c" + std::to_string(c) + "_p";
    for (int i = 0; i < width; ++i) AddGroundFact(&p, prefix + "0", i);
    for (int k = 0; k < depth; ++k) {
      AddCopyRule(&p, prefix + std::to_string(k + 1),
                  {prefix + std::to_string(k)});
    }
  }
  return p;
}

Program MakeGuardedChain(int depth, int width) {
  Program p;
  for (int i = 0; i < width; ++i) AddGroundFact(&p, "p0", i);
  for (int k = 0; k < depth; ++k) {
    AddCopyRule(&p, Pred("p", k + 1), {Pred("p", k), "p0"});
  }
  return p;
}

Program MakeGuardedChainReversed(int depth, int width) {
  Program p;
  for (int i = 0; i < width; ++i) AddGroundFact(&p, "p0", i);
  for (int k = 0; k < depth; ++k) {
    AddCopyRule(&p, Pred("p", k + 1), {"p0", Pred("p", k)});
  }
  return p;
}

Program MakeGuardedMultiChain(int chains, int depth, int width) {
  Program p;
  for (int c = 0; c < chains; ++c) {
    std::string prefix = "c" + std::to_string(c) + "_p";
    for (int i = 0; i < width; ++i) AddGroundFact(&p, prefix + "0", i);
    for (int k = 0; k < depth; ++k) {
      AddCopyRule(&p, prefix + std::to_string(k + 1),
                  {prefix + std::to_string(k), prefix + "0"});
    }
  }
  return p;
}

Program MakeDiamond(int depth, int width) {
  Program p;
  for (int i = 0; i < width; ++i) AddGroundFact(&p, "b", i);
  AddCopyRule(&p, "l", {"b"});
  AddCopyRule(&p, "r", {"b"});
  AddCopyRule(&p, "m", {"l"});
  AddCopyRule(&p, "m", {"r"});  // every m atom has two derivations
  for (int k = 0; k < depth; ++k) {
    AddCopyRule(&p, Pred("t", k + 1), {k == 0 ? "m" : Pred("t", k)});
  }
  return p;
}

Program MakeTransitiveClosure(
    const std::vector<std::pair<int, int>>& edges) {
  Program p;
  for (const auto& [a, b] : edges) {
    Clause c;
    c.head_pred = "e";
    VarId x = p.factory()->Fresh();
    VarId y = p.factory()->Fresh();
    c.head_args = {Term::Var(x), Term::Var(y)};
    c.constraint.Add(
        Primitive::Eq(Term::Var(x), Term::Const(Value(static_cast<int64_t>(a)))));
    c.constraint.Add(
        Primitive::Eq(Term::Var(y), Term::Const(Value(static_cast<int64_t>(b)))));
    p.AddClause(std::move(c));
  }
  {
    Clause c;
    VarId x = p.factory()->Fresh(), y = p.factory()->Fresh();
    c.head_pred = "path";
    c.head_args = {Term::Var(x), Term::Var(y)};
    c.body.push_back(BodyAtom{"e", {Term::Var(x), Term::Var(y)}});
    p.AddClause(std::move(c));
  }
  {
    Clause c;
    VarId x = p.factory()->Fresh(), y = p.factory()->Fresh(),
          z = p.factory()->Fresh();
    c.head_pred = "path";
    c.head_args = {Term::Var(x), Term::Var(y)};
    c.body.push_back(BodyAtom{"e", {Term::Var(x), Term::Var(z)}});
    c.body.push_back(BodyAtom{"path", {Term::Var(z), Term::Var(y)}});
    p.AddClause(std::move(c));
  }
  return p;
}

std::vector<std::pair<int, int>> ChainEdges(int n) {
  std::vector<std::pair<int, int>> out;
  for (int i = 0; i + 1 < n; ++i) out.emplace_back(i, i + 1);
  return out;
}

std::vector<std::pair<int, int>> RandomDagEdges(Rng* rng, int n,
                                                int extra_edges) {
  std::vector<std::pair<int, int>> out = ChainEdges(n);
  for (int k = 0; k < extra_edges; ++k) {
    int i = static_cast<int>(rng->Int(0, n - 2));
    int j = static_cast<int>(rng->Int(i + 1, n - 1));
    out.emplace_back(i, j);
  }
  // Dedup.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Program MakeIntervalChain(int depth, int width, int span) {
  Program p;
  for (int i = 0; i < width; ++i) {
    int64_t lo = static_cast<int64_t>(i) * span * 2;
    AddIntervalFact(&p, "b0", lo, lo + span - 1);
  }
  for (int k = 0; k < depth; ++k) {
    // Each level knocks one point out of the first range.
    Primitive neq = Primitive::Neq(Term::Var(-1), Term::Const(Value(k)));
    AddCopyRule(&p, Pred("b", k + 1), {Pred("b", k)}, {neq});
  }
  return p;
}

Program MakeRandomProgram(Rng* rng, const RandomProgramOptions& options) {
  Program p;
  std::vector<std::string> sources;
  for (int i = 0; i < options.base_preds; ++i) {
    std::string pred = Pred("base", i);
    for (int f = 0; f < options.facts_per_pred; ++f) {
      if (rng->Chance(options.interval_fact_prob)) {
        int64_t lo = rng->Int(0, options.const_pool - 1);
        int64_t hi = lo + rng->Int(0, 3);
        AddIntervalFact(&p, pred, lo, hi);
      } else {
        AddGroundFact(&p, pred, rng->Int(0, options.const_pool - 1));
      }
    }
    sources.push_back(pred);
  }
  for (int i = 0; i < options.derived_preds; ++i) {
    std::string pred = Pred("d", i);
    for (int r = 0; r < options.rules_per_pred; ++r) {
      int body_len = static_cast<int>(rng->Int(1, options.max_body));
      std::vector<std::string> body;
      for (int b = 0; b < body_len; ++b) body.push_back(rng->Pick(sources));
      std::vector<Primitive> extras;
      if (rng->Chance(options.neq_prob)) {
        extras.push_back(Primitive::Neq(
            Term::Var(-1),
            Term::Const(Value(rng->Int(0, options.const_pool - 1)))));
      }
      if (rng->Chance(options.cmp_prob)) {
        extras.push_back(Primitive::Cmp(
            Term::Var(-1), CmpOp::kLe,
            Term::Const(Value(rng->Int(0, options.const_pool)))));
      }
      AddCopyRule(&p, pred, body, extras);
    }
    sources.push_back(pred);
  }
  return p;
}

maint::UpdateAtom DeleteFactRequest(const Program& program, size_t index) {
  std::vector<const Clause*> facts;
  for (const Clause& c : program.clauses()) {
    if (c.IsFact()) facts.push_back(&c);
  }
  const Clause* chosen = facts[index % facts.size()];
  maint::UpdateAtom request;
  request.pred = chosen->head_pred;
  request.args = chosen->head_args;
  request.constraint = chosen->constraint;
  return request;
}

datalog::GProgram MakeGroundChain(int depth, int width) {
  datalog::GProgram p;
  for (int i = 0; i < width; ++i) {
    p.AddFact(datalog::GroundFact{"p0", {Value(static_cast<int64_t>(i))}});
  }
  for (int k = 0; k < depth; ++k) {
    datalog::GRule r;
    r.head = {Pred("p", k + 1), {datalog::GTerm::Var(0)}};
    r.body = {{Pred("p", k), {datalog::GTerm::Var(0)}}};
    p.AddRule(std::move(r));
  }
  return p;
}

datalog::GProgram MakeGroundDiamond(int depth, int width) {
  datalog::GProgram p;
  for (int i = 0; i < width; ++i) {
    p.AddFact(datalog::GroundFact{"b", {Value(static_cast<int64_t>(i))}});
  }
  auto copy_rule = [](const std::string& head, const std::string& body) {
    datalog::GRule r;
    r.head = {head, {datalog::GTerm::Var(0)}};
    r.body = {{body, {datalog::GTerm::Var(0)}}};
    return r;
  };
  p.AddRule(copy_rule("l", "b"));
  p.AddRule(copy_rule("r", "b"));
  p.AddRule(copy_rule("m", "l"));
  p.AddRule(copy_rule("m", "r"));
  for (int k = 0; k < depth; ++k) {
    p.AddRule(copy_rule(Pred("t", k + 1), k == 0 ? "m" : Pred("t", k)));
  }
  return p;
}

datalog::GProgram MakeGroundTC(
    const std::vector<std::pair<int, int>>& edges) {
  datalog::GProgram p;
  for (const auto& [a, b] : edges) {
    p.AddFact(datalog::GroundFact{
        "e", {Value(static_cast<int64_t>(a)), Value(static_cast<int64_t>(b))}});
  }
  {
    datalog::GRule r;
    r.head = {"path", {datalog::GTerm::Var(0), datalog::GTerm::Var(1)}};
    r.body = {{"e", {datalog::GTerm::Var(0), datalog::GTerm::Var(1)}}};
    p.AddRule(std::move(r));
  }
  {
    datalog::GRule r;
    r.head = {"path", {datalog::GTerm::Var(0), datalog::GTerm::Var(1)}};
    r.body = {{"e", {datalog::GTerm::Var(0), datalog::GTerm::Var(2)}},
              {"path", {datalog::GTerm::Var(2), datalog::GTerm::Var(1)}}};
    p.AddRule(std::move(r));
  }
  return p;
}

}  // namespace workload
}  // namespace mmv
