// Versioned in-memory table.
//
// Every mutation is stamped with the catalog clock tick, and the full
// mutation log is retained, so the engine can answer
//   - current-state queries (select_eq / select_range / scan),
//   - as-of queries RowsAt(t)  — the paper's f_t, and
//   - diffs DiffBetween(t, t') — the paper's f+ and f- (eqs. 6, 7).

#ifndef MMV_RELATIONAL_TABLE_H_
#define MMV_RELATIONAL_TABLE_H_

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "relational/row.h"

namespace mmv {
namespace rel {

/// \brief Added/removed rows between two ticks.
struct TableDiff {
  std::vector<Row> added;
  std::vector<Row> removed;
};

/// \brief A logged mutation.
struct LogEntry {
  int64_t tick;
  bool is_insert;  // false == delete
  Row row;
};

/// \brief Append-log versioned table with per-column hash indexes.
///
/// An index is built lazily on the first SelectEq over its column and then
/// maintained incrementally: Insert appends one entry per materialized
/// index, Delete/DeleteWhere erase the dead slot's entries. Mutations never
/// drop the indexes wholesale.
///
/// Concurrency: the READ path (SelectEq/SelectRange/Scan/RowsAt/Diff) is
/// safe to call from multiple threads while no mutator runs — the one
/// hidden write, the lazy index build inside a const SelectEq, is guarded
/// by an RW lock so two first-readers of a column cannot race. Mutators
/// are NOT safe against concurrent readers (rows and the log are
/// unguarded by design); parallel evaluation passes enforce that window
/// externally via DomainManager::StateEpoch.
class Table {
 public:
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// \brief Inserts \p row at \p tick. Duplicate rows are allowed
  /// (multiset semantics, matching the paper's duplicate semantics).
  Status Insert(Row row, int64_t tick);

  /// \brief Deletes one occurrence of \p row at \p tick; NotFound if absent.
  Status Delete(const Row& row, int64_t tick);

  /// \brief Deletes every current row with \p value in \p column;
  /// returns the number removed.
  Result<int64_t> DeleteWhere(const std::string& column, const Value& value,
                              int64_t tick);

  /// \brief Current rows with row[column] == value (hash-indexed).
  Result<std::vector<Row>> SelectEq(const std::string& column,
                                    const Value& value) const;

  /// \brief Current rows with lo <= row[column] <= hi (numeric).
  Result<std::vector<Row>> SelectRange(const std::string& column, double lo,
                                       double hi) const;

  /// \brief All current rows.
  std::vector<Row> Scan() const;

  /// \brief Rows as of tick \p t (replayed from the log): the paper's f_t.
  std::vector<Row> RowsAt(int64_t t) const;

  /// \brief f+ / f- between ticks \p t0 and \p t1 (t0 <= t1).
  TableDiff DiffBetween(int64_t t0, int64_t t1) const;

  /// \brief Number of live rows.
  size_t size() const { return live_count_; }

  /// \brief Number of log entries retained.
  size_t log_size() const { return log_.size(); }

 private:
  struct Slot {
    Row row;
    bool dead = false;
  };

  void IndexInsertedSlot(size_t slot);
  void IndexDeletedSlot(size_t slot);
  const std::unordered_multimap<size_t, size_t>& IndexFor(int col) const;

  Schema schema_;
  std::vector<Slot> slots_;
  size_t live_count_ = 0;
  std::vector<LogEntry> log_;
  // column -> (value hash -> slot idx); collisions re-checked with ==.
  // Guarded by index_mu_: shared for lookups, exclusive for the lazy
  // build and the mutators' incremental maintenance. A returned inner
  // multimap reference stays valid (and immutable) across other columns'
  // builds — unordered_map never invalidates references on insert — so
  // readers may keep using it after dropping the lock.
  mutable std::unordered_map<int, std::unordered_multimap<size_t, size_t>>
      indexes_;
  mutable std::shared_mutex index_mu_;
};

}  // namespace rel
}  // namespace mmv

#endif  // MMV_RELATIONAL_TABLE_H_
