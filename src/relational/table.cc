#include "relational/table.h"

#include <algorithm>
#include <mutex>

namespace mmv {
namespace rel {

void Table::IndexInsertedSlot(size_t slot) {
  std::unique_lock lock(index_mu_);
  for (auto& [col, idx] : indexes_) {
    idx.emplace(slots_[slot].row[static_cast<size_t>(col)].Hash(), slot);
  }
}

void Table::IndexDeletedSlot(size_t slot) {
  std::unique_lock lock(index_mu_);
  for (auto& [col, idx] : indexes_) {
    size_t h = slots_[slot].row[static_cast<size_t>(col)].Hash();
    auto [lo, hi] = idx.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == slot) {
        idx.erase(it);
        break;
      }
    }
  }
}

Status Table::Insert(Row row, int64_t tick) {
  if (row.size() != schema_.arity()) {
    return Status::InvalidArgument("row arity mismatch for table " +
                                   schema_.table_name);
  }
  log_.push_back(LogEntry{tick, true, row});
  slots_.push_back(Slot{std::move(row), false});
  live_count_++;
  IndexInsertedSlot(slots_.size() - 1);
  return Status::OK();
}

Status Table::Delete(const Row& row, int64_t tick) {
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    if (!s.dead && s.row == row) {
      s.dead = true;
      live_count_--;
      log_.push_back(LogEntry{tick, false, row});
      IndexDeletedSlot(i);
      return Status::OK();
    }
  }
  return Status::NotFound("row not present in " + schema_.table_name + ": " +
                          RowToString(row));
}

Result<int64_t> Table::DeleteWhere(const std::string& column,
                                   const Value& value, int64_t tick) {
  int col = schema_.ColumnIndex(column);
  if (col < 0) {
    return Status::NotFound("no column " + column + " in " +
                            schema_.table_name);
  }
  int64_t removed = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    if (!s.dead && s.row[static_cast<size_t>(col)] == value) {
      s.dead = true;
      live_count_--;
      log_.push_back(LogEntry{tick, false, s.row});
      IndexDeletedSlot(i);
      removed++;
    }
  }
  return removed;
}

const std::unordered_multimap<size_t, size_t>& Table::IndexFor(
    int col) const {
  {
    std::shared_lock lock(index_mu_);
    auto it = indexes_.find(col);
    if (it != indexes_.end()) return it->second;
  }
  // Upgrade to exclusive for the lazy build; re-check because another
  // reader may have built the index between the two locks.
  std::unique_lock lock(index_mu_);
  auto it = indexes_.find(col);
  if (it != indexes_.end()) return it->second;
  auto& idx = indexes_[col];
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].dead) continue;
    idx.emplace(slots_[i].row[static_cast<size_t>(col)].Hash(), i);
  }
  return idx;
}

Result<std::vector<Row>> Table::SelectEq(const std::string& column,
                                         const Value& value) const {
  int col = schema_.ColumnIndex(column);
  if (col < 0) {
    return Status::NotFound("no column " + column + " in " +
                            schema_.table_name);
  }
  const auto& idx = IndexFor(col);
  std::vector<Row> out;
  auto [lo, hi] = idx.equal_range(value.Hash());
  for (auto it = lo; it != hi; ++it) {
    const Slot& s = slots_[it->second];
    if (!s.dead && s.row[static_cast<size_t>(col)] == value) {
      out.push_back(s.row);
    }
  }
  return out;
}

Result<std::vector<Row>> Table::SelectRange(const std::string& column,
                                            double lo, double hi) const {
  int col = schema_.ColumnIndex(column);
  if (col < 0) {
    return Status::NotFound("no column " + column + " in " +
                            schema_.table_name);
  }
  std::vector<Row> out;
  for (const Slot& s : slots_) {
    if (s.dead) continue;
    const Value& v = s.row[static_cast<size_t>(col)];
    if (v.is_numeric() && v.numeric() >= lo && v.numeric() <= hi) {
      out.push_back(s.row);
    }
  }
  return out;
}

std::vector<Row> Table::Scan() const {
  std::vector<Row> out;
  out.reserve(live_count_);
  for (const Slot& s : slots_) {
    if (!s.dead) out.push_back(s.row);
  }
  return out;
}

std::vector<Row> Table::RowsAt(int64_t t) const {
  // Replay the log up to and including tick t (multiset semantics).
  std::vector<Row> rows;
  for (const LogEntry& e : log_) {
    if (e.tick > t) break;  // log is tick-ordered (monotone clock)
    if (e.is_insert) {
      rows.push_back(e.row);
    } else {
      auto it = std::find(rows.begin(), rows.end(), e.row);
      if (it != rows.end()) rows.erase(it);
    }
  }
  return rows;
}

TableDiff Table::DiffBetween(int64_t t0, int64_t t1) const {
  // Multiset difference of the two states.
  std::vector<Row> before = RowsAt(t0);
  std::vector<Row> after = RowsAt(t1);
  TableDiff diff;
  std::vector<bool> matched(before.size(), false);
  for (const Row& r : after) {
    bool found = false;
    for (size_t i = 0; i < before.size(); ++i) {
      if (!matched[i] && before[i] == r) {
        matched[i] = true;
        found = true;
        break;
      }
    }
    if (!found) diff.added.push_back(r);
  }
  for (size_t i = 0; i < before.size(); ++i) {
    if (!matched[i]) diff.removed.push_back(before[i]);
  }
  return diff;
}

}  // namespace rel
}  // namespace mmv
