// Standalone hash index over rows, used by the ground Datalog engine and
// available to embedders of the relational engine.

#ifndef MMV_RELATIONAL_INDEX_H_
#define MMV_RELATIONAL_INDEX_H_

#include <unordered_map>
#include <vector>

#include "relational/row.h"

namespace mmv {
namespace rel {

/// \brief Hash index mapping a key column's value to row positions.
class HashIndex {
 public:
  /// \brief Builds an index on column \p col of \p rows.
  HashIndex(const std::vector<Row>& rows, size_t col);

  /// \brief Row positions whose key equals \p v.
  std::vector<size_t> Lookup(const std::vector<Row>& rows,
                             const Value& v) const;

  size_t size() const { return map_.size(); }

 private:
  size_t col_;
  std::unordered_multimap<size_t, size_t> map_;
};

}  // namespace rel
}  // namespace mmv

#endif  // MMV_RELATIONAL_INDEX_H_
