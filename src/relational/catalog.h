// Catalog: named tables plus the global clock that stamps every mutation.
//
// The clock is the time axis of the paper's Section 4: domain functions
// evaluated "at time t" read table state RowsAt(t); advancing the clock and
// mutating tables models external updates to the integrated sources.

#ifndef MMV_RELATIONAL_CATALOG_H_
#define MMV_RELATIONAL_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "relational/table.h"

namespace mmv {
namespace rel {

/// \brief Monotone logical clock shared by the catalog and domain manager.
class Clock {
 public:
  /// \brief Current tick.
  int64_t now() const { return now_; }

  /// \brief Advances and returns the new tick.
  int64_t Advance() { return ++now_; }

  /// \brief Records an in-place table write at the CURRENT tick
  /// (Catalog::Insert/Delete call this). Same-tick writes change live
  /// evaluations while now() stands still, so state epochs
  /// (DomainManager::StateEpoch) fold this counter in to observe them.
  /// Callers mutating tables directly (Table::Insert with an explicit
  /// tick) must NoteMutation or Advance themselves.
  void NoteMutation() { ++mutations_; }

  /// \brief Total same-tick writes recorded so far.
  int64_t mutations() const { return mutations_; }

 private:
  int64_t now_ = 0;
  int64_t mutations_ = 0;
};

/// \brief Owns tables and the clock.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// \brief Creates an empty table; AlreadyExists if the name is taken.
  Result<Table*> CreateTable(Schema schema);

  /// \brief Looks up a table by name.
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  /// \brief Inserts at the current tick (convenience).
  Status Insert(const std::string& table, Row row);

  /// \brief Deletes one occurrence at the current tick (convenience).
  Status Delete(const std::string& table, const Row& row);

  Clock& clock() { return clock_; }
  const Clock& clock() const { return clock_; }

  size_t table_count() const { return tables_.size(); }

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  Clock clock_;
};

}  // namespace rel
}  // namespace mmv

#endif  // MMV_RELATIONAL_CATALOG_H_
