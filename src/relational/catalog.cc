#include "relational/catalog.h"

namespace mmv {
namespace rel {

Result<Table*> Catalog::CreateTable(Schema schema) {
  std::string name = schema.table_name;  // copy: schema is moved below
  if (tables_.count(name)) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  auto table = std::make_unique<Table>(std::move(schema));
  Table* ptr = table.get();
  tables_[std::move(name)] = std::move(table);
  return ptr;
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + name);
  }
  return it->second.get();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + name);
  }
  return static_cast<const Table*>(it->second.get());
}

Status Catalog::Insert(const std::string& table, Row row) {
  MMV_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  MMV_RETURN_NOT_OK(t->Insert(std::move(row), clock_.now()));
  clock_.NoteMutation();
  return Status::OK();
}

Status Catalog::Delete(const std::string& table, const Row& row) {
  MMV_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  MMV_RETURN_NOT_OK(t->Delete(row, clock_.now()));
  clock_.NoteMutation();
  return Status::OK();
}

}  // namespace rel
}  // namespace mmv
