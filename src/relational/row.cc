#include "relational/row.h"

#include <sstream>

#include "common/hash.h"

namespace mmv {
namespace rel {

size_t RowHash(const Row& row) {
  size_t h = 0x726f77;  // "row"
  for (const Value& v : row) h = HashCombine(h, v.Hash());
  return h;
}

std::string RowToString(const Row& row) {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i) os << ", ";
    os << row[i];
  }
  os << ")";
  return os.str();
}

Value RowToValue(const Row& row) { return Value(ValueList(row)); }

Result<Row> ValueToRow(const Value& v) {
  if (!v.is_list()) {
    return Status::TypeError("expected a tuple value, got " + v.ToString());
  }
  return v.as_list();
}

int Schema::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == column) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace rel
}  // namespace mmv
