#include "relational/index.h"

namespace mmv {
namespace rel {

HashIndex::HashIndex(const std::vector<Row>& rows, size_t col) : col_(col) {
  for (size_t i = 0; i < rows.size(); ++i) {
    map_.emplace(rows[i][col_].Hash(), i);
  }
}

std::vector<size_t> HashIndex::Lookup(const std::vector<Row>& rows,
                                      const Value& v) const {
  std::vector<size_t> out;
  auto [lo, hi] = map_.equal_range(v.Hash());
  for (auto it = lo; it != hi; ++it) {
    if (rows[it->second][col_] == v) out.push_back(it->second);
  }
  return out;
}

}  // namespace rel
}  // namespace mmv
