// Rows and schemas for the in-memory relational engine that stands in for
// the PARADOX / DBASE / INGRES systems integrated by HERMES.

#ifndef MMV_RELATIONAL_ROW_H_
#define MMV_RELATIONAL_ROW_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace mmv {
namespace rel {

/// \brief A table row: one Value per column.
using Row = std::vector<Value>;

/// \brief Hash of a row consistent with Value equality.
size_t RowHash(const Row& row);

/// \brief Renders (v1, v2, ...) for diagnostics.
std::string RowToString(const Row& row);

/// \brief Converts a row into a single list Value, the shape in which
/// relational domain calls return tuples to the mediator (so constraints can
/// carry whole tuples, cf. `in(A, paradox:select_eq(...))`).
Value RowToValue(const Row& row);

/// \brief Inverse of RowToValue; fails if \p v is not a list.
Result<Row> ValueToRow(const Value& v);

/// \brief Column names of a table.
struct Schema {
  std::string table_name;
  std::vector<std::string> columns;

  /// \brief Index of \p column or -1.
  int ColumnIndex(const std::string& column) const;

  size_t arity() const { return columns.size(); }
};

}  // namespace rel
}  // namespace mmv

#endif  // MMV_RELATIONAL_ROW_H_
