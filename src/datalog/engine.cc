#include "datalog/engine.h"

#include <functional>

namespace mmv {
namespace datalog {

bool Database::Insert(Symbol pred, Tuple t) {
  return rels_[pred].insert(std::move(t)).second;
}

bool Database::Remove(Symbol pred, const Tuple& t) {
  auto it = rels_.find(pred);
  if (it == rels_.end()) return false;
  return it->second.erase(t) > 0;
}

bool Database::Contains(Symbol pred, const Tuple& t) const {
  auto it = rels_.find(pred);
  return it != rels_.end() && it->second.count(t) > 0;
}

const std::unordered_set<Tuple, TupleHash>& Database::Rel(Symbol pred) const {
  static const std::unordered_set<Tuple, TupleHash> kEmpty;
  auto it = rels_.find(pred);
  return it == rels_.end() ? kEmpty : it->second;
}

size_t Database::size() const {
  size_t n = 0;
  for (const auto& [_, rel] : rels_) n += rel.size();
  return n;
}

std::vector<Symbol> Database::Predicates() const {
  std::vector<Symbol> out;
  out.reserve(rels_.size());
  for (const auto& [p, _] : rels_) out.push_back(p);
  return out;
}

bool MatchAtom(const GAtomPat& pat, const Tuple& tuple, Bindings* b) {
  if (pat.args.size() != tuple.size()) return false;
  // Collect tentative new bindings so a failed match leaves b untouched.
  std::vector<std::pair<int, Value>> added;
  for (size_t i = 0; i < pat.args.size(); ++i) {
    const GTerm& t = pat.args[i];
    if (!t.is_var) {
      if (!(t.val == tuple[i])) {
        for (auto& [v, _] : added) b->erase(v);
        return false;
      }
      continue;
    }
    auto it = b->find(t.var);
    if (it != b->end()) {
      if (!(it->second == tuple[i])) {
        for (auto& [v, _] : added) b->erase(v);
        return false;
      }
    } else {
      (*b)[t.var] = tuple[i];
      added.emplace_back(t.var, tuple[i]);
    }
  }
  return true;
}

Tuple InstantiateHead(const GAtomPat& head, const Bindings& b) {
  Tuple out;
  out.reserve(head.args.size());
  for (const GTerm& t : head.args) {
    if (t.is_var) {
      out.push_back(b.at(t.var));
    } else {
      out.push_back(t.val);
    }
  }
  return out;
}

namespace {

void MatchFrom(const GRule& rule, const Database& db, const Database* delta,
               int pivot, size_t pos, Bindings* b,
               const std::function<void(const Bindings&)>& emit) {
  if (pos == rule.body.size()) {
    emit(*b);
    return;
  }
  const GAtomPat& pat = rule.body[pos];
  const auto& rel = (static_cast<int>(pos) == pivot && delta != nullptr)
                        ? delta->Rel(pat.pred)
                        : db.Rel(pat.pred);
  for (const Tuple& t : rel) {
    Bindings saved = *b;
    if (MatchAtom(pat, t, b)) {
      MatchFrom(rule, db, delta, pivot, pos + 1, b, emit);
    }
    *b = std::move(saved);
  }
}

}  // namespace

void MatchRule(const GRule& rule, const Database& db, const Database* delta,
               int pivot, const std::function<void(const Bindings&)>& emit) {
  Bindings b;
  MatchFrom(rule, db, delta, pivot, 0, &b, emit);
}

Database Evaluate(const GProgram& program, EvalStats* stats) {
  EvalStats local;
  if (!stats) stats = &local;
  *stats = EvalStats();
  Database db;
  Database delta;
  for (const GroundFact& f : program.facts()) {
    if (db.Insert(f.pred, f.args)) delta.Insert(f.pred, f.args);
  }
  while (delta.size() > 0) {
    stats->rounds++;
    Database next_delta;
    for (const GRule& rule : program.rules()) {
      for (size_t pivot = 0; pivot < rule.body.size(); ++pivot) {
        // Seminaive: the pivot position reads the delta, earlier positions
        // read (db \ delta) would be ideal; reading db for non-pivot
        // positions re-derives some tuples, which Insert dedups. To avoid
        // duplicate *enumeration* across pivots we only require the pivot
        // to hit delta; correctness is unaffected.
        MatchRule(rule, db, &delta, static_cast<int>(pivot),
                  [&](const Bindings& b) {
                    stats->derivations++;
                    Tuple head = InstantiateHead(rule.head, b);
                    if (!db.Contains(rule.head.pred, head)) {
                      next_delta.Insert(rule.head.pred, head);
                    }
                  });
      }
    }
    for (Symbol pred : next_delta.Predicates()) {
      for (const Tuple& t : next_delta.Rel(pred)) {
        db.Insert(pred, t);
      }
    }
    delta = std::move(next_delta);
  }
  stats->tuples = static_cast<int64_t>(db.size());
  return db;
}

}  // namespace datalog
}  // namespace mmv
