// The ground DRed algorithm of Gupta, Mumick & Subrahmanian (SIGMOD'93)
// [22] — the baseline the paper's Section 3.1.1 extends to constraints.
//
// Overdelete: seed with the deleted base facts; transitively collect every
// tuple with at least one derivation through a deleted tuple. Rederive:
// tuples in the overdeleted set that still have an alternative derivation
// from surviving tuples are put back, to fixpoint. The rederivation step is
// the cost the paper's StDel eliminates.

#ifndef MMV_DATALOG_DRED_GROUND_H_
#define MMV_DATALOG_DRED_GROUND_H_

#include "datalog/engine.h"

namespace mmv {
namespace datalog {

/// \brief Phase counters of a ground DRed run.
struct GroundDRedStats {
  size_t overdeleted = 0;
  size_t rederived = 0;
  int64_t overdelete_derivations = 0;
  int64_t rederive_derivations = 0;
  double overdelete_ms = 0;
  double rederive_ms = 0;
};

/// \brief Deletes \p facts (base tuples) from \p db, maintaining the
/// materialized view of \p program incrementally. \p db must equal
/// Evaluate(program). The facts are also removed from consideration as EDB.
void DeleteFactsDRed(const GProgram& program, Database* db,
                     const std::vector<GroundFact>& facts,
                     GroundDRedStats* stats = nullptr);

}  // namespace datalog
}  // namespace mmv

#endif  // MMV_DATALOG_DRED_GROUND_H_
