// Seminaive bottom-up evaluation of ground Datalog.

#ifndef MMV_DATALOG_ENGINE_H_
#define MMV_DATALOG_ENGINE_H_

#include <functional>

#include "datalog/program.h"

namespace mmv {
namespace datalog {

/// \brief Relations: predicate -> set of tuples (interned-symbol keyed).
class Database {
 public:
  /// \brief Inserts; returns true if the tuple was new.
  bool Insert(Symbol pred, Tuple t);

  /// \brief Removes; returns true if present.
  bool Remove(Symbol pred, const Tuple& t);

  bool Contains(Symbol pred, const Tuple& t) const;

  const std::unordered_set<Tuple, TupleHash>& Rel(Symbol pred) const;

  /// \brief Total tuples across all relations.
  size_t size() const;

  std::vector<Symbol> Predicates() const;

  bool operator==(const Database& other) const { return rels_ == other.rels_; }

 private:
  std::unordered_map<Symbol, std::unordered_set<Tuple, TupleHash>> rels_;
};

/// \brief Evaluation counters.
struct EvalStats {
  int64_t rounds = 0;
  int64_t derivations = 0;
  int64_t tuples = 0;
};

/// \brief Seminaive least-fixpoint evaluation (facts + rules to closure).
Database Evaluate(const GProgram& program, EvalStats* stats = nullptr);

/// \brief Binding environment during rule matching: variable id -> value.
using Bindings = std::unordered_map<int, Value>;

/// \brief Matches \p pat against \p tuple, extending \p b; false on clash.
bool MatchAtom(const GAtomPat& pat, const Tuple& tuple, Bindings* b);

/// \brief Instantiates a head pattern under complete bindings.
Tuple InstantiateHead(const GAtomPat& head, const Bindings& b);

/// \brief Enumerates all body matches of \p rule against \p db with the
/// body position \p pivot restricted to tuples of \p delta (the seminaive
/// delta trick); pass pivot = -1 to match against db alone. Calls \p emit
/// for every complete binding.
void MatchRule(const GRule& rule, const Database& db, const Database* delta,
               int pivot, const std::function<void(const Bindings&)>& emit);

}  // namespace datalog
}  // namespace mmv

#endif  // MMV_DATALOG_ENGINE_H_
