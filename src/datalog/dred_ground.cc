#include "datalog/dred_ground.h"

#include <chrono>

namespace mmv {
namespace datalog {

void DeleteFactsDRed(const GProgram& program, Database* db,
                     const std::vector<GroundFact>& facts,
                     GroundDRedStats* stats) {
  GroundDRedStats local;
  if (!stats) stats = &local;
  *stats = GroundDRedStats();
  using Clock = std::chrono::steady_clock;
  auto t0 = Clock::now();

  // ---- Overdelete ------------------------------------------------------
  Database over;   // everything possibly gone
  Database layer;  // newest overdeleted layer
  for (const GroundFact& f : facts) {
    if (db->Contains(f.pred, f.args) && over.Insert(f.pred, f.args)) {
      layer.Insert(f.pred, f.args);
    }
  }
  while (layer.size() > 0) {
    Database next;
    for (const GRule& rule : program.rules()) {
      for (size_t pivot = 0; pivot < rule.body.size(); ++pivot) {
        MatchRule(rule, *db, &layer, static_cast<int>(pivot),
                  [&](const Bindings& b) {
                    stats->overdelete_derivations++;
                    Tuple head = InstantiateHead(rule.head, b);
                    if (db->Contains(rule.head.pred, head) &&
                        !over.Contains(rule.head.pred, head)) {
                      over.Insert(rule.head.pred, head);
                      next.Insert(rule.head.pred, head);
                    }
                  });
      }
    }
    layer = std::move(next);
  }
  // Apply the overdeletion.
  for (Symbol pred : over.Predicates()) {
    for (const Tuple& t : over.Rel(pred)) db->Remove(pred, t);
    stats->overdeleted += over.Rel(pred).size();
  }
  stats->overdelete_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  // ---- Rederive ----------------------------------------------------------
  t0 = Clock::now();
  // The deleted base facts themselves must not come back as EDB; they may
  // only reappear if some rule derives them.
  Database candidates = over;
  for (const GroundFact& f : facts) candidates.Remove(f.pred, f.args);

  bool changed = true;
  while (changed) {
    changed = false;
    for (const GRule& rule : program.rules()) {
      MatchRule(rule, *db, nullptr, -1, [&](const Bindings& b) {
        stats->rederive_derivations++;
        Tuple head = InstantiateHead(rule.head, b);
        if (candidates.Contains(rule.head.pred, head) &&
            !db->Contains(rule.head.pred, head)) {
          db->Insert(rule.head.pred, head);
          stats->rederived++;
          changed = true;
        }
      });
    }
  }
  stats->rederive_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace datalog
}  // namespace mmv
