// The counting algorithm of Gupta, Katiyar & Mumick [21]: maintain, per
// derived tuple, the number of its derivations; deletion decrements counts
// and removes tuples that reach zero.
//
// The algorithm is restricted to NON-recursive programs — on recursion the
// counts can be infinite, which is exactly the limitation the paper's StDel
// algorithm overcomes (Conclusion, bullet 2). Build() rejects recursive
// programs with InvalidArgument.

#ifndef MMV_DATALOG_COUNTING_H_
#define MMV_DATALOG_COUNTING_H_

#include "datalog/engine.h"

namespace mmv {
namespace datalog {

/// \brief Deletion counters.
struct CountingStats {
  int64_t delta_derivations = 0;
  size_t tuples_removed = 0;
  double delete_ms = 0;
};

/// \brief Materialized view with derivation counts.
class CountingView {
 public:
  /// \brief Evaluates \p program and computes derivation counts per tuple.
  /// Fails for recursive programs (infinite counts).
  static Result<CountingView> Build(const GProgram& program);

  /// \brief Incrementally deletes base \p facts: the classic delta-join
  /// count propagation. No rederivation pass is ever needed — but only
  /// because recursion was ruled out up front.
  Status DeleteFacts(const std::vector<GroundFact>& facts,
                     CountingStats* stats = nullptr);

  /// \brief Tuples with positive count.
  const Database& db() const { return db_; }

  /// \brief The derivation count of a tuple (0 when absent).
  int64_t CountOf(Symbol pred, const Tuple& t) const;

 private:
  explicit CountingView(const GProgram* program) : program_(program) {}

  const GProgram* program_;
  std::vector<Symbol> topo_;  ///< IDB predicates in dependency order
  Database db_;
  std::unordered_map<Symbol, std::unordered_map<Tuple, int64_t, TupleHash>>
      counts_;
};

}  // namespace datalog
}  // namespace mmv

#endif  // MMV_DATALOG_COUNTING_H_
