// Ground Datalog substrate: the setting of the baselines the paper improves
// on — the DRed algorithm of Gupta, Mumick & Subrahmanian [22] and the
// counting algorithm of Gupta, Katiyar & Mumick [21]. Views here are sets of
// fully ground tuples (the assumption the paper removes).

#ifndef MMV_DATALOG_PROGRAM_H_
#define MMV_DATALOG_PROGRAM_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/interner.h"
#include "common/result.h"
#include "common/value.h"

namespace mmv {
namespace datalog {

/// \brief A ground tuple.
using Tuple = std::vector<Value>;

/// \brief Hash functor for tuples.
struct TupleHash {
  size_t operator()(const Tuple& t) const;
};

/// \brief A term of a rule: variable (id >= 0) or constant.
struct GTerm {
  bool is_var = false;
  int var = -1;
  Value val;

  static GTerm Var(int v) {
    GTerm t;
    t.is_var = true;
    t.var = v;
    return t;
  }
  static GTerm Const(Value v) {
    GTerm t;
    t.val = std::move(v);
    return t;
  }
};

/// \brief An atom pattern pred(t1, ..., tk).
struct GAtomPat {
  Symbol pred;
  std::vector<GTerm> args;
};

/// \brief A Datalog rule head :- body.
struct GRule {
  GAtomPat head;
  std::vector<GAtomPat> body;
};

/// \brief A ground fact pred(values).
struct GroundFact {
  Symbol pred;
  Tuple args;

  bool operator==(const GroundFact& other) const {
    return pred == other.pred && args == other.args;
  }
  std::string ToString() const;
};

/// \brief A Datalog program: base facts (EDB) plus rules (IDB).
class GProgram {
 public:
  void AddFact(GroundFact fact) { facts_.push_back(std::move(fact)); }
  void AddRule(GRule rule) { rules_.push_back(std::move(rule)); }

  const std::vector<GroundFact>& facts() const { return facts_; }
  const std::vector<GRule>& rules() const { return rules_; }

  /// \brief True iff the IDB dependency graph has a cycle.
  bool IsRecursive() const;

  /// \brief IDB predicates in a topological order of dependencies;
  /// fails when the program is recursive.
  Result<std::vector<Symbol>> Stratify() const;

 private:
  std::vector<GroundFact> facts_;
  std::vector<GRule> rules_;
};

}  // namespace datalog
}  // namespace mmv

#endif  // MMV_DATALOG_PROGRAM_H_
