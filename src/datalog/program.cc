#include "datalog/program.h"

#include <functional>
#include <set>
#include <sstream>

#include "common/hash.h"

namespace mmv {
namespace datalog {

size_t TupleHash::operator()(const Tuple& t) const {
  size_t h = 0x747570;
  for (const Value& v : t) h = HashCombine(h, v.Hash());
  return h;
}

std::string GroundFact::ToString() const {
  std::ostringstream os;
  os << pred << "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i) os << ", ";
    os << args[i];
  }
  os << ")";
  return os.str();
}

bool GProgram::IsRecursive() const {
  return !Stratify().ok();
}

Result<std::vector<Symbol>> GProgram::Stratify() const {
  std::set<Symbol> idb;
  for (const GRule& r : rules_) idb.insert(r.head.pred);
  std::unordered_map<Symbol, std::set<Symbol>> deps;
  for (const GRule& r : rules_) {
    for (const GAtomPat& a : r.body) {
      if (idb.count(a.pred)) deps[r.head.pred].insert(a.pred);
    }
  }
  std::vector<Symbol> order;
  std::unordered_map<Symbol, int> color;  // 0 white 1 gray 2 black
  std::function<bool(Symbol)> dfs = [&](Symbol p) -> bool {
    color[p] = 1;
    for (Symbol q : deps[p]) {
      if (color[q] == 1) return false;  // cycle
      if (color[q] == 0 && !dfs(q)) return false;
    }
    color[p] = 2;
    order.push_back(p);
    return true;
  };
  for (Symbol p : idb) {
    if (color[p] == 0 && !dfs(p)) {
      return Status::InvalidArgument("program is recursive: cycle through " +
                                     p.name());
    }
  }
  return order;
}

}  // namespace datalog
}  // namespace mmv
