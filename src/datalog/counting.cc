#include "datalog/counting.h"

#include <chrono>
#include <functional>

namespace mmv {
namespace datalog {

Result<CountingView> CountingView::Build(const GProgram& program) {
  CountingView view(&program);
  MMV_ASSIGN_OR_RETURN(view.topo_, program.Stratify());

  // EDB facts: count 1 per distinct tuple (duplicates accumulate).
  for (const GroundFact& f : program.facts()) {
    view.counts_[f.pred][f.args] += 1;
    view.db_.Insert(f.pred, f.args);
  }

  // Non-recursive: one pass per predicate in dependency order suffices.
  for (Symbol pred : view.topo_) {
    for (const GRule& rule : program.rules()) {
      if (rule.head.pred != pred) continue;
      MatchRule(rule, view.db_, nullptr, -1, [&](const Bindings& b) {
        int64_t prod = 1;
        for (const GAtomPat& a : rule.body) {
          Tuple t;
          t.reserve(a.args.size());
          for (const GTerm& term : a.args) {
            t.push_back(term.is_var ? b.at(term.var) : term.val);
          }
          prod *= view.CountOf(a.pred, t);
        }
        Tuple head = InstantiateHead(rule.head, b);
        view.counts_[pred][head] += prod;
        view.db_.Insert(pred, head);
      });
    }
  }
  return view;
}

int64_t CountingView::CountOf(Symbol pred, const Tuple& t) const {
  auto it = counts_.find(pred);
  if (it == counts_.end()) return 0;
  auto jt = it->second.find(t);
  return jt == it->second.end() ? 0 : jt->second;
}

Status CountingView::DeleteFacts(const std::vector<GroundFact>& facts,
                                 CountingStats* stats) {
  CountingStats local;
  if (!stats) stats = &local;
  *stats = CountingStats();
  using Clock = std::chrono::steady_clock;
  auto t0 = Clock::now();

  // delta[pred][tuple] = number of derivations lost.
  std::unordered_map<Symbol, std::unordered_map<Tuple, int64_t, TupleHash>>
      delta;
  for (const GroundFact& f : facts) {
    int64_t c = CountOf(f.pred, f.args);
    if (c > 0) delta[f.pred][f.args] = c;  // all copies of the EDB fact go
  }

  // Propagate per stratum. For each rule grounding with at least one body
  // tuple losing derivations, the lost head derivations are
  //   prod_{i<j} new_i * delta_j * prod_{i>j} old_i
  // summed over pivots j — the standard telescoping of old-prod minus
  // new-prod.
  auto old_count = [&](Symbol p, const Tuple& t) {
    return CountOf(p, t);
  };
  auto delta_of = [&](Symbol p, const Tuple& t) -> int64_t {
    auto it = delta.find(p);
    if (it == delta.end()) return 0;
    auto jt = it->second.find(t);
    return jt == it->second.end() ? 0 : jt->second;
  };
  auto new_count = [&](Symbol p, const Tuple& t) {
    return old_count(p, t) - delta_of(p, t);
  };

  for (Symbol pred : topo_) {
    for (const GRule& rule : *(&program_->rules())) {
      if (rule.head.pred != pred) continue;
      size_t n = rule.body.size();
      for (size_t pivot = 0; pivot < n; ++pivot) {
        // Enumerate bindings with the pivot drawn from tuples that lost
        // derivations; earlier positions use post-deletion tuples, later
        // positions pre-deletion tuples.
        std::function<void(size_t, Bindings*)> rec = [&](size_t pos,
                                                          Bindings* b) {
          if (pos == n) {
            stats->delta_derivations++;
            int64_t lost = 1;
            for (size_t i = 0; i < n; ++i) {
              Tuple t;
              t.reserve(rule.body[i].args.size());
              for (const GTerm& term : rule.body[i].args) {
                t.push_back(term.is_var ? b->at(term.var) : term.val);
              }
              if (i < pivot) {
                lost *= new_count(rule.body[i].pred, t);
              } else if (i == pivot) {
                lost *= delta_of(rule.body[i].pred, t);
              } else {
                lost *= old_count(rule.body[i].pred, t);
              }
            }
            if (lost != 0) {
              Tuple head = InstantiateHead(rule.head, *b);
              delta[pred][head] += lost;
            }
            return;
          }
          const GAtomPat& pat = rule.body[pos];
          if (pos == pivot) {
            auto it = delta.find(pat.pred);
            if (it == delta.end()) return;
            for (const auto& [t, d] : it->second) {
              if (d == 0) continue;
              Bindings saved = *b;
              if (MatchAtom(pat, t, b)) rec(pos + 1, b);
              *b = std::move(saved);
            }
            return;
          }
          for (const Tuple& t : db_.Rel(pat.pred)) {
            // pos < pivot must still exist after deletion; pos > pivot uses
            // the pre-deletion state (db_ still holds it during this pass).
            if (pos < pivot && new_count(pat.pred, t) <= 0) continue;
            Bindings saved = *b;
            if (MatchAtom(pat, t, b)) rec(pos + 1, b);
            *b = std::move(saved);
          }
        };
        Bindings b;
        rec(0, &b);
      }
    }
  }

  // Apply the deltas.
  for (auto& [pred, tuples] : delta) {
    for (auto& [t, d] : tuples) {
      int64_t& c = counts_[pred][t];
      c -= d;
      if (c <= 0) {
        counts_[pred].erase(t);
        db_.Remove(pred, t);
        stats->tuples_removed++;
      }
    }
  }
  stats->delete_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  return Status::OK();
}

}  // namespace datalog
}  // namespace mmv
