// Substitutions (variable -> term maps) and clause renaming
// ("standardizing apart", required by T_P's "share no variables" side
// condition).

#ifndef MMV_CONSTRAINT_SUBSTITUTION_H_
#define MMV_CONSTRAINT_SUBSTITUTION_H_

#include <unordered_map>

#include "constraint/constraint.h"
#include "constraint/term.h"

namespace mmv {

/// \brief A finite mapping from variables to terms.
class Substitution {
 public:
  Substitution() = default;

  /// \brief Binds \p v to \p t (overwrites any previous binding).
  void Bind(VarId v, Term t) { map_[v] = std::move(t); }

  /// \brief Whether \p v is bound.
  bool Contains(VarId v) const { return map_.count(v) > 0; }

  /// \brief The binding of \p v, or the variable itself when unbound.
  Term Lookup(VarId v) const {
    auto it = map_.find(v);
    return it == map_.end() ? Term::Var(v) : it->second;
  }

  /// \brief Applies the substitution to a term (single step, no chasing).
  Term Apply(const Term& t) const {
    return t.is_var() ? Lookup(t.var()) : t;
  }

  /// \brief Applies to every term of a vector.
  TermVec Apply(const TermVec& ts) const;

  /// \brief Applies to a primitive constraint.
  Primitive Apply(const Primitive& p) const;

  /// \brief Applies to a negated block (recursively).
  NotBlock Apply(const NotBlock& b) const;

  /// \brief Applies to a whole constraint.
  Constraint Apply(const Constraint& c) const;

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  const std::unordered_map<VarId, Term>& map() const { return map_; }

 private:
  std::unordered_map<VarId, Term> map_;
};

/// \brief Builds a renaming of every variable in \p vars to a fresh variable
/// drawn from \p factory.
Substitution FreshRenaming(const std::vector<VarId>& vars,
                           VarFactory* factory);

/// \brief Renames every variable of (*args, *constraint) whose id is at or
/// above \p base to a fresh variable from \p factory, in first-appearance
/// order (args first, then constraint). This is the deterministic merge
/// step that moves PASS-LOCAL staging variables (kStagingVarBase, term.h)
/// into a run's real factory — keep it the ONLY implementation: a missed
/// remap leaks pass-local ids into durable state. Either of \p args /
/// \p constraint may be null; \p scratch is a reusable VarSet.
void RemapVarsAtOrAbove(VarId base, VarFactory* factory, TermVec* args,
                        Constraint* constraint, VarSet* scratch);

}  // namespace mmv

#endif  // MMV_CONSTRAINT_SUBSTITUTION_H_
