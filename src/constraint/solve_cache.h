// SolveCache: a memo of satisfiability outcomes keyed by canonical
// constraint form.
//
// Repeated join steps of one clause produce constraints that are identical
// modulo fresh-variable numbering (ubiquitous in chain rules), and
// maintenance passes re-solve whole-view constraint snapshots; the memo
// collapses each canonical class to one real Solve.
//
// Validity contract: a cached outcome is only as durable as the state it
// was computed against. Callers own the cache and must use one cache per
// (DcaEvaluator state, SolverOptions) regime — e.g. one per materialization
// run or per maintenance batch, during which the external database does not
// change — and Clear() or drop it when that state moves. The cache is not
// thread-safe; keep it with the Solver that owns it.
//
// Catalog-epoch tag: long-lived caches (a memo threaded through many
// maintenance batches of a read-mostly mediator) call SyncEpoch with the
// evaluator's identity and current state epoch (DcaEvaluator::instance_id
// / StateEpoch) at each batch boundary; the memo survives untouched while
// the external database stands still and flushes exactly when it moved.
// maint::ApplyBatch does this for the cache handed to it through
// FixpointOptions::solve_cache. Note the view's OWN atoms are not part of
// the solver's state — Solve decides pure constraint satisfiability
// against the domains — so view maintenance alone never invalidates the
// memo.
//
// Residual caller obligation: the tag only observes state at SyncEpoch
// call sites. Populating a TAGGED memo through paths that never sync
// (Materialize / ContinueFixpoint / standalone InsertBatch via
// FixpointOptions::solve_cache) while the evaluator is at a DIFFERENT
// state (e.g. pinned to a historical tick) plants entries the next
// same-epoch SyncEpoch cannot detect — the original one-cache-per-state
// contract above still applies to such interleavings.

#ifndef MMV_CONSTRAINT_SOLVE_CACHE_H_
#define MMV_CONSTRAINT_SOLVE_CACHE_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "constraint/canonical.h"

namespace mmv {

enum class SolveOutcome : uint8_t;

/// \brief Counters of one cache lifetime.
struct SolveCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t full = 0;  ///< inserts dropped because the cache was at capacity
  int64_t epoch_flushes = 0;  ///< SyncEpoch calls that dropped the memo
};

/// \brief Memo of Solve outcomes keyed by CanonicalConstraintKey.
class SolveCache {
 public:
  static constexpr size_t kDefaultMaxEntries = 1u << 20;

  explicit SolveCache(size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries) {}

  /// \brief The cached outcome for \p key, or nullptr on miss.
  const SolveOutcome* Lookup(const CanonicalKey& key);

  /// \brief Records an outcome; a no-op once max_entries is reached (the
  /// cache never evicts — bounded staleness is the caller's contract).
  void Insert(const CanonicalKey& key, SolveOutcome outcome);

  /// \brief Drops every entry (stats survive).
  void Clear() { map_.clear(); }

  /// \brief Tags the memo with the external database's current state:
  /// \p source identifies the evaluator (DcaEvaluator::instance_id — epoch
  /// values are only comparable within one evaluator) and \p epoch its
  /// DcaEvaluator::StateEpoch.
  ///
  /// Calls with the tagged (source, epoch) pair are no-ops; any other call
  /// (a different evaluator, a different epoch, or the first tagging of a
  /// memo that already holds entries — those may predate the given state)
  /// drops every entry before (re-)tagging. Returns true iff entries were
  /// dropped.
  bool SyncEpoch(uint64_t source, int64_t epoch);

  /// \brief The tagged epoch, or -1 when never tagged.
  int64_t epoch() const { return has_epoch_ ? epoch_ : -1; }

  /// \brief The tagged evaluator id, or 0 when never tagged.
  uint64_t epoch_source() const { return has_epoch_ ? source_ : 0; }

  size_t size() const { return map_.size(); }
  const SolveCacheStats& stats() const { return stats_; }

  /// \brief Reusable rendering buffer for key computation, so hot paths
  /// allocate at most once per high-water mark.
  std::string* scratch() { return &scratch_; }

 private:
  size_t max_entries_;
  bool has_epoch_ = false;
  uint64_t source_ = 0;
  int64_t epoch_ = 0;
  SolveCacheStats stats_;
  std::unordered_map<CanonicalKey, SolveOutcome, CanonicalKey::Hasher> map_;
  std::string scratch_;
};

}  // namespace mmv

#endif  // MMV_CONSTRAINT_SOLVE_CACHE_H_
