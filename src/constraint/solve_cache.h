// SolveCache: a memo of satisfiability outcomes keyed by canonical
// constraint form.
//
// Repeated join steps of one clause produce constraints that are identical
// modulo fresh-variable numbering (ubiquitous in chain rules), and
// maintenance passes re-solve whole-view constraint snapshots; the memo
// collapses each canonical class to one real Solve.
//
// Validity contract: a cached outcome is only as durable as the state it
// was computed against. Callers own the cache and must use one cache per
// (DcaEvaluator state, SolverOptions) regime — e.g. one per materialization
// run or per maintenance batch, during which the external database does not
// change — and Clear() or drop it when that state moves. The cache is not
// thread-safe; keep it with the Solver that owns it.

#ifndef MMV_CONSTRAINT_SOLVE_CACHE_H_
#define MMV_CONSTRAINT_SOLVE_CACHE_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "constraint/canonical.h"

namespace mmv {

enum class SolveOutcome : uint8_t;

/// \brief Counters of one cache lifetime.
struct SolveCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t full = 0;  ///< inserts dropped because the cache was at capacity
};

/// \brief Memo of Solve outcomes keyed by CanonicalConstraintKey.
class SolveCache {
 public:
  static constexpr size_t kDefaultMaxEntries = 1u << 20;

  explicit SolveCache(size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries) {}

  /// \brief The cached outcome for \p key, or nullptr on miss.
  const SolveOutcome* Lookup(const CanonicalKey& key);

  /// \brief Records an outcome; a no-op once max_entries is reached (the
  /// cache never evicts — bounded staleness is the caller's contract).
  void Insert(const CanonicalKey& key, SolveOutcome outcome);

  /// \brief Drops every entry (stats survive).
  void Clear() { map_.clear(); }

  size_t size() const { return map_.size(); }
  const SolveCacheStats& stats() const { return stats_; }

  /// \brief Reusable rendering buffer for key computation, so hot paths
  /// allocate at most once per high-water mark.
  std::string* scratch() { return &scratch_; }

 private:
  size_t max_entries_;
  SolveCacheStats stats_;
  std::unordered_map<CanonicalKey, SolveOutcome, CanonicalKey::Hasher> map_;
  std::string scratch_;
};

}  // namespace mmv

#endif  // MMV_CONSTRAINT_SOLVE_CACHE_H_
