// Syntactic constraint simplification.
//
// The paper's algorithms conjoin constraints at every derivation and update
// step (e.g. Example 5: "in many cases the redundancy can be removed by
// simplification of the constraints"). Simplify dissolves equality chains,
// evaluates ground primitives, drops tautologies, detects syntactic
// contradictions, and deduplicates literals — without consulting domains.

#ifndef MMV_CONSTRAINT_SIMPLIFY_H_
#define MMV_CONSTRAINT_SIMPLIFY_H_

#include "constraint/constraint.h"
#include "constraint/substitution.h"

namespace mmv {

/// \brief Result of simplifying a constrained atom's constraint together
/// with its head argument tuple.
struct SimplifiedAtom {
  TermVec head;           ///< head args with bindings applied
  Constraint constraint;  ///< simplified constraint
};

/// \brief Simplifies the constraint of a constrained atom A(head) <- c.
///
/// Equalities from the positive part are propagated into both the head and
/// all literals; dissolved equalities are removed. Ground primitives are
/// evaluated. Returns a constraint that is `false` iff a syntactic
/// contradiction was found (semantic unsatisfiability detection is the
/// Solver's job).
SimplifiedAtom SimplifyAtom(const TermVec& head, const Constraint& c);

/// \brief Simplifies a bare constraint (no head to protect).
Constraint SimplifyConstraint(const Constraint& c);

}  // namespace mmv

#endif  // MMV_CONSTRAINT_SIMPLIFY_H_
