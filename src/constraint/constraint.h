// Constraint AST (paper Section 2.3).
//
// The paper's constraint grammar:
//   - any DCA-atom in(X, d:f(args)) is a constraint,
//   - X = T and X != T are constraints (T variable or constant),
//   - any conjunction of constraints is a constraint.
// Numeric comparisons (X <= 3, ...) are admitted as sugar for DCA-atoms over
// the `arith` domain ("a more common way of writing this constraint",
// Example 2) and are kept primitive here so the solver can reason over
// intervals instead of enumerating infinite sets.
//
// Deletion (rewrite (4)) and insertion (P-flat) introduce *negated blocks*
// not(c1 ^ ... ^ ck); a Constraint is therefore a conjunction of positive
// primitives plus a conjunction of negated blocks.

#ifndef MMV_CONSTRAINT_CONSTRAINT_H_
#define MMV_CONSTRAINT_CONSTRAINT_H_

#include <string>
#include <vector>

#include "constraint/term.h"

namespace mmv {

/// \brief A call into an external domain: d : f(args) (paper Section 2.1).
struct DomainCall {
  std::string domain;    ///< e.g. "paradox", "arith", "spatialdb"
  std::string function;  ///< e.g. "select_eq", "greater"
  TermVec args;

  bool operator==(const DomainCall& other) const {
    return domain == other.domain && function == other.function &&
           args == other.args;
  }
  size_t Hash() const;
  std::string ToString() const;
};

/// \brief Comparison operator of a numeric primitive.
enum class CmpOp : uint8_t { kLt, kLe, kGt, kGe };

/// \brief Flips op across negation: not(X < c) == X >= c.
CmpOp NegateCmp(CmpOp op);
/// \brief Mirrors op across argument swap: (X < Y) == (Y > X).
CmpOp SwapCmp(CmpOp op);
const char* CmpOpName(CmpOp op);

/// \brief Kind tag of a primitive constraint.
enum class PrimKind : uint8_t {
  kEq,     ///< lhs = rhs
  kNeq,    ///< lhs != rhs
  kCmp,    ///< lhs op rhs (numeric)
  kIn,     ///< in(lhs, call)  — DCA-atom
  kNotIn,  ///< not in(lhs, call) — arises only from negation expansion
};

/// \brief An atomic constraint.
struct Primitive {
  PrimKind kind;
  Term lhs;
  Term rhs;         // kEq / kNeq / kCmp only
  CmpOp op;         // kCmp only
  DomainCall call;  // kIn / kNotIn only

  static Primitive Eq(Term l, Term r);
  static Primitive Neq(Term l, Term r);
  static Primitive Cmp(Term l, CmpOp op, Term r);
  static Primitive In(Term x, DomainCall call);
  static Primitive NotInCall(Term x, DomainCall call);

  /// \brief The logical negation (used when expanding negated blocks).
  Primitive Negated() const;

  bool operator==(const Primitive& other) const;
  bool operator!=(const Primitive& other) const { return !(*this == other); }
  size_t Hash() const;
  std::string ToString() const;

  /// \brief Appends all variables occurring in this primitive to \p out
  /// (first appearance order, deduplicated against existing content).
  void CollectVariables(std::vector<VarId>* out) const;

  /// \brief VarSet variant (O(1) expected membership on large sets).
  void CollectVariables(VarSet* out) const;
};

/// \brief A negated constraint not(c1 ^ ... ^ ck ^ not(B1) ^ ... ^ not(Bm)).
///
/// Blocks nest: repeated maintenance rewrites negate constraints that
/// already carry negated blocks (e.g. StDel pairs whose sibling constraints
/// were themselves replaced), so the body of a not(...) is a full
/// conjunction of primitives and inner blocks.
struct NotBlock {
  std::vector<Primitive> prims;
  std::vector<NotBlock> inner;  ///< nested not(...) conjuncts of the body

  /// \brief True when the body is the empty conjunction (i.e. `not(true)`).
  bool BodyEmpty() const { return prims.empty() && inner.empty(); }

  bool operator==(const NotBlock& other) const {
    return prims == other.prims && inner == other.inner;
  }
  size_t Hash() const;
  std::string ToString() const;

  /// \brief All variables in the block (appended to \p out, deduplicated).
  void CollectVariables(std::vector<VarId>* out) const;

  /// \brief VarSet variant (O(1) expected membership on large sets).
  void CollectVariables(VarSet* out) const;
};

/// \brief A constraint: conjunction of primitives and negated blocks.
///
/// The empty constraint is `true`. An explicitly unsatisfiable constraint
/// (e.g. produced by simplification) is represented with `false_marker`.
class Constraint {
 public:
  Constraint() = default;

  /// \brief The constraint `true`.
  static Constraint True() { return Constraint(); }

  /// \brief The constraint `false`.
  static Constraint False() {
    Constraint c;
    c.false_marker_ = true;
    return c;
  }

  /// \brief True iff this is the trivially-false marker.
  bool is_false() const { return false_marker_; }

  /// \brief True iff there are no literals at all (trivially true).
  bool is_true() const {
    return !false_marker_ && prims_.empty() && nots_.empty();
  }

  const std::vector<Primitive>& prims() const { return prims_; }
  const std::vector<NotBlock>& nots() const { return nots_; }
  std::vector<Primitive>* mutable_prims() { return &prims_; }
  std::vector<NotBlock>* mutable_nots() { return &nots_; }

  /// \brief Appends a positive primitive.
  void Add(Primitive p) { prims_.push_back(std::move(p)); }

  /// \brief Appends a negated block; empty blocks (not(true) == false) turn
  /// the whole constraint false.
  void AddNot(NotBlock b);

  /// \brief Conjoins all literals of \p other into this constraint.
  void AndWith(const Constraint& other);

  /// \brief Conjunction of two constraints (paper: phi ^ psi).
  static Constraint And(const Constraint& a, const Constraint& b);

  /// \brief The negation of \p c as a single block: not(c).
  ///
  /// Precondition: !c.is_false() and !c.is_true() (callers handle the
  /// trivial cases: not(false) is true, not(true) is false).
  static NotBlock Negate(const Constraint& c);

  /// \brief All variables occurring anywhere in the constraint
  /// (first-appearance order).
  std::vector<VarId> Variables() const;

  /// \brief Appends all variables to \p out (first-appearance order,
  /// deduplicated) without the quadratic membership scans of Variables().
  void CollectVariables(VarSet* out) const;

  /// \brief Total number of literals (primitives + primitives inside nots).
  size_t LiteralCount() const;

  bool operator==(const Constraint& other) const {
    return false_marker_ == other.false_marker_ && prims_ == other.prims_ &&
           nots_ == other.nots_;
  }

  size_t Hash() const;
  std::string ToString() const;

 private:
  std::vector<Primitive> prims_;
  std::vector<NotBlock> nots_;
  bool false_marker_ = false;
};

std::ostream& operator<<(std::ostream& os, const Constraint& c);

}  // namespace mmv

#endif  // MMV_CONSTRAINT_CONSTRAINT_H_
