// Pretty-printing with symbolic variable names.

#ifndef MMV_CONSTRAINT_PRINTER_H_
#define MMV_CONSTRAINT_PRINTER_H_

#include <string>
#include <unordered_map>

#include "common/interner.h"
#include "constraint/constraint.h"

namespace mmv {

/// \brief Optional mapping VarId -> source-level name, populated by the
/// parser so diagnostics print `X` instead of `X17`.
class VarNames {
 public:
  /// \brief Registers \p name for \p id (later registrations win).
  void Set(VarId id, std::string name) { names_[id] = std::move(name); }

  /// \brief The symbolic name, or "X<id>" when unregistered.
  std::string NameOf(VarId id) const;

  bool empty() const { return names_.empty(); }

 private:
  std::unordered_map<VarId, std::string> names_;
};

/// \brief Renders a term using \p names (nullptr falls back to X<id>).
std::string PrintTerm(const Term& t, const VarNames* names);

/// \brief Renders a constraint using \p names.
std::string PrintConstraint(const Constraint& c, const VarNames* names);

/// \brief Renders pred(args) <- constraint.
std::string PrintAtom(Symbol pred, const TermVec& args, const Constraint& c,
                      const VarNames* names);

}  // namespace mmv

#endif  // MMV_CONSTRAINT_PRINTER_H_
