#include "constraint/simplify.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

namespace mmv {

namespace {

// Lightweight union-find over the equalities of the positive part.
class EqClasses {
 public:
  // Returns false on constant conflict (X = 1 and X = 2).
  bool AddEqualities(const std::vector<Primitive>& prims) {
    for (const Primitive& p : prims) {
      if (p.kind != PrimKind::kEq) continue;
      if (p.lhs.is_const() && p.rhs.is_const()) {
        if (!(p.lhs.constant() == p.rhs.constant())) return false;
        continue;
      }
      if (p.lhs.is_var() && p.rhs.is_var()) {
        if (!Union(p.lhs.var(), p.rhs.var())) return false;
      } else {
        const Term& var_side = p.lhs.is_var() ? p.lhs : p.rhs;
        const Term& const_side = p.lhs.is_var() ? p.rhs : p.lhs;
        if (!BindConst(var_side.var(), const_side.constant())) return false;
      }
    }
    return true;
  }

  // Rewrites t to its class representative (constant if bound, else the
  // smallest variable of the class).
  Term Resolve(const Term& t) {
    if (t.is_const()) return t;
    VarId r = Find(t.var());
    auto it = bound_.find(r);
    if (it != bound_.end()) return Term::Const(it->second);
    auto rep = rep_.find(r);
    return Term::Var(rep == rep_.end() ? r : rep->second);
  }

  // Chooses per-class representative variables (smallest id).
  void ChooseRepresentatives() {
    std::unordered_map<VarId, VarId> smallest;
    for (const auto& [v, _] : parent_) {
      VarId r = Find(v);
      auto it = smallest.find(r);
      if (it == smallest.end() || v < it->second) smallest[r] = v;
    }
    rep_ = std::move(smallest);
  }

 private:
  VarId Find(VarId v) {
    auto it = parent_.find(v);
    if (it == parent_.end()) {
      parent_[v] = v;
      return v;
    }
    if (it->second == v) return v;
    VarId r = Find(it->second);
    parent_[v] = r;
    return r;
  }

  bool Union(VarId a, VarId b) {
    VarId ra = Find(a), rb = Find(b);
    if (ra == rb) return true;
    auto ba = bound_.find(ra);
    auto bb = bound_.find(rb);
    if (ba != bound_.end() && bb != bound_.end() &&
        !(ba->second == bb->second)) {
      return false;
    }
    parent_[rb] = ra;
    if (ba == bound_.end() && bb != bound_.end()) bound_[ra] = bb->second;
    bound_.erase(rb);
    return true;
  }

  bool BindConst(VarId v, const Value& val) {
    VarId r = Find(v);
    auto it = bound_.find(r);
    if (it != bound_.end()) return it->second == val;
    bound_[r] = val;
    return true;
  }

  std::unordered_map<VarId, VarId> parent_;
  std::unordered_map<VarId, Value> bound_;
  std::unordered_map<VarId, VarId> rep_;
};

bool EvalGroundCmp(const Value& a, CmpOp op, const Value& b,
                   bool* defined) {
  if (!a.is_numeric() || !b.is_numeric()) {
    *defined = true;
    return false;  // type error: comparison fails
  }
  *defined = true;
  switch (op) {
    case CmpOp::kLt:
      return a.numeric() < b.numeric();
    case CmpOp::kLe:
      return a.numeric() <= b.numeric();
    case CmpOp::kGt:
      return a.numeric() > b.numeric();
    case CmpOp::kGe:
      return a.numeric() >= b.numeric();
  }
  return false;
}

// Tri-state truth of a primitive after rewriting: true / false / unknown.
enum class Truth { kTrue, kFalse, kUnknown };

Truth EvalPrim(const Primitive& p) {
  switch (p.kind) {
    case PrimKind::kEq:
      if (p.lhs == p.rhs) return Truth::kTrue;  // X = X or c = c
      if (p.lhs.is_const() && p.rhs.is_const()) {
        return p.lhs.constant() == p.rhs.constant() ? Truth::kTrue
                                                    : Truth::kFalse;
      }
      return Truth::kUnknown;
    case PrimKind::kNeq:
      if (p.lhs == p.rhs) return Truth::kFalse;
      if (p.lhs.is_const() && p.rhs.is_const()) {
        return p.lhs.constant() == p.rhs.constant() ? Truth::kFalse
                                                    : Truth::kTrue;
      }
      return Truth::kUnknown;
    case PrimKind::kCmp:
      if (p.lhs.is_const() && p.rhs.is_const()) {
        bool defined = false;
        bool v = EvalGroundCmp(p.lhs.constant(), p.op, p.rhs.constant(),
                               &defined);
        if (defined) return v ? Truth::kTrue : Truth::kFalse;
      }
      if (p.lhs == p.rhs) {
        // X <= X is true; X < X is false.
        return (p.op == CmpOp::kLe || p.op == CmpOp::kGe) ? Truth::kTrue
                                                          : Truth::kFalse;
      }
      return Truth::kUnknown;
    case PrimKind::kIn:
    case PrimKind::kNotIn:
      return Truth::kUnknown;  // needs domain evaluation
  }
  return Truth::kUnknown;
}

Primitive RewritePrim(const Primitive& p, EqClasses* eq) {
  Primitive out = p;
  out.lhs = eq->Resolve(p.lhs);
  if (p.kind == PrimKind::kEq || p.kind == PrimKind::kNeq ||
      p.kind == PrimKind::kCmp) {
    out.rhs = eq->Resolve(p.rhs);
  }
  if (p.kind == PrimKind::kIn || p.kind == PrimKind::kNotIn) {
    for (Term& t : out.call.args) t = eq->Resolve(t);
  }
  return out;
}

// Truth status of a not-block's *body* after rewriting.
enum class BlockBody {
  kFalse,  // body statically unsatisfiable: not(body) is true
  kTrue,   // body is a tautology: not(body) is false
  kKeep,   // undetermined: keep the simplified block
};

BlockBody SimplifyBlock(const NotBlock& b, EqClasses* eq, NotBlock* out) {
  for (const Primitive& p : b.prims) {
    Primitive r = RewritePrim(p, eq);
    Truth t = EvalPrim(r);
    if (t == Truth::kFalse) return BlockBody::kFalse;
    if (t == Truth::kTrue) continue;
    bool dup = false;
    for (const Primitive& q : out->prims) {
      if (q == r) {
        dup = true;
        break;
      }
    }
    if (!dup) out->prims.push_back(std::move(r));
  }
  for (const NotBlock& ib : b.inner) {
    NotBlock sub;
    switch (SimplifyBlock(ib, eq, &sub)) {
      case BlockBody::kFalse:
        // not(false-body) is true: drop the conjunct.
        break;
      case BlockBody::kTrue:
        // not(true-body) is false: the whole body is unsatisfiable.
        return BlockBody::kFalse;
      case BlockBody::kKeep: {
        bool dup = false;
        for (const NotBlock& q : out->inner) {
          if (q == sub) {
            dup = true;
            break;
          }
        }
        if (!dup) out->inner.push_back(std::move(sub));
        break;
      }
    }
  }
  if (out->BodyEmpty()) return BlockBody::kTrue;
  return BlockBody::kKeep;
}

}  // namespace

SimplifiedAtom SimplifyAtom(const TermVec& head, const Constraint& c) {
  SimplifiedAtom out;
  out.head = head;
  if (c.is_false()) {
    out.constraint = Constraint::False();
    return out;
  }

  EqClasses eq;
  if (!eq.AddEqualities(c.prims())) {
    out.constraint = Constraint::False();
    return out;
  }
  eq.ChooseRepresentatives();

  for (Term& t : out.head) t = eq.Resolve(t);

  Constraint result;
  std::vector<size_t> seen_hashes;  // cheap dedup by (hash, equality) probe
  std::vector<Primitive> kept;

  auto keep_prim = [&](const Primitive& p) {
    for (const Primitive& q : kept) {
      if (q == p) return;
    }
    kept.push_back(p);
  };

  for (const Primitive& p : c.prims()) {
    Primitive r = RewritePrim(p, &eq);
    Truth t = EvalPrim(r);
    if (t == Truth::kTrue) continue;
    if (t == Truth::kFalse) {
      out.constraint = Constraint::False();
      return out;
    }
    if (r.kind == PrimKind::kEq) continue;  // dissolved into the rewrite
    keep_prim(r);
  }
  for (const Primitive& p : kept) result.Add(p);

  std::vector<NotBlock> kept_blocks;
  for (const NotBlock& b : c.nots()) {
    NotBlock nb;
    switch (SimplifyBlock(b, &eq, &nb)) {
      case BlockBody::kFalse:
        continue;  // not(false) == true: drop the block
      case BlockBody::kTrue:
        // not(true): whole constraint is false.
        out.constraint = Constraint::False();
        return out;
      case BlockBody::kKeep:
        break;
    }
    // Dedup whole blocks.
    bool dup_block = false;
    for (const NotBlock& kb : kept_blocks) {
      if (kb == nb) {
        dup_block = true;
        break;
      }
    }
    if (!dup_block) kept_blocks.push_back(std::move(nb));
  }
  for (NotBlock& b : kept_blocks) result.AddNot(std::move(b));

  (void)seen_hashes;
  out.constraint = std::move(result);
  return out;
}

Constraint SimplifyConstraint(const Constraint& c) {
  return SimplifyAtom({}, c).constraint;
}

}  // namespace mmv
