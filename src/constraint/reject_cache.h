// RejectCache: a persistent pairwise rejection memo for the solver's
// satisfiability fast path.
//
// Every ground DCA membership the solver decides — "value v is (not) a
// member of the set denoted by the ground call d:f(args)" — is a pure fact
// about the external database at its current state epoch. Re-deriving that
// fact costs a domain evaluation (or at least a DcaResult cache probe deep
// inside a full Solve); the RejectCache records it once, keyed by an
// interned (value id, call id) pair, so Solver::TestSatisfiability can
// refute a doomed conjunct — in(v, call) with a recorded non-membership,
// or not in(v, call) with a recorded membership — before any union-find
// propagation, renaming or simplification runs.
//
// The memo records BOTH polarities (membership and non-membership): either
// one can refute, depending on the sign of the literal being screened.
//
// Validity contract: identical to SolveCache. A recorded membership is only
// as durable as the evaluator state it was computed against, so callers own
// the cache and must keep it scoped to one (DcaEvaluator state) regime.
// Long-lived caches threaded through maintenance batches call SyncEpoch
// with the evaluator's identity and state epoch at each batch boundary
// (maint::ApplyBatch does this for the cache handed to it through
// FixpointOptions::reject_cache, right beside the SolveCache sync); the
// memo survives while the external database stands still and flushes
// exactly when it moved. The same residual caller obligation documented in
// solve_cache.h applies to populating a tagged memo through paths that
// never sync.
//
// Not thread-safe; parallel passes run with reject_cache == nullptr (like
// they swap out any caller-provided SolveCache) — the deterministic
// screens of TestSatisfiability do not need it, so rejection counts stay
// byte-identical across thread counts.

#ifndef MMV_CONSTRAINT_REJECT_CACHE_H_
#define MMV_CONSTRAINT_REJECT_CACHE_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/value.h"

namespace mmv {

/// \brief Counters of one cache lifetime.
struct RejectCacheStats {
  int64_t hits = 0;    ///< lookups that found a recorded membership
  int64_t misses = 0;  ///< lookups with no record for the pair
  int64_t records = 0;         ///< memberships recorded (first sighting)
  int64_t full = 0;            ///< records dropped at capacity
  int64_t epoch_flushes = 0;   ///< SyncEpoch calls that dropped the memo
};

/// \brief Memo of ground DCA membership verdicts keyed by interned
/// (value, call) id pairs.
class RejectCache {
 public:
  static constexpr size_t kDefaultMaxEntries = 1u << 20;

  explicit RejectCache(size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries) {}

  /// \brief Records "\p value is (member ? in : not in) the set denoted by
  /// the ground call \p call_key". Call keys use the solver's DCA cache-key
  /// rendering ("domain:function|arg|arg..."); the cache only requires
  /// Record and Lookup to agree on it. Re-recording a pair is a no-op (the
  /// verdict is a function of the pair within one epoch); at capacity new
  /// pairs are dropped, never evicted.
  void Record(const Value& value, const std::string& call_key, bool member);

  /// \brief The recorded membership for the pair, or nullptr when the pair
  /// (or either component) was never recorded. Lookup never interns — a
  /// miss costs two hash probes and allocates nothing.
  const bool* Lookup(const Value& value, const std::string& call_key);

  /// \brief Drops every entry and both intern tables (stats survive).
  void Clear();

  /// \brief Tags the memo with the external database's current state;
  /// same contract as SolveCache::SyncEpoch — a call with the tagged
  /// (source, epoch) pair is a no-op, any other call (different evaluator,
  /// different epoch, or first tagging of a non-empty memo) drops every
  /// entry before (re-)tagging. Returns true iff entries were dropped.
  bool SyncEpoch(uint64_t source, int64_t epoch);

  /// \brief The tagged epoch, or -1 when never tagged.
  int64_t epoch() const { return has_epoch_ ? epoch_ : -1; }

  /// \brief The tagged evaluator id, or 0 when never tagged.
  uint64_t epoch_source() const { return has_epoch_ ? source_ : 0; }

  /// \brief Number of recorded (value, call) pairs.
  size_t size() const { return pairs_.size(); }

  const RejectCacheStats& stats() const { return stats_; }

 private:
  size_t max_entries_;
  bool has_epoch_ = false;
  uint64_t source_ = 0;
  int64_t epoch_ = 0;
  RejectCacheStats stats_;
  // Intern tables: ids only grow with records (Lookup never inserts), so
  // both stay bounded by max_entries alongside the pair map.
  std::unordered_map<Value, uint32_t, ValueHash> value_ids_;
  std::unordered_map<std::string, uint32_t> call_ids_;
  std::unordered_map<uint64_t, bool> pairs_;  ///< (value_id<<32)|call_id
};

}  // namespace mmv

#endif  // MMV_CONSTRAINT_REJECT_CACHE_H_
