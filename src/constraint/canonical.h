// Canonical string form of a constrained atom, used for set-semantics
// deduplication in the fixpoint engine.
//
// Two constrained atoms with the same canonical string are syntactic
// variants (same literals modulo variable renaming and literal order).
// The mapping is conservative: semantically equivalent atoms may canonicalize
// differently (the paper notes p(X,Y) <- X = Y+1 vs p(X,Y) <- Y = X-1), in
// which case they are simply retained as duplicates — still sound.

#ifndef MMV_CONSTRAINT_CANONICAL_H_
#define MMV_CONSTRAINT_CANONICAL_H_

#include <string>

#include "common/interner.h"
#include "constraint/constraint.h"

namespace mmv {

/// \brief Canonical key of the constrained atom pred(args) <- c.
///
/// Simplifies the constraint, orders literals by a variable-insensitive key,
/// then renames variables by first appearance.
std::string CanonicalAtomString(Symbol pred, const TermVec& args,
                                const Constraint& c);

}  // namespace mmv

#endif  // MMV_CONSTRAINT_CANONICAL_H_
