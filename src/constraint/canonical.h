// Canonical forms of constrained atoms and constraints.
//
// Two constrained atoms with the same canonical form are syntactic
// variants (same literals modulo variable renaming and literal order).
// The mapping is conservative: semantically equivalent atoms may canonicalize
// differently (the paper notes p(X,Y) <- X = Y+1 vs p(X,Y) <- Y = X-1), in
// which case they are simply retained as duplicates — still sound.
//
// Two consumers with different cost profiles share the machinery:
//   - set-semantics deduplication in the fixpoint engine keys atoms by a
//     hashed CanonicalKey (no per-atom string is retained), and
//   - the solver memo (constraint/solve_cache.h) keys bare constraints by
//     a cheaper in-order rendering that skips literal sorting: constraints
//     produced by the same clause at different fresh-variable offsets
//     already agree literal-for-literal, which is the sharing that matters.

#ifndef MMV_CONSTRAINT_CANONICAL_H_
#define MMV_CONSTRAINT_CANONICAL_H_

#include <cstdint>
#include <string>

#include "common/hash.h"
#include "common/interner.h"
#include "constraint/constraint.h"

namespace mmv {

/// \brief A 128-bit fingerprint of a canonical rendering. Collisions are
/// astronomically unlikely — the halves come from two STRUCTURALLY
/// different byte passes (xor-multiply vs add-multiply-rotate) finalized
/// through full-avalanche mixes, so their bits are independent (the naive
/// two-seeds-one-algorithm alternative leaks correlated low-order bits) —
/// which is the contract its users (dedup sets, solver memo) rely on.
struct CanonicalKey {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const CanonicalKey& other) const {
    return lo == other.lo && hi == other.hi;
  }
  bool operator!=(const CanonicalKey& other) const {
    return !(*this == other);
  }

  struct Hasher {
    size_t operator()(const CanonicalKey& k) const noexcept {
      return static_cast<size_t>(k.lo);
    }
  };
};

/// \brief Canonical key of the constrained atom pred(args) <- c.
///
/// Same canonical form as CanonicalAtomString — simplify, sort literals by a
/// variable-insensitive key, rename variables by first appearance — but the
/// rendering goes into the caller's reusable \p scratch buffer and only the
/// 128-bit fingerprint survives, so a dedup set holds no strings.
///
/// \p assume_simplified skips the internal SimplifyAtom pass; callers may
/// set it when (args, c) already went through SimplifyAtom (the pass is
/// idempotent, so this is purely a cost knob).
CanonicalKey CanonicalAtomKey(Symbol pred, const TermVec& args,
                              const Constraint& c, bool assume_simplified,
                              std::string* scratch);

/// \brief Canonical key of a bare constraint for the solver memo: literals
/// rendered in order (no sorting, no simplification) with variables renamed
/// by first appearance. Constraints that differ only in fresh-variable
/// numbering — the shape repeated join steps of one clause produce — map to
/// the same key; literal-order variants do not (they simply miss the memo).
CanonicalKey CanonicalConstraintKey(const Constraint& c, std::string* scratch);

/// \brief Canonical string of the constrained atom pred(args) <- c.
///
/// Simplifies the constraint, orders literals by a variable-insensitive key,
/// then renames variables by first appearance.
std::string CanonicalAtomString(Symbol pred, const TermVec& args,
                                const Constraint& c);

}  // namespace mmv

#endif  // MMV_CONSTRAINT_CANONICAL_H_
