#include "constraint/canonical.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "constraint/simplify.h"
#include "constraint/substitution.h"

namespace mmv {

namespace {

// Renders a primitive with every variable replaced by "_" — a key that is
// insensitive to variable identity, used for deterministic literal ordering.
std::string VarBlindKey(const Primitive& p) {
  Primitive q = p;
  auto blind = [](Term* t) {
    if (t->is_var()) *t = Term::Var(0);
  };
  blind(&q.lhs);
  if (p.kind == PrimKind::kEq || p.kind == PrimKind::kNeq ||
      p.kind == PrimKind::kCmp) {
    blind(&q.rhs);
  }
  if (p.kind == PrimKind::kIn || p.kind == PrimKind::kNotIn) {
    for (Term& t : q.call.args) blind(&t);
  }
  return q.ToString();
}

std::string VarBlindKey(const NotBlock& b) {
  std::vector<std::string> keys;
  keys.reserve(b.prims.size() + b.inner.size());
  for (const Primitive& p : b.prims) keys.push_back(VarBlindKey(p));
  for (const NotBlock& i : b.inner) keys.push_back(VarBlindKey(i));
  std::sort(keys.begin(), keys.end());
  std::string out = "not(";
  for (const std::string& k : keys) {
    out += k;
    out += '&';
  }
  out += ')';
  return out;
}

// Assigns canonical variable numbers in first-appearance order.
class Renamer {
 public:
  Term Rename(const Term& t) {
    if (t.is_const()) return t;
    auto it = map_.find(t.var());
    if (it == map_.end()) {
      VarId fresh = static_cast<VarId>(map_.size());
      map_[t.var()] = fresh;
      return Term::Var(fresh);
    }
    return Term::Var(it->second);
  }

  Primitive Rename(const Primitive& p) {
    Primitive q = p;
    q.lhs = Rename(p.lhs);
    if (p.kind == PrimKind::kEq || p.kind == PrimKind::kNeq ||
        p.kind == PrimKind::kCmp) {
      q.rhs = Rename(p.rhs);
    }
    if (p.kind == PrimKind::kIn || p.kind == PrimKind::kNotIn) {
      for (Term& t : q.call.args) t = Rename(t);
    }
    return q;
  }

  // Renders a block with inner literals ordered and variables renamed.
  std::string RenderBlock(const NotBlock& b) {
    std::vector<Primitive> prims = b.prims;
    std::stable_sort(prims.begin(), prims.end(),
                     [](const Primitive& x, const Primitive& y) {
                       return VarBlindKey(x) < VarBlindKey(y);
                     });
    std::vector<NotBlock> inner = b.inner;
    std::stable_sort(inner.begin(), inner.end(),
                     [](const NotBlock& x, const NotBlock& y) {
                       return VarBlindKey(x) < VarBlindKey(y);
                     });
    std::string out = "not(";
    bool first = true;
    for (const Primitive& p : prims) {
      if (!first) out += " & ";
      out += Rename(p).ToString();
      first = false;
    }
    for (const NotBlock& i : inner) {
      if (!first) out += " & ";
      out += RenderBlock(i);
      first = false;
    }
    out += ")";
    return out;
  }

 private:
  std::unordered_map<VarId, VarId> map_;
};

}  // namespace

std::string CanonicalAtomString(Symbol pred, const TermVec& args,
                                const Constraint& c) {
  SimplifiedAtom s = SimplifyAtom(args, c);
  if (s.constraint.is_false()) {
    return pred + "/false";
  }

  // Order literals deterministically by variable-blind key (stable, so
  // literals with equal keys keep their relative order).
  std::vector<Primitive> prims = s.constraint.prims();
  std::stable_sort(prims.begin(), prims.end(),
                   [](const Primitive& a, const Primitive& b) {
                     return VarBlindKey(a) < VarBlindKey(b);
                   });
  std::vector<NotBlock> nots = s.constraint.nots();
  for (NotBlock& b : nots) {
    std::stable_sort(b.prims.begin(), b.prims.end(),
                     [](const Primitive& a, const Primitive& b2) {
                       return VarBlindKey(a) < VarBlindKey(b2);
                     });
  }
  std::stable_sort(nots.begin(), nots.end(),
                   [](const NotBlock& a, const NotBlock& b) {
                     return VarBlindKey(a) < VarBlindKey(b);
                   });

  // Rename variables by first appearance: head first, then ordered literals.
  Renamer renamer;
  std::ostringstream os;
  os << pred << '(';
  for (size_t i = 0; i < s.head.size(); ++i) {
    if (i) os << ',';
    os << renamer.Rename(s.head[i]).ToString();
  }
  os << ") <- ";
  bool first = true;
  for (const Primitive& p : prims) {
    if (!first) os << " & ";
    os << renamer.Rename(p).ToString();
    first = false;
  }
  for (const NotBlock& b : nots) {
    if (!first) os << " & ";
    os << renamer.RenderBlock(b);
    first = false;
  }
  if (first) os << "true";
  return os.str();
}

}  // namespace mmv
