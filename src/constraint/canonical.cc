#include "constraint/canonical.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "constraint/simplify.h"
#include "constraint/substitution.h"

namespace mmv {

namespace {

// Renders a primitive with every variable replaced by "_" — a key that is
// insensitive to variable identity, used for deterministic literal ordering.
std::string VarBlindKey(const Primitive& p) {
  Primitive q = p;
  auto blind = [](Term* t) {
    if (t->is_var()) *t = Term::Var(0);
  };
  blind(&q.lhs);
  if (p.kind == PrimKind::kEq || p.kind == PrimKind::kNeq ||
      p.kind == PrimKind::kCmp) {
    blind(&q.rhs);
  }
  if (p.kind == PrimKind::kIn || p.kind == PrimKind::kNotIn) {
    for (Term& t : q.call.args) blind(&t);
  }
  return q.ToString();
}

std::string VarBlindKey(const NotBlock& b) {
  std::vector<std::string> keys;
  keys.reserve(b.prims.size() + b.inner.size());
  for (const Primitive& p : b.prims) keys.push_back(VarBlindKey(p));
  for (const NotBlock& i : b.inner) keys.push_back(VarBlindKey(i));
  std::sort(keys.begin(), keys.end());
  std::string out = "not(";
  for (const std::string& k : keys) {
    out += k;
    out += '&';
  }
  out += ')';
  return out;
}

// Assigns canonical variable numbers in first-appearance order.
class Renamer {
 public:
  Term Rename(const Term& t) {
    if (t.is_const()) return t;
    auto it = map_.find(t.var());
    if (it == map_.end()) {
      VarId fresh = static_cast<VarId>(map_.size());
      map_[t.var()] = fresh;
      return Term::Var(fresh);
    }
    return Term::Var(it->second);
  }

  Primitive Rename(const Primitive& p) {
    Primitive q = p;
    q.lhs = Rename(p.lhs);
    if (p.kind == PrimKind::kEq || p.kind == PrimKind::kNeq ||
        p.kind == PrimKind::kCmp) {
      q.rhs = Rename(p.rhs);
    }
    if (p.kind == PrimKind::kIn || p.kind == PrimKind::kNotIn) {
      for (Term& t : q.call.args) t = Rename(t);
    }
    return q;
  }

  // Renders a block with inner literals ordered and variables renamed.
  std::string RenderBlock(const NotBlock& b) {
    std::vector<Primitive> prims = b.prims;
    std::stable_sort(prims.begin(), prims.end(),
                     [](const Primitive& x, const Primitive& y) {
                       return VarBlindKey(x) < VarBlindKey(y);
                     });
    std::vector<NotBlock> inner = b.inner;
    std::stable_sort(inner.begin(), inner.end(),
                     [](const NotBlock& x, const NotBlock& y) {
                       return VarBlindKey(x) < VarBlindKey(y);
                     });
    std::string out = "not(";
    bool first = true;
    for (const Primitive& p : prims) {
      if (!first) out += " & ";
      out += Rename(p).ToString();
      first = false;
    }
    for (const NotBlock& i : inner) {
      if (!first) out += " & ";
      out += RenderBlock(i);
      first = false;
    }
    out += ")";
    return out;
  }

 private:
  std::unordered_map<VarId, VarId> map_;
};

// Renders the full canonical form (sorted literals, renamed variables) of
// pred(args) <- c into *out. The shared implementation behind both the
// string and the hashed-key entry points.
void RenderCanonicalAtom(Symbol pred, const TermVec& args, const Constraint& c,
                         bool assume_simplified, std::string* out) {
  const TermVec* head = &args;
  const Constraint* constraint = &c;
  SimplifiedAtom s;
  if (!assume_simplified) {
    s = SimplifyAtom(args, c);
    head = &s.head;
    constraint = &s.constraint;
  }
  if (constraint->is_false()) {
    *out += pred.name();
    *out += "/false";
    return;
  }

  // Order literals deterministically by variable-blind key (stable, so
  // literals with equal keys keep their relative order).
  std::vector<Primitive> prims = constraint->prims();
  std::stable_sort(prims.begin(), prims.end(),
                   [](const Primitive& a, const Primitive& b) {
                     return VarBlindKey(a) < VarBlindKey(b);
                   });
  std::vector<NotBlock> nots = constraint->nots();
  for (NotBlock& b : nots) {
    std::stable_sort(b.prims.begin(), b.prims.end(),
                     [](const Primitive& a, const Primitive& b2) {
                       return VarBlindKey(a) < VarBlindKey(b2);
                     });
  }
  std::stable_sort(nots.begin(), nots.end(),
                   [](const NotBlock& a, const NotBlock& b) {
                     return VarBlindKey(a) < VarBlindKey(b);
                   });

  // Rename variables by first appearance: head first, then ordered literals.
  Renamer renamer;
  *out += pred.name();
  *out += '(';
  for (size_t i = 0; i < head->size(); ++i) {
    if (i) *out += ',';
    *out += renamer.Rename((*head)[i]).ToString();
  }
  *out += ") <- ";
  bool first = true;
  for (const Primitive& p : prims) {
    if (!first) *out += " & ";
    *out += renamer.Rename(p).ToString();
    first = false;
  }
  for (const NotBlock& b : nots) {
    if (!first) *out += " & ";
    *out += renamer.RenderBlock(b);
    first = false;
  }
  if (first) *out += "true";
}

// Cheap in-order renderer for the solver memo key: appends straight into
// the scratch buffer (no literal copies, no ostringstream) with variables
// renamed by first appearance. The encoding is injective — distinct
// constraints render distinctly (doubles print as raw bits, strings are
// length-prefixed) — because two constraints colliding on one key would
// share a cached satisfiability verdict.
class KeyRenderer {
 public:
  explicit KeyRenderer(std::string* out) : out_(out) {}

  void Append(const Constraint& c) {
    for (const Primitive& p : c.prims()) {
      Append(p);
      out_->push_back('&');
    }
    for (const NotBlock& b : c.nots()) {
      Append(b);
      out_->push_back('&');
    }
  }

 private:
  void Append(const Primitive& p) {
    switch (p.kind) {
      case PrimKind::kEq:
        out_->push_back('=');
        Append(p.lhs);
        Append(p.rhs);
        break;
      case PrimKind::kNeq:
        out_->push_back('!');
        Append(p.lhs);
        Append(p.rhs);
        break;
      case PrimKind::kCmp:
        out_->push_back('c');
        out_->push_back(static_cast<char>('0' + static_cast<int>(p.op)));
        Append(p.lhs);
        Append(p.rhs);
        break;
      case PrimKind::kIn:
      case PrimKind::kNotIn:
        out_->push_back(p.kind == PrimKind::kIn ? 'I' : 'O');
        Append(p.lhs);
        AppendRaw(p.call.domain);
        AppendRaw(p.call.function);
        for (const Term& t : p.call.args) Append(t);
        break;
    }
  }

  void Append(const NotBlock& b) {
    out_->push_back('N');
    out_->push_back('(');
    for (const Primitive& p : b.prims) {
      Append(p);
      out_->push_back('&');
    }
    for (const NotBlock& i : b.inner) {
      Append(i);
      out_->push_back('&');
    }
    out_->push_back(')');
  }

  void Append(const Term& t) {
    if (t.is_var()) {
      out_->push_back('v');
      VarId v = t.var();
      auto it = var_map_.find(v);
      if (it == var_map_.end()) {
        it = var_map_.emplace(v, static_cast<VarId>(var_map_.size())).first;
      }
      AppendInt(static_cast<uint64_t>(it->second));
      return;
    }
    Append(t.constant());
  }

  void Append(const Value& v) {
    switch (v.kind()) {
      case ValueKind::kNull:
        out_->push_back('n');
        break;
      case ValueKind::kBool:
        out_->push_back(v.as_bool() ? 'T' : 'F');
        break;
      case ValueKind::kInt:
        out_->push_back('i');
        AppendInt(static_cast<uint64_t>(v.as_int()));
        break;
      case ValueKind::kDouble: {
        // Raw bits: exact, unlike any decimal rendering.
        out_->push_back('d');
        double d = v.as_double();
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d), "");
        std::memcpy(&bits, &d, sizeof(bits));
        AppendInt(bits);
        break;
      }
      case ValueKind::kString:
        out_->push_back('s');
        AppendRaw(v.as_string());
        break;
      case ValueKind::kList:
        out_->push_back('[');
        for (const Value& e : v.as_list()) Append(e);
        out_->push_back(']');
        break;
    }
  }

  // Length-prefixed so adjacent strings cannot merge ambiguously.
  void AppendRaw(const std::string& s) {
    AppendInt(s.size());
    out_->push_back(':');
    out_->append(s);
  }

  void AppendInt(uint64_t u) {
    char buf[20];
    char* p = buf + sizeof(buf);
    do {
      *--p = static_cast<char>('0' + (u % 10));
      u /= 10;
    } while (u != 0);
    out_->append(p, static_cast<size_t>(buf + sizeof(buf) - p));
    out_->push_back(';');
  }

  std::string* out_;
  std::unordered_map<VarId, VarId> var_map_;
};

// 64-bit finalization avalanche (MurmurHash3's fmix64): flips every output
// bit with probability ~1/2 per input bit flipped.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Two STRUCTURALLY different passes over the rendering. The previous
// scheme ran two FNV-1a streams that differed only in seed; FNV-1a's
// multiply is odd, so bit 0 of its state is seed-parity XOR the parity of
// the input bytes' low bits — identical in both streams for every input,
// and higher low-order bits correlate similarly. The effective collision
// margin was well below the advertised 2^-128. Here the halves disagree in
// per-byte structure (xor-multiply vs add-multiply-rotate, different odd
// constants) and each is finalized through a full-avalanche mix with a
// length tweak, so no output bit of one half is a function of the same
// input bits as any bit of the other.
CanonicalKey FingerprintOf(const std::string& rendering) {
  uint64_t lo = 14695981039346656037ULL;  // FNV-1a offset basis / prime
  uint64_t hi = 0x9ae16a3b2f90404fULL;
  for (unsigned char ch : rendering) {
    lo = (lo ^ ch) * 1099511628211ULL;
    hi = (hi + ch) * 0x9e3779b97f4a7c15ULL;
    hi = (hi << 29) | (hi >> 35);
  }
  uint64_t len = rendering.size();
  CanonicalKey key;
  key.lo = Mix64(lo ^ (len * 0xa0761d6478bd642fULL));
  key.hi = Mix64(hi ^ len ^ 0x8ebc6af09c88c6e3ULL);
  return key;
}

}  // namespace

CanonicalKey CanonicalAtomKey(Symbol pred, const TermVec& args,
                              const Constraint& c, bool assume_simplified,
                              std::string* scratch) {
  scratch->clear();
  RenderCanonicalAtom(pred, args, c, assume_simplified, scratch);
  return FingerprintOf(*scratch);
}

CanonicalKey CanonicalConstraintKey(const Constraint& c,
                                    std::string* scratch) {
  scratch->clear();
  if (c.is_false()) {
    *scratch += "false";
    return FingerprintOf(*scratch);
  }
  KeyRenderer renderer(scratch);
  renderer.Append(c);
  return FingerprintOf(*scratch);
}

std::string CanonicalAtomString(Symbol pred, const TermVec& args,
                                const Constraint& c) {
  std::string out;
  RenderCanonicalAtom(pred, args, c, /*assume_simplified=*/false, &out);
  return out;
}

}  // namespace mmv
