#include "constraint/printer.h"

#include <sstream>

namespace mmv {

std::string VarNames::NameOf(VarId id) const {
  auto it = names_.find(id);
  if (it != names_.end()) return it->second;
  std::ostringstream os;
  os << "X" << id;
  return os.str();
}

std::string PrintTerm(const Term& t, const VarNames* names) {
  if (t.is_var()) {
    if (names) return names->NameOf(t.var());
    return t.ToString();
  }
  return t.constant().ToString();
}

namespace {

std::string PrintPrimitive(const Primitive& p, const VarNames* names) {
  std::ostringstream os;
  switch (p.kind) {
    case PrimKind::kEq:
      os << PrintTerm(p.lhs, names) << " = " << PrintTerm(p.rhs, names);
      break;
    case PrimKind::kNeq:
      os << PrintTerm(p.lhs, names) << " != " << PrintTerm(p.rhs, names);
      break;
    case PrimKind::kCmp:
      os << PrintTerm(p.lhs, names) << " " << CmpOpName(p.op) << " "
         << PrintTerm(p.rhs, names);
      break;
    case PrimKind::kIn:
    case PrimKind::kNotIn: {
      os << (p.kind == PrimKind::kIn ? "in(" : "notin(")
         << PrintTerm(p.lhs, names) << ", " << p.call.domain << ":"
         << p.call.function << "(";
      for (size_t i = 0; i < p.call.args.size(); ++i) {
        if (i) os << ", ";
        os << PrintTerm(p.call.args[i], names);
      }
      os << "))";
      break;
    }
  }
  return os.str();
}

std::string PrintBlock(const NotBlock& b, const VarNames* names) {
  std::ostringstream os;
  os << "not(";
  bool first = true;
  for (const Primitive& p : b.prims) {
    if (!first) os << " & ";
    os << PrintPrimitive(p, names);
    first = false;
  }
  for (const NotBlock& i : b.inner) {
    if (!first) os << " & ";
    os << PrintBlock(i, names);
    first = false;
  }
  os << ")";
  return os.str();
}

}  // namespace

std::string PrintConstraint(const Constraint& c, const VarNames* names) {
  if (c.is_false()) return "false";
  if (c.is_true()) return "true";
  std::ostringstream os;
  bool first = true;
  for (const Primitive& p : c.prims()) {
    if (!first) os << " & ";
    os << PrintPrimitive(p, names);
    first = false;
  }
  for (const NotBlock& b : c.nots()) {
    if (!first) os << " & ";
    os << PrintBlock(b, names);
    first = false;
  }
  return os.str();
}

std::string PrintAtom(Symbol pred, const TermVec& args, const Constraint& c,
                      const VarNames* names) {
  std::ostringstream os;
  os << pred << "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i) os << ", ";
    os << PrintTerm(args[i], names);
  }
  os << ")";
  std::string cs = PrintConstraint(c, names);
  if (cs != "true") os << " <- " << cs;
  return os.str();
}

}  // namespace mmv
