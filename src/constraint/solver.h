// Constraint satisfiability (the paper's "solvable" test).
//
// A conjunction of primitives is decided by union-find equality propagation
// plus a per-equivalence-class domain (bound value / numeric interval /
// finite candidate set from evaluated DCA-atoms / exclusion set). Negated
// blocks not(c1 ^ ... ^ ck) are decided by expanding into the disjunction of
// negated primitives and searching the (small) choice space.
//
// DCA-atoms are evaluated through a DcaEvaluator when their arguments are
// ground; otherwise they are *deferred*: the constraint is reported
// kSatDeferred ("satisfiable as far as decidable now"), matching the W_P
// philosophy of postponing solvability to query time (paper Section 4).

#ifndef MMV_CONSTRAINT_SOLVER_H_
#define MMV_CONSTRAINT_SOLVER_H_

#include <cassert>
#include <limits>
#include <mutex>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "constraint/constraint.h"
#include "constraint/substitution.h"

namespace mmv {

/// \brief A (possibly unbounded) numeric interval with open/closed ends.
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_strict = false;
  bool hi_strict = false;
  bool integral = false;  ///< domain restricted to integers

  /// \brief The full real line.
  static Interval All() { return Interval(); }

  /// \brief [v, v].
  static Interval Point(double v) {
    Interval i;
    i.lo = i.hi = v;
    return i;
  }

  /// \brief True iff no double satisfies the interval.
  bool Empty() const;

  /// \brief True iff \p v lies inside.
  bool Contains(double v) const;

  /// \brief Intersects in place; returns false when result is empty.
  bool IntersectWith(const Interval& other);

  /// \brief True iff this is (-inf, +inf) without integrality.
  bool Unbounded() const {
    return !integral && lo == -std::numeric_limits<double>::infinity() &&
           hi == std::numeric_limits<double>::infinity();
  }

  /// \brief Number of integers inside, or nullopt when infinite.
  /// Only meaningful when integral.
  std::optional<int64_t> IntegralCount() const;

  std::string ToString() const;
};

/// \brief Result kind of evaluating a DCA-atom's domain call.
enum class DcaResultKind : uint8_t {
  kFinite,    ///< an explicit finite set of values
  kInterval,  ///< a symbolic (possibly infinite) numeric interval
  kUnknown,   ///< the domain cannot decide now -> defer
};

/// \brief Set of values denoted by a domain call.
struct DcaResult {
  DcaResultKind kind = DcaResultKind::kUnknown;
  std::vector<Value> values;  ///< kFinite
  Interval interval;          ///< kInterval

  static DcaResult Finite(std::vector<Value> vs) {
    DcaResult r;
    r.kind = DcaResultKind::kFinite;
    r.values = std::move(vs);
    return r;
  }
  static DcaResult Of(Interval i) {
    DcaResult r;
    r.kind = DcaResultKind::kInterval;
    r.interval = i;
    return r;
  }
  static DcaResult Unknown() { return DcaResult(); }
};

/// \brief Evaluates domain calls; implemented by domain::DomainManager.
///
/// \p args are the call's arguments with variables already replaced by their
/// bound values (all ground).
class DcaEvaluator {
 public:
  DcaEvaluator();
  /// Copies get a FRESH identity: a copied evaluator is a distinct state
  /// source as far as epoch-gated memos are concerned (mirrors Program).
  DcaEvaluator(const DcaEvaluator& other);
  DcaEvaluator& operator=(const DcaEvaluator& other);
  virtual ~DcaEvaluator() = default;
  virtual Result<DcaResult> Evaluate(const std::string& domain,
                                     const std::string& function,
                                     const std::vector<Value>& args) = 0;

  /// \brief Process-unique identity of this evaluator instance. Epoch
  /// values (StateEpoch) are only comparable BETWEEN calls on one
  /// evaluator; memo gates pair the epoch with this id so two different
  /// evaluators that happen to report the same epoch value are never
  /// confused (see SolveCache::SyncEpoch).
  uint64_t instance_id() const { return instance_id_; }

  /// \brief Tag of the external state Evaluate() reads: two calls at the
  /// same epoch see the same function meanings, so solver memos
  /// (SolveCache::SyncEpoch) stay valid while the epoch stands still.
  /// Epochs are opaque — compare them only for equality; they are not
  /// monotone (pinning evaluation to a historical tick legitimately moves
  /// the epoch backward). Stateless evaluators keep the default constant
  /// epoch; DomainManager reports its effective tick combined with the
  /// clock's same-tick mutation counter.
  virtual int64_t StateEpoch() const { return 0; }

  /// \brief True when concurrent Evaluate() calls are safe WITHOUT
  /// external serialization, provided no writer mutates the backing state
  /// for the duration (the same single-writer contract StateEpoch already
  /// polices: parallel passes capture the epoch up front and fail loudly
  /// on a mismatch). Defaults to false — unknown evaluators keep the
  /// serialized MutexDcaEvaluator path; DomainManager reports true when
  /// every registered domain is a pure reader and its call cache is off.
  virtual bool ConcurrentReadSafe() const { return false; }

 private:
  uint64_t instance_id_;
};

/// \brief Serializes Evaluate() calls on a wrapped evaluator through a
/// mutex, so per-thread Solvers of a parallel pass can share one stateful
/// evaluator (domain managers memoize lookups internally and are not
/// thread-safe). Outcomes are unchanged: the underlying evaluator's answers
/// may not depend on call order within one state epoch — the same contract
/// solver memos already rely on.
///
/// This is the FALLBACK path for evaluators that do not report
/// ConcurrentReadSafe(): parallel passes over a read-safe evaluator (the
/// common DomainManager configuration) bypass the wrapper entirely. Once
/// every evaluator in the tree answers the ConcurrentReadSafe() contract
/// honestly this class can be retired.
class MutexDcaEvaluator : public DcaEvaluator {
 public:
  explicit MutexDcaEvaluator(DcaEvaluator* inner) : inner_(inner) {
    // Wrapping a read-safe evaluator is never wrong, but it serializes a
    // fan-out that could run lock-free — every engine checks
    // ConcurrentReadSafe() before falling back here, so reaching this
    // line with a read-safe inner is a missed check on the retirement
    // path (tracked by the mutex_evaluator_engaged counters).
    assert(inner == nullptr || !inner->ConcurrentReadSafe());
  }

  Result<DcaResult> Evaluate(const std::string& domain,
                             const std::string& function,
                             const std::vector<Value>& args) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Evaluate(domain, function, args);
  }

  int64_t StateEpoch() const override { return inner_->StateEpoch(); }

  /// The whole point of the wrapper: safe to share across threads.
  bool ConcurrentReadSafe() const override { return true; }

 private:
  DcaEvaluator* inner_;
  std::mutex mu_;
};

/// \brief Outcome of a satisfiability check.
enum class SolveOutcome : uint8_t {
  kUnsat,        ///< provably no solution
  kSat,          ///< provably has a solution
  kSatDeferred,  ///< no contradiction; some literals deferred (treated sat)
  kError,        ///< evaluator failure; see Solver::last_status()
};

/// \brief True for kSat and kSatDeferred (the paper's "solvable").
inline bool IsSolvable(SolveOutcome o) {
  return o == SolveOutcome::kSat || o == SolveOutcome::kSatDeferred;
}

/// \brief Counters for benchmarking the solver (E8).
struct SolveStats {
  int64_t solve_calls = 0;
  int64_t dca_evaluations = 0;
  int64_t choice_branches = 0;
  int64_t literals_processed = 0;
  int64_t cache_hits = 0;  ///< Solve calls answered by the SolveCache memo
  int64_t sat_prechecks = 0;  ///< TestSatisfiability / RejectJoin screens run
  int64_t sat_rejects = 0;    ///< screens that refuted deterministically
                              ///  (no memo consulted for the verdict)
  int64_t reject_cache_hits = 0;  ///< screens refuted by a RejectCache
                                  ///  record (memo-dependent, like
                                  ///  cache_hits). All three are STRATEGY
                                  ///  counters: like cache_hits they stay
                                  ///  out of cross-mode byte-identity
                                  ///  comparisons — only the work product
                                  ///  (views, supports, unsat_pruned...)
                                  ///  is mode-invariant.

  SolveStats& operator+=(const SolveStats& other) {
    solve_calls += other.solve_calls;
    dca_evaluations += other.dca_evaluations;
    choice_branches += other.choice_branches;
    literals_processed += other.literals_processed;
    cache_hits += other.cache_hits;
    sat_prechecks += other.sat_prechecks;
    sat_rejects += other.sat_rejects;
    reject_cache_hits += other.reject_cache_hits;
    return *this;
  }
};

/// \brief Description of one variable equivalence class after propagation,
/// used by query::Enumerate to drive solution enumeration.
struct VarDomainInfo {
  std::vector<VarId> members;            ///< variables in the class
  std::optional<Value> bound;            ///< forced single value
  std::optional<std::vector<Value>> candidates;  ///< finite candidate set
  Interval interval;                     ///< numeric restriction
  std::vector<Value> excluded;           ///< values ruled out by !=
  bool touched_by_deferred = false;      ///< a deferred literal mentions it
};

class SolveCache;
class RejectCache;

/// \brief Tuning knobs for the solver.
struct SolverOptions {
  /// Upper bound on choice combinations (not-blocks plus candidate splits)
  /// explored per Solve; exhausted budgets report kSatDeferred.
  int64_t max_choice_branches = 100000;
  /// When false, DCA-atoms are never evaluated (pure W_P syntactic mode).
  bool evaluate_dca = true;
  /// Case-split on finite DCA candidate sets to decide deferred literals
  /// (complete search; the honest cost of T_P solvability checks over
  /// chained domain calls).
  bool split_candidates = true;
  /// Optional memo of outcomes keyed by canonical constraint form
  /// (constraint/solve_cache.h). Not owned. The caller guarantees the
  /// evaluator state and solver options stay fixed for the cache lifetime;
  /// every Solver sharing one cache must use identical options.
  SolveCache* cache = nullptr;
  /// Satisfiability fast path: run the linear TestSatisfiability screen
  /// before the full decision procedure (and let the planned executor
  /// screen whole join candidates via RejectJoin before assembling their
  /// constraints). Sound for rejection only — the screen refutes a
  /// constraint only when the full Solve would return kUnsat — so every
  /// outcome, view and work-product counter is identical with the flag
  /// off; off ($MMV_SOLVER_FASTPATH=off) keeps the slow path as the
  /// differential oracle.
  bool fastpath = true;
  /// Optional pairwise rejection memo (constraint/reject_cache.h). Not
  /// owned; same state-scoping contract as `cache`. Ground DCA
  /// memberships decided inside full Solves are recorded here, and
  /// TestSatisfiability consults the records AFTER its deterministic
  /// screens. Null disables recording and lookup (parallel passes run
  /// null — the cache is not thread-safe).
  RejectCache* reject_cache = nullptr;
};

/// \brief Satisfiability engine for constraints.
///
/// Not thread-safe; create one per thread. The evaluator may be null, in
/// which case every DCA-atom is deferred.
class Solver {
 public:
  explicit Solver(DcaEvaluator* evaluator, SolverOptions options = {})
      : evaluator_(evaluator), options_(options) {}

  /// \brief Decides satisfiability of \p c. When options.cache is set, a
  /// canonical-form memo answers repeated shapes without re-solving. With
  /// options.fastpath (default), TestSatisfiability screens the constraint
  /// first; a screen rejection returns kUnsat without canonicalizing,
  /// memo-probing or running the decision procedure.
  SolveOutcome Solve(const Constraint& c);

  /// \brief Linear may-satisfiability screen, sound for REJECTION only:
  /// kUnsat is returned only when the full Solve would also return kUnsat
  /// (bottom/top literals, ground comparisons, trivially contradictory
  /// conjuncts, empty interval screens, and — after every deterministic
  /// screen — RejectCache membership refutations). Anything it cannot
  /// refute is kSatDeferred ("may be satisfiable": no verdict), except the
  /// trivially-true constraint, which is kSat. No union-find, no
  /// allocation beyond amortized member scratch, negated blocks ignored
  /// (the positive part alone refuting suffices). Requires
  /// options.max_choice_branches >= 1 to reject — a budget-starved full
  /// Solve reports kSatDeferred for everything, and the screen must never
  /// be stricter than its oracle.
  SolveOutcome TestSatisfiability(const Constraint& c);

  /// \brief One body position of a join candidate, pre-rename: the chosen
  /// instance's arguments and constraint, and the clause body atom's
  /// argument pattern they will be equated with.
  struct JoinComponent {
    const TermVec* inst_args = nullptr;
    const Constraint* inst_constraint = nullptr;
    const TermVec* pattern = nullptr;
  };

  /// \brief Screens a whole join candidate BEFORE clause rename and
  /// constraint assembly: the assembled constraint would be
  /// clause_constraint ^ (each instance constraint, standardized apart) ^
  /// (inst_args[k] = pattern[k] for every position) — RejectJoin runs the
  /// TestSatisfiability screens over exactly that conjunction, keeping
  /// each component's variables in a private scope to model the fresh
  /// renaming. Returns true only when the assembled constraint is
  /// provably unsatisfiable (the executor then prunes without renaming,
  /// simplifying or solving); false is no verdict. Components with an
  /// arity mismatch yield no verdict — the slow path owns that error.
  bool RejectJoin(const Constraint& clause_constraint,
                  const std::vector<JoinComponent>& body);

  /// \brief Propagates the positive primitives of \p c and reports the
  /// per-class domains (for enumeration). Fails when the positive part is
  /// already unsatisfiable.
  Result<std::vector<VarDomainInfo>> Analyze(const Constraint& c);

  /// \brief Last evaluator error (only meaningful after kError).
  const Status& last_status() const { return last_status_; }

  const SolveStats& stats() const { return stats_; }
  void ResetStats() { stats_ = SolveStats(); }

 private:
  friend class ConjunctionState;
  SolveOutcome SolveUncached(const Constraint& c);
  SolveOutcome SolveConjunctionWithSplits(
      std::vector<Primitive>* prims, int64_t* budget,
      std::unordered_map<std::string, DcaResult>* cache);

  // ---- TestSatisfiability / RejectJoin internals ----
  // Variables are keyed by (scope << 32) | uint32(var): scope 0 is the
  // clause / the screened constraint, scope i+1 is join component i —
  // modelling the fresh renaming that standardizes components apart.
  bool ScreenEq(const Constraint& c, uint32_t scope);
  bool ScreenEqPair(uint32_t scope_l, const Term& l, uint32_t scope_r,
                    const Term& r);
  bool ScreenRest(const Constraint& c, uint32_t scope);
  bool ScreenDca(const Constraint& c, uint32_t scope);
  const Value* ScreenResolve(uint32_t scope, const Term& t) const;
  void ScreenReset();

  DcaEvaluator* evaluator_;
  SolverOptions options_;
  Status last_status_;
  SolveStats stats_;

  // Screen scratch (amortized allocation-free across calls). Bindings map
  // packed (scope, var) keys to values owned by the screened terms, which
  // outlive the screen call.
  std::unordered_map<uint64_t, const Value*> screen_bound_;
  std::unordered_map<uint64_t, Interval> screen_intervals_;
  std::vector<Value> screen_args_;  // ground DCA call args
  std::string screen_key_;          // rendered DCA call key
};

}  // namespace mmv

#endif  // MMV_CONSTRAINT_SOLVER_H_
