// Constraint satisfiability (the paper's "solvable" test).
//
// A conjunction of primitives is decided by union-find equality propagation
// plus a per-equivalence-class domain (bound value / numeric interval /
// finite candidate set from evaluated DCA-atoms / exclusion set). Negated
// blocks not(c1 ^ ... ^ ck) are decided by expanding into the disjunction of
// negated primitives and searching the (small) choice space.
//
// DCA-atoms are evaluated through a DcaEvaluator when their arguments are
// ground; otherwise they are *deferred*: the constraint is reported
// kSatDeferred ("satisfiable as far as decidable now"), matching the W_P
// philosophy of postponing solvability to query time (paper Section 4).

#ifndef MMV_CONSTRAINT_SOLVER_H_
#define MMV_CONSTRAINT_SOLVER_H_

#include <cassert>
#include <limits>
#include <mutex>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "constraint/constraint.h"
#include "constraint/substitution.h"

namespace mmv {

/// \brief A (possibly unbounded) numeric interval with open/closed ends.
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_strict = false;
  bool hi_strict = false;
  bool integral = false;  ///< domain restricted to integers

  /// \brief The full real line.
  static Interval All() { return Interval(); }

  /// \brief [v, v].
  static Interval Point(double v) {
    Interval i;
    i.lo = i.hi = v;
    return i;
  }

  /// \brief True iff no double satisfies the interval.
  bool Empty() const;

  /// \brief True iff \p v lies inside.
  bool Contains(double v) const;

  /// \brief Intersects in place; returns false when result is empty.
  bool IntersectWith(const Interval& other);

  /// \brief True iff this is (-inf, +inf) without integrality.
  bool Unbounded() const {
    return !integral && lo == -std::numeric_limits<double>::infinity() &&
           hi == std::numeric_limits<double>::infinity();
  }

  /// \brief Number of integers inside, or nullopt when infinite.
  /// Only meaningful when integral.
  std::optional<int64_t> IntegralCount() const;

  std::string ToString() const;
};

/// \brief Result kind of evaluating a DCA-atom's domain call.
enum class DcaResultKind : uint8_t {
  kFinite,    ///< an explicit finite set of values
  kInterval,  ///< a symbolic (possibly infinite) numeric interval
  kUnknown,   ///< the domain cannot decide now -> defer
};

/// \brief Set of values denoted by a domain call.
struct DcaResult {
  DcaResultKind kind = DcaResultKind::kUnknown;
  std::vector<Value> values;  ///< kFinite
  Interval interval;          ///< kInterval

  static DcaResult Finite(std::vector<Value> vs) {
    DcaResult r;
    r.kind = DcaResultKind::kFinite;
    r.values = std::move(vs);
    return r;
  }
  static DcaResult Of(Interval i) {
    DcaResult r;
    r.kind = DcaResultKind::kInterval;
    r.interval = i;
    return r;
  }
  static DcaResult Unknown() { return DcaResult(); }
};

/// \brief Evaluates domain calls; implemented by domain::DomainManager.
///
/// \p args are the call's arguments with variables already replaced by their
/// bound values (all ground).
class DcaEvaluator {
 public:
  DcaEvaluator();
  /// Copies get a FRESH identity: a copied evaluator is a distinct state
  /// source as far as epoch-gated memos are concerned (mirrors Program).
  DcaEvaluator(const DcaEvaluator& other);
  DcaEvaluator& operator=(const DcaEvaluator& other);
  virtual ~DcaEvaluator() = default;
  virtual Result<DcaResult> Evaluate(const std::string& domain,
                                     const std::string& function,
                                     const std::vector<Value>& args) = 0;

  /// \brief Process-unique identity of this evaluator instance. Epoch
  /// values (StateEpoch) are only comparable BETWEEN calls on one
  /// evaluator; memo gates pair the epoch with this id so two different
  /// evaluators that happen to report the same epoch value are never
  /// confused (see SolveCache::SyncEpoch).
  uint64_t instance_id() const { return instance_id_; }

  /// \brief Tag of the external state Evaluate() reads: two calls at the
  /// same epoch see the same function meanings, so solver memos
  /// (SolveCache::SyncEpoch) stay valid while the epoch stands still.
  /// Epochs are opaque — compare them only for equality; they are not
  /// monotone (pinning evaluation to a historical tick legitimately moves
  /// the epoch backward). Stateless evaluators keep the default constant
  /// epoch; DomainManager reports its effective tick combined with the
  /// clock's same-tick mutation counter.
  virtual int64_t StateEpoch() const { return 0; }

  /// \brief True when concurrent Evaluate() calls are safe WITHOUT
  /// external serialization, provided no writer mutates the backing state
  /// for the duration (the same single-writer contract StateEpoch already
  /// polices: parallel passes capture the epoch up front and fail loudly
  /// on a mismatch). Defaults to false — unknown evaluators keep the
  /// serialized MutexDcaEvaluator path; DomainManager reports true when
  /// every registered domain is a pure reader and its call cache is off.
  virtual bool ConcurrentReadSafe() const { return false; }

 private:
  uint64_t instance_id_;
};

/// \brief Serializes Evaluate() calls on a wrapped evaluator through a
/// mutex, so per-thread Solvers of a parallel pass can share one stateful
/// evaluator (domain managers memoize lookups internally and are not
/// thread-safe). Outcomes are unchanged: the underlying evaluator's answers
/// may not depend on call order within one state epoch — the same contract
/// solver memos already rely on.
///
/// This is the FALLBACK path for evaluators that do not report
/// ConcurrentReadSafe(): parallel passes over a read-safe evaluator (the
/// common DomainManager configuration) bypass the wrapper entirely. Once
/// every evaluator in the tree answers the ConcurrentReadSafe() contract
/// honestly this class can be retired.
class MutexDcaEvaluator : public DcaEvaluator {
 public:
  explicit MutexDcaEvaluator(DcaEvaluator* inner) : inner_(inner) {
    // Wrapping a read-safe evaluator is never wrong, but it serializes a
    // fan-out that could run lock-free — every engine checks
    // ConcurrentReadSafe() before falling back here, so reaching this
    // line with a read-safe inner is a missed check on the retirement
    // path (tracked by the mutex_evaluator_engaged counters).
    assert(inner == nullptr || !inner->ConcurrentReadSafe());
  }

  Result<DcaResult> Evaluate(const std::string& domain,
                             const std::string& function,
                             const std::vector<Value>& args) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Evaluate(domain, function, args);
  }

  int64_t StateEpoch() const override { return inner_->StateEpoch(); }

  /// The whole point of the wrapper: safe to share across threads.
  bool ConcurrentReadSafe() const override { return true; }

 private:
  DcaEvaluator* inner_;
  std::mutex mu_;
};

/// \brief Outcome of a satisfiability check.
enum class SolveOutcome : uint8_t {
  kUnsat,        ///< provably no solution
  kSat,          ///< provably has a solution
  kSatDeferred,  ///< no contradiction; some literals deferred (treated sat)
  kError,        ///< evaluator failure; see Solver::last_status()
};

/// \brief True for kSat and kSatDeferred (the paper's "solvable").
inline bool IsSolvable(SolveOutcome o) {
  return o == SolveOutcome::kSat || o == SolveOutcome::kSatDeferred;
}

/// \brief Counters for benchmarking the solver (E8).
struct SolveStats {
  int64_t solve_calls = 0;
  int64_t dca_evaluations = 0;
  int64_t choice_branches = 0;
  int64_t literals_processed = 0;
  int64_t cache_hits = 0;  ///< Solve calls answered by the SolveCache memo

  SolveStats& operator+=(const SolveStats& other) {
    solve_calls += other.solve_calls;
    dca_evaluations += other.dca_evaluations;
    choice_branches += other.choice_branches;
    literals_processed += other.literals_processed;
    cache_hits += other.cache_hits;
    return *this;
  }
};

/// \brief Description of one variable equivalence class after propagation,
/// used by query::Enumerate to drive solution enumeration.
struct VarDomainInfo {
  std::vector<VarId> members;            ///< variables in the class
  std::optional<Value> bound;            ///< forced single value
  std::optional<std::vector<Value>> candidates;  ///< finite candidate set
  Interval interval;                     ///< numeric restriction
  std::vector<Value> excluded;           ///< values ruled out by !=
  bool touched_by_deferred = false;      ///< a deferred literal mentions it
};

class SolveCache;

/// \brief Tuning knobs for the solver.
struct SolverOptions {
  /// Upper bound on choice combinations (not-blocks plus candidate splits)
  /// explored per Solve; exhausted budgets report kSatDeferred.
  int64_t max_choice_branches = 100000;
  /// When false, DCA-atoms are never evaluated (pure W_P syntactic mode).
  bool evaluate_dca = true;
  /// Case-split on finite DCA candidate sets to decide deferred literals
  /// (complete search; the honest cost of T_P solvability checks over
  /// chained domain calls).
  bool split_candidates = true;
  /// Optional memo of outcomes keyed by canonical constraint form
  /// (constraint/solve_cache.h). Not owned. The caller guarantees the
  /// evaluator state and solver options stay fixed for the cache lifetime;
  /// every Solver sharing one cache must use identical options.
  SolveCache* cache = nullptr;
};

/// \brief Satisfiability engine for constraints.
///
/// Not thread-safe; create one per thread. The evaluator may be null, in
/// which case every DCA-atom is deferred.
class Solver {
 public:
  explicit Solver(DcaEvaluator* evaluator, SolverOptions options = {})
      : evaluator_(evaluator), options_(options) {}

  /// \brief Decides satisfiability of \p c. When options.cache is set, a
  /// canonical-form memo answers repeated shapes without re-solving.
  SolveOutcome Solve(const Constraint& c);

  /// \brief Propagates the positive primitives of \p c and reports the
  /// per-class domains (for enumeration). Fails when the positive part is
  /// already unsatisfiable.
  Result<std::vector<VarDomainInfo>> Analyze(const Constraint& c);

  /// \brief Last evaluator error (only meaningful after kError).
  const Status& last_status() const { return last_status_; }

  const SolveStats& stats() const { return stats_; }
  void ResetStats() { stats_ = SolveStats(); }

 private:
  friend class ConjunctionState;
  SolveOutcome SolveUncached(const Constraint& c);
  SolveOutcome SolveConjunctionWithSplits(
      std::vector<Primitive>* prims, int64_t* budget,
      std::unordered_map<std::string, DcaResult>* cache);

  DcaEvaluator* evaluator_;
  SolverOptions options_;
  Status last_status_;
  SolveStats stats_;
};

}  // namespace mmv

#endif  // MMV_CONSTRAINT_SOLVER_H_
