#include "constraint/solve_cache.h"

namespace mmv {

const SolveOutcome* SolveCache::Lookup(const CanonicalKey& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    stats_.misses++;
    return nullptr;
  }
  stats_.hits++;
  return &it->second;
}

void SolveCache::Insert(const CanonicalKey& key, SolveOutcome outcome) {
  if (map_.size() >= max_entries_) {
    stats_.full++;
    return;
  }
  map_.emplace(key, outcome);
}

bool SolveCache::SyncEpoch(uint64_t source, int64_t epoch) {
  if (has_epoch_ && source_ == source && epoch_ == epoch) return false;
  // An untagged memo may hold outcomes from engine runs that never sync
  // (Materialize / InsertBatch populate through FixpointOptions without
  // epoch bookkeeping), possibly computed against an older external
  // state. Drop those too: one spurious flush on first tagging is cheap;
  // serving a stale outcome would be unsound.
  bool flushed = !map_.empty();
  if (flushed) {
    map_.clear();
    stats_.epoch_flushes++;
  }
  has_epoch_ = true;
  source_ = source;
  epoch_ = epoch;
  return flushed;
}

}  // namespace mmv
