#include "constraint/solve_cache.h"

namespace mmv {

const SolveOutcome* SolveCache::Lookup(const CanonicalKey& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    stats_.misses++;
    return nullptr;
  }
  stats_.hits++;
  return &it->second;
}

void SolveCache::Insert(const CanonicalKey& key, SolveOutcome outcome) {
  if (map_.size() >= max_entries_) {
    stats_.full++;
    return;
  }
  map_.emplace(key, outcome);
}

}  // namespace mmv
