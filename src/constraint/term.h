// Terms: variables and constants, the arguments of atoms, domain calls and
// primitive constraints (paper Section 2.1/2.3).

#ifndef MMV_CONSTRAINT_TERM_H_
#define MMV_CONSTRAINT_TERM_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/value.h"

namespace mmv {

/// \brief Variable identifier. Variables are globally numbered; fresh ids are
/// drawn from a VarFactory so clause instances can be standardized apart.
using VarId = int32_t;

/// \brief A term: either a variable or a constant Value.
class Term {
 public:
  /// Constructs a constant term holding \p v.
  static Term Const(Value v) { return Term(kConstTag, -1, std::move(v)); }

  /// Constructs a variable term with id \p id.
  static Term Var(VarId id) { return Term(kVarTag, id, Value()); }

  /// Default: the null constant.
  Term() : Term(kConstTag, -1, Value()) {}

  bool is_var() const { return tag_ == kVarTag; }
  bool is_const() const { return tag_ == kConstTag; }

  /// \brief Variable id; requires is_var().
  VarId var() const { return var_; }

  /// \brief Constant payload; requires is_const().
  const Value& constant() const { return value_; }

  bool operator==(const Term& other) const {
    if (tag_ != other.tag_) return false;
    return is_var() ? var_ == other.var_ : value_ == other.value_;
  }
  bool operator!=(const Term& other) const { return !(*this == other); }

  size_t Hash() const {
    size_t h = static_cast<size_t>(tag_) * 0x517cc1b727220a95ULL;
    return is_var() ? HashCombine(h, static_cast<size_t>(var_))
                    : HashCombine(h, value_.Hash());
  }

  /// \brief Debug rendering; variables print as X<id> unless \p names
  /// supplies a symbolic name.
  std::string ToString() const;

 private:
  enum Tag : uint8_t { kVarTag, kConstTag };
  Term(Tag tag, VarId var, Value value)
      : tag_(tag), var_(var), value_(std::move(value)) {}

  Tag tag_;
  VarId var_;
  Value value_;
};

/// \brief A tuple of terms (atom arguments / domain-call arguments).
using TermVec = std::vector<Term>;

/// \brief Source of fresh variable ids; one per program/materialization so
/// that clause renaming ("standardizing apart") never collides.
class VarFactory {
 public:
  VarFactory() = default;

  /// \brief Returns a fresh, never-before-issued variable id.
  VarId Fresh() { return next_++; }

  /// \brief Ensures future Fresh() calls return ids > \p id.
  void ReserveAbove(VarId id) {
    if (id >= next_) next_ = id + 1;
  }

  /// \brief Number of ids issued so far.
  VarId issued() const { return next_; }

 private:
  VarId next_ = 0;
};

/// \brief Base of the PASS-LOCAL staging variable range. Parallel passes
/// (fixpoint clause rounds, StDel step-3 lift checks) standardize apart
/// through private factories reserved above this id; the deterministic
/// merge on the coordinating thread renames any staging variable that
/// survives into the run's real factory before it reaches durable state,
/// so real ids never meet staging ids. Real factories stay far below this
/// in practice; passes fall back to sequential execution if one ever
/// approaches it.
constexpr VarId kStagingVarBase = VarId{1} << 30;

/// \brief Collects the distinct variables of \p terms into \p out
/// (first-appearance order, no duplicates).
void CollectVars(const TermVec& terms, std::vector<VarId>* out);

/// \brief Order-preserving accumulator of distinct variable ids.
///
/// Membership is a linear scan while the set is small (where it beats any
/// hashing) and an unordered_set beyond that — replacing the O(v^2)
/// std::find-over-a-growing-vector idiom on hot paths while keeping the
/// exact first-appearance order those paths rely on for deterministic
/// fresh-variable renaming.
class VarSet {
 public:
  void Clear() {
    vars_.clear();
    seen_.clear();
  }

  /// \brief Adds \p v if absent; returns true when newly added.
  bool Add(VarId v) {
    if (seen_.empty()) {
      if (std::find(vars_.begin(), vars_.end(), v) != vars_.end()) {
        return false;
      }
      vars_.push_back(v);
      if (vars_.size() > kLinearLimit) {
        seen_.insert(vars_.begin(), vars_.end());
      }
      return true;
    }
    if (!seen_.insert(v).second) return false;
    vars_.push_back(v);
    return true;
  }

  void AddTerm(const Term& t) {
    if (t.is_var()) Add(t.var());
  }
  void AddTerms(const TermVec& ts) {
    for (const Term& t : ts) AddTerm(t);
  }

  /// \brief The distinct variables in first-appearance order.
  const std::vector<VarId>& vars() const { return vars_; }
  bool empty() const { return vars_.empty(); }
  size_t size() const { return vars_.size(); }

 private:
  static constexpr size_t kLinearLimit = 16;
  std::vector<VarId> vars_;
  std::unordered_set<VarId> seen_;  // engaged once past kLinearLimit
};

std::ostream& operator<<(std::ostream& os, const Term& t);

}  // namespace mmv

#endif  // MMV_CONSTRAINT_TERM_H_
