// Terms: variables and constants, the arguments of atoms, domain calls and
// primitive constraints (paper Section 2.1/2.3).

#ifndef MMV_CONSTRAINT_TERM_H_
#define MMV_CONSTRAINT_TERM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/value.h"

namespace mmv {

/// \brief Variable identifier. Variables are globally numbered; fresh ids are
/// drawn from a VarFactory so clause instances can be standardized apart.
using VarId = int32_t;

/// \brief A term: either a variable or a constant Value.
class Term {
 public:
  /// Constructs a constant term holding \p v.
  static Term Const(Value v) { return Term(kConstTag, -1, std::move(v)); }

  /// Constructs a variable term with id \p id.
  static Term Var(VarId id) { return Term(kVarTag, id, Value()); }

  /// Default: the null constant.
  Term() : Term(kConstTag, -1, Value()) {}

  bool is_var() const { return tag_ == kVarTag; }
  bool is_const() const { return tag_ == kConstTag; }

  /// \brief Variable id; requires is_var().
  VarId var() const { return var_; }

  /// \brief Constant payload; requires is_const().
  const Value& constant() const { return value_; }

  bool operator==(const Term& other) const {
    if (tag_ != other.tag_) return false;
    return is_var() ? var_ == other.var_ : value_ == other.value_;
  }
  bool operator!=(const Term& other) const { return !(*this == other); }

  size_t Hash() const {
    size_t h = static_cast<size_t>(tag_) * 0x517cc1b727220a95ULL;
    return is_var() ? HashCombine(h, static_cast<size_t>(var_))
                    : HashCombine(h, value_.Hash());
  }

  /// \brief Debug rendering; variables print as X<id> unless \p names
  /// supplies a symbolic name.
  std::string ToString() const;

 private:
  enum Tag : uint8_t { kVarTag, kConstTag };
  Term(Tag tag, VarId var, Value value)
      : tag_(tag), var_(var), value_(std::move(value)) {}

  Tag tag_;
  VarId var_;
  Value value_;
};

/// \brief A tuple of terms (atom arguments / domain-call arguments).
using TermVec = std::vector<Term>;

/// \brief Source of fresh variable ids; one per program/materialization so
/// that clause renaming ("standardizing apart") never collides.
class VarFactory {
 public:
  VarFactory() = default;

  /// \brief Returns a fresh, never-before-issued variable id.
  VarId Fresh() { return next_++; }

  /// \brief Ensures future Fresh() calls return ids > \p id.
  void ReserveAbove(VarId id) {
    if (id >= next_) next_ = id + 1;
  }

  /// \brief Number of ids issued so far.
  VarId issued() const { return next_; }

 private:
  VarId next_ = 0;
};

/// \brief Collects the distinct variables of \p terms into \p out
/// (first-appearance order, no duplicates).
void CollectVars(const TermVec& terms, std::vector<VarId>* out);

std::ostream& operator<<(std::ostream& os, const Term& t);

}  // namespace mmv

#endif  // MMV_CONSTRAINT_TERM_H_
