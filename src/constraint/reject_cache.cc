#include "constraint/reject_cache.h"

namespace mmv {

namespace {
uint64_t PairKey(uint32_t value_id, uint32_t call_id) {
  return (static_cast<uint64_t>(value_id) << 32) | call_id;
}
}  // namespace

void RejectCache::Record(const Value& value, const std::string& call_key,
                         bool member) {
  if (pairs_.size() >= max_entries_) {
    // Only genuinely NEW pairs are capacity-limited; a re-record of an
    // existing pair is the common case on hot loops and stays a no-op.
    auto vit = value_ids_.find(value);
    auto cit = call_ids_.find(call_key);
    if (vit == value_ids_.end() || cit == call_ids_.end() ||
        pairs_.find(PairKey(vit->second, cit->second)) == pairs_.end()) {
      stats_.full++;
    }
    return;
  }
  uint32_t value_id =
      value_ids_.emplace(value, static_cast<uint32_t>(value_ids_.size()))
          .first->second;
  uint32_t call_id =
      call_ids_.emplace(call_key, static_cast<uint32_t>(call_ids_.size()))
          .first->second;
  if (pairs_.emplace(PairKey(value_id, call_id), member).second) {
    stats_.records++;
  }
}

const bool* RejectCache::Lookup(const Value& value,
                                const std::string& call_key) {
  auto vit = value_ids_.find(value);
  if (vit == value_ids_.end()) {
    stats_.misses++;
    return nullptr;
  }
  auto cit = call_ids_.find(call_key);
  if (cit == call_ids_.end()) {
    stats_.misses++;
    return nullptr;
  }
  auto pit = pairs_.find(PairKey(vit->second, cit->second));
  if (pit == pairs_.end()) {
    stats_.misses++;
    return nullptr;
  }
  stats_.hits++;
  return &pit->second;
}

void RejectCache::Clear() {
  value_ids_.clear();
  call_ids_.clear();
  pairs_.clear();
}

bool RejectCache::SyncEpoch(uint64_t source, int64_t epoch) {
  if (has_epoch_ && source_ == source && epoch_ == epoch) return false;
  // Mirrors SolveCache::SyncEpoch: an untagged memo may hold records from
  // runs that never sync, possibly computed against an older external
  // state — drop those too rather than serve a stale membership.
  bool flushed = !pairs_.empty();
  if (flushed) {
    Clear();
    stats_.epoch_flushes++;
  }
  has_epoch_ = true;
  source_ = source;
  epoch_ = epoch;
  return flushed;
}

}  // namespace mmv
