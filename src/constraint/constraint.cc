#include "constraint/constraint.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace mmv {

size_t DomainCall::Hash() const {
  size_t h = HashCombineString(0x6d6d76, domain);
  h = HashCombineString(h, function);
  for (const Term& t : args) h = HashCombine(h, t.Hash());
  return h;
}

std::string DomainCall::ToString() const {
  std::ostringstream os;
  os << domain << ":" << function << "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i) os << ", ";
    os << args[i];
  }
  os << ")";
  return os.str();
}

CmpOp NegateCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGe;
    case CmpOp::kLe:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLe;
    case CmpOp::kGe:
      return CmpOp::kLt;
  }
  return CmpOp::kLt;
}

CmpOp SwapCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
  }
  return CmpOp::kLt;
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

Primitive Primitive::Eq(Term l, Term r) {
  Primitive p;
  p.kind = PrimKind::kEq;
  p.lhs = std::move(l);
  p.rhs = std::move(r);
  p.op = CmpOp::kLt;
  return p;
}

Primitive Primitive::Neq(Term l, Term r) {
  Primitive p = Eq(std::move(l), std::move(r));
  p.kind = PrimKind::kNeq;
  return p;
}

Primitive Primitive::Cmp(Term l, CmpOp op, Term r) {
  Primitive p = Eq(std::move(l), std::move(r));
  p.kind = PrimKind::kCmp;
  p.op = op;
  return p;
}

Primitive Primitive::In(Term x, DomainCall call) {
  Primitive p;
  p.kind = PrimKind::kIn;
  p.lhs = std::move(x);
  p.op = CmpOp::kLt;
  p.call = std::move(call);
  return p;
}

Primitive Primitive::NotInCall(Term x, DomainCall call) {
  Primitive p = In(std::move(x), std::move(call));
  p.kind = PrimKind::kNotIn;
  return p;
}

Primitive Primitive::Negated() const {
  Primitive p = *this;
  switch (kind) {
    case PrimKind::kEq:
      p.kind = PrimKind::kNeq;
      break;
    case PrimKind::kNeq:
      p.kind = PrimKind::kEq;
      break;
    case PrimKind::kCmp:
      p.op = NegateCmp(op);
      break;
    case PrimKind::kIn:
      p.kind = PrimKind::kNotIn;
      break;
    case PrimKind::kNotIn:
      p.kind = PrimKind::kIn;
      break;
  }
  return p;
}

bool Primitive::operator==(const Primitive& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case PrimKind::kEq:
    case PrimKind::kNeq:
      return lhs == other.lhs && rhs == other.rhs;
    case PrimKind::kCmp:
      return op == other.op && lhs == other.lhs && rhs == other.rhs;
    case PrimKind::kIn:
    case PrimKind::kNotIn:
      return lhs == other.lhs && call == other.call;
  }
  return false;
}

size_t Primitive::Hash() const {
  size_t h = static_cast<size_t>(kind) * 0x2545f4914f6cdd1dULL;
  h = HashCombine(h, lhs.Hash());
  switch (kind) {
    case PrimKind::kEq:
    case PrimKind::kNeq:
      h = HashCombine(h, rhs.Hash());
      break;
    case PrimKind::kCmp:
      h = HashCombine(h, static_cast<size_t>(op));
      h = HashCombine(h, rhs.Hash());
      break;
    case PrimKind::kIn:
    case PrimKind::kNotIn:
      h = HashCombine(h, call.Hash());
      break;
  }
  return h;
}

std::string Primitive::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case PrimKind::kEq:
      os << lhs << " = " << rhs;
      break;
    case PrimKind::kNeq:
      os << lhs << " != " << rhs;
      break;
    case PrimKind::kCmp:
      os << lhs << " " << CmpOpName(op) << " " << rhs;
      break;
    case PrimKind::kIn:
      os << "in(" << lhs << ", " << call.ToString() << ")";
      break;
    case PrimKind::kNotIn:
      os << "notin(" << lhs << ", " << call.ToString() << ")";
      break;
  }
  return os.str();
}

void Primitive::CollectVariables(std::vector<VarId>* out) const {
  auto add = [out](const Term& t) {
    if (t.is_var() &&
        std::find(out->begin(), out->end(), t.var()) == out->end()) {
      out->push_back(t.var());
    }
  };
  add(lhs);
  if (kind == PrimKind::kEq || kind == PrimKind::kNeq ||
      kind == PrimKind::kCmp) {
    add(rhs);
  }
  if (kind == PrimKind::kIn || kind == PrimKind::kNotIn) {
    for (const Term& t : call.args) add(t);
  }
}

size_t NotBlock::Hash() const {
  size_t h = 0x6e6f74;  // "not"
  for (const Primitive& p : prims) h = HashCombine(h, p.Hash());
  for (const NotBlock& b : inner) h = HashCombine(h, b.Hash());
  return h;
}

std::string NotBlock::ToString() const {
  std::ostringstream os;
  os << "not(";
  bool first = true;
  for (const Primitive& p : prims) {
    if (!first) os << " & ";
    os << p.ToString();
    first = false;
  }
  for (const NotBlock& b : inner) {
    if (!first) os << " & ";
    os << b.ToString();
    first = false;
  }
  os << ")";
  return os.str();
}

void NotBlock::CollectVariables(std::vector<VarId>* out) const {
  for (const Primitive& p : prims) p.CollectVariables(out);
  for (const NotBlock& b : inner) b.CollectVariables(out);
}

void Primitive::CollectVariables(VarSet* out) const {
  out->AddTerm(lhs);
  if (kind == PrimKind::kEq || kind == PrimKind::kNeq ||
      kind == PrimKind::kCmp) {
    out->AddTerm(rhs);
  }
  if (kind == PrimKind::kIn || kind == PrimKind::kNotIn) {
    out->AddTerms(call.args);
  }
}

void NotBlock::CollectVariables(VarSet* out) const {
  for (const Primitive& p : prims) p.CollectVariables(out);
  for (const NotBlock& b : inner) b.CollectVariables(out);
}

void Constraint::AddNot(NotBlock b) {
  if (b.BodyEmpty()) {
    // not(true) == false.
    false_marker_ = true;
    prims_.clear();
    nots_.clear();
    return;
  }
  nots_.push_back(std::move(b));
}

void Constraint::AndWith(const Constraint& other) {
  if (other.false_marker_ || false_marker_) {
    *this = False();
    return;
  }
  prims_.insert(prims_.end(), other.prims_.begin(), other.prims_.end());
  nots_.insert(nots_.end(), other.nots_.begin(), other.nots_.end());
}

void Constraint::CollectVariables(VarSet* out) const {
  for (const Primitive& p : prims_) p.CollectVariables(out);
  for (const NotBlock& b : nots_) b.CollectVariables(out);
}

Constraint Constraint::And(const Constraint& a, const Constraint& b) {
  Constraint out = a;
  out.AndWith(b);
  return out;
}

NotBlock Constraint::Negate(const Constraint& c) {
  NotBlock b;
  b.prims = c.prims();
  b.inner = c.nots();
  return b;
}

std::vector<VarId> Constraint::Variables() const {
  std::vector<VarId> out;
  for (const Primitive& p : prims_) p.CollectVariables(&out);
  for (const NotBlock& b : nots_) b.CollectVariables(&out);
  return out;
}

namespace {

size_t BlockLiteralCount(const NotBlock& b) {
  size_t n = b.prims.size();
  for (const NotBlock& i : b.inner) n += BlockLiteralCount(i);
  return n;
}

}  // namespace

size_t Constraint::LiteralCount() const {
  size_t n = prims_.size();
  for (const NotBlock& b : nots_) n += BlockLiteralCount(b);
  return n;
}

size_t Constraint::Hash() const {
  if (false_marker_) return 0xdead;
  size_t h = 0x636f6e;
  for (const Primitive& p : prims_) h = HashCombine(h, p.Hash());
  for (const NotBlock& b : nots_) h = HashCombine(h, b.Hash());
  return h;
}

std::string Constraint::ToString() const {
  if (false_marker_) return "false";
  if (is_true()) return "true";
  std::ostringstream os;
  bool first = true;
  for (const Primitive& p : prims_) {
    if (!first) os << " & ";
    os << p.ToString();
    first = false;
  }
  for (const NotBlock& b : nots_) {
    if (!first) os << " & ";
    os << b.ToString();
    first = false;
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Constraint& c) {
  return os << c.ToString();
}

}  // namespace mmv
