#include "constraint/solver.h"

#include "constraint/canonical.h"
#include "constraint/reject_cache.h"
#include "constraint/solve_cache.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <sstream>

namespace mmv {

namespace {
uint64_t NextEvaluatorId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

DcaEvaluator::DcaEvaluator() : instance_id_(NextEvaluatorId()) {}

DcaEvaluator::DcaEvaluator(const DcaEvaluator& other)
    : instance_id_(NextEvaluatorId()) {
  (void)other;
}

DcaEvaluator& DcaEvaluator::operator=(const DcaEvaluator& other) {
  if (this != &other) instance_id_ = NextEvaluatorId();
  return *this;
}

bool Interval::Empty() const {
  if (lo > hi) return true;
  if (lo == hi && (lo_strict || hi_strict)) return true;
  if (integral) {
    auto c = IntegralCount();
    if (c.has_value() && *c <= 0) return true;
  }
  return false;
}

bool Interval::Contains(double v) const {
  if (integral && v != std::floor(v)) return false;
  if (lo_strict ? v <= lo : v < lo) return false;
  if (hi_strict ? v >= hi : v > hi) return false;
  return true;
}

bool Interval::IntersectWith(const Interval& other) {
  if (other.lo > lo || (other.lo == lo && other.lo_strict)) {
    lo = other.lo;
    lo_strict = other.lo_strict;
  }
  if (other.hi < hi || (other.hi == hi && other.hi_strict)) {
    hi = other.hi;
    hi_strict = other.hi_strict;
  }
  integral = integral || other.integral;
  return !Empty();
}

std::optional<int64_t> Interval::IntegralCount() const {
  if (!integral) return std::nullopt;
  if (!std::isfinite(lo) || !std::isfinite(hi)) return std::nullopt;
  double l = std::ceil(lo);
  if (lo_strict && l == lo) l += 1;
  double h = std::floor(hi);
  if (hi_strict && h == hi) h -= 1;
  if (l > h) return 0;
  return static_cast<int64_t>(h - l) + 1;
}

std::string Interval::ToString() const {
  std::ostringstream os;
  os << (lo_strict ? "(" : "[") << lo << ", " << hi
     << (hi_strict ? ")" : "]") << (integral ? " int" : "");
  return os.str();
}

namespace {

// Rendering of a ground domain call, shared between the per-solve
// DcaResult cache and the cross-run RejectCache: both key on
// "domain:function|arg|arg...". RejectCache only requires that Record and
// Lookup agree on the rendering, but keeping one format means one helper.
void AppendDcaCacheKey(std::string* out, const DomainCall& call,
                       const std::vector<Value>& args) {
  *out += call.domain;
  *out += ':';
  *out += call.function;
  for (const Value& v : args) {
    *out += '|';
    *out += v.ToString();
  }
}

bool EvalCmp(double a, CmpOp op, double b) {
  switch (op) {
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

// Turns `X op c` into an interval restriction on X.
Interval CmpToInterval(CmpOp op, double c) {
  Interval i;
  switch (op) {
    case CmpOp::kLt:
      i.hi = c;
      i.hi_strict = true;
      break;
    case CmpOp::kLe:
      i.hi = c;
      break;
    case CmpOp::kGt:
      i.lo = c;
      i.lo_strict = true;
      break;
    case CmpOp::kGe:
      i.lo = c;
      break;
  }
  return i;
}

// piece \ co, as up to two intervals: the part of piece below co's lower
// end, and the part above co's upper end.
std::vector<Interval> SubtractInterval(const Interval& piece,
                                       const Interval& co) {
  std::vector<Interval> out;
  // x is below co iff it fails co's lower-bound test.
  Interval below;
  below.hi = co.lo;
  below.hi_strict = !co.lo_strict;
  Interval left = piece;
  if (left.IntersectWith(below)) out.push_back(left);
  // x is above co iff it fails co's upper-bound test.
  Interval above;
  above.lo = co.hi;
  above.lo_strict = !co.hi_strict;
  Interval right = piece;
  if (right.IntersectWith(above)) out.push_back(right);
  return out;
}

struct ClassInfo {
  std::optional<Value> bound;
  Interval interval;
  bool interval_touched = false;
  std::set<Value> excluded;
  std::optional<std::set<Value>> candidates;
  std::vector<Interval> co_intervals;
};

struct DerefResult {
  bool is_value = false;
  Value value;
  VarId root = -1;
};

// Tracks the state of solving one conjunction of primitives.
class ConjunctionState {
 public:
  ConjunctionState(DcaEvaluator* evaluator, bool evaluate_dca,
                   SolveStats* stats, Status* last_status,
                   std::unordered_map<std::string, DcaResult>* dca_cache,
                   RejectCache* reject_cache)
      : evaluator_(evaluator),
        evaluate_dca_(evaluate_dca),
        stats_(stats),
        last_status_(last_status),
        dca_cache_(dca_cache),
        reject_cache_(reject_cache) {}

  SolveOutcome Run(const std::vector<Primitive>& prims) {
    stats_->literals_processed += static_cast<int64_t>(prims.size());
    // Pass 1: equalities build the union-find.
    for (const Primitive& p : prims) {
      if (p.kind != PrimKind::kEq) continue;
      if (!ProcessEq(p)) return SolveOutcome::kUnsat;
    }
    // Pass 2: everything else, to fixpoint.
    std::vector<Primitive> pending;
    for (const Primitive& p : prims) {
      if (p.kind != PrimKind::kEq) pending.push_back(p);
    }
    bool progress = true;
    while (progress) {
      progress = false;
      std::vector<Primitive> next;
      for (const Primitive& p : pending) {
        ProcessResult r = ProcessPrim(p);
        switch (r) {
          case ProcessResult::kUnsat:
            return SolveOutcome::kUnsat;
          case ProcessResult::kError:
            return SolveOutcome::kError;
          case ProcessResult::kResolved:
            progress = true;
            break;
          case ProcessResult::kDeferred:
            deferred_count_++;
            break;  // permanently deferred
          case ProcessResult::kRetry:
            next.push_back(p);
            break;
        }
      }
      pending = std::move(next);
      if (PromoteSingletons()) progress = true;
      if (pending.empty()) break;
    }
    // Whatever could not be resolved is deferred.
    deferred_count_ += static_cast<int64_t>(pending.size());
    for (const Primitive& p : pending) MarkDeferredVars(p);

    if (!FinalCheck()) return SolveOutcome::kUnsat;
    return deferred_count_ > 0 ? SolveOutcome::kSatDeferred
                               : SolveOutcome::kSat;
  }

  // After a kSatDeferred Run: proposes a variable with a finite candidate
  // set that a deferred literal depends on — binding it each way decides
  // the deferred literals (complete case split, since the variable must
  // take one of the candidate values).
  bool SuggestSplit(VarId* var, std::vector<Value>* candidates) {
    for (const auto& [v, _] : parent_) {
      VarId root = Find(v);
      const ClassInfo& c = classes_[root];
      if (c.bound || !c.candidates) continue;
      if (!deferred_vars_.count(v)) continue;
      *var = v;
      candidates->assign(c.candidates->begin(), c.candidates->end());
      return true;
    }
    // Fall back to any finite-candidate class if a deferred literal exists
    // at all (its variables may connect indirectly).
    if (deferred_count_ > 0) {
      for (const auto& [v, _] : parent_) {
        VarId root = Find(v);
        const ClassInfo& c = classes_[root];
        if (c.bound || !c.candidates) continue;
        *var = v;
        candidates->assign(c.candidates->begin(), c.candidates->end());
        return true;
      }
    }
    return false;
  }

  // Exposes per-class domains (after Run) for enumeration.
  std::vector<VarDomainInfo> ExtractDomains() {
    std::vector<VarDomainInfo> out;
    std::unordered_map<VarId, size_t> root_slot;
    for (const auto& [v, _] : parent_) {
      VarId r = Find(v);
      auto it = root_slot.find(r);
      if (it == root_slot.end()) {
        root_slot[r] = out.size();
        out.emplace_back();
        it = root_slot.find(r);
      }
      out[it->second].members.push_back(v);
    }
    for (auto& [r, slot] : root_slot) {
      const ClassInfo& ci = classes_[r];
      VarDomainInfo& info = out[slot];
      info.bound = ci.bound;
      if (ci.candidates.has_value()) {
        info.candidates =
            std::vector<Value>(ci.candidates->begin(), ci.candidates->end());
      }
      info.interval = ci.interval_touched ? ci.interval : Interval::All();
      info.excluded.assign(ci.excluded.begin(), ci.excluded.end());
      info.touched_by_deferred = false;
      for (VarId m : info.members) {
        if (deferred_vars_.count(m)) info.touched_by_deferred = true;
      }
    }
    return out;
  }

 private:
  enum class ProcessResult { kResolved, kDeferred, kRetry, kUnsat, kError };

  VarId Find(VarId v) {
    auto it = parent_.find(v);
    if (it == parent_.end()) {
      parent_[v] = v;
      return v;
    }
    if (it->second == v) return v;
    VarId r = Find(it->second);
    parent_[v] = r;
    return r;
  }

  ClassInfo& Class(VarId root) { return classes_[root]; }

  // Returns false on definite conflict.
  bool Union(VarId a, VarId b) {
    VarId ra = Find(a), rb = Find(b);
    if (ra == rb) return true;
    ClassInfo& ca = classes_[ra];
    ClassInfo& cb = classes_[rb];
    // Merge cb into ca.
    if (ca.bound && cb.bound && !(*ca.bound == *cb.bound)) return false;
    if (!ca.bound && cb.bound) ca.bound = cb.bound;
    if (cb.interval_touched) {
      if (!ca.interval_touched) {
        ca.interval = cb.interval;
        ca.interval_touched = true;
      } else if (!ca.interval.IntersectWith(cb.interval)) {
        return false;
      }
    }
    ca.excluded.insert(cb.excluded.begin(), cb.excluded.end());
    if (cb.candidates) {
      if (!ca.candidates) {
        ca.candidates = cb.candidates;
      } else {
        std::set<Value> inter;
        std::set_intersection(ca.candidates->begin(), ca.candidates->end(),
                              cb.candidates->begin(), cb.candidates->end(),
                              std::inserter(inter, inter.begin()));
        if (inter.empty()) return false;
        ca.candidates = std::move(inter);
      }
    }
    ca.co_intervals.insert(ca.co_intervals.end(), cb.co_intervals.begin(),
                           cb.co_intervals.end());
    classes_.erase(rb);
    parent_[rb] = ra;
    return true;
  }

  // Binds class of v to value; false on conflict.
  bool BindClass(VarId v, const Value& val) {
    VarId r = Find(v);
    ClassInfo& c = classes_[r];
    if (c.bound) return *c.bound == val;
    c.bound = val;
    return true;
  }

  DerefResult Deref(const Term& t) {
    DerefResult d;
    if (t.is_const()) {
      d.is_value = true;
      d.value = t.constant();
      return d;
    }
    VarId r = Find(t.var());
    const ClassInfo& c = classes_[r];
    if (c.bound) {
      d.is_value = true;
      d.value = *c.bound;
      return d;
    }
    d.root = r;
    return d;
  }

  bool ProcessEq(const Primitive& p) {
    DerefResult l = Deref(p.lhs), r = Deref(p.rhs);
    if (l.is_value && r.is_value) return l.value == r.value;
    if (l.is_value) return BindClass(p.rhs.var(), l.value);
    if (r.is_value) return BindClass(p.lhs.var(), r.value);
    return Union(p.lhs.var(), p.rhs.var());
  }

  ProcessResult ProcessPrim(const Primitive& p) {
    switch (p.kind) {
      case PrimKind::kEq:
        // Late equalities (from promoted singletons do not re-add these).
        return ProcessEq(p) ? ProcessResult::kResolved : ProcessResult::kUnsat;
      case PrimKind::kNeq:
        return ProcessNeq(p);
      case PrimKind::kCmp:
        return ProcessCmp(p);
      case PrimKind::kIn:
      case PrimKind::kNotIn:
        return ProcessDca(p);
    }
    return ProcessResult::kResolved;
  }

  ProcessResult ProcessNeq(const Primitive& p) {
    DerefResult l = Deref(p.lhs), r = Deref(p.rhs);
    if (l.is_value && r.is_value) {
      return l.value == r.value ? ProcessResult::kUnsat
                                : ProcessResult::kResolved;
    }
    if (l.is_value || r.is_value) {
      const Value& val = l.is_value ? l.value : r.value;
      VarId root = l.is_value ? r.root : l.root;
      classes_[root].excluded.insert(val);
      return ProcessResult::kResolved;
    }
    if (l.root == r.root) return ProcessResult::kUnsat;
    neq_pairs_.emplace_back(p.lhs.var(), p.rhs.var());
    return ProcessResult::kResolved;  // checked again in FinalCheck
  }

  ProcessResult ProcessCmp(const Primitive& p) {
    DerefResult l = Deref(p.lhs), r = Deref(p.rhs);
    if (l.is_value && r.is_value) {
      if (!l.value.is_numeric() || !r.value.is_numeric())
        return ProcessResult::kUnsat;
      return EvalCmp(l.value.numeric(), p.op, r.value.numeric())
                 ? ProcessResult::kResolved
                 : ProcessResult::kUnsat;
    }
    if (l.is_value || r.is_value) {
      const Value& val = l.is_value ? l.value : r.value;
      if (!val.is_numeric()) return ProcessResult::kUnsat;
      VarId root = l.is_value ? r.root : l.root;
      CmpOp op = l.is_value ? SwapCmp(p.op) : p.op;  // orient as var op val
      ClassInfo& c = classes_[root];
      Interval restriction = CmpToInterval(op, val.numeric());
      if (!c.interval_touched) {
        c.interval = restriction;
        c.interval_touched = true;
      } else if (!c.interval.IntersectWith(restriction)) {
        return ProcessResult::kUnsat;
      }
      return ProcessResult::kResolved;
    }
    // var-var: wait for one side to become bound.
    return ProcessResult::kRetry;
  }

  ProcessResult ProcessDca(const Primitive& p) {
    if (evaluator_ == nullptr || !evaluate_dca_) {
      return ProcessResult::kDeferred;
    }
    // Ground the call arguments.
    std::vector<Value> args;
    args.reserve(p.call.args.size());
    for (const Term& t : p.call.args) {
      DerefResult d = Deref(t);
      if (!d.is_value) return ProcessResult::kRetry;
      args.push_back(std::move(d.value));
    }
    std::string key = MakeCacheKey(p.call, args);
    DcaResult res;
    auto it = dca_cache_->find(key);
    if (it != dca_cache_->end()) {
      res = it->second;
    } else {
      stats_->dca_evaluations++;
      Result<DcaResult> r =
          evaluator_->Evaluate(p.call.domain, p.call.function, args);
      if (!r.ok()) {
        *last_status_ = r.status();
        return ProcessResult::kError;
      }
      res = *r;
      (*dca_cache_)[key] = res;
    }
    if (res.kind == DcaResultKind::kUnknown) return ProcessResult::kDeferred;

    bool positive = (p.kind == PrimKind::kIn);
    DerefResult x = Deref(p.lhs);
    if (res.kind == DcaResultKind::kFinite) {
      if (x.is_value) {
        bool member = std::find(res.values.begin(), res.values.end(),
                                x.value) != res.values.end();
        // A decided ground membership is a pure fact about the external
        // database at the current epoch — record it (whatever the literal's
        // sign or outcome) so later satisfiability screens can refute
        // matching literals without a full solve.
        if (reject_cache_ != nullptr) {
          reject_cache_->Record(x.value, key, member);
        }
        return member == positive ? ProcessResult::kResolved
                                  : ProcessResult::kUnsat;
      }
      ClassInfo& c = classes_[x.root];
      if (positive) {
        std::set<Value> s(res.values.begin(), res.values.end());
        if (!c.candidates) {
          c.candidates = std::move(s);
        } else {
          std::set<Value> inter;
          std::set_intersection(c.candidates->begin(), c.candidates->end(),
                                s.begin(), s.end(),
                                std::inserter(inter, inter.begin()));
          if (inter.empty()) return ProcessResult::kUnsat;
          c.candidates = std::move(inter);
        }
      } else {
        c.excluded.insert(res.values.begin(), res.values.end());
      }
      return ProcessResult::kResolved;
    }
    // Interval result.
    if (x.is_value) {
      bool member =
          x.value.is_numeric() && res.interval.Contains(x.value.numeric());
      if (reject_cache_ != nullptr) {
        reject_cache_->Record(x.value, key, member);
      }
      return member == positive ? ProcessResult::kResolved
                                : ProcessResult::kUnsat;
    }
    ClassInfo& c = classes_[x.root];
    if (positive) {
      if (!c.interval_touched) {
        c.interval = res.interval;
        c.interval_touched = true;
      } else if (!c.interval.IntersectWith(res.interval)) {
        return ProcessResult::kUnsat;
      }
    } else {
      c.co_intervals.push_back(res.interval);
    }
    return ProcessResult::kResolved;
  }

  static std::string MakeCacheKey(const DomainCall& call,
                                  const std::vector<Value>& args) {
    std::string key;
    AppendDcaCacheKey(&key, call, args);
    return key;
  }

  // Promotes singleton candidate sets to bindings, enabling further DCA
  // argument grounding. Returns true on progress.
  bool PromoteSingletons() {
    bool progress = false;
    for (auto& [root, c] : classes_) {
      if (c.bound || !c.candidates) continue;
      // Filter candidates by current interval/exclusions first.
      std::set<Value> keep;
      for (const Value& v : *c.candidates) {
        if (c.excluded.count(v)) continue;
        if (c.interval_touched &&
            (!v.is_numeric() || !c.interval.Contains(v.numeric())))
          continue;
        keep.insert(v);
      }
      if (keep.size() != c.candidates->size()) {
        c.candidates = keep;
        progress = true;
      }
      if (c.candidates->size() == 1) {
        c.bound = *c.candidates->begin();
        progress = true;
      }
    }
    return progress;
  }

  void MarkDeferredVars(const Primitive& p) {
    std::vector<VarId> vars;
    p.CollectVariables(&vars);
    deferred_vars_.insert(vars.begin(), vars.end());
  }

  bool ClassFeasible(const ClassInfo& c) const {
    if (c.bound) {
      const Value& v = *c.bound;
      if (c.excluded.count(v)) return false;
      if (c.candidates && !c.candidates->count(v)) return false;
      if (c.interval_touched &&
          (!v.is_numeric() || !c.interval.Contains(v.numeric())))
        return false;
      for (const Interval& co : c.co_intervals) {
        if (v.is_numeric() && co.Contains(v.numeric())) return false;
      }
      return true;
    }
    if (c.candidates) {
      for (const Value& v : *c.candidates) {
        if (c.excluded.count(v)) continue;
        if (c.interval_touched &&
            (!v.is_numeric() || !c.interval.Contains(v.numeric())))
          continue;
        bool hit = false;
        for (const Interval& co : c.co_intervals) {
          if (v.is_numeric() && co.Contains(v.numeric())) {
            hit = true;
            break;
          }
        }
        if (!hit) return true;
      }
      return false;
    }
    if (!c.interval_touched) {
      // Unconstrained (modulo exclusions / co-intervals over an unbounded
      // universe): always feasible.
      return true;
    }
    // Interval domain: subtract co-intervals, then check that some piece
    // survives the (finite) exclusion set.
    std::vector<Interval> pieces = {c.interval};
    for (const Interval& co : c.co_intervals) {
      std::vector<Interval> next;
      for (const Interval& piece : pieces) {
        std::vector<Interval> rem = SubtractInterval(piece, co);
        next.insert(next.end(), rem.begin(), rem.end());
      }
      pieces = std::move(next);
      if (pieces.empty()) return false;
    }
    for (Interval piece : pieces) {
      piece.integral = piece.integral || c.interval.integral;
      if (piece.Empty()) continue;
      if (piece.integral) {
        auto count = piece.IntegralCount();
        if (!count.has_value()) return true;  // infinitely many integers
        int64_t excluded_inside = 0;
        for (const Value& v : c.excluded) {
          if (v.is_numeric() && piece.Contains(v.numeric())) excluded_inside++;
        }
        if (*count > excluded_inside) return true;
      } else {
        // Real piece: non-degenerate pieces survive finite exclusions;
        // degenerate point pieces must avoid the exclusion set.
        if (piece.lo < piece.hi) return true;
        Value pt(piece.lo);
        if (!c.excluded.count(pt)) return true;
      }
    }
    return false;
  }

  bool FinalCheck() {
    for (const auto& [root, c] : classes_) {
      if (!ClassFeasible(c)) return false;
    }
    for (const auto& [a, b] : neq_pairs_) {
      VarId ra = Find(a), rb = Find(b);
      if (ra == rb) {
        const ClassInfo& c = classes_[ra];
        // X != Y with X,Y unified: unsat unless... always unsat.
        (void)c;
        return false;
      }
      const ClassInfo& ca = classes_[ra];
      const ClassInfo& cb = classes_[rb];
      if (ca.bound && cb.bound && *ca.bound == *cb.bound) return false;
      // Both forced to identical singleton candidate sets of size 1 are
      // caught by PromoteSingletons (which sets bound).
    }
    return true;
  }

  DcaEvaluator* evaluator_;
  bool evaluate_dca_;
  SolveStats* stats_;
  Status* last_status_;
  std::unordered_map<std::string, DcaResult>* dca_cache_;
  RejectCache* reject_cache_;  ///< membership recording sink; may be null

  std::unordered_map<VarId, VarId> parent_;
  std::unordered_map<VarId, ClassInfo> classes_;
  std::vector<std::pair<VarId, VarId>> neq_pairs_;
  std::set<VarId> deferred_vars_;
  int64_t deferred_count_ = 0;
};

}  // namespace

// Decides a conjunction of primitives, case-splitting on finite candidate
// sets when deferred literals remain (complete search up to the budget).
SolveOutcome Solver::SolveConjunctionWithSplits(
    std::vector<Primitive>* prims, int64_t* budget,
    std::unordered_map<std::string, DcaResult>* cache) {
  if (--(*budget) < 0) return SolveOutcome::kSatDeferred;
  stats_.choice_branches++;
  ConjunctionState state(evaluator_, options_.evaluate_dca, &stats_,
                         &last_status_, cache, options_.reject_cache);
  SolveOutcome o = state.Run(*prims);
  if (o != SolveOutcome::kSatDeferred || !options_.split_candidates) {
    return o;
  }
  VarId var;
  std::vector<Value> candidates;
  if (!state.SuggestSplit(&var, &candidates)) return o;
  // The variable must take one of the candidate values: the split is a
  // complete case analysis.
  bool saw_deferred = false;
  bool saw_error = false;
  for (const Value& v : candidates) {
    prims->push_back(Primitive::Eq(Term::Var(var), Term::Const(v)));
    SolveOutcome sub = SolveConjunctionWithSplits(prims, budget, cache);
    prims->pop_back();
    if (sub == SolveOutcome::kSat) return SolveOutcome::kSat;
    if (sub == SolveOutcome::kSatDeferred) saw_deferred = true;
    if (sub == SolveOutcome::kError) saw_error = true;
    if (*budget < 0) return SolveOutcome::kSatDeferred;
  }
  if (saw_error) return SolveOutcome::kError;
  if (saw_deferred) return SolveOutcome::kSatDeferred;
  return SolveOutcome::kUnsat;
}

SolveOutcome Solver::Solve(const Constraint& c) {
  stats_.solve_calls++;
  if (c.is_false()) return SolveOutcome::kUnsat;
  if (c.is_true()) return SolveOutcome::kSat;
  // Satisfiability fast path: the linear screen runs BEFORE the memo
  // lookup — a rejection skips even the canonical-key rendering, and the
  // screen is sound for rejection only, so outcomes are unchanged.
  if (options_.fastpath &&
      TestSatisfiability(c) == SolveOutcome::kUnsat) {
    return SolveOutcome::kUnsat;
  }
  if (options_.cache == nullptr) return SolveUncached(c);
  CanonicalKey key = CanonicalConstraintKey(c, options_.cache->scratch());
  if (const SolveOutcome* hit = options_.cache->Lookup(key)) {
    stats_.cache_hits++;
    return *hit;
  }
  SolveOutcome outcome = SolveUncached(c);
  // Errors are evaluator failures, not properties of the constraint.
  if (outcome != SolveOutcome::kError) options_.cache->Insert(key, outcome);
  return outcome;
}

SolveOutcome Solver::SolveUncached(const Constraint& c) {
  std::unordered_map<std::string, DcaResult> cache;
  int64_t budget = options_.max_choice_branches;

  // Fast path / pruning: the positive part must be satisfiable on its own.
  {
    std::vector<Primitive> prims = c.prims();
    SolveOutcome positive =
        SolveConjunctionWithSplits(&prims, &budget, &cache);
    if (positive == SolveOutcome::kUnsat || positive == SolveOutcome::kError) {
      return positive;
    }
    if (c.nots().empty()) return positive;
  }

  // Expand not-blocks. To satisfy not(B) where B = p1 ^ ... ^ pk ^
  // not(B1) ^ ... ^ not(Bm), choose either some pi to violate (add its
  // negation) or some Bj to assert (add Bj's primitives and queue Bj's own
  // inner blocks as further not-obligations). The constraint is satisfiable
  // iff some choice assignment yields a satisfiable conjunction.
  bool saw_deferred = false;
  bool saw_error = false;
  std::vector<Primitive> chosen = c.prims();
  std::vector<const NotBlock*> blocks;
  blocks.reserve(c.nots().size());
  for (const NotBlock& b : c.nots()) blocks.push_back(&b);

  std::function<bool(size_t)> dfs = [&](size_t idx) -> bool {
    if (idx == blocks.size()) {
      if (budget < 0) {
        // Budget exhausted: conservatively report deferred-sat.
        saw_deferred = true;
        return true;  // stop the search
      }
      SolveOutcome o = SolveConjunctionWithSplits(&chosen, &budget, &cache);
      if (o == SolveOutcome::kSat) return true;
      if (o == SolveOutcome::kSatDeferred) saw_deferred = true;
      if (o == SolveOutcome::kError) saw_error = true;
      return false;
    }
    const NotBlock& b = *blocks[idx];
    for (const Primitive& p : b.prims) {
      chosen.push_back(p.Negated());
      bool found = dfs(idx + 1);
      chosen.pop_back();
      if (found) return true;
    }
    for (const NotBlock& ib : b.inner) {
      size_t chosen_mark = chosen.size();
      size_t blocks_mark = blocks.size();
      chosen.insert(chosen.end(), ib.prims.begin(), ib.prims.end());
      for (const NotBlock& nested : ib.inner) blocks.push_back(&nested);
      bool found = dfs(idx + 1);
      chosen.resize(chosen_mark);
      blocks.resize(blocks_mark);
      if (found) return true;
    }
    return false;
  };

  bool sat = dfs(0);
  if (sat && budget >= 0) return SolveOutcome::kSat;
  if (saw_error) return SolveOutcome::kError;
  if (saw_deferred) return SolveOutcome::kSatDeferred;
  return SolveOutcome::kUnsat;
}

// ---- satisfiability fast path ---------------------------------------------
//
// The screens below mirror a strict SUBSET of the full decision procedure:
// every rejection corresponds to a contradiction the union-find pipeline
// would also find among the same literals, so `screen rejects` implies
// `Solve returns kUnsat`. Anything the full solver merely defers (var-var
// comparisons, unevaluated DCA-atoms, not-blocks) the screens skip — a
// budget-starved or deferring Solve must never be out-rejected.

namespace {
inline uint64_t ScreenVarKey(uint32_t scope, VarId v) {
  return (static_cast<uint64_t>(scope) << 32) | static_cast<uint32_t>(v);
}
}  // namespace

void Solver::ScreenReset() {
  screen_bound_.clear();
  screen_intervals_.clear();
}

const Value* Solver::ScreenResolve(uint32_t scope, const Term& t) const {
  if (t.is_const()) return &t.constant();
  auto it = screen_bound_.find(ScreenVarKey(scope, t.var()));
  return it == screen_bound_.end() ? nullptr : it->second;
}

// One equality edge; true on a definite conflict. There is no union-find
// here: an edge whose sides both resolve must agree, an edge with exactly
// one resolved side binds the other, and a var-var edge is skipped —
// callers run the eq passes twice (bindings only grow) so a binding
// discovered late still propagates one hop. Everything a binding derives
// is entailed by the equalities alone, and the full solver's pass-1
// union-find derives every such entailment, so each conflict found here is
// found there too.
bool Solver::ScreenEqPair(uint32_t scope_l, const Term& l, uint32_t scope_r,
                          const Term& r) {
  const Value* lv = ScreenResolve(scope_l, l);
  const Value* rv = ScreenResolve(scope_r, r);
  if (lv != nullptr && rv != nullptr) return !(*lv == *rv);
  if (lv != nullptr && r.is_var()) {
    screen_bound_.emplace(ScreenVarKey(scope_r, r.var()), lv);
  } else if (rv != nullptr && l.is_var()) {
    screen_bound_.emplace(ScreenVarKey(scope_l, l.var()), rv);
  }
  return false;
}

bool Solver::ScreenEq(const Constraint& c, uint32_t scope) {
  for (const Primitive& p : c.prims()) {
    if (p.kind != PrimKind::kEq) continue;
    if (ScreenEqPair(scope, p.lhs, scope, p.rhs)) return true;
  }
  return false;
}

// Deterministic non-eq screens (disequalities, comparisons). Mirrors
// ProcessNeq / ProcessCmp on the resolvable cases only; DCA literals are
// screened separately (ScreenDca) AFTER every deterministic screen, so the
// deterministic rejection count never depends on memo contents.
bool Solver::ScreenRest(const Constraint& c, uint32_t scope) {
  for (const Primitive& p : c.prims()) {
    switch (p.kind) {
      case PrimKind::kEq:
      case PrimKind::kIn:
      case PrimKind::kNotIn:
        break;
      case PrimKind::kNeq: {
        const Value* lv = ScreenResolve(scope, p.lhs);
        const Value* rv = ScreenResolve(scope, p.rhs);
        if (lv != nullptr && rv != nullptr && *lv == *rv) return true;
        // X != X: the full solver derefs both sides to one class root.
        if (lv == nullptr && rv == nullptr && p.lhs.is_var() &&
            p.rhs.is_var() && p.lhs.var() == p.rhs.var()) {
          return true;
        }
        break;
      }
      case PrimKind::kCmp: {
        const Value* lv = ScreenResolve(scope, p.lhs);
        const Value* rv = ScreenResolve(scope, p.rhs);
        if (lv != nullptr && rv != nullptr) {
          if (!lv->is_numeric() || !rv->is_numeric()) return true;
          if (!EvalCmp(lv->numeric(), p.op, rv->numeric())) return true;
          break;
        }
        if (lv == nullptr && rv == nullptr) break;  // var-var: deferred
        const Value* val = lv != nullptr ? lv : rv;
        if (!val->is_numeric()) return true;  // mirrors ProcessCmp
        const Term& var_side = lv != nullptr ? p.rhs : p.lhs;
        CmpOp op = lv != nullptr ? SwapCmp(p.op) : p.op;  // var op val
        Interval restriction = CmpToInterval(op, val->numeric());
        // Per-variable intervals: coarser than the solver's per-CLASS
        // intervals, so an empty intersection here is empty there too.
        auto [it, fresh] = screen_intervals_.emplace(
            ScreenVarKey(scope, var_side.var()), restriction);
        if (!fresh && !it->second.IntersectWith(restriction)) return true;
        break;
      }
    }
  }
  return false;
}

// Memo-backed DCA screen: a literal in(x, call) / not in(x, call) whose
// lhs and call arguments all resolve is refuted when the RejectCache holds
// the opposite membership. Records only exist for calls the full solver
// actually decided (same epoch, same evaluator), so the full solver's
// ProcessDca reaches the same membership and returns kUnsat.
bool Solver::ScreenDca(const Constraint& c, uint32_t scope) {
  if (options_.reject_cache == nullptr || evaluator_ == nullptr ||
      !options_.evaluate_dca) {
    return false;
  }
  for (const Primitive& p : c.prims()) {
    if (p.kind != PrimKind::kIn && p.kind != PrimKind::kNotIn) continue;
    const Value* x = ScreenResolve(scope, p.lhs);
    if (x == nullptr) continue;
    screen_args_.clear();
    bool ground = true;
    for (const Term& t : p.call.args) {
      const Value* v = ScreenResolve(scope, t);
      if (v == nullptr) {
        ground = false;
        break;
      }
      screen_args_.push_back(*v);
    }
    if (!ground) continue;
    screen_key_.clear();
    AppendDcaCacheKey(&screen_key_, p.call, screen_args_);
    const bool* member = options_.reject_cache->Lookup(*x, screen_key_);
    if (member != nullptr && *member != (p.kind == PrimKind::kIn)) {
      return true;
    }
  }
  return false;
}

SolveOutcome Solver::TestSatisfiability(const Constraint& c) {
  stats_.sat_prechecks++;
  if (c.is_false()) {
    stats_.sat_rejects++;
    return SolveOutcome::kUnsat;
  }
  if (c.is_true()) return SolveOutcome::kSat;
  // A budget-starved full Solve reports kSatDeferred for EVERY conjunction
  // — with no oracle rejection to mirror, the screen must stand down.
  if (options_.max_choice_branches < 1) return SolveOutcome::kSatDeferred;
  ScreenReset();
  if (ScreenEq(c, 0) || ScreenEq(c, 0) || ScreenRest(c, 0)) {
    stats_.sat_rejects++;
    return SolveOutcome::kUnsat;
  }
  if (ScreenDca(c, 0)) {
    stats_.reject_cache_hits++;
    return SolveOutcome::kUnsat;
  }
  return SolveOutcome::kSatDeferred;
}

bool Solver::RejectJoin(const Constraint& clause_constraint,
                        const std::vector<JoinComponent>& body) {
  if (!options_.fastpath || options_.max_choice_branches < 1) return false;
  // Malformed joins (arity mismatch) yield NO verdict: the executor's slow
  // path owns that error, and a screen rejection would silently mask it.
  for (const JoinComponent& comp : body) {
    if (comp.inst_args->size() != comp.pattern->size()) return false;
  }
  stats_.sat_prechecks++;
  // A bottom component makes the whole assembled conjunction false
  // (Constraint::AndWith propagates the marker), which T_P prunes.
  if (clause_constraint.is_false()) {
    stats_.sat_rejects++;
    return true;
  }
  for (const JoinComponent& comp : body) {
    if (comp.inst_constraint->is_false()) {
      stats_.sat_rejects++;
      return true;
    }
  }
  ScreenReset();
  // Equality passes over every eq source of the assembled constraint: the
  // clause constraint (scope 0), each instance constraint (scope i+1 —
  // modelling the fresh renaming that standardizes instances apart), and
  // the argument-pattern equations the executor would add. Two rounds, so
  // a binding discovered in one source propagates across the others — in
  // particular a clause variable double-bound through two DIFFERENT
  // instances' ground arguments is the canonical cross-instance mismatch.
  for (int pass = 0; pass < 2; ++pass) {
    if (ScreenEq(clause_constraint, 0)) {
      stats_.sat_rejects++;
      return true;
    }
    for (size_t i = 0; i < body.size(); ++i) {
      if (ScreenEq(*body[i].inst_constraint,
                   static_cast<uint32_t>(i) + 1)) {
        stats_.sat_rejects++;
        return true;
      }
    }
    for (size_t i = 0; i < body.size(); ++i) {
      const JoinComponent& comp = body[i];
      for (size_t k = 0; k < comp.pattern->size(); ++k) {
        if (ScreenEqPair(static_cast<uint32_t>(i) + 1, (*comp.inst_args)[k],
                         0, (*comp.pattern)[k])) {
          stats_.sat_rejects++;
          return true;
        }
      }
    }
  }
  if (ScreenRest(clause_constraint, 0)) {
    stats_.sat_rejects++;
    return true;
  }
  for (size_t i = 0; i < body.size(); ++i) {
    if (ScreenRest(*body[i].inst_constraint,
                   static_cast<uint32_t>(i) + 1)) {
      stats_.sat_rejects++;
      return true;
    }
  }
  // Memo refutations last, counted apart: the deterministic reject count
  // must not depend on whether this pass had a reject cache (parallel
  // slices run without one).
  if (ScreenDca(clause_constraint, 0)) {
    stats_.reject_cache_hits++;
    return true;
  }
  for (size_t i = 0; i < body.size(); ++i) {
    if (ScreenDca(*body[i].inst_constraint, static_cast<uint32_t>(i) + 1)) {
      stats_.reject_cache_hits++;
      return true;
    }
  }
  return false;
}

Result<std::vector<VarDomainInfo>> Solver::Analyze(const Constraint& c) {
  if (c.is_false()) {
    return Status::InvalidArgument("Analyze called on false constraint");
  }
  std::unordered_map<std::string, DcaResult> cache;
  // Analyze runs outside the maintenance epoch-sync discipline (query
  // enumeration), so it neither records into nor consults the reject memo.
  ConjunctionState state(evaluator_, options_.evaluate_dca, &stats_,
                         &last_status_, &cache, nullptr);
  SolveOutcome o = state.Run(c.prims());
  if (o == SolveOutcome::kUnsat) {
    return Status::InvalidArgument(
        "Analyze: positive part is unsatisfiable");
  }
  if (o == SolveOutcome::kError) return last_status_;
  return state.ExtractDomains();
}

}  // namespace mmv
