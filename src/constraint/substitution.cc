#include "constraint/substitution.h"

namespace mmv {

TermVec Substitution::Apply(const TermVec& ts) const {
  TermVec out;
  out.reserve(ts.size());
  for (const Term& t : ts) out.push_back(Apply(t));
  return out;
}

Primitive Substitution::Apply(const Primitive& p) const {
  Primitive out = p;
  out.lhs = Apply(p.lhs);
  if (p.kind == PrimKind::kEq || p.kind == PrimKind::kNeq ||
      p.kind == PrimKind::kCmp) {
    out.rhs = Apply(p.rhs);
  }
  if (p.kind == PrimKind::kIn || p.kind == PrimKind::kNotIn) {
    out.call.args = Apply(p.call.args);
  }
  return out;
}

NotBlock Substitution::Apply(const NotBlock& b) const {
  NotBlock nb;
  nb.prims.reserve(b.prims.size());
  for (const Primitive& p : b.prims) nb.prims.push_back(Apply(p));
  nb.inner.reserve(b.inner.size());
  for (const NotBlock& i : b.inner) nb.inner.push_back(Apply(i));
  return nb;
}

Constraint Substitution::Apply(const Constraint& c) const {
  if (c.is_false()) return Constraint::False();
  Constraint out;
  for (const Primitive& p : c.prims()) out.Add(Apply(p));
  for (const NotBlock& b : c.nots()) out.AddNot(Apply(b));
  return out;
}

Substitution FreshRenaming(const std::vector<VarId>& vars,
                           VarFactory* factory) {
  Substitution s;
  for (VarId v : vars) {
    if (!s.Contains(v)) s.Bind(v, Term::Var(factory->Fresh()));
  }
  return s;
}

void RemapVarsAtOrAbove(VarId base, VarFactory* factory, TermVec* args,
                        Constraint* constraint, VarSet* scratch) {
  scratch->Clear();
  if (args != nullptr) scratch->AddTerms(*args);
  if (constraint != nullptr) constraint->CollectVariables(scratch);
  Substitution rename;
  for (VarId v : scratch->vars()) {
    if (v >= base) rename.Bind(v, Term::Var(factory->Fresh()));
  }
  if (rename.empty()) return;
  if (args != nullptr) *args = rename.Apply(*args);
  if (constraint != nullptr) *constraint = rename.Apply(*constraint);
}

}  // namespace mmv
