#include "constraint/term.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace mmv {

std::string Term::ToString() const {
  if (is_var()) {
    std::ostringstream os;
    os << "X" << var_;
    return os.str();
  }
  return value_.ToString();
}

std::ostream& operator<<(std::ostream& os, const Term& t) {
  return os << t.ToString();
}

void CollectVars(const TermVec& terms, std::vector<VarId>* out) {
  for (const Term& t : terms) {
    if (t.is_var() &&
        std::find(out->begin(), out->end(), t.var()) == out->end()) {
      out->push_back(t.var());
    }
  }
}

}  // namespace mmv
