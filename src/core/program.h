// Program: a constrained database / mediator — an ordered, numbered set of
// clauses plus the variable numbering authority.

#ifndef MMV_CORE_PROGRAM_H_
#define MMV_CORE_PROGRAM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/clause.h"

namespace mmv {

/// \brief A constrained database P.
///
/// Clause numbers Cn(C) are assigned on insertion (1-based, matching the
/// paper's examples) and are stable identities used by supports.
class Program {
 public:
  Program();
  /// Copies take a FRESH identity (see id()): the copy is a distinct clause
  /// set as far as caches keyed on program identity are concerned. Moves
  /// keep the source's identity (the clause set travels with it) and
  /// re-identify the moved-from shell.
  Program(const Program& other);
  Program& operator=(const Program& other);
  Program(Program&& other) noexcept;
  Program& operator=(Program&& other) noexcept;

  /// \brief Adds \p clause, assigning and returning its clause number.
  int AddClause(Clause clause);

  /// \brief Process-unique identity of this clause set. Plan and memo
  /// caches tag their entries with it so a cache handed a different (or
  /// recycled-at-the-same-address) program flushes instead of serving
  /// stale state. Appending clauses does not change the identity — clause
  /// numbers are stable, so existing per-clause cache entries stay valid.
  uint64_t id() const { return id_; }

  const std::vector<Clause>& clauses() const { return clauses_; }

  /// \brief The clause numbered \p number (1-based), or nullptr.
  const Clause* ClauseByNumber(int number) const;

  /// \brief Indices of clauses whose head predicate is \p pred.
  const std::vector<size_t>& ClausesFor(Symbol pred) const;

  /// \brief Every predicate appearing in a head (name order).
  std::vector<Symbol> HeadPredicates() const;

  /// \brief True if any clause with head \p pred has a nonempty body that
  /// (transitively) can reach \p pred again.
  bool IsRecursive() const;

  /// \brief Variable-id authority shared by parsing and materialization.
  VarFactory* factory() { return &factory_; }
  const VarFactory& factory() const { return factory_; }

  /// \brief Symbolic variable names for printing (filled by the parser).
  VarNames* names() { return &names_; }
  const VarNames& names() const { return names_; }

  std::string ToString() const;

  size_t size() const { return clauses_.size(); }

 private:
  std::vector<Clause> clauses_;
  mutable std::unordered_map<Symbol, std::vector<size_t>> by_pred_;
  VarFactory factory_;
  VarNames names_;
  uint64_t id_;
};

}  // namespace mmv

#endif  // MMV_CORE_PROGRAM_H_
