// Epoch-pinned snapshot reads: the versioned-read layer that lets queries
// run WHILE maintenance mutates the live view.
//
// The live View's indexes are mutated in place by RemoveIf / batch merges,
// so a reader racing maint::ApplyBatch would see torn state. Instead, the
// write side publishes an immutable SnapshotImage per applied batch
// (core/snapshot_image.h — per-pred segments structurally SHARED with the
// previous epoch, so publication costs O(delta), not O(view)), and readers
// PIN an epoch: they grab a shared_ptr to the latest snapshot and run
// query::EnumerateView / QueryPred / Ask against it for as long as they
// like — the pinned image (and every segment it shares) stays alive until
// the last reader drops its handle, however many epochs the writer
// publishes in the meantime.
//
// Consistency contract:
//   - A pinned snapshot NEVER changes: reads against it are byte-identical
//     no matter what maintenance runs concurrently. Sharing is invisible
//     to readers — a shared segment is immutable by construction, and the
//     write side copies-on-first-write instead of mutating it.
//   - Publication is failure-atomic at the batch level: ApplyBatch
//     publishes only after the whole burst applied cleanly, so readers
//     never observe a half-applied batch (on error they keep serving the
//     pre-batch epoch).
//   - Epochs are strictly increasing, one per publication.
//
// This is the paper's Corollary-1 story made operational: a W_P view is
// query-time solvable, so the only thing standing between a mediator and
// always-answerable queries is a stable view image to enumerate — which is
// exactly what an epoch pin provides.
//
// The same image doubles as the durability layer's checkpoint source
// (durability::DurableLog pins it instead of deep-reading the live view,
// and diffs consecutive images into delta checkpoints), so one extraction
// per batch serves both readers and recovery.

#ifndef MMV_CORE_SNAPSHOT_H_
#define MMV_CORE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "core/snapshot_image.h"
#include "core/view.h"

namespace mmv {

/// \brief One immutable published version of a view.
///
/// Epoch 0 is the empty pre-publication snapshot every store starts with;
/// published epochs start at 1. \p image is never null.
struct ViewSnapshot {
  uint64_t epoch = 0;
  SnapshotImageHandle image;
};

/// \brief A reader's pin: holds the snapshot (and every segment its image
/// shares with other epochs) alive while in use.
using SnapshotHandle = std::shared_ptr<const ViewSnapshot>;

/// \brief The publication point between one writer and any number of
/// readers. All members are thread-safe; the writer side (Publish) is
/// single-writer by contract (maintenance is already serialized per view).
class SnapshotStore {
 public:
  SnapshotStore();

  /// \brief Pins the latest published epoch. Never null — before the
  /// first Publish this is the empty epoch-0 snapshot. O(1); the returned
  /// handle is valid indefinitely and independent of later publications.
  SnapshotHandle Pin() const;

  /// \brief Publishes an already-extracted image as the next epoch and
  /// returns it. Readers pinned to older epochs are unaffected. This is
  /// ApplyBatch's entry point: it extracts ONE image per clean burst and
  /// hands it to both the durable log and this store.
  uint64_t PublishImage(SnapshotImageHandle image);

  /// \brief Convenience: extracts \p live's image (O(delta) against the
  /// view's previous extraction) and publishes it.
  uint64_t Publish(const View& live) { return PublishImage(live.ExtractImage()); }

  /// \brief Re-seats the store at an EXPLICIT epoch — the recovery entry
  /// point (durability::DurableLog::Recover). Publishes \p image at
  /// exactly \p epoch, so a recovered store continues the pre-crash epoch
  /// sequence instead of restarting at 1. Like Publish, readers pinned to
  /// an older handle are unaffected.
  void RestoreAtImage(SnapshotImageHandle image, uint64_t epoch);

  /// \brief Convenience form of RestoreAtImage over a live view.
  void RestoreAt(const View& live, uint64_t epoch) {
    RestoreAtImage(live.ExtractImage(), epoch);
  }

  /// \brief The latest published epoch (0 before the first Publish).
  uint64_t epoch() const;

  /// \brief Total publications, for stats plumbing (== epoch()).
  int64_t epochs_published() const {
    return static_cast<int64_t>(epoch());
  }

 private:
  mutable std::mutex mu_;
  SnapshotHandle current_;  // guarded by mu_; payload immutable once set
};

}  // namespace mmv

#endif  // MMV_CORE_SNAPSHOT_H_
