// A lazily-grown, process-wide worker pool for the parallel-strata
// executor (core/fixpoint.cc) and StDel's parallel step-3 lift checks.
//
// Design constraints, in order:
//   1. Determinism is the CALLER's job: ParallelFor only promises that
//      fn(0..n-1) each run exactly once before it returns. Callers write
//      results into per-item slots and merge them in a fixed order, so the
//      work-claiming order (an atomic ticket) never shows in any output.
//   2. One pool per process: maintenance layers call ParallelFor once per
//      fixpoint round / propagation pair, and paying thread creation per
//      call would swamp the parallelism on small rounds. The pool grows to
//      the largest parallelism ever requested and its threads idle on a
//      condition variable between batches.
//   3. Batches never nest: a ParallelFor issued while another is running
//      (a worker item starting its own, or a second engine on another
//      thread) runs its items inline on the calling thread instead —
//      always correct, never deadlocks, and keeps the fast path lock-free
//      for the common single-engine process.

#ifndef MMV_CORE_THREAD_POOL_H_
#define MMV_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mmv {

/// \brief A shared pool of worker threads with a parallel-for primitive.
class ThreadPool {
 public:
  /// \brief The process-wide pool. Created on first use; its threads are
  /// joined at static destruction.
  static ThreadPool& Global();

  ~ThreadPool();

  /// \brief Runs fn(i) for every i in [0, n), using at most \p max_threads
  /// concurrent threads (the calling thread counts as one and always
  /// participates). Blocks until every item has completed. Items must not
  /// throw. Reentrant calls degrade to inline sequential execution.
  void ParallelFor(size_t n, int max_threads,
                   const std::function<void(size_t)>& fn);

  /// \brief Worker threads currently alive (testing / observability).
  int workers() const;

 private:
  ThreadPool() = default;

  void EnsureWorkers(int count);
  void WorkerLoop();
  // Claims and runs items of batch \p generation until none remain (or the
  // batch is over).
  void RunItems(const std::function<void(size_t)>& fn, uint64_t generation);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;

  // Batch state (guarded by mu_; next_ also claimed under mu_ — items are
  // coarse, so one uncontended lock per claim is noise).
  const std::function<void(size_t)>* fn_ = nullptr;
  size_t total_ = 0;
  size_t next_ = 0;
  size_t completed_ = 0;
  int extra_participants_ = 0;  ///< workers allowed to join current batch
  uint64_t generation_ = 0;
  bool stop_ = false;

  // Serializes batches; try-locked so reentrant calls fall back inline.
  std::mutex batch_mu_;
};

}  // namespace mmv

#endif  // MMV_CORE_THREAD_POOL_H_
