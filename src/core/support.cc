#include "core/support.h"

#include <sstream>

namespace mmv {

size_t Support::NodeCount() const {
  size_t n = 1;
  for (const Support& c : children_) n += c.NodeCount();
  return n;
}

size_t Support::Depth() const {
  size_t d = 0;
  for (const Support& c : children_) d = std::max(d, c.Depth());
  return d + 1;
}

int Support::MinClause() const {
  int m = clause_;
  for (const Support& c : children_) m = std::min(m, c.MinClause());
  return m;
}

bool Support::operator==(const Support& other) const {
  if (clause_ != other.clause_) return false;
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!(children_[i] == other.children_[i])) return false;
  }
  return true;
}

size_t Support::Hash() const {
  size_t h = HashCombine(0x737074, static_cast<size_t>(clause_));
  for (const Support& c : children_) h = HashCombine(h, c.Hash());
  return h;
}

std::string Support::ToString() const {
  std::ostringstream os;
  os << "<" << clause_;
  for (const Support& c : children_) os << ", " << c.ToString();
  os << ">";
  return os.str();
}

}  // namespace mmv
