#include "core/support.h"

#include <sstream>

namespace mmv {

size_t Support::NodeCount() const {
  size_t n = 1;
  for (const Support& c : children()) n += c.NodeCount();
  return n;
}

size_t Support::Depth() const {
  size_t d = 0;
  for (const Support& c : children()) d = std::max(d, c.Depth());
  return d + 1;
}

int Support::MinClause() const {
  int m = clause_;
  for (const Support& c : children()) m = std::min(m, c.MinClause());
  return m;
}

bool Support::operator==(const Support& other) const {
  if (hash_ != other.hash_ || clause_ != other.clause_) return false;
  if (children_ == other.children_) return true;  // shared subtree
  const std::vector<Support>& a = children();
  const std::vector<Support>& b = other.children();
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

std::string Support::ToString() const {
  std::ostringstream os;
  os << "<" << clause_;
  for (const Support& c : children()) os << ", " << c.ToString();
  os << ">";
  return os.str();
}

}  // namespace mmv
