#include "core/thread_pool.h"

namespace mmv {

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ThreadPool::workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

void ThreadPool::EnsureWorkers(int count) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(threads_.size()) < count) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(size_t)>* fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (generation_ != seen_generation && fn_ != nullptr);
      });
      if (stop_) return;
      seen_generation = generation_;
      if (extra_participants_ == 0) continue;  // batch's thread budget full
      --extra_participants_;
      fn = fn_;
    }
    RunItems(*fn, seen_generation);
  }
}

void ThreadPool::RunItems(const std::function<void(size_t)>& fn,
                          uint64_t generation) {
  while (true) {
    size_t i;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // The generation check keeps a worker that lingered past its batch's
      // completion from claiming items of the NEXT batch with a stale fn.
      if (generation_ != generation || next_ >= total_) return;
      i = next_++;
    }
    fn(i);
    std::lock_guard<std::mutex> lock(mu_);
    if (++completed_ == total_) done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(size_t n, int max_threads,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  int extra = max_threads - 1;  // the caller participates
  if (extra > static_cast<int>(n) - 1) extra = static_cast<int>(n) - 1;
  if (extra <= 0 || !batch_mu_.try_lock()) {
    // Single-threaded request, or a batch is already in flight (a nested
    // or concurrent ParallelFor): run inline. Same results, no deadlock.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  EnsureWorkers(extra);
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    total_ = n;
    next_ = 0;
    completed_ = 0;
    extra_participants_ = extra;
    generation = ++generation_;
  }
  work_cv_.notify_all();
  RunItems(fn, generation);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return completed_ == total_; });
    fn_ = nullptr;
    extra_participants_ = 0;
  }
  batch_mu_.unlock();
}

}  // namespace mmv
