// ViewAtom: one constrained atom A(args) <- constraint of a materialized
// mediated view, indexed by its support (paper Sections 2.3 and 3.1.2).

#ifndef MMV_CORE_VIEW_ATOM_H_
#define MMV_CORE_VIEW_ATOM_H_

#include <string>

#include "common/interner.h"
#include "constraint/constraint.h"
#include "constraint/printer.h"
#include "core/support.h"

namespace mmv {

/// \brief A constrained atom of the materialized view.
struct ViewAtom {
  Symbol pred;            ///< predicate symbol (interned)
  TermVec args;           ///< head argument terms
  Constraint constraint;  ///< the atom's constraint (true for ground facts)
  Support support;        ///< derivation index (unique per duplicate atom)
  int depth = 0;          ///< T_P iteration at which the atom was derived
  bool marked = false;    ///< StDel working mark

  /// \brief Renders pred(args) <- constraint [support].
  std::string ToString(const VarNames* names = nullptr) const;

  /// \brief Rough memory footprint in bytes (E6 accounting).
  size_t ApproxBytes() const;
};

}  // namespace mmv

#endif  // MMV_CORE_VIEW_ATOM_H_
