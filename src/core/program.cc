#include "core/program.h"

#include <atomic>
#include <functional>
#include <set>
#include <sstream>

namespace mmv {

namespace {

uint64_t NextProgramId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Program::Program() : id_(NextProgramId()) {}

Program::Program(const Program& other)
    : clauses_(other.clauses_),
      by_pred_(other.by_pred_),
      factory_(other.factory_),
      names_(other.names_),
      id_(NextProgramId()) {}

Program& Program::operator=(const Program& other) {
  if (this != &other) {
    clauses_ = other.clauses_;
    by_pred_ = other.by_pred_;
    factory_ = other.factory_;
    names_ = other.names_;
    id_ = NextProgramId();
  }
  return *this;
}

Program::Program(Program&& other) noexcept
    : clauses_(std::move(other.clauses_)),
      by_pred_(std::move(other.by_pred_)),
      factory_(std::move(other.factory_)),
      names_(std::move(other.names_)),
      id_(other.id_) {
  other.id_ = NextProgramId();
}

Program& Program::operator=(Program&& other) noexcept {
  if (this != &other) {
    clauses_ = std::move(other.clauses_);
    by_pred_ = std::move(other.by_pred_);
    factory_ = std::move(other.factory_);
    names_ = std::move(other.names_);
    id_ = other.id_;
    other.id_ = NextProgramId();
  }
  return *this;
}

int Program::AddClause(Clause clause) {
  clause.number = static_cast<int>(clauses_.size()) + 1;
  // Keep the factory ahead of every variable mentioned in the clause.
  for (VarId v : clause.Variables()) factory_.ReserveAbove(v);
  by_pred_.clear();
  clauses_.push_back(std::move(clause));
  return clauses_.back().number;
}

const Clause* Program::ClauseByNumber(int number) const {
  if (number < 1 || number > static_cast<int>(clauses_.size())) {
    return nullptr;
  }
  return &clauses_[static_cast<size_t>(number - 1)];
}

const std::vector<size_t>& Program::ClausesFor(Symbol pred) const {
  if (by_pred_.empty()) {
    for (size_t i = 0; i < clauses_.size(); ++i) {
      by_pred_[clauses_[i].head_pred].push_back(i);
    }
  }
  static const std::vector<size_t> kEmpty;
  auto it = by_pred_.find(pred);
  return it == by_pred_.end() ? kEmpty : it->second;
}

std::vector<Symbol> Program::HeadPredicates() const {
  std::set<Symbol> preds;
  for (const Clause& c : clauses_) preds.insert(c.head_pred);
  return {preds.begin(), preds.end()};
}

bool Program::IsRecursive() const {
  // Build the predicate dependency graph and look for a cycle.
  std::set<Symbol> preds;
  for (const Clause& c : clauses_) preds.insert(c.head_pred);
  std::unordered_map<Symbol, std::set<Symbol>> deps;
  for (const Clause& c : clauses_) {
    for (const BodyAtom& a : c.body) {
      if (preds.count(a.pred)) deps[c.head_pred].insert(a.pred);
    }
  }
  // DFS cycle detection.
  std::unordered_map<Symbol, int> color;  // 0 white, 1 gray, 2 black
  std::function<bool(Symbol)> dfs = [&](Symbol p) -> bool {
    color[p] = 1;
    for (Symbol q : deps[p]) {
      if (color[q] == 1) return true;
      if (color[q] == 0 && dfs(q)) return true;
    }
    color[p] = 2;
    return false;
  };
  for (Symbol p : preds) {
    if (color[p] == 0 && dfs(p)) return true;
  }
  return false;
}

std::string Program::ToString() const {
  std::ostringstream os;
  for (const Clause& c : clauses_) {
    os << c.number << ". " << c.ToString(&names_) << "\n";
  }
  return os.str();
}

}  // namespace mmv
