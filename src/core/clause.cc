#include "core/clause.h"

#include <sstream>

namespace mmv {

std::string BodyAtom::ToString(const VarNames* names) const {
  std::ostringstream os;
  os << pred << "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i) os << ", ";
    os << PrintTerm(args[i], names);
  }
  os << ")";
  return os.str();
}

std::vector<VarId> Clause::Variables() const {
  std::vector<VarId> vars;
  CollectVars(head_args, &vars);
  for (VarId v : constraint.Variables()) {
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
    }
  }
  for (const BodyAtom& a : body) {
    CollectVars(a.args, &vars);
  }
  return vars;
}

Clause Clause::Rename(VarFactory* factory) const {
  return RenameWith(Variables(), factory);
}

Clause Clause::RenameWith(const std::vector<VarId>& vars,
                          VarFactory* factory) const {
  Substitution renaming = FreshRenaming(vars, factory);
  Clause out;
  out.number = number;
  out.head_pred = head_pred;
  out.head_args = renaming.Apply(head_args);
  out.constraint = renaming.Apply(constraint);
  out.body.reserve(body.size());
  for (const BodyAtom& a : body) {
    out.body.push_back(BodyAtom{a.pred, renaming.Apply(a.args)});
  }
  return out;
}

std::string Clause::ToString(const VarNames* names) const {
  std::ostringstream os;
  os << head_pred << "(";
  for (size_t i = 0; i < head_args.size(); ++i) {
    if (i) os << ", ";
    os << PrintTerm(head_args[i], names);
  }
  os << ") <- ";
  std::string cs = PrintConstraint(constraint, names);
  os << cs;
  if (!body.empty()) {
    os << " || ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i) os << ", ";
      os << body[i].ToString(names);
    }
  }
  return os.str();
}

}  // namespace mmv
