// The fixpoint engine: T_P (Gabbrielli–Levi, paper Section 2.3) and W_P
// (paper Section 4).
//
// T_P(I) derives, for every clause A(t0) <- c0 || A1(t1),...,An(tn) and every
// tuple of (variable-disjoint renamings of) atoms Ai(Xi) <- ci from I, the
// atom A(t0) <- c0 ^ c1 ^ ... ^ cn ^ {Xi = ti}, *provided the constraint is
// solvable*. W_P is identical except the solvability requirement is dropped,
// making the materialized view a purely syntactic construct whose DCA-atoms
// are re-interpreted at query time (Theorem 4 / Corollary 1).
//
// Both operators use duplicate semantics (Mumick): one view atom per
// derivation, identified by its support (Lemma 1). kSet mode instead
// deduplicates by canonicalized constraint — the duplicate-free views for
// which Extended DRed is designed.
//
// Termination: with T_P, acyclic data yields finitely many derivations. W_P
// does not prune unsatisfiable joins, so *recursive* programs generally
// diverge under it (the paper tacitly targets non-recursive mediators for
// W_P); max_iterations / max_atoms bound the damage and are reported via
// FixpointStats::truncated.

#ifndef MMV_CORE_FIXPOINT_H_
#define MMV_CORE_FIXPOINT_H_

#include <string_view>

#include "common/result.h"
#include "constraint/solve_cache.h"
#include "constraint/solver.h"
#include "core/program.h"
#include "core/view.h"
#include "plan/clause_plan.h"

namespace mmv {

namespace plan {
class PlanCache;
}  // namespace plan

/// \brief Which fixpoint operator to run.
enum class OperatorKind : uint8_t {
  kTp,  ///< Gabbrielli–Levi: constraints must be solvable
  kWp,  ///< paper's Section 4 operator: no solvability requirement
};

/// \brief Duplicate handling of the materialized view.
enum class DupSemantics : uint8_t {
  kDuplicate,  ///< one atom per derivation (dedup by support)
  /// Dedup by canonicalized constrained atom. Only the canonical atom
  /// set is contractual: the representative derivation retained for a
  /// deduped atom (its support) is the first one enumerated, which
  /// depends on the join strategy and plan order. Set-semantics views
  /// are not support-maintained — StDel requires kDuplicate.
  kSet,
};

/// \brief Body-join strategy of the engine.
enum class JoinMode : uint8_t {
  /// The legacy nested-loop join: enumerate the full per-predicate cross
  /// product, build every candidate's constraint, let simplify/solve reject
  /// it. Kept verbatim as the differential-testing oracle.
  kNaive,
  /// The constraint-aware pipeline: probe the view's arg-value index when a
  /// body argument is already ground, thread an incremental substitution
  /// through the join so ground mismatches reject candidates at position k
  /// before positions k+1..n are enumerated, hoist the seminaive window
  /// computation out of the recursion, skip the clause rename entirely for
  /// fully-ground joins, and memoize solver outcomes by canonical form.
  ///
  /// Derives the same atom set as kNaive (modulo fresh-variable numbering).
  /// The engine silently falls back to kNaive when early rejection would
  /// not be behavior-preserving (simplify or static-contradiction pruning
  /// disabled — the only configurations in which statically contradictory
  /// joins survive into the view).
  ///
  /// Caveat for MALFORMED programs only: when one predicate holds atoms of
  /// mixed arity, kNaive fails the whole run with an arity-mismatch error
  /// while an arg-value probe may skip the short-arity atoms without
  /// seeing them; error behavior on arity-inconsistent input is
  /// unspecified under kIndexed.
  kIndexed,
};

/// \brief Materialization knobs.
struct FixpointOptions {
  OperatorKind op = OperatorKind::kTp;
  DupSemantics semantics = DupSemantics::kDuplicate;
  int max_iterations = 100;
  size_t max_atoms = 5'000'000;
  /// Simplify each derived atom's constraint (recommended; Example 5).
  bool simplify = true;
  /// Drop atoms whose constraint is *statically* contradictory (X=1 ^ X=2).
  /// Sound under W_P too, since static contradictions are time-invariant.
  bool prune_static_contradictions = true;
  /// Derive the program's constrained facts in round 0. Disable for
  /// seminaive *continuations* over maintained views (Algorithm 3): the
  /// facts were derived when the view was first materialized, and blindly
  /// re-deriving them would resurrect previously deleted fact atoms.
  bool derive_facts = true;
  /// Body-join strategy; kNaive is the differential-testing oracle.
  JoinMode join_mode = JoinMode::kIndexed;
  /// Worker threads for the per-round clause passes. 1 (default) runs the
  /// engine exactly as before; N > 1 fans each round out along two axes:
  /// every (clause, seminaive pivot) pass is its own task, and a pivot
  /// whose frozen delta window is large enough (plan/partition.h) is
  /// hash-range-split further into up to N shards — so even a single
  /// recursive clause (one SCC, where the old per-head-group strata
  /// degenerated to one task) parallelizes. Each task runs against the
  /// round's read-only delta window with a private staging sink, solver
  /// and fresh-var factory; staged atoms merge once per round in (clause,
  /// pivot, shard, enumeration) order — exactly the sequential append
  /// order — so canonical atom sets, support multisets and the derivation
  /// counters are identical to num_threads=1 whatever the thread count.
  /// (Fresh-variable NUMBERING and solver-memo hit counts may differ —
  /// the same non-contract PR-3 carved out between join modes. Truncated
  /// runs — max_atoms / max_iterations — may cut off at different atoms.)
  /// Parallel execution requires the kIndexed planned executor;
  /// naive-join or fallback configurations run sequentially whatever this
  /// value says.
  int num_threads = 1;
  /// Clause-plan ordering strategy of the kIndexed executor. kOrdered
  /// selectivity-orders body atoms per seminaive pivot and picks the
  /// smallest of several ground arg-value buckets; kDeclared keeps the
  /// written body order with first-ground probing (the PR-3 behaviour,
  /// kept as the plan-off baseline). Derived atom sets — and, under
  /// duplicate semantics, support multisets — are identical either way;
  /// under kSet only the canonical atom set is order-independent (see
  /// DupSemantics::kSet).
  plan::PlanMode plan_mode = plan::PlanMode::kOrdered;
  /// Optional compiled-plan cache shared across engine runs. Pass one
  /// cache through a sequence of continuations / maintenance passes so
  /// each clause compiles once per program instead of once per run; the
  /// cache revalidates against the program's identity on use. Ignored
  /// (a run-local cache is used) when the cache's mode differs from
  /// plan_mode. When null, the engine plans within the single run.
  plan::PlanCache* plan_cache = nullptr;
  /// Optional solver memo shared across engine runs (kIndexed only). Pass
  /// one cache through a sequence of ContinueFixpoint continuations so
  /// constraints re-solved across flushes hit the memo; the caller must
  /// keep it scoped to one external-database state (see solve_cache.h).
  /// When null, the engine memoizes within the single run.
  SolveCache* solve_cache = nullptr;
  /// Optional pairwise rejection memo shared across engine runs (kIndexed
  /// only), the fast-path sibling of solve_cache: ground DCA memberships
  /// decided inside full Solves are recorded and later screens refute
  /// matching literals without solving. Same state-scoping contract as
  /// solve_cache (maint::ApplyBatch epoch-syncs both side by side). When
  /// null, the engine memoizes within the single run.
  RejectCache* reject_cache = nullptr;
  /// Solver configuration for T_P solvability checks. solver.fastpath
  /// (default on; $MMV_SOLVER_FASTPATH=off in the benches/tests) gates the
  /// satisfiability pre-check AND the executor's pre-rename join screen —
  /// both sound for rejection only, so views, support multisets and
  /// work-product counters are byte-identical either way.
  SolverOptions solver;
};

/// \brief Instrumentation of a materialization run.
struct FixpointStats {
  int iterations = 0;
  int64_t derivations_attempted = 0;
  int64_t atoms_created = 0;
  int64_t unsat_pruned = 0;       ///< T_P only
  int64_t duplicates_suppressed = 0;
  int64_t index_probes = 0;       ///< arg-value index probes (kIndexed)
  int64_t ground_rejects = 0;     ///< candidates cut by ground mismatch
                                  ///  before deeper positions enumerated
  int64_t rename_skipped = 0;     ///< fully-ground derivations assembled
                                  ///  without a clause rename
  int64_t plan_reorders = 0;      ///< plan compiles whose execution order
                                  ///  differs from the written body order
  int64_t probe_intersections = 0;  ///< probes that weighed >= 2 ground
                                    ///  arg-value buckets and took the
                                    ///  smallest (multi-position probes)
  int64_t plan_cache_hits = 0;    ///< clause plans served without compiling
  // The three counters below describe the parallel fan-out itself, so they
  // DEPEND on num_threads (unlike every counter above, which is part of
  // the byte-identity contract across thread counts).
  int64_t partitions_run = 0;     ///< delta-window shards executed as their
                                  ///  own tasks (0 when sequential)
  int64_t partition_skipped_small = 0;  ///< shardable pivot windows left
                                        ///  whole: below the size threshold
  int64_t evaluator_clones = 0;   ///< tasks served by the lock-free
                                  ///  concurrent-read evaluator path
                                  ///  instead of MutexDcaEvaluator
  int64_t mutex_evaluator_engaged = 0;  ///< tasks that fell back to the
                                        ///  serialized MutexDcaEvaluator
                                        ///  wrapper (retirement-path
                                        ///  telemetry: 0 for every
                                        ///  read-safe evaluator)
  bool truncated = false;         ///< hit max_iterations / max_atoms
  SolveStats solver;              ///< aggregated solver counters
                                  ///  (solver.cache_hits: memo hits)
};

/// \brief Computes T_P^w(initial) (or W_P^w) over \p program.
///
/// \p evaluator provides DCA evaluation for T_P's solvability checks; it may
/// be null, in which case every DCA-atom defers (all joins are kept — the
/// W_P behaviour — even under kTp).
///
/// \p delta_begin marks the first atom of \p initial to treat as *new*:
/// atoms before it are assumed closed under the program already, so no
/// derivation using only those atoms is attempted. Pass 0 (default) to
/// close over the whole initial set; pass the old view size to continue a
/// fixpoint after appending new atoms (Algorithm 3's P_ADD unfolding).
Result<View> MaterializeFrom(const Program& program, View initial,
                             DcaEvaluator* evaluator,
                             const FixpointOptions& options = {},
                             FixpointStats* stats = nullptr,
                             size_t delta_begin = 0);

/// \brief Computes the materialized view T_P^w(empty set) (or W_P^w).
Result<View> Materialize(const Program& program, DcaEvaluator* evaluator,
                         const FixpointOptions& options = {},
                         FixpointStats* stats = nullptr);

/// \brief In-place seminaive continuation: closes \p view under \p program,
/// treating the atoms from \p delta_begin onward as the seed delta.
///
/// This is the batched-insertion engine (Algorithm 3 generalized to a set
/// of roots): callers append any number of delta atoms to the view, then
/// run ONE continuation instead of one fixpoint per atom. Facts are not
/// re-derived (options.derive_facts is forced off) — the view's facts were
/// derived at materialization time, and re-deriving them would resurrect
/// fact atoms deleted by earlier maintenance.
///
/// On error the view is consumed: it is left valid but unspecified
/// (typically empty), because the failed engine run owns the atoms.
/// Callers that must survive evaluator/solver failures should keep a copy
/// or rematerialize.
Status ContinueFixpoint(const Program& program, View* view,
                        DcaEvaluator* evaluator,
                        const FixpointOptions& options, FixpointStats* stats,
                        size_t delta_begin);

/// \brief Parses a join mode name: "naive" or "indexed".
/// InvalidArgument on anything else — option plumbing must fail loudly
/// instead of silently running a different engine than the caller asked
/// for.
Result<JoinMode> ParseJoinMode(std::string_view text);

/// \brief Parses a plan mode name: "declared" or "ordered".
Result<plan::PlanMode> ParsePlanMode(std::string_view text);

/// \brief Join mode from $MMV_JOIN_MODE. Unset/empty means the default
/// (kIndexed); any other unknown value is an InvalidArgument error.
Result<JoinMode> JoinModeFromEnv();

/// \brief Plan mode from $MMV_PLAN_MODE. Unset/empty means the default
/// (kOrdered); any other unknown value is an InvalidArgument error.
Result<plan::PlanMode> PlanModeFromEnv();

/// \brief Parses a thread count: a positive decimal integer (at most
/// 4096). InvalidArgument on anything else — like the mode parsers, a
/// typo must fail loudly instead of silently running single-threaded.
Result<int> ParseThreads(std::string_view text);

/// \brief Thread count from $MMV_THREADS. Unset/empty means 1 (the
/// sequential engine); any non-numeric or non-positive value is an
/// InvalidArgument error.
Result<int> ThreadsFromEnv();

/// \brief Parses a solver fast-path mode: "on" or "off". Off keeps the
/// full decision procedure as the differential oracle.
Result<bool> ParseSolverFastpath(std::string_view text);

/// \brief Solver fast-path mode from $MMV_SOLVER_FASTPATH. Unset/empty
/// means on (the default); any other unknown value is an InvalidArgument
/// error — like the mode parsers, a typo must fail loudly instead of
/// silently benchmarking the wrong pipeline.
Result<bool> SolverFastpathFromEnv();

}  // namespace mmv

#endif  // MMV_CORE_FIXPOINT_H_
