// View: a materialized mediated view — an ordered collection of constrained
// atoms with supports.

#ifndef MMV_CORE_VIEW_H_
#define MMV_CORE_VIEW_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/view_atom.h"

namespace mmv {

/// \brief A materialized mediated view M.
///
/// Maintenance algorithms mutate atoms in place (replace constraints, set
/// marks) and remove atoms; the by-predicate index is rebuilt lazily.
class View {
 public:
  View() = default;

  /// \brief Appends an atom.
  void Add(ViewAtom atom);

  std::vector<ViewAtom>& atoms() { return atoms_; }
  const std::vector<ViewAtom>& atoms() const { return atoms_; }

  /// \brief Indices of atoms with predicate \p pred.
  std::vector<size_t> AtomsFor(const std::string& pred) const;

  /// \brief True iff some atom has exactly this support.
  bool HasSupport(const Support& s) const;

  /// \brief Removes atoms flagged by \p pred (erase-remove).
  template <typename Pred>
  size_t RemoveIf(Pred pred) {
    size_t before = atoms_.size();
    std::vector<ViewAtom> kept;
    kept.reserve(atoms_.size());
    for (ViewAtom& a : atoms_) {
      if (!pred(a)) kept.push_back(std::move(a));
    }
    atoms_ = std::move(kept);
    return before - atoms_.size();
  }

  /// \brief Sets every atom's mark to \p value (StDel step 1).
  void MarkAll(bool value);

  size_t size() const { return atoms_.size(); }
  bool empty() const { return atoms_.empty(); }

  /// \brief Total approximate bytes (atoms + supports), for E6.
  size_t ApproxBytes() const;

  /// \brief Sum of constraint literal counts (constraint growth metric, E8).
  size_t TotalLiterals() const;

  /// \brief One atom per line.
  std::string ToString(const VarNames* names = nullptr) const;

 private:
  std::vector<ViewAtom> atoms_;
};

}  // namespace mmv

#endif  // MMV_CORE_VIEW_H_
