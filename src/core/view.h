// View: a materialized mediated view — an indexed store of constrained
// atoms with supports.
//
// The store incrementally maintains four indexes so that every layer
// (fixpoint materialization, StDel/DRed maintenance, query evaluation)
// shares one access path instead of rebuilding private side-tables:
//   - a by-predicate posting list (AtomsFor),
//   - a support hash index (HasSupport / IndexOfSupport, Lemma 1),
//   - a child-support index (ParentsOfChildSupport — StDel step 3), and
//   - a per-(predicate, position, ground-value) argument index
//     (AtomsForArgValue / AtomsForNonConstArg — the fixpoint engine's
//     indexed-join probe).
// Add updates all of them in O(|support| + arity); RemoveIf recompacts them
// in the same pass that compacts the atom vector.

#ifndef MMV_CORE_VIEW_H_
#define MMV_CORE_VIEW_H_

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/interner.h"
#include "core/snapshot_image.h"
#include "core/view_atom.h"

namespace mmv {

/// \brief A materialized mediated view M.
///
/// Maintenance algorithms mutate atoms in place through MutableAtom
/// (replace constraints, set marks) and remove atoms via RemoveIf; the
/// indexes key on pred, args and support, which in-place mutation never
/// touches.
class View {
 public:
  View() = default;

  /// Copies SHARE copy-on-write image state instead of duplicating it.
  /// The source's image cache is refreshed first (O(delta) — exactly the
  /// extraction its next ExtractImage would have performed) and the copy
  /// starts CLEAN against that shared image. An implicitly copied dirty
  /// set would make source and copy re-materialize the SAME dirty
  /// segments independently, so their future extractions could never
  /// pointer-share those predicates again — every downstream consumer
  /// (snapshot store, delta checkpoints) would silently hold forked
  /// segment copies.
  View(const View& other)
      : atoms_(other.atoms_),
        by_pred_(other.by_pred_),
        by_support_(other.by_support_),
        child_index_(other.child_index_),
        by_arg_value_(other.by_arg_value_),
        by_arg_var_(other.by_arg_var_),
        max_var_(other.max_var_),
        last_image_(other.ExtractImage()) {}
  View& operator=(const View& other) {
    if (this == &other) return *this;
    atoms_ = other.atoms_;
    by_pred_ = other.by_pred_;
    by_support_ = other.by_support_;
    child_index_ = other.child_index_;
    by_arg_value_ = other.by_arg_value_;
    by_arg_var_ = other.by_arg_var_;
    max_var_ = other.max_var_;
    last_image_ = other.ExtractImage();
    image_dirty_preds_.clear();
    image_order_stale_ = false;
    return *this;
  }
  // Declaring the copy operations suppresses the implicit moves; restore
  // them (moves transfer the cache verbatim, which stays exact).
  View(View&&) = default;
  View& operator=(View&&) = default;

  /// \brief Appends an atom, updating all indexes.
  void Add(ViewAtom atom);

  const std::vector<ViewAtom>& atoms() const { return atoms_; }

  /// \brief Mutable access for in-place constraint replacement / marking.
  ///
  /// pred, args and support are index keys: callers must not change them
  /// (use RemoveIf + Add to re-key an atom). Conservatively dirties the
  /// atom's predicate for copy-on-write extraction — the caller may end up
  /// only flipping the mark (which images ignore), but re-copying one
  /// touched segment is cheaper than tracking which field changed.
  ViewAtom& MutableAtom(size_t i) {
    image_dirty_preds_.insert(atoms_[i].pred);
    return atoms_[i];
  }

  /// \brief Moves the atoms out (indexes reset); the view becomes empty.
  /// The variable high-water mark (MaxVarId) is preserved — it stays the
  /// monotone bound over everything the store ever held, including bounds
  /// injected via NoteExternalVars that no atom mentions.
  std::vector<ViewAtom> TakeAtoms();

  /// \brief Indices of atoms with predicate \p pred (ascending). O(1).
  const std::vector<size_t>& AtomsFor(Symbol pred) const;

  /// \brief Indices of atoms of \p pred whose argument at position \p pos
  /// is the ground constant \p v (ascending). O(1). Value identity is by
  /// Value::Hash — consistent with Value::operator== (numeric across
  /// int/double, exactly the equality the simplifier applies to ground `=`
  /// primitives) — and buckets are keyed by hash alone, so the list may
  /// rarely include colliding atoms whose argument differs: callers must
  /// re-verify the argument per candidate (the indexed join does anyway).
  const std::vector<size_t>& AtomsForArgValue(Symbol pred, size_t pos,
                                              const Value& v) const;

  /// \brief Indices of atoms of \p pred whose argument at position \p pos
  /// is NOT a constant (ascending). A sound probe for ground value v must
  /// scan AtomsForArgValue(pred, pos, v) plus this list: a variable
  /// argument can unify with any value. Atoms of \p pred with arity
  /// <= \p pos appear in neither list.
  const std::vector<size_t>& AtomsForNonConstArg(Symbol pred,
                                                 size_t pos) const;

  /// \brief True iff some atom has exactly this support. O(1) expected.
  bool HasSupport(const Support& s) const;

  /// \brief Index of the atom with exactly this support, or -1.
  /// Supports are unique identities under duplicate semantics (Lemma 1).
  int64_t IndexOfSupport(const Support& s) const;

  /// \brief Atoms whose support has \p s as a direct child, as
  /// (atom index, child slot) pairs — the StDel step-3 probe. O(k) in the
  /// number of matches.
  std::vector<std::pair<size_t, size_t>> ParentsOfChildSupport(
      const Support& s) const;

  /// \brief Allocation-free variant of ParentsOfChildSupport: calls
  /// \p visit(atom index, child slot) per match. The visitor may mutate
  /// atom constraints/marks but must not Add/RemoveIf.
  template <typename Visitor>
  void ForEachParentOfChild(const Support& s, Visitor visit) const {
    auto [lo, hi] = child_index_.equal_range(s.Hash());
    for (auto it = lo; it != hi; ++it) {
      auto [parent, slot] = it->second;
      if (atoms_[parent].support.children()[slot] == s) {
        visit(parent, slot);
      }
    }
  }

  /// \brief Removes atoms flagged by \p pred; indexes are recompacted in
  /// the same pass. Returns the number removed.
  ///
  /// Index entries of removed atoms are erased and surviving entries are
  /// renumbered through one old-index -> new-index remap, so support trees
  /// are never re-hashed — a batch deleting k atoms from an N-atom view
  /// costs one O(N) sweep regardless of k.
  template <typename Pred>
  size_t RemoveIf(Pred pred) {
    size_t before = atoms_.size();
    std::vector<int64_t> remap(before);
    std::vector<ViewAtom> kept;
    kept.reserve(before);
    for (size_t i = 0; i < before; ++i) {
      if (pred(atoms_[i])) {
        remap[i] = -1;
        image_dirty_preds_.insert(atoms_[i].pred);
      } else {
        remap[i] = static_cast<int64_t>(kept.size());
        kept.push_back(std::move(atoms_[i]));
      }
    }
    atoms_ = std::move(kept);
    if (atoms_.size() == before) return 0;  // indexes still valid
    image_order_stale_ = true;  // the global order is no longer a prefix
    CompactIndexes(remap);
    return before - atoms_.size();
  }

  /// \brief Sets every atom's mark to \p value (StDel step 1).
  void MarkAll(bool value);

  size_t size() const { return atoms_.size(); }
  bool empty() const { return atoms_.empty(); }

  /// \brief High-water mark of variable ids mentioned by any atom ever
  /// added (monotone; removals do not lower it). -1 for no variables.
  VarId MaxVarId() const { return max_var_; }

  /// \brief Raises the variable high-water mark to at least \p bound.
  ///
  /// Maintenance algorithms that inject freshly-issued variables into atom
  /// constraints through MutableAtom must report their factory's issuance
  /// bound here, so later updates standardize apart against the true
  /// maximum and never capture those variables.
  void NoteExternalVars(VarId bound) { max_var_ = std::max(max_var_, bound); }

  /// \brief What one ExtractImage call shared vs materialized.
  struct ImageExtractStats {
    int64_t segments_shared = 0;  ///< per-pred segments re-pointed at the
                                  ///  previous image (zero copies)
    int64_t segments_copied = 0;  ///< segments materialized fresh
    int64_t atoms_shared = 0;     ///< atoms inside shared segments
    int64_t atoms_copied = 0;     ///< atoms copied into fresh segments
  };

  /// \brief Extracts the immutable image of the current state, sharing
  /// every per-pred segment (and order chunk) untouched since the previous
  /// extraction — O(delta) for the incremental-maintenance steady state,
  /// O(view) only on the first call or after wholesale churn.
  ///
  /// The returned image is safe to read from any thread; this view keeps a
  /// reference so the NEXT extraction can share against it. Single-writer
  /// like every other mutation path: callers must not race ExtractImage
  /// with Add/RemoveIf/MutableAtom (ApplyBatch already serializes them).
  SnapshotImageHandle ExtractImage(ImageExtractStats* stats = nullptr) const;

  /// \brief Sizes of the maintained indexes, for observability.
  struct IndexStats {
    size_t predicates = 0;        ///< distinct predicate posting lists
    size_t postings = 0;          ///< total posting-list entries
    size_t support_entries = 0;   ///< support hash index entries
    size_t child_entries = 0;     ///< child-support index entries
    size_t arg_value_buckets = 0; ///< distinct (pred, pos, value) buckets
    size_t arg_value_entries = 0; ///< total arg-value posting entries
    size_t arg_var_entries = 0;   ///< total non-const-arg posting entries
  };
  IndexStats index_stats() const;

  /// \brief Total approximate bytes (atoms + supports), for E6.
  size_t ApproxBytes() const;

  /// \brief Sum of constraint literal counts (constraint growth metric, E8).
  size_t TotalLiterals() const;

  /// \brief One atom per line.
  std::string ToString(const VarNames* names = nullptr) const;

 private:
  void IndexAtom(size_t i);
  /// Applies an old-index -> new-index (-1 = removed) remap to all three
  /// indexes in place, without recomputing any support hash.
  void CompactIndexes(const std::vector<int64_t>& remap);

  // Key of one (pred, position, ground-value) argument bucket: a plain
  // 64-bit hash (no Value is stored or compared in the map — see
  // AtomsForArgValue's collision contract).
  static uint64_t ArgValueKey(uint32_t pred, uint32_t pos, const Value& v) {
    return HashCombine(ArgVarKey(pred, pos), v.Hash());
  }
  static uint64_t ArgVarKey(uint32_t pred, uint32_t pos) {
    return (static_cast<uint64_t>(pred) << 32) | pos;
  }

  std::vector<ViewAtom> atoms_;
  std::unordered_map<Symbol, std::vector<size_t>> by_pred_;
  std::unordered_multimap<size_t, size_t> by_support_;  // hash -> atom idx
  // child support hash -> (parent atom idx, child slot)
  std::unordered_multimap<size_t, std::pair<size_t, size_t>> child_index_;
  // hash(pred, pos, const value) -> atom indices; (pred, pos) -> indices
  // of atoms whose arg at pos is a variable.
  std::unordered_map<uint64_t, std::vector<size_t>> by_arg_value_;
  std::unordered_map<uint64_t, std::vector<size_t>> by_arg_var_;
  VarId max_var_ = -1;

  // Copy-on-write extraction state (core/snapshot_image.h). The dirty set
  // names predicates whose segment in last_image_ may no longer match this
  // view; order_stale_ records that atoms were removed, invalidating the
  // shared global-order prefix. mutable because ExtractImage is logically
  // const (it caches, never changes view semantics). The copy operations
  // above refresh-and-share this cache rather than duplicating dirty
  // bookkeeping (see their comment); moves transfer it verbatim.
  mutable SnapshotImageHandle last_image_;
  mutable std::unordered_set<Symbol> image_dirty_preds_;
  mutable bool image_order_stale_ = false;
};

}  // namespace mmv

#endif  // MMV_CORE_VIEW_H_
