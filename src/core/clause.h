// Constrained clauses (paper Section 2.1):
//
//   A  <-  D1 ^ ... ^ Dm  ||  A1, ..., An
//
// where the Di (DCA-atoms plus =, !=, numeric comparisons) form the clause
// constraint and the Ai are ordinary body atoms over mediator predicates.

#ifndef MMV_CORE_CLAUSE_H_
#define MMV_CORE_CLAUSE_H_

#include <string>
#include <vector>

#include "common/interner.h"
#include "constraint/constraint.h"
#include "constraint/printer.h"
#include "constraint/substitution.h"

namespace mmv {

/// \brief An ordinary (non-constraint) body atom Ai(ti).
struct BodyAtom {
  Symbol pred;
  TermVec args;

  bool operator==(const BodyAtom& other) const {
    return pred == other.pred && args == other.args;
  }
  std::string ToString(const VarNames* names = nullptr) const;
};

/// \brief One mediator rule.
struct Clause {
  int number = -1;  ///< Cn(C): assigned by Program::AddClause
  Symbol head_pred;
  TermVec head_args;
  Constraint constraint;        ///< D1 ^ ... ^ Dm (possibly with not-blocks)
  std::vector<BodyAtom> body;   ///< A1, ..., An (empty for constrained facts)

  /// \brief True when the body is empty (a "constraint base fact").
  bool IsFact() const { return body.empty(); }

  /// \brief All variables of the clause (head, constraint, body) in
  /// first-appearance order.
  std::vector<VarId> Variables() const;

  /// \brief A variant of this clause with every variable replaced by a fresh
  /// one from \p factory ("standardizing apart").
  Clause Rename(VarFactory* factory) const;

  /// \brief Rename with a precomputed variable list (must be exactly
  /// Variables(), e.g. a ClausePlan's clause_vars) — skips the per-call
  /// clause walk for callers that rename the same clause many times, like
  /// StDel's step-3 propagation.
  Clause RenameWith(const std::vector<VarId>& vars, VarFactory* factory) const;

  /// \brief head <- constraint || body.
  std::string ToString(const VarNames* names = nullptr) const;
};

}  // namespace mmv

#endif  // MMV_CORE_CLAUSE_H_
