#include "core/view.h"

#include <sstream>

namespace mmv {

void View::Add(ViewAtom atom) { atoms_.push_back(std::move(atom)); }

std::vector<size_t> View::AtomsFor(const std::string& pred) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (atoms_[i].pred == pred) out.push_back(i);
  }
  return out;
}

bool View::HasSupport(const Support& s) const {
  for (const ViewAtom& a : atoms_) {
    if (a.support == s) return true;
  }
  return false;
}

void View::MarkAll(bool value) {
  for (ViewAtom& a : atoms_) a.marked = value;
}

size_t View::ApproxBytes() const {
  size_t bytes = sizeof(View);
  for (const ViewAtom& a : atoms_) bytes += a.ApproxBytes();
  return bytes;
}

size_t View::TotalLiterals() const {
  size_t n = 0;
  for (const ViewAtom& a : atoms_) n += a.constraint.LiteralCount();
  return n;
}

std::string View::ToString(const VarNames* names) const {
  std::ostringstream os;
  for (const ViewAtom& a : atoms_) os << a.ToString(names) << "\n";
  return os.str();
}

}  // namespace mmv
