#include "core/view.h"

#include <algorithm>
#include <sstream>

namespace mmv {

namespace {

VarId MaxVarOf(const ViewAtom& a) {
  VarId max_id = -1;
  std::vector<VarId> vars;
  CollectVars(a.args, &vars);
  for (VarId v : vars) max_id = std::max(max_id, v);
  for (VarId v : a.constraint.Variables()) max_id = std::max(max_id, v);
  return max_id;
}

}  // namespace

void View::IndexAtom(size_t i) {
  const ViewAtom& a = atoms_[i];
  by_pred_[a.pred].push_back(i);
  by_support_.emplace(a.support.Hash(), i);
  for (size_t k = 0; k < a.support.children().size(); ++k) {
    child_index_.emplace(a.support.children()[k].Hash(),
                         std::make_pair(i, k));
  }
  for (size_t k = 0; k < a.args.size(); ++k) {
    uint32_t pos = static_cast<uint32_t>(k);
    if (a.args[k].is_const()) {
      by_arg_value_[ArgValueKey(a.pred.id(), pos, a.args[k].constant())]
          .push_back(i);
    } else {
      by_arg_var_[ArgVarKey(a.pred.id(), pos)].push_back(i);
    }
  }
}

void View::CompactIndexes(const std::vector<int64_t>& remap) {
  for (auto it = by_pred_.begin(); it != by_pred_.end();) {
    std::vector<size_t>& list = it->second;
    size_t out = 0;
    for (size_t idx : list) {
      if (remap[idx] >= 0) list[out++] = static_cast<size_t>(remap[idx]);
    }
    list.resize(out);
    // Compaction preserves relative order, so the list stays ascending.
    it = list.empty() ? by_pred_.erase(it) : std::next(it);
  }
  for (auto it = by_support_.begin(); it != by_support_.end();) {
    if (remap[it->second] < 0) {
      it = by_support_.erase(it);
    } else {
      it->second = static_cast<size_t>(remap[it->second]);
      ++it;
    }
  }
  for (auto it = child_index_.begin(); it != child_index_.end();) {
    if (remap[it->second.first] < 0) {
      it = child_index_.erase(it);
    } else {
      it->second.first = static_cast<size_t>(remap[it->second.first]);
      ++it;
    }
  }
  auto compact_postings = [&remap](auto* map) {
    for (auto it = map->begin(); it != map->end();) {
      std::vector<size_t>& list = it->second;
      size_t out = 0;
      for (size_t idx : list) {
        if (remap[idx] >= 0) list[out++] = static_cast<size_t>(remap[idx]);
      }
      list.resize(out);
      it = list.empty() ? map->erase(it) : std::next(it);
    }
  };
  compact_postings(&by_arg_value_);
  compact_postings(&by_arg_var_);
}

void View::Add(ViewAtom atom) {
  max_var_ = std::max(max_var_, MaxVarOf(atom));
  atoms_.push_back(std::move(atom));
  image_dirty_preds_.insert(atoms_.back().pred);
  IndexAtom(atoms_.size() - 1);
}

std::vector<ViewAtom> View::TakeAtoms() {
  std::vector<ViewAtom> out = std::move(atoms_);
  atoms_.clear();
  by_pred_.clear();
  by_support_.clear();
  child_index_.clear();
  by_arg_value_.clear();
  by_arg_var_.clear();
  last_image_.reset();
  image_dirty_preds_.clear();
  image_order_stale_ = false;
  // max_var_ is deliberately PRESERVED: the mark is monotone over the
  // store's whole history (like RemoveIf, which never lowers it), and a
  // taker that re-Adds the atoms elsewhere still reads MaxVarId() here to
  // standardize apart. Resetting it would silently forget externally noted
  // variable bounds (NoteExternalVars) that no surviving atom mentions —
  // a capture footgun for any layer that clones or drains views.
  return out;
}

namespace {
const std::vector<size_t> kEmptyPostings;
}  // namespace

const std::vector<size_t>& View::AtomsFor(Symbol pred) const {
  auto it = by_pred_.find(pred);
  return it == by_pred_.end() ? kEmptyPostings : it->second;
}

const std::vector<size_t>& View::AtomsForArgValue(Symbol pred, size_t pos,
                                                  const Value& v) const {
  auto it = by_arg_value_.find(
      ArgValueKey(pred.id(), static_cast<uint32_t>(pos), v));
  return it == by_arg_value_.end() ? kEmptyPostings : it->second;
}

const std::vector<size_t>& View::AtomsForNonConstArg(Symbol pred,
                                                     size_t pos) const {
  auto it = by_arg_var_.find(ArgVarKey(pred.id(), static_cast<uint32_t>(pos)));
  return it == by_arg_var_.end() ? kEmptyPostings : it->second;
}

bool View::HasSupport(const Support& s) const {
  return IndexOfSupport(s) >= 0;
}

int64_t View::IndexOfSupport(const Support& s) const {
  auto [lo, hi] = by_support_.equal_range(s.Hash());
  for (auto it = lo; it != hi; ++it) {
    if (atoms_[it->second].support == s) {
      return static_cast<int64_t>(it->second);
    }
  }
  return -1;
}

std::vector<std::pair<size_t, size_t>> View::ParentsOfChildSupport(
    const Support& s) const {
  std::vector<std::pair<size_t, size_t>> out;
  ForEachParentOfChild(
      s, [&](size_t parent, size_t slot) { out.emplace_back(parent, slot); });
  return out;
}

void View::MarkAll(bool value) {
  // Deliberately NOT an image-dirtying mutation: marks are StDel-internal
  // scratch state, excluded from image semantics (serialization, queries
  // and canonical comparison all ignore them). Dirtying every predicate
  // here would defeat copy-on-write extraction for every deletion batch.
  for (ViewAtom& a : atoms_) a.marked = value;
}

namespace {

// Reader overhead on ForEachAtom is O(chunks) in hash lookups; cap the
// chunk list so arbitrarily long append-only runs stay cheap to scan.
constexpr size_t kMaxOrderChunks = 128;

void RebuildOrder(const std::vector<ViewAtom>& atoms, SnapshotImage* image) {
  image->order.clear();
  if (atoms.empty()) return;
  auto runs = std::make_shared<std::vector<SnapshotImage::OrderRun>>();
  for (const ViewAtom& a : atoms) {
    if (!runs->empty() && runs->back().pred == a.pred) {
      runs->back().count++;
    } else {
      runs->push_back({a.pred, 1});
    }
  }
  image->order.push_back({std::move(runs), atoms.size()});
}

}  // namespace

SnapshotImageHandle View::ExtractImage(ImageExtractStats* stats) const {
  ImageExtractStats local;
  if (stats == nullptr) stats = &local;

  if (last_image_ != nullptr && image_dirty_preds_.empty() &&
      !image_order_stale_ && last_image_->atom_count == atoms_.size()) {
    // Nothing changed since the previous extraction: share it wholesale.
    stats->segments_shared +=
        static_cast<int64_t>(last_image_->segments.size());
    stats->atoms_shared += static_cast<int64_t>(last_image_->atom_count);
    return last_image_;
  }

  auto image = std::make_shared<SnapshotImage>();
  image->atom_count = atoms_.size();
  image->segments.reserve(by_pred_.size());
  for (const auto& [pred, postings] : by_pred_) {
    SnapshotImage::SegmentHandle shared;
    if (last_image_ != nullptr && image_dirty_preds_.count(pred) == 0) {
      auto it = last_image_->segments.find(pred);
      if (it != last_image_->segments.end() &&
          it->second->size() == postings.size()) {
        shared = it->second;
      }
    }
    if (shared != nullptr) {
      stats->segments_shared++;
      stats->atoms_shared += static_cast<int64_t>(shared->size());
      image->segments.emplace(pred, std::move(shared));
    } else {
      auto seg = std::make_shared<SnapshotImage::Segment>();
      seg->reserve(postings.size());
      for (size_t idx : postings) seg->push_back(atoms_[idx]);
      stats->segments_copied++;
      stats->atoms_copied += static_cast<int64_t>(seg->size());
      image->segments.emplace(
          pred, SnapshotImage::SegmentHandle(std::move(seg)));
    }
  }

  // Global order. When no atom was removed since the previous extraction
  // the old order is a strict prefix of the new one: share its chunks and
  // append ONE chunk covering the tail the batch added. Removals reorder
  // nothing but shrink interior runs, so they force a full rebuild (one
  // O(view) pred-id sweep — tiny next to the segment copies it replaces).
  const bool share_order = !image_order_stale_ && last_image_ != nullptr &&
                           last_image_->atom_count <= atoms_.size();
  if (share_order) {
    image->order = last_image_->order;
    const size_t have = static_cast<size_t>(last_image_->atom_count);
    if (have < atoms_.size()) {
      auto runs = std::make_shared<std::vector<SnapshotImage::OrderRun>>();
      for (size_t i = have; i < atoms_.size(); ++i) {
        if (!runs->empty() && runs->back().pred == atoms_[i].pred) {
          runs->back().count++;
        } else {
          runs->push_back({atoms_[i].pred, 1});
        }
      }
      image->order.push_back({std::move(runs), atoms_.size() - have});
    }
    if (image->order.size() > kMaxOrderChunks) RebuildOrder(atoms_, image.get());
  } else {
    RebuildOrder(atoms_, image.get());
  }

  last_image_ = image;
  image_dirty_preds_.clear();
  image_order_stale_ = false;
  return image;
}

View::IndexStats View::index_stats() const {
  IndexStats st;
  st.predicates = by_pred_.size();
  for (const auto& [_, list] : by_pred_) st.postings += list.size();
  st.support_entries = by_support_.size();
  st.child_entries = child_index_.size();
  st.arg_value_buckets = by_arg_value_.size();
  for (const auto& [_, list] : by_arg_value_) st.arg_value_entries += list.size();
  for (const auto& [_, list] : by_arg_var_) st.arg_var_entries += list.size();
  return st;
}

size_t View::ApproxBytes() const {
  size_t bytes = sizeof(View);
  for (const ViewAtom& a : atoms_) bytes += a.ApproxBytes();
  bytes += by_pred_.size() * sizeof(std::vector<size_t>);
  IndexStats st = index_stats();
  bytes += st.postings * sizeof(size_t);
  bytes += st.support_entries * 2 * sizeof(size_t);
  bytes += st.child_entries * 3 * sizeof(size_t);
  bytes += st.arg_value_buckets *
           (sizeof(uint64_t) + sizeof(std::vector<size_t>));
  bytes += (st.arg_value_entries + st.arg_var_entries) * sizeof(size_t);
  return bytes;
}

size_t View::TotalLiterals() const {
  size_t n = 0;
  for (const ViewAtom& a : atoms_) n += a.constraint.LiteralCount();
  return n;
}

std::string View::ToString(const VarNames* names) const {
  std::ostringstream os;
  for (const ViewAtom& a : atoms_) os << a.ToString(names) << "\n";
  return os.str();
}

}  // namespace mmv
