#include "core/fixpoint.h"

#include <algorithm>
#include <unordered_set>

#include "constraint/canonical.h"
#include "constraint/simplify.h"

namespace mmv {

namespace {

// Seminaive materialization engine for one Materialize call.
class Engine {
 public:
  Engine(const Program& program, DcaEvaluator* evaluator,
         const FixpointOptions& options, FixpointStats* stats)
      : program_(program),
        options_(options),
        stats_(stats),
        solver_(evaluator, options.solver),
        factory_(program.factory()) {}

  Result<View> Run(View initial, size_t delta_begin) {
    // Seed with the initial atoms (MaterializeFrom / DRed rederivation).
    // Under duplicate semantics the view moves in wholesale — its indexes
    // (by-predicate postings, support hash) arrive ready-built, and seed
    // supports are unique identities already (Lemma 1). Set semantics has
    // no such guarantee (maintenance can collapse distinct atoms onto one
    // canonical form), so seeds are re-added one by one to suppress
    // canonical duplicates, exactly like derived atoms.
    factory_.ReserveAbove(initial.MaxVarId());
    if (options_.semantics == DupSemantics::kSet) {
      VarId seed_bound = initial.MaxVarId();
      std::vector<ViewAtom> seeds = initial.TakeAtoms();
      for (ViewAtom& a : seeds) AddAtom(std::move(a));
      view_.NoteExternalVars(seed_bound);  // TakeAtoms reset initial's mark
    } else {
      stats_->atoms_created += initial.size();
      view_ = std::move(initial);
    }
    delta_begin = std::min(delta_begin, view_.size());

    // Round 0: constrained facts (empty-body clauses).
    if (options_.derive_facts) {
      for (const Clause& c : program_.clauses()) {
        if (!c.IsFact()) continue;
        MMV_RETURN_NOT_OK(Derive(c, {}, 0));
        if (Capped()) return Finish();
      }
    }

    int round = 0;
    while (true) {
      size_t delta_end = view_.size();
      if (delta_begin == delta_end) break;  // no new atoms last round
      ++round;
      if (round > options_.max_iterations) {
        stats_->truncated = true;
        break;
      }
      stats_->iterations = round;
      size_t size_at_round_start = view_.size();

      for (const Clause& c : program_.clauses()) {
        if (c.IsFact()) continue;
        MMV_RETURN_NOT_OK(DeriveWithClause(c, delta_begin, delta_end, round));
        if (Capped()) return Finish();
      }
      delta_begin = size_at_round_start;
    }
    return Finish();
  }

 private:
  bool Capped() {
    if (view_.size() >= options_.max_atoms) {
      stats_->truncated = true;
      return true;
    }
    return false;
  }

  View Finish() {
    stats_->solver = solver_.stats();
    return std::move(view_);
  }

  // Enumerates body-atom combinations for clause c with the standard
  // seminaive pivot trick: position `pivot` ranges over the newest delta,
  // earlier positions over strictly older atoms, later positions over
  // everything up to delta_end.
  Status DeriveWithClause(const Clause& c, size_t delta_begin,
                          size_t delta_end, int round) {
    size_t n = c.body.size();
    std::vector<const std::vector<size_t>*> lists(n);
    for (size_t i = 0; i < n; ++i) {
      const std::vector<size_t>& list = view_.AtomsFor(c.body[i].pred);
      if (list.empty()) return Status::OK();  // no candidates at all
      lists[i] = &list;
    }
    std::vector<size_t> chosen(n);
    for (size_t pivot = 0; pivot < n; ++pivot) {
      MMV_RETURN_NOT_OK(
          Recurse(c, lists, pivot, 0, delta_begin, delta_end, round, &chosen));
      if (view_.size() >= options_.max_atoms) break;
    }
    return Status::OK();
  }

  Status Recurse(const Clause& c,
                 const std::vector<const std::vector<size_t>*>& lists,
                 size_t pivot, size_t pos, size_t delta_begin,
                 size_t delta_end, int round, std::vector<size_t>* chosen) {
    if (pos == c.body.size()) {
      return Derive(c, *chosen, round);
    }
    // Bounds for this position.
    size_t lo_limit, hi_limit;
    if (pos < pivot) {
      lo_limit = 0;
      hi_limit = delta_begin;
    } else if (pos == pivot) {
      lo_limit = delta_begin;
      hi_limit = delta_end;
    } else {
      lo_limit = 0;
      hi_limit = delta_end;
    }
    // Work with positions, not iterators: Derive() appends to the index
    // vectors (recursive rules), which may reallocate their buffers. The
    // positional window stays valid because appends only push_back values
    // >= delta_end, beyond hi_limit.
    const std::vector<size_t>& idx = *lists[pos];  // ascending atom indices
    size_t lo_pos = static_cast<size_t>(
        std::lower_bound(idx.begin(), idx.end(), lo_limit) - idx.begin());
    size_t hi_pos = static_cast<size_t>(
        std::lower_bound(idx.begin(), idx.end(), hi_limit) - idx.begin());
    for (size_t i = lo_pos; i < hi_pos; ++i) {
      (*chosen)[pos] = (*lists[pos])[i];
      MMV_RETURN_NOT_OK(Recurse(c, lists, pivot, pos + 1, delta_begin,
                                delta_end, round, chosen));
      if (view_.size() >= options_.max_atoms) return Status::OK();
    }
    return Status::OK();
  }

  // Executes one derivation: clause c applied to the chosen instances.
  Status Derive(const Clause& c, const std::vector<size_t>& chosen,
                int round) {
    stats_->derivations_attempted++;
    Clause renamed = c.Rename(&factory_);
    Constraint acc = renamed.constraint;
    std::vector<Support> children;
    children.reserve(chosen.size());

    for (size_t i = 0; i < chosen.size(); ++i) {
      const ViewAtom& inst = view_.atoms()[chosen[i]];
      const TermVec& pattern = renamed.body[i].args;
      if (inst.args.size() != pattern.size()) {
        return Status::InvalidArgument(
            "arity mismatch joining " + inst.pred.name() + "/" +
            std::to_string(inst.args.size()) + " against clause " +
            std::to_string(c.number));
      }
      // Standardize the instance apart (T_P: "which share no variables").
      std::vector<VarId> vars;
      CollectVars(inst.args, &vars);
      for (VarId v : inst.constraint.Variables()) {
        if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
          vars.push_back(v);
        }
      }
      Substitution renaming = FreshRenaming(vars, &factory_);
      TermVec inst_args = renaming.Apply(inst.args);
      acc.AndWith(renaming.Apply(inst.constraint));
      for (size_t k = 0; k < pattern.size(); ++k) {
        acc.Add(Primitive::Eq(inst_args[k], pattern[k]));
      }
      children.push_back(inst.support);
    }

    TermVec head = renamed.head_args;
    Constraint constraint = std::move(acc);
    if (options_.simplify) {
      SimplifiedAtom s = SimplifyAtom(head, constraint);
      head = std::move(s.head);
      constraint = std::move(s.constraint);
    }
    if (constraint.is_false() && options_.prune_static_contradictions) {
      stats_->unsat_pruned++;
      return Status::OK();
    }
    if (options_.op == OperatorKind::kTp && !constraint.is_false()) {
      SolveOutcome o = solver_.Solve(constraint);
      if (o == SolveOutcome::kError) return solver_.last_status();
      if (o == SolveOutcome::kUnsat) {
        stats_->unsat_pruned++;
        return Status::OK();
      }
    } else if (options_.op == OperatorKind::kTp && constraint.is_false()) {
      stats_->unsat_pruned++;
      return Status::OK();
    }

    ViewAtom atom;
    atom.pred = renamed.head_pred;
    atom.args = std::move(head);
    atom.constraint = std::move(constraint);
    atom.support = Support(c.number, std::move(children));
    atom.depth = round;
    AddAtom(std::move(atom));
    return Status::OK();
  }

  // Appends the atom unless it is a duplicate. The view's own indexes
  // (by-predicate postings, support hash) are maintained by View::Add;
  // duplicate detection probes them directly.
  bool AddAtom(ViewAtom atom) {
    if (options_.semantics == DupSemantics::kDuplicate) {
      if (view_.HasSupport(atom.support)) {
        stats_->duplicates_suppressed++;
        return false;
      }
    } else {
      std::string key =
          CanonicalAtomString(atom.pred, atom.args, atom.constraint);
      if (!canonical_seen_.insert(std::move(key)).second) {
        stats_->duplicates_suppressed++;
        return false;
      }
    }
    stats_->atoms_created++;
    view_.Add(std::move(atom));
    return true;
  }

  const Program& program_;
  FixpointOptions options_;
  FixpointStats* stats_;
  Solver solver_;
  VarFactory factory_;

  View view_;
  std::unordered_set<std::string> canonical_seen_;
};

}  // namespace

Result<View> MaterializeFrom(const Program& program, View initial,
                             DcaEvaluator* evaluator,
                             const FixpointOptions& options,
                             FixpointStats* stats, size_t delta_begin) {
  FixpointStats local;
  Engine engine(program, evaluator, options, stats ? stats : &local);
  return engine.Run(std::move(initial), delta_begin);
}

Result<View> Materialize(const Program& program, DcaEvaluator* evaluator,
                         const FixpointOptions& options,
                         FixpointStats* stats) {
  return MaterializeFrom(program, View(), evaluator, options, stats);
}

Status ContinueFixpoint(const Program& program, View* view,
                        DcaEvaluator* evaluator,
                        const FixpointOptions& options, FixpointStats* stats,
                        size_t delta_begin) {
  FixpointOptions continuation = options;
  continuation.derive_facts = false;
  MMV_ASSIGN_OR_RETURN(
      View result, MaterializeFrom(program, std::move(*view), evaluator,
                                   continuation, stats, delta_begin));
  *view = std::move(result);
  return Status::OK();
}

}  // namespace mmv
