#include "core/fixpoint.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "constraint/canonical.h"
#include "constraint/reject_cache.h"
#include "constraint/simplify.h"
#include "core/thread_pool.h"
#include "plan/partition.h"
#include "plan/plan_cache.h"

namespace mmv {

namespace {

// Hard ceiling on variable ids. Attempted derivations rename their clause
// and instances even when the result is pruned, so a pathological pass can
// burn ids far faster than it stages atoms; wrapping VarId (signed, 32-bit)
// would alias variables across derivations — and staging-factory ids that
// wrapped below kStagingVarBase would dodge the merge remap. Fail loudly
// with plenty of headroom instead.
constexpr VarId kVarIdCeiling =
    std::numeric_limits<VarId>::max() - (VarId{1} << 20);

// Where a clause pass's derived atoms go. The sequential engine adds them
// to the view immediately (dedup included); parallel passes stage them
// per clause for the round's ordered merge.
class DeriveSink {
 public:
  virtual ~DeriveSink() = default;
  /// Delivers one surviving derivation. \p presimplified records that
  /// (args, constraint) already went through SimplifyAtom.
  virtual void Emit(ViewAtom atom, bool presimplified) = 0;
  /// True when the pass must stop enumerating (atom budget exhausted).
  virtual bool Full() const = 0;
};

// One clause pass over a fixed view prefix: the join executors (naive
// nested-loop oracle and the compiled-plan pipeline) plus the shared
// derivation tail (constraint assembly, simplify, solve). Everything the
// pass writes goes through its DeriveSink / FixpointStats bindings, so one
// ClauseRunner serves the sequential engine (bound to the live view and
// engine stats) and each parallel worker (bound to per-clause staging).
//
// Reads only view indexes and atoms below the round's delta_end; within a
// round those are frozen (appends land at indices >= delta_end), which is
// what makes concurrent passes against one view sound.
class ClauseRunner {
 public:
  ClauseRunner(const View& view, const FixpointOptions& options,
               Solver* solver, VarFactory* factory)
      : view_(view), options_(options), solver_(solver), factory_(factory) {}

  /// \brief Points the runner's output at \p stats / \p sink (per pass
  /// for parallel workers; once for the sequential engine).
  void Bind(FixpointStats* stats, DeriveSink* sink) {
    stats_ = stats;
    sink_ = sink;
  }

  /// \brief Per-declared-body-position candidate / accepted counters of
  /// the last RunPlanned pass (PlanCache::Feedback input), and whether
  /// that pass got far enough that the sequential engine would report
  /// them (it early-outs before feedback when a body predicate has no
  /// candidate atoms at all).
  const std::vector<int64_t>& candidates() const { return cand_; }
  const std::vector<int64_t>& accepted() const { return acc_; }
  bool feedback_due() const { return feedback_due_; }

  // ---- kNaive: the legacy nested-loop join (differential oracle) --------

  // Enumerates body-atom combinations for clause c with the standard
  // seminaive pivot trick: position `pivot` ranges over the newest delta,
  // earlier positions over strictly older atoms, later positions over
  // everything up to delta_end.
  Status RunNaive(const Clause& c, size_t delta_begin, size_t delta_end,
                  int round) {
    size_t n = c.body.size();
    std::vector<const std::vector<size_t>*> lists(n);
    for (size_t i = 0; i < n; ++i) {
      const std::vector<size_t>& list = view_.AtomsFor(c.body[i].pred);
      if (list.empty()) return Status::OK();  // no candidates at all
      lists[i] = &list;
    }
    std::vector<size_t> chosen(n);
    for (size_t pivot = 0; pivot < n; ++pivot) {
      MMV_RETURN_NOT_OK(
          Recurse(c, lists, pivot, 0, delta_begin, delta_end, round, &chosen));
      if (sink_->Full()) break;
    }
    return Status::OK();
  }

  // ---- kIndexed: constraint-aware plan executor -------------------------

  /// \brief Resolves the pass's posting lists and hoisted seminaive
  /// windows: the posting-list positions of delta_begin and delta_end per
  /// body position, computed once per clause instead of per recursion
  /// step. Appends during derivation only push indices >= delta_end, so
  /// the cut positions stay correct throughout. Returns false when the
  /// pass cannot derive — a body predicate with no atoms at all, or one
  /// with no atoms below delta_end (every window empty; atoms past
  /// delta_end exist when an EARLIER clause of this round already
  /// appended, and cutting on the windowed count keeps pass-level
  /// counters identical between the sequential engine and parallel
  /// workers reading the frozen prefix). Pure read: writes no stats, so
  /// the parallel round can screen clauses before its go/no-go decision.
  bool PreparePass(const Clause& c, size_t delta_begin, size_t delta_end,
                   std::vector<const std::vector<size_t>*>* lists,
                   std::vector<std::pair<size_t, size_t>>* cut) const {
    size_t n = c.body.size();
    lists->assign(n, nullptr);
    cut->assign(n, {0, 0});
    for (size_t i = 0; i < n; ++i) {
      const std::vector<size_t>& list = view_.AtomsFor(c.body[i].pred);
      if (list.empty()) return false;  // no candidates at all
      (*lists)[i] = &list;
      (*cut)[i] = {LowerBoundPos(list, delta_begin),
                   LowerBoundPos(list, delta_end)};
      if ((*cut)[i].second == 0) return false;
    }
    return true;
  }

  Status RunPlanned(const Clause& c, const plan::ClausePlan& plan,
                    size_t delta_begin, size_t delta_end, int round) {
    size_t n = c.body.size();
    feedback_due_ = false;
    std::vector<const std::vector<size_t>*> lists;
    std::vector<std::pair<size_t, size_t>> cut;
    if (!PreparePass(c, delta_begin, delta_end, &lists, &cut)) {
      return Status::OK();
    }
    BeginPass(plan, n);
    std::vector<size_t> chosen(n);
    Status status = Status::OK();
    for (size_t pivot = 0; pivot < n; ++pivot) {
      if (cut[pivot].first == cut[pivot].second) continue;  // empty delta
      status = RecursePlanned(c, plan, plan.order(pivot), lists, cut, pivot,
                              0, delta_begin, delta_end, round, &chosen);
      if (!status.ok()) break;
      if (sink_->Full()) break;
    }
    return status;
  }

  // ---- parallel slice entry points --------------------------------------
  //
  // A parallel round decomposes RunPlanned's pivot loop: each nonempty
  // (clause, pivot) runs as its own pass — sound for the same reason the
  // pivot loop needs no barriers: every pivot's windows read only the
  // frozen prefix below delta_end. A pivot whose delta window is large
  // enough is split further into contiguous shards of its depth-0
  // candidate sequence (plan/partition.h).

  /// \brief One whole (clause, pivot) pass: RunPlanned minus the pivot
  /// loop. Counts its own depth-0 probes, exactly once, like sequential.
  Status RunPivotPass(const Clause& c, const plan::ClausePlan& plan,
                      const std::vector<const std::vector<size_t>*>& lists,
                      const std::vector<std::pair<size_t, size_t>>& cut,
                      size_t pivot, size_t delta_begin, size_t delta_end,
                      int round) {
    BeginPass(plan, c.body.size());
    std::vector<size_t> chosen(c.body.size());
    return RecursePlanned(c, plan, plan.order(pivot), lists, cut, pivot, 0,
                          delta_begin, delta_end, round, &chosen);
  }

  /// \brief Replays a sharded pivot's depth-0 probe selection, appending
  /// the pivot window's candidate atom indices to \p out in exactly the
  /// order a whole-pivot pass would enumerate them (ascending atom
  /// index). Runs ONCE per (clause, pivot) on the engine thread — it
  /// counts index_probes / probe_intersections into the bound stats, and
  /// shards then enumerate contiguous subranges without re-probing, so
  /// the probe counters stay identical to num_threads=1 whatever the
  /// shard count. Precondition: the pivot's execution order starts at the
  /// pivot itself (plan.order(pivot).steps[0].decl_pos == pivot), which
  /// also means no binding slots are live at depth 0 — only clause
  /// constants can be ground probe positions here.
  void MaterializePivotCandidates(
      const Clause& c, const plan::ClausePlan& plan,
      const std::vector<const std::vector<size_t>*>& lists,
      const std::vector<std::pair<size_t, size_t>>& cut, size_t pivot,
      size_t delta_begin, size_t delta_end, std::vector<size_t>* out) {
    const plan::PivotOrder& order = plan.order(pivot);
    size_t pos = order.steps[0].decl_pos;
    const std::vector<plan::PlanArg>& pattern = plan.body[pos];
    const std::vector<size_t>* hits = nullptr;
    const std::vector<size_t>* vars = nullptr;
    size_t win_i = 0, win_i_end = 0, win_j = 0, win_j_end = 0;
    bool have_windows = false;
    size_t best_size = 0;
    int ground_positions = 0;
    for (uint16_t k : order.steps[0].probe_positions) {
      const plan::PlanArg& a = pattern[k];
      if (!a.is_const) continue;  // depth 0: no slot is bound yet
      ++ground_positions;
      const std::vector<size_t>& h =
          view_.AtomsForArgValue(c.body[pos].pred, k, a.value);
      const std::vector<size_t>& w =
          view_.AtomsForNonConstArg(c.body[pos].pred, k);
      if (!plan.multi_probe) {
        hits = &h;
        vars = &w;
        break;
      }
      size_t i = LowerBoundPos(h, delta_begin);
      size_t i_end = LowerBoundPos(h, delta_end);
      size_t j = LowerBoundPos(w, delta_begin);
      size_t j_end = LowerBoundPos(w, delta_end);
      size_t size = (i_end - i) + (j_end - j);
      if (hits == nullptr || size < best_size) {
        hits = &h;
        vars = &w;
        best_size = size;
        win_i = i;
        win_i_end = i_end;
        win_j = j;
        win_j_end = j_end;
        have_windows = true;
      }
    }
    if (ground_positions >= 2) stats_->probe_intersections++;
    if (hits != nullptr) {
      stats_->index_probes++;
      size_t i = have_windows ? win_i : LowerBoundPos(*hits, delta_begin);
      size_t i_end =
          have_windows ? win_i_end : LowerBoundPos(*hits, delta_end);
      size_t j = have_windows ? win_j : LowerBoundPos(*vars, delta_begin);
      size_t j_end =
          have_windows ? win_j_end : LowerBoundPos(*vars, delta_end);
      while (i < i_end || j < j_end) {
        if (j >= j_end || (i < i_end && (*hits)[i] < (*vars)[j])) {
          out->push_back((*hits)[i++]);
        } else {
          out->push_back((*vars)[j++]);
        }
      }
      return;
    }
    const std::vector<size_t>& list = *lists[pos];
    for (size_t i = cut[pos].first; i < cut[pos].second; ++i) {
      out->push_back(list[i]);
    }
  }

  /// \brief One shard of a partitioned pivot pass: unifies the
  /// materialized candidates in [begin, end) at depth 0, recursing into
  /// deeper steps exactly as the whole pass would. Does NOT count
  /// depth-0 probes — MaterializePivotCandidates already did.
  Status RunPivotSlice(const Clause& c, const plan::ClausePlan& plan,
                       const std::vector<const std::vector<size_t>*>& lists,
                       const std::vector<std::pair<size_t, size_t>>& cut,
                       size_t pivot, const std::vector<size_t>& candidates,
                       size_t begin, size_t end, size_t delta_begin,
                       size_t delta_end, int round) {
    BeginPass(plan, c.body.size());
    const plan::PivotOrder& order = plan.order(pivot);
    std::vector<size_t> chosen(c.body.size());
    for (size_t i = begin; i < end; ++i) {
      MMV_RETURN_NOT_OK(TryCandidate(c, plan, order, lists, cut, pivot,
                                     /*depth=*/0, delta_begin, delta_end,
                                     round, &chosen, candidates[i]));
      if (sink_->Full()) return Status::OK();
    }
    return Status::OK();
  }

  // ---- shared derivation tail -------------------------------------------

  // Executes one derivation: clause c applied to the chosen instances.
  Status Derive(const Clause& c, const std::vector<size_t>& chosen,
                int round) {
    if (factory_->issued() >= kVarIdCeiling) {
      return Status::Internal(
          "variable id space exhausted deriving clause " +
          std::to_string(c.number));
    }
    stats_->derivations_attempted++;
    // Pre-rename join screen (T_P only — W_P keeps unsolvable atoms): a
    // provably-unsatisfiable candidate is pruned before the clause rename,
    // per-instance standardization and constraint assembly below ever
    // allocate. Sound for rejection only, so the pruned set — and
    // unsat_pruned, which the slow path increments for the same candidates
    // via simplify/Solve — is identical with the fast path off. Candidates
    // with an arity mismatch get no verdict (RejectJoin screens that
    // itself), keeping the error path below intact.
    if (options_.op == OperatorKind::kTp && options_.solver.fastpath &&
        !chosen.empty()) {
      join_components_.clear();
      join_components_.reserve(chosen.size());
      for (size_t i = 0; i < chosen.size(); ++i) {
        const ViewAtom& inst = view_.atoms()[chosen[i]];
        join_components_.push_back(
            {&inst.args, &inst.constraint, &c.body[i].args});
      }
      if (solver_->RejectJoin(c.constraint, join_components_)) {
        stats_->unsat_pruned++;
        return Status::OK();
      }
    }
    Clause renamed = c.Rename(factory_);
    Constraint acc = renamed.constraint;
    std::vector<Support> children;
    children.reserve(chosen.size());

    for (size_t i = 0; i < chosen.size(); ++i) {
      const ViewAtom& inst = view_.atoms()[chosen[i]];
      const TermVec& pattern = renamed.body[i].args;
      if (inst.args.size() != pattern.size()) {
        return Status::InvalidArgument(
            "arity mismatch joining " + inst.pred.name() + "/" +
            std::to_string(inst.args.size()) + " against clause " +
            std::to_string(c.number));
      }
      // Standardize the instance apart (T_P: "which share no variables").
      var_set_.Clear();
      var_set_.AddTerms(inst.args);
      inst.constraint.CollectVariables(&var_set_);
      Substitution renaming = FreshRenaming(var_set_.vars(), factory_);
      TermVec inst_args = renaming.Apply(inst.args);
      acc.AndWith(renaming.Apply(inst.constraint));
      for (size_t k = 0; k < pattern.size(); ++k) {
        acc.Add(Primitive::Eq(inst_args[k], pattern[k]));
      }
      children.push_back(inst.support);
    }

    TermVec head = renamed.head_args;
    Constraint constraint = std::move(acc);
    if (options_.simplify) {
      SimplifiedAtom s = SimplifyAtom(head, constraint);
      head = std::move(s.head);
      constraint = std::move(s.constraint);
    }
    if (constraint.is_false() && options_.prune_static_contradictions) {
      stats_->unsat_pruned++;
      return Status::OK();
    }
    if (options_.op == OperatorKind::kTp && !constraint.is_false()) {
      SolveOutcome o = solver_->Solve(constraint);
      if (o == SolveOutcome::kError) return solver_->last_status();
      if (o == SolveOutcome::kUnsat) {
        stats_->unsat_pruned++;
        return Status::OK();
      }
    } else if (options_.op == OperatorKind::kTp && constraint.is_false()) {
      stats_->unsat_pruned++;
      return Status::OK();
    }

    ViewAtom atom;
    atom.pred = renamed.head_pred;
    atom.args = std::move(head);
    atom.constraint = std::move(constraint);
    atom.support = Support(c.number, std::move(children));
    atom.depth = round;
    sink_->Emit(std::move(atom), /*presimplified=*/options_.simplify);
    return Status::OK();
  }

 private:
  // Resets the binding slots, undo log and feedback counters for one
  // planned pass (a whole clause, one pivot, or one shard of one).
  void BeginPass(const plan::ClausePlan& plan, size_t body_size) {
    feedback_due_ = true;
    bound_.assign(static_cast<size_t>(plan.num_slots), BoundRef{});
    undo_.clear();
    cand_.assign(body_size, 0);
    acc_.assign(body_size, 0);
  }

  // A ground binding: which chosen instance argument bound the slot. Atom
  // indices stay valid across view appends (unlike pointers into the atom
  // vector, which reallocates).
  struct BoundRef {
    uint32_t atom = kNoAtom;
    uint32_t pos = 0;
  };
  static constexpr uint32_t kNoAtom = 0xffffffffu;

  static size_t LowerBoundPos(const std::vector<size_t>& idx, size_t limit) {
    return static_cast<size_t>(
        std::lower_bound(idx.begin(), idx.end(), limit) - idx.begin());
  }

  const Value& Resolved(int slot) const {
    const BoundRef& b = bound_[static_cast<size_t>(slot)];
    return view_.atoms()[b.atom].args[b.pos].constant();
  }

  Status Recurse(const Clause& c,
                 const std::vector<const std::vector<size_t>*>& lists,
                 size_t pivot, size_t pos, size_t delta_begin,
                 size_t delta_end, int round, std::vector<size_t>* chosen) {
    if (pos == c.body.size()) {
      return Derive(c, *chosen, round);
    }
    // Bounds for this position.
    size_t lo_limit, hi_limit;
    if (pos < pivot) {
      lo_limit = 0;
      hi_limit = delta_begin;
    } else if (pos == pivot) {
      lo_limit = delta_begin;
      hi_limit = delta_end;
    } else {
      lo_limit = 0;
      hi_limit = delta_end;
    }
    // Work with positions, not iterators: Derive() appends to the index
    // vectors (recursive rules), which may reallocate their buffers. The
    // positional window stays valid because appends only push_back values
    // >= delta_end, beyond hi_limit.
    const std::vector<size_t>& idx = *lists[pos];  // ascending atom indices
    size_t lo_pos = LowerBoundPos(idx, lo_limit);
    size_t hi_pos = LowerBoundPos(idx, hi_limit);
    for (size_t i = lo_pos; i < hi_pos; ++i) {
      (*chosen)[pos] = (*lists[pos])[i];
      MMV_RETURN_NOT_OK(Recurse(c, lists, pivot, pos + 1, delta_begin,
                                delta_end, round, chosen));
      if (sink_->Full()) return Status::OK();
    }
    return Status::OK();
  }

  Status RecursePlanned(const Clause& c, const plan::ClausePlan& plan,
                        const plan::PivotOrder& order,
                        const std::vector<const std::vector<size_t>*>& lists,
                        const std::vector<std::pair<size_t, size_t>>& cut,
                        size_t pivot, size_t depth, size_t delta_begin,
                        size_t delta_end, int round,
                        std::vector<size_t>* chosen) {
    if (depth == c.body.size()) {
      return DerivePlanned(c, plan, *chosen, round);
    }
    // The seminaive window is keyed by the DECLARED position (so each
    // combination is enumerated under exactly one pivot, whatever the
    // execution order); only the nesting order is the plan's.
    size_t pos = order.steps[depth].decl_pos;
    size_t lo_limit = pos == pivot ? delta_begin : 0;
    size_t hi_limit = pos < pivot ? delta_begin : delta_end;
    const std::vector<plan::PlanArg>& pattern = plan.body[pos];

    // Probe selection over the plan's precomputed candidate positions (the
    // ones that CAN be ground here: clause constants, slots bound by an
    // earlier step). kDeclared takes the first actually-ground one; with
    // multi_probe every ground bucket is weighed and the smallest is
    // enumerated. Sound candidates are the atoms whose argument there is
    // the same constant — or not a constant at all (a variable instance
    // argument can unify with any value), hence the bucket-pair merge.
    const std::vector<size_t>* hits = nullptr;
    const std::vector<size_t>* vars = nullptr;
    // Seminaive windows of the winning bucket pair, computed once during
    // weighing and reused for the enumeration below.
    size_t win_i = 0, win_i_end = 0, win_j = 0, win_j_end = 0;
    bool have_windows = false;
    size_t best_size = 0;
    int ground_positions = 0;
    for (uint16_t k : order.steps[depth].probe_positions) {
      const plan::PlanArg& a = pattern[k];
      const Value* v;
      if (a.is_const) {
        v = &a.value;
      } else if (bound_[static_cast<size_t>(a.slot)].atom != kNoAtom) {
        v = &Resolved(a.slot);
      } else {
        continue;
      }
      ++ground_positions;
      const std::vector<size_t>& h =
          view_.AtomsForArgValue(c.body[pos].pred, k, *v);
      const std::vector<size_t>& w =
          view_.AtomsForNonConstArg(c.body[pos].pred, k);
      if (!plan.multi_probe) {
        hits = &h;
        vars = &w;
        break;
      }
      size_t i = LowerBoundPos(h, lo_limit);
      size_t i_end = LowerBoundPos(h, hi_limit);
      size_t j = LowerBoundPos(w, lo_limit);
      size_t j_end = LowerBoundPos(w, hi_limit);
      size_t size = (i_end - i) + (j_end - j);
      if (hits == nullptr || size < best_size) {
        hits = &h;
        vars = &w;
        best_size = size;
        win_i = i;
        win_i_end = i_end;
        win_j = j;
        win_j_end = j_end;
        have_windows = true;
      }
    }
    if (ground_positions >= 2) stats_->probe_intersections++;

    if (hits != nullptr) {
      stats_->index_probes++;
      // Merge the two ascending lists within [lo_limit, hi_limit) so the
      // candidate order matches the oracle's (ascending atom index).
      size_t i = have_windows ? win_i : LowerBoundPos(*hits, lo_limit);
      size_t i_end = have_windows ? win_i_end : LowerBoundPos(*hits, hi_limit);
      size_t j = have_windows ? win_j : LowerBoundPos(*vars, lo_limit);
      size_t j_end = have_windows ? win_j_end : LowerBoundPos(*vars, hi_limit);
      while (i < i_end || j < j_end) {
        size_t idx;
        if (j >= j_end || (i < i_end && (*hits)[i] < (*vars)[j])) {
          idx = (*hits)[i++];
        } else {
          idx = (*vars)[j++];
        }
        MMV_RETURN_NOT_OK(TryCandidate(c, plan, order, lists, cut, pivot,
                                       depth, delta_begin, delta_end, round,
                                       chosen, idx));
        if (sink_->Full()) return Status::OK();
      }
      return Status::OK();
    }

    const std::vector<size_t>& list = *lists[pos];
    size_t begin = pos == pivot ? cut[pos].first : 0;
    size_t end = pos < pivot ? cut[pos].first : cut[pos].second;
    for (size_t i = begin; i < end; ++i) {
      MMV_RETURN_NOT_OK(TryCandidate(c, plan, order, lists, cut, pivot,
                                     depth, delta_begin, delta_end, round,
                                     chosen, list[i]));
      if (sink_->Full()) return Status::OK();
    }
    return Status::OK();
  }

  // Unifies the candidate's ground arguments against the pattern: mismatch
  // rejects the whole subtree below this step; a first ground sighting
  // of a pattern variable binds its slot (undone on backtrack).
  Status TryCandidate(const Clause& c, const plan::ClausePlan& plan,
                      const plan::PivotOrder& order,
                      const std::vector<const std::vector<size_t>*>& lists,
                      const std::vector<std::pair<size_t, size_t>>& cut,
                      size_t pivot, size_t depth, size_t delta_begin,
                      size_t delta_end, int round, std::vector<size_t>* chosen,
                      size_t idx) {
    size_t pos = order.steps[depth].decl_pos;
    const ViewAtom& inst = view_.atoms()[idx];
    const std::vector<plan::PlanArg>& pattern = plan.body[pos];
    size_t undo_mark = undo_.size();
    bool ok = true;
    cand_[pos]++;
    if (inst.args.size() == pattern.size()) {
      for (size_t k = 0; k < pattern.size() && ok; ++k) {
        const Term& t = inst.args[k];
        if (!t.is_const()) continue;  // a real Eq literal decides later
        const plan::PlanArg& a = pattern[k];
        if (a.is_const) {
          ok = a.value == t.constant();
        } else if (a.slot >= 0) {
          BoundRef& b = bound_[a.slot];
          if (b.atom == kNoAtom) {
            b = BoundRef{static_cast<uint32_t>(idx),
                         static_cast<uint32_t>(k)};
            undo_.push_back(a.slot);
          } else {
            ok = Resolved(a.slot) == t.constant();
          }
        }
      }
    }
    Status status = Status::OK();
    if (ok) {
      acc_[pos]++;
      (*chosen)[pos] = idx;
      status = RecursePlanned(c, plan, order, lists, cut, pivot, depth + 1,
                              delta_begin, delta_end, round, chosen);
    } else {
      stats_->ground_rejects++;
    }
    while (undo_.size() > undo_mark) {
      bound_[static_cast<size_t>(undo_.back())] = BoundRef{};
      undo_.pop_back();
    }
    return status;
  }

  // True when the surviving tuple is fully ground: every instance argument
  // a constant (each one either matched a ground pattern term or bound its
  // slot), every instance constraint trivially true. With the clause
  // constraint also true, the rename + Eq-chain + simplify pipeline would
  // produce exactly (instantiated head, true) — so build that directly.
  bool FastEligible(const plan::ClausePlan& plan,
                    const std::vector<size_t>& chosen) const {
    for (size_t i = 0; i < chosen.size(); ++i) {
      const ViewAtom& inst = view_.atoms()[chosen[i]];
      if (!inst.constraint.is_true()) return false;
      const std::vector<plan::PlanArg>& pattern = plan.body[i];
      if (inst.args.size() != pattern.size()) return false;
      for (size_t k = 0; k < pattern.size(); ++k) {
        if (!inst.args[k].is_const()) return false;
        const plan::PlanArg& a = pattern[k];
        if (!a.is_const && (a.slot < 0 || bound_[a.slot].atom == kNoAtom)) {
          return false;
        }
      }
    }
    return true;
  }

  Status DerivePlanned(const Clause& c, const plan::ClausePlan& plan,
                       const std::vector<size_t>& chosen, int round) {
    if (!plan.constraint_true || !FastEligible(plan, chosen)) {
      return Derive(c, chosen, round);
    }
    stats_->derivations_attempted++;
    stats_->rename_skipped++;
    ViewAtom atom;
    atom.pred = c.head_pred;
    atom.args.reserve(plan.head.size());
    // slot -> fresh variable for unsafe head variables, so repeated
    // occurrences of one variable share one fresh id (p(X, X) stays the
    // diagonal, not the cross product).
    std::vector<std::pair<int, VarId>> unsafe_fresh;
    for (const plan::PlanArg& h : plan.head) {
      if (h.is_const) {
        atom.args.push_back(Term::Const(h.value));
      } else if (bound_[h.slot].atom != kNoAtom) {
        atom.args.push_back(Term::Const(Resolved(h.slot)));
      } else {
        // Head variable not bound through the body ("unsafe"): the rename
        // pipeline would map every occurrence to one fresh variable.
        VarId fresh = -1;
        for (const auto& [slot, v] : unsafe_fresh) {
          if (slot == h.slot) {
            fresh = v;
            break;
          }
        }
        if (fresh < 0) {
          fresh = factory_->Fresh();
          unsafe_fresh.emplace_back(h.slot, fresh);
        }
        atom.args.push_back(Term::Var(fresh));
      }
    }
    std::vector<Support> children;
    children.reserve(chosen.size());
    for (size_t i : chosen) children.push_back(view_.atoms()[i].support);
    atom.support = Support(c.number, std::move(children));
    atom.depth = round;
    sink_->Emit(std::move(atom), /*presimplified=*/true);
    return Status::OK();
  }

  const View& view_;
  const FixpointOptions& options_;
  Solver* solver_;
  VarFactory* factory_;
  FixpointStats* stats_ = nullptr;
  DeriveSink* sink_ = nullptr;

  std::vector<BoundRef> bound_;      // per plan slot
  std::vector<int> undo_;            // bound slots, LIFO
  std::vector<int64_t> cand_, acc_;  // per decl body position:
                                     // feedback for the cache
  bool feedback_due_ = false;
  VarSet var_set_;  // scratch for Derive
  std::vector<Solver::JoinComponent> join_components_;  // scratch for the
                                                        // pre-rename screen
};

// One clause pass's staged output under parallel execution.
struct StagedAtom {
  ViewAtom atom;
  bool presimplified = false;
  CanonicalKey key;  ///< precomputed dedup key (kSet only)
};

// Everything one parallel slice — a (clause, pivot[, shard]) pass — hands
// back to the round's merge.
struct SliceOutcome {
  std::vector<StagedAtom> atoms;  ///< enumeration order
  std::vector<int64_t> cand, acc;
  bool capped = false;  ///< the staging budget cut this pass short
  Status status;
  FixpointStats stats;  ///< pass-local counters (summed at merge)
  SolveStats solver;    ///< pass-local solver counters
};

// One schedulable unit of a parallel round. Slices are built in (clause,
// pivot, shard) order, so merging them in list order with each slice's
// atoms in enumeration order replays the exact sequential append order.
struct RoundSlice {
  size_t clause = 0;  ///< clause index in program order
  size_t pivot = 0;   ///< declared seminaive pivot position
  bool sharded = false;  ///< enumerate pool[begin, end) instead of the
                         ///  whole pivot window
  size_t pool = 0;       ///< index into the round's candidate pools
  size_t begin = 0, end = 0;  ///< shard range within the pool
  SolveCache* cache = nullptr;  ///< persistent per-slice solver memo
};

// Stages derivations per clause; canonical dedup keys are computed here in
// the worker (they are renaming-invariant, so the staged-variable ids do
// not matter) and the per-round merge does the actual dedup insertions.
class StagingSink : public DeriveSink {
 public:
  StagingSink(const FixpointOptions& options, size_t frozen_view_size)
      : options_(options), frozen_(frozen_view_size) {}

  void SetTarget(std::vector<StagedAtom>* out) {
    out_ = out;
    capped_ = false;
  }

  /// \brief True when Full() cut the current pass short. Staged counts are
  /// PRE-dedup, so a capped pass may have stopped before derivations the
  /// sequential engine (which caps on the deduped view size) would still
  /// reach — the merge must flag the run truncated or atoms would be
  /// dropped silently.
  bool capped() const { return capped_; }

  void Emit(ViewAtom atom, bool presimplified) override {
    StagedAtom s;
    if (options_.semantics == DupSemantics::kSet) {
      s.key = CanonicalAtomKey(atom.pred, atom.args, atom.constraint,
                               presimplified, &scratch_);
    }
    s.atom = std::move(atom);
    s.presimplified = presimplified;
    out_->push_back(std::move(s));
    ++staged_;
  }

  // Per-task atom budget: the frozen view plus everything this task staged.
  // (Truncation points under parallel execution legitimately differ from
  // sequential — see FixpointOptions::num_threads.)
  bool Full() const override {
    if (frozen_ + staged_ < options_.max_atoms) return false;
    capped_ = true;
    return true;
  }

 private:
  const FixpointOptions& options_;
  size_t frozen_;
  size_t staged_ = 0;
  mutable bool capped_ = false;
  std::vector<StagedAtom>* out_ = nullptr;
  std::string scratch_;
};

// Seminaive materialization engine for one Materialize call.
//
// Two join strategies share one Derive tail (constraint assembly, simplify,
// solve, dedup), so they differ only in which candidate tuples reach it:
//
//  - kNaive enumerates the full per-predicate cross product and lets the
//    tail reject contradictory tuples. Kept as the differential oracle.
//  - kIndexed executes a compiled plan::ClausePlan (from the shared
//    PlanCache): body atoms run in the plan's per-pivot selectivity order,
//    each step probes the view's arg-value index through the plan's
//    precomputed probe positions (picking the smallest of several ground
//    buckets under PlanMode::kOrdered), and the incremental substitution
//    threads through dense binding slots so any ground mismatch rejects
//    the candidate before deeper steps are enumerated.
//
// With options.num_threads > 1 (and the kIndexed executor active), each
// round's clause passes run CONCURRENTLY: the round's delta window is
// frozen before any pass starts — sequential rounds never see intra-round
// derivations either, since every window is capped at delta_end — so the
// passes share the view read-only. Work is scheduled per (clause, pivot)
// slice — clause passes are mutually independent because every one reads
// only below delta_end, and the pivots within one pass are independent for
// the same reason — and a pivot whose frozen delta window clears the
// partition threshold (plan/partition.h) is split further into contiguous
// shards of its depth-0 candidate sequence, so even a single recursive
// clause fans out. Every slice stages its derivations with a private
// staging factory for fresh variables, and one merge per round replays
// them into the view in (clause, pivot, shard, enumeration) order —
// exactly the sequential append order — doing dedup, counters and plan
// feedback on the engine thread. Hence canonical atom sets, support
// multisets and derivation counters are identical to the sequential
// engine's; only fresh-variable numbering and solver-memo hit counts are
// scheduling-free but not sequential-identical.
class Engine {
 public:
  Engine(const Program& program, DcaEvaluator* evaluator,
         const FixpointOptions& options, FixpointStats* stats)
      : program_(program),
        evaluator_(evaluator),
        options_(options),
        stats_(stats),
        solver_(evaluator, SolverOptionsFor(options, &local_cache_,
                                            &local_reject_cache_)),
        factory_(program.factory()),
        // Early ground rejection is behavior-preserving only when the
        // engine provably drops statically contradictory joins: simplify
        // detects every ground `=` conflict and pruning (or T_P's
        // solvability requirement, which pruning subsumes here) drops it.
        // Without simplify, a kWp run (or a budget-starved kTp solve)
        // could legitimately keep such an atom — fall back to the oracle.
        indexed_(options.join_mode == JoinMode::kIndexed &&
                 options.simplify && options.prune_static_contradictions),
        parallel_(indexed_ && options.num_threads > 1),
        local_plans_(options.plan_mode),
        plans_(plan::PlanCache::Select(options.plan_cache, options.plan_mode,
                                       &local_plans_)),
        plan_stats_start_(plans_->stats()),
        direct_sink_(this),
        runner_(view_, options_, &solver_, &factory_) {
    runner_.Bind(stats_, &direct_sink_);
  }

  Result<View> Run(View initial, size_t delta_begin) {
    // Seed with the initial atoms (MaterializeFrom / DRed rederivation).
    // Under duplicate semantics the view moves in wholesale — its indexes
    // (by-predicate postings, support hash) arrive ready-built, and seed
    // supports are unique identities already (Lemma 1). Set semantics has
    // no such guarantee (maintenance can collapse distinct atoms onto one
    // canonical form), so seeds are re-added one by one to suppress
    // canonical duplicates, exactly like derived atoms.
    factory_.ReserveAbove(initial.MaxVarId());
    if (options_.semantics == DupSemantics::kSet) {
      VarId seed_bound = initial.MaxVarId();
      std::vector<ViewAtom> seeds = initial.TakeAtoms();
      for (ViewAtom& a : seeds) AddAtom(std::move(a), false);
      view_.NoteExternalVars(seed_bound);  // carry initial's mark to view_
    } else {
      stats_->atoms_created += initial.size();
      view_ = std::move(initial);
    }
    delta_begin = std::min(delta_begin, view_.size());

    // Round 0: constrained facts (empty-body clauses).
    if (options_.derive_facts) {
      for (const Clause& c : program_.clauses()) {
        if (!c.IsFact()) continue;
        MMV_RETURN_NOT_OK(runner_.Derive(c, {}, 0));
        if (Capped()) return Finish();
      }
    }

    int round = 0;
    while (true) {
      size_t delta_end = view_.size();
      if (delta_begin == delta_end) break;  // no new atoms last round
      ++round;
      if (round > options_.max_iterations) {
        stats_->truncated = true;
        break;
      }
      stats_->iterations = round;
      size_t size_at_round_start = view_.size();

      // Parallel rounds need the real factory well clear of the staging
      // base, so staged ids stay recognizable. The round decides its own
      // fan-out from the frozen windows — including an inline sequential
      // fallback when fewer than two slices would run. Both decisions are
      // deterministic, so the choice never shows in any output.
      if (parallel_ && factory_.issued() < kStagingVarBase / 2) {
        MMV_RETURN_NOT_OK(RunRoundParallel(delta_begin, delta_end, round));
        if (Capped()) return Finish();
      } else {
        for (const Clause& c : program_.clauses()) {
          if (c.IsFact()) continue;
          MMV_RETURN_NOT_OK(RunClauseSequential(c, delta_begin, delta_end,
                                                round));
          if (Capped()) return Finish();
        }
      }
      delta_begin = size_at_round_start;
    }
    return Finish();
  }

 private:
  static SolverOptions SolverOptionsFor(const FixpointOptions& o,
                                        SolveCache* local,
                                        RejectCache* local_reject) {
    SolverOptions s = o.solver;
    if (o.join_mode == JoinMode::kIndexed && s.cache == nullptr) {
      s.cache = o.solve_cache != nullptr ? o.solve_cache : local;
    }
    // The rejection memo rides the same wiring: caller-shared when
    // provided, run-local otherwise, and only where the fast path can
    // consult it. Off-mode runs get neither recording nor lookups, so the
    // oracle replay never touches memo state.
    if (o.join_mode == JoinMode::kIndexed && s.fastpath &&
        s.reject_cache == nullptr) {
      s.reject_cache =
          o.reject_cache != nullptr ? o.reject_cache : local_reject;
    }
    return s;
  }

  // Sequential sink: dedup + append to the live view.
  class DirectSink : public DeriveSink {
   public:
    explicit DirectSink(Engine* engine) : engine_(engine) {}
    void Emit(ViewAtom atom, bool presimplified) override {
      engine_->AddAtom(std::move(atom), presimplified);
    }
    bool Full() const override {
      return engine_->view_.size() >= engine_->options_.max_atoms;
    }

   private:
    Engine* engine_;
  };

  bool Capped() {
    if (view_.size() >= options_.max_atoms) {
      stats_->truncated = true;
      return true;
    }
    return false;
  }

  View Finish() {
    stats_->solver = solver_.stats();
    stats_->solver += parallel_solver_;
    // Attribute this run's share of the (possibly shared) plan cache's
    // activity: the counters are monotone, so the delta since construction
    // is exactly what this run caused.
    const plan::PlanCacheStats& ps = plans_->stats();
    stats_->plan_reorders += ps.reorders - plan_stats_start_.reorders;
    stats_->plan_cache_hits += ps.cache_hits - plan_stats_start_.cache_hits;
    return std::move(view_);
  }

  Status RunClauseSequential(const Clause& c, size_t delta_begin,
                             size_t delta_end, int round) {
    if (!indexed_) {
      return runner_.RunNaive(c, delta_begin, delta_end, round);
    }
    // Keep a reference for the whole pass: an adaptive recompile may swap
    // the cache's entry mid-run, and a consistent order is required for
    // the binding/undo discipline of the executor.
    std::shared_ptr<const plan::ClausePlan> plan =
        plans_->PlanFor(program_, c);
    Status status = runner_.RunPlanned(c, *plan, delta_begin, delta_end,
                                       round);
    // Adaptive selectivity feedback: per DECLARED body position, how many
    // candidates were unified against this pass and how many survived.
    if (runner_.feedback_due()) {
      plans_->Feedback(c.number, runner_.candidates(), runner_.accepted());
    }
    return status;
  }

  // ---- parallel round ---------------------------------------------------

  // Per-clause window prep of one parallel round (PreparePass output plus
  // the shard count chosen per pivot).
  struct ClausePrep {
    bool runnable = false;  ///< passed PreparePass's screens
    std::vector<const std::vector<size_t>*> lists;
    std::vector<std::pair<size_t, size_t>> cut;
    std::vector<int> parts;  ///< shards per pivot (0: empty window)
  };

  // The persistent solver memo of one (clause, pivot, shard) slice,
  // reused across ALL rounds of the run (the evaluator state is fixed for
  // the run — the memo's validity contract): hit counts stay
  // scheduling-independent because each cache belongs to a slice key, not
  // a thread, and the sequential engine's own cross-round memo is matched
  // instead of being thrown away per round.
  SolveCache* SliceCache(size_t clause, size_t pivot, int shard) {
    std::unique_ptr<SolveCache>& slot =
        slice_caches_[std::make_tuple(clause, pivot, shard)];
    if (slot == nullptr) slot = std::make_unique<SolveCache>();
    return slot.get();
  }

  Status RunRoundParallel(size_t delta_begin, size_t delta_end, int round) {
    const std::vector<Clause>& clauses = program_.clauses();
    // Prefetch the round's plans on the engine thread — the same PlanFor
    // sequence (clause order, once per round) the sequential engine
    // issues, so cache evolution and hit counters match it exactly; the
    // workers then share the immutable plans read-only. The inline
    // fallback below reuses these plans instead of re-entering PlanFor,
    // for the same reason.
    if (plans_prefetched_.size() != clauses.size()) {
      plans_prefetched_.resize(clauses.size());
    }
    for (size_t ci = 0; ci < clauses.size(); ++ci) {
      if (clauses[ci].IsFact()) continue;
      plans_prefetched_[ci] = plans_->PlanFor(program_, clauses[ci]);
    }

    // Stage 1 — slice the round. Pure reads of the frozen windows (no
    // stats writes), so the go/no-go decision below cannot skew any
    // counter: a pivot is shardable when its execution order starts at
    // the pivot itself (then depth 0 is a plain candidate sequence with
    // no live binding slots), and worth sharding when its frozen window
    // clears the partition threshold.
    std::vector<ClausePrep> prep(clauses.size());
    size_t total_slices = 0;
    for (size_t ci = 0; ci < clauses.size(); ++ci) {
      const Clause& c = clauses[ci];
      if (c.IsFact()) continue;
      ClausePrep& p = prep[ci];
      p.runnable =
          runner_.PreparePass(c, delta_begin, delta_end, &p.lists, &p.cut);
      if (!p.runnable) continue;
      const plan::ClausePlan& plan = *plans_prefetched_[ci];
      p.parts.assign(c.body.size(), 0);
      for (size_t pivot = 0; pivot < c.body.size(); ++pivot) {
        if (p.cut[pivot].first == p.cut[pivot].second) continue;
        size_t window = p.cut[pivot].second - p.cut[pivot].first;
        bool shardable = plan.order(pivot).steps[0].decl_pos == pivot;
        p.parts[pivot] =
            shardable
                ? plan::PartitionCountFor(window, options_.num_threads)
                : 1;
        total_slices += static_cast<size_t>(p.parts[pivot]);
      }
    }

    // Nothing worth fanning out: run the round sequentially in place
    // (prefetched plans, same feedback and error semantics as the
    // sequential clause loop; Run()'s Capped() finishes the view).
    if (total_slices < 2) {
      for (size_t ci = 0; ci < clauses.size(); ++ci) {
        if (clauses[ci].IsFact()) continue;
        Status status = runner_.RunPlanned(
            clauses[ci], *plans_prefetched_[ci], delta_begin, delta_end,
            round);
        if (runner_.feedback_due()) {
          plans_->Feedback(clauses[ci].number, runner_.candidates(),
                           runner_.accepted());
        }
        MMV_RETURN_NOT_OK(status);
        if (Capped()) return Status::OK();
      }
      return Status::OK();
    }

    // Stage 2 — materialize sharded pivots' candidate sequences and build
    // the slice list. Depth-0 probe counters for sharded pivots are
    // counted here, once per (clause, pivot), on the engine thread.
    std::vector<std::vector<size_t>> pools;
    std::vector<RoundSlice> slices;
    slices.reserve(total_slices);
    for (size_t ci = 0; ci < clauses.size(); ++ci) {
      if (clauses[ci].IsFact() || !prep[ci].runnable) continue;
      const Clause& c = clauses[ci];
      ClausePrep& p = prep[ci];
      for (size_t pivot = 0; pivot < c.body.size(); ++pivot) {
        int parts = p.parts[pivot];
        if (parts == 0) continue;  // empty delta window
        if (parts == 1) {
          bool shardable =
              plans_prefetched_[ci]->order(pivot).steps[0].decl_pos == pivot;
          if (shardable) stats_->partition_skipped_small++;
          RoundSlice s;
          s.clause = ci;
          s.pivot = pivot;
          s.cache = SliceCache(ci, pivot, 0);
          slices.push_back(s);
          continue;
        }
        stats_->partitions_run += parts;
        pools.emplace_back();
        runner_.MaterializePivotCandidates(c, *plans_prefetched_[ci],
                                           p.lists, p.cut, pivot,
                                           delta_begin, delta_end,
                                           &pools.back());
        size_t items = pools.back().size();
        for (int shard = 0; shard < parts; ++shard) {
          auto [begin, end] = plan::PartitionRange(items, parts, shard);
          RoundSlice s;
          s.clause = ci;
          s.pivot = pivot;
          s.sharded = true;
          s.pool = pools.size() - 1;
          s.begin = begin;
          s.end = end;
          s.cache = SliceCache(ci, pivot, shard);
          slices.push_back(s);
        }
      }
    }

    // Thread-safe domain path: when the evaluator vouches for concurrent
    // pure reads the workers call it directly — lock-free — and the
    // epoch check after the fan-out polices the single-writer contract
    // that claim rests on. Anything else keeps the serialized
    // MutexDcaEvaluator fallback.
    DcaEvaluator* worker_evaluator = nullptr;
    int64_t epoch_before = 0;
    if (evaluator_ != nullptr) {
      epoch_before = evaluator_->StateEpoch();
      if (evaluator_->ConcurrentReadSafe()) {
        worker_evaluator = evaluator_;
        stats_->evaluator_clones += static_cast<int64_t>(slices.size());
      } else {
        if (locked_evaluator_ == nullptr) {
          locked_evaluator_ = std::make_unique<MutexDcaEvaluator>(evaluator_);
        }
        worker_evaluator = locked_evaluator_.get();
        stats_->mutex_evaluator_engaged +=
            static_cast<int64_t>(slices.size());
      }
    }

    std::vector<SliceOutcome> outcomes(slices.size());
    auto run_slice = [&](size_t si) {
      const RoundSlice& s = slices[si];
      const Clause& c = clauses[s.clause];
      const plan::ClausePlan& plan = *plans_prefetched_[s.clause];
      const ClausePrep& p = prep[s.clause];
      SliceOutcome& out = outcomes[si];
      // Per-slice solver memo (see SliceCache): outcomes are identical
      // to any shared memo's (fixed evaluator state), and a slice-owned
      // one keeps the pass free of cross-thread coordination. Never
      // share a memo across threads — even a caller-provided one
      // (options.solver.cache / options.solve_cache) is swapped out
      // here; SolveCache is not synchronized.
      SolverOptions solver_options = options_.solver;
      solver_options.cache = s.cache;
      // Same rule for the rejection memo: RejectCache is not synchronized,
      // so parallel slices run without one (no lookups, no recording).
      solver_options.reject_cache = nullptr;
      Solver solver(worker_evaluator, solver_options);
      VarFactory factory;
      factory.ReserveAbove(kStagingVarBase);
      StagingSink sink(options_, view_.size());
      sink.SetTarget(&out.atoms);
      ClauseRunner runner(view_, options_, &solver, &factory);
      runner.Bind(&out.stats, &sink);
      if (s.sharded) {
        out.status = runner.RunPivotSlice(c, plan, p.lists, p.cut, s.pivot,
                                          pools[s.pool], s.begin, s.end,
                                          delta_begin, delta_end, round);
      } else {
        out.status = runner.RunPivotPass(c, plan, p.lists, p.cut, s.pivot,
                                         delta_begin, delta_end, round);
      }
      out.cand = runner.candidates();
      out.acc = runner.accepted();
      out.capped = sink.capped();
      out.solver = solver.stats();
    };
    ThreadPool::Global().ParallelFor(slices.size(), options_.num_threads,
                                     run_slice);

    // The lock-free path reads the external state unguarded; a writer
    // slipping in mid-round would have produced silently inconsistent
    // derivations. Fail loudly instead of merging them.
    if (evaluator_ != nullptr && evaluator_->StateEpoch() != epoch_before) {
      return Status::Internal(
          "external state changed under a parallel fixpoint round "
          "(evaluator epoch " + std::to_string(epoch_before) + " -> " +
          std::to_string(evaluator_->StateEpoch()) +
          "); concurrent evaluation requires a quiescent external "
          "database");
    }

    // Deterministic merge: clause order, then pivot, then shard, then
    // each slice's enumeration order — the exact order the sequential
    // engine appends in. Dedup, counters and plan feedback all happen
    // here on the engine thread. Feedback sums each clause's counters
    // over its slices (a runnable clause whose windows were all empty
    // still reports zeros, like the sequential pass).
    size_t si = 0;
    for (size_t ci = 0; ci < clauses.size(); ++ci) {
      if (clauses[ci].IsFact() || !prep[ci].runnable) continue;
      size_t n = clauses[ci].body.size();
      std::vector<int64_t> cand(n, 0), acc(n, 0);
      Status clause_status = Status::OK();
      for (; si < slices.size() && slices[si].clause == ci; ++si) {
        SliceOutcome& out = outcomes[si];
        stats_->derivations_attempted += out.stats.derivations_attempted;
        stats_->unsat_pruned += out.stats.unsat_pruned;
        stats_->index_probes += out.stats.index_probes;
        stats_->ground_rejects += out.stats.ground_rejects;
        stats_->rename_skipped += out.stats.rename_skipped;
        stats_->probe_intersections += out.stats.probe_intersections;
        parallel_solver_ += out.solver;
        for (size_t pos = 0; pos < n; ++pos) {
          cand[pos] += out.cand[pos];
          acc[pos] += out.acc[pos];
        }
        // A slice cut short by the staging budget may have stopped before
        // derivations the sequential engine (capping on the DEDUPED view
        // size) would still reach; if dedup then keeps the merged view
        // under max_atoms the run would otherwise claim completeness
        // while missing atoms — flag it truncated.
        if (out.capped) stats_->truncated = true;
        if (clause_status.ok() && !out.status.ok()) {
          clause_status = out.status;
        }
        for (StagedAtom& staged : out.atoms) {
          if (view_.size() >= options_.max_atoms) {
            stats_->truncated = true;
            return Status::OK();  // Run()'s Capped() finishes the view
          }
          MergeStaged(std::move(staged));
        }
      }
      plans_->Feedback(clauses[ci].number, cand, acc);
      MMV_RETURN_NOT_OK(clause_status);
    }
    return Status::OK();
  }

  // Replays one staged derivation into the view: dedup exactly as AddAtom
  // would (the canonical key was precomputed in the worker), then rename
  // the pass-local staging variables into the engine's real factory.
  void MergeStaged(StagedAtom staged) {
    if (options_.semantics == DupSemantics::kDuplicate) {
      if (view_.HasSupport(staged.atom.support)) {
        stats_->duplicates_suppressed++;
        return;
      }
    } else {
      if (!canonical_seen_.insert(staged.key).second) {
        stats_->duplicates_suppressed++;
        return;
      }
    }
    RemapStagingVars(&staged.atom);
    stats_->atoms_created++;
    view_.Add(std::move(staged.atom));
  }

  // Maps every staging-range variable of \p atom (first-appearance order —
  // deterministic) to a fresh variable from the real factory. Distinct
  // derivations never share fresh variables, so the per-atom map is exact
  // even though different tasks reuse the same staging id range.
  void RemapStagingVars(ViewAtom* atom) {
    RemapVarsAtOrAbove(kStagingVarBase, &factory_, &atom->args,
                       &atom->constraint, &var_set_);
  }

  // Appends the atom unless it is a duplicate. The view's own indexes
  // (by-predicate postings, support hash, arg-value buckets) are maintained
  // by View::Add; duplicate detection probes them directly. Set semantics
  // keys atoms by their hashed canonical form (no per-atom string is
  // retained); \p presimplified records that (args, constraint) already
  // went through SimplifyAtom, which the canonical pass may then skip.
  bool AddAtom(ViewAtom atom, bool presimplified) {
    if (options_.semantics == DupSemantics::kDuplicate) {
      if (view_.HasSupport(atom.support)) {
        stats_->duplicates_suppressed++;
        return false;
      }
    } else {
      CanonicalKey key = CanonicalAtomKey(atom.pred, atom.args,
                                          atom.constraint, presimplified,
                                          &canonical_scratch_);
      if (!canonical_seen_.insert(key).second) {
        stats_->duplicates_suppressed++;
        return false;
      }
    }
    stats_->atoms_created++;
    view_.Add(std::move(atom));
    return true;
  }

  const Program& program_;
  DcaEvaluator* evaluator_;
  FixpointOptions options_;
  FixpointStats* stats_;
  SolveCache local_cache_;  // used when kIndexed and no caller-shared cache
  RejectCache local_reject_cache_;  // ditto, for the pairwise rejection memo
  Solver solver_;
  VarFactory factory_;
  const bool indexed_;
  const bool parallel_;
  plan::PlanCache local_plans_;  // used when no caller-shared plan cache
  plan::PlanCache* plans_;
  const plan::PlanCacheStats plan_stats_start_;  // shared-cache snapshot

  View view_;
  DirectSink direct_sink_;
  ClauseRunner runner_;  // the sequential pass executor (facts + rounds)
  VarSet var_set_;       // scratch for RemapStagingVars
  std::unordered_set<CanonicalKey, CanonicalKey::Hasher> canonical_seen_;
  std::string canonical_scratch_;

  // Parallel-round state.
  std::map<std::tuple<size_t, size_t, int>, std::unique_ptr<SolveCache>>
      slice_caches_;  // per (clause, pivot, shard), whole run
  std::vector<std::shared_ptr<const plan::ClausePlan>> plans_prefetched_;
  std::unique_ptr<MutexDcaEvaluator> locked_evaluator_;
  SolveStats parallel_solver_;  // workers' solver counters, merge order
};

}  // namespace

Result<View> MaterializeFrom(const Program& program, View initial,
                             DcaEvaluator* evaluator,
                             const FixpointOptions& options,
                             FixpointStats* stats, size_t delta_begin) {
  FixpointStats local;
  Engine engine(program, evaluator, options, stats ? stats : &local);
  return engine.Run(std::move(initial), delta_begin);
}

Result<View> Materialize(const Program& program, DcaEvaluator* evaluator,
                         const FixpointOptions& options,
                         FixpointStats* stats) {
  return MaterializeFrom(program, View(), evaluator, options, stats);
}

Status ContinueFixpoint(const Program& program, View* view,
                        DcaEvaluator* evaluator,
                        const FixpointOptions& options, FixpointStats* stats,
                        size_t delta_begin) {
  FixpointOptions continuation = options;
  continuation.derive_facts = false;
  MMV_ASSIGN_OR_RETURN(
      View result, MaterializeFrom(program, std::move(*view), evaluator,
                                   continuation, stats, delta_begin));
  *view = std::move(result);
  return Status::OK();
}

Result<JoinMode> ParseJoinMode(std::string_view text) {
  if (text == "naive") return JoinMode::kNaive;
  if (text == "indexed") return JoinMode::kIndexed;
  return Status::InvalidArgument("unknown join mode '" + std::string(text) +
                                 "' (expected 'naive' or 'indexed')");
}

Result<plan::PlanMode> ParsePlanMode(std::string_view text) {
  if (text == "declared") return plan::PlanMode::kDeclared;
  if (text == "ordered") return plan::PlanMode::kOrdered;
  return Status::InvalidArgument("unknown plan mode '" + std::string(text) +
                                 "' (expected 'declared' or 'ordered')");
}

Result<int> ParseThreads(std::string_view text) {
  int value = 0;
  bool valid = !text.empty() && text.size() <= 4;
  for (char ch : text) {
    if (ch < '0' || ch > '9') {
      valid = false;
      break;
    }
    value = value * 10 + (ch - '0');
  }
  if (!valid || value < 1 || value > 4096) {
    return Status::InvalidArgument("unknown thread count '" +
                                   std::string(text) +
                                   "' (expected an integer in [1, 4096])");
  }
  return value;
}

Result<JoinMode> JoinModeFromEnv() {
  const char* mode = std::getenv("MMV_JOIN_MODE");
  if (mode == nullptr || *mode == '\0') return JoinMode::kIndexed;
  Result<JoinMode> parsed = ParseJoinMode(mode);
  if (!parsed.ok()) {
    return Status::InvalidArgument("$MMV_JOIN_MODE: " +
                                   parsed.status().message());
  }
  return parsed;
}

Result<plan::PlanMode> PlanModeFromEnv() {
  const char* mode = std::getenv("MMV_PLAN_MODE");
  if (mode == nullptr || *mode == '\0') return plan::PlanMode::kOrdered;
  Result<plan::PlanMode> parsed = ParsePlanMode(mode);
  if (!parsed.ok()) {
    return Status::InvalidArgument("$MMV_PLAN_MODE: " +
                                   parsed.status().message());
  }
  return parsed;
}

Result<int> ThreadsFromEnv() {
  const char* threads = std::getenv("MMV_THREADS");
  if (threads == nullptr || *threads == '\0') return 1;
  Result<int> parsed = ParseThreads(threads);
  if (!parsed.ok()) {
    return Status::InvalidArgument("$MMV_THREADS: " +
                                   parsed.status().message());
  }
  return parsed;
}

Result<bool> ParseSolverFastpath(std::string_view text) {
  if (text == "on") return true;
  if (text == "off") return false;
  return Status::InvalidArgument("unknown solver fastpath mode '" +
                                 std::string(text) +
                                 "' (expected 'on' or 'off')");
}

Result<bool> SolverFastpathFromEnv() {
  const char* mode = std::getenv("MMV_SOLVER_FASTPATH");
  if (mode == nullptr || *mode == '\0') return true;
  Result<bool> parsed = ParseSolverFastpath(mode);
  if (!parsed.ok()) {
    return Status::InvalidArgument("$MMV_SOLVER_FASTPATH: " +
                                   parsed.status().message());
  }
  return parsed;
}

}  // namespace mmv
