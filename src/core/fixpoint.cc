#include "core/fixpoint.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "constraint/canonical.h"
#include "constraint/simplify.h"
#include "plan/plan_cache.h"

namespace mmv {

namespace {

// Seminaive materialization engine for one Materialize call.
//
// Two join strategies share one Derive tail (constraint assembly, simplify,
// solve, dedup), so they differ only in which candidate tuples reach it:
//
//  - kNaive enumerates the full per-predicate cross product and lets the
//    tail reject contradictory tuples. Kept as the differential oracle.
//  - kIndexed executes a compiled plan::ClausePlan (from the shared
//    PlanCache): body atoms run in the plan's per-pivot selectivity order,
//    each step probes the view's arg-value index through the plan's
//    precomputed probe positions (picking the smallest of several ground
//    buckets under PlanMode::kOrdered), and the incremental substitution
//    threads through dense binding slots so any ground mismatch rejects
//    the candidate before deeper steps are enumerated. Tuples that survive
//    with every argument ground and every constraint trivially true skip
//    the clause rename altogether: the derived atom is just the
//    instantiated head with constraint true, exactly what the
//    rename+simplify pipeline would produce.
class Engine {
 public:
  Engine(const Program& program, DcaEvaluator* evaluator,
         const FixpointOptions& options, FixpointStats* stats)
      : program_(program),
        options_(options),
        stats_(stats),
        solver_(evaluator, SolverOptionsFor(options, &local_cache_)),
        factory_(program.factory()),
        // Early ground rejection is behavior-preserving only when the
        // engine provably drops statically contradictory joins: simplify
        // detects every ground `=` conflict and pruning (or T_P's
        // solvability requirement, which pruning subsumes here) drops it.
        // Without simplify, a kWp run (or a budget-starved kTp solve)
        // could legitimately keep such an atom — fall back to the oracle.
        indexed_(options.join_mode == JoinMode::kIndexed &&
                 options.simplify && options.prune_static_contradictions),
        local_plans_(options.plan_mode),
        plans_(options.plan_cache != nullptr &&
                       options.plan_cache->mode() == options.plan_mode
                   ? options.plan_cache
                   : &local_plans_),
        plan_stats_start_(plans_->stats()) {}

  Result<View> Run(View initial, size_t delta_begin) {
    // Seed with the initial atoms (MaterializeFrom / DRed rederivation).
    // Under duplicate semantics the view moves in wholesale — its indexes
    // (by-predicate postings, support hash) arrive ready-built, and seed
    // supports are unique identities already (Lemma 1). Set semantics has
    // no such guarantee (maintenance can collapse distinct atoms onto one
    // canonical form), so seeds are re-added one by one to suppress
    // canonical duplicates, exactly like derived atoms.
    factory_.ReserveAbove(initial.MaxVarId());
    if (options_.semantics == DupSemantics::kSet) {
      VarId seed_bound = initial.MaxVarId();
      std::vector<ViewAtom> seeds = initial.TakeAtoms();
      for (ViewAtom& a : seeds) AddAtom(std::move(a), false);
      view_.NoteExternalVars(seed_bound);  // TakeAtoms reset initial's mark
    } else {
      stats_->atoms_created += initial.size();
      view_ = std::move(initial);
    }
    delta_begin = std::min(delta_begin, view_.size());

    // Round 0: constrained facts (empty-body clauses).
    if (options_.derive_facts) {
      for (const Clause& c : program_.clauses()) {
        if (!c.IsFact()) continue;
        MMV_RETURN_NOT_OK(Derive(c, {}, 0));
        if (Capped()) return Finish();
      }
    }

    int round = 0;
    while (true) {
      size_t delta_end = view_.size();
      if (delta_begin == delta_end) break;  // no new atoms last round
      ++round;
      if (round > options_.max_iterations) {
        stats_->truncated = true;
        break;
      }
      stats_->iterations = round;
      size_t size_at_round_start = view_.size();

      for (const Clause& c : program_.clauses()) {
        if (c.IsFact()) continue;
        MMV_RETURN_NOT_OK(
            indexed_ ? DeriveWithClausePlanned(c, delta_begin, delta_end, round)
                     : DeriveWithClause(c, delta_begin, delta_end, round));
        if (Capped()) return Finish();
      }
      delta_begin = size_at_round_start;
    }
    return Finish();
  }

 private:
  // A ground binding: which chosen instance argument bound the slot. Atom
  // indices stay valid across view appends (unlike pointers into the atom
  // vector, which reallocates).
  struct BoundRef {
    uint32_t atom = kNoAtom;
    uint32_t pos = 0;
  };
  static constexpr uint32_t kNoAtom = 0xffffffffu;

  static SolverOptions SolverOptionsFor(const FixpointOptions& o,
                                        SolveCache* local) {
    SolverOptions s = o.solver;
    if (o.join_mode == JoinMode::kIndexed && s.cache == nullptr) {
      s.cache = o.solve_cache != nullptr ? o.solve_cache : local;
    }
    return s;
  }

  bool Capped() {
    if (view_.size() >= options_.max_atoms) {
      stats_->truncated = true;
      return true;
    }
    return false;
  }

  View Finish() {
    stats_->solver = solver_.stats();
    // Attribute this run's share of the (possibly shared) plan cache's
    // activity: the counters are monotone, so the delta since construction
    // is exactly what this run caused.
    const plan::PlanCacheStats& ps = plans_->stats();
    stats_->plan_reorders += ps.reorders - plan_stats_start_.reorders;
    stats_->plan_cache_hits += ps.cache_hits - plan_stats_start_.cache_hits;
    return std::move(view_);
  }

  // ---- kNaive: the legacy nested-loop join (differential oracle) --------

  // Enumerates body-atom combinations for clause c with the standard
  // seminaive pivot trick: position `pivot` ranges over the newest delta,
  // earlier positions over strictly older atoms, later positions over
  // everything up to delta_end.
  Status DeriveWithClause(const Clause& c, size_t delta_begin,
                          size_t delta_end, int round) {
    size_t n = c.body.size();
    std::vector<const std::vector<size_t>*> lists(n);
    for (size_t i = 0; i < n; ++i) {
      const std::vector<size_t>& list = view_.AtomsFor(c.body[i].pred);
      if (list.empty()) return Status::OK();  // no candidates at all
      lists[i] = &list;
    }
    std::vector<size_t> chosen(n);
    for (size_t pivot = 0; pivot < n; ++pivot) {
      MMV_RETURN_NOT_OK(
          Recurse(c, lists, pivot, 0, delta_begin, delta_end, round, &chosen));
      if (view_.size() >= options_.max_atoms) break;
    }
    return Status::OK();
  }

  Status Recurse(const Clause& c,
                 const std::vector<const std::vector<size_t>*>& lists,
                 size_t pivot, size_t pos, size_t delta_begin,
                 size_t delta_end, int round, std::vector<size_t>* chosen) {
    if (pos == c.body.size()) {
      return Derive(c, *chosen, round);
    }
    // Bounds for this position.
    size_t lo_limit, hi_limit;
    if (pos < pivot) {
      lo_limit = 0;
      hi_limit = delta_begin;
    } else if (pos == pivot) {
      lo_limit = delta_begin;
      hi_limit = delta_end;
    } else {
      lo_limit = 0;
      hi_limit = delta_end;
    }
    // Work with positions, not iterators: Derive() appends to the index
    // vectors (recursive rules), which may reallocate their buffers. The
    // positional window stays valid because appends only push_back values
    // >= delta_end, beyond hi_limit.
    const std::vector<size_t>& idx = *lists[pos];  // ascending atom indices
    size_t lo_pos = static_cast<size_t>(
        std::lower_bound(idx.begin(), idx.end(), lo_limit) - idx.begin());
    size_t hi_pos = static_cast<size_t>(
        std::lower_bound(idx.begin(), idx.end(), hi_limit) - idx.begin());
    for (size_t i = lo_pos; i < hi_pos; ++i) {
      (*chosen)[pos] = (*lists[pos])[i];
      MMV_RETURN_NOT_OK(Recurse(c, lists, pivot, pos + 1, delta_begin,
                                delta_end, round, chosen));
      if (view_.size() >= options_.max_atoms) return Status::OK();
    }
    return Status::OK();
  }

  // ---- kIndexed: constraint-aware plan executor -------------------------

  const Value& Resolved(int slot) const {
    const BoundRef& b = bound_[static_cast<size_t>(slot)];
    return view_.atoms()[b.atom].args[b.pos].constant();
  }

  static size_t LowerBoundPos(const std::vector<size_t>& idx, size_t limit) {
    return static_cast<size_t>(
        std::lower_bound(idx.begin(), idx.end(), limit) - idx.begin());
  }

  Status DeriveWithClausePlanned(const Clause& c, size_t delta_begin,
                                 size_t delta_end, int round) {
    size_t n = c.body.size();
    // Keep a reference for the whole pass: an adaptive recompile may swap
    // the cache's entry mid-run, and a consistent order is required for
    // the binding/undo discipline below.
    std::shared_ptr<const plan::ClausePlan> plan = plans_->PlanFor(program_, c);
    std::vector<const std::vector<size_t>*> lists(n);
    // Hoisted seminaive windows: the posting-list positions of delta_begin
    // and delta_end per body position, computed once per clause instead of
    // per recursion step. Appends during derivation only push indices
    // >= delta_end, so the cut positions stay correct throughout.
    std::vector<std::pair<size_t, size_t>> cut(n);
    for (size_t i = 0; i < n; ++i) {
      const std::vector<size_t>& list = view_.AtomsFor(c.body[i].pred);
      if (list.empty()) return Status::OK();  // no candidates at all
      lists[i] = &list;
      cut[i] = {LowerBoundPos(list, delta_begin),
                LowerBoundPos(list, delta_end)};
    }
    bound_.assign(static_cast<size_t>(plan->num_slots), BoundRef{});
    undo_.clear();
    cand_.assign(n, 0);
    acc_.assign(n, 0);
    std::vector<size_t> chosen(n);
    Status status = Status::OK();
    for (size_t pivot = 0; pivot < n; ++pivot) {
      if (cut[pivot].first == cut[pivot].second) continue;  // empty delta
      status = RecursePlanned(c, *plan, plan->orders[pivot], lists, cut,
                              pivot, 0, delta_begin, delta_end, round,
                              &chosen);
      if (!status.ok()) break;
      if (view_.size() >= options_.max_atoms) break;
    }
    // Adaptive selectivity feedback: per DECLARED body position, how many
    // candidates were unified against this pass and how many survived.
    plans_->Feedback(c.number, cand_, acc_);
    return status;
  }

  Status RecursePlanned(const Clause& c, const plan::ClausePlan& plan,
                        const plan::PivotOrder& order,
                        const std::vector<const std::vector<size_t>*>& lists,
                        const std::vector<std::pair<size_t, size_t>>& cut,
                        size_t pivot, size_t depth, size_t delta_begin,
                        size_t delta_end, int round,
                        std::vector<size_t>* chosen) {
    if (depth == c.body.size()) {
      return DerivePlanned(c, plan, *chosen, round);
    }
    // The seminaive window is keyed by the DECLARED position (so each
    // combination is enumerated under exactly one pivot, whatever the
    // execution order); only the nesting order is the plan's.
    size_t pos = order.steps[depth].decl_pos;
    size_t lo_limit = pos == pivot ? delta_begin : 0;
    size_t hi_limit = pos < pivot ? delta_begin : delta_end;
    const std::vector<plan::PlanArg>& pattern = plan.body[pos];

    // Probe selection over the plan's precomputed candidate positions (the
    // ones that CAN be ground here: clause constants, slots bound by an
    // earlier step). kDeclared takes the first actually-ground one; with
    // multi_probe every ground bucket is weighed and the smallest is
    // enumerated. Sound candidates are the atoms whose argument there is
    // the same constant — or not a constant at all (a variable instance
    // argument can unify with any value), hence the bucket-pair merge.
    const std::vector<size_t>* hits = nullptr;
    const std::vector<size_t>* vars = nullptr;
    // Seminaive windows of the winning bucket pair, computed once during
    // weighing and reused for the enumeration below.
    size_t win_i = 0, win_i_end = 0, win_j = 0, win_j_end = 0;
    bool have_windows = false;
    size_t best_size = 0;
    int ground_positions = 0;
    for (uint16_t k : order.steps[depth].probe_positions) {
      const plan::PlanArg& a = pattern[k];
      const Value* v;
      if (a.is_const) {
        v = &a.value;
      } else if (bound_[static_cast<size_t>(a.slot)].atom != kNoAtom) {
        v = &Resolved(a.slot);
      } else {
        continue;
      }
      ++ground_positions;
      const std::vector<size_t>& h =
          view_.AtomsForArgValue(c.body[pos].pred, k, *v);
      const std::vector<size_t>& w =
          view_.AtomsForNonConstArg(c.body[pos].pred, k);
      if (!plan.multi_probe) {
        hits = &h;
        vars = &w;
        break;
      }
      size_t i = LowerBoundPos(h, lo_limit);
      size_t i_end = LowerBoundPos(h, hi_limit);
      size_t j = LowerBoundPos(w, lo_limit);
      size_t j_end = LowerBoundPos(w, hi_limit);
      size_t size = (i_end - i) + (j_end - j);
      if (hits == nullptr || size < best_size) {
        hits = &h;
        vars = &w;
        best_size = size;
        win_i = i;
        win_i_end = i_end;
        win_j = j;
        win_j_end = j_end;
        have_windows = true;
      }
    }
    if (ground_positions >= 2) stats_->probe_intersections++;

    if (hits != nullptr) {
      stats_->index_probes++;
      // Merge the two ascending lists within [lo_limit, hi_limit) so the
      // candidate order matches the oracle's (ascending atom index).
      size_t i = have_windows ? win_i : LowerBoundPos(*hits, lo_limit);
      size_t i_end = have_windows ? win_i_end : LowerBoundPos(*hits, hi_limit);
      size_t j = have_windows ? win_j : LowerBoundPos(*vars, lo_limit);
      size_t j_end = have_windows ? win_j_end : LowerBoundPos(*vars, hi_limit);
      while (i < i_end || j < j_end) {
        size_t idx;
        if (j >= j_end || (i < i_end && (*hits)[i] < (*vars)[j])) {
          idx = (*hits)[i++];
        } else {
          idx = (*vars)[j++];
        }
        MMV_RETURN_NOT_OK(TryCandidate(c, plan, order, lists, cut, pivot,
                                       depth, delta_begin, delta_end, round,
                                       chosen, idx));
        if (view_.size() >= options_.max_atoms) return Status::OK();
      }
      return Status::OK();
    }

    const std::vector<size_t>& list = *lists[pos];
    size_t begin = pos == pivot ? cut[pos].first : 0;
    size_t end = pos < pivot ? cut[pos].first : cut[pos].second;
    for (size_t i = begin; i < end; ++i) {
      MMV_RETURN_NOT_OK(TryCandidate(c, plan, order, lists, cut, pivot,
                                     depth, delta_begin, delta_end, round,
                                     chosen, list[i]));
      if (view_.size() >= options_.max_atoms) return Status::OK();
    }
    return Status::OK();
  }

  // Unifies the candidate's ground arguments against the pattern: mismatch
  // rejects the whole subtree below this step; a first ground sighting
  // of a pattern variable binds its slot (undone on backtrack).
  Status TryCandidate(const Clause& c, const plan::ClausePlan& plan,
                      const plan::PivotOrder& order,
                      const std::vector<const std::vector<size_t>*>& lists,
                      const std::vector<std::pair<size_t, size_t>>& cut,
                      size_t pivot, size_t depth, size_t delta_begin,
                      size_t delta_end, int round, std::vector<size_t>* chosen,
                      size_t idx) {
    size_t pos = order.steps[depth].decl_pos;
    const ViewAtom& inst = view_.atoms()[idx];
    const std::vector<plan::PlanArg>& pattern = plan.body[pos];
    size_t undo_mark = undo_.size();
    bool ok = true;
    cand_[pos]++;
    if (inst.args.size() == pattern.size()) {
      for (size_t k = 0; k < pattern.size() && ok; ++k) {
        const Term& t = inst.args[k];
        if (!t.is_const()) continue;  // a real Eq literal decides later
        const plan::PlanArg& a = pattern[k];
        if (a.is_const) {
          ok = a.value == t.constant();
        } else if (a.slot >= 0) {
          BoundRef& b = bound_[a.slot];
          if (b.atom == kNoAtom) {
            b = BoundRef{static_cast<uint32_t>(idx),
                         static_cast<uint32_t>(k)};
            undo_.push_back(a.slot);
          } else {
            ok = Resolved(a.slot) == t.constant();
          }
        }
      }
    }
    Status status = Status::OK();
    if (ok) {
      acc_[pos]++;
      (*chosen)[pos] = idx;
      status = RecursePlanned(c, plan, order, lists, cut, pivot, depth + 1,
                              delta_begin, delta_end, round, chosen);
    } else {
      stats_->ground_rejects++;
    }
    while (undo_.size() > undo_mark) {
      bound_[static_cast<size_t>(undo_.back())] = BoundRef{};
      undo_.pop_back();
    }
    return status;
  }

  // True when the surviving tuple is fully ground: every instance argument
  // a constant (each one either matched a ground pattern term or bound its
  // slot), every instance constraint trivially true. With the clause
  // constraint also true, the rename + Eq-chain + simplify pipeline would
  // produce exactly (instantiated head, true) — so build that directly.
  bool FastEligible(const plan::ClausePlan& plan,
                    const std::vector<size_t>& chosen) const {
    for (size_t i = 0; i < chosen.size(); ++i) {
      const ViewAtom& inst = view_.atoms()[chosen[i]];
      if (!inst.constraint.is_true()) return false;
      const std::vector<plan::PlanArg>& pattern = plan.body[i];
      if (inst.args.size() != pattern.size()) return false;
      for (size_t k = 0; k < pattern.size(); ++k) {
        if (!inst.args[k].is_const()) return false;
        const plan::PlanArg& a = pattern[k];
        if (!a.is_const && (a.slot < 0 || bound_[a.slot].atom == kNoAtom)) {
          return false;
        }
      }
    }
    return true;
  }

  Status DerivePlanned(const Clause& c, const plan::ClausePlan& plan,
                       const std::vector<size_t>& chosen, int round) {
    if (!plan.constraint_true || !FastEligible(plan, chosen)) {
      return Derive(c, chosen, round);
    }
    stats_->derivations_attempted++;
    stats_->rename_skipped++;
    ViewAtom atom;
    atom.pred = c.head_pred;
    atom.args.reserve(plan.head.size());
    // slot -> fresh variable for unsafe head variables, so repeated
    // occurrences of one variable share one fresh id (p(X, X) stays the
    // diagonal, not the cross product).
    std::vector<std::pair<int, VarId>> unsafe_fresh;
    for (const plan::PlanArg& h : plan.head) {
      if (h.is_const) {
        atom.args.push_back(Term::Const(h.value));
      } else if (bound_[h.slot].atom != kNoAtom) {
        atom.args.push_back(Term::Const(Resolved(h.slot)));
      } else {
        // Head variable not bound through the body ("unsafe"): the rename
        // pipeline would map every occurrence to one fresh variable.
        VarId fresh = -1;
        for (const auto& [slot, v] : unsafe_fresh) {
          if (slot == h.slot) {
            fresh = v;
            break;
          }
        }
        if (fresh < 0) {
          fresh = factory_.Fresh();
          unsafe_fresh.emplace_back(h.slot, fresh);
        }
        atom.args.push_back(Term::Var(fresh));
      }
    }
    std::vector<Support> children;
    children.reserve(chosen.size());
    for (size_t i : chosen) children.push_back(view_.atoms()[i].support);
    atom.support = Support(c.number, std::move(children));
    atom.depth = round;
    AddAtom(std::move(atom), /*presimplified=*/true);
    return Status::OK();
  }

  // ---- shared derivation tail -------------------------------------------

  // Executes one derivation: clause c applied to the chosen instances.
  Status Derive(const Clause& c, const std::vector<size_t>& chosen,
                int round) {
    stats_->derivations_attempted++;
    Clause renamed = c.Rename(&factory_);
    Constraint acc = renamed.constraint;
    std::vector<Support> children;
    children.reserve(chosen.size());

    for (size_t i = 0; i < chosen.size(); ++i) {
      const ViewAtom& inst = view_.atoms()[chosen[i]];
      const TermVec& pattern = renamed.body[i].args;
      if (inst.args.size() != pattern.size()) {
        return Status::InvalidArgument(
            "arity mismatch joining " + inst.pred.name() + "/" +
            std::to_string(inst.args.size()) + " against clause " +
            std::to_string(c.number));
      }
      // Standardize the instance apart (T_P: "which share no variables").
      var_set_.Clear();
      var_set_.AddTerms(inst.args);
      inst.constraint.CollectVariables(&var_set_);
      Substitution renaming = FreshRenaming(var_set_.vars(), &factory_);
      TermVec inst_args = renaming.Apply(inst.args);
      acc.AndWith(renaming.Apply(inst.constraint));
      for (size_t k = 0; k < pattern.size(); ++k) {
        acc.Add(Primitive::Eq(inst_args[k], pattern[k]));
      }
      children.push_back(inst.support);
    }

    TermVec head = renamed.head_args;
    Constraint constraint = std::move(acc);
    if (options_.simplify) {
      SimplifiedAtom s = SimplifyAtom(head, constraint);
      head = std::move(s.head);
      constraint = std::move(s.constraint);
    }
    if (constraint.is_false() && options_.prune_static_contradictions) {
      stats_->unsat_pruned++;
      return Status::OK();
    }
    if (options_.op == OperatorKind::kTp && !constraint.is_false()) {
      SolveOutcome o = solver_.Solve(constraint);
      if (o == SolveOutcome::kError) return solver_.last_status();
      if (o == SolveOutcome::kUnsat) {
        stats_->unsat_pruned++;
        return Status::OK();
      }
    } else if (options_.op == OperatorKind::kTp && constraint.is_false()) {
      stats_->unsat_pruned++;
      return Status::OK();
    }

    ViewAtom atom;
    atom.pred = renamed.head_pred;
    atom.args = std::move(head);
    atom.constraint = std::move(constraint);
    atom.support = Support(c.number, std::move(children));
    atom.depth = round;
    AddAtom(std::move(atom), /*presimplified=*/options_.simplify);
    return Status::OK();
  }

  // Appends the atom unless it is a duplicate. The view's own indexes
  // (by-predicate postings, support hash, arg-value buckets) are maintained
  // by View::Add; duplicate detection probes them directly. Set semantics
  // keys atoms by their hashed canonical form (no per-atom string is
  // retained); \p presimplified records that (args, constraint) already
  // went through SimplifyAtom, which the canonical pass may then skip.
  bool AddAtom(ViewAtom atom, bool presimplified) {
    if (options_.semantics == DupSemantics::kDuplicate) {
      if (view_.HasSupport(atom.support)) {
        stats_->duplicates_suppressed++;
        return false;
      }
    } else {
      CanonicalKey key = CanonicalAtomKey(atom.pred, atom.args,
                                          atom.constraint, presimplified,
                                          &canonical_scratch_);
      if (!canonical_seen_.insert(key).second) {
        stats_->duplicates_suppressed++;
        return false;
      }
    }
    stats_->atoms_created++;
    view_.Add(std::move(atom));
    return true;
  }

  const Program& program_;
  FixpointOptions options_;
  FixpointStats* stats_;
  SolveCache local_cache_;  // used when kIndexed and no caller-shared cache
  Solver solver_;
  VarFactory factory_;
  const bool indexed_;
  plan::PlanCache local_plans_;  // used when no caller-shared plan cache
  plan::PlanCache* plans_;
  const plan::PlanCacheStats plan_stats_start_;  // shared-cache snapshot

  View view_;
  std::vector<BoundRef> bound_;                // per plan slot
  std::vector<int> undo_;                      // bound slots, LIFO
  std::vector<int64_t> cand_, acc_;            // per decl body position:
                                               // feedback for the cache
  VarSet var_set_;                             // scratch for Derive
  std::unordered_set<CanonicalKey, CanonicalKey::Hasher> canonical_seen_;
  std::string canonical_scratch_;
};

}  // namespace

Result<View> MaterializeFrom(const Program& program, View initial,
                             DcaEvaluator* evaluator,
                             const FixpointOptions& options,
                             FixpointStats* stats, size_t delta_begin) {
  FixpointStats local;
  Engine engine(program, evaluator, options, stats ? stats : &local);
  return engine.Run(std::move(initial), delta_begin);
}

Result<View> Materialize(const Program& program, DcaEvaluator* evaluator,
                         const FixpointOptions& options,
                         FixpointStats* stats) {
  return MaterializeFrom(program, View(), evaluator, options, stats);
}

Status ContinueFixpoint(const Program& program, View* view,
                        DcaEvaluator* evaluator,
                        const FixpointOptions& options, FixpointStats* stats,
                        size_t delta_begin) {
  FixpointOptions continuation = options;
  continuation.derive_facts = false;
  MMV_ASSIGN_OR_RETURN(
      View result, MaterializeFrom(program, std::move(*view), evaluator,
                                   continuation, stats, delta_begin));
  *view = std::move(result);
  return Status::OK();
}

Result<JoinMode> ParseJoinMode(std::string_view text) {
  if (text == "naive") return JoinMode::kNaive;
  if (text == "indexed") return JoinMode::kIndexed;
  return Status::InvalidArgument("unknown join mode '" + std::string(text) +
                                 "' (expected 'naive' or 'indexed')");
}

Result<plan::PlanMode> ParsePlanMode(std::string_view text) {
  if (text == "declared") return plan::PlanMode::kDeclared;
  if (text == "ordered") return plan::PlanMode::kOrdered;
  return Status::InvalidArgument("unknown plan mode '" + std::string(text) +
                                 "' (expected 'declared' or 'ordered')");
}

Result<JoinMode> JoinModeFromEnv() {
  const char* mode = std::getenv("MMV_JOIN_MODE");
  if (mode == nullptr || *mode == '\0') return JoinMode::kIndexed;
  Result<JoinMode> parsed = ParseJoinMode(mode);
  if (!parsed.ok()) {
    return Status::InvalidArgument("$MMV_JOIN_MODE: " +
                                   parsed.status().message());
  }
  return parsed;
}

Result<plan::PlanMode> PlanModeFromEnv() {
  const char* mode = std::getenv("MMV_PLAN_MODE");
  if (mode == nullptr || *mode == '\0') return plan::PlanMode::kOrdered;
  Result<plan::PlanMode> parsed = ParsePlanMode(mode);
  if (!parsed.ok()) {
    return Status::InvalidArgument("$MMV_PLAN_MODE: " +
                                   parsed.status().message());
  }
  return parsed;
}

}  // namespace mmv
