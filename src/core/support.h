// Supports (paper Section 3.1.2): the derivation index of a constraint atom.
//
//   spt(A) = <Cn(C)>                                  for base derivations
//   spt(A) = <Cn(C), spt(B1), ..., spt(Bk)>           otherwise
//
// Lemma 1: equal supports identify the same constraint atom in T_P^w, so
// supports serve as derivation identities for duplicate semantics, and the
// StDel algorithm propagates deletions by matching supports of direct body
// subderivations.

#ifndef MMV_CORE_SUPPORT_H_
#define MMV_CORE_SUPPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"

namespace mmv {

/// \brief A derivation tree of clause numbers.
///
/// Immutable after construction. The subtree vector is shared
/// (copy-on-never: nothing mutates a built support) and the structural
/// hash is computed once at construction, so copying a support and
/// hashing it are O(1) regardless of derivation depth — the costs that
/// otherwise dominate deep chain derivations.
class Support {
 public:
  Support() : clause_(-1), hash_(LeafHash(-1)) {}

  /// \brief Leaf support <Cn(C)> for a constraint-fact derivation.
  explicit Support(int clause) : clause_(clause), hash_(LeafHash(clause)) {}

  /// \brief Interior support <Cn(C), children...>.
  Support(int clause, std::vector<Support> children)
      : clause_(clause), hash_(LeafHash(clause)) {
    if (!children.empty()) {
      for (const Support& c : children) hash_ = HashCombine(hash_, c.hash_);
      children_ =
          std::make_shared<const std::vector<Support>>(std::move(children));
    }
  }

  /// \brief The clause number Cn(C) at the root.
  int clause() const { return clause_; }

  /// \brief Sub-supports of the body atoms, in body order.
  const std::vector<Support>& children() const {
    static const std::vector<Support> kNone;
    return children_ ? *children_ : kNone;
  }

  /// \brief Total number of nodes (for overhead accounting, E6).
  size_t NodeCount() const;

  /// \brief Depth of the tree (a leaf has depth 1).
  size_t Depth() const;

  /// \brief Smallest clause number anywhere in the tree. Externally inserted
  /// facts carry negative clause numbers at their leaves, so batch
  /// maintenance seeds its external-support counter below MinClause() — the
  /// root alone misses external leaves buried inside derived supports.
  int MinClause() const;

  /// \brief True iff this is an external-fact support: a leaf whose clause
  /// number is negative (no deriving program clause).
  bool IsExternal() const { return clause_ < 0 && children().empty(); }

  bool operator==(const Support& other) const;
  bool operator!=(const Support& other) const { return !(*this == other); }

  /// \brief Structural hash, precomputed at construction. O(1).
  size_t Hash() const { return hash_; }

  /// \brief Renders <4, <2, <3>>> like the paper's examples.
  std::string ToString() const;

 private:
  static size_t LeafHash(int clause) {
    return HashCombine(0x737074, static_cast<size_t>(clause));
  }

  int clause_;
  size_t hash_;
  std::shared_ptr<const std::vector<Support>> children_;  // null for leaves
};

}  // namespace mmv

#endif  // MMV_CORE_SUPPORT_H_
