#include "core/view_atom.h"

#include <sstream>

namespace mmv {

std::string ViewAtom::ToString(const VarNames* names) const {
  std::ostringstream os;
  os << PrintAtom(pred, args, constraint, names);
  os << "  " << support.ToString();
  return os.str();
}

size_t ViewAtom::ApproxBytes() const {
  size_t bytes = sizeof(ViewAtom);
  bytes += args.size() * sizeof(Term);
  bytes += constraint.LiteralCount() * sizeof(Primitive);
  bytes += support.NodeCount() * (sizeof(int) + sizeof(std::vector<Support>));
  return bytes;
}

}  // namespace mmv
