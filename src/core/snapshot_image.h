// SnapshotImage: the immutable, structurally shared view image that
// snapshot publication and checkpointing both consume.
//
// An image is the view's atoms grouped into per-predicate SEGMENTS (each a
// shared_ptr'd vector of atom copies in posting order) plus a run-length
// encoding of the live view's global atom order. Consecutive images share
// every segment the intervening batch did not touch: View::ExtractImage
// copies only the predicates its dirty set names and re-points the rest at
// the previous image's segments, so extraction is O(delta), not O(view).
//
// Why the global order is part of the image: enumeration order is
// semantically load-bearing downstream — set-semantics support
// representatives follow it, so a checkpoint serialized in a different
// order would recover a view that DIVERGES from the live one under
// continued maintenance. The order is stored as chunks of (pred, count)
// runs; within one predicate the global order equals segment order, so a
// run carries no offsets — readers keep one cursor per predicate.
//
// Images are plain immutable data: safe to read from any thread, pinned
// alive by shared_ptr, never mutated after construction.

#ifndef MMV_CORE_SNAPSHOT_IMAGE_H_
#define MMV_CORE_SNAPSHOT_IMAGE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "core/view_atom.h"

namespace mmv {

struct SnapshotImage;

/// \brief A reader's reference: keeps every shared segment alive.
using SnapshotImageHandle = std::shared_ptr<const SnapshotImage>;

struct SnapshotImage {
  /// One predicate's atoms, in posting-list (ascending live-index) order.
  ///
  /// Carries a lazily computed content fingerprint: segment SHARING is
  /// proven by pointer identity, but a maintenance pass that re-materializes
  /// a predicate with unchanged content (e.g. a fully-canceling burst)
  /// breaks pointer equality while the bytes stayed the same. Consumers
  /// that diff segments across epochs (delta checkpoints) hash the
  /// canonical serialization once per segment, cache it here, and fall
  /// back to a byte compare only on fingerprint equality — so an
  /// equal-content segment costs one serialization instead of a frame
  /// member. 0 means "not computed yet"; the cache is atomic because
  /// images are immutable shared data read from any thread, and it is
  /// deliberately NOT copied (a copy's contents may diverge afterwards).
  struct Segment : std::vector<ViewAtom> {
    using std::vector<ViewAtom>::vector;
    Segment() = default;
    Segment(const Segment& other) : std::vector<ViewAtom>(other) {}
    Segment(Segment&& other) noexcept
        : std::vector<ViewAtom>(std::move(other)) {}
    Segment& operator=(const Segment& other) {
      std::vector<ViewAtom>::operator=(other);
      fingerprint.store(0, std::memory_order_relaxed);
      return *this;
    }
    Segment& operator=(Segment&& other) noexcept {
      std::vector<ViewAtom>::operator=(std::move(other));
      fingerprint.store(0, std::memory_order_relaxed);
      return *this;
    }
    mutable std::atomic<uint64_t> fingerprint{0};
  };
  using SegmentHandle = std::shared_ptr<const Segment>;

  /// One run of the global atom order: the next \p count atoms belong to
  /// \p pred, continuing wherever that predicate's cursor stands.
  struct OrderRun {
    Symbol pred;
    uint64_t count = 0;
  };
  /// Runs are grouped into shared chunks so an append-only batch extends
  /// the order by ONE new chunk while sharing every earlier chunk with the
  /// previous image (chunk pointer equality is also how delta checkpoints
  /// find the unchanged order prefix).
  struct OrderChunk {
    std::shared_ptr<const std::vector<OrderRun>> runs;
    uint64_t atoms = 0;  ///< total atom count across this chunk's runs
  };

  std::unordered_map<Symbol, SegmentHandle> segments;
  std::vector<OrderChunk> order;
  uint64_t atom_count = 0;

  size_t size() const { return static_cast<size_t>(atom_count); }
  bool empty() const { return atom_count == 0; }

  /// \brief This predicate's atoms (empty if absent). O(1).
  const Segment& AtomsFor(Symbol pred) const {
    static const Segment kEmpty;
    auto it = segments.find(pred);
    return it == segments.end() ? kEmpty : *it->second;
  }

  /// \brief The shared segment itself, or null if absent — pointer
  /// identity across epochs proves sharing (tests) and drives the delta
  /// checkpoint's changed-predicate diff.
  SegmentHandle SegmentFor(Symbol pred) const {
    auto it = segments.find(pred);
    return it == segments.end() ? nullptr : it->second;
  }

  /// \brief Visits every atom in the image's global order. \p visit
  /// returns false to stop early (budgeted enumeration). Returns false iff
  /// the visit was stopped.
  template <typename Visitor>
  bool ForEachAtom(Visitor visit) const {
    std::unordered_map<Symbol, size_t> cursor;
    const Segment* seg = nullptr;
    Symbol seg_pred;
    for (const OrderChunk& chunk : order) {
      for (const OrderRun& run : *chunk.runs) {
        if (seg == nullptr || !(seg_pred == run.pred)) {
          seg_pred = run.pred;
          seg = &AtomsFor(run.pred);
        }
        size_t& at = cursor[run.pred];
        for (uint64_t i = 0; i < run.count; ++i) {
          if (!visit((*seg)[at++])) return false;
        }
      }
    }
    return true;
  }
};

}  // namespace mmv

#endif  // MMV_CORE_SNAPSHOT_IMAGE_H_
