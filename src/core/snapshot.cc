#include "core/snapshot.h"

#include <utility>

namespace mmv {

namespace {

SnapshotHandle EmptySnapshot() {
  auto s = std::make_shared<ViewSnapshot>();
  s->image = std::make_shared<SnapshotImage>();
  return s;
}

}  // namespace

SnapshotStore::SnapshotStore() : current_(EmptySnapshot()) {}

SnapshotHandle SnapshotStore::Pin() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t SnapshotStore::PublishImage(SnapshotImageHandle image) {
  // Image extraction already happened OUTSIDE the lock (and was O(delta)
  // thanks to structural sharing); the swap itself is two pointer writes,
  // so readers keep pinning at full speed throughout.
  auto next = std::make_shared<ViewSnapshot>();
  next->image = image != nullptr ? std::move(image)
                                 : std::make_shared<SnapshotImage>();
  std::lock_guard<std::mutex> lock(mu_);
  next->epoch = current_->epoch + 1;
  current_ = std::move(next);
  return current_->epoch;
}

void SnapshotStore::RestoreAtImage(SnapshotImageHandle image,
                                   uint64_t epoch) {
  auto next = std::make_shared<ViewSnapshot>();
  next->image = image != nullptr ? std::move(image)
                                 : std::make_shared<SnapshotImage>();
  next->epoch = epoch;
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(next);
}

uint64_t SnapshotStore::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->epoch;
}

}  // namespace mmv
