#include "core/snapshot.h"

#include <utility>

namespace mmv {

SnapshotStore::SnapshotStore()
    : current_(std::make_shared<const ViewSnapshot>()) {}

SnapshotHandle SnapshotStore::Pin() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t SnapshotStore::Publish(const View& live) {
  // The deep copy happens OUTSIDE the lock: readers keep pinning the old
  // epoch at full speed while the new image is built, and the swap itself
  // is two pointer writes.
  auto next = std::make_shared<ViewSnapshot>();
  next->view = live;
  std::lock_guard<std::mutex> lock(mu_);
  next->epoch = current_->epoch + 1;
  current_ = std::move(next);
  return current_->epoch;
}

void SnapshotStore::RestoreAt(const View& live, uint64_t epoch) {
  auto next = std::make_shared<ViewSnapshot>();
  next->view = live;
  next->epoch = epoch;
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(next);
}

uint64_t SnapshotStore::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->epoch;
}

}  // namespace mmv
