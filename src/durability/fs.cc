#include "durability/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace mmv {
namespace durability {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::Internal(op + " '" + path + "': " + std::strerror(errno));
}

// Writes all of `data` through stdio and closes; reports the first error.
Status WriteStream(std::FILE* f, const std::string& path,
                   std::string_view data, const char* op) {
  if (f == nullptr) return Errno(op, path);
  size_t written =
      data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  int close_err = std::fclose(f);
  if (written != data.size() || close_err != 0) return Errno(op, path);
  return Status::OK();
}

}  // namespace

// ---- PosixFs ---------------------------------------------------------------

Result<std::string> PosixFs::ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("open", path);
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) return Errno("read", path);
  return out;
}

Result<bool> PosixFs::Exists(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) return true;
  if (errno == ENOENT) return false;
  return Errno("stat", path);
}

Result<std::vector<std::string>> PosixFs::List(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return names;
    return Errno("opendir", dir);
  }
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Status PosixFs::WriteFile(const std::string& path, std::string_view data) {
  return WriteStream(std::fopen(path.c_str(), "wb"), path, data, "write");
}

Status PosixFs::Append(const std::string& path, std::string_view data) {
  return WriteStream(std::fopen(path.c_str(), "ab"), path, data, "append");
}

Status PosixFs::Truncate(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Errno("truncate", path);
  }
  return Status::OK();
}

Status PosixFs::Rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) return Errno("rename", from);
  return Status::OK();
}

Status PosixFs::Remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::OK();
}

Status PosixFs::Sync(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open-for-sync", path);
  int err = ::fsync(fd);
  ::close(fd);
  if (err != 0) return Errno("fsync", path);
  return Status::OK();
}

Status PosixFs::CreateDir(const std::string& dir) {
  // Create each prefix in turn (mkdir -p).
  for (size_t i = 1; i <= dir.size(); ++i) {
    if (i != dir.size() && dir[i] != '/') continue;
    std::string prefix = dir.substr(0, i);
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", prefix);
    }
  }
  return Status::OK();
}

// ---- MemFs -----------------------------------------------------------------

Result<std::string> MemFs::ReadFile(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second;
}

Result<bool> MemFs::Exists(const std::string& path) {
  return files_.count(path) != 0;
}

Result<std::vector<std::string>> MemFs::List(const std::string& dir) {
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::vector<std::string> names;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    std::string rest = it->first.substr(prefix.size());
    if (rest.find('/') != std::string::npos) continue;  // nested dir
    names.push_back(std::move(rest));
  }
  return names;  // map order == sorted
}

Status MemFs::WriteFile(const std::string& path, std::string_view data) {
  files_[path] = std::string(data);
  return Status::OK();
}

Status MemFs::Append(const std::string& path, std::string_view data) {
  files_[path].append(data);
  return Status::OK();
}

Status MemFs::Truncate(const std::string& path, uint64_t size) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  if (size > it->second.size()) {
    return Status::InvalidArgument("truncate beyond end: " + path);
  }
  it->second.resize(size);
  return Status::OK();
}

Status MemFs::Rename(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no such file: " + from);
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::OK();
}

Status MemFs::Remove(const std::string& path) {
  files_.erase(path);
  return Status::OK();
}

Status MemFs::Sync(const std::string&) { return Status::OK(); }

Status MemFs::CreateDir(const std::string&) { return Status::OK(); }

Status MemFs::Corrupt(const std::string& path, uint64_t offset,
                      uint8_t mask) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  if (offset >= it->second.size()) {
    return Status::InvalidArgument("corrupt offset beyond end: " + path);
  }
  it->second[offset] = static_cast<char>(
      static_cast<uint8_t>(it->second[offset]) ^ mask);
  return Status::OK();
}

// ---- FaultFs ---------------------------------------------------------------

bool FaultFs::CrashGate(bool tearable, bool* torn) {
  *torn = false;
  if (crashed_) return true;
  if (plan_.crash_after_writes >= 0 &&
      writes_done_ >= plan_.crash_after_writes) {
    crashed_ = true;
    *torn = tearable && plan_.tear_crashing_write;
    return true;
  }
  ++writes_done_;
  return false;
}

Result<std::string> FaultFs::ReadFile(const std::string& path) {
  return base_->ReadFile(path);
}
Result<bool> FaultFs::Exists(const std::string& path) {
  return base_->Exists(path);
}
Result<std::vector<std::string>> FaultFs::List(const std::string& dir) {
  return base_->List(dir);
}

Status FaultFs::WriteFile(const std::string& path, std::string_view data) {
  bool torn;
  if (CrashGate(/*tearable=*/true, &torn)) {
    if (torn && !data.empty()) {
      uint64_t keep =
          std::min<uint64_t>(plan_.tear_keep_bytes, data.size() - 1);
      (void)base_->WriteFile(path, data.substr(0, keep));
    }
    return CrashStatus();
  }
  return base_->WriteFile(path, data);
}

Status FaultFs::Append(const std::string& path, std::string_view data) {
  bool torn;
  if (CrashGate(/*tearable=*/true, &torn)) {
    if (torn && !data.empty()) {
      uint64_t keep =
          std::min<uint64_t>(plan_.tear_keep_bytes, data.size() - 1);
      (void)base_->Append(path, data.substr(0, keep));
    }
    return CrashStatus();
  }
  return base_->Append(path, data);
}

Status FaultFs::Truncate(const std::string& path, uint64_t size) {
  bool torn;
  if (CrashGate(/*tearable=*/false, &torn)) return CrashStatus();
  return base_->Truncate(path, size);
}

Status FaultFs::Rename(const std::string& from, const std::string& to) {
  bool torn;
  if (CrashGate(/*tearable=*/false, &torn)) return CrashStatus();
  return base_->Rename(from, to);
}

Status FaultFs::Remove(const std::string& path) {
  bool torn;
  if (CrashGate(/*tearable=*/false, &torn)) return CrashStatus();
  return base_->Remove(path);
}

Status FaultFs::Sync(const std::string& path) {
  // Sync is not a mutation, but a crashed process cannot sync either.
  if (crashed_) return CrashStatus();
  return base_->Sync(path);
}

Status FaultFs::CreateDir(const std::string& dir) {
  if (crashed_) return CrashStatus();
  return base_->CreateDir(dir);
}

}  // namespace durability
}  // namespace mmv
