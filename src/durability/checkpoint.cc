#include "durability/checkpoint.h"

#include <cinttypes>
#include <cstdio>

#include "common/crc32c.h"

namespace mmv {
namespace durability {

namespace {

constexpr char kMagic[] = "mmv-checkpoint v1";
constexpr char kDeltaMagic[] = "mmv-checkpoint-delta v1";
constexpr char kSeparator[] = "---\n";

std::string Hex32(uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return buf;
}

std::string Padded(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020" PRIu64, v);
  return buf;
}

// Reads one "key value\n" line at *at, returning the value or an error.
Result<std::string> TakeField(std::string_view file, size_t* at,
                              std::string_view key) {
  size_t eol = file.find('\n', *at);
  if (eol == std::string_view::npos) {
    return Status::ParseError("checkpoint header truncated at field '" +
                              std::string(key) + "'");
  }
  std::string_view line = file.substr(*at, eol - *at);
  if (line.size() < key.size() + 2 ||
      line.compare(0, key.size(), key) != 0 || line[key.size()] != ' ') {
    return Status::ParseError("checkpoint header: expected field '" +
                              std::string(key) + "', got '" +
                              std::string(line) + "'");
  }
  *at = eol + 1;
  return std::string(line.substr(key.size() + 1));
}

Result<uint64_t> ToU64(const std::string& s, std::string_view field) {
  uint64_t v = 0;
  if (s.empty()) {
    return Status::ParseError("checkpoint header: empty " +
                              std::string(field));
  }
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::ParseError("checkpoint header: bad " +
                                std::string(field) + " '" + s + "'");
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

Result<uint32_t> ToHex32(const std::string& s, std::string_view field) {
  if (s.size() != 8) {
    return Status::ParseError("checkpoint header: bad " +
                              std::string(field) + " '" + s + "'");
  }
  uint32_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return Status::ParseError("checkpoint header: bad " +
                                std::string(field) + " '" + s + "'");
    }
    v = (v << 4) | static_cast<uint32_t>(digit);
  }
  return v;
}

Result<uint64_t> ParseNamed(std::string_view name, std::string_view prefix,
                            std::string_view suffix) {
  if (name.size() <= prefix.size() + suffix.size() ||
      name.compare(0, prefix.size(), prefix) != 0 ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
          0) {
    return Status::ParseError("not a durability file name: " +
                              std::string(name));
  }
  std::string digits(name.substr(
      prefix.size(), name.size() - prefix.size() - suffix.size()));
  return ToU64(digits, "file name epoch");
}

}  // namespace

std::string EncodeCheckpoint(const CheckpointMeta& meta,
                             std::string_view body) {
  std::string header;
  header += kMagic;
  header += '\n';
  header += "epoch " + std::to_string(meta.epoch) + "\n";
  header += "ext_counter " + std::to_string(meta.ext_counter) + "\n";
  header += "program " + Hex32(meta.program_crc) + "\n";
  header += "wal_offset " + std::to_string(meta.wal_offset) + "\n";
  header += "atoms " + std::to_string(meta.atoms) + "\n";
  // Whole-file checksum: every byte except the checksum line itself.
  uint32_t crc = Crc32cExtend(Crc32cExtend(Crc32c(header), kSeparator), body);
  std::string out;
  out.reserve(header.size() + 16 + sizeof(kSeparator) + body.size());
  out += header;
  out += "checksum " + Hex32(crc) + "\n";
  out += kSeparator;
  out.append(body);
  return out;
}

Result<CheckpointMeta> DecodeCheckpoint(std::string_view file,
                                        std::string* body) {
  size_t at = 0;
  size_t magic_eol = file.find('\n');
  if (magic_eol == std::string_view::npos ||
      file.substr(0, magic_eol) != kMagic) {
    return Status::ParseError("not a checkpoint file (bad magic)");
  }
  at = magic_eol + 1;

  CheckpointMeta meta;
  MMV_ASSIGN_OR_RETURN(std::string epoch_s, TakeField(file, &at, "epoch"));
  MMV_ASSIGN_OR_RETURN(meta.epoch, ToU64(epoch_s, "epoch"));
  MMV_ASSIGN_OR_RETURN(std::string counter_s,
                       TakeField(file, &at, "ext_counter"));
  {
    // The external-support counter is <= 0 by construction.
    bool neg = !counter_s.empty() && counter_s[0] == '-';
    MMV_ASSIGN_OR_RETURN(
        uint64_t mag,
        ToU64(neg ? counter_s.substr(1) : counter_s, "ext_counter"));
    meta.ext_counter = neg ? -static_cast<int>(mag) : static_cast<int>(mag);
  }
  MMV_ASSIGN_OR_RETURN(std::string program_s,
                       TakeField(file, &at, "program"));
  MMV_ASSIGN_OR_RETURN(meta.program_crc, ToHex32(program_s, "program"));
  MMV_ASSIGN_OR_RETURN(std::string offset_s,
                       TakeField(file, &at, "wal_offset"));
  MMV_ASSIGN_OR_RETURN(meta.wal_offset, ToU64(offset_s, "wal_offset"));
  MMV_ASSIGN_OR_RETURN(std::string atoms_s, TakeField(file, &at, "atoms"));
  MMV_ASSIGN_OR_RETURN(meta.atoms, ToU64(atoms_s, "atoms"));

  size_t checksum_at = at;
  MMV_ASSIGN_OR_RETURN(std::string checksum_s,
                       TakeField(file, &at, "checksum"));
  MMV_ASSIGN_OR_RETURN(uint32_t expected, ToHex32(checksum_s, "checksum"));

  if (file.size() - at < sizeof(kSeparator) - 1 ||
      file.compare(at, sizeof(kSeparator) - 1, kSeparator) != 0) {
    return Status::ParseError("checkpoint missing '---' separator");
  }
  std::string_view tail = file.substr(at);  // "---\n" + body
  uint32_t actual =
      Crc32cExtend(Crc32c(file.substr(0, checksum_at)), tail);
  if (actual != expected) {
    return Status::ParseError("checkpoint checksum mismatch (file is torn "
                              "or corrupt)");
  }
  *body = std::string(tail.substr(sizeof(kSeparator) - 1));
  return meta;
}

std::string EncodeDeltaCheckpoint(const DeltaCheckpointMeta& meta,
                                  std::string_view body) {
  std::string header;
  header += kDeltaMagic;
  header += '\n';
  header += "epoch " + std::to_string(meta.epoch) + "\n";
  header += "parent " + std::to_string(meta.parent) + "\n";
  header += "ext_counter " + std::to_string(meta.ext_counter) + "\n";
  header += "program " + Hex32(meta.program_crc) + "\n";
  header += "wal_offset " + std::to_string(meta.wal_offset) + "\n";
  header += "atoms " + std::to_string(meta.atoms) + "\n";
  // Same whole-file checksum discipline as full checkpoints: every byte
  // except the checksum line itself.
  uint32_t crc = Crc32cExtend(Crc32cExtend(Crc32c(header), kSeparator), body);
  std::string out;
  out.reserve(header.size() + 16 + sizeof(kSeparator) + body.size());
  out += header;
  out += "checksum " + Hex32(crc) + "\n";
  out += kSeparator;
  out.append(body);
  return out;
}

Result<DeltaCheckpointMeta> DecodeDeltaCheckpoint(std::string_view file,
                                                  std::string* body) {
  size_t at = 0;
  size_t magic_eol = file.find('\n');
  if (magic_eol == std::string_view::npos ||
      file.substr(0, magic_eol) != kDeltaMagic) {
    return Status::ParseError("not a delta checkpoint file (bad magic)");
  }
  at = magic_eol + 1;

  DeltaCheckpointMeta meta;
  MMV_ASSIGN_OR_RETURN(std::string epoch_s, TakeField(file, &at, "epoch"));
  MMV_ASSIGN_OR_RETURN(meta.epoch, ToU64(epoch_s, "epoch"));
  MMV_ASSIGN_OR_RETURN(std::string parent_s, TakeField(file, &at, "parent"));
  MMV_ASSIGN_OR_RETURN(meta.parent, ToU64(parent_s, "parent"));
  MMV_ASSIGN_OR_RETURN(std::string counter_s,
                       TakeField(file, &at, "ext_counter"));
  {
    // The external-support counter is <= 0 by construction.
    bool neg = !counter_s.empty() && counter_s[0] == '-';
    MMV_ASSIGN_OR_RETURN(
        uint64_t mag,
        ToU64(neg ? counter_s.substr(1) : counter_s, "ext_counter"));
    meta.ext_counter = neg ? -static_cast<int>(mag) : static_cast<int>(mag);
  }
  MMV_ASSIGN_OR_RETURN(std::string program_s,
                       TakeField(file, &at, "program"));
  MMV_ASSIGN_OR_RETURN(meta.program_crc, ToHex32(program_s, "program"));
  MMV_ASSIGN_OR_RETURN(std::string offset_s,
                       TakeField(file, &at, "wal_offset"));
  MMV_ASSIGN_OR_RETURN(meta.wal_offset, ToU64(offset_s, "wal_offset"));
  MMV_ASSIGN_OR_RETURN(std::string atoms_s, TakeField(file, &at, "atoms"));
  MMV_ASSIGN_OR_RETURN(meta.atoms, ToU64(atoms_s, "atoms"));

  size_t checksum_at = at;
  MMV_ASSIGN_OR_RETURN(std::string checksum_s,
                       TakeField(file, &at, "checksum"));
  MMV_ASSIGN_OR_RETURN(uint32_t expected, ToHex32(checksum_s, "checksum"));

  if (file.size() - at < sizeof(kSeparator) - 1 ||
      file.compare(at, sizeof(kSeparator) - 1, kSeparator) != 0) {
    return Status::ParseError("delta checkpoint missing '---' separator");
  }
  std::string_view tail = file.substr(at);  // "---\n" + body
  uint32_t actual =
      Crc32cExtend(Crc32c(file.substr(0, checksum_at)), tail);
  if (actual != expected) {
    return Status::ParseError(
        "delta checkpoint checksum mismatch (file is torn or corrupt)");
  }
  *body = std::string(tail.substr(sizeof(kSeparator) - 1));
  return meta;
}

std::string CheckpointFileName(uint64_t epoch) {
  return "ckpt-" + Padded(epoch) + ".mmv";
}

std::string DeltaCheckpointFileName(uint64_t epoch) {
  return "dckpt-" + Padded(epoch) + ".mmv";
}

std::string WalSegmentFileName(uint64_t base) {
  return "wal-" + Padded(base) + ".log";
}

Result<uint64_t> ParseCheckpointFileName(std::string_view name) {
  return ParseNamed(name, "ckpt-", ".mmv");
}

Result<uint64_t> ParseDeltaCheckpointFileName(std::string_view name) {
  return ParseNamed(name, "dckpt-", ".mmv");
}

Result<uint64_t> ParseWalSegmentFileName(std::string_view name) {
  return ParseNamed(name, "wal-", ".log");
}

}  // namespace durability
}  // namespace mmv
