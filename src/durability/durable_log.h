// The durability subsystem's front door: one DurableLog per state
// directory journals applied bursts ahead of maintenance (wal.h), writes
// periodic canonical checkpoints (checkpoint.h) and rebuilds the exact
// pre-crash state from the two after a restart.
//
// State directory layout:
//
//   ckpt-<epoch>.mmv   checkpoint files (newest `keep_checkpoints` kept)
//   wal-<base>.log     WAL segments; wal-<E>.log holds records with
//                      seq > E and is started by the checkpoint at E
//   *.tmp              in-flight checkpoint images (never read; removed
//                      by the next recovery)
//
// Invariants the layout maintains:
//   - every segment base is a checkpoint epoch (Create writes the initial
//     checkpoint, so even a fresh directory has one);
//   - record seq == the view epoch the burst produced, strictly
//     consecutive across segments;
//   - retention never drops a segment an on-disk checkpoint still needs:
//     segments below the OLDEST retained checkpoint are the only ones
//     collected, so recovery can always fall back one checkpoint.
//
// Recovery contract (Recover): load the newest checkpoint that validates
// (structure + whole-file CRC32C + program fingerprint), deserialize its
// view image, then replay every WAL record with seq above its epoch
// through the REAL maint::ApplyBatch — same pipeline, same coalescing —
// publishing one snapshot epoch per burst so the SnapshotStore continues
// the pre-crash epoch sequence. A torn final record (the one fault a
// crashed append can leave) is truncated and reported; any other
// malformation — checksum mismatch on a complete frame, a gap in the seq
// run, a partial record before the log's end — fails recovery loudly.
// As a last safety net, recovery refuses to finish below the newest epoch
// any checkpoint file CLAIMS in its name: falling back to an older
// checkpoint is only legal when the WAL actually bridges the distance.

#ifndef MMV_DURABILITY_DURABLE_LOG_H_
#define MMV_DURABILITY_DURABLE_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fixpoint.h"
#include "core/snapshot.h"
#include "durability/checkpoint.h"
#include "durability/fs.h"
#include "durability/wal.h"
#include "maintenance/batch.h"

namespace mmv {
namespace durability {

/// \brief Tuning knobs of one DurableLog.
struct DurabilityOptions {
  SyncPolicy sync = SyncPolicy::kEveryBatch;
  /// Unsynced-byte threshold under SyncPolicy::kEveryBytes.
  uint64_t sync_bytes = 1 << 20;
  /// Write a checkpoint after this many committed bursts (0 = only on
  /// explicit Checkpoint() calls).
  uint64_t checkpoint_every_records = 0;
  /// ... or after this many WAL bytes since the last checkpoint (0 = off;
  /// either trigger suffices).
  uint64_t checkpoint_every_bytes = 0;
  /// Checkpoints retained on disk. Minimum 1; the default 2 keeps one
  /// fall-back image in case the newest is later found corrupt.
  int keep_checkpoints = 2;
};

/// \brief What Recover() found and did.
struct RecoveryInfo {
  uint64_t checkpoint_epoch = 0;   ///< epoch of the checkpoint loaded
  uint64_t recovered_epoch = 0;    ///< view epoch after WAL replay
  int64_t replayed_bursts = 0;     ///< WAL records re-applied
  int64_t skipped_records = 0;     ///< records the checkpoint already held
  int64_t checkpoints_skipped = 0; ///< invalid checkpoints fallen past
  uint64_t torn_tail_bytes = 0;    ///< bytes truncated off a torn tail
  int ext_counter = 0;             ///< external-support counter restored
  maint::BatchStats replay_stats;  ///< summed ApplyBatch stats of replay
};

/// \brief The maint::BurstLog implementation: owns the WAL segment being
/// appended, the checkpoint cadence and the retention GC. Single-writer,
/// like maintenance itself.
///
/// Usage, fresh directory:
///
///   auto log = durability::DurableLog::Create(&fs, dir, program, view,
///                                             /*initial_epoch=*/0,
///                                             /*ext_counter=*/0, opts);
///   maint::ApplyBatch(program, &view, burst, eval, fopts, &stats,
///                     (*log)->ext_counter(), &snapshots, log->get());
///
/// After a crash:
///
///   auto log = durability::DurableLog::Recover(&fs, dir, &program, eval,
///                                              fopts, &snapshots, &info,
///                                              opts);
///   View view = (*log)->TakeRecoveredView();   // continue applying bursts
class DurableLog : public maint::BurstLog {
 public:
  /// \brief Initializes a FRESH state directory: creates it, writes the
  /// initial checkpoint of \p initial at \p initial_epoch (so recovery
  /// always has a floor) and opens the first WAL segment. Refuses to run
  /// over a directory that already holds durability files — recover
  /// those, don't overwrite them.
  static Result<std::unique_ptr<DurableLog>> Create(
      Fs* fs, const std::string& dir, const Program& program,
      const View& initial, uint64_t initial_epoch, int ext_counter,
      const DurabilityOptions& options = {});

  /// \brief Rebuilds state from \p dir (contract in the file header). On
  /// success the recovered view is held inside the log — fetch it with
  /// TakeRecoveredView() — and \p info (optional) describes what
  /// happened. \p snapshots (optional) is re-seated at the checkpoint
  /// epoch and receives one publication per replayed burst, finishing at
  /// exactly the epoch the pre-crash store had reached. \p evaluator and
  /// \p fixpoint_options parameterize the replay ApplyBatch calls and
  /// must match the original run for byte-identical recovery.
  static Result<std::unique_ptr<DurableLog>> Recover(
      Fs* fs, const std::string& dir, Program* program,
      DcaEvaluator* evaluator, const FixpointOptions& fixpoint_options,
      SnapshotStore* snapshots = nullptr, RecoveryInfo* info = nullptr,
      const DurabilityOptions& options = {});

  // maint::BurstLog --------------------------------------------------------

  /// \brief Appends the burst as the pending WAL record (seq = the epoch
  /// this burst will produce). Fails without touching the log if a
  /// previous Abort left the segment in an unknown state.
  Status LogBurst(const std::vector<maint::Update>& updates) override;

  /// \brief Commits the pending record, applies the sync policy, bumps
  /// the epoch and — when the checkpoint cadence fires — checkpoints
  /// \p view and rolls the segment. Adds this batch's contribution to
  /// \p stats.
  Status CommitBurst(const View& view, maint::BatchStats* stats) override;

  /// \brief Drops the pending record (the burst failed to APPLY). If even
  /// the truncation fails the log poisons itself: every later LogBurst
  /// refuses, forcing the caller through Recover().
  void AbortBurst() override;

  // ------------------------------------------------------------------------

  /// \brief Writes a checkpoint of \p view at the current epoch NOW
  /// (tmp + fsync + atomic rename), starts a fresh WAL segment and runs
  /// retention GC. \p view must be the state all committed records
  /// produce — i.e. call between batches, never mid-batch.
  Status Checkpoint(const View& view);

  /// \brief Forces the WAL to stable storage regardless of policy.
  Status Sync() { return wal_->SyncNow(); }

  /// \brief Moves the recovered view image out (valid once, after
  /// Recover; empty for Create'd logs).
  View TakeRecoveredView() { return std::move(recovered_view_); }

  /// \brief The external-support counter the log persists in checkpoint
  /// headers. Pass this pointer to every ApplyBatch call on the logged
  /// view so the counter survives crashes with the rest of the state.
  int* ext_counter() { return &ext_counter_; }

  /// \brief Epoch of the newest committed burst (== the seq the NEXT
  /// burst gets, minus one).
  uint64_t epoch() const { return next_seq_ - 1; }

  int64_t wal_records() const { return wal_->records(); }
  uint64_t wal_end_offset() const { return wal_->end_offset(); }
  int64_t checkpoints_written() const { return checkpoints_written_; }
  uint64_t last_checkpoint_epoch() const { return last_checkpoint_epoch_; }

 private:
  DurableLog(Fs* fs, std::string dir, uint32_t program_crc,
             DurabilityOptions options)
      : fs_(fs),
        dir_(std::move(dir)),
        program_crc_(program_crc),
        options_(options) {}

  std::string PathFor(const std::string& name) const {
    return dir_ + "/" + name;
  }
  /// Opens segment wal-<base>.log for appending (creating it if absent).
  Status OpenSegment(uint64_t base, uint64_t existing_bytes);
  /// Removes checkpoints beyond keep_checkpoints and the segments only
  /// they needed.
  Status CollectGarbage();

  Fs* fs_;
  std::string dir_;
  uint32_t program_crc_;
  DurabilityOptions options_;

  std::unique_ptr<Wal> wal_;
  uint64_t next_seq_ = 1;          // seq the pending/next record gets
  int ext_counter_ = 0;
  uint64_t last_checkpoint_epoch_ = 0;
  uint64_t records_since_checkpoint_ = 0;
  uint64_t bytes_since_checkpoint_ = 0;
  int64_t checkpoints_written_ = 0;
  bool pending_ = false;           // LogBurst'ed, not yet Commit/Abort'ed
  bool poisoned_ = false;          // failed Abort: tail state unknown
  View recovered_view_;
};

}  // namespace durability
}  // namespace mmv

#endif  // MMV_DURABILITY_DURABLE_LOG_H_
