// The durability subsystem's front door: one DurableLog per state
// directory journals applied bursts ahead of maintenance (wal.h), writes
// periodic canonical checkpoints (checkpoint.h) and rebuilds the exact
// pre-crash state from the two after a restart.
//
// State directory layout:
//
//   ckpt-<epoch>.mmv   FULL checkpoint files (newest `keep_checkpoints`
//                      full images kept)
//   dckpt-<epoch>.mmv  DELTA checkpoint files: what changed since the
//                      `parent` checkpoint named in the header — written
//                      between full-image cadence boundaries
//                      (full_checkpoint_interval), so steady-state
//                      checkpoint cost is O(delta), not O(view)
//   wal-<base>.log     WAL segments; wal-<E>.log holds records with
//                      seq > E and is started by the checkpoint at E
//                      (full or delta — both roll the segment)
//   *.tmp              in-flight checkpoint images (never read; removed
//                      by the next recovery)
//
// The checkpoint writer never deep-reads the live view: CommitBurst
// receives the SAME immutable SnapshotImage the snapshot store publishes
// (one O(delta) extraction per batch serves readers AND durability), and
// deltas are diffed image-against-image by segment pointer identity.
//
// Invariants the layout maintains:
//   - every segment base is a checkpoint epoch (Create writes the initial
//     full checkpoint, so even a fresh directory has one);
//   - record seq == the view epoch the burst produced, strictly
//     consecutive across segments;
//   - every delta's parent chain descends to a full checkpoint that is
//     still on disk (retention floors at the oldest retained FULL image
//     and drops deltas/segments only below it), so recovery can always
//     fall back one full checkpoint.
//
// Recovery contract (Recover): resolve the newest checkpoint chain that
// validates end to end — a full image, or a delta composed over its
// parents down to a full (structure + whole-file CRC32C + program
// fingerprint on EVERY member; any invalid member fails the whole chain
// and recovery falls back to the next-newest head) — then replay every
// WAL record with seq above the chain head's epoch through the REAL
// maint::ApplyBatch — same pipeline, same coalescing — publishing one
// snapshot epoch per burst so the SnapshotStore continues the pre-crash
// epoch sequence. A torn final record (the one fault a crashed append can
// leave) is truncated and reported; any other malformation — checksum
// mismatch on a complete frame, a gap in the seq run, a partial record
// before the log's end — fails recovery loudly. As a last safety net,
// recovery refuses to finish below the newest epoch any checkpoint file
// CLAIMS in its name: falling back to an older chain is only legal when
// the WAL actually bridges the distance.

#ifndef MMV_DURABILITY_DURABLE_LOG_H_
#define MMV_DURABILITY_DURABLE_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fixpoint.h"
#include "core/snapshot.h"
#include "durability/checkpoint.h"
#include "durability/fs.h"
#include "durability/wal.h"
#include "maintenance/batch.h"

namespace mmv {
namespace durability {

/// \brief Tuning knobs of one DurableLog.
struct DurabilityOptions {
  SyncPolicy sync = SyncPolicy::kEveryBatch;
  /// Unsynced-byte threshold under SyncPolicy::kEveryBytes.
  uint64_t sync_bytes = 1 << 20;
  /// Write a checkpoint after this many committed bursts (0 = only on
  /// explicit Checkpoint() calls).
  uint64_t checkpoint_every_records = 0;
  /// ... or after this many WAL bytes since the last checkpoint (0 = off;
  /// either trigger suffices).
  uint64_t checkpoint_every_bytes = 0;
  /// FULL checkpoints retained on disk. Minimum 1; the default 2 keeps one
  /// fall-back image in case the newest is later found corrupt. Delta
  /// checkpoints and WAL segments below the oldest retained full image are
  /// collected with it.
  int keep_checkpoints = 2;
  /// Every Nth checkpoint is a FULL image; the N-1 between are deltas
  /// against their predecessor. 1 writes only full images (the pre-delta
  /// behavior); the default 4 bounds a recovery chain at 3 delta frames.
  /// The initial checkpoint (Create) and explicit same-epoch rewrites are
  /// always full.
  uint64_t full_checkpoint_interval = 4;
};

/// \brief What Recover() found and did.
struct RecoveryInfo {
  uint64_t checkpoint_epoch = 0;   ///< epoch of the chain head loaded
  uint64_t full_checkpoint_epoch = 0;  ///< epoch of the FULL image the
                                       ///  chain bottomed at (==
                                       ///  checkpoint_epoch for a full)
  uint64_t recovered_epoch = 0;    ///< view epoch after WAL replay
  int64_t replayed_bursts = 0;     ///< WAL records re-applied
  int64_t skipped_records = 0;     ///< records the checkpoint already held
  int64_t checkpoints_skipped = 0; ///< invalid chain heads fallen past
  int64_t delta_checkpoints_composed = 0;  ///< delta frames applied over
                                           ///  the full image
  int64_t checkpoint_delta_bytes = 0;  ///< bytes of delta files composed
  uint64_t torn_tail_bytes = 0;    ///< bytes truncated off a torn tail
  int ext_counter = 0;             ///< external-support counter restored
  maint::BatchStats replay_stats;  ///< summed ApplyBatch stats of replay
};

/// \brief The maint::BurstLog implementation: owns the WAL segment being
/// appended, the checkpoint cadence and the retention GC. Single-writer,
/// like maintenance itself.
///
/// Usage, fresh directory:
///
///   auto log = durability::DurableLog::Create(&fs, dir, program, view,
///                                             /*initial_epoch=*/0,
///                                             /*ext_counter=*/0, opts);
///   maint::ApplyBatch(program, &view, burst, eval, fopts, &stats,
///                     (*log)->ext_counter(), &snapshots, log->get());
///
/// After a crash:
///
///   auto log = durability::DurableLog::Recover(&fs, dir, &program, eval,
///                                              fopts, &snapshots, &info,
///                                              opts);
///   View view = (*log)->TakeRecoveredView();   // continue applying bursts
class DurableLog : public maint::BurstLog {
 public:
  /// \brief Initializes a FRESH state directory: creates it, writes the
  /// initial checkpoint of \p initial at \p initial_epoch (so recovery
  /// always has a floor) and opens the first WAL segment. Refuses to run
  /// over a directory that already holds durability files — recover
  /// those, don't overwrite them.
  static Result<std::unique_ptr<DurableLog>> Create(
      Fs* fs, const std::string& dir, const Program& program,
      const View& initial, uint64_t initial_epoch, int ext_counter,
      const DurabilityOptions& options = {});

  /// \brief Rebuilds state from \p dir (contract in the file header). On
  /// success the recovered view is held inside the log — fetch it with
  /// TakeRecoveredView() — and \p info (optional) describes what
  /// happened. \p snapshots (optional) is re-seated at the checkpoint
  /// epoch and receives one publication per replayed burst, finishing at
  /// exactly the epoch the pre-crash store had reached. \p evaluator and
  /// \p fixpoint_options parameterize the replay ApplyBatch calls and
  /// must match the original run for byte-identical recovery.
  static Result<std::unique_ptr<DurableLog>> Recover(
      Fs* fs, const std::string& dir, Program* program,
      DcaEvaluator* evaluator, const FixpointOptions& fixpoint_options,
      SnapshotStore* snapshots = nullptr, RecoveryInfo* info = nullptr,
      const DurabilityOptions& options = {});

  // maint::BurstLog --------------------------------------------------------

  /// \brief Appends the burst as the pending WAL record (seq = the epoch
  /// this burst will produce). Fails without touching the log if a
  /// previous Abort left the segment in an unknown state.
  Status LogBurst(const std::vector<maint::Update>& updates) override;

  /// \brief Commits the pending record, applies the sync policy, bumps
  /// the epoch and — when the checkpoint cadence fires — checkpoints
  /// \p image (a delta against the previous checkpoint's image, or a full
  /// frame at the full_checkpoint_interval boundary) and rolls the
  /// segment. Adds this batch's contribution to \p stats.
  Status CommitBurst(const SnapshotImageHandle& image,
                     maint::BatchStats* stats) override;

  /// \brief Drops the pending record (the burst failed to APPLY). If even
  /// the truncation fails the log poisons itself: every later LogBurst
  /// refuses, forcing the caller through Recover().
  void AbortBurst() override;

  // ------------------------------------------------------------------------

  /// \brief Which frame a checkpoint call writes. kAuto follows the
  /// full_checkpoint_interval cadence (and forces a full frame when there
  /// is no parent image or the epoch did not advance — a delta must never
  /// parent itself).
  enum class CheckpointKind { kAuto, kFull, kDelta };

  /// \brief Writes a checkpoint of \p view at the current epoch NOW
  /// (tmp + fsync + atomic rename), starts a fresh WAL segment and runs
  /// retention GC. \p view must be the state all committed records
  /// produce — i.e. call between batches, never mid-batch. Extracts the
  /// view's image (O(delta) against its previous extraction).
  Status Checkpoint(const View& view,
                    CheckpointKind kind = CheckpointKind::kAuto);

  /// \brief Same, over an already-extracted immutable image (never null).
  Status CheckpointImage(SnapshotImageHandle image,
                         CheckpointKind kind = CheckpointKind::kAuto);

  /// \brief Forces the WAL to stable storage regardless of policy.
  Status Sync() { return wal_->SyncNow(); }

  /// \brief Moves the recovered view image out (valid once, after
  /// Recover; empty for Create'd logs).
  View TakeRecoveredView() { return std::move(recovered_view_); }

  /// \brief The external-support counter the log persists in checkpoint
  /// headers. Pass this pointer to every ApplyBatch call on the logged
  /// view so the counter survives crashes with the rest of the state.
  int* ext_counter() { return &ext_counter_; }

  /// \brief Epoch of the newest committed burst (== the seq the NEXT
  /// burst gets, minus one).
  uint64_t epoch() const { return next_seq_ - 1; }

  int64_t wal_records() const { return wal_->records(); }
  uint64_t wal_end_offset() const { return wal_->end_offset(); }
  int64_t checkpoints_written() const { return checkpoints_written_; }
  /// \brief How many of checkpoints_written() were delta frames.
  int64_t delta_checkpoints_written() const {
    return delta_checkpoints_written_;
  }
  /// \brief Encoded size of the newest checkpoint frame (full or delta) —
  /// the bytes the delta format saves are this, compared across kinds.
  uint64_t last_checkpoint_bytes() const { return last_checkpoint_bytes_; }
  uint64_t last_checkpoint_epoch() const { return last_checkpoint_epoch_; }

 private:
  DurableLog(Fs* fs, std::string dir, uint32_t program_crc,
             DurabilityOptions options)
      : fs_(fs),
        dir_(std::move(dir)),
        program_crc_(program_crc),
        options_(options) {}

  std::string PathFor(const std::string& name) const {
    return dir_ + "/" + name;
  }
  /// Opens segment wal-<base>.log for appending (creating it if absent).
  Status OpenSegment(uint64_t base, uint64_t existing_bytes);
  /// Removes full checkpoints beyond keep_checkpoints, plus the delta
  /// frames and segments only they needed.
  Status CollectGarbage();
  /// The one checkpoint writer behind Checkpoint/CheckpointImage and the
  /// CommitBurst cadence. \p delta_bytes (optional) receives the file
  /// size when a delta frame was written, 0 for a full frame.
  Status WriteCheckpoint(SnapshotImageHandle image, CheckpointKind kind,
                         int64_t* delta_bytes);

  Fs* fs_;
  std::string dir_;
  uint32_t program_crc_;
  DurabilityOptions options_;

  std::unique_ptr<Wal> wal_;
  uint64_t next_seq_ = 1;          // seq the pending/next record gets
  int ext_counter_ = 0;
  uint64_t last_checkpoint_epoch_ = 0;
  uint64_t records_since_checkpoint_ = 0;
  uint64_t bytes_since_checkpoint_ = 0;
  int64_t checkpoints_written_ = 0;
  int64_t delta_checkpoints_written_ = 0;
  uint64_t last_checkpoint_bytes_ = 0;
  // The previous checkpoint's image: the parent delta frames diff
  // against. Never read for full frames; reset by Recover to the
  // recomposed image so post-recovery deltas have a valid parent.
  SnapshotImageHandle last_checkpoint_image_;
  uint64_t checkpoints_since_full_ = 0;
  bool pending_ = false;           // LogBurst'ed, not yet Commit/Abort'ed
  bool poisoned_ = false;          // failed Abort: tail state unknown
  View recovered_view_;
};

}  // namespace durability
}  // namespace mmv

#endif  // MMV_DURABILITY_DURABLE_LOG_H_
