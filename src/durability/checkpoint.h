// Canonical view checkpoints: the periodic full-state snapshots that bound
// WAL replay at recovery.
//
// A checkpoint file is a small text header followed by the canonical view
// image (parser::SerializeView):
//
//   mmv-checkpoint v1
//   epoch <e>            -- view epoch the image corresponds to
//   ext_counter <c>      -- external-support counter at that epoch
//   program <8 hex>      -- CRC32C of Program::ToString(): recovery refuses
//                           to replay against a different clause set
//   wal_offset <n>       -- end offset of the WAL segment at write time
//   atoms <n>            -- atom count (diagnostic)
//   checksum <8 hex>     -- CRC32C of the whole file minus this line
//   ---
//   <SerializeView body>
//
// The checksum line covers every other byte of the file (header AND body),
// so a torn or bit-flipped checkpoint is detected as a unit and skipped in
// favour of an older one. Files are written to a ".tmp" sibling and
// atomically renamed, so a crash mid-write never shadows a good
// checkpoint with a partial one.

#ifndef MMV_DURABILITY_CHECKPOINT_H_
#define MMV_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace mmv {
namespace durability {

/// \brief Header fields of one checkpoint file.
struct CheckpointMeta {
  uint64_t epoch = 0;
  int ext_counter = 0;
  uint32_t program_crc = 0;
  uint64_t wal_offset = 0;
  uint64_t atoms = 0;
};

/// \brief Renders a checkpoint file (header + checksum + body).
std::string EncodeCheckpoint(const CheckpointMeta& meta,
                             std::string_view body);

/// \brief Parses and VALIDATES a checkpoint file: structure, version and
/// whole-file checksum. On success the serialized view body is copied into
/// \p body. Failures name what broke — the caller decides whether to fall
/// back to an older checkpoint or fail recovery loudly.
Result<CheckpointMeta> DecodeCheckpoint(std::string_view file,
                                        std::string* body);

/// \brief "ckpt-<epoch, zero-padded>.mmv" — zero padding keeps
/// lexicographic file order equal to epoch order.
std::string CheckpointFileName(uint64_t epoch);

/// \brief "wal-<base, zero-padded>.log": the segment holding records with
/// seq > base (a fresh segment starts at every checkpoint).
std::string WalSegmentFileName(uint64_t base);

/// \brief Extracts the epoch/base out of a file name produced by the two
/// helpers above; error if \p name has a different shape (".tmp" siblings
/// and foreign files are NOT valid checkpoint/segment names).
Result<uint64_t> ParseCheckpointFileName(std::string_view name);
Result<uint64_t> ParseWalSegmentFileName(std::string_view name);

}  // namespace durability
}  // namespace mmv

#endif  // MMV_DURABILITY_CHECKPOINT_H_
