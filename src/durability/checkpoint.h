// Canonical view checkpoints: the periodic full-state snapshots that bound
// WAL replay at recovery.
//
// A checkpoint file is a small text header followed by the canonical view
// image (parser::SerializeView):
//
//   mmv-checkpoint v1
//   epoch <e>            -- view epoch the image corresponds to
//   ext_counter <c>      -- external-support counter at that epoch
//   program <8 hex>      -- CRC32C of Program::ToString(): recovery refuses
//                           to replay against a different clause set
//   wal_offset <n>       -- end offset of the WAL segment at write time
//   atoms <n>            -- atom count (diagnostic)
//   checksum <8 hex>     -- CRC32C of the whole file minus this line
//   ---
//   <SerializeView body>
//
// The checksum line covers every other byte of the file (header AND body),
// so a torn or bit-flipped checkpoint is detected as a unit and skipped in
// favour of an older one. Files are written to a ".tmp" sibling and
// atomically renamed, so a crash mid-write never shadows a good
// checkpoint with a partial one.
//
// DELTA checkpoints ("dckpt-<epoch>.mmv") amortize the full image: between
// full-image cadence boundaries the writer records only what changed since
// the PARENT checkpoint (the immediately preceding one, full or delta).
// Same header discipline plus a `parent <epoch>` field; the body is
// line-oriented against the parent's composed image:
//
//   removed <pred>           -- the predicate vanished entirely
//   seg <pred> <n>           -- the predicate's segment changed: the next
//   <n atom lines>              n lines are its full new contents
//   order keep <k>           -- the first k atoms of the parent's global
//                               order survive unchanged...
//   order run <pred> <n>     -- ...followed by these (pred, count) runs.
//                               Within one pred the global order equals
//                               segment order, so runs carry no offsets.
//
// Recovery composes newest full + descendant deltas + WAL tail; any
// invalid member fails the whole chain, falling back to an older head.

#ifndef MMV_DURABILITY_CHECKPOINT_H_
#define MMV_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace mmv {
namespace durability {

/// \brief Header fields of one checkpoint file.
struct CheckpointMeta {
  uint64_t epoch = 0;
  int ext_counter = 0;
  uint32_t program_crc = 0;
  uint64_t wal_offset = 0;
  uint64_t atoms = 0;
};

/// \brief Renders a checkpoint file (header + checksum + body).
std::string EncodeCheckpoint(const CheckpointMeta& meta,
                             std::string_view body);

/// \brief Parses and VALIDATES a checkpoint file: structure, version and
/// whole-file checksum. On success the serialized view body is copied into
/// \p body. Failures name what broke — the caller decides whether to fall
/// back to an older checkpoint or fail recovery loudly.
Result<CheckpointMeta> DecodeCheckpoint(std::string_view file,
                                        std::string* body);

/// \brief Header fields of one DELTA checkpoint file ("dckpt-*.mmv").
struct DeltaCheckpointMeta {
  uint64_t epoch = 0;
  uint64_t parent = 0;  ///< epoch of the checkpoint this delta diffs against
  int ext_counter = 0;
  uint32_t program_crc = 0;
  uint64_t wal_offset = 0;
  uint64_t atoms = 0;  ///< atom count of the COMPOSED image (diagnostic +
                       ///  composition cross-check at recovery)
};

/// \brief Renders a delta checkpoint file (header + checksum + body).
std::string EncodeDeltaCheckpoint(const DeltaCheckpointMeta& meta,
                                  std::string_view body);

/// \brief Parses and VALIDATES a delta checkpoint file, like
/// DecodeCheckpoint (same whole-file checksum discipline).
Result<DeltaCheckpointMeta> DecodeDeltaCheckpoint(std::string_view file,
                                                  std::string* body);

/// \brief "ckpt-<epoch, zero-padded>.mmv" — zero padding keeps
/// lexicographic file order equal to epoch order.
std::string CheckpointFileName(uint64_t epoch);

/// \brief "dckpt-<epoch, zero-padded>.mmv": a delta frame against the
/// checkpoint named by its `parent` header field.
std::string DeltaCheckpointFileName(uint64_t epoch);

/// \brief "wal-<base, zero-padded>.log": the segment holding records with
/// seq > base (a fresh segment starts at every checkpoint).
std::string WalSegmentFileName(uint64_t base);

/// \brief Extracts the epoch/base out of a file name produced by the two
/// helpers above; error if \p name has a different shape (".tmp" siblings
/// and foreign files are NOT valid checkpoint/segment names).
Result<uint64_t> ParseCheckpointFileName(std::string_view name);
Result<uint64_t> ParseDeltaCheckpointFileName(std::string_view name);
Result<uint64_t> ParseWalSegmentFileName(std::string_view name);

}  // namespace durability
}  // namespace mmv

#endif  // MMV_DURABILITY_CHECKPOINT_H_
