// Burst write-ahead log: the append-only record stream DurableLog keeps
// ahead of maint::ApplyBatch.
//
// One record per applied burst, framed as
//
//   [u32 body_len][u32 crc32c(body)][body]
//   body = [u64 seq][burst text (parser::SerializeBurst)]
//
// (all integers little-endian). `seq` is the epoch the burst produces —
// strictly increasing across the whole log — which makes replay idempotent
// against checkpoints: recovery skips records whose seq the loaded
// checkpoint already covers, so a crash BETWEEN checkpoint publication and
// WAL truncation never double-applies a burst.
//
// The log is segmented: segment `wal-<base>.log` holds records with
// seq > base, and each checkpoint at epoch E starts a fresh segment
// `wal-<E>.log`. Older segments survive until retention GC drops them
// together with their checkpoint, so recovery can fall back to the
// previous checkpoint when the newest one is torn (written but never
// renamed) without losing bursts.
//
// Scan semantics (the recovery-side contract):
//   - a PARTIAL final record in the final segment — fewer bytes on disk
//     than the frame announces — is a torn tail: scanning stops there and
//     reports the bytes to drop. This is the only fault a crash can
//     inject through the append-only write path.
//   - a checksum mismatch over a COMPLETE frame is corruption (a torn
//     append can shorten bytes but never alter them), anywhere in the
//     log, final record included: the scan fails loudly.
//   - a partial record anywhere EXCEPT the end of the final segment is
//     corruption too (appends happened after it, so it cannot be a tear).

#ifndef MMV_DURABILITY_WAL_H_
#define MMV_DURABILITY_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "durability/fs.h"

namespace mmv {
namespace durability {

/// \brief When the WAL forces bytes to stable storage.
enum class SyncPolicy : uint8_t {
  kNone,       ///< never sync explicitly (crash may lose committed tails)
  kEveryBatch, ///< sync after every committed burst (default)
  kEveryBytes, ///< sync once at least sync_bytes accumulated unsynced
};

/// \brief One decoded WAL record.
struct WalRecord {
  uint64_t seq = 0;
  std::string payload;  ///< burst text (parser::SerializeBurst)
};

/// \brief Result of scanning one segment.
struct WalScan {
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;  ///< prefix holding complete valid records
  uint64_t torn_bytes = 0;   ///< tail bytes dropped as a torn final record
};

/// \brief Encodes one framed record.
std::string EncodeWalRecord(uint64_t seq, std::string_view payload);

/// \brief Decodes a whole segment. \p tolerate_torn_tail is true only for
/// the FINAL segment of the log; elsewhere a partial record is corruption.
/// \p label names the segment in error messages.
Result<WalScan> ScanWalSegment(std::string_view data, const std::string& label,
                               bool tolerate_torn_tail);

/// \brief Append-side handle over one WAL segment file. Records go
/// through a reserve/commit/abort cycle so a burst that fails to APPLY
/// leaves no record behind (batch failure atomicity), while a crash
/// mid-apply leaves the record for recovery to replay.
class Wal {
 public:
  /// \p existing_bytes: size of the segment on disk (0 for a new one).
  Wal(Fs* fs, std::string path, SyncPolicy sync, uint64_t sync_bytes,
      uint64_t existing_bytes)
      : fs_(fs),
        path_(std::move(path)),
        sync_(sync),
        sync_bytes_(sync_bytes),
        end_offset_(existing_bytes) {}

  /// \brief Frames and appends one record. The record is PENDING until
  /// Commit() or Abort() — exactly one of which must follow.
  Status Append(uint64_t seq, std::string_view payload);

  /// \brief Makes the pending record permanent and applies the sync
  /// policy. Returns the bytes this record added and whether a sync ran.
  Status Commit(uint64_t* appended_bytes, bool* synced);

  /// \brief Rolls the pending record back (the burst failed to apply).
  Status Abort();

  /// \brief Forces an explicit sync regardless of policy.
  Status SyncNow();

  const std::string& path() const { return path_; }
  uint64_t end_offset() const { return end_offset_; }
  int64_t records() const { return records_; }
  int64_t syncs() const { return syncs_; }

 private:
  Fs* fs_;
  std::string path_;
  SyncPolicy sync_;
  uint64_t sync_bytes_;
  uint64_t end_offset_;       // committed bytes
  uint64_t pending_bytes_ = 0;  // appended, not yet committed/aborted
  uint64_t unsynced_bytes_ = 0;
  int64_t records_ = 0;
  int64_t syncs_ = 0;
};

}  // namespace durability
}  // namespace mmv

#endif  // MMV_DURABILITY_WAL_H_
