#include "durability/durable_log.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/crc32c.h"
#include "parser/view_io.h"

namespace mmv {
namespace durability {

namespace {

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::vector<parser::ParsedUpdate> ToParsed(
    const std::vector<maint::Update>& updates) {
  std::vector<parser::ParsedUpdate> parsed;
  parsed.reserve(updates.size());
  for (const maint::Update& u : updates) {
    parser::ParsedUpdate p;
    p.is_delete = u.kind == maint::Update::Kind::kDelete;
    p.atom = parser::ParsedAtom{u.atom.pred, u.atom.args, u.atom.constraint};
    parsed.push_back(std::move(p));
  }
  return parsed;
}

std::vector<maint::Update> ToUpdates(
    std::vector<parser::ParsedUpdate> parsed) {
  std::vector<maint::Update> updates;
  updates.reserve(parsed.size());
  for (parser::ParsedUpdate& p : parsed) {
    maint::UpdateAtom atom{std::move(p.atom.pred), std::move(p.atom.args),
                           std::move(p.atom.constraint)};
    updates.push_back(p.is_delete
                          ? maint::Update::Delete(std::move(atom))
                          : maint::Update::Insert(std::move(atom)));
  }
  return updates;
}

Result<uint64_t> ParseU64(std::string_view s, std::string_view what) {
  if (s.empty()) {
    return Status::ParseError("delta checkpoint: empty " + std::string(what));
  }
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::ParseError("delta checkpoint: bad " + std::string(what) +
                                " '" + std::string(s) + "'");
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

// ---------------------------------------------------------------------------
// Delta checkpoint bodies. A delta frame records, against its PARENT's
// composed image: the predicates that vanished, the full new contents of
// every segment that changed (detected by shared_ptr identity — a shared
// segment is bit-identical by construction), and the new global atom order
// as a kept-prefix length plus (pred, count) runs. Within one predicate
// the global order equals segment order, so runs need no offsets.

// Content fingerprint of a segment's canonical serialization, cached on
// the segment (see SnapshotImage::Segment). FNV-1a; 0 is reserved for
// "not computed", so a genuine 0 hash is nudged to 1.
uint64_t SegmentFingerprint(const SnapshotImage::Segment& seg) {
  uint64_t cached = seg.fingerprint.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  std::string bytes = parser::SerializeAtoms(seg);
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  if (h == 0) h = 1;
  seg.fingerprint.store(h, std::memory_order_relaxed);
  return h;
}

std::string BuildDeltaBody(const SnapshotImage& parent,
                           const SnapshotImage& child) {
  std::ostringstream os;
  std::vector<Symbol> removed;
  for (const auto& [pred, seg] : parent.segments) {
    if (child.segments.find(pred) == child.segments.end()) {
      removed.push_back(pred);
    }
  }
  std::sort(removed.begin(), removed.end());  // name order: deterministic
  for (Symbol pred : removed) os << "removed " << pred.name() << "\n";

  std::vector<Symbol> changed;
  for (const auto& [pred, seg] : child.segments) {
    auto it = parent.segments.find(pred);
    if (it == parent.segments.end()) {
      changed.push_back(pred);
      continue;
    }
    // Shared pointer: bit-identical by construction. Distinct pointers: a
    // fully-canceling burst re-materializes the segment with unchanged
    // content, so compare fingerprints and — on a match, since the hash
    // alone could collide — bytes, before paying for a frame member.
    // Composition then keeps the parent's equal-content segment.
    if (it->second == seg) continue;
    if (SegmentFingerprint(*it->second) == SegmentFingerprint(*seg) &&
        parser::SerializeAtoms(*it->second) == parser::SerializeAtoms(*seg)) {
      continue;
    }
    changed.push_back(pred);
  }
  std::sort(changed.begin(), changed.end());
  for (Symbol pred : changed) {
    const SnapshotImage::Segment& seg = *child.segments.at(pred);
    os << "seg " << pred.name() << " " << seg.size() << "\n";
    os << parser::SerializeAtoms(seg);
  }

  // Order: the chunk-pointer prefix both images share needs no re-listing.
  uint64_t keep = 0;
  size_t shared_chunks = 0;
  while (shared_chunks < child.order.size() &&
         shared_chunks < parent.order.size() &&
         child.order[shared_chunks].runs == parent.order[shared_chunks].runs) {
    keep += child.order[shared_chunks].atoms;
    ++shared_chunks;
  }
  os << "order keep " << keep << "\n";
  Symbol run_pred;
  uint64_t run_count = 0;
  auto flush_run = [&] {
    if (run_count > 0) {
      os << "order run " << run_pred.name() << " " << run_count << "\n";
    }
  };
  for (size_t c = shared_chunks; c < child.order.size(); ++c) {
    for (const SnapshotImage::OrderRun& run : *child.order[c].runs) {
      if (run_count > 0 && run.pred == run_pred) {
        run_count += run.count;
      } else {
        flush_run();
        run_pred = run.pred;
        run_count = run.count;
      }
    }
  }
  flush_run();
  return os.str();
}

// The working state a checkpoint chain composes into: mutable per-pred
// segments plus the flattened global-order runs.
struct ComposedState {
  std::unordered_map<Symbol, std::vector<ViewAtom>> segments;
  std::vector<SnapshotImage::OrderRun> order;
};

Result<ComposedState> FromFullBody(const std::string& body,
                                   Program* program) {
  MMV_ASSIGN_OR_RETURN(View tmp, parser::DeserializeView(body, program));
  ComposedState state;
  std::vector<ViewAtom> atoms = tmp.TakeAtoms();
  for (ViewAtom& a : atoms) {
    if (!state.order.empty() && state.order.back().pred == a.pred) {
      state.order.back().count++;
    } else {
      state.order.push_back({a.pred, 1});
    }
    state.segments[a.pred].push_back(std::move(a));
  }
  return state;
}

// Line cursor over a delta body; keeps byte offsets so a seg section's raw
// text can be sliced out for DeserializeView.
struct LineCursor {
  std::string_view text;
  size_t at = 0;
  bool Next(std::string_view* line) {
    if (at >= text.size()) return false;
    size_t eol = text.find('\n', at);
    if (eol == std::string_view::npos) {
      *line = text.substr(at);
      at = text.size();
    } else {
      *line = text.substr(at, eol - at);
      at = eol + 1;
    }
    return true;
  }
};

// Splits "name count" (count = trailing integer field).
Result<std::pair<Symbol, uint64_t>> ParsePredCount(std::string_view rest,
                                                   std::string_view what) {
  size_t sp = rest.rfind(' ');
  if (sp == std::string_view::npos || sp == 0) {
    return Status::ParseError("delta checkpoint: malformed " +
                              std::string(what) + " line");
  }
  MMV_ASSIGN_OR_RETURN(uint64_t count, ParseU64(rest.substr(sp + 1), what));
  return std::make_pair(Symbol(rest.substr(0, sp)), count);
}

// Applies one delta frame's body over \p state. Strict: any structural
// surprise (unknown removed pred, truncated section, order mismatch, atom
// count disagreeing with the header) is corruption, reported as a
// ParseError so recovery abandons this chain and falls back.
Status ApplyDeltaBody(std::string_view body, Program* program,
                      const DeltaCheckpointMeta& meta, ComposedState* state) {
  LineCursor cur{body};
  std::string_view line;
  bool have_line = cur.Next(&line);

  while (have_line && StartsWith(line, "removed ")) {
    Symbol pred(line.substr(8));
    if (state->segments.erase(pred) == 0) {
      return Status::ParseError(
          "delta checkpoint removes unknown predicate '" + pred.name() + "'");
    }
    have_line = cur.Next(&line);
  }

  while (have_line && StartsWith(line, "seg ")) {
    MMV_ASSIGN_OR_RETURN(auto pred_count,
                         ParsePredCount(line.substr(4), "seg count"));
    const auto [pred, count] = pred_count;
    size_t start = cur.at;
    for (uint64_t i = 0; i < count; ++i) {
      if (!cur.Next(&line)) {
        return Status::ParseError(
            "delta checkpoint: seg section for '" + pred.name() +
            "' truncated");
      }
    }
    MMV_ASSIGN_OR_RETURN(
        View tmp,
        parser::DeserializeView(body.substr(start, cur.at - start), program));
    std::vector<ViewAtom> seg = tmp.TakeAtoms();
    if (seg.size() != count) {
      return Status::ParseError("delta checkpoint: seg section for '" +
                                pred.name() + "' parsed to a different count");
    }
    for (const ViewAtom& a : seg) {
      if (a.pred != pred) {
        return Status::ParseError(
            "delta checkpoint: seg section for '" + pred.name() +
            "' holds an atom of '" + a.pred.name() + "'");
      }
    }
    state->segments[pred] = std::move(seg);
    have_line = cur.Next(&line);
  }

  if (!have_line || !StartsWith(line, "order keep ")) {
    return Status::ParseError(
        "delta checkpoint: missing 'order keep' line");
  }
  MMV_ASSIGN_OR_RETURN(uint64_t keep,
                       ParseU64(line.substr(11), "order keep"));
  std::vector<SnapshotImage::OrderRun> new_order;
  uint64_t remaining = keep;
  for (const SnapshotImage::OrderRun& run : state->order) {
    if (remaining == 0) break;
    uint64_t take = std::min<uint64_t>(run.count, remaining);
    if (!new_order.empty() && new_order.back().pred == run.pred) {
      new_order.back().count += take;
    } else {
      new_order.push_back({run.pred, take});
    }
    remaining -= take;
  }
  if (remaining > 0) {
    return Status::ParseError(
        "delta checkpoint: 'order keep' exceeds the parent's atom order");
  }
  while (cur.Next(&line)) {
    if (!StartsWith(line, "order run ")) {
      return Status::ParseError("delta checkpoint: unexpected line '" +
                                std::string(line) + "'");
    }
    MMV_ASSIGN_OR_RETURN(auto pred_count,
                         ParsePredCount(line.substr(10), "order run"));
    const auto [pred, count] = pred_count;
    if (!new_order.empty() && new_order.back().pred == pred) {
      new_order.back().count += count;
    } else {
      new_order.push_back({pred, count});
    }
  }
  state->order = std::move(new_order);

  uint64_t order_total = 0;
  for (const SnapshotImage::OrderRun& run : state->order) {
    order_total += run.count;
  }
  uint64_t segment_total = 0;
  for (const auto& [pred, seg] : state->segments) {
    segment_total += seg.size();
  }
  if (order_total != segment_total || order_total != meta.atoms) {
    return Status::ParseError(
        "delta checkpoint: composed atom counts disagree (order " +
        std::to_string(order_total) + ", segments " +
        std::to_string(segment_total) + ", header " +
        std::to_string(meta.atoms) + ")");
  }
  return Status::OK();
}

// Materializes the composed state into a View, re-Adding atoms in the
// recorded global order (the order is load-bearing: continued maintenance
// is byte-identical only if the rebuilt view enumerates like the original).
// Consumes \p state: atoms are MOVED into the view per-pred as the order
// cursor passes them, so the peak is one view plus segment shells — not
// the composed state and a full copy side by side.
Result<View> BuildView(ComposedState* state) {
  View view;
  std::unordered_map<Symbol, size_t> cursor;
  for (const SnapshotImage::OrderRun& run : state->order) {
    auto it = state->segments.find(run.pred);
    if (it == state->segments.end()) {
      return Status::ParseError(
          "delta checkpoint: atom order names unknown predicate '" +
          run.pred.name() + "'");
    }
    size_t& at = cursor[run.pred];
    if (at + run.count > it->second.size()) {
      return Status::ParseError(
          "delta checkpoint: atom order overruns the segment of '" +
          run.pred.name() + "'");
    }
    for (uint64_t i = 0; i < run.count; ++i) {
      view.Add(std::move(it->second[at++]));
    }
  }
  for (const auto& [pred, seg] : state->segments) {
    auto it = cursor.find(pred);
    if (it == cursor.end() || it->second != seg.size()) {
      return Status::ParseError(
          "delta checkpoint: atom order does not cover the segment of '" +
          pred.name() + "'");
    }
  }
  return view;
}

// One checkpoint file (either kind) found on disk.
struct CkptFile {
  uint64_t epoch = 0;
  bool is_delta = false;
  std::string name;
};

// What loading one whole chain produced.
struct LoadedChain {
  View view;
  uint64_t head_epoch = 0;
  uint64_t full_epoch = 0;
  int ext_counter = 0;
  int64_t deltas_composed = 0;
  int64_t delta_bytes = 0;
};

}  // namespace

Result<std::unique_ptr<DurableLog>> DurableLog::Create(
    Fs* fs, const std::string& dir, const Program& program,
    const View& initial, uint64_t initial_epoch, int ext_counter,
    const DurabilityOptions& options) {
  MMV_RETURN_NOT_OK(fs->CreateDir(dir));
  MMV_ASSIGN_OR_RETURN(std::vector<std::string> names, fs->List(dir));
  for (const std::string& name : names) {
    if (ParseCheckpointFileName(name).ok() ||
        ParseDeltaCheckpointFileName(name).ok() ||
        ParseWalSegmentFileName(name).ok()) {
      return Status::AlreadyExists(
          "state directory '" + dir + "' already holds durability file '" +
          name + "' — Recover it instead of re-initializing");
    }
  }
  std::unique_ptr<DurableLog> log(new DurableLog(
      fs, dir, Crc32c(program.ToString()), options));
  log->ext_counter_ = ext_counter;
  log->next_seq_ = initial_epoch + 1;
  // The initial checkpoint is the recovery floor — always a FULL image:
  // even a directory that crashes before its first burst recovers to a
  // well-defined state with no parent to chase.
  MMV_RETURN_NOT_OK(log->Checkpoint(initial, CheckpointKind::kFull));
  return log;
}

Result<std::unique_ptr<DurableLog>> DurableLog::Recover(
    Fs* fs, const std::string& dir, Program* program,
    DcaEvaluator* evaluator, const FixpointOptions& fixpoint_options,
    SnapshotStore* snapshots, RecoveryInfo* info,
    const DurabilityOptions& options) {
  RecoveryInfo local_info;
  if (info == nullptr) info = &local_info;
  *info = RecoveryInfo();

  std::unique_ptr<DurableLog> log(new DurableLog(
      fs, dir, Crc32c(program->ToString()), options));

  MMV_ASSIGN_OR_RETURN(std::vector<std::string> names, fs->List(dir));
  std::vector<CkptFile> ckpts;  // full AND delta frames
  std::set<uint64_t> full_epochs;
  std::set<uint64_t> delta_epochs;
  std::vector<std::pair<uint64_t, std::string>> segs;  // base, name
  for (const std::string& name : names) {
    if (EndsWith(name, ".tmp")) {
      // An in-flight checkpoint image the crash orphaned; it was never
      // renamed, so it was never state.
      MMV_RETURN_NOT_OK(fs->Remove(log->PathFor(name)));
      continue;
    }
    if (Result<uint64_t> e = ParseCheckpointFileName(name); e.ok()) {
      ckpts.push_back({*e, /*is_delta=*/false, name});
      full_epochs.insert(*e);
    } else if (Result<uint64_t> d = ParseDeltaCheckpointFileName(name);
               d.ok()) {
      ckpts.push_back({*d, /*is_delta=*/true, name});
      delta_epochs.insert(*d);
    } else if (Result<uint64_t> b = ParseWalSegmentFileName(name); b.ok()) {
      segs.emplace_back(*b, name);
    }
    // Foreign files are ignored, not deleted.
  }
  if (full_epochs.empty()) {
    return Status::NotFound("durability recovery: no full checkpoint in '" +
                            dir + "'");
  }
  // Chain heads, tried newest-first; at one epoch a full image wins over a
  // delta frame (it needs no parents).
  std::sort(ckpts.begin(), ckpts.end(),
            [](const CkptFile& a, const CkptFile& b) {
              if (a.epoch != b.epoch) return a.epoch > b.epoch;
              return a.is_delta < b.is_delta;
            });
  std::sort(segs.begin(), segs.end());
  // The newest epoch ANY checkpoint file claims in its name, valid or
  // not: recovery must reach at least this epoch or fail loudly — falling
  // back to an older chain is only legal when the WAL bridges the
  // distance.
  const uint64_t newest_claimed = ckpts.front().epoch;

  // Resolves and composes the chain under \p head. Corruption anywhere in
  // the chain is a ParseError (the caller falls back to the next head);
  // a program fingerprint mismatch or an IO failure propagates loudly.
  auto load_chain = [&](const CkptFile& head) -> Result<LoadedChain> {
    LoadedChain out;
    out.head_epoch = head.epoch;
    // Walk parent links down to a full image, newest last. Only the chain
    // SHAPE (epochs) is retained: holding every frame's decoded body here
    // would keep the whole chain in memory at once, so the compose loop
    // below re-reads each file in parent-first order instead and the peak
    // stays one composed view plus a single frame.
    std::vector<uint64_t> delta_epochs_newest_first;
    uint64_t cursor_epoch = head.epoch;
    bool cursor_delta = head.is_delta;
    while (cursor_delta) {
      MMV_ASSIGN_OR_RETURN(
          std::string data,
          fs->ReadFile(log->PathFor(DeltaCheckpointFileName(cursor_epoch))));
      std::string body;
      MMV_ASSIGN_OR_RETURN(DeltaCheckpointMeta meta,
                           DecodeDeltaCheckpoint(data, &body));
      if (meta.program_crc != log->program_crc_) {
        return Status::InvalidArgument(
            "durability recovery refused: delta checkpoint was written for "
            "a different program (clause-set fingerprint mismatch)");
      }
      if (meta.epoch != cursor_epoch || meta.parent >= cursor_epoch) {
        return Status::ParseError(
            "delta checkpoint " + DeltaCheckpointFileName(cursor_epoch) +
            " header disagrees with its name or parents forward");
      }
      out.delta_bytes += static_cast<int64_t>(data.size());
      delta_epochs_newest_first.push_back(cursor_epoch);
      cursor_epoch = meta.parent;
      if (full_epochs.count(cursor_epoch) > 0) {
        cursor_delta = false;
      } else if (delta_epochs.count(cursor_epoch) > 0) {
        cursor_delta = true;
      } else {
        return Status::ParseError(
            "delta checkpoint chain is missing its parent at epoch " +
            std::to_string(cursor_epoch));
      }
    }

    ComposedState state;
    {
      // Scoped so the full body's bytes are released before any delta
      // frame is read back.
      MMV_ASSIGN_OR_RETURN(
          std::string data,
          fs->ReadFile(log->PathFor(CheckpointFileName(cursor_epoch))));
      std::string full_body;
      CheckpointMeta full_meta;
      MMV_ASSIGN_OR_RETURN(full_meta, DecodeCheckpoint(data, &full_body));
      if (full_meta.program_crc != log->program_crc_) {
        return Status::InvalidArgument(
            "durability recovery refused: checkpoint was written for a "
            "different program (clause-set fingerprint mismatch)");
      }
      out.full_epoch = cursor_epoch;
      data.clear();
      data.shrink_to_fit();
      MMV_ASSIGN_OR_RETURN(state, FromFullBody(full_body, program));
      out.ext_counter = full_meta.ext_counter;
    }
    for (auto it = delta_epochs_newest_first.rbegin();
         it != delta_epochs_newest_first.rend(); ++it) {
      MMV_ASSIGN_OR_RETURN(
          std::string data,
          fs->ReadFile(log->PathFor(DeltaCheckpointFileName(*it))));
      std::string body;
      // The walk above already validated this frame's header and CRC; the
      // re-decode revalidates for free (the file could in principle change
      // between the reads).
      MMV_ASSIGN_OR_RETURN(DeltaCheckpointMeta meta,
                           DecodeDeltaCheckpoint(data, &body));
      data.clear();
      data.shrink_to_fit();
      MMV_RETURN_NOT_OK(ApplyDeltaBody(body, program, meta, &state));
      out.ext_counter = meta.ext_counter;
      ++out.deltas_composed;
    }
    MMV_ASSIGN_OR_RETURN(out.view, BuildView(&state));
    return out;
  };

  LoadedChain chain;
  bool loaded = false;
  for (const CkptFile& head : ckpts) {
    Result<LoadedChain> attempt = load_chain(head);
    if (attempt.ok()) {
      chain = std::move(*attempt);
      loaded = true;
      break;
    }
    if (attempt.status().code() != StatusCode::kParseError) {
      // IO failure or program mismatch: not corruption, no fallback.
      return attempt.status();
    }
    ++info->checkpoints_skipped;
  }
  if (!loaded) {
    return Status::ParseError(
        "durability recovery failed: none of the " +
        std::to_string(ckpts.size()) + " checkpoint chain(s) in '" + dir +
        "' validates");
  }

  View view = std::move(chain.view);
  log->ext_counter_ = chain.ext_counter;
  log->next_seq_ = chain.head_epoch + 1;
  log->last_checkpoint_epoch_ = chain.head_epoch;
  log->checkpoints_since_full_ =
      static_cast<uint64_t>(chain.deltas_composed);
  // The recomposed image seeds the delta parent AND the snapshot store:
  // one extraction, shared by both consumers, exactly like the live path.
  log->last_checkpoint_image_ = view.ExtractImage();
  info->checkpoint_epoch = chain.head_epoch;
  info->full_checkpoint_epoch = chain.full_epoch;
  info->delta_checkpoints_composed = chain.deltas_composed;
  info->checkpoint_delta_bytes = chain.delta_bytes;
  if (snapshots != nullptr) {
    // Re-seat the store at the checkpoint epoch; each replayed burst then
    // publishes the next epoch, finishing exactly where the pre-crash
    // store stood.
    snapshots->RestoreAtImage(log->last_checkpoint_image_, chain.head_epoch);
  }

  // Replay: segments below the loaded chain head hold only records it
  // already covers (a segment closes at the checkpoint that starts its
  // successor), so the scan starts at base == the head epoch. Only the
  // final segment may end in a torn record.
  const uint64_t head_epoch = chain.head_epoch;
  std::vector<std::pair<uint64_t, std::string>> relevant;
  for (const auto& s : segs) {
    if (s.first >= head_epoch) relevant.push_back(s);
  }
  uint64_t expected = head_epoch + 1;
  uint64_t open_base = head_epoch;
  uint64_t open_bytes = 0;
  for (size_t i = 0; i < relevant.size(); ++i) {
    const bool is_last = i + 1 == relevant.size();
    const std::string path = log->PathFor(relevant[i].second);
    MMV_ASSIGN_OR_RETURN(std::string data, fs->ReadFile(path));
    MMV_ASSIGN_OR_RETURN(
        WalScan scan,
        ScanWalSegment(data, relevant[i].second, /*tolerate_torn_tail=*/is_last));
    if (scan.torn_bytes > 0) {
      // Physically drop the torn tail so the reopened segment appends
      // over clean bytes.
      MMV_RETURN_NOT_OK(fs->Truncate(path, scan.valid_bytes));
      info->torn_tail_bytes += scan.torn_bytes;
    }
    for (WalRecord& record : scan.records) {
      if (record.seq <= head_epoch) {
        // The checkpoint already contains this burst's effect (it was
        // written AFTER the record, before the old segment closed).
        ++info->skipped_records;
        continue;
      }
      if (record.seq != expected) {
        return Status::ParseError(
            "WAL corruption in " + relevant[i].second +
            ": expected seq " + std::to_string(expected) + ", found " +
            std::to_string(record.seq));
      }
      MMV_ASSIGN_OR_RETURN(std::vector<parser::ParsedUpdate> parsed,
                           parser::ParseBurst(record.payload, program));
      maint::BatchStats batch_stats;
      MMV_RETURN_NOT_OK(maint::ApplyBatch(
          *program, &view, ToUpdates(std::move(parsed)), evaluator,
          fixpoint_options, &batch_stats, &log->ext_counter_, snapshots,
          /*log=*/nullptr));
      info->replay_stats += batch_stats;
      ++info->replayed_bursts;
      ++expected;
    }
    open_base = relevant[i].first;
    open_bytes = scan.valid_bytes;
  }
  log->next_seq_ = expected;
  info->recovered_epoch = expected - 1;
  info->ext_counter = log->ext_counter_;
  info->replay_stats.recovery_replayed_bursts = info->replayed_bursts;

  if (info->recovered_epoch < newest_claimed) {
    return Status::ParseError(
        "durability recovery failed: newest checkpoint file claims epoch " +
        std::to_string(newest_claimed) + " but checkpoint + WAL only " +
        "reach epoch " + std::to_string(info->recovered_epoch) +
        " — refusing to silently lose committed bursts");
  }

  MMV_RETURN_NOT_OK(log->OpenSegment(open_base, open_bytes));
  log->records_since_checkpoint_ =
      info->recovered_epoch - log->last_checkpoint_epoch_;
  log->bytes_since_checkpoint_ = log->wal_->end_offset();
  log->recovered_view_ = std::move(view);
  return log;
}

Status DurableLog::LogBurst(const std::vector<maint::Update>& updates) {
  if (poisoned_) {
    return Status::Internal(
        "durable log poisoned by an earlier IO failure — Recover() the "
        "state directory before applying further bursts");
  }
  if (pending_) {
    return Status::Internal("durable log already holds a pending burst");
  }
  std::string payload = parser::SerializeBurst(ToParsed(updates));
  MMV_RETURN_NOT_OK(wal_->Append(next_seq_, payload));
  pending_ = true;
  return Status::OK();
}

Status DurableLog::CommitBurst(const SnapshotImageHandle& image,
                               maint::BatchStats* stats) {
  if (!pending_) {
    return Status::Internal("durable log has no pending burst to commit");
  }
  uint64_t bytes = 0;
  bool synced = false;
  Status committed = wal_->Commit(&bytes, &synced);
  pending_ = false;
  if (!committed.ok()) {
    // The record's durability is unknown (e.g. the sync failed after the
    // append): refuse further logging until recovery re-establishes it.
    poisoned_ = true;
    return committed;
  }
  ++next_seq_;
  ++records_since_checkpoint_;
  bytes_since_checkpoint_ += bytes;
  if (stats != nullptr) {
    stats->wal_records += 1;
    stats->wal_bytes += static_cast<int64_t>(bytes);
    stats->wal_syncs += synced ? 1 : 0;
  }
  const bool checkpoint_due =
      (options_.checkpoint_every_records > 0 &&
       records_since_checkpoint_ >= options_.checkpoint_every_records) ||
      (options_.checkpoint_every_bytes > 0 &&
       bytes_since_checkpoint_ >= options_.checkpoint_every_bytes);
  if (checkpoint_due) {
    int64_t delta_bytes = 0;
    MMV_RETURN_NOT_OK(
        WriteCheckpoint(image, CheckpointKind::kAuto, &delta_bytes));
    if (stats != nullptr) {
      stats->checkpoints_written += 1;
      stats->checkpoint_delta_bytes += delta_bytes;
    }
  }
  return Status::OK();
}

void DurableLog::AbortBurst() {
  if (!pending_) return;
  pending_ = false;
  Status rolled_back = wal_->Abort();
  if (!rolled_back.ok()) {
    // The segment tail is in an unknown state; appending more records
    // over it could interleave garbage into the log.
    poisoned_ = true;
  }
}

Status DurableLog::Checkpoint(const View& view, CheckpointKind kind) {
  return CheckpointImage(view.ExtractImage(), kind);
}

Status DurableLog::CheckpointImage(SnapshotImageHandle image,
                                   CheckpointKind kind) {
  return WriteCheckpoint(std::move(image), kind, nullptr);
}

Status DurableLog::WriteCheckpoint(SnapshotImageHandle image,
                                   CheckpointKind kind,
                                   int64_t* delta_bytes) {
  if (delta_bytes != nullptr) *delta_bytes = 0;
  if (image == nullptr) {
    return Status::InvalidArgument("checkpoint requested with a null image");
  }
  if (pending_) {
    return Status::Internal(
        "checkpoint requested mid-batch: the image would not match the "
        "committed record stream");
  }
  if (poisoned_) {
    return Status::Internal(
        "durable log poisoned by an earlier IO failure — Recover() first");
  }
  const uint64_t epoch = next_seq_ - 1;
  const bool have_parent =
      last_checkpoint_image_ != nullptr && checkpoints_written_ > 0;
  // A delta must parent a DIFFERENT, older checkpoint: with no parent on
  // record, or when the epoch did not advance (a same-epoch rewrite), the
  // frame must be full whatever the cadence says.
  bool full = kind == CheckpointKind::kFull || !have_parent ||
              epoch == last_checkpoint_epoch_;
  if (!full && kind == CheckpointKind::kAuto) {
    full = options_.full_checkpoint_interval <= 1 ||
           checkpoints_since_full_ + 1 >= options_.full_checkpoint_interval;
  }

  std::string file;
  std::string final_path;
  if (full) {
    CheckpointMeta meta;
    meta.epoch = epoch;
    meta.ext_counter = ext_counter_;
    meta.program_crc = program_crc_;
    meta.wal_offset = wal_ != nullptr ? wal_->end_offset() : 0;
    meta.atoms = image->atom_count;
    file = EncodeCheckpoint(meta, parser::SerializeImage(*image));
    final_path = PathFor(CheckpointFileName(epoch));
  } else {
    DeltaCheckpointMeta meta;
    meta.epoch = epoch;
    meta.parent = last_checkpoint_epoch_;
    meta.ext_counter = ext_counter_;
    meta.program_crc = program_crc_;
    meta.wal_offset = wal_ != nullptr ? wal_->end_offset() : 0;
    meta.atoms = image->atom_count;
    file = EncodeDeltaCheckpoint(meta,
                                 BuildDeltaBody(*last_checkpoint_image_,
                                                *image));
    final_path = PathFor(DeltaCheckpointFileName(epoch));
    if (delta_bytes != nullptr) {
      *delta_bytes = static_cast<int64_t>(file.size());
    }
  }

  const std::string tmp_path = final_path + ".tmp";
  MMV_RETURN_NOT_OK(fs_->WriteFile(tmp_path, file));
  MMV_RETURN_NOT_OK(fs_->Sync(tmp_path));
  // The publication point: a crash before this rename leaves the previous
  // checkpoint + WAL authoritative, a crash after it leaves the new one.
  MMV_RETURN_NOT_OK(fs_->Rename(tmp_path, final_path));
  if (full) {
    // A full rewrite at an epoch supersedes any delta frame that epoch
    // previously got (e.g. cadence delta, then an explicit checkpoint);
    // Remove is idempotent, so no existence probe is needed.
    MMV_RETURN_NOT_OK(fs_->Remove(PathFor(DeltaCheckpointFileName(epoch))));
  }

  MMV_RETURN_NOT_OK(OpenSegment(epoch, 0));
  last_checkpoint_bytes_ = file.size();
  last_checkpoint_epoch_ = epoch;
  last_checkpoint_image_ = std::move(image);
  records_since_checkpoint_ = 0;
  bytes_since_checkpoint_ = 0;
  ++checkpoints_written_;
  if (full) {
    checkpoints_since_full_ = 0;
  } else {
    ++checkpoints_since_full_;
    ++delta_checkpoints_written_;
  }
  return CollectGarbage();
}

Status DurableLog::OpenSegment(uint64_t base, uint64_t existing_bytes) {
  const std::string path = PathFor(WalSegmentFileName(base));
  if (existing_bytes == 0) {
    // Materialize the empty segment eagerly so the directory always names
    // the segment its newest checkpoint starts.
    MMV_RETURN_NOT_OK(fs_->WriteFile(path, ""));
  }
  wal_ = std::make_unique<Wal>(fs_, path, options_.sync, options_.sync_bytes,
                               existing_bytes);
  return Status::OK();
}

Status DurableLog::CollectGarbage() {
  MMV_ASSIGN_OR_RETURN(std::vector<std::string> names, fs_->List(dir_));
  std::vector<uint64_t> full_epochs;
  std::vector<std::pair<uint64_t, std::string>> deltas;
  std::vector<std::pair<uint64_t, std::string>> segs;
  for (const std::string& name : names) {
    if (Result<uint64_t> e = ParseCheckpointFileName(name); e.ok()) {
      full_epochs.push_back(*e);
    } else if (Result<uint64_t> d = ParseDeltaCheckpointFileName(name);
               d.ok()) {
      deltas.emplace_back(*d, name);
    } else if (Result<uint64_t> b = ParseWalSegmentFileName(name); b.ok()) {
      segs.emplace_back(*b, name);
    }
  }
  std::sort(full_epochs.begin(), full_epochs.end());
  const size_t keep = static_cast<size_t>(
      std::max(1, options_.keep_checkpoints));
  if (full_epochs.size() <= keep) return Status::OK();
  // Retention counts FULL images only: everything below the oldest
  // retained full is collectable — its checkpoints are superseded and its
  // segments hold only records the retained images already cover. Delta
  // frames above the floor always chain down to a full >= the floor (a
  // delta's parent run bottoms at the newest full below it, and the floor
  // IS a full), so no retained chain ever dangles.
  const uint64_t floor = full_epochs[full_epochs.size() - keep];
  for (size_t i = 0; i + keep < full_epochs.size(); ++i) {
    MMV_RETURN_NOT_OK(
        fs_->Remove(PathFor(CheckpointFileName(full_epochs[i]))));
  }
  for (const auto& [epoch, name] : deltas) {
    if (epoch <= floor) {
      MMV_RETURN_NOT_OK(fs_->Remove(PathFor(name)));
    }
  }
  for (const auto& [base, name] : segs) {
    if (base < floor) {
      MMV_RETURN_NOT_OK(fs_->Remove(PathFor(name)));
    }
  }
  return Status::OK();
}

}  // namespace durability
}  // namespace mmv
