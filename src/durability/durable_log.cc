#include "durability/durable_log.h"

#include <algorithm>
#include <utility>

#include "common/crc32c.h"
#include "parser/view_io.h"

namespace mmv {
namespace durability {

namespace {

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<parser::ParsedUpdate> ToParsed(
    const std::vector<maint::Update>& updates) {
  std::vector<parser::ParsedUpdate> parsed;
  parsed.reserve(updates.size());
  for (const maint::Update& u : updates) {
    parser::ParsedUpdate p;
    p.is_delete = u.kind == maint::Update::Kind::kDelete;
    p.atom = parser::ParsedAtom{u.atom.pred, u.atom.args, u.atom.constraint};
    parsed.push_back(std::move(p));
  }
  return parsed;
}

std::vector<maint::Update> ToUpdates(
    std::vector<parser::ParsedUpdate> parsed) {
  std::vector<maint::Update> updates;
  updates.reserve(parsed.size());
  for (parser::ParsedUpdate& p : parsed) {
    maint::UpdateAtom atom{std::move(p.atom.pred), std::move(p.atom.args),
                           std::move(p.atom.constraint)};
    updates.push_back(p.is_delete
                          ? maint::Update::Delete(std::move(atom))
                          : maint::Update::Insert(std::move(atom)));
  }
  return updates;
}

}  // namespace

Result<std::unique_ptr<DurableLog>> DurableLog::Create(
    Fs* fs, const std::string& dir, const Program& program,
    const View& initial, uint64_t initial_epoch, int ext_counter,
    const DurabilityOptions& options) {
  MMV_RETURN_NOT_OK(fs->CreateDir(dir));
  MMV_ASSIGN_OR_RETURN(std::vector<std::string> names, fs->List(dir));
  for (const std::string& name : names) {
    if (ParseCheckpointFileName(name).ok() ||
        ParseWalSegmentFileName(name).ok()) {
      return Status::AlreadyExists(
          "state directory '" + dir + "' already holds durability file '" +
          name + "' — Recover it instead of re-initializing");
    }
  }
  std::unique_ptr<DurableLog> log(new DurableLog(
      fs, dir, Crc32c(program.ToString()), options));
  log->ext_counter_ = ext_counter;
  log->next_seq_ = initial_epoch + 1;
  // The initial checkpoint is the recovery floor: even a directory that
  // crashes before its first burst recovers to a well-defined state.
  MMV_RETURN_NOT_OK(log->Checkpoint(initial));
  return log;
}

Result<std::unique_ptr<DurableLog>> DurableLog::Recover(
    Fs* fs, const std::string& dir, Program* program,
    DcaEvaluator* evaluator, const FixpointOptions& fixpoint_options,
    SnapshotStore* snapshots, RecoveryInfo* info,
    const DurabilityOptions& options) {
  RecoveryInfo local_info;
  if (info == nullptr) info = &local_info;
  *info = RecoveryInfo();

  std::unique_ptr<DurableLog> log(new DurableLog(
      fs, dir, Crc32c(program->ToString()), options));

  MMV_ASSIGN_OR_RETURN(std::vector<std::string> names, fs->List(dir));
  std::vector<std::pair<uint64_t, std::string>> ckpts;  // epoch, name
  std::vector<std::pair<uint64_t, std::string>> segs;   // base, name
  for (const std::string& name : names) {
    if (EndsWith(name, ".tmp")) {
      // An in-flight checkpoint image the crash orphaned; it was never
      // renamed, so it was never state.
      MMV_RETURN_NOT_OK(fs->Remove(log->PathFor(name)));
      continue;
    }
    if (Result<uint64_t> e = ParseCheckpointFileName(name); e.ok()) {
      ckpts.emplace_back(*e, name);
    } else if (Result<uint64_t> b = ParseWalSegmentFileName(name); b.ok()) {
      segs.emplace_back(*b, name);
    }
    // Foreign files are ignored, not deleted.
  }
  if (ckpts.empty()) {
    return Status::NotFound("durability recovery: no checkpoint in '" +
                            dir + "'");
  }
  std::sort(ckpts.begin(), ckpts.end());
  std::sort(segs.begin(), segs.end());
  // The newest epoch ANY checkpoint file claims in its name, valid or
  // not: recovery must reach at least this epoch or fail loudly — falling
  // back to an older checkpoint is only legal when the WAL bridges the
  // distance.
  const uint64_t newest_claimed = ckpts.back().first;

  // Load the newest checkpoint that validates end to end.
  CheckpointMeta meta;
  std::string body;
  bool loaded = false;
  for (auto it = ckpts.rbegin(); it != ckpts.rend(); ++it) {
    MMV_ASSIGN_OR_RETURN(std::string data, fs->ReadFile(log->PathFor(it->second)));
    Result<CheckpointMeta> decoded = DecodeCheckpoint(data, &body);
    if (!decoded.ok()) {
      ++info->checkpoints_skipped;
      continue;
    }
    meta = *decoded;
    loaded = true;
    break;
  }
  if (!loaded) {
    return Status::ParseError(
        "durability recovery failed: none of the " +
        std::to_string(ckpts.size()) + " checkpoint(s) in '" + dir +
        "' validates");
  }
  if (meta.program_crc != log->program_crc_) {
    return Status::InvalidArgument(
        "durability recovery refused: checkpoint was written for a "
        "different program (clause-set fingerprint mismatch)");
  }

  MMV_ASSIGN_OR_RETURN(View view, parser::DeserializeView(body, program));
  log->ext_counter_ = meta.ext_counter;
  log->next_seq_ = meta.epoch + 1;
  log->last_checkpoint_epoch_ = meta.epoch;
  info->checkpoint_epoch = meta.epoch;
  if (snapshots != nullptr) {
    // Re-seat the store at the checkpoint epoch; each replayed burst then
    // publishes the next epoch, finishing exactly where the pre-crash
    // store stood.
    snapshots->RestoreAt(view, meta.epoch);
  }

  // Replay: segments below the loaded checkpoint hold only records it
  // already covers (a segment closes at the checkpoint that starts its
  // successor), so the scan starts at base == meta.epoch. Only the final
  // segment may end in a torn record.
  std::vector<std::pair<uint64_t, std::string>> relevant;
  for (const auto& s : segs) {
    if (s.first >= meta.epoch) relevant.push_back(s);
  }
  uint64_t expected = meta.epoch + 1;
  uint64_t open_base = meta.epoch;
  uint64_t open_bytes = 0;
  for (size_t i = 0; i < relevant.size(); ++i) {
    const bool is_last = i + 1 == relevant.size();
    const std::string path = log->PathFor(relevant[i].second);
    MMV_ASSIGN_OR_RETURN(std::string data, fs->ReadFile(path));
    MMV_ASSIGN_OR_RETURN(
        WalScan scan,
        ScanWalSegment(data, relevant[i].second, /*tolerate_torn_tail=*/is_last));
    if (scan.torn_bytes > 0) {
      // Physically drop the torn tail so the reopened segment appends
      // over clean bytes.
      MMV_RETURN_NOT_OK(fs->Truncate(path, scan.valid_bytes));
      info->torn_tail_bytes += scan.torn_bytes;
    }
    for (WalRecord& record : scan.records) {
      if (record.seq <= meta.epoch) {
        // The checkpoint already contains this burst's effect (it was
        // written AFTER the record, before the old segment closed).
        ++info->skipped_records;
        continue;
      }
      if (record.seq != expected) {
        return Status::ParseError(
            "WAL corruption in " + relevant[i].second +
            ": expected seq " + std::to_string(expected) + ", found " +
            std::to_string(record.seq));
      }
      MMV_ASSIGN_OR_RETURN(std::vector<parser::ParsedUpdate> parsed,
                           parser::ParseBurst(record.payload, program));
      maint::BatchStats batch_stats;
      MMV_RETURN_NOT_OK(maint::ApplyBatch(
          *program, &view, ToUpdates(std::move(parsed)), evaluator,
          fixpoint_options, &batch_stats, &log->ext_counter_, snapshots,
          /*log=*/nullptr));
      info->replay_stats += batch_stats;
      ++info->replayed_bursts;
      ++expected;
    }
    open_base = relevant[i].first;
    open_bytes = scan.valid_bytes;
  }
  log->next_seq_ = expected;
  info->recovered_epoch = expected - 1;
  info->ext_counter = log->ext_counter_;
  info->replay_stats.recovery_replayed_bursts = info->replayed_bursts;

  if (info->recovered_epoch < newest_claimed) {
    return Status::ParseError(
        "durability recovery failed: newest checkpoint file claims epoch " +
        std::to_string(newest_claimed) + " but checkpoint + WAL only " +
        "reach epoch " + std::to_string(info->recovered_epoch) +
        " — refusing to silently lose committed bursts");
  }

  MMV_RETURN_NOT_OK(log->OpenSegment(open_base, open_bytes));
  log->records_since_checkpoint_ =
      info->recovered_epoch - log->last_checkpoint_epoch_;
  log->bytes_since_checkpoint_ = log->wal_->end_offset();
  log->recovered_view_ = std::move(view);
  return log;
}

Status DurableLog::LogBurst(const std::vector<maint::Update>& updates) {
  if (poisoned_) {
    return Status::Internal(
        "durable log poisoned by an earlier IO failure — Recover() the "
        "state directory before applying further bursts");
  }
  if (pending_) {
    return Status::Internal("durable log already holds a pending burst");
  }
  std::string payload = parser::SerializeBurst(ToParsed(updates));
  MMV_RETURN_NOT_OK(wal_->Append(next_seq_, payload));
  pending_ = true;
  return Status::OK();
}

Status DurableLog::CommitBurst(const View& view, maint::BatchStats* stats) {
  if (!pending_) {
    return Status::Internal("durable log has no pending burst to commit");
  }
  uint64_t bytes = 0;
  bool synced = false;
  Status committed = wal_->Commit(&bytes, &synced);
  pending_ = false;
  if (!committed.ok()) {
    // The record's durability is unknown (e.g. the sync failed after the
    // append): refuse further logging until recovery re-establishes it.
    poisoned_ = true;
    return committed;
  }
  ++next_seq_;
  ++records_since_checkpoint_;
  bytes_since_checkpoint_ += bytes;
  if (stats != nullptr) {
    stats->wal_records += 1;
    stats->wal_bytes += static_cast<int64_t>(bytes);
    stats->wal_syncs += synced ? 1 : 0;
  }
  const bool checkpoint_due =
      (options_.checkpoint_every_records > 0 &&
       records_since_checkpoint_ >= options_.checkpoint_every_records) ||
      (options_.checkpoint_every_bytes > 0 &&
       bytes_since_checkpoint_ >= options_.checkpoint_every_bytes);
  if (checkpoint_due) {
    MMV_RETURN_NOT_OK(Checkpoint(view));
    if (stats != nullptr) stats->checkpoints_written += 1;
  }
  return Status::OK();
}

void DurableLog::AbortBurst() {
  if (!pending_) return;
  pending_ = false;
  Status rolled_back = wal_->Abort();
  if (!rolled_back.ok()) {
    // The segment tail is in an unknown state; appending more records
    // over it could interleave garbage into the log.
    poisoned_ = true;
  }
}

Status DurableLog::Checkpoint(const View& view) {
  if (pending_) {
    return Status::Internal(
        "checkpoint requested mid-batch: the image would not match the "
        "committed record stream");
  }
  if (poisoned_) {
    return Status::Internal(
        "durable log poisoned by an earlier IO failure — Recover() first");
  }
  const uint64_t epoch = next_seq_ - 1;
  CheckpointMeta meta;
  meta.epoch = epoch;
  meta.ext_counter = ext_counter_;
  meta.program_crc = program_crc_;
  meta.wal_offset = wal_ != nullptr ? wal_->end_offset() : 0;
  meta.atoms = view.atoms().size();
  std::string file = EncodeCheckpoint(meta, parser::SerializeView(view));

  const std::string final_path = PathFor(CheckpointFileName(epoch));
  const std::string tmp_path = final_path + ".tmp";
  MMV_RETURN_NOT_OK(fs_->WriteFile(tmp_path, file));
  MMV_RETURN_NOT_OK(fs_->Sync(tmp_path));
  // The publication point: a crash before this rename leaves the previous
  // checkpoint + WAL authoritative, a crash after it leaves the new one.
  MMV_RETURN_NOT_OK(fs_->Rename(tmp_path, final_path));

  MMV_RETURN_NOT_OK(OpenSegment(epoch, 0));
  last_checkpoint_epoch_ = epoch;
  records_since_checkpoint_ = 0;
  bytes_since_checkpoint_ = 0;
  ++checkpoints_written_;
  return CollectGarbage();
}

Status DurableLog::OpenSegment(uint64_t base, uint64_t existing_bytes) {
  const std::string path = PathFor(WalSegmentFileName(base));
  if (existing_bytes == 0) {
    // Materialize the empty segment eagerly so the directory always names
    // the segment its newest checkpoint starts.
    MMV_RETURN_NOT_OK(fs_->WriteFile(path, ""));
  }
  wal_ = std::make_unique<Wal>(fs_, path, options_.sync, options_.sync_bytes,
                               existing_bytes);
  return Status::OK();
}

Status DurableLog::CollectGarbage() {
  MMV_ASSIGN_OR_RETURN(std::vector<std::string> names, fs_->List(dir_));
  std::vector<uint64_t> ckpt_epochs;
  std::vector<std::pair<uint64_t, std::string>> segs;
  for (const std::string& name : names) {
    if (Result<uint64_t> e = ParseCheckpointFileName(name); e.ok()) {
      ckpt_epochs.push_back(*e);
    } else if (Result<uint64_t> b = ParseWalSegmentFileName(name); b.ok()) {
      segs.emplace_back(*b, name);
    }
  }
  std::sort(ckpt_epochs.begin(), ckpt_epochs.end());
  const size_t keep = static_cast<size_t>(
      std::max(1, options_.keep_checkpoints));
  if (ckpt_epochs.size() <= keep) return Status::OK();
  // Everything below the OLDEST retained checkpoint is collectable: its
  // checkpoints are superseded and its segments hold only records the
  // retained checkpoints already cover.
  const uint64_t floor = ckpt_epochs[ckpt_epochs.size() - keep];
  for (size_t i = 0; i + keep < ckpt_epochs.size(); ++i) {
    MMV_RETURN_NOT_OK(fs_->Remove(PathFor(CheckpointFileName(ckpt_epochs[i]))));
  }
  for (const auto& [base, name] : segs) {
    if (base < floor) {
      MMV_RETURN_NOT_OK(fs_->Remove(PathFor(name)));
    }
  }
  return Status::OK();
}

}  // namespace durability
}  // namespace mmv
