#include "durability/wal.h"

#include "common/crc32c.h"

namespace mmv {
namespace durability {

namespace {

constexpr size_t kHeaderBytes = 8;  // u32 len + u32 crc
constexpr size_t kSeqBytes = 8;     // u64 seq leads the body

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
uint32_t GetU32(std::string_view data, size_t at) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(data[at + static_cast<size_t>(i)]);
  }
  return v;
}
uint64_t GetU64(std::string_view data, size_t at) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(data[at + static_cast<size_t>(i)]);
  }
  return v;
}

}  // namespace

std::string EncodeWalRecord(uint64_t seq, std::string_view payload) {
  std::string body;
  body.reserve(kSeqBytes + payload.size());
  PutU64(&body, seq);
  body.append(payload);
  std::string record;
  record.reserve(kHeaderBytes + body.size());
  PutU32(&record, static_cast<uint32_t>(body.size()));
  PutU32(&record, Crc32c(body));
  record.append(body);
  return record;
}

Result<WalScan> ScanWalSegment(std::string_view data, const std::string& label,
                               bool tolerate_torn_tail) {
  WalScan scan;
  size_t at = 0;
  while (at < data.size()) {
    size_t remaining = data.size() - at;
    if (remaining < kHeaderBytes) {
      // Partial frame header: a torn final append (only the final segment
      // can legitimately end this way).
      if (!tolerate_torn_tail) {
        return Status::ParseError("WAL corruption in " + label +
                                  ": partial record header at offset " +
                                  std::to_string(at) +
                                  " of a non-final segment");
      }
      scan.torn_bytes = remaining;
      break;
    }
    uint64_t len = GetU32(data, at);
    uint32_t crc = GetU32(data, at + 4);
    if (len < kSeqBytes) {
      // The length field was fully written when the record was appended
      // (tears shorten, they do not alter), so an impossible length is
      // corruption wherever it appears.
      return Status::ParseError(
          "WAL corruption in " + label + ": impossible record length " +
          std::to_string(len) + " at offset " + std::to_string(at));
    }
    if (remaining - kHeaderBytes < len) {
      if (!tolerate_torn_tail) {
        return Status::ParseError("WAL corruption in " + label +
                                  ": partial record body at offset " +
                                  std::to_string(at) +
                                  " of a non-final segment");
      }
      scan.torn_bytes = remaining;
      break;
    }
    std::string_view body = data.substr(at + kHeaderBytes, len);
    if (Crc32c(body) != crc) {
      // A complete frame with a bad checksum cannot be a torn append:
      // fail loudly, even on the final record.
      return Status::ParseError("WAL corruption in " + label +
                                ": checksum mismatch at offset " +
                                std::to_string(at));
    }
    WalRecord record;
    record.seq = GetU64(body, 0);
    record.payload = std::string(body.substr(kSeqBytes));
    if (!scan.records.empty() && record.seq <= scan.records.back().seq) {
      return Status::ParseError(
          "WAL corruption in " + label + ": non-increasing seq " +
          std::to_string(record.seq) + " at offset " + std::to_string(at));
    }
    scan.records.push_back(std::move(record));
    at += kHeaderBytes + len;
    scan.valid_bytes = at;
  }
  return scan;
}

Status Wal::Append(uint64_t seq, std::string_view payload) {
  if (pending_bytes_ != 0) {
    return Status::Internal("WAL record already pending on " + path_);
  }
  std::string record = EncodeWalRecord(seq, payload);
  MMV_RETURN_NOT_OK(fs_->Append(path_, record));
  pending_bytes_ = record.size();
  return Status::OK();
}

Status Wal::Commit(uint64_t* appended_bytes, bool* synced) {
  if (appended_bytes != nullptr) *appended_bytes = pending_bytes_;
  if (synced != nullptr) *synced = false;
  end_offset_ += pending_bytes_;
  unsynced_bytes_ += pending_bytes_;
  pending_bytes_ = 0;
  ++records_;
  bool want_sync = sync_ == SyncPolicy::kEveryBatch ||
                   (sync_ == SyncPolicy::kEveryBytes &&
                    unsynced_bytes_ >= sync_bytes_);
  if (want_sync) {
    MMV_RETURN_NOT_OK(SyncNow());
    if (synced != nullptr) *synced = true;
  }
  return Status::OK();
}

Status Wal::Abort() {
  if (pending_bytes_ == 0) return Status::OK();
  pending_bytes_ = 0;
  return fs_->Truncate(path_, end_offset_);
}

Status Wal::SyncNow() {
  MMV_RETURN_NOT_OK(fs_->Sync(path_));
  unsynced_bytes_ = 0;
  ++syncs_;
  return Status::OK();
}

}  // namespace durability
}  // namespace mmv
