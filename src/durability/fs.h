// Filesystem seam of the durability layer (wal.h / checkpoint.h /
// durable_log.h): every byte the WAL and checkpointer touch goes through
// this interface, so the crash-recovery contract can be tested without a
// real disk and with precisely injected faults.
//
// Three implementations:
//   - PosixFs   — the real thing (stdio + POSIX fsync/rename), used by the
//                 example binaries and any production embedding.
//   - MemFs     — an in-memory file map for tests and the cold-start
//                 recovery benchmark; supports targeted byte corruption.
//   - FaultFs   — wraps another Fs and simulates a process/machine crash:
//                 after a configured number of mutating operations every
//                 further mutation fails (and is NOT applied), optionally
//                 tearing the crashing write so only a prefix persists —
//                 exactly the torn-final-record regime recovery must
//                 tolerate.
//
// All methods return Status/Result; the durability layer propagates IO
// errors loudly instead of limping on (a WAL that silently drops records
// is worse than no WAL).

#ifndef MMV_DURABILITY_FS_H_
#define MMV_DURABILITY_FS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mmv {
namespace durability {

/// \brief Abstract filesystem. Paths are plain strings; directories are
/// separated with '/'. Implementations need not be thread-safe — the
/// durability layer is single-writer by contract (one DurableLog per
/// state directory), matching maintenance itself.
class Fs {
 public:
  virtual ~Fs() = default;

  /// \brief Reads a whole file. NotFound if it does not exist.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// \brief True iff \p path names an existing file.
  virtual Result<bool> Exists(const std::string& path) = 0;

  /// \brief File NAMES (not paths) directly inside \p dir, sorted
  /// ascending. Missing directory reads as empty.
  virtual Result<std::vector<std::string>> List(const std::string& dir) = 0;

  /// \brief Creates or replaces \p path with \p data.
  virtual Status WriteFile(const std::string& path,
                           std::string_view data) = 0;

  /// \brief Appends \p data to \p path, creating it if missing.
  virtual Status Append(const std::string& path, std::string_view data) = 0;

  /// \brief Truncates \p path to \p size bytes (size must not exceed the
  /// current file size).
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  /// \brief Atomically renames \p from to \p to (replacing \p to). The
  /// checkpointer's publication primitive.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// \brief Removes \p path (OK if absent — retention GC is idempotent).
  virtual Status Remove(const std::string& path) = 0;

  /// \brief Durability barrier: data previously written to \p path
  /// survives a crash after Sync returns.
  virtual Status Sync(const std::string& path) = 0;

  /// \brief Creates \p dir (and parents). OK if it already exists.
  virtual Status CreateDir(const std::string& dir) = 0;
};

/// \brief Real-disk implementation (stdio + POSIX).
class PosixFs : public Fs {
 public:
  Result<std::string> ReadFile(const std::string& path) override;
  Result<bool> Exists(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& dir) override;
  Status WriteFile(const std::string& path, std::string_view data) override;
  Status Append(const std::string& path, std::string_view data) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status Sync(const std::string& path) override;
  Status CreateDir(const std::string& dir) override;
};

/// \brief In-memory implementation for tests and benchmarks.
class MemFs : public Fs {
 public:
  Result<std::string> ReadFile(const std::string& path) override;
  Result<bool> Exists(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& dir) override;
  Status WriteFile(const std::string& path, std::string_view data) override;
  Status Append(const std::string& path, std::string_view data) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status Sync(const std::string& path) override;
  Status CreateDir(const std::string& dir) override;

  /// \brief XORs \p mask into the byte at \p offset of \p path — the
  /// bit-flip fault of the recovery matrix. Fails if out of range.
  Status Corrupt(const std::string& path, uint64_t offset, uint8_t mask);

  /// \brief Total number of files held (for retention-GC assertions).
  size_t file_count() const { return files_.size(); }

 private:
  std::map<std::string, std::string> files_;  // sorted: List is a scan
};

/// \brief The crash plan of one FaultFs run.
struct FaultPlan {
  /// Mutating operations (WriteFile/Append/Truncate/Rename/Remove) allowed
  /// to complete before the simulated crash; -1 = never crash. The
  /// crashing operation itself FAILS and is not applied (except for the
  /// torn-write variant below), and every mutation after it fails too.
  int64_t crash_after_writes = -1;
  /// When true and the crashing operation is a WriteFile/Append, a PREFIX
  /// of its data persists before the failure — the torn final write.
  bool tear_crashing_write = false;
  /// Bytes of the crashing write that persist under tear_crashing_write
  /// (clamped to [0, data.size())).
  uint64_t tear_keep_bytes = 0;
};

/// \brief Wraps an Fs and injects the FaultPlan. Reads always pass
/// through; after the crash point the wrapped state is frozen (mutations
/// return Internal("simulated crash...")) — recovery then runs against the
/// UNDERLYING fs, exactly like a restarted process against the disk image.
class FaultFs : public Fs {
 public:
  FaultFs(Fs* base, FaultPlan plan) : base_(base), plan_(plan) {}

  Result<std::string> ReadFile(const std::string& path) override;
  Result<bool> Exists(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& dir) override;
  Status WriteFile(const std::string& path, std::string_view data) override;
  Status Append(const std::string& path, std::string_view data) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status Sync(const std::string& path) override;
  Status CreateDir(const std::string& dir) override;

  /// \brief Mutating operations that completed successfully so far. A
  /// dry run with crash_after_writes = -1 measures a workload's write
  /// count; the crash-point sweep then iterates over [0, writes_done()].
  int64_t writes_done() const { return writes_done_; }

  /// \brief True once the simulated crash fired.
  bool crashed() const { return crashed_; }

 private:
  // Returns true when the caller must fail WITHOUT applying the
  // operation; `torn` additionally requests the prefix-persist path.
  bool CrashGate(bool tearable, bool* torn);
  Status CrashStatus() const {
    return Status::Internal("simulated crash: durability fault injection");
  }

  Fs* base_;
  FaultPlan plan_;
  int64_t writes_done_ = 0;
  bool crashed_ = false;
};

}  // namespace durability
}  // namespace mmv

#endif  // MMV_DURABILITY_FS_H_
