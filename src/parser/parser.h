// Parser for mediator programs and update requests.
//
// Grammar (informal):
//
//   program   := (clause '.')*
//   clause    := atom [ '<-' element (SEP element)* ]
//   element   := primitive | 'not' '(' primitive (SEP primitive)* ')' | atom
//   primitive := term CMP term
//              | 'in' '(' term ',' dcall ')'
//              | 'notin' '(' term ',' dcall ')'
//   dcall     := ident ':' ident '(' [term (',' term)*] ')'
//   atom      := ident '(' [term (',' term)*] ')'
//   term      := VAR | INT | FLOAT | STRING | 'true' | 'false' | ident
//   SEP       := '&' | ',' | '||'
//   CMP       := '=' | '!=' | '<' | '<=' | '>' | '>='
//
// Lowercase identifiers in term position denote string constants
// (Datalog-style), so p(a, b) abbreviates p("a", "b"). Variables are scoped
// per clause and numbered from the program's VarFactory; their source names
// are recorded in the program's VarNames for pretty printing.

#ifndef MMV_PARSER_PARSER_H_
#define MMV_PARSER_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "core/program.h"

namespace mmv {
namespace parser {

/// \brief A parsed constrained atom `pred(args) <- constraint`, used for
/// update requests (deletions / insertions, paper Section 3).
struct ParsedAtom {
  Symbol pred;
  TermVec args;
  Constraint constraint;
};

/// \brief Parses a whole program (clauses are numbered in order).
Result<Program> ParseProgram(std::string_view text);

/// \brief Parses one clause using (and extending) \p program's variable
/// numbering, without adding it to the program.
Result<Clause> ParseClause(std::string_view text, Program* program);

/// \brief Parses a constrained atom such as
/// `seenwith("corleone", Y) <- Y != "smith"`.
Result<ParsedAtom> ParseConstrainedAtom(std::string_view text,
                                        Program* program);

}  // namespace parser
}  // namespace mmv

#endif  // MMV_PARSER_PARSER_H_
