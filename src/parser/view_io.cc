#include "parser/view_io.h"

#include <sstream>

#include "common/strings.h"
#include "parser/parser.h"

namespace mmv {
namespace parser {

namespace {

void AppendAtomLine(std::ostringstream& os, const ViewAtom& a) {
  os << PrintAtom(a.pred, a.args, a.constraint, /*names=*/nullptr);
  if (a.constraint.is_true()) {
    os << " <- true";  // keep the "<-" anchor for the reader
  }
  os << " @ " << a.support.ToString() << " # " << a.depth << "\n";
}

}  // namespace

std::string SerializeView(const View& view) {
  std::ostringstream os;
  for (const ViewAtom& a : view.atoms()) AppendAtomLine(os, a);
  return os.str();
}

std::string SerializeImage(const SnapshotImage& image) {
  std::ostringstream os;
  image.ForEachAtom([&os](const ViewAtom& a) {
    AppendAtomLine(os, a);
    return true;
  });
  return os.str();
}

std::string SerializeAtoms(const std::vector<ViewAtom>& atoms) {
  std::ostringstream os;
  for (const ViewAtom& a : atoms) AppendAtomLine(os, a);
  return os.str();
}

namespace {

// Recursive-descent support parser over "<n, <...>, ...>".
class SupportParser {
 public:
  explicit SupportParser(std::string_view s) : s_(s) {}

  Result<Support> Parse() {
    MMV_ASSIGN_OR_RETURN(Support root, ParseOne());
    SkipSpace();
    if (pos_ != s_.size()) {
      return Status::ParseError("trailing characters after support at " +
                                Where());
    }
    return root;
  }

 private:
  void SkipSpace() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) ++pos_;
  }
  std::string Where() const { return "offset " + std::to_string(pos_); }
  Result<Support> ParseOne() {
    SkipSpace();
    if (pos_ >= s_.size() || s_[pos_] != '<') {
      return Status::ParseError("expected '<' in support at " + Where());
    }
    ++pos_;
    SkipSpace();
    // Clause number (possibly negative for external supports).
    bool neg = false;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      neg = true;
      ++pos_;
    }
    if (pos_ >= s_.size() || !isdigit(static_cast<unsigned char>(s_[pos_]))) {
      return Status::ParseError("expected clause number in support at " +
                                Where());
    }
    int num = 0;
    while (pos_ < s_.size() && isdigit(static_cast<unsigned char>(s_[pos_]))) {
      num = num * 10 + (s_[pos_] - '0');
      ++pos_;
    }
    if (neg) num = -num;
    std::vector<Support> children;
    SkipSpace();
    while (pos_ < s_.size() && s_[pos_] == ',') {
      ++pos_;
      MMV_ASSIGN_OR_RETURN(Support child, ParseOne());
      children.push_back(std::move(child));
      SkipSpace();
    }
    if (pos_ >= s_.size() || s_[pos_] != '>') {
      return Status::ParseError("expected '>' in support at " + Where());
    }
    ++pos_;
    return Support(num, std::move(children));
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

Result<Support> ParseSupport(std::string_view text) {
  return SupportParser(Trim(text)).Parse();
}

namespace {

// Prefixes a parse failure with the 1-based line number it occurred on —
// every malformed-input path of this module reports WHERE, so a corrupt
// multi-thousand-line view or burst file is debuggable.
Status AtLine(size_t line_no, const Status& error) {
  return Status(error.code(),
                "line " + std::to_string(line_no) + ": " + error.message());
}

}  // namespace

Result<std::vector<ParsedUpdate>> ParseBurst(std::string_view text,
                                             Program* program) {
  std::vector<ParsedUpdate> updates;
  size_t line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw);
    if (line.empty() || line[0] == '%') continue;

    bool is_delete;
    if (line.rfind("del ", 0) == 0) {
      is_delete = true;
    } else if (line.rfind("ins ", 0) == 0) {
      is_delete = false;
    } else {
      return AtLine(line_no,
                    Status::ParseError(
                        "burst line must start with 'del ' or 'ins ': " +
                        std::string(line)));
    }
    Result<ParsedAtom> atom = ParseConstrainedAtom(line.substr(4), program);
    if (!atom.ok()) return AtLine(line_no, atom.status());
    updates.push_back(ParsedUpdate{is_delete, std::move(*atom)});
  }
  return updates;
}

std::string SerializeBurst(const std::vector<ParsedUpdate>& updates,
                           const VarNames* names) {
  std::ostringstream os;
  for (const ParsedUpdate& u : updates) {
    os << (u.is_delete ? "del " : "ins ")
       << PrintAtom(u.atom.pred, u.atom.args, u.atom.constraint, names);
    if (u.atom.constraint.is_true()) {
      os << " <- true";  // keep the "<-" anchor for the reader
    }
    os << ".\n";
  }
  return os.str();
}

Result<View> DeserializeView(std::string_view text, Program* program) {
  View view;
  size_t line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw);
    if (line.empty() || line[0] == '%') continue;

    // Split off "# depth" then "@ support".
    int depth = 0;
    size_t hash = line.rfind(" # ");
    if (hash != std::string_view::npos) {
      std::string d(Trim(line.substr(hash + 3)));
      // Strict decimal parse: std::stoi would silently accept trailing
      // garbage ("3x" -> 3) and a corrupt depth would slip through.
      bool neg = !d.empty() && d[0] == '-';
      std::string_view digits = std::string_view(d).substr(neg ? 1 : 0);
      bool valid = !digits.empty() && digits.size() <= 9;
      for (char c : digits) {
        if (c < '0' || c > '9') valid = false;
      }
      if (!valid) {
        return AtLine(line_no,
                      Status::ParseError("bad depth field: '" + d + "'"));
      }
      for (char c : digits) depth = depth * 10 + (c - '0');
      if (neg) depth = -depth;
      line = Trim(line.substr(0, hash));
    }
    size_t at = line.rfind(" @ ");
    if (at == std::string_view::npos) {
      return AtLine(line_no,
                    Status::ParseError("missing ' @ <support>' in line: " +
                                       std::string(line)));
    }
    Result<Support> support = ParseSupport(line.substr(at + 3));
    if (!support.ok()) return AtLine(line_no, support.status());
    std::string atom_text(Trim(line.substr(0, at)));
    atom_text += ".";

    Result<ParsedAtom> atom = ParseConstrainedAtom(atom_text, program);
    if (!atom.ok()) return AtLine(line_no, atom.status());
    ViewAtom va;
    va.pred = std::move(atom->pred);
    va.args = std::move(atom->args);
    va.constraint = std::move(atom->constraint);
    va.support = std::move(*support);
    va.depth = depth;
    view.Add(std::move(va));
  }
  return view;
}

}  // namespace parser
}  // namespace mmv
