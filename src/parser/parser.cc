#include "parser/parser.h"

#include <unordered_map>

#include "parser/lexer.h"

namespace mmv {
namespace parser {

namespace {

// Recursive-descent parser over a token stream. Variable names are scoped
// per clause: the scope map resets between clauses.
class ParserImpl {
 public:
  ParserImpl(std::vector<Token> tokens, Program* program)
      : tokens_(std::move(tokens)), program_(program) {}

  Result<Clause> ParseOneClause() {
    scope_.clear();
    MMV_ASSIGN_OR_RETURN(Clause c, ParseClauseBody());
    MMV_RETURN_NOT_OK(Expect(TokKind::kEof, "after clause"));
    return c;
  }

  Result<ParsedAtom> ParseOneConstrainedAtom() {
    scope_.clear();
    MMV_ASSIGN_OR_RETURN(Clause c, ParseClauseBody());
    if (!c.body.empty()) {
      return Status::ParseError(
          "constrained atom must not contain body atoms");
    }
    MMV_RETURN_NOT_OK(Expect(TokKind::kEof, "after constrained atom"));
    ParsedAtom out;
    out.pred = std::move(c.head_pred);
    out.args = std::move(c.head_args);
    out.constraint = std::move(c.constraint);
    return out;
  }

  Status ParseWholeProgram() {
    while (Peek().kind != TokKind::kEof) {
      scope_.clear();
      MMV_ASSIGN_OR_RETURN(Clause c, ParseClauseBody());
      program_->AddClause(std::move(c));
    }
    return Status::OK();
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token Next() { return tokens_[pos_ < tokens_.size() ? pos_++ : pos_]; }
  bool Accept(TokKind k) {
    if (Peek().kind == k) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(TokKind k, const std::string& where) {
    if (Peek().kind != k) {
      return Status::ParseError(std::string("expected ") + TokKindName(k) +
                                " " + where + ", found " +
                                TokKindName(Peek().kind) + " at line " +
                                std::to_string(Peek().line));
    }
    ++pos_;
    return Status::OK();
  }
  // '&', ',' and '||' all separate elements.
  bool AcceptSep() {
    return Accept(TokKind::kAmp) || Accept(TokKind::kComma);
  }

  // clause := atom [ '<-' element (SEP element)* ] '.'
  Result<Clause> ParseClauseBody() {
    Clause c;
    MMV_ASSIGN_OR_RETURN(BodyAtom head, ParseAtom());
    c.head_pred = std::move(head.pred);
    c.head_args = std::move(head.args);
    if (Accept(TokKind::kArrow)) {
      do {
        MMV_RETURN_NOT_OK(ParseElement(&c));
      } while (AcceptSep());
    }
    MMV_RETURN_NOT_OK(Expect(TokKind::kDot, "at end of clause"));
    return c;
  }

  // element := not-block | in/notin | atom-or-comparison
  Status ParseElement(Clause* c) {
    const Token& t = Peek();
    if (t.kind == TokKind::kIdent && t.text == "not" &&
        Peek(1).kind == TokKind::kLParen) {
      pos_ += 2;
      MMV_ASSIGN_OR_RETURN(NotBlock block, ParseNotBlockBody());
      c->constraint.AddNot(std::move(block));
      return Status::OK();
    }
    if (t.kind == TokKind::kIdent && (t.text == "in" || t.text == "notin") &&
        Peek(1).kind == TokKind::kLParen) {
      MMV_ASSIGN_OR_RETURN(Primitive p, ParsePrimitive());
      c->constraint.Add(std::move(p));
      return Status::OK();
    }
    if (t.kind == TokKind::kIdent && t.text == "true" &&
        Peek(1).kind != TokKind::kLParen) {
      ++pos_;  // `true` as a no-op conjunct
      return Status::OK();
    }
    // Body atom `ident(...)` not followed by a comparison, or a comparison
    // primitive starting with a term.
    if (t.kind == TokKind::kIdent && Peek(1).kind == TokKind::kLParen) {
      MMV_ASSIGN_OR_RETURN(BodyAtom atom, ParseAtom());
      c->body.push_back(std::move(atom));
      return Status::OK();
    }
    MMV_ASSIGN_OR_RETURN(Primitive p, ParsePrimitive());
    c->constraint.Add(std::move(p));
    return Status::OK();
  }

  // Body of a not-block after 'not(' was consumed: a conjunction of
  // primitives and nested not(...) blocks, up to the closing ')'.
  Result<NotBlock> ParseNotBlockBody() {
    NotBlock block;
    do {
      const Token& t = Peek();
      if (t.kind == TokKind::kIdent && t.text == "not" &&
          Peek(1).kind == TokKind::kLParen) {
        pos_ += 2;
        MMV_ASSIGN_OR_RETURN(NotBlock inner, ParseNotBlockBody());
        block.inner.push_back(std::move(inner));
      } else {
        MMV_ASSIGN_OR_RETURN(Primitive p, ParsePrimitive());
        block.prims.push_back(std::move(p));
      }
    } while (AcceptSep());
    MMV_RETURN_NOT_OK(Expect(TokKind::kRParen, "closing not(...)"));
    return block;
  }

  // primitive := in/notin '(' term ',' dcall ')' | term CMP term
  Result<Primitive> ParsePrimitive() {
    const Token& t = Peek();
    if (t.kind == TokKind::kIdent && (t.text == "in" || t.text == "notin") &&
        Peek(1).kind == TokKind::kLParen) {
      bool positive = t.text == "in";
      pos_ += 2;
      MMV_ASSIGN_OR_RETURN(Term x, ParseTerm());
      MMV_RETURN_NOT_OK(Expect(TokKind::kComma, "in in(X, d:f(...))"));
      MMV_ASSIGN_OR_RETURN(DomainCall call, ParseDomainCall());
      MMV_RETURN_NOT_OK(Expect(TokKind::kRParen, "closing in(...)"));
      return positive ? Primitive::In(std::move(x), std::move(call))
                      : Primitive::NotInCall(std::move(x), std::move(call));
    }
    MMV_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    TokKind op = Peek().kind;
    switch (op) {
      case TokKind::kEq:
      case TokKind::kNeq:
      case TokKind::kLt:
      case TokKind::kLe:
      case TokKind::kGt:
      case TokKind::kGe:
        break;
      default:
        return Status::ParseError(
            "expected comparison operator after term at line " +
            std::to_string(Peek().line));
    }
    ++pos_;
    MMV_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
    switch (op) {
      case TokKind::kEq:
        return Primitive::Eq(std::move(lhs), std::move(rhs));
      case TokKind::kNeq:
        return Primitive::Neq(std::move(lhs), std::move(rhs));
      case TokKind::kLt:
        return Primitive::Cmp(std::move(lhs), CmpOp::kLt, std::move(rhs));
      case TokKind::kLe:
        return Primitive::Cmp(std::move(lhs), CmpOp::kLe, std::move(rhs));
      case TokKind::kGt:
        return Primitive::Cmp(std::move(lhs), CmpOp::kGt, std::move(rhs));
      default:
        return Primitive::Cmp(std::move(lhs), CmpOp::kGe, std::move(rhs));
    }
  }

  // dcall := ident ':' ident '(' [terms] ')'
  Result<DomainCall> ParseDomainCall() {
    DomainCall call;
    if (Peek().kind != TokKind::kIdent) {
      return Status::ParseError("expected domain name at line " +
                                std::to_string(Peek().line));
    }
    call.domain = Next().text;
    MMV_RETURN_NOT_OK(Expect(TokKind::kColon, "in domain call"));
    if (Peek().kind != TokKind::kIdent) {
      return Status::ParseError("expected function name at line " +
                                std::to_string(Peek().line));
    }
    call.function = Next().text;
    MMV_RETURN_NOT_OK(Expect(TokKind::kLParen, "in domain call"));
    if (!Accept(TokKind::kRParen)) {
      do {
        MMV_ASSIGN_OR_RETURN(Term t, ParseTerm());
        call.args.push_back(std::move(t));
      } while (Accept(TokKind::kComma));
      MMV_RETURN_NOT_OK(Expect(TokKind::kRParen, "closing domain call"));
    }
    return call;
  }

  // atom := ident '(' [terms] ')'
  Result<BodyAtom> ParseAtom() {
    if (Peek().kind != TokKind::kIdent) {
      return Status::ParseError("expected predicate name at line " +
                                std::to_string(Peek().line));
    }
    BodyAtom atom;
    atom.pred = Next().text;
    MMV_RETURN_NOT_OK(Expect(TokKind::kLParen, "after predicate name"));
    if (!Accept(TokKind::kRParen)) {
      do {
        MMV_ASSIGN_OR_RETURN(Term t, ParseTerm());
        atom.args.push_back(std::move(t));
      } while (Accept(TokKind::kComma));
      MMV_RETURN_NOT_OK(Expect(TokKind::kRParen, "closing atom"));
    }
    return atom;
  }

  Result<Term> ParseTerm() {
    Token t = Next();
    switch (t.kind) {
      case TokKind::kLBracket: {
        // Tuple literal [t1, ..., tn]: all elements must be constants.
        ValueList values;
        if (!Accept(TokKind::kRBracket)) {
          do {
            MMV_ASSIGN_OR_RETURN(Term el, ParseTerm());
            if (!el.is_const()) {
              return Status::ParseError(
                  "tuple literals may only contain constants (line " +
                  std::to_string(t.line) + ")");
            }
            values.push_back(el.constant());
          } while (Accept(TokKind::kComma));
          MMV_RETURN_NOT_OK(Expect(TokKind::kRBracket, "closing tuple"));
        }
        return Term::Const(Value(std::move(values)));
      }
      case TokKind::kVar: {
        if (t.text == "_") {
          // Anonymous variable: always fresh.
          VarId id = program_->factory()->Fresh();
          program_->names()->Set(id, "_");
          return Term::Var(id);
        }
        auto it = scope_.find(t.text);
        if (it != scope_.end()) return Term::Var(it->second);
        VarId id = program_->factory()->Fresh();
        scope_[t.text] = id;
        program_->names()->Set(id, t.text);
        return Term::Var(id);
      }
      case TokKind::kInt:
        return Term::Const(Value(t.int_val));
      case TokKind::kFloat:
        return Term::Const(Value(t.float_val));
      case TokKind::kString:
        return Term::Const(Value(t.text));
      case TokKind::kIdent:
        if (t.text == "true") return Term::Const(Value(true));
        if (t.text == "false") return Term::Const(Value(false));
        // Bare lowercase identifier: a string constant (Datalog style).
        return Term::Const(Value(t.text));
      default:
        return Status::ParseError(std::string("expected a term, found ") +
                                  TokKindName(t.kind) + " at line " +
                                  std::to_string(t.line));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Program* program_;
  std::unordered_map<std::string, VarId> scope_;
};

}  // namespace

Result<Program> ParseProgram(std::string_view text) {
  MMV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Program program;
  ParserImpl impl(std::move(tokens), &program);
  MMV_RETURN_NOT_OK(impl.ParseWholeProgram());
  return program;
}

Result<Clause> ParseClause(std::string_view text, Program* program) {
  MMV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  ParserImpl impl(std::move(tokens), program);
  return impl.ParseOneClause();
}

Result<ParsedAtom> ParseConstrainedAtom(std::string_view text,
                                        Program* program) {
  MMV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  ParserImpl impl(std::move(tokens), program);
  return impl.ParseOneConstrainedAtom();
}

}  // namespace parser
}  // namespace mmv
