// View (de)serialization: a line-oriented text format so materialized
// mediated views survive process restarts (a production necessity the
// paper's HERMES system implies but does not spell out).
//
// Format, one atom per line:
//
//   pred(arg1, ..., argk) <- constraint @ <support> # depth
//
// Variables print as X<id>; deserialization re-scopes them per atom (the
// ids are local to each constrained atom anyway). Supports use the paper's
// angle-bracket notation <Cn, <...>, ...>.

#ifndef MMV_PARSER_VIEW_IO_H_
#define MMV_PARSER_VIEW_IO_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "core/program.h"
#include "core/view.h"

namespace mmv {
namespace parser {

/// \brief Serializes \p view into the line format above.
std::string SerializeView(const View& view);

/// \brief Parses a serialized view. Fresh variable ids are drawn from
/// \p program's factory so the atoms can be joined against the program.
Result<View> DeserializeView(std::string_view text, Program* program);

/// \brief Parses a support in the paper notation, e.g. "<4, <2, <3>>>".
Result<Support> ParseSupport(std::string_view text);

}  // namespace parser
}  // namespace mmv

#endif  // MMV_PARSER_VIEW_IO_H_
