// View (de)serialization: a line-oriented text format so materialized
// mediated views survive process restarts (a production necessity the
// paper's HERMES system implies but does not spell out).
//
// Format, one atom per line:
//
//   pred(arg1, ..., argk) <- constraint @ <support> # depth
//
// Variables print as X<id>; deserialization re-scopes them per atom (the
// ids are local to each constrained atom anyway). Supports use the paper's
// angle-bracket notation <Cn, <...>, ...>.
//
// The same module reads and writes BURST files — recorded update workloads
// replayed by the batch-maintenance tests and benchmarks. One update per
// line, '%' comments and blank lines ignored:
//
//   del pred(arg1, ..., argk) <- constraint.
//   ins pred(arg1, ..., argk) <- constraint.

#ifndef MMV_PARSER_VIEW_IO_H_
#define MMV_PARSER_VIEW_IO_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/program.h"
#include "core/view.h"
#include "parser/parser.h"

namespace mmv {
namespace parser {

/// \brief Serializes \p view into the line format above.
std::string SerializeView(const View& view);

/// \brief Serializes an immutable snapshot image in its global atom order
/// — byte-identical to SerializeView of the view it was extracted from
/// (the checkpoint writer consumes the image so it never deep-reads the
/// live view).
std::string SerializeImage(const SnapshotImage& image);

/// \brief Serializes one run of atoms in the same line format (delta
/// checkpoints write per-pred segments with this).
std::string SerializeAtoms(const std::vector<ViewAtom>& atoms);

/// \brief Parses a serialized view. Fresh variable ids are drawn from
/// \p program's factory so the atoms can be joined against the program.
Result<View> DeserializeView(std::string_view text, Program* program);

/// \brief Parses a support in the paper notation, e.g. "<4, <2, <3>>>".
Result<Support> ParseSupport(std::string_view text);

/// \brief One line of a burst file: a deletion or insertion request.
struct ParsedUpdate {
  bool is_delete = false;
  ParsedAtom atom;
};

/// \brief Parses a burst-workload file (format above). Variable ids are
/// drawn from \p program's factory, standardizing each update apart.
Result<std::vector<ParsedUpdate>> ParseBurst(std::string_view text,
                                             Program* program);

/// \brief Serializes updates into the burst line format (inverse of
/// ParseBurst up to variable naming).
std::string SerializeBurst(const std::vector<ParsedUpdate>& updates,
                           const VarNames* names = nullptr);

}  // namespace parser
}  // namespace mmv

#endif  // MMV_PARSER_VIEW_IO_H_
