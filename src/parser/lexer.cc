#include "parser/lexer.h"

#include <cctype>

namespace mmv {
namespace parser {

const char* TokKindName(TokKind k) {
  switch (k) {
    case TokKind::kIdent:
      return "identifier";
    case TokKind::kVar:
      return "variable";
    case TokKind::kInt:
      return "integer";
    case TokKind::kFloat:
      return "float";
    case TokKind::kString:
      return "string";
    case TokKind::kLParen:
      return "'('";
    case TokKind::kRParen:
      return "')'";
    case TokKind::kLBracket:
      return "'['";
    case TokKind::kRBracket:
      return "']'";
    case TokKind::kComma:
      return "','";
    case TokKind::kDot:
      return "'.'";
    case TokKind::kColon:
      return "':'";
    case TokKind::kArrow:
      return "'<-'";
    case TokKind::kEq:
      return "'='";
    case TokKind::kNeq:
      return "'!='";
    case TokKind::kLt:
      return "'<'";
    case TokKind::kLe:
      return "'<='";
    case TokKind::kGt:
      return "'>'";
    case TokKind::kGe:
      return "'>='";
    case TokKind::kAmp:
      return "'&'";
    case TokKind::kEof:
      return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Lex(std::string_view src) {
  std::vector<Token> out;
  int line = 1, col = 1;
  size_t i = 0;
  auto make = [&](TokKind k) {
    Token t;
    t.kind = k;
    t.line = line;
    t.col = col;
    return t;
  };
  auto error = [&](const std::string& msg) {
    return Status::ParseError(msg + " at line " + std::to_string(line) +
                              ", col " + std::to_string(col));
  };

  while (i < src.size()) {
    char ch = src[i];
    if (ch == '\n') {
      ++line;
      col = 1;
      ++i;
      continue;
    }
    if (ch == ' ' || ch == '\t' || ch == '\r') {
      ++col;
      ++i;
      continue;
    }
    // Comments: % ... or // ...
    if (ch == '%' || (ch == '/' && i + 1 < src.size() && src[i + 1] == '/')) {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
      size_t start = i;
      while (i < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[i])) ||
              src[i] == '_')) {
        ++i;
      }
      Token t = make(std::isupper(static_cast<unsigned char>(ch)) ||
                             ch == '_'
                         ? TokKind::kVar
                         : TokKind::kIdent);
      t.text = std::string(src.substr(start, i - start));
      col += static_cast<int>(i - start);
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        (ch == '-' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      size_t start = i;
      if (ch == '-') ++i;
      bool is_float = false;
      while (i < src.size() &&
             (std::isdigit(static_cast<unsigned char>(src[i])) ||
              src[i] == '.')) {
        if (src[i] == '.') {
          // Lookahead: "3." followed by non-digit is INT then DOT.
          if (i + 1 >= src.size() ||
              !std::isdigit(static_cast<unsigned char>(src[i + 1]))) {
            break;
          }
          is_float = true;
        }
        ++i;
      }
      std::string text(src.substr(start, i - start));
      Token t = make(is_float ? TokKind::kFloat : TokKind::kInt);
      t.text = text;
      if (is_float) {
        t.float_val = std::stod(text);
      } else {
        t.int_val = std::stoll(text);
      }
      col += static_cast<int>(i - start);
      out.push_back(std::move(t));
      continue;
    }
    if (ch == '"' || ch == '\'') {
      char quote = ch;
      size_t start = ++i;
      while (i < src.size() && src[i] != quote && src[i] != '\n') ++i;
      if (i >= src.size() || src[i] != quote) {
        return error("unterminated string literal");
      }
      Token t = make(TokKind::kString);
      t.text = std::string(src.substr(start, i - start));
      col += static_cast<int>(i - start) + 2;
      ++i;
      out.push_back(std::move(t));
      continue;
    }
    switch (ch) {
      case '(':
        out.push_back(make(TokKind::kLParen));
        ++i;
        ++col;
        continue;
      case ')':
        out.push_back(make(TokKind::kRParen));
        ++i;
        ++col;
        continue;
      case '[':
        out.push_back(make(TokKind::kLBracket));
        ++i;
        ++col;
        continue;
      case ']':
        out.push_back(make(TokKind::kRBracket));
        ++i;
        ++col;
        continue;
      case ',':
        out.push_back(make(TokKind::kComma));
        ++i;
        ++col;
        continue;
      case '.':
        out.push_back(make(TokKind::kDot));
        ++i;
        ++col;
        continue;
      case ':':
        out.push_back(make(TokKind::kColon));
        ++i;
        ++col;
        continue;
      case '&':
        out.push_back(make(TokKind::kAmp));
        ++i;
        ++col;
        continue;
      case '|':
        if (i + 1 < src.size() && src[i + 1] == '|') {
          out.push_back(make(TokKind::kAmp));  // '||' == '&'
          i += 2;
          col += 2;
          continue;
        }
        return error("stray '|'");
      case '=':
        out.push_back(make(TokKind::kEq));
        ++i;
        ++col;
        continue;
      case '!':
        if (i + 1 < src.size() && src[i + 1] == '=') {
          out.push_back(make(TokKind::kNeq));
          i += 2;
          col += 2;
          continue;
        }
        return error("stray '!'");
      case '<':
        if (i + 1 < src.size() && src[i + 1] == '-') {
          out.push_back(make(TokKind::kArrow));
          i += 2;
          col += 2;
          continue;
        }
        if (i + 1 < src.size() && src[i + 1] == '=') {
          out.push_back(make(TokKind::kLe));
          i += 2;
          col += 2;
          continue;
        }
        out.push_back(make(TokKind::kLt));
        ++i;
        ++col;
        continue;
      case '>':
        if (i + 1 < src.size() && src[i + 1] == '=') {
          out.push_back(make(TokKind::kGe));
          i += 2;
          col += 2;
          continue;
        }
        out.push_back(make(TokKind::kGt));
        ++i;
        ++col;
        continue;
      default:
        return error(std::string("unexpected character '") + ch + "'");
    }
  }
  out.push_back(make(TokKind::kEof));
  return out;
}

}  // namespace parser
}  // namespace mmv
