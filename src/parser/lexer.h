// Tokenizer for the mediator rule language.
//
// Example of the accepted surface syntax (paper clause (3)):
//
//   suspect(X, Y) <- swlndc(X, Y) &
//                    in(T, dbase:select_eq("empl_abc", "name", Y)).
//
// `||` and `,` are accepted as conjunction separators alongside `&`, so
// rules can be written in the paper's "constraint || body" style.

#ifndef MMV_PARSER_LEXER_H_
#define MMV_PARSER_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mmv {
namespace parser {

/// \brief Token kinds of the rule language.
enum class TokKind : uint8_t {
  kIdent,    ///< lowercase identifier: predicate / domain / function / const
  kVar,      ///< uppercase or _ identifier: variable
  kInt,      ///< integer literal
  kFloat,    ///< floating literal
  kString,   ///< "quoted string"
  kLParen,   ///< (
  kRParen,   ///< )
  kLBracket, ///< [
  kRBracket, ///< ]
  kComma,    ///< ,
  kDot,      ///< .
  kColon,    ///< :
  kArrow,    ///< <-
  kEq,       ///< =
  kNeq,      ///< !=
  kLt,       ///< <
  kLe,       ///< <=
  kGt,       ///< >
  kGe,       ///< >=
  kAmp,      ///< &  (also accepts ||)
  kEof,
};

/// \brief One lexed token.
struct Token {
  TokKind kind;
  std::string text;  ///< identifier / literal payload
  int64_t int_val = 0;
  double float_val = 0;
  int line = 1;
  int col = 1;
};

/// \brief Tokenizes \p src; supports '%' and '//' line comments.
Result<std::vector<Token>> Lex(std::string_view src);

/// \brief Human-readable token-kind name for diagnostics.
const char* TokKindName(TokKind k);

}  // namespace parser
}  // namespace mmv

#endif  // MMV_PARSER_LEXER_H_
