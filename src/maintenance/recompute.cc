#include "maintenance/recompute.h"

#include "maintenance/rewrite.h"

namespace mmv {
namespace maint {

Result<View> Recompute(const Program& program, DcaEvaluator* evaluator,
                       const FixpointOptions& options, FixpointStats* stats) {
  MMV_ASSIGN_OR_RETURN(View view,
                       Materialize(program, evaluator, options, stats));
  Solver solver(evaluator, options.solver);
  PruneUnsolvable(&view, &solver);
  return view;
}

Result<View> RecomputeAfterDeletion(const Program& program,
                                    const UpdateAtom& request,
                                    DcaEvaluator* evaluator,
                                    const FixpointOptions& options,
                                    FixpointStats* stats) {
  Program rewritten = RewriteForDeletion(program, request, evaluator);
  return Recompute(rewritten, evaluator, options, stats);
}

Result<View> RecomputeAfterInsertion(const Program& program,
                                     const UpdateAtom& request,
                                     DcaEvaluator* evaluator,
                                     const FixpointOptions& options,
                                     FixpointStats* stats) {
  Program extended = AppendFact(program, request);
  return Recompute(extended, evaluator, options, stats);
}

}  // namespace maint
}  // namespace mmv
