// Construction of the paper's Del and Add input sets (Sections 3.1, 3.2)
// plus the shared instance-negation helper used by every maintenance
// algorithm.

#ifndef MMV_MAINTENANCE_DEL_ADD_H_
#define MMV_MAINTENANCE_DEL_ADD_H_

#include <optional>

#include "constraint/solver.h"
#include "core/program.h"
#include "core/view.h"

namespace mmv {
namespace maint {

/// \brief An update request: the constrained atom A(args) <- constraint
/// whose instances are to be deleted from / inserted into the view.
struct UpdateAtom {
  Symbol pred;
  TermVec args;
  Constraint constraint;  ///< true means "all instances of pred(args)"

  std::string ToString(const VarNames* names = nullptr) const;
};

/// \brief One element of the Del set: the solvable overlap of the request
/// with one view atom.
struct DelElement {
  size_t atom_index;       ///< which view atom it came from
  Constraint deleted_part; ///< phi ^ (X=Y) ^ psi, over the atom's head vars
};

/// \brief Builds Del (Section 3.1): for every view atom A(Y) <- phi with
/// phi ^ (X=Y) ^ psi solvable, records that atom and the overlap constraint.
///
/// The overlap constraint is simplified but re-expressed over the original
/// atom's head variables so it can be negated against the atom later.
///
/// \p factory (when given) issues the renamings that standardize the
/// request apart; callers that keep using their factory afterwards should
/// pass it so all fresh variables of one maintenance run come from a
/// single stream. Defaults to a local factory seeded fresh w.r.t. the
/// view and request.
Result<std::vector<DelElement>> BuildDel(const View& view,
                                         const UpdateAtom& request,
                                         Solver* solver,
                                         VarFactory* factory = nullptr);

/// \brief Builds the Add set (Section 3.2): constrained atoms covering the
/// requested instances minus everything already in the view —
/// A(X) <- psi ^ not(phi_1[X]) ^ ... ^ not(phi_m[X]).
///
/// Returns zero atoms when the request is provably already covered, and
/// at most one atom otherwise. \p ext_support tags the atom's support with
/// a unique negative clause number (external facts have no deriving clause);
/// the counter is decremented per inserted atom.
Result<std::vector<ViewAtom>> BuildAdd(const View& view,
                                       const UpdateAtom& request,
                                       Solver* solver, int* ext_support);

/// \brief Builds the block not("target_args is an instance of
/// (src_args, src_constraint)"), substituting src head variables by the
/// target argument terms (so the negation shares variables with the
/// positive context instead of quantifying them away).
///
/// Non-head variables of the source constraint are renamed fresh; under the
/// per-literal negation semantics they read existentially, which over-keeps
/// instances (never over-deletes) — see DESIGN.md notes on negation.
NotBlock NegatedInstanceBlock(const TermVec& target_args,
                              const TermVec& src_args,
                              const Constraint& src_constraint,
                              VarFactory* factory);

/// \brief The positive counterpart of NegatedInstanceBlock: the constraint
/// "target_args is an instance of (src_args, src_constraint)", with src head
/// variables substituted by the target argument terms.
Constraint InstanceConstraint(const TermVec& target_args,
                              const TermVec& src_args,
                              const Constraint& src_constraint,
                              VarFactory* factory);

/// \brief Default cap on grounding a deletion constraint (see
/// GroundedNegationBlocks).
constexpr size_t kDefaultGroundNegationLimit = 4096;

/// \brief Grounds the deletion constraint (src over head \p args) into one
/// equality block per deleted instance, for exact subtraction.
///
/// A symbolic not(delta) is only exact when delta mentions head variables
/// alone: internal variables read existentially under per-literal negation,
/// which can make the block trivially satisfiable (nothing subtracted).
/// When delta's head solutions are finitely enumerable at the current
/// domain state, this returns blocks {arg1 = v1 & ... & argk = vk} — one
/// per instance — which are exact regardless of internal variables.
/// Returns nullopt when enumeration is incomplete/approximate or exceeds
/// \p limit (callers then fall back to the symbolic block).
std::optional<std::vector<NotBlock>> GroundedNegationBlocks(
    const TermVec& args, const Constraint& delta, DcaEvaluator* evaluator,
    size_t limit = kDefaultGroundNegationLimit);

/// \brief Subtracts delta from \p constraint over \p args: grounded blocks
/// when possible, the symbolic not(delta) otherwise. Sets the constraint to
/// false when delta covers everything. Returns false (and leaves the
/// constraint untouched) when delta provably denotes no instances.
bool SubtractDeletedPart(const TermVec& args, const Constraint& delta,
                         DcaEvaluator* evaluator, Constraint* constraint);

/// \brief A VarFactory guaranteed fresh w.r.t. \p program, \p view and
/// \p request.
VarFactory FreshFactory(const Program& program, const View& view,
                        const UpdateAtom* request = nullptr);

/// \brief As above, but fresh w.r.t. every request of a batch.
VarFactory FreshFactory(const Program& program, const View& view,
                        const std::vector<UpdateAtom>& requests);

/// \brief Removes every atom whose constraint is unsatisfiable (StDel
/// step 4 and the final DRed cleanup). Returns the number removed.
size_t PruneUnsolvable(View* view, Solver* solver);

}  // namespace maint
}  // namespace mmv

#endif  // MMV_MAINTENANCE_DEL_ADD_H_
