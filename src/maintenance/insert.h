// Algorithm 3: constrained-atom insertion (paper Section 3.2).
//
// The Add set (the requested instances minus everything already present) is
// unfolded through the program: P_ADD_{k+1} extends P_ADD_k with every
// derivation using at least one P_ADD body atom (the rest drawn from the
// view). The new view is M union P_ADD — this is exactly a seminaive
// continuation of the fixpoint with Add as the delta.

#ifndef MMV_MAINTENANCE_INSERT_H_
#define MMV_MAINTENANCE_INSERT_H_

#include "core/fixpoint.h"
#include "maintenance/del_add.h"

namespace mmv {
namespace maint {

/// \brief Counters of one insertion run.
struct InsertStats {
  size_t add_atoms = 0;          ///< size of the initial Add set
  size_t atoms_added = 0;        ///< total new atoms (Add + consequences)
  int64_t unfold_derivations = 0;
  int64_t index_probes = 0;      ///< join-pipeline counters aggregated
  int64_t ground_rejects = 0;    ///  across the run's seminaive
  int64_t rename_skipped = 0;    ///  continuations (kIndexed only)
  int64_t plan_reorders = 0;     ///< plan-layer counters, aggregated the
  int64_t probe_intersections = 0;  ///  same way (see FixpointStats)
  int64_t plan_cache_hits = 0;
  // Parallel fan-out shape (thread-count-dependent, see FixpointStats).
  int64_t partitions_run = 0;
  int64_t partition_skipped_small = 0;
  int64_t evaluator_clones = 0;
  int64_t mutex_evaluator_engaged = 0;
  bool truncated = false;
  SolveStats solver;             ///< BuildAdd diffing solver counters
  SolveStats unfold_solver;      ///< continuation (fixpoint) solver counters
};

/// \brief Inserts the request's instances into \p view in place
/// (Theorem 3: the result is instance-equivalent to the fixpoint of the
/// insertion rewrite).
///
/// \p ext_support_counter disambiguates supports of externally inserted
/// atoms (they have no deriving clause); pass a counter that persists
/// across insertions into the same view.
Status InsertAtom(const Program& program, View* view,
                  const UpdateAtom& request, DcaEvaluator* evaluator,
                  const FixpointOptions& options, InsertStats* stats,
                  int* ext_support_counter);

/// \brief Inserts ALL requests' instances in one pass: the Add sets are
/// built request by request (each seeing the externals appended before it,
/// so duplicate requests collapse to nothing), then ONE seminaive
/// continuation closes the view over all surviving externals at once.
///
/// Instance-equivalent to one-at-a-time insertion — the continuation
/// derives exactly the consequences the per-request fixpoints would — but a
/// K-request burst costs one propagation instead of K.
Status InsertBatch(const Program& program, View* view,
                   const std::vector<UpdateAtom>& requests,
                   DcaEvaluator* evaluator, const FixpointOptions& options,
                   InsertStats* stats, int* ext_support_counter);

}  // namespace maint
}  // namespace mmv

#endif  // MMV_MAINTENANCE_INSERT_H_
