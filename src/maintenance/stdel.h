// Algorithm 2: the Straight Delete (StDel) algorithm (paper Section 3.1.2).
//
// Every view atom carries a support — its derivation tree of clause numbers
// (Lemma 1: supports are unique identities under duplicate semantics).
// Deletion propagates along supports:
//
//   step 2: atoms overlapping the Del set get their constraint restricted
//           (phi ^ not(delta)) and the pair (delta, spt(F)) enters P_OUT;
//   step 3: any atom whose support has a *direct child* matching a P_OUT
//           pair gets the lifted deleted part subtracted, generating a new
//           pair — until no replacements happen;
//   step 4: atoms whose constraints became unsolvable are removed.
//
// No rederivation step, no duplicate elimination: this is the paper's
// improvement over (Extended) DRed and over the counting algorithm.

#ifndef MMV_MAINTENANCE_STDEL_H_
#define MMV_MAINTENANCE_STDEL_H_

#include "core/fixpoint.h"
#include "maintenance/del_add.h"

namespace mmv {
namespace maint {

/// \brief Counters of one StDel run.
struct StDelStats {
  size_t del_elements = 0;
  size_t pout_pairs = 0;      ///< pairs pushed into P_OUT
  size_t replacements = 0;    ///< constraint replacements performed
  size_t removed_unsolvable = 0;
  SolveStats solver;
};

/// \brief Deletes the request's instances from \p view in place.
///
/// Requires a view materialized with DupSemantics::kDuplicate (supports are
/// the propagation index; Lemma 1 guarantees uniqueness). Correct for
/// recursive and non-recursive programs alike (Theorem 2).
Status DeleteStDel(const Program& program, View* view,
                   const UpdateAtom& request, DcaEvaluator* evaluator,
                   const SolverOptions& solver_options = {},
                   StDelStats* stats = nullptr);

}  // namespace maint
}  // namespace mmv

#endif  // MMV_MAINTENANCE_STDEL_H_
