// Declarative semantics of updates as program rewrites (paper Section 3).
//
// Deletion of A(X) <- psi: P' guards every A-headed clause with
// not(psi[X <- head args]) (rewrite (4)); the least fixpoint of P' is the
// intended post-deletion view (Theorems 1, 2 compare against it).
//
// Insertion of A(X) <- psi: the intended post-insertion instances are those
// of P with the request appended as a constrained fact (the paper's P-flat
// additionally rewrites duplicate derivations; at the instance level the
// fact-extension is equivalent and is what the correctness tests check).

#ifndef MMV_MAINTENANCE_REWRITE_H_
#define MMV_MAINTENANCE_REWRITE_H_

#include "maintenance/del_add.h"

namespace mmv {
namespace maint {

/// \brief Builds P' for deletion (rewrite (4)). Clause numbering is
/// preserved, so supports remain comparable.
///
/// When \p evaluator is provided, the not-guards are grounded over the
/// deleted instances where finitely enumerable (exact even when the
/// request constraint has non-head variables); otherwise they remain
/// symbolic.
Program RewriteForDeletion(const Program& program, const UpdateAtom& request,
                           DcaEvaluator* evaluator = nullptr);

/// \brief Builds the insertion oracle program: P plus the request as a
/// constrained fact.
Program AppendFact(const Program& program, const UpdateAtom& request);

}  // namespace maint
}  // namespace mmv

#endif  // MMV_MAINTENANCE_REWRITE_H_
