#include "maintenance/external.h"

namespace mmv {
namespace maint {

Result<MaintainedView> MaintainedView::Create(const Program* program,
                                              dom::DomainManager* domains,
                                              MaintenancePolicy policy,
                                              FixpointOptions options) {
  options.op = policy == MaintenancePolicy::kWpSyntactic ? OperatorKind::kWp
                                                         : OperatorKind::kTp;
  MaintainedView mv(program, domains, policy, options);
  FixpointStats stats;
  MMV_ASSIGN_OR_RETURN(mv.view_,
                       Materialize(*program, domains, options, &stats));
  return mv;
}

Status MaintainedView::OnExternalChange() {
  if (policy_ == MaintenancePolicy::kWpSyntactic) {
    // Theorem 4: M_{t+1} is syntactically identical to M_t. Nothing to do.
    return Status::OK();
  }
  FixpointStats stats;
  MMV_ASSIGN_OR_RETURN(view_,
                       Materialize(*program_, domains_, options_, &stats));
  recomputes_++;
  maintenance_derivations_ += stats.derivations_attempted;
  return Status::OK();
}

namespace {

void CollectFromBlock(const NotBlock& b, std::vector<DomainCall>* out) {
  for (const Primitive& p : b.prims) {
    if (p.kind == PrimKind::kIn || p.kind == PrimKind::kNotIn) {
      out->push_back(p.call);
    }
  }
  for (const NotBlock& i : b.inner) CollectFromBlock(i, out);
}

}  // namespace

std::vector<DomainCall> CollectDomainCalls(const Program& program) {
  std::vector<DomainCall> calls;
  for (const Clause& c : program.clauses()) {
    for (const Primitive& p : c.constraint.prims()) {
      if (p.kind == PrimKind::kIn || p.kind == PrimKind::kNotIn) {
        calls.push_back(p.call);
      }
    }
    for (const NotBlock& b : c.constraint.nots()) {
      CollectFromBlock(b, &calls);
    }
  }
  // Deduplicate structurally.
  std::vector<DomainCall> out;
  for (const DomainCall& c : calls) {
    bool dup = false;
    for (const DomainCall& q : out) {
      if (q == c) {
        dup = true;
        break;
      }
    }
    if (!dup) out.push_back(c);
  }
  return out;
}

}  // namespace maint
}  // namespace mmv
