#include "maintenance/rewrite.h"

namespace mmv {
namespace maint {

Program RewriteForDeletion(const Program& program, const UpdateAtom& request,
                           DcaEvaluator* evaluator) {
  Program out;
  VarFactory factory = program.factory();
  // Keep fresh ids clear of the request's variables too.
  {
    std::vector<VarId> vars;
    CollectVars(request.args, &vars);
    for (VarId v : request.constraint.Variables()) vars.push_back(v);
    for (VarId v : vars) factory.ReserveAbove(v);
  }
  for (const Clause& c : program.clauses()) {
    Clause copy = c;
    if (c.head_pred == request.pred &&
        c.head_args.size() == request.args.size()) {
      Constraint guard_delta = InstanceConstraint(
          c.head_args, request.args, request.constraint, &factory);
      SubtractDeletedPart(c.head_args, guard_delta, evaluator,
                          &copy.constraint);
    }
    out.AddClause(std::move(copy));
  }
  // Propagate the factory high-water mark and names for printing.
  out.factory()->ReserveAbove(factory.issued());
  *out.names() = program.names();
  return out;
}

Program AppendFact(const Program& program, const UpdateAtom& request) {
  Program out;
  for (const Clause& c : program.clauses()) {
    out.AddClause(c);
  }
  Clause fact;
  fact.head_pred = request.pred;
  fact.head_args = request.args;
  fact.constraint = request.constraint;
  out.AddClause(std::move(fact));
  out.factory()->ReserveAbove(program.factory().issued());
  *out.names() = program.names();
  return out;
}

}  // namespace maint
}  // namespace mmv
