#include "maintenance/del_add.h"

#include <algorithm>

#include "constraint/simplify.h"
#include "query/enumerate.h"

namespace mmv {
namespace maint {

std::string UpdateAtom::ToString(const VarNames* names) const {
  return PrintAtom(pred, args, constraint, names);
}

namespace {

// Largest variable id occurring in a term vector / constraint.
VarId MaxVar(const TermVec& args, const Constraint& c) {
  VarId max_id = -1;
  std::vector<VarId> vars;
  CollectVars(args, &vars);
  for (VarId v : c.Variables()) vars.push_back(v);
  for (VarId v : vars) max_id = std::max(max_id, v);
  return max_id;
}

// Re-expresses a simplified atom's constraint over the original head
// argument terms: conjoins orig[k] = simplified_head[k] wherever
// simplification rewrote a head position.
Constraint RebindHead(const TermVec& orig_head, const SimplifiedAtom& s) {
  Constraint c = s.constraint;
  if (c.is_false()) return c;
  for (size_t k = 0; k < orig_head.size() && k < s.head.size(); ++k) {
    if (!(orig_head[k] == s.head[k])) {
      c.Add(Primitive::Eq(orig_head[k], s.head[k]));
    }
  }
  return c;
}

}  // namespace

VarFactory FreshFactory(const Program& program, const View& view,
                        const UpdateAtom* request) {
  VarFactory f = program.factory();
  f.ReserveAbove(view.MaxVarId());
  if (request) {
    f.ReserveAbove(MaxVar(request->args, request->constraint));
  }
  return f;
}

VarFactory FreshFactory(const Program& program, const View& view,
                        const std::vector<UpdateAtom>& requests) {
  VarFactory f = FreshFactory(program, view);
  for (const UpdateAtom& r : requests) {
    f.ReserveAbove(MaxVar(r.args, r.constraint));
  }
  return f;
}

Result<std::vector<DelElement>> BuildDel(const View& view,
                                         const UpdateAtom& request,
                                         Solver* solver,
                                         VarFactory* factory_in) {
  std::vector<DelElement> del;
  // A fresh factory for standardizing the request apart from each atom.
  VarFactory local;
  VarFactory& factory = factory_in ? *factory_in : local;
  factory.ReserveAbove(view.MaxVarId());
  factory.ReserveAbove(MaxVar(request.args, request.constraint));

  for (size_t i : view.AtomsFor(request.pred)) {
    const ViewAtom& atom = view.atoms()[i];
    if (atom.args.size() != request.args.size()) {
      continue;
    }
    // Standardize the request apart from the atom.
    std::vector<VarId> req_vars;
    CollectVars(request.args, &req_vars);
    for (VarId v : request.constraint.Variables()) {
      if (std::find(req_vars.begin(), req_vars.end(), v) == req_vars.end()) {
        req_vars.push_back(v);
      }
    }
    Substitution renaming = FreshRenaming(req_vars, &factory);
    TermVec req_args = renaming.Apply(request.args);
    Constraint overlap = atom.constraint;
    overlap.AndWith(renaming.Apply(request.constraint));
    for (size_t k = 0; k < req_args.size(); ++k) {
      overlap.Add(Primitive::Eq(atom.args[k], req_args[k]));
    }
    SimplifiedAtom s = SimplifyAtom(atom.args, overlap);
    Constraint deleted_part = RebindHead(atom.args, s);
    if (deleted_part.is_false()) continue;
    SolveOutcome o = solver->Solve(deleted_part);
    if (o == SolveOutcome::kError) return solver->last_status();
    if (!IsSolvable(o)) continue;
    del.push_back(DelElement{i, std::move(deleted_part)});
  }
  return del;
}

Constraint InstanceConstraint(const TermVec& target_args,
                              const TermVec& src_args,
                              const Constraint& src_constraint,
                              VarFactory* factory) {
  // Substitute src head variables by the target argument terms; extra
  // occurrences and constant positions turn into equalities (they share
  // variables with the positive context via target_args).
  Substitution sub;
  std::vector<Primitive> extra;
  for (size_t k = 0; k < src_args.size() && k < target_args.size(); ++k) {
    const Term& a = src_args[k];
    if (a.is_var() && !sub.Contains(a.var())) {
      sub.Bind(a.var(), target_args[k]);
    } else {
      extra.push_back(Primitive::Eq(target_args[k], sub.Apply(a)));
    }
  }
  // Remaining (non-head) variables of the source constraint: fresh names.
  for (VarId v : src_constraint.Variables()) {
    if (!sub.Contains(v)) sub.Bind(v, Term::Var(factory->Fresh()));
  }
  Constraint body = sub.Apply(src_constraint);
  for (Primitive& p : extra) body.Add(std::move(p));
  return body;
}

NotBlock NegatedInstanceBlock(const TermVec& target_args,
                              const TermVec& src_args,
                              const Constraint& src_constraint,
                              VarFactory* factory) {
  Constraint body =
      InstanceConstraint(target_args, src_args, src_constraint, factory);
  if (body.is_true()) {
    // not(true): represent as a block whose body is the vacuous equality —
    // callers normally guard against this (deleting *all* instances).
    body.Add(Primitive::Eq(Term::Const(Value(static_cast<int64_t>(0))),
                           Term::Const(Value(static_cast<int64_t>(0)))));
  }
  return Constraint::Negate(body);
}

Result<std::vector<ViewAtom>> BuildAdd(const View& view,
                                       const UpdateAtom& request,
                                       Solver* solver, int* ext_support) {
  VarFactory factory;
  factory.ReserveAbove(view.MaxVarId());
  factory.ReserveAbove(MaxVar(request.args, request.constraint));

  Constraint add_constraint = request.constraint;
  for (size_t i : view.AtomsFor(request.pred)) {
    const ViewAtom& atom = view.atoms()[i];
    if (atom.args.size() != request.args.size()) {
      continue;
    }
    if (atom.constraint.is_false()) continue;
    if (atom.constraint.is_true() && atom.args == request.args) {
      // The whole predicate instance space is already present.
      return std::vector<ViewAtom>{};
    }
    Constraint covered = atom.constraint;
    // Express "request instance already equals this atom's instance".
    NotBlock block = NegatedInstanceBlock(request.args, atom.args,
                                          covered, &factory);
    add_constraint.AddNot(std::move(block));
    if (add_constraint.is_false()) return std::vector<ViewAtom>{};
  }

  SimplifiedAtom s = SimplifyAtom(request.args, add_constraint);
  if (s.constraint.is_false()) return std::vector<ViewAtom>{};
  SolveOutcome o = solver->Solve(s.constraint);
  if (o == SolveOutcome::kError) return solver->last_status();
  if (!IsSolvable(o)) return std::vector<ViewAtom>{};

  ViewAtom atom;
  atom.pred = request.pred;
  atom.args = s.head;
  atom.constraint = std::move(s.constraint);
  atom.support = Support(--(*ext_support));
  atom.depth = 0;
  return std::vector<ViewAtom>{std::move(atom)};
}

std::optional<std::vector<NotBlock>> GroundedNegationBlocks(
    const TermVec& args, const Constraint& delta, DcaEvaluator* evaluator,
    size_t limit) {
  if (delta.is_false()) return std::vector<NotBlock>{};
  ViewAtom tmp;
  tmp.pred = "_delta";
  tmp.args = args;
  tmp.constraint = delta;
  query::EnumerateOptions opts;
  opts.max_instances = limit;
  Result<query::InstanceSet> set =
      query::EnumerateAtom(tmp, evaluator, opts);
  if (!set.ok()) return std::nullopt;
  if (!set->complete || set->approximate) return std::nullopt;

  std::vector<NotBlock> blocks;
  blocks.reserve(set->instances.size());
  for (const query::Instance& inst : set->instances) {
    NotBlock b;
    for (size_t k = 0; k < args.size() && k < inst.values.size(); ++k) {
      if (args[k].is_var()) {
        b.prims.push_back(
            Primitive::Eq(args[k], Term::Const(inst.values[k])));
      }
      // Constant positions necessarily match the enumerated value.
    }
    blocks.push_back(std::move(b));
  }
  return blocks;
}

bool SubtractDeletedPart(const TermVec& args, const Constraint& delta,
                         DcaEvaluator* evaluator, Constraint* constraint) {
  if (delta.is_false()) return false;
  if (delta.is_true()) {
    *constraint = Constraint::False();
    return true;
  }
  // Coverage fast path: when delta provably covers the whole atom
  // (constraint ^ not(delta) unsatisfiable), the atom simply dies — no
  // grounding needed. The symbolic check is conservative under the
  // existential reading (it may fail to prove coverage, never the
  // converse), so taking this branch is always sound.
  {
    Solver cover_solver(evaluator);
    Constraint covered = *constraint;
    covered.AddNot(Constraint::Negate(delta));
    if (cover_solver.Solve(covered) == SolveOutcome::kUnsat) {
      *constraint = Constraint::False();
      return true;
    }
  }
  std::optional<std::vector<NotBlock>> blocks =
      GroundedNegationBlocks(args, delta, evaluator);
  if (blocks.has_value()) {
    if (blocks->empty()) return false;  // delta denotes no instances now
    for (NotBlock& b : *blocks) {
      // An all-constant head yields an empty equality body: the single
      // instance IS the atom, so the subtraction empties it.
      constraint->AddNot(std::move(b));
      if (constraint->is_false()) break;
    }
    return true;
  }
  // Fallback: symbolic subtraction (exact when delta only mentions head
  // variables; conservative — never over-deletes — otherwise).
  constraint->AddNot(Constraint::Negate(delta));
  return true;
}

size_t PruneUnsolvable(View* view, Solver* solver) {
  return view->RemoveIf([&](const ViewAtom& a) {
    if (a.constraint.is_false()) return true;
    SolveOutcome o = solver->Solve(a.constraint);
    return o == SolveOutcome::kUnsat;
  });
}

}  // namespace maint
}  // namespace mmv
