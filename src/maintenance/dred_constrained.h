// Algorithm 1: the Extended DRed algorithm (paper Section 3.1.1) — the
// ground DRed deletion algorithm of Gupta, Mumick & Subrahmanian lifted to
// constrained atoms.
//
// Phases (instrumented separately for the E2 ablation):
//   1. P_OUT unfolding: over-approximate the constrained atoms possibly
//      affected by the deletion, by unfolding Del through the program with
//      exactly one body position drawn from the previous P_OUT layer.
//   2. Overestimate M': subtract every P_OUT overlap from the view
//      (eq. (5): phi ^ not(gamma)).
//   3. Rederivation: T_{P''}^w(M') where P'' keeps only the clauses whose
//      head predicates were affected (our conservative realization of the
//      paper's clause-elimination steps 3a-3c), each guarded per rewrite
//      (4). This is the expensive re-derivation step that Algorithm 2
//      (StDel) eliminates.

#ifndef MMV_MAINTENANCE_DRED_CONSTRAINED_H_
#define MMV_MAINTENANCE_DRED_CONSTRAINED_H_

#include "core/fixpoint.h"
#include "maintenance/del_add.h"

namespace mmv {
namespace maint {

/// \brief Phase timers and counters of one Extended DRed run.
struct DRedStats {
  size_t del_elements = 0;
  size_t pout_atoms = 0;
  size_t atoms_overestimated = 0;  ///< view atoms whose constraint shrank
  size_t pruned_clauses = 0;       ///< clauses dropped when building P''
  int64_t rederive_derivations = 0;
  size_t removed_unsolvable = 0;
  double unfold_ms = 0;
  double overestimate_ms = 0;
  double rederive_ms = 0;
  SolveStats solver;
};

/// \brief Deletes the request's instances from \p view over \p program,
/// returning the maintained view (Theorem 1: instance-equivalent to the
/// least fixpoint of the deletion rewrite P').
///
/// Designed for duplicate-free views (DupSemantics::kSet); it also accepts
/// duplicate views but may then retain more syntactic duplicates.
///
/// IMPORTANT for sequences of deletions: a deletion changes the *view
/// definition* — declaratively the program becomes P' (rewrite (4)). The
/// rederivation phase of any LATER update must therefore run against the
/// rewritten program, or it would re-derive the earlier deletion's
/// instances. After each DeleteDRed call, advance the program with
/// RewriteForDeletion(program, request) before issuing the next update.
/// (StDel does not need this: it never re-derives.)
Result<View> DeleteDRed(const Program& program, const View& view,
                        const UpdateAtom& request, DcaEvaluator* evaluator,
                        const FixpointOptions& options = {},
                        DRedStats* stats = nullptr);

}  // namespace maint
}  // namespace mmv

#endif  // MMV_MAINTENANCE_DRED_CONSTRAINED_H_
