// Maintenance under external changes (paper Section 4).
//
// When an integrated domain's behaviour changes (f_t -> f_{t+1}), a view
// materialized with T_P is stale: solvability was decided with f_t, so the
// view must be recomputed (or patched from the REM/ADD sets).
//
// A view materialized with W_P needs *no maintenance whatsoever*
// (Theorem 4): the syntactic form never changes, and its instances [M]
// evaluated at query time with the current function meanings coincide with
// the T_P view of the same time point (Corollary 1). MaintainedView wraps a
// view under either policy so benchmarks and examples can compare them.

#ifndef MMV_MAINTENANCE_EXTERNAL_H_
#define MMV_MAINTENANCE_EXTERNAL_H_

#include "core/fixpoint.h"
#include "domain/domain.h"

namespace mmv {
namespace maint {

/// \brief How a materialized view reacts to external domain changes.
enum class MaintenancePolicy : uint8_t {
  kTpRecompute,  ///< T_P semantics: rematerialize on every external change
  kWpSyntactic,  ///< W_P semantics: never touch the view (Theorem 4)
};

/// \brief A materialized mediated view plus its maintenance policy.
class MaintainedView {
 public:
  /// \brief Materializes the initial view under the policy's operator.
  static Result<MaintainedView> Create(const Program* program,
                                       dom::DomainManager* domains,
                                       MaintenancePolicy policy,
                                       FixpointOptions options = {});

  /// \brief Notifies the view that integrated domains changed.
  ///
  /// kTpRecompute rematerializes at the current clock tick; kWpSyntactic
  /// does nothing (and counts the no-op, for the E4 comparison).
  Status OnExternalChange();

  const View& view() const { return view_; }
  const Program& program() const { return *program_; }
  dom::DomainManager* domains() const { return domains_; }
  MaintenancePolicy policy() const { return policy_; }

  /// \brief Number of rematerializations performed so far.
  int64_t recompute_count() const { return recomputes_; }

  /// \brief Total derivations spent on maintenance (0 under W_P).
  int64_t maintenance_derivations() const { return maintenance_derivations_; }

 private:
  MaintainedView(const Program* program, dom::DomainManager* domains,
                 MaintenancePolicy policy, FixpointOptions options)
      : program_(program),
        domains_(domains),
        policy_(policy),
        options_(options) {}

  const Program* program_;
  dom::DomainManager* domains_;
  MaintenancePolicy policy_;
  FixpointOptions options_;
  View view_;
  int64_t recomputes_ = 0;
  int64_t maintenance_derivations_ = 0;
};

/// \brief All distinct domain calls mentioned by a program's clause
/// constraints — the calls whose deltas (f+, f-) matter after an external
/// update.
std::vector<DomainCall> CollectDomainCalls(const Program& program);

}  // namespace maint
}  // namespace mmv

#endif  // MMV_MAINTENANCE_EXTERNAL_H_
