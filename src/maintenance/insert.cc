#include "maintenance/insert.h"

namespace mmv {
namespace maint {

Status InsertAtom(const Program& program, View* view,
                  const UpdateAtom& request, DcaEvaluator* evaluator,
                  const FixpointOptions& options, InsertStats* stats,
                  int* ext_support_counter) {
  InsertStats local;
  if (!stats) stats = &local;
  *stats = InsertStats();
  Solver solver(evaluator, options.solver);

  MMV_ASSIGN_OR_RETURN(
      std::vector<ViewAtom> add,
      BuildAdd(*view, request, &solver, ext_support_counter));
  stats->add_atoms = add.size();
  stats->solver = solver.stats();
  if (add.empty()) return Status::OK();  // already covered

  size_t old_size = view->size();
  View seeded = std::move(*view);
  for (ViewAtom& a : add) seeded.Add(std::move(a));

  FixpointStats fstats;
  FixpointOptions continuation = options;
  // The view's facts were derived at materialization time; re-deriving
  // them here would resurrect fact atoms deleted by earlier updates.
  continuation.derive_facts = false;
  MMV_ASSIGN_OR_RETURN(View result,
                       MaterializeFrom(program, std::move(seeded), evaluator,
                                       continuation, &fstats, old_size));
  stats->unfold_derivations = fstats.derivations_attempted;
  stats->truncated = fstats.truncated;
  stats->atoms_added = result.size() - old_size;
  *view = std::move(result);
  return Status::OK();
}

}  // namespace maint
}  // namespace mmv
