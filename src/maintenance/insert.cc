#include "maintenance/insert.h"

#include <unordered_map>
#include <unordered_set>

#include "constraint/reject_cache.h"
#include "plan/plan_cache.h"

namespace mmv {
namespace maint {

namespace {

// body predicate -> head predicates of the program's non-fact clauses.
std::unordered_map<Symbol, std::vector<Symbol>> RuleAdjacency(
    const Program& program) {
  std::unordered_map<Symbol, std::vector<Symbol>> adj;
  for (const Clause& c : program.clauses()) {
    if (c.IsFact()) continue;
    for (const BodyAtom& b : c.body) {
      adj[b.pred].push_back(c.head_pred);
    }
  }
  return adj;
}

// Adds every predicate derivable (in one or more rule steps) from \p from.
void AddReachable(
    const std::unordered_map<Symbol, std::vector<Symbol>>& adj, Symbol from,
    std::unordered_set<Symbol>* out) {
  std::vector<Symbol> frontier{from};
  while (!frontier.empty()) {
    Symbol pred = frontier.back();
    frontier.pop_back();
    auto it = adj.find(pred);
    if (it == adj.end()) continue;
    for (Symbol head : it->second) {
      if (out->insert(head).second) frontier.push_back(head);
    }
  }
}

}  // namespace

Status InsertAtom(const Program& program, View* view,
                  const UpdateAtom& request, DcaEvaluator* evaluator,
                  const FixpointOptions& options, InsertStats* stats,
                  int* ext_support_counter) {
  return InsertBatch(program, view, {request}, evaluator, options, stats,
                     ext_support_counter);
}

Status InsertBatch(const Program& program, View* view,
                   const std::vector<UpdateAtom>& requests,
                   DcaEvaluator* evaluator, const FixpointOptions& options,
                   InsertStats* stats, int* ext_support_counter) {
  InsertStats local;
  if (!stats) stats = &local;
  *stats = InsertStats();

  // One solver memo for the whole batch: the BuildAdd diffing solver and
  // every seminaive continuation below share it, so constraints re-solved
  // across flushes (and across requests) hit the memo. The external
  // database is fixed for the duration of the batch, which is exactly the
  // cache's validity contract.
  SolveCache batch_cache;
  RejectCache batch_reject_cache;
  FixpointOptions fix_options = options;
  SolverOptions solver_options = options.solver;
  if (options.join_mode == JoinMode::kIndexed) {
    if (fix_options.solve_cache == nullptr) {
      fix_options.solve_cache = &batch_cache;
    }
    if (solver_options.cache == nullptr) {
      solver_options.cache = fix_options.solve_cache;
    }
    // The rejection memo shares the batch-wide lifetime and validity
    // contract of the solve cache; the fast path never consults it when
    // disabled, so the off-mode oracle runs memo-free.
    if (options.solver.fastpath) {
      if (fix_options.reject_cache == nullptr) {
        fix_options.reject_cache = &batch_reject_cache;
      }
      if (solver_options.reject_cache == nullptr) {
        solver_options.reject_cache = fix_options.reject_cache;
      }
    }
  }
  // One plan cache for the whole batch: every flushed continuation below
  // reuses the clause plans compiled by the first, instead of recompiling
  // per flush. A caller-provided cache (e.g. ApplyBatch's batch-wide one)
  // takes precedence and carries the plans across insert runs too — but a
  // caller cache of the wrong mode would be rejected per engine run, so
  // substitute the batch-local one to keep cross-flush sharing.
  plan::PlanCache batch_plans(options.plan_mode);
  fix_options.plan_cache = plan::PlanCache::Select(
      fix_options.plan_cache, fix_options.plan_mode, &batch_plans);
  Solver solver(evaluator, solver_options);

  // Build the Add set incrementally: each request is diffed against the
  // view INCLUDING the externals appended for earlier requests, so a
  // request already covered (by the view or by a sibling insert) adds
  // nothing. Requests whose predicate is rule-reachable from an earlier
  // insert of this run could additionally be covered by that insert's not-
  // yet-derived CONSEQUENCES — exactly what sequential insertion would see
  // — so the pending continuation is flushed before diffing them. Bursts
  // over predicates that do not feed each other (the common external-fact
  // case) still cost one continuation total. A single request can never
  // flush, so skip the adjacency construction for it.
  std::unordered_map<Symbol, std::vector<Symbol>> adj;
  if (requests.size() > 1) adj = RuleAdjacency(program);
  std::unordered_set<Symbol> pending_consequences;
  size_t old_size = view->size();
  size_t flush_begin = old_size;
  auto flush = [&]() -> Status {
    if (flush_begin == view->size()) return Status::OK();
    FixpointStats fstats;
    MMV_RETURN_NOT_OK(ContinueFixpoint(program, view, evaluator, fix_options,
                                       &fstats, flush_begin));
    stats->unfold_derivations += fstats.derivations_attempted;
    stats->index_probes += fstats.index_probes;
    stats->ground_rejects += fstats.ground_rejects;
    stats->rename_skipped += fstats.rename_skipped;
    stats->plan_reorders += fstats.plan_reorders;
    stats->probe_intersections += fstats.probe_intersections;
    stats->plan_cache_hits += fstats.plan_cache_hits;
    stats->partitions_run += fstats.partitions_run;
    stats->partition_skipped_small += fstats.partition_skipped_small;
    stats->evaluator_clones += fstats.evaluator_clones;
    stats->mutex_evaluator_engaged += fstats.mutex_evaluator_engaged;
    stats->unfold_solver += fstats.solver;
    stats->truncated = stats->truncated || fstats.truncated;
    flush_begin = view->size();
    pending_consequences.clear();
    return Status::OK();
  };

  size_t add_atoms = 0;
  for (const UpdateAtom& request : requests) {
    if (pending_consequences.count(request.pred) != 0) {
      MMV_RETURN_NOT_OK(flush());
    }
    size_t before = view->size();
    MMV_ASSIGN_OR_RETURN(
        std::vector<ViewAtom> add,
        BuildAdd(*view, request, &solver, ext_support_counter));
    for (ViewAtom& a : add) view->Add(std::move(a));
    if (view->size() != before) {
      add_atoms += view->size() - before;
      AddReachable(adj, request.pred, &pending_consequences);
    }
  }
  stats->add_atoms = add_atoms;
  stats->solver = solver.stats();

  // One seminaive continuation closes the view over every external still
  // pending (Algorithm 3's P_ADD unfolding, batched).
  MMV_RETURN_NOT_OK(flush());
  stats->atoms_added = view->size() - old_size;
  return Status::OK();
}

}  // namespace maint
}  // namespace mmv
