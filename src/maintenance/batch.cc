#include "maintenance/batch.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "constraint/canonical.h"
#include "constraint/reject_cache.h"
#include "plan/plan_cache.h"

namespace mmv {
namespace maint {

namespace {

// Seeds a fresh external-support counter below every clause number found
// anywhere in the view's support trees. Scanning roots alone would miss
// external leaves buried inside derived supports and hand out a colliding
// number.
int SeedExtCounter(const View& view) {
  int counter = 0;
  for (const ViewAtom& a : view.atoms()) {
    counter = std::min(counter, a.support.MinClause());
  }
  return counter;
}

// Predicates participating in any non-fact clause, as head or body atom.
// Delete+re-insert cancellation is only sound OUTSIDE this set: a derived
// head swaps derived coverage for an independent external support, and a
// body predicate's re-insert re-derives descendants (resurrecting derived
// atoms deleted earlier — in this burst or in the view's whole history).
std::unordered_set<Symbol> RuleParticipants(const Program& program) {
  std::unordered_set<Symbol> preds;
  for (const Clause& c : program.clauses()) {
    if (c.IsFact()) continue;
    preds.insert(c.head_pred);
    for (const BodyAtom& b : c.body) preds.insert(b.pred);
  }
  return preds;
}

}  // namespace

BatchPlan PlanBatch(const Program& program,
                    const std::vector<Update>& updates) {
  BatchPlan plan;
  plan.input_updates = updates.size();
  std::unordered_set<Symbol> rule_preds = RuleParticipants(program);

  struct Emitted {
    bool dead = false;
    // Running totals taken right AFTER this op was emitted; comparing them
    // against the current totals tells whether any insert/delete was kept
    // in between.
    size_t inserts_any = 0;
    size_t deletes_any = 0;
  };
  std::vector<Emitted> emitted(updates.size());
  std::vector<size_t> kept;  // indices into `updates` / `emitted`
  kept.reserve(updates.size());
  // Latest surviving op per canonical atom key.
  std::unordered_map<std::string, size_t> last_by_key;
  size_t inserts_any = 0, deletes_any = 0;

  for (size_t i = 0; i < updates.size(); ++i) {
    const Update& u = updates[i];
    std::string key = CanonicalAtomString(u.atom.pred, u.atom.args,
                                          u.atom.constraint);
    auto it = last_by_key.find(key);
    size_t prev = it == last_by_key.end() ? i : it->second;
    bool has_prev = it != last_by_key.end() && !emitted[prev].dead;
    bool prev_is_insert =
        has_prev && updates[prev].kind == Update::Kind::kInsert;

    if (u.kind == Update::Kind::kInsert) {
      if (has_prev && prev_is_insert &&
          deletes_any == emitted[prev].deletes_any) {
        // Duplicate insert: still covered, its Add set would be empty.
        continue;
      }
      if (has_prev && !prev_is_insert &&
          deletes_any == emitted[prev].deletes_any &&
          rule_preds.count(u.atom.pred) == 0) {
        // Delete k ... insert k with only inserts in between, k not
        // touching any rule: deleting and re-asserting a purely leaf-level
        // atom nets to asserting it. For a rule participant the pair is
        // kept — a derived k would swap derived coverage for an
        // independent external support (observable by later ancestor
        // deletions), and a body-predicate k's re-insert re-derives its
        // descendants (resurrecting derived atoms deleted beforehand).
        emitted[prev].dead = true;
      }
    } else {
      if (has_prev && !prev_is_insert &&
          inserts_any == emitted[prev].inserts_any) {
        // Duplicate delete: nothing could have re-added the instances.
        continue;
      }
      if (has_prev && prev_is_insert &&
          inserts_any == emitted[prev].inserts_any) {
        // Insert k ... delete k with no insert in between: the delete wipes
        // the inserted instances and their consequences anyway.
        emitted[prev].dead = true;
      }
    }

    if (u.kind == Update::Kind::kInsert) {
      ++inserts_any;
    } else {
      ++deletes_any;
    }
    emitted[i].inserts_any = inserts_any;
    emitted[i].deletes_any = deletes_any;
    kept.push_back(i);
    last_by_key[std::move(key)] = i;
  }

  plan.ops.reserve(kept.size());
  for (size_t i : kept) {
    if (!emitted[i].dead) plan.ops.push_back(updates[i]);
  }
  plan.coalesced_away = plan.input_updates - plan.ops.size();
  return plan;
}

Status ApplyBatch(const Program& program, View* view,
                  const std::vector<Update>& updates, DcaEvaluator* evaluator,
                  const FixpointOptions& options, BatchStats* stats,
                  int* ext_support_counter, SnapshotStore* snapshots,
                  BurstLog* log) {
  BatchStats local_stats;
  if (!stats) stats = &local_stats;
  *stats = BatchStats();
  int local_counter = 0;
  if (!ext_support_counter) {
    local_counter = SeedExtCounter(*view);
    ext_support_counter = &local_counter;
  }

  // Log-ahead-of-apply: the EXACT requested burst (not the coalesced plan
  // — replay re-plans, so the record stays meaningful if the planner
  // changes) is journaled before the first pass touches the view. The
  // record stays pending until the whole burst applied.
  if (log != nullptr) {
    MMV_RETURN_NOT_OK(log->LogBurst(updates));
  }

  BatchPlan plan = PlanBatch(program, updates);
  stats->input_updates = plan.input_updates;
  stats->coalesced_away = plan.coalesced_away;

  // One compiled-plan cache spans the whole batch: StDel step-3 renames,
  // BuildAdd continuations and every insert run's fixpoint flushes all
  // reuse the same per-program clause plans. A caller-provided cache
  // (FixpointOptions::plan_cache) outlives the batch instead.
  plan::PlanCache batch_plans(options.plan_mode);
  FixpointOptions batch_options = options;
  // A caller cache of the wrong mode would be rejected per engine run
  // (each falling back to its own run-local cache) — substitute the
  // batch-local one so cross-pass sharing survives the mismatch.
  batch_options.plan_cache = plan::PlanCache::Select(
      batch_options.plan_cache, batch_options.plan_mode, &batch_plans);
  // Epoch-gate a caller-shared solver memo: the memo survives from batch
  // to batch — view maintenance never changes what Solve sees — and is
  // flushed here exactly when the external state moved underneath it: a
  // different evaluator instance, or the same evaluator at a different
  // state epoch (its clock's effective tick + same-tick mutation count).
  if (batch_options.solve_cache != nullptr) {
    bool flushed = batch_options.solve_cache->SyncEpoch(
        evaluator != nullptr ? evaluator->instance_id() : 0,
        evaluator != nullptr ? evaluator->StateEpoch() : 0);
    if (flushed) stats->solve_epoch_flushes++;
  }
  // The pairwise rejection memo rides the identical contract: a
  // caller-shared RejectCache survives from batch to batch and is flushed
  // here exactly when the catalog epoch moved; absent a caller one, a
  // batch-local memo spans this burst's delete and insert passes. Only
  // wired when the fast path can consult it — the off-mode oracle replay
  // runs memo-free.
  RejectCache batch_reject_cache;
  if (batch_options.solver.fastpath) {
    if (batch_options.reject_cache == nullptr) {
      batch_options.reject_cache = &batch_reject_cache;
    }
    bool flushed = batch_options.reject_cache->SyncEpoch(
        evaluator != nullptr ? evaluator->instance_id() : 0,
        evaluator != nullptr ? evaluator->StateEpoch() : 0);
    if (flushed) stats->reject_epoch_flushes++;
  }
  // Delete passes share the same memo (step-3 lifts and the step-4 prune
  // re-solve canonically identical constraints across runs of one burst).
  SolverOptions delete_solver = batch_options.solver;
  if (delete_solver.cache == nullptr &&
      batch_options.solve_cache != nullptr) {
    delete_solver.cache = batch_options.solve_cache;
  }
  if (delete_solver.fastpath && delete_solver.reject_cache == nullptr) {
    delete_solver.reject_cache = batch_options.reject_cache;
  }

  // Execute maximal same-kind runs: one multi-atom StDel pass per delete
  // run, one Add pass + seminaive continuation per insert run.
  auto run_passes = [&]() -> Status {
    size_t i = 0;
    while (i < plan.ops.size()) {
      size_t j = i;
      while (j < plan.ops.size() && plan.ops[j].kind == plan.ops[i].kind) ++j;
      std::vector<UpdateAtom> requests;
      requests.reserve(j - i);
      for (size_t k = i; k < j; ++k) requests.push_back(plan.ops[k].atom);

      if (plan.ops[i].kind == Update::Kind::kDelete) {
        StDelStats s;
        MMV_RETURN_NOT_OK(DeleteStDelBatch(program, view, requests, evaluator,
                                           delete_solver, &s,
                                           batch_options.plan_cache,
                                           batch_options.num_threads));
        stats->delete_passes++;
        stats->deletions_applied += requests.size();
        stats->del_elements += s.del_elements;
        stats->replacements += s.replacements;
        stats->step3_replacements += s.step3_replacements();
        stats->removed_unsolvable += s.removed_unsolvable;
        stats->plan_cache_hits += s.plan_cache_hits;
        stats->sat_prechecks += s.solver.sat_prechecks;
        stats->sat_rejects += s.solver.sat_rejects;
        stats->reject_cache_hits += s.solver.reject_cache_hits;
        stats->partitions_run += s.partitions_run;
        stats->partition_skipped_small += s.partition_skipped_small;
        stats->evaluator_clones += s.evaluator_clones;
        stats->mutex_evaluator_engaged += s.mutex_evaluator_engaged;
      } else {
        InsertStats s;
        MMV_RETURN_NOT_OK(InsertBatch(program, view, requests, evaluator,
                                      batch_options, &s, ext_support_counter));
        stats->insert_passes++;
        stats->insertions_applied += requests.size();
        stats->add_atoms += s.add_atoms;
        stats->insertion_pass_atoms += s.atoms_added;
        stats->plan_reorders += s.plan_reorders;
        stats->probe_intersections += s.probe_intersections;
        stats->plan_cache_hits += s.plan_cache_hits;
        stats->sat_prechecks +=
            s.solver.sat_prechecks + s.unfold_solver.sat_prechecks;
        stats->sat_rejects +=
            s.solver.sat_rejects + s.unfold_solver.sat_rejects;
        stats->reject_cache_hits +=
            s.solver.reject_cache_hits + s.unfold_solver.reject_cache_hits;
        stats->partitions_run += s.partitions_run;
        stats->partition_skipped_small += s.partition_skipped_small;
        stats->evaluator_clones += s.evaluator_clones;
        stats->mutex_evaluator_engaged += s.mutex_evaluator_engaged;
      }
      i = j;
    }
    return Status::OK();
  };
  Status applied = run_passes();
  if (!applied.ok()) {
    // A failed batch leaves NO record: recovery replays exactly the clean
    // prefix of bursts, matching the snapshot layer's failure atomicity.
    if (log != nullptr) log->AbortBurst();
    return applied;
  }
  // ONE image extraction serves both consumers below: the durable log
  // checkpoints it (and diffs it against the previous checkpoint's image)
  // and the snapshot store publishes it to readers. Extraction is
  // O(delta) — untouched per-pred segments are re-pointed at the previous
  // epoch's image, and only the preds this burst dirtied are copied.
  if (log != nullptr || snapshots != nullptr) {
    View::ImageExtractStats image_stats;
    SnapshotImageHandle image = view->ExtractImage(&image_stats);
    stats->snapshot_nodes_shared += image_stats.segments_shared;
    stats->snapshot_nodes_copied += image_stats.segments_copied;
    // Durable-commit point, deliberately BEFORE epoch publication: once a
    // reader can pin the post-batch epoch the log must already own the
    // burst, or a crash would roll the store behind what readers observed.
    if (log != nullptr) {
      MMV_RETURN_NOT_OK(log->CommitBurst(image, stats));
    }
    // The epoch publication point: one immutable snapshot per cleanly
    // applied burst. Errors above returned already — a failed batch
    // publishes nothing, so concurrent readers keep the pre-batch epoch.
    if (snapshots != nullptr) {
      snapshots->PublishImage(std::move(image));
      stats->epochs_published++;
    }
  }
  return Status::OK();
}

BatchStats& BatchStats::operator+=(const BatchStats& other) {
  input_updates += other.input_updates;
  coalesced_away += other.coalesced_away;
  delete_passes += other.delete_passes;
  insert_passes += other.insert_passes;
  deletions_applied += other.deletions_applied;
  insertions_applied += other.insertions_applied;
  del_elements += other.del_elements;
  replacements += other.replacements;
  step3_replacements += other.step3_replacements;
  removed_unsolvable += other.removed_unsolvable;
  add_atoms += other.add_atoms;
  insertion_pass_atoms += other.insertion_pass_atoms;
  plan_reorders += other.plan_reorders;
  probe_intersections += other.probe_intersections;
  plan_cache_hits += other.plan_cache_hits;
  solve_epoch_flushes += other.solve_epoch_flushes;
  reject_epoch_flushes += other.reject_epoch_flushes;
  sat_prechecks += other.sat_prechecks;
  sat_rejects += other.sat_rejects;
  reject_cache_hits += other.reject_cache_hits;
  epochs_published += other.epochs_published;
  snapshot_nodes_shared += other.snapshot_nodes_shared;
  snapshot_nodes_copied += other.snapshot_nodes_copied;
  wal_records += other.wal_records;
  wal_bytes += other.wal_bytes;
  wal_syncs += other.wal_syncs;
  checkpoints_written += other.checkpoints_written;
  checkpoint_delta_bytes += other.checkpoint_delta_bytes;
  recovery_replayed_bursts += other.recovery_replayed_bursts;
  partitions_run += other.partitions_run;
  partition_skipped_small += other.partition_skipped_small;
  evaluator_clones += other.evaluator_clones;
  mutex_evaluator_engaged += other.mutex_evaluator_engaged;
  return *this;
}

Status ApplyUpdatesSequential(const Program& program, View* view,
                              const std::vector<Update>& updates,
                              DcaEvaluator* evaluator,
                              const FixpointOptions& options,
                              BatchStats* stats, int* ext_support_counter) {
  BatchStats local_stats;
  if (!stats) stats = &local_stats;
  *stats = BatchStats();
  stats->input_updates = updates.size();
  int local_counter = 0;
  if (!ext_support_counter) {
    local_counter = SeedExtCounter(*view);
    ext_support_counter = &local_counter;
  }

  for (const Update& u : updates) {
    if (u.kind == Update::Kind::kDelete) {
      StDelStats s;
      MMV_RETURN_NOT_OK(DeleteStDel(program, view, u.atom, evaluator,
                                    options.solver, &s));
      stats->delete_passes++;
      stats->deletions_applied++;
      stats->del_elements += s.del_elements;
      stats->replacements += s.replacements;
      stats->step3_replacements += s.step3_replacements();
      stats->removed_unsolvable += s.removed_unsolvable;
    } else {
      InsertStats s;
      MMV_RETURN_NOT_OK(InsertAtom(program, view, u.atom, evaluator, options,
                                   &s, ext_support_counter));
      stats->insert_passes++;
      stats->insertions_applied++;
      stats->add_atoms += s.add_atoms;
      stats->insertion_pass_atoms += s.atoms_added;
    }
  }
  return Status::OK();
}

Result<bool> IsDuplicateFree(const View& view, DcaEvaluator* evaluator) {
  Solver solver(evaluator);
  VarFactory factory;
  for (const ViewAtom& a : view.atoms()) {
    std::vector<VarId> vars;
    CollectVars(a.args, &vars);
    for (VarId v : a.constraint.Variables()) factory.ReserveAbove(v);
    for (VarId v : vars) factory.ReserveAbove(v);
  }

  const auto& atoms = view.atoms();
  for (size_t i = 0; i < atoms.size(); ++i) {
    for (size_t j = i + 1; j < atoms.size(); ++j) {
      if (atoms[i].pred != atoms[j].pred ||
          atoms[i].args.size() != atoms[j].args.size()) {
        continue;
      }
      // Overlap: atom i's constraint conjoined with "args are an instance
      // of atom j".
      Constraint overlap = Constraint::And(
          atoms[i].constraint,
          InstanceConstraint(atoms[i].args, atoms[j].args,
                             atoms[j].constraint, &factory));
      SolveOutcome o = solver.Solve(overlap);
      if (o == SolveOutcome::kError) return solver.last_status();
      if (IsSolvable(o)) return false;  // shared instances (or undecided)
    }
  }
  return true;
}

}  // namespace maint
}  // namespace mmv
