#include "maintenance/batch.h"

namespace mmv {
namespace maint {

Status ApplyUpdates(const Program& program, View* view,
                    const std::vector<Update>& updates,
                    DcaEvaluator* evaluator, const FixpointOptions& options,
                    BatchStats* stats, int* ext_support_counter) {
  BatchStats local_stats;
  if (!stats) stats = &local_stats;
  *stats = BatchStats();
  int local_counter = 0;
  if (!ext_support_counter) {
    // Seed below any external support already present in the view.
    for (const ViewAtom& a : view->atoms()) {
      local_counter = std::min(local_counter, a.support.clause());
    }
    ext_support_counter = &local_counter;
  }

  for (const Update& u : updates) {
    if (u.kind == Update::Kind::kDelete) {
      StDelStats s;
      MMV_RETURN_NOT_OK(DeleteStDel(program, view, u.atom, evaluator,
                                    options.solver, &s));
      stats->deletions_applied++;
      stats->replacements += s.replacements;
      stats->removed_unsolvable += s.removed_unsolvable;
    } else {
      InsertStats s;
      MMV_RETURN_NOT_OK(InsertAtom(program, view, u.atom, evaluator, options,
                                   &s, ext_support_counter));
      stats->insertions_applied++;
      stats->atoms_added += s.atoms_added;
    }
  }
  return Status::OK();
}

Result<bool> IsDuplicateFree(const View& view, DcaEvaluator* evaluator) {
  Solver solver(evaluator);
  VarFactory factory;
  for (const ViewAtom& a : view.atoms()) {
    std::vector<VarId> vars;
    CollectVars(a.args, &vars);
    for (VarId v : a.constraint.Variables()) factory.ReserveAbove(v);
    for (VarId v : vars) factory.ReserveAbove(v);
  }

  const auto& atoms = view.atoms();
  for (size_t i = 0; i < atoms.size(); ++i) {
    for (size_t j = i + 1; j < atoms.size(); ++j) {
      if (atoms[i].pred != atoms[j].pred ||
          atoms[i].args.size() != atoms[j].args.size()) {
        continue;
      }
      // Overlap: atom i's constraint conjoined with "args are an instance
      // of atom j".
      Constraint overlap = Constraint::And(
          atoms[i].constraint,
          InstanceConstraint(atoms[i].args, atoms[j].args,
                             atoms[j].constraint, &factory));
      SolveOutcome o = solver.Solve(overlap);
      if (o == SolveOutcome::kError) return solver.last_status();
      if (IsSolvable(o)) return false;  // shared instances (or undecided)
    }
  }
  return true;
}

}  // namespace maint
}  // namespace mmv
