#include "maintenance/stdel.h"

#include <algorithm>
#include <iterator>

#include "constraint/simplify.h"
#include "constraint/solve_cache.h"
#include "plan/plan_cache.h"

namespace mmv {
namespace maint {

namespace {

// A P_OUT pair: the deleted part of an atom plus the atom's support.
struct Pair {
  Symbol pred;
  TermVec args;
  Constraint deleted;  ///< over the atom's head variables (positive form)
  Support spt;
};

// Re-expresses a simplified constraint over the original head arguments.
Constraint RebindHead(const TermVec& orig_head, const SimplifiedAtom& s) {
  Constraint c = s.constraint;
  if (c.is_false()) return c;
  for (size_t k = 0; k < orig_head.size() && k < s.head.size(); ++k) {
    if (!(orig_head[k] == s.head[k])) {
      c.Add(Primitive::Eq(orig_head[k], s.head[k]));
    }
  }
  return c;
}

}  // namespace

Status DeleteStDel(const Program& program, View* view,
                   const UpdateAtom& request, DcaEvaluator* evaluator,
                   const SolverOptions& solver_options, StDelStats* stats) {
  return DeleteStDelBatch(program, view, {request}, evaluator, solver_options,
                          stats);
}

Status DeleteStDelBatch(const Program& program, View* view,
                        const std::vector<UpdateAtom>& requests,
                        DcaEvaluator* evaluator,
                        const SolverOptions& solver_options,
                        StDelStats* stats, plan::PlanCache* plans) {
  StDelStats local;
  if (!stats) stats = &local;
  *stats = StDelStats();
  // Step 3 consumes compiled clause plans (for their precomputed variable
  // lists); plan ordering is irrelevant here, so any caller cache works
  // whatever its mode.
  plan::PlanCache local_plans(plan::PlanMode::kDeclared);
  if (plans == nullptr) plans = &local_plans;
  const int64_t plan_hits_start = plans->stats().cache_hits;
  // One solver memo per batch: step-3 lifts and the step-4 whole-view prune
  // re-solve many canonically identical constraints (untouched siblings,
  // repeated subtraction shapes), and the external database is fixed for
  // the duration of the batch — the cache's validity contract.
  SolveCache batch_cache;
  SolverOptions cached_options = solver_options;
  if (cached_options.cache == nullptr) cached_options.cache = &batch_cache;
  Solver solver(evaluator, cached_options);
  VarFactory factory = FreshFactory(program, *view, requests);

  // Step 1: mark every constraint atom in M — once for the whole batch.
  view->MarkAll(true);

  // Input: the union of the requests' Del sets, every overlap computed
  // against the PRE-deletion constraints. Overlapping requests may both
  // record a deleted part of the same atom; subtraction is idempotent at
  // the instance level, so the union propagates exactly what sequential
  // single-request runs would. Sharing the run's factory keeps every fresh
  // variable of this batch in one issuance stream.
  std::vector<DelElement> del;
  for (const UpdateAtom& request : requests) {
    MMV_ASSIGN_OR_RETURN(std::vector<DelElement> part,
                         BuildDel(*view, request, &solver, &factory));
    del.insert(del.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  stats->del_elements = del.size();
  if (del.empty()) {
    stats->solver = solver.stats();
    return Status::OK();
  }

  // Snapshot the pre-deletion constraints: step 3's lift reassembles the
  // derivation as it existed when it was made, so sibling contributions use
  // their ORIGINAL constraints. (Derivations lost through a sibling's own
  // deletion are subtracted by that sibling's P_OUT pair separately;
  // using the already-replaced sibling constraint here would make the lift
  // unsatisfiable whenever several body atoms die together, leaving the
  // parent's lost instances behind.)
  std::vector<Constraint> original_constraints;
  original_constraints.reserve(view->size());
  for (const ViewAtom& a : view->atoms()) {
    original_constraints.push_back(a.constraint);
  }

  // Support lookups go through the view's incrementally-maintained indexes
  // (supports are unique identities, Lemma 1); nothing is rebuilt here.
  // Step 3 only replaces constraints in place, which leaves both the
  // support hash index and the child-support index valid throughout.

  // Step 2: subtract the Del overlaps and seed P_OUT.
  std::vector<Pair> pout;
  for (const DelElement& e : del) {
    ViewAtom& atom = view->MutableAtom(e.atom_index);
    if (!SubtractDeletedPart(atom.args, e.deleted_part, evaluator,
                             &atom.constraint)) {
      continue;  // the overlap denotes no instances at the current state
    }
    stats->replacements++;
    stats->step2_replacements++;
    pout.push_back(Pair{atom.pred, atom.args, e.deleted_part, atom.support});
  }

  // Step 3: propagate along supports until no replacement happens.
  std::vector<std::pair<size_t, size_t>> parents;  // scratch, reused
  VarSet var_set;                                  // scratch, reused
  for (size_t qi = 0; qi < pout.size(); ++qi) {
    Pair pair = pout[qi];  // copy: the vector grows as we iterate
    parents.clear();
    view->ForEachParentOfChild(pair.spt, [&](size_t p, size_t k) {
      parents.emplace_back(p, k);
    });
    for (auto [parent_idx, child_slot] : parents) {
      ViewAtom& parent = view->MutableAtom(parent_idx);
      if (!parent.marked) continue;

      const Clause* clause = program.ClauseByNumber(parent.support.clause());
      if (clause == nullptr) continue;  // externally inserted: no clause
      // Standardize the clause apart via its compiled plan's precomputed
      // variable list — one hash lookup instead of a full clause walk per
      // visited parent.
      Clause renamed = clause->RenameWith(
          plans->PlanFor(program, *clause)->clause_vars, &factory);
      size_t n = renamed.body.size();
      if (n != parent.support.children().size()) continue;

      // Reassemble the derivation with the deleted part at child_slot and
      // the (current) sibling atoms elsewhere — conditions (a)-(c).
      Constraint delta = renamed.constraint;
      bool siblings_ok = true;
      for (size_t i = 0; i < n && siblings_ok; ++i) {
        const TermVec* inst_args;
        const Constraint* inst_c;
        if (i == child_slot) {
          inst_args = &pair.args;
          inst_c = &pair.deleted;
        } else {
          int64_t sib = view->IndexOfSupport(parent.support.children()[i]);
          if (sib < 0) {
            siblings_ok = false;  // condition (b) fails
            break;
          }
          const ViewAtom& sib_atom = view->atoms()[static_cast<size_t>(sib)];
          inst_args = &sib_atom.args;
          inst_c = &original_constraints[static_cast<size_t>(sib)];
        }
        var_set.Clear();
        var_set.AddTerms(*inst_args);
        inst_c->CollectVariables(&var_set);
        Substitution rho = FreshRenaming(var_set.vars(), &factory);
        TermVec a = rho.Apply(*inst_args);
        delta.AndWith(rho.Apply(*inst_c));
        for (size_t k = 0; k < a.size(); ++k) {
          delta.Add(Primitive::Eq(a[k], renamed.body[i].args[k]));
        }
      }
      if (!siblings_ok) continue;
      // Bridge to the parent's own head variables.
      for (size_t k = 0; k < parent.args.size(); ++k) {
        delta.Add(Primitive::Eq(parent.args[k], renamed.head_args[k]));
      }
      SimplifiedAtom s = SimplifyAtom(parent.args, delta);
      Constraint lifted = RebindHead(parent.args, s);
      if (lifted.is_false()) continue;
      SolveOutcome o = solver.Solve(lifted);  // condition (c)
      if (o == SolveOutcome::kError) return solver.last_status();
      if (!IsSolvable(o)) continue;

      if (!SubtractDeletedPart(parent.args, lifted, evaluator,
                               &parent.constraint)) {
        continue;  // the lifted part denotes no instances
      }
      stats->replacements++;
      pout.push_back(Pair{parent.pred, parent.args, lifted, parent.support});
    }
  }
  stats->pout_pairs = pout.size();

  // Step 4: drop atoms whose constraints became unsolvable.
  stats->removed_unsolvable = PruneUnsolvable(view, &solver);
  // Steps 2/3 wrote factory-fresh variables into surviving constraints;
  // raise the view's high-water mark so later updates stay standardized
  // apart from them.
  view->NoteExternalVars(factory.issued());
  stats->plan_cache_hits = plans->stats().cache_hits - plan_hits_start;
  stats->solver = solver.stats();
  return Status::OK();
}

}  // namespace maint
}  // namespace mmv
