#include "maintenance/stdel.h"

#include <algorithm>
#include <iterator>
#include <memory>

#include "constraint/reject_cache.h"
#include "constraint/simplify.h"
#include "constraint/solve_cache.h"
#include "core/thread_pool.h"
#include "plan/partition.h"
#include "plan/plan_cache.h"

namespace mmv {
namespace maint {

namespace {

// A P_OUT pair: the deleted part of an atom plus the atom's support.
struct Pair {
  Symbol pred;
  TermVec args;
  Constraint deleted;  ///< over the atom's head variables (positive form)
  Support spt;
};

// Re-expresses a simplified constraint over the original head arguments.
Constraint RebindHead(const TermVec& orig_head, const SimplifiedAtom& s) {
  Constraint c = s.constraint;
  if (c.is_false()) return c;
  for (size_t k = 0; k < orig_head.size() && k < s.head.size(); ++k) {
    if (!(orig_head[k] == s.head[k])) {
      c.Add(Primitive::Eq(orig_head[k], s.head[k]));
    }
  }
  return c;
}

// Step 3's lift: reassembles the derivation of `parent` through `renamed`
// with the deleted part at `child_slot` and the (current) sibling atoms
// elsewhere — conditions (a)-(b) — then simplifies and re-expresses the
// result over the parent's own head variables. Returns false when a
// sibling is gone (condition (b) fails). Reads only snapshot state (the
// pair, `original` constraints, immutable atom args/supports), so
// concurrent calls for different parents are independent; fresh variables
// come from the caller's \p factory.
bool BuildLift(const View& view, const std::vector<Constraint>& original,
               const Pair& pair, const ViewAtom& parent, size_t child_slot,
               const Clause& renamed, VarFactory* factory, VarSet* var_set,
               Constraint* out) {
  size_t n = renamed.body.size();
  Constraint delta = renamed.constraint;
  for (size_t i = 0; i < n; ++i) {
    const TermVec* inst_args;
    const Constraint* inst_c;
    if (i == child_slot) {
      inst_args = &pair.args;
      inst_c = &pair.deleted;
    } else {
      int64_t sib = view.IndexOfSupport(parent.support.children()[i]);
      if (sib < 0) return false;  // condition (b) fails
      const ViewAtom& sib_atom = view.atoms()[static_cast<size_t>(sib)];
      inst_args = &sib_atom.args;
      inst_c = &original[static_cast<size_t>(sib)];
    }
    var_set->Clear();
    var_set->AddTerms(*inst_args);
    inst_c->CollectVariables(var_set);
    Substitution rho = FreshRenaming(var_set->vars(), factory);
    TermVec a = rho.Apply(*inst_args);
    delta.AndWith(rho.Apply(*inst_c));
    for (size_t k = 0; k < a.size(); ++k) {
      delta.Add(Primitive::Eq(a[k], renamed.body[i].args[k]));
    }
  }
  // Bridge to the parent's own head variables.
  for (size_t k = 0; k < parent.args.size(); ++k) {
    delta.Add(Primitive::Eq(parent.args[k], renamed.head_args[k]));
  }
  SimplifiedAtom s = SimplifyAtom(parent.args, delta);
  *out = RebindHead(parent.args, s);
  return true;
}

// One parent visit scheduled for a parallel lift check.
struct LiftItem {
  size_t parent_idx = 0;
  size_t child_slot = 0;
  const Clause* clause = nullptr;
  std::shared_ptr<const plan::ClausePlan> plan;
};

// What the parallel lift check hands back to the sequential apply phase.
struct LiftOutcome {
  Constraint lifted;
  bool applicable = false;  ///< lift nonempty and solvable
  Status status;            ///< evaluator failure, checked in apply order
  SolveStats solver;
};

}  // namespace

Status DeleteStDel(const Program& program, View* view,
                   const UpdateAtom& request, DcaEvaluator* evaluator,
                   const SolverOptions& solver_options, StDelStats* stats) {
  return DeleteStDelBatch(program, view, {request}, evaluator, solver_options,
                          stats);
}

Status DeleteStDelBatch(const Program& program, View* view,
                        const std::vector<UpdateAtom>& requests,
                        DcaEvaluator* evaluator,
                        const SolverOptions& solver_options,
                        StDelStats* stats, plan::PlanCache* plans,
                        int num_threads) {
  StDelStats local;
  if (!stats) stats = &local;
  *stats = StDelStats();
  // Step 3 consumes compiled clause plans (for their precomputed variable
  // lists); plan ordering is irrelevant here, so any caller cache works
  // whatever its mode.
  plan::PlanCache local_plans(plan::PlanMode::kDeclared);
  if (plans == nullptr) plans = &local_plans;
  const int64_t plan_hits_start = plans->stats().cache_hits;
  // One solver memo per batch: step-3 lifts and the step-4 whole-view prune
  // re-solve many canonically identical constraints (untouched siblings,
  // repeated subtraction shapes), and the external database is fixed for
  // the duration of the batch — the cache's validity contract.
  SolveCache batch_cache;
  RejectCache batch_reject_cache;
  SolverOptions cached_options = solver_options;
  if (cached_options.cache == nullptr) cached_options.cache = &batch_cache;
  // Rejection memo: same batch lifetime and validity contract. Only wired
  // when the fast path can consult it, so off-mode runs stay memo-free.
  if (cached_options.fastpath && cached_options.reject_cache == nullptr) {
    cached_options.reject_cache = &batch_reject_cache;
  }
  Solver solver(evaluator, cached_options);
  VarFactory factory = FreshFactory(program, *view, requests);

  // Step 1: mark every constraint atom in M — once for the whole batch.
  view->MarkAll(true);

  // Input: the union of the requests' Del sets, every overlap computed
  // against the PRE-deletion constraints. Overlapping requests may both
  // record a deleted part of the same atom; subtraction is idempotent at
  // the instance level, so the union propagates exactly what sequential
  // single-request runs would. Sharing the run's factory keeps every fresh
  // variable of this batch in one issuance stream.
  std::vector<DelElement> del;
  for (const UpdateAtom& request : requests) {
    MMV_ASSIGN_OR_RETURN(std::vector<DelElement> part,
                         BuildDel(*view, request, &solver, &factory));
    del.insert(del.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  stats->del_elements = del.size();
  if (del.empty()) {
    stats->solver = solver.stats();
    return Status::OK();
  }

  // Snapshot the pre-deletion constraints: step 3's lift reassembles the
  // derivation as it existed when it was made, so sibling contributions use
  // their ORIGINAL constraints. (Derivations lost through a sibling's own
  // deletion are subtracted by that sibling's P_OUT pair separately;
  // using the already-replaced sibling constraint here would make the lift
  // unsatisfiable whenever several body atoms die together, leaving the
  // parent's lost instances behind.)
  std::vector<Constraint> original_constraints;
  original_constraints.reserve(view->size());
  for (const ViewAtom& a : view->atoms()) {
    original_constraints.push_back(a.constraint);
  }

  // Support lookups go through the view's incrementally-maintained indexes
  // (supports are unique identities, Lemma 1); nothing is rebuilt here.
  // Step 3 only replaces constraints in place, which leaves both the
  // support hash index and the child-support index valid throughout.

  // Step 2: subtract the Del overlaps and seed P_OUT.
  std::vector<Pair> pout;
  for (const DelElement& e : del) {
    ViewAtom& atom = view->MutableAtom(e.atom_index);
    if (!SubtractDeletedPart(atom.args, e.deleted_part, evaluator,
                             &atom.constraint)) {
      continue;  // the overlap denotes no instances at the current state
    }
    stats->replacements++;
    stats->step2_replacements++;
    pout.push_back(Pair{atom.pred, atom.args, e.deleted_part, atom.support});
  }

  // Step 3: propagate along supports until no replacement happens. The
  // worklist itself is inherently sequential (each replacement can expose
  // new pairs), but with num_threads > 1 the per-parent LIFT CHECKS of one
  // pair — independent reads of snapshot state — fan out across threads,
  // and the subtractions are applied afterwards in the sequential sweep's
  // parent order, so propagation is order-identical either way.
  std::vector<std::pair<size_t, size_t>> parents;  // scratch, reused
  std::vector<LiftItem> lift_items;                // scratch, reused
  VarSet var_set;                                  // scratch, reused
  // Lift checks only read external state, so an evaluator that vouches
  // for concurrent pure reads is shared lock-free across the workers;
  // anything else keeps the serialized MutexDcaEvaluator fallback. The
  // epoch check after each fan-out polices the single-writer contract the
  // lock-free claim rests on.
  std::unique_ptr<MutexDcaEvaluator> locked_evaluator;
  DcaEvaluator* worker_evaluator = nullptr;
  bool evaluator_direct = false;
  if (num_threads > 1 && evaluator != nullptr) {
    if (evaluator->ConcurrentReadSafe()) {
      worker_evaluator = evaluator;
      evaluator_direct = true;
    } else {
      locked_evaluator = std::make_unique<MutexDcaEvaluator>(evaluator);
      worker_evaluator = locked_evaluator.get();
    }
  }
  SolveStats parallel_solver;  // lift-check counters, apply order
  for (size_t qi = 0; qi < pout.size(); ++qi) {
    Pair pair = pout[qi];  // copy: the vector grows as we iterate
    parents.clear();
    view->ForEachParentOfChild(pair.spt, [&](size_t p, size_t k) {
      parents.emplace_back(p, k);
    });

    // Parallel lift checks need the staging id range to be recognizable:
    // if the run's real factory ever nears kStagingVarBase (ids seeded
    // from the view's high-water mark), RemapStagingVars could rebind REAL
    // variables of the lifted constraint — fall back to the sequential
    // sweep, mirroring the fixpoint engine's per-round guard. Each fan-out
    // is chunked into contiguous item shards (plan/partition.h, the same
    // arithmetic the fixpoint round uses): one task per shard instead of
    // one per item, and parent sweeps too small to amortize the staging
    // overhead stay sequential.
    int parts = 1;
    if (num_threads > 1 && parents.size() > 1 &&
        factory.issued() < kStagingVarBase / 2) {
      parts = plan::PartitionCountFor(parents.size(), num_threads,
                                      /*min_per_shard=*/2);
      if (parts <= 1) stats->partition_skipped_small++;
    }
    if (parts > 1) {
      // Collect phase: marked / clause / arity screening and the plan-cache
      // lookups stay on this thread (PlanCache is not synchronized).
      lift_items.clear();
      for (auto [parent_idx, child_slot] : parents) {
        const ViewAtom& parent = view->atoms()[parent_idx];
        if (!parent.marked) continue;
        const Clause* clause =
            program.ClauseByNumber(parent.support.clause());
        if (clause == nullptr) continue;  // externally inserted: no clause
        if (clause->body.size() != parent.support.children().size()) {
          continue;
        }
        lift_items.push_back(LiftItem{parent_idx, child_slot, clause,
                                      plans->PlanFor(program, *clause)});
      }
      stats->partitions_run += parts;
      if (evaluator_direct) {
        stats->evaluator_clones += static_cast<int64_t>(lift_items.size());
      } else if (worker_evaluator != nullptr) {
        stats->mutex_evaluator_engaged +=
            static_cast<int64_t>(lift_items.size());
      }
      int64_t epoch_before =
          evaluator != nullptr ? evaluator->StateEpoch() : 0;
      std::vector<LiftOutcome> outcomes(lift_items.size());
      ThreadPool::Global().ParallelFor(
          static_cast<size_t>(parts), num_threads, [&](size_t shard) {
            auto [item_begin, item_end] = plan::PartitionRange(
                lift_items.size(), parts, static_cast<int>(shard));
            for (size_t i = item_begin; i < item_end; ++i) {
              const LiftItem& item = lift_items[i];
              LiftOutcome& out = outcomes[i];
              VarFactory staging;
              staging.ReserveAbove(kStagingVarBase);
              VarSet item_vars;
              Clause renamed =
                  item.clause->RenameWith(item.plan->clause_vars, &staging);
              const ViewAtom& parent = view->atoms()[item.parent_idx];
              Constraint lifted;
              if (!BuildLift(*view, original_constraints, pair, parent,
                             item.child_slot, renamed, &staging, &item_vars,
                             &lifted)) {
                continue;
              }
              if (lifted.is_false()) continue;
              SolverOptions item_options = cached_options;
              item_options.cache = nullptr;  // never share a memo across
                                             // threads (not synchronized)
              item_options.reject_cache = nullptr;  // ditto
              Solver item_solver(worker_evaluator, item_options);
              SolveOutcome o = item_solver.Solve(lifted);  // condition (c)
              out.solver = item_solver.stats();
              if (o == SolveOutcome::kError) {
                out.status = item_solver.last_status();
                continue;
              }
              if (!IsSolvable(o)) continue;
              out.applicable = true;
              out.lifted = std::move(lifted);
            }
          });
      // The lock-free path reads the external state unguarded; a writer
      // slipping in mid-sweep would have produced silently inconsistent
      // lift verdicts. Fail loudly instead of applying them.
      if (evaluator != nullptr && evaluator->StateEpoch() != epoch_before) {
        return Status::Internal(
            "external state changed under a parallel StDel lift sweep "
            "(evaluator epoch " + std::to_string(epoch_before) + " -> " +
            std::to_string(evaluator->StateEpoch()) +
            "); concurrent evaluation requires a quiescent external "
            "database");
      }
      // Apply phase: the sequential sweep's parent order.
      for (size_t i = 0; i < lift_items.size(); ++i) {
        LiftOutcome& out = outcomes[i];
        MMV_RETURN_NOT_OK(out.status);
        parallel_solver += out.solver;
        if (!out.applicable) continue;
        RemapVarsAtOrAbove(kStagingVarBase, &factory, /*args=*/nullptr,
                           &out.lifted, &var_set);
        ViewAtom& parent = view->MutableAtom(lift_items[i].parent_idx);
        if (!SubtractDeletedPart(parent.args, out.lifted, evaluator,
                                 &parent.constraint)) {
          continue;  // the lifted part denotes no instances
        }
        stats->replacements++;
        pout.push_back(
            Pair{parent.pred, parent.args, out.lifted, parent.support});
      }
      continue;
    }

    for (auto [parent_idx, child_slot] : parents) {
      ViewAtom& parent = view->MutableAtom(parent_idx);
      if (!parent.marked) continue;

      const Clause* clause = program.ClauseByNumber(parent.support.clause());
      if (clause == nullptr) continue;  // externally inserted: no clause
      // Standardize the clause apart via its compiled plan's precomputed
      // variable list — one hash lookup instead of a full clause walk per
      // visited parent.
      Clause renamed = clause->RenameWith(
          plans->PlanFor(program, *clause)->clause_vars, &factory);
      if (renamed.body.size() != parent.support.children().size()) continue;

      // Reassemble the derivation with the deleted part at child_slot and
      // the (current) sibling atoms elsewhere — conditions (a)-(c).
      Constraint lifted;
      if (!BuildLift(*view, original_constraints, pair, parent, child_slot,
                     renamed, &factory, &var_set, &lifted)) {
        continue;
      }
      if (lifted.is_false()) continue;
      SolveOutcome o = solver.Solve(lifted);  // condition (c)
      if (o == SolveOutcome::kError) return solver.last_status();
      if (!IsSolvable(o)) continue;

      if (!SubtractDeletedPart(parent.args, lifted, evaluator,
                               &parent.constraint)) {
        continue;  // the lifted part denotes no instances
      }
      stats->replacements++;
      pout.push_back(Pair{parent.pred, parent.args, lifted, parent.support});
    }
  }
  stats->pout_pairs = pout.size();

  // Step 4: drop atoms whose constraints became unsolvable.
  stats->removed_unsolvable = PruneUnsolvable(view, &solver);
  // Steps 2/3 wrote factory-fresh variables into surviving constraints;
  // raise the view's high-water mark so later updates stay standardized
  // apart from them.
  view->NoteExternalVars(factory.issued());
  stats->plan_cache_hits = plans->stats().cache_hits - plan_hits_start;
  stats->solver = solver.stats();
  stats->solver += parallel_solver;
  return Status::OK();
}

}  // namespace maint
}  // namespace mmv
