#include "maintenance/dred_constrained.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "constraint/canonical.h"
#include "constraint/simplify.h"
#include "maintenance/rewrite.h"

namespace mmv {
namespace maint {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// A P_OUT element: a constrained atom that *may* need deletion.
struct PoutAtom {
  Symbol pred;
  TermVec args;
  Constraint constraint;
};

}  // namespace

Result<View> DeleteDRed(const Program& program, const View& view,
                        const UpdateAtom& request, DcaEvaluator* evaluator,
                        const FixpointOptions& options, DRedStats* stats) {
  DRedStats local;
  if (!stats) stats = &local;
  *stats = DRedStats();
  Solver solver(evaluator, options.solver);
  VarFactory factory = FreshFactory(program, view, &request);

  // ---- Input: Del ----------------------------------------------------
  MMV_ASSIGN_OR_RETURN(std::vector<DelElement> del,
                       BuildDel(view, request, &solver, &factory));
  stats->del_elements = del.size();
  if (del.empty()) {
    stats->solver = solver.stats();
    return view;  // nothing to delete
  }

  // ---- Step 1: unfold P_OUT ------------------------------------------
  Clock::time_point t0 = Clock::now();
  std::vector<PoutAtom> pout;
  std::unordered_set<std::string> pout_seen;
  auto add_pout = [&](PoutAtom a) {
    std::string key = CanonicalAtomString(a.pred, a.args, a.constraint);
    if (!pout_seen.insert(std::move(key)).second) return false;
    pout.push_back(std::move(a));
    return true;
  };
  for (const DelElement& e : del) {
    const ViewAtom& atom = view.atoms()[e.atom_index];
    add_pout(PoutAtom{atom.pred, atom.args, e.deleted_part});
  }

  // Non-pivot body positions range over the (immutable) original view via
  // its maintained by-predicate index.
  size_t layer_begin = 0;
  int rounds = 0;
  while (layer_begin < pout.size()) {
    size_t layer_end = pout.size();
    if (++rounds > options.max_iterations) {
      return Status::ResourceExhausted(
          "P_OUT unfolding did not converge within max_iterations; "
          "increase FixpointOptions::max_iterations");
    }
    for (const Clause& c : program.clauses()) {
      if (c.IsFact()) continue;
      size_t n = c.body.size();
      // Exactly one body position j drawn from the current P_OUT layer.
      for (size_t j = 0; j < n; ++j) {
        // Collect P_OUT candidates for position j.
        std::vector<size_t> j_candidates;
        for (size_t pi = layer_begin; pi < layer_end; ++pi) {
          if (pout[pi].pred == c.body[j].pred &&
              pout[pi].args.size() == c.body[j].args.size()) {
            j_candidates.push_back(pi);
          }
        }
        if (j_candidates.empty()) continue;
        // Other positions range over the original materialized view.
        bool feasible = true;
        std::vector<const std::vector<size_t>*> other_lists(n, nullptr);
        for (size_t i = 0; i < n && feasible; ++i) {
          if (i == j) continue;
          const std::vector<size_t>& list = view.AtomsFor(c.body[i].pred);
          if (list.empty()) {
            feasible = false;
            break;
          }
          other_lists[i] = &list;
        }
        if (!feasible) continue;

        std::vector<size_t> chosen(n);
        // Recursively enumerate combinations.
        std::function<Status(size_t)> recurse =
            [&](size_t pos) -> Status {
          if (pos == n) {
            // Build the unfolded constraint.
            Clause renamed = c.Rename(&factory);
            Constraint acc = renamed.constraint;
            for (size_t i = 0; i < n; ++i) {
              const TermVec* inst_args;
              const Constraint* inst_c;
              if (i == j) {
                inst_args = &pout[chosen[i]].args;
                inst_c = &pout[chosen[i]].constraint;
              } else {
                const ViewAtom& va = view.atoms()[chosen[i]];
                inst_args = &va.args;
                inst_c = &va.constraint;
              }
              std::vector<VarId> vars;
              CollectVars(*inst_args, &vars);
              for (VarId v : inst_c->Variables()) {
                if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
                  vars.push_back(v);
                }
              }
              Substitution rho = FreshRenaming(vars, &factory);
              TermVec a = rho.Apply(*inst_args);
              acc.AndWith(rho.Apply(*inst_c));
              for (size_t k = 0; k < a.size(); ++k) {
                acc.Add(Primitive::Eq(a[k], renamed.body[i].args[k]));
              }
            }
            SimplifiedAtom s = SimplifyAtom(renamed.head_args, acc);
            if (s.constraint.is_false()) return Status::OK();
            SolveOutcome o = solver.Solve(s.constraint);
            if (o == SolveOutcome::kError) return solver.last_status();
            if (!IsSolvable(o)) return Status::OK();
            add_pout(
                PoutAtom{renamed.head_pred, s.head, std::move(s.constraint)});
            return Status::OK();
          }
          if (pos == j) {
            for (size_t pi : j_candidates) {
              chosen[pos] = pi;
              MMV_RETURN_NOT_OK(recurse(pos + 1));
            }
            return Status::OK();
          }
          for (size_t vi : *other_lists[pos]) {
            chosen[pos] = vi;
            MMV_RETURN_NOT_OK(recurse(pos + 1));
          }
          return Status::OK();
        };
        MMV_RETURN_NOT_OK(recurse(0));
      }
    }
    layer_begin = layer_end;
  }
  stats->pout_atoms = pout.size();
  stats->unfold_ms = MsSince(t0);

  // ---- Step 2: overestimate M' ---------------------------------------
  t0 = Clock::now();
  View mprime = view;
  for (size_t ai = 0; ai < mprime.size(); ++ai) {
    ViewAtom& atom = mprime.MutableAtom(ai);
    for (const PoutAtom& p : pout) {
      if (p.pred != atom.pred || p.args.size() != atom.args.size()) continue;
      Constraint instance =
          InstanceConstraint(atom.args, p.args, p.constraint, &factory);
      Constraint overlap = Constraint::And(atom.constraint, instance);
      SolveOutcome o = solver.Solve(overlap);
      if (o == SolveOutcome::kError) return solver.last_status();
      if (!IsSolvable(o)) continue;  // no instances shared: skip
      if (SubtractDeletedPart(atom.args, instance, evaluator,
                              &atom.constraint)) {
        stats->atoms_overestimated++;
      }
    }
  }
  stats->overestimate_ms = MsSince(t0);

  // ---- Step 3: rederive over P'' ---------------------------------------
  t0 = Clock::now();
  std::set<Symbol> affected;
  for (const PoutAtom& p : pout) affected.insert(p.pred);

  Program p2;
  for (const Clause& c : program.clauses()) {
    Clause copy = c;
    if (!affected.count(c.head_pred)) {
      // Unaffected predicate: every derivation is already present in M'.
      // Keep the clause slot (numbering!) but make it inert.
      copy.constraint = Constraint::False();
      copy.body.clear();
      stats->pruned_clauses++;
    } else if (c.head_pred == request.pred &&
               c.head_args.size() == request.args.size()) {
      // Rewrite (4): guard against re-deriving the deleted instances
      // (grounded when enumerable, symbolic otherwise).
      Constraint guard_delta = InstanceConstraint(
          c.head_args, request.args, request.constraint, &factory);
      SubtractDeletedPart(c.head_args, guard_delta, evaluator,
                          &copy.constraint);
    }
    p2.AddClause(std::move(copy));
  }
  p2.factory()->ReserveAbove(factory.issued());
  *p2.names() = program.names();

  FixpointStats fstats;
  MMV_ASSIGN_OR_RETURN(
      View result,
      MaterializeFrom(p2, std::move(mprime), evaluator, options, &fstats));
  stats->rederive_derivations = fstats.derivations_attempted;

  stats->removed_unsolvable = PruneUnsolvable(&result, &solver);
  // Step 2 wrote factory-fresh variables into the seeded constraints,
  // which MaterializeFrom carried over without re-adding; raise the
  // result's high-water mark past everything this run issued.
  result.NoteExternalVars(factory.issued());
  stats->rederive_ms = MsSince(t0);
  stats->solver = solver.stats();
  return result;
}

}  // namespace maint
}  // namespace mmv
