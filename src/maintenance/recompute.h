// From-scratch recomputation — the baseline every incremental algorithm is
// benchmarked against, and the oracle the correctness tests compare with.

#ifndef MMV_MAINTENANCE_RECOMPUTE_H_
#define MMV_MAINTENANCE_RECOMPUTE_H_

#include "core/fixpoint.h"
#include "maintenance/del_add.h"

namespace mmv {
namespace maint {

/// \brief Materializes \p program from scratch and prunes unsolvable atoms.
Result<View> Recompute(const Program& program, DcaEvaluator* evaluator,
                       const FixpointOptions& options = {},
                       FixpointStats* stats = nullptr);

/// \brief Declarative post-deletion view: T_{P'}^w(empty) for the rewrite
/// P' of \p program w.r.t. \p request (Theorems 1 and 2's right-hand side).
Result<View> RecomputeAfterDeletion(const Program& program,
                                    const UpdateAtom& request,
                                    DcaEvaluator* evaluator,
                                    const FixpointOptions& options = {},
                                    FixpointStats* stats = nullptr);

/// \brief Declarative post-insertion view: the fixpoint of P extended with
/// the request as a constrained fact.
Result<View> RecomputeAfterInsertion(const Program& program,
                                     const UpdateAtom& request,
                                     DcaEvaluator* evaluator,
                                     const FixpointOptions& options = {},
                                     FixpointStats* stats = nullptr);

}  // namespace maint
}  // namespace mmv

#endif  // MMV_MAINTENANCE_RECOMPUTE_H_
