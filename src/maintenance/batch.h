// Batched view updates: apply a sequence of constrained-atom deletions and
// insertions in order (the paper treats single updates; real mediators
// receive bursts). Deletions use StDel — which, unlike DRed, needs no
// program threading between updates — and insertions use Algorithm 3.

#ifndef MMV_MAINTENANCE_BATCH_H_
#define MMV_MAINTENANCE_BATCH_H_

#include "maintenance/insert.h"
#include "maintenance/stdel.h"

namespace mmv {
namespace maint {

/// \brief One element of an update batch.
struct Update {
  enum class Kind : uint8_t { kDelete, kInsert };
  Kind kind;
  UpdateAtom atom;

  static Update Delete(UpdateAtom a) {
    return Update{Kind::kDelete, std::move(a)};
  }
  static Update Insert(UpdateAtom a) {
    return Update{Kind::kInsert, std::move(a)};
  }
};

/// \brief Aggregated counters across a batch.
struct BatchStats {
  size_t deletions_applied = 0;
  size_t insertions_applied = 0;
  size_t replacements = 0;       ///< total StDel constraint replacements
  size_t atoms_added = 0;        ///< total inserted atoms + consequences
  size_t removed_unsolvable = 0;
};

/// \brief Applies \p updates to \p view in order (duplicate-semantics view,
/// as required by StDel). \p ext_support_counter persists external-fact
/// support numbering across batches on the same view.
Status ApplyUpdates(const Program& program, View* view,
                    const std::vector<Update>& updates,
                    DcaEvaluator* evaluator,
                    const FixpointOptions& options = {},
                    BatchStats* stats = nullptr,
                    int* ext_support_counter = nullptr);

/// \brief The duplicate-freeness condition of Algorithm 1 (Section 3.1):
/// for all distinct atoms A(X1) <- phi1, A(X2) <- phi2 of the same
/// predicate, [A <- phi1] and [A <- phi2] are disjoint. Decided by pairwise
/// overlap solvability; conservative under deferred constraints (reports
/// "not duplicate-free" when overlap cannot be ruled out).
Result<bool> IsDuplicateFree(const View& view, DcaEvaluator* evaluator);

}  // namespace maint
}  // namespace mmv

#endif  // MMV_MAINTENANCE_BATCH_H_
