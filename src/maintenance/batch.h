// Batched view maintenance: a burst of constrained-atom deletions and
// insertions is applied as a PIPELINE instead of an in-order replay (the
// paper treats single updates; real mediators receive bursts).
//
//   1. A coalescing planner normalizes the burst: duplicate inserts and
//      duplicate deletes collapse, a delete followed by a re-insert of the
//      same canonical atom drops the delete, and an insert followed by a
//      delete of the same canonical atom drops the insert. Every rule
//      preserves in-order instance semantics (see PlanBatch).
//   2. The surviving updates are grouped into maximal same-kind runs.
//      Each delete run becomes ONE multi-atom StDel pass (one marking, one
//      Del set spanning every request, one step-2/3 sweep, one prune) and
//      each insert run becomes ONE seminaive continuation seeded with all
//      surviving externals.
//
// A K-update burst therefore costs one propagation per run, not K.
// Coalescing and delete-grouping are sound because supports are unique
// derivation identities (Lemma 1): subtracting several deleted parts and
// lifting them along supports commutes, so a combined pass removes exactly
// the instances the sequential passes would.

#ifndef MMV_MAINTENANCE_BATCH_H_
#define MMV_MAINTENANCE_BATCH_H_

#include "core/snapshot.h"
#include "maintenance/insert.h"
#include "maintenance/stdel.h"

namespace mmv {
namespace maint {

/// \brief One element of an update batch.
struct Update {
  enum class Kind : uint8_t { kDelete, kInsert };
  Kind kind;
  UpdateAtom atom;

  static Update Delete(UpdateAtom a) {
    return Update{Kind::kDelete, std::move(a)};
  }
  static Update Insert(UpdateAtom a) {
    return Update{Kind::kInsert, std::move(a)};
  }
};

/// \brief The coalescing planner's output: the surviving updates in their
/// original relative order.
struct BatchPlan {
  std::vector<Update> ops;
  size_t input_updates = 0;
  size_t coalesced_away = 0;  ///< updates removed by the planner
};

/// \brief Normalizes a burst without changing its in-order semantics.
/// Updates are keyed by canonical constrained-atom string
/// (variable-renaming-insensitive); the rules are deliberately conservative
/// — an update is only dropped when the surrounding updates provably cannot
/// observe the difference:
///
///   - a duplicate INSERT is dropped when no delete (of any predicate) was
///     kept in between: its instances are still covered, so its Add set is
///     empty and dropping it is exact. (A delete of any predicate can strip
///     derived coverage the first insert relied on.)
///   - a duplicate DELETE is dropped when no insert (of any predicate) was
///     kept in between: there is nothing left to delete. (An insert of any
///     predicate can re-derive the deleted instances as consequences.)
///   - DELETE k ... INSERT k: the delete is dropped when only inserts were
///     kept in between AND k's predicate participates in no non-fact
///     clause of \p program (neither as head nor as body atom) — deleting
///     and re-asserting a purely leaf-level atom nets to asserting it.
///     For a rule participant the pair is kept: a derived k sequentially
///     swaps derived coverage for an independent external support (a later
///     ancestor deletion observes the difference), and a body-predicate
///     k's re-insert re-derives its descendants, resurrecting derived
///     atoms deleted earlier (in this burst or in any previous
///     maintenance of the view).
///   - INSERT k ... DELETE k: the insert is dropped when no insert was kept
///     in between — the delete wipes the inserted instances and all their
///     consequences anyway. (An intervening insert's Add set could have
///     been emptied by coverage the dropped insert provided.)
BatchPlan PlanBatch(const Program& program,
                    const std::vector<Update>& updates);

struct BatchStats;

/// \brief Write-ahead durability hook of ApplyBatch (implemented by
/// durability::DurableLog; maintenance knows only this seam).
///
/// Protocol per batch: ApplyBatch calls LogBurst with the EXACT requested
/// burst before touching the view (log-ahead-of-apply — a logging failure
/// aborts the batch with the view untouched). After the burst fully
/// applied it calls CommitBurst (which makes the record durable per the
/// log's sync policy and may write a checkpoint of \p view); if any
/// maintenance pass failed it calls AbortBurst instead, so a failed batch
/// leaves NO record — recovery replays exactly the cleanly applied
/// prefix, matching the snapshot layer's failure-atomicity contract. A
/// crash mid-apply leaves the logged record behind on purpose: replay
/// through the same pipeline reconstructs the interrupted batch.
class BurstLog {
 public:
  virtual ~BurstLog() = default;
  virtual Status LogBurst(const std::vector<Update>& updates) = 0;
  /// Commits the pending record. \p image is the post-batch immutable
  /// image (the SAME extraction the snapshot store publishes, so the
  /// checkpoint writer never deep-reads the live view, and consecutive
  /// images diff into delta checkpoints by segment pointer identity).
  /// Adds this batch's wal_records/wal_bytes/wal_syncs/
  /// checkpoints_written/checkpoint_delta_bytes contributions to \p stats
  /// (never null).
  virtual Status CommitBurst(const SnapshotImageHandle& image,
                             BatchStats* stats) = 0;
  virtual void AbortBurst() = 0;
};

/// \brief Per-phase counters of one batch application.
struct BatchStats {
  // Planner.
  size_t input_updates = 0;
  size_t coalesced_away = 0;
  // Pipeline shape.
  size_t delete_passes = 0;  ///< multi-atom StDel sweeps run
  size_t insert_passes = 0;  ///< seminaive continuations run
  size_t deletions_applied = 0;   ///< delete requests reaching StDel
  size_t insertions_applied = 0;  ///< insert requests reaching the Add pass
  // Deletion phase.
  size_t del_elements = 0;        ///< Del-set overlaps found
  size_t replacements = 0;        ///< constraint replacements (step 2 + 3)
  size_t step3_replacements = 0;  ///< support-propagated replacements only
  size_t removed_unsolvable = 0;
  // Insertion phase.
  size_t add_atoms = 0;             ///< externals appended by Add passes
  size_t insertion_pass_atoms = 0;  ///< externals + derived consequences
  // Plan / memo layer.
  int64_t plan_reorders = 0;        ///< clause-plan compiles that reordered
  int64_t probe_intersections = 0;  ///< multi-position probes taken
  int64_t plan_cache_hits = 0;      ///< plans served without compiling
  int64_t solve_epoch_flushes = 0;  ///< caller solver memo flushed because
                                    ///  the external database's epoch moved
  int64_t reject_epoch_flushes = 0;  ///< ditto for the pairwise rejection
                                     ///  memo (same validity contract)
  // Solver fast path, summed over the batch's delete and insert passes.
  // STRATEGY counters: zero with MMV_SOLVER_FASTPATH=off and excluded from
  // every byte-identity comparison (like plan_cache_hits) — the
  // work-product counters above are what the on/off differential pins.
  int64_t sat_prechecks = 0;       ///< satisfiability pre-screens run
  int64_t sat_rejects = 0;         ///< screens that refuted deterministically
  int64_t reject_cache_hits = 0;   ///< refutations served by the memo
  // Snapshot layer.
  int64_t epochs_published = 0;     ///< view epochs published to the
                                    ///  snapshot store (1 per successful
                                    ///  batch when a store is attached)
  int64_t snapshot_nodes_shared = 0;  ///< per-pred posting segments the
                                      ///  published image re-pointed at
                                      ///  the previous epoch (CoW wins)
  int64_t snapshot_nodes_copied = 0;  ///< segments the batch's dirty set
                                      ///  forced the image to materialize
  // Durability layer (filled through the BurstLog hook; all zero when no
  // log is attached).
  int64_t wal_records = 0;          ///< WAL records committed (1 per clean
                                    ///  batch when a log is attached)
  int64_t wal_bytes = 0;            ///< framed bytes those records added
  int64_t wal_syncs = 0;            ///< explicit syncs the policy forced
  int64_t checkpoints_written = 0;  ///< canonical snapshots written
  int64_t checkpoint_delta_bytes = 0;  ///< bytes of DELTA checkpoint files
                                       ///  written (zero for full images)
  int64_t recovery_replayed_bursts = 0;  ///< bursts replayed out of the
                                         ///  WAL (recovery-side only; see
                                         ///  durability::RecoveryInfo)
  // Parallel fan-out shape, summed over the batch's delete and insert
  // passes (thread-count-dependent, see FixpointStats — every counter
  // above is identical across thread counts, these are not).
  int64_t partitions_run = 0;
  int64_t partition_skipped_small = 0;
  int64_t evaluator_clones = 0;
  int64_t mutex_evaluator_engaged = 0;  ///< parallel tasks that fell back
                                        ///  to the serialized
                                        ///  MutexDcaEvaluator wrapper
                                        ///  (retirement-path telemetry)

  /// Field-wise sum — recovery accumulates one BatchStats per replayed
  /// burst into RecoveryInfo::replay_stats with this.
  BatchStats& operator+=(const BatchStats& other);
};

/// \brief Applies \p updates to \p view through the coalescing pipeline
/// (duplicate-semantics view, as required by StDel). Instance-equivalent to
/// ApplyUpdatesSequential on the same burst.
///
/// On error the view is left valid but partially maintained — and possibly
/// emptied, if an insertion continuation failed mid-run (see
/// ContinueFixpoint). Callers needing failure atomicity should apply the
/// batch to a copy.
///
/// \p ext_support_counter persists external-fact support numbering across
/// batches on the same view; when null, a fresh counter is seeded below the
/// smallest clause number found anywhere in the view's support trees
/// (external leaves included), so supports stay collision-free.
///
/// Cross-batch memos: a SolveCache passed through
/// \p options.solve_cache survives from batch to batch — ApplyBatch tags
/// it with the evaluator's catalog epoch (DcaEvaluator::StateEpoch: the
/// effective tick folded with the clock's same-tick mutation counter) and
/// flushes it only when the external database actually changed (plus once
/// at first tagging if the memo already holds pre-tag entries), the
/// read-mostly mediator's big win. A plan::PlanCache passed through
/// \p options.plan_cache likewise carries compiled clause plans across
/// batches (it revalidates against the program identity by itself); when
/// absent, one batch-local instance spans this batch's delete and insert
/// passes.
///
/// Snapshot publication: when \p snapshots is non-null, ONE new view epoch
/// is published there after the whole burst applied cleanly (the epoch
/// publication point for concurrent readers — see core/snapshot.h). On
/// error nothing is published, so pinned readers keep serving the
/// pre-batch epoch and never observe the partially maintained view.
///
/// Durability: when \p log is non-null the burst is journaled
/// log-ahead-of-apply (see BurstLog): the record is appended BEFORE the
/// first maintenance pass, committed durable after the whole burst
/// applied, and rolled back if any pass failed. Commit precedes snapshot
/// publication, so a reader can never pin an epoch the log might still
/// lose. IO failures are loud: a LogBurst failure aborts the batch with
/// the view untouched; a CommitBurst failure is returned after the view
/// mutated but before the epoch published (the live view is ahead of both
/// the log and the readers — callers should treat the session as
/// poisoned, recover, and retry).
Status ApplyBatch(const Program& program, View* view,
                  const std::vector<Update>& updates, DcaEvaluator* evaluator,
                  const FixpointOptions& options = {},
                  BatchStats* stats = nullptr,
                  int* ext_support_counter = nullptr,
                  SnapshotStore* snapshots = nullptr,
                  BurstLog* log = nullptr);

/// \brief Replays \p updates one at a time in order (no coalescing, one
/// StDel or insertion fixpoint per update). This is the paper's
/// single-update regime — kept as the differential-testing oracle and the
/// benchmark baseline for ApplyBatch.
Status ApplyUpdatesSequential(const Program& program, View* view,
                              const std::vector<Update>& updates,
                              DcaEvaluator* evaluator,
                              const FixpointOptions& options = {},
                              BatchStats* stats = nullptr,
                              int* ext_support_counter = nullptr);

/// \brief The duplicate-freeness condition of Algorithm 1 (Section 3.1):
/// for all distinct atoms A(X1) <- phi1, A(X2) <- phi2 of the same
/// predicate, [A <- phi1] and [A <- phi2] are disjoint. Decided by pairwise
/// overlap solvability; conservative under deferred constraints (reports
/// "not duplicate-free" when overlap cannot be ruled out).
Result<bool> IsDuplicateFree(const View& view, DcaEvaluator* evaluator);

}  // namespace maint
}  // namespace mmv

#endif  // MMV_MAINTENANCE_BATCH_H_
