#include "query/enumerate.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <sstream>

namespace mmv {
namespace query {

bool Instance::operator<(const Instance& other) const {
  if (pred != other.pred) return pred < other.pred;
  size_t n = std::min(values.size(), other.values.size());
  for (size_t i = 0; i < n; ++i) {
    if (values[i] < other.values[i]) return true;
    if (other.values[i] < values[i]) return false;
  }
  return values.size() < other.values.size();
}

std::string Instance::ToString() const {
  std::ostringstream os;
  os << pred << "(";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) os << ", ";
    os << values[i];
  }
  os << ")";
  return os.str();
}

namespace {

// Candidate values of one head position, or "unbounded".
struct PositionDomain {
  std::vector<Value> values;
  bool unbounded = false;
  int class_slot = -1;  ///< shared-class marker for repeated variables
};

// Extracts the enumerable values of a class description.
PositionDomain DomainOf(const VarDomainInfo& info) {
  PositionDomain out;
  if (info.bound) {
    out.values.push_back(*info.bound);
    return out;
  }
  if (info.candidates) {
    for (const Value& v : *info.candidates) {
      bool excluded = std::find(info.excluded.begin(), info.excluded.end(),
                                v) != info.excluded.end();
      if (excluded) continue;
      if (!info.interval.Unbounded()) {
        if (!v.is_numeric() || !info.interval.Contains(v.numeric())) continue;
      }
      out.values.push_back(v);
    }
    return out;
  }
  // Interval-only domains are enumerable when integral and finite.
  if (info.interval.integral) {
    auto count = info.interval.IntegralCount();
    if (count.has_value() && *count == 0) return out;  // provably empty
    if (count.has_value() && *count > 0 && *count <= 2000000) {
      double lo = std::ceil(info.interval.lo);
      double hi = std::floor(info.interval.hi);
      // The walk must use an int64_t cursor: at magnitudes >= 2^53 a
      // double `v += 1` is a no-op (infinite loop) or skips integers even
      // though the COUNT above is tiny. The endpoint doubles themselves
      // are exact integers (ceil/floor), so the casts below are exact;
      // bounds outside int64 range are unenumerable (the cast would be
      // UB), so treat them as unbounded. 2^63 is the first double above
      // the int64 range on both sides.
      constexpr double kInt64Edge = 9223372036854775808.0;  // 2^63
      if (lo < -kInt64Edge || hi >= kInt64Edge) {
        out.unbounded = true;
        return out;
      }
      int64_t lo_i = static_cast<int64_t>(lo);
      int64_t hi_i = static_cast<int64_t>(hi);
      // Strict-bound nudges happen in int64 too: at 2^53, `lo += 1` on the
      // double rounds back to 2^53 and the open bound would be included.
      if (info.interval.lo_strict && lo == info.interval.lo) ++lo_i;
      if (info.interval.hi_strict && hi == info.interval.hi) --hi_i;
      for (int64_t v = lo_i; v <= hi_i; ++v) {
        Value val(v);
        bool excluded = std::find(info.excluded.begin(), info.excluded.end(),
                                  val) != info.excluded.end();
        if (!excluded) out.values.push_back(std::move(val));
      }
      return out;
    }
  }
  out.unbounded = true;
  return out;
}

// Recursive enumeration engine for one atom.
class AtomEnumerator {
 public:
  AtomEnumerator(const ViewAtom& atom, DcaEvaluator* evaluator,
                 const EnumerateOptions& options, InstanceSet* out)
      : atom_(atom), options_(options), out_(out),
        solver_(evaluator, options.solver) {}

  Status Run() { return Refine(atom_.constraint, 0); }

 private:
  static constexpr int kMaxSplitDepth = 64;

  Status Refine(const Constraint& constraint, int depth) {
    if (out_->instances.size() >= options_.max_instances) {
      out_->complete = false;
      return Status::OK();
    }
    SolveOutcome pre = solver_.Solve(constraint);
    if (pre == SolveOutcome::kError) return solver_.last_status();
    if (pre == SolveOutcome::kUnsat) return Status::OK();

    Result<std::vector<VarDomainInfo>> analyzed =
        solver_.Analyze(constraint);
    if (!analyzed.ok()) return Status::OK();  // positive part unsat
    const std::vector<VarDomainInfo>& classes = *analyzed;

    // Split on a deferred-touched finite class first: grounding it lets
    // the solver evaluate the remaining chained domain calls.
    if (depth < kMaxSplitDepth) {
      for (const VarDomainInfo& info : classes) {
        if (!info.touched_by_deferred || info.bound || !info.candidates ||
            info.members.empty()) {
          continue;
        }
        PositionDomain d = DomainOf(info);
        if (d.unbounded) continue;
        for (const Value& v : d.values) {
          Constraint refined = constraint;
          refined.Add(Primitive::Eq(Term::Var(info.members.front()),
                                    Term::Const(v)));
          MMV_RETURN_NOT_OK(Refine(refined, depth + 1));
        }
        return Status::OK();
      }
    }
    return EnumerateHeads(constraint, classes);
  }

  Status EnumerateHeads(const Constraint& constraint,
                        const std::vector<VarDomainInfo>& classes) {
    auto class_of = [&](VarId v) -> int {
      for (size_t i = 0; i < classes.size(); ++i) {
        const auto& m = classes[i].members;
        if (std::find(m.begin(), m.end(), v) != m.end()) {
          return static_cast<int>(i);
        }
      }
      return -1;
    };

    size_t arity = atom_.args.size();
    std::vector<PositionDomain> domains(arity);
    for (size_t k = 0; k < arity; ++k) {
      const Term& t = atom_.args[k];
      if (t.is_const()) {
        domains[k].values.push_back(t.constant());
        continue;
      }
      int slot = class_of(t.var());
      if (slot < 0) {
        domains[k].unbounded = true;  // variable absent from the constraint
        continue;
      }
      domains[k] = DomainOf(classes[static_cast<size_t>(slot)]);
      domains[k].class_slot = slot;
    }
    for (const PositionDomain& d : domains) {
      if (d.unbounded) {
        out_->complete = false;
        return Status::OK();
      }
    }

    std::vector<Value> tuple(arity);
    std::vector<std::pair<int, Value>> chosen;
    return Product(constraint, domains, 0, &tuple, &chosen);
  }

  Status Product(const Constraint& constraint,
                 const std::vector<PositionDomain>& domains, size_t k,
                 std::vector<Value>* tuple,
                 std::vector<std::pair<int, Value>>* chosen) {
    if (out_->instances.size() >= options_.max_instances) {
      out_->complete = false;
      return Status::OK();
    }
    size_t arity = atom_.args.size();
    if (k == arity) {
      Constraint check = constraint;
      for (size_t i = 0; i < arity; ++i) {
        check.Add(Primitive::Eq(atom_.args[i], Term::Const((*tuple)[i])));
      }
      SolveOutcome o = solver_.Solve(check);
      if (o == SolveOutcome::kError) return solver_.last_status();
      if (IsSolvable(o)) {
        if (o == SolveOutcome::kSatDeferred) out_->approximate = true;
        out_->instances.insert(Instance{atom_.pred, *tuple});
      }
      return Status::OK();
    }
    if (domains[k].class_slot >= 0) {
      for (const auto& [slot, val] : *chosen) {
        if (slot == domains[k].class_slot) {
          (*tuple)[k] = val;
          return Product(constraint, domains, k + 1, tuple, chosen);
        }
      }
    }
    for (const Value& v : domains[k].values) {
      (*tuple)[k] = v;
      if (domains[k].class_slot >= 0) {
        chosen->emplace_back(domains[k].class_slot, v);
        MMV_RETURN_NOT_OK(Product(constraint, domains, k + 1, tuple, chosen));
        chosen->pop_back();
      } else {
        MMV_RETURN_NOT_OK(Product(constraint, domains, k + 1, tuple, chosen));
      }
    }
    return Status::OK();
  }

  const ViewAtom& atom_;
  EnumerateOptions options_;
  InstanceSet* out_;
  Solver solver_;
};

}  // namespace

Result<InstanceSet> EnumerateAtom(const ViewAtom& atom,
                                  DcaEvaluator* evaluator,
                                  const EnumerateOptions& options) {
  InstanceSet out;
  if (atom.constraint.is_false()) return out;
  AtomEnumerator enumerator(atom, evaluator, options, &out);
  MMV_RETURN_NOT_OK(enumerator.Run());
  return out;
}

Result<InstanceSet> EnumerateView(const View& view, DcaEvaluator* evaluator,
                                  const EnumerateOptions& options) {
  InstanceSet out;
  for (const ViewAtom& atom : view.atoms()) {
    // Each atom gets only the REMAINING budget: handing every atom the
    // full max_instances would let an N-atom view do ~N times the capped
    // work (and overshoot the cap) before the union check below truncated.
    // An atom capped at `remaining` adds at most `remaining` new
    // instances, so the union can never exceed max_instances.
    EnumerateOptions atom_options = options;
    atom_options.max_instances = options.max_instances - out.instances.size();
    MMV_ASSIGN_OR_RETURN(InstanceSet one,
                         EnumerateAtom(atom, evaluator, atom_options));
    out.instances.insert(one.instances.begin(), one.instances.end());
    out.complete = out.complete && one.complete;
    out.approximate = out.approximate || one.approximate;
    if (out.instances.size() >= options.max_instances) {
      out.complete = false;
      break;
    }
  }
  assert(out.instances.size() <= options.max_instances);
  return out;
}

Result<InstanceSet> EnumerateView(const SnapshotHandle& snapshot,
                                  DcaEvaluator* evaluator,
                                  const EnumerateOptions& options) {
  // Walks the image's global atom order — the same sequence the live
  // view's atoms() held at publication, so a snapshot read enumerates
  // (and budget-truncates) exactly like a live read of that epoch.
  InstanceSet out;
  Status status = Status::OK();
  snapshot->image->ForEachAtom([&](const ViewAtom& atom) {
    // Remaining-budget threading, as in the live overload above.
    EnumerateOptions atom_options = options;
    atom_options.max_instances = options.max_instances - out.instances.size();
    Result<InstanceSet> one = EnumerateAtom(atom, evaluator, atom_options);
    if (!one.ok()) {
      status = one.status();
      return false;
    }
    out.instances.insert(one->instances.begin(), one->instances.end());
    out.complete = out.complete && one->complete;
    out.approximate = out.approximate || one->approximate;
    if (out.instances.size() >= options.max_instances) {
      out.complete = false;
      return false;
    }
    return true;
  });
  MMV_RETURN_NOT_OK(status);
  assert(out.instances.size() <= options.max_instances);
  return out;
}

}  // namespace query
}  // namespace mmv
