// Pattern queries over materialized mediated views.

#ifndef MMV_QUERY_QUERY_H_
#define MMV_QUERY_QUERY_H_

#include "query/enumerate.h"

namespace mmv {
namespace query {

/// \brief Instances of \p pred in \p view matching \p pattern.
///
/// Constant positions of the pattern filter; variable positions are
/// wildcards (a repeated pattern variable forces equal values). Evaluation
/// uses the evaluator's current time — so a W_P view answers with
/// up-to-date external data with no maintenance having run (Corollary 1).
Result<InstanceSet> QueryPred(const View& view, Symbol pred,
                              const TermVec& pattern,
                              DcaEvaluator* evaluator,
                              const EnumerateOptions& options = {});

/// \brief QueryPred against a pinned snapshot (core/snapshot.h) — the
/// epoch-consistent read path, safe while maintenance runs on the live
/// view.
Result<InstanceSet> QueryPred(const SnapshotHandle& snapshot, Symbol pred,
                              const TermVec& pattern,
                              DcaEvaluator* evaluator,
                              const EnumerateOptions& options = {});

/// \brief True iff pred(values) is an instance of the view.
Result<bool> Ask(const View& view, Symbol pred,
                 const std::vector<Value>& values, DcaEvaluator* evaluator,
                 const EnumerateOptions& options = {});

/// \brief Ask against a pinned snapshot.
Result<bool> Ask(const SnapshotHandle& snapshot, Symbol pred,
                 const std::vector<Value>& values, DcaEvaluator* evaluator,
                 const EnumerateOptions& options = {});

}  // namespace query
}  // namespace mmv

#endif  // MMV_QUERY_QUERY_H_
