// Enumeration of view instances: [M] (paper Section 2.3), evaluated with
// the *current* meaning of every domain function — the query-time
// solvability that makes W_P views maintenance-free (Corollary 1).

#ifndef MMV_QUERY_ENUMERATE_H_
#define MMV_QUERY_ENUMERATE_H_

#include <set>
#include <string>
#include <vector>

#include "common/interner.h"
#include "constraint/solver.h"
#include "core/snapshot.h"
#include "core/view.h"

namespace mmv {
namespace query {

/// \brief One ground instance pred(v1, ..., vk).
struct Instance {
  Symbol pred;
  std::vector<Value> values;

  bool operator==(const Instance& other) const {
    return pred == other.pred && values == other.values;
  }
  bool operator<(const Instance& other) const;
  std::string ToString() const;
};

/// \brief Enumeration limits.
struct EnumerateOptions {
  size_t max_instances = 1000000;
  SolverOptions solver;
};

/// \brief Result of an enumeration.
struct InstanceSet {
  std::set<Instance> instances;
  /// False when an atom's solutions could not be finitely enumerated
  /// (unbounded variable domain) or max_instances was hit.
  bool complete = true;
  /// True when some instance was admitted on a deferred (undecidable-now)
  /// constraint.
  bool approximate = false;

  bool operator==(const InstanceSet& other) const {
    return instances == other.instances;
  }
};

/// \brief Enumerates the solutions of one constrained atom at the current
/// domain state.
Result<InstanceSet> EnumerateAtom(const ViewAtom& atom,
                                  DcaEvaluator* evaluator,
                                  const EnumerateOptions& options = {});

/// \brief Enumerates [M]: the union of all atoms' solutions.
Result<InstanceSet> EnumerateView(const View& view, DcaEvaluator* evaluator,
                                  const EnumerateOptions& options = {});

/// \brief Enumerates [M] against a pinned snapshot (core/snapshot.h): the
/// epoch-consistent read path that is safe WHILE maintenance mutates the
/// live view. The handle keeps the snapshot alive for the duration, so
/// callers may drop their own pin immediately after the call.
Result<InstanceSet> EnumerateView(const SnapshotHandle& snapshot,
                                  DcaEvaluator* evaluator,
                                  const EnumerateOptions& options = {});

}  // namespace query
}  // namespace mmv

#endif  // MMV_QUERY_ENUMERATE_H_
