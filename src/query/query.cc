#include "query/query.h"

#include <unordered_map>

namespace mmv {
namespace query {

namespace {

// Restricts a copy of \p atom by \p pattern: Eq primitives for constant
// positions, position-equality for repeated pattern variables.
ViewAtom RestrictByPattern(const ViewAtom& atom, const TermVec& pattern) {
  ViewAtom restricted = atom;
  std::unordered_map<VarId, size_t> first_pos;
  for (size_t k = 0; k < pattern.size(); ++k) {
    const Term& p = pattern[k];
    if (p.is_const()) {
      restricted.constraint.Add(
          Primitive::Eq(atom.args[k], Term::Const(p.constant())));
    } else {
      auto it = first_pos.find(p.var());
      if (it == first_pos.end()) {
        first_pos[p.var()] = k;
      } else {
        // Repeated pattern variable: positions must be equal.
        restricted.constraint.Add(
            Primitive::Eq(atom.args[k], atom.args[it->second]));
      }
    }
  }
  return restricted;
}

// Enumerates one pattern-restricted atom into \p out with the REMAINING
// budget, as in EnumerateView: handing every matching atom the full
// max_instances would let the union overshoot the cap. Returns false once
// the cap is reached (callers stop scanning).
Result<bool> AccumulateMatch(const ViewAtom& atom, const TermVec& pattern,
                             DcaEvaluator* evaluator,
                             const EnumerateOptions& options,
                             InstanceSet* out) {
  EnumerateOptions atom_options = options;
  atom_options.max_instances = options.max_instances - out->instances.size();
  MMV_ASSIGN_OR_RETURN(
      InstanceSet one,
      EnumerateAtom(RestrictByPattern(atom, pattern), evaluator,
                    atom_options));
  out->instances.insert(one.instances.begin(), one.instances.end());
  out->complete = out->complete && one.complete;
  out->approximate = out->approximate || one.approximate;
  if (out->instances.size() >= options.max_instances) {
    out->complete = false;
    return false;
  }
  return true;
}

}  // namespace

Result<InstanceSet> QueryPred(const View& view, Symbol pred,
                              const TermVec& pattern,
                              DcaEvaluator* evaluator,
                              const EnumerateOptions& options) {
  InstanceSet out;
  for (size_t i : view.AtomsFor(pred)) {
    const ViewAtom& atom = view.atoms()[i];
    if (atom.args.size() != pattern.size()) continue;
    MMV_ASSIGN_OR_RETURN(
        bool keep_going,
        AccumulateMatch(atom, pattern, evaluator, options, &out));
    if (!keep_going) break;
  }
  return out;
}

Result<InstanceSet> QueryPred(const SnapshotHandle& snapshot, Symbol pred,
                              const TermVec& pattern,
                              DcaEvaluator* evaluator,
                              const EnumerateOptions& options) {
  // The image's per-pred segment holds the same atoms, in the same order,
  // as the live posting list did at publication, so the scan below is
  // byte-identical to the live overload at that epoch.
  InstanceSet out;
  for (const ViewAtom& atom : snapshot->image->AtomsFor(pred)) {
    if (atom.args.size() != pattern.size()) continue;
    MMV_ASSIGN_OR_RETURN(
        bool keep_going,
        AccumulateMatch(atom, pattern, evaluator, options, &out));
    if (!keep_going) break;
  }
  return out;
}

Result<bool> Ask(const View& view, Symbol pred,
                 const std::vector<Value>& values, DcaEvaluator* evaluator,
                 const EnumerateOptions& options) {
  TermVec pattern;
  pattern.reserve(values.size());
  for (const Value& v : values) pattern.push_back(Term::Const(v));
  MMV_ASSIGN_OR_RETURN(InstanceSet result,
                       QueryPred(view, pred, pattern, evaluator, options));
  return !result.instances.empty();
}

Result<bool> Ask(const SnapshotHandle& snapshot, Symbol pred,
                 const std::vector<Value>& values, DcaEvaluator* evaluator,
                 const EnumerateOptions& options) {
  TermVec pattern;
  pattern.reserve(values.size());
  for (const Value& v : values) pattern.push_back(Term::Const(v));
  MMV_ASSIGN_OR_RETURN(InstanceSet result,
                       QueryPred(snapshot, pred, pattern, evaluator, options));
  return !result.instances.empty();
}

}  // namespace query
}  // namespace mmv
