#include "query/query.h"

#include <unordered_map>

namespace mmv {
namespace query {

Result<InstanceSet> QueryPred(const View& view, Symbol pred,
                              const TermVec& pattern,
                              DcaEvaluator* evaluator,
                              const EnumerateOptions& options) {
  InstanceSet out;
  for (size_t i : view.AtomsFor(pred)) {
    const ViewAtom& atom = view.atoms()[i];
    if (atom.args.size() != pattern.size()) continue;
    // Restrict the atom by the pattern.
    ViewAtom restricted = atom;
    std::unordered_map<VarId, size_t> first_pos;
    for (size_t k = 0; k < pattern.size(); ++k) {
      const Term& p = pattern[k];
      if (p.is_const()) {
        restricted.constraint.Add(
            Primitive::Eq(atom.args[k], Term::Const(p.constant())));
      } else {
        auto it = first_pos.find(p.var());
        if (it == first_pos.end()) {
          first_pos[p.var()] = k;
        } else {
          // Repeated pattern variable: positions must be equal.
          restricted.constraint.Add(
              Primitive::Eq(atom.args[k], atom.args[it->second]));
        }
      }
    }
    // Thread the REMAINING budget, as in EnumerateView: handing every
    // matching atom the full max_instances would let the union overshoot
    // the cap.
    EnumerateOptions atom_options = options;
    atom_options.max_instances = options.max_instances - out.instances.size();
    MMV_ASSIGN_OR_RETURN(InstanceSet one,
                         EnumerateAtom(restricted, evaluator, atom_options));
    out.instances.insert(one.instances.begin(), one.instances.end());
    out.complete = out.complete && one.complete;
    out.approximate = out.approximate || one.approximate;
    if (out.instances.size() >= options.max_instances) {
      out.complete = false;
      break;
    }
  }
  return out;
}

Result<InstanceSet> QueryPred(const SnapshotHandle& snapshot, Symbol pred,
                              const TermVec& pattern,
                              DcaEvaluator* evaluator,
                              const EnumerateOptions& options) {
  return QueryPred(snapshot->view, pred, pattern, evaluator, options);
}

Result<bool> Ask(const View& view, Symbol pred,
                 const std::vector<Value>& values, DcaEvaluator* evaluator,
                 const EnumerateOptions& options) {
  TermVec pattern;
  pattern.reserve(values.size());
  for (const Value& v : values) pattern.push_back(Term::Const(v));
  MMV_ASSIGN_OR_RETURN(InstanceSet result,
                       QueryPred(view, pred, pattern, evaluator, options));
  return !result.instances.empty();
}

Result<bool> Ask(const SnapshotHandle& snapshot, Symbol pred,
                 const std::vector<Value>& values, DcaEvaluator* evaluator,
                 const EnumerateOptions& options) {
  return Ask(snapshot->view, pred, values, evaluator, options);
}

}  // namespace query
}  // namespace mmv
