#include "query/query.h"

#include <unordered_map>

namespace mmv {
namespace query {

Result<InstanceSet> QueryPred(const View& view, Symbol pred,
                              const TermVec& pattern,
                              DcaEvaluator* evaluator,
                              const EnumerateOptions& options) {
  InstanceSet out;
  for (size_t i : view.AtomsFor(pred)) {
    const ViewAtom& atom = view.atoms()[i];
    if (atom.args.size() != pattern.size()) continue;
    // Restrict the atom by the pattern.
    ViewAtom restricted = atom;
    std::unordered_map<VarId, size_t> first_pos;
    for (size_t k = 0; k < pattern.size(); ++k) {
      const Term& p = pattern[k];
      if (p.is_const()) {
        restricted.constraint.Add(
            Primitive::Eq(atom.args[k], Term::Const(p.constant())));
      } else {
        auto it = first_pos.find(p.var());
        if (it == first_pos.end()) {
          first_pos[p.var()] = k;
        } else {
          // Repeated pattern variable: positions must be equal.
          restricted.constraint.Add(
              Primitive::Eq(atom.args[k], atom.args[it->second]));
        }
      }
    }
    MMV_ASSIGN_OR_RETURN(InstanceSet one,
                         EnumerateAtom(restricted, evaluator, options));
    out.instances.insert(one.instances.begin(), one.instances.end());
    out.complete = out.complete && one.complete;
    out.approximate = out.approximate || one.approximate;
  }
  return out;
}

Result<bool> Ask(const View& view, Symbol pred,
                 const std::vector<Value>& values, DcaEvaluator* evaluator,
                 const EnumerateOptions& options) {
  TermVec pattern;
  pattern.reserve(values.size());
  for (const Value& v : values) pattern.push_back(Term::Const(v));
  MMV_ASSIGN_OR_RETURN(InstanceSet result,
                       QueryPred(view, pred, pattern, evaluator, options));
  return !result.instances.empty();
}

}  // namespace query
}  // namespace mmv
