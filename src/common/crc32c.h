// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every durability artifact — WAL record frames and
// checkpoint files (src/durability/). Software slice-by-one table
// implementation; fast enough for the line-oriented text payloads the
// durability layer frames (the hot path is the maintenance pipeline, not
// the log append).

#ifndef MMV_COMMON_CRC32C_H_
#define MMV_COMMON_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace mmv {

/// \brief Extends a running CRC32C over \p data. Seed new computations
/// with crc = 0; the result of one call is the seed of the next, so a
/// checksum can be accumulated across non-contiguous chunks.
uint32_t Crc32cExtend(uint32_t crc, std::string_view data);

/// \brief CRC32C of \p data in one call.
inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data);
}

}  // namespace mmv

#endif  // MMV_COMMON_CRC32C_H_
