#include "common/crc32c.h"

namespace mmv {

namespace {

// 256-entry table for the reflected Castagnoli polynomial, built once on
// first use (constant thereafter; thread-safe per C++11 static init).
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  static const Crc32cTable table;
  crc = ~crc;
  for (unsigned char c : data) {
    crc = table.entries[(crc ^ c) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace mmv
