#include "common/interner.h"

#include <mutex>

namespace mmv {

Interner& Interner::Global() {
  static Interner* instance = new Interner();
  return *instance;
}

Interner::Interner() {
  names_.emplace_back();  // id 0: the empty string
  ids_.emplace(std::string_view(names_.back()), 0);
}

uint32_t Interner::Intern(std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;  // raced with another writer
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(std::string_view(names_.back()), id);
  return id;
}

const std::string& Interner::NameOf(uint32_t id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return names_[id];
}

size_t Interner::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return names_.size();
}

}  // namespace mmv
