// Status: error-handling primitive used across the mmv library.
//
// Follows the Arrow/RocksDB idiom: functions that can fail return a Status
// (or Result<T>, see result.h) instead of throwing exceptions. Public API
// functions never throw.

#ifndef MMV_COMMON_STATUS_H_
#define MMV_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace mmv {

/// \brief Error category for a failed operation.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kParseError = 7,
  kTypeError = 8,
  kResourceExhausted = 9,
};

/// \brief Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// \brief Result of an operation that may fail.
///
/// A default-constructed Status is OK and carries no allocation; error
/// statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given error \p code and \p message.
  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  /// \brief Returns an OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// \brief True iff the operation succeeded.
  bool ok() const { return state_ == nullptr; }

  /// \brief The status code (kOk when ok()).
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }

  /// \brief The error message ("" when ok()).
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<State> state_;  // null == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates an error status out of the current function.
#define MMV_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::mmv::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace mmv

#endif  // MMV_COMMON_STATUS_H_
