// Deterministic pseudo-random utilities for workload generation and
// property-based tests. All randomness in the repository flows through Rng
// so every test and benchmark is reproducible from a seed.

#ifndef MMV_COMMON_RNG_H_
#define MMV_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace mmv {

/// \brief Seeded random generator with convenience samplers.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t Int(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// \brief Uniform double in [lo, hi).
  double Double(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// \brief Bernoulli with probability \p p.
  bool Chance(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// \brief Uniformly chosen element of \p v (v must be non-empty).
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[static_cast<size_t>(Int(0, static_cast<int64_t>(v.size()) - 1))];
  }

  /// \brief Random lowercase identifier of length \p len.
  std::string Ident(int len) {
    std::string s;
    s.reserve(static_cast<size_t>(len));
    for (int i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + Int(0, 25)));
    }
    return s;
  }

  /// \brief In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mmv

#endif  // MMV_COMMON_RNG_H_
