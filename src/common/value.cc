#include "common/value.h"

#include <cmath>
#include <functional>
#include <ostream>
#include <sstream>

#include "common/hash.h"

namespace mmv {

const char* ValueKindName(ValueKind k) {
  switch (k) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kInt:
      return "int";
    case ValueKind::kDouble:
      return "double";
    case ValueKind::kString:
      return "string";
    case ValueKind::kList:
      return "list";
  }
  return "unknown";
}

namespace {

// Collapses kInt/kDouble into one ordering class so 2 == 2.0.
int KindClass(ValueKind k) {
  switch (k) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kBool:
      return 1;
    case ValueKind::kInt:
    case ValueKind::kDouble:
      return 2;
    case ValueKind::kString:
      return 3;
    case ValueKind::kList:
      return 4;
  }
  return 5;
}

}  // namespace

bool Value::operator==(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) return as_int() == other.as_int();
    return numeric() == other.numeric();
  }
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case ValueKind::kNull:
      return true;
    case ValueKind::kBool:
      return as_bool() == other.as_bool();
    case ValueKind::kString:
      return as_string() == other.as_string();
    case ValueKind::kList:
      return as_list() == other.as_list();
    default:
      return false;  // numeric handled above
  }
}

bool Value::operator<(const Value& other) const {
  int ka = KindClass(kind()), kb = KindClass(other.kind());
  if (ka != kb) return ka < kb;
  switch (kind()) {
    case ValueKind::kNull:
      return false;
    case ValueKind::kBool:
      return as_bool() < other.as_bool();
    case ValueKind::kInt:
    case ValueKind::kDouble: {
      if (is_int() && other.is_int()) return as_int() < other.as_int();
      return numeric() < other.numeric();
    }
    case ValueKind::kString:
      return as_string() < other.as_string();
    case ValueKind::kList: {
      const ValueList& a = as_list();
      const ValueList& b = other.as_list();
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        if (a[i] < b[i]) return true;
        if (b[i] < a[i]) return false;
      }
      return a.size() < b.size();
    }
  }
  return false;
}

size_t Value::Hash() const {
  size_t h = static_cast<size_t>(KindClass(kind())) * 0x9e3779b97f4a7c15ULL;
  switch (kind()) {
    case ValueKind::kNull:
      break;
    case ValueKind::kBool:
      h = HashCombine(h, std::hash<bool>{}(as_bool()));
      break;
    case ValueKind::kInt:
    case ValueKind::kDouble:
      // Hash by double so 2 and 2.0 collide (consistent with operator==).
      h = HashCombine(h, std::hash<double>{}(numeric()));
      break;
    case ValueKind::kString:
      h = HashCombine(h, std::hash<std::string>{}(as_string()));
      break;
    case ValueKind::kList:
      for (const Value& v : as_list()) h = HashCombine(h, v.Hash());
      break;
  }
  return h;
}

std::string Value::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  switch (v.kind()) {
    case ValueKind::kNull:
      return os << "null";
    case ValueKind::kBool:
      return os << (v.as_bool() ? "true" : "false");
    case ValueKind::kInt:
      return os << v.as_int();
    case ValueKind::kDouble: {
      double d = v.as_double();
      if (d == std::floor(d) && std::isfinite(d)) {
        os << d << ".0";
        return os;
      }
      return os << d;
    }
    case ValueKind::kString:
      return os << '"' << v.as_string() << '"';
    case ValueKind::kList: {
      os << '[';
      const ValueList& l = v.as_list();
      for (size_t i = 0; i < l.size(); ++i) {
        if (i) os << ", ";
        os << l[i];
      }
      return os << ']';
    }
  }
  return os;
}

}  // namespace mmv
