// String interning: Symbol is a 32-bit handle into a process-wide table of
// predicate / relation names. Equality and hashing are integer operations;
// the name round-trips through name() for parsing and printing.
//
// Interned ids are dense and stable for the lifetime of the process, which
// makes Symbol suitable as an index key across every layer (core ViewStore
// posting lists, maintenance P_OUT matching, datalog relations).

#ifndef MMV_COMMON_INTERNER_H_
#define MMV_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <ostream>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace mmv {

/// \brief The process-wide symbol table. Thread-safe; names are never freed.
class Interner {
 public:
  /// \brief The global table (id 0 is the empty string).
  static Interner& Global();

  /// \brief Returns the id of \p name, interning it on first sight.
  uint32_t Intern(std::string_view name);

  /// \brief The name of \p id. Ids come only from Intern, so this never
  /// fails; the reference is stable for the process lifetime.
  const std::string& NameOf(uint32_t id) const;

  /// \brief Number of distinct symbols interned so far.
  size_t size() const;

 private:
  Interner();

  mutable std::shared_mutex mu_;
  // Keys view into names_ entries; std::deque keeps addresses stable.
  std::unordered_map<std::string_view, uint32_t> ids_;
  std::deque<std::string> names_;
};

/// \brief An interned string. Copyable, trivially comparable, hashable.
///
/// The default-constructed Symbol is the empty string (id 0) and tests
/// false via empty().
class Symbol {
 public:
  Symbol() : id_(0) {}
  Symbol(std::string_view name) : id_(Interner::Global().Intern(name)) {}
  Symbol(const std::string& name) : Symbol(std::string_view(name)) {}
  Symbol(const char* name) : Symbol(std::string_view(name)) {}

  uint32_t id() const { return id_; }
  const std::string& name() const { return Interner::Global().NameOf(id_); }
  bool empty() const { return id_ == 0; }

  bool operator==(Symbol other) const { return id_ == other.id_; }
  bool operator!=(Symbol other) const { return id_ != other.id_; }
  /// \brief Name order (deterministic across runs, unlike id order).
  bool operator<(Symbol other) const {
    return id_ != other.id_ && name() < other.name();
  }

 private:
  uint32_t id_;
};

inline std::ostream& operator<<(std::ostream& os, Symbol s) {
  return os << s.name();
}

inline std::string operator+(const std::string& lhs, Symbol rhs) {
  return lhs + rhs.name();
}
inline std::string operator+(Symbol lhs, const std::string& rhs) {
  return lhs.name() + rhs;
}

/// \brief gtest value printer (keeps EXPECT_EQ failure output readable).
inline void PrintTo(Symbol s, std::ostream* os) {
  *os << '"' << s.name() << '"';
}

}  // namespace mmv

namespace std {
template <>
struct hash<mmv::Symbol> {
  size_t operator()(mmv::Symbol s) const noexcept { return s.id(); }
};
}  // namespace std

#endif  // MMV_COMMON_INTERNER_H_
