// Value: the universal data object flowing between domains, the relational
// engine and the constraint layer (the paper's Sigma, the set of data-objects
// a domain manipulates, Section 2.1).

#ifndef MMV_COMMON_VALUE_H_
#define MMV_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace mmv {

class Value;

/// \brief A composite value: an ordered record of fields, used for tuples
/// returned by relational domain calls (e.g. `A.streetnum` field access).
using ValueList = std::vector<Value>;

/// \brief Runtime type tag of a Value.
enum class ValueKind : uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kList,
};

/// \brief Name of a ValueKind (e.g. "int").
const char* ValueKindName(ValueKind k);

/// \brief Dynamically typed value: null, bool, int64, double, string, or an
/// ordered list of values (record / tuple).
///
/// Ordering and equality are total across kinds (kind tag first, then
/// payload) so values can be used as map/set keys. Numeric comparisons
/// between kInt and kDouble compare numerically.
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  Value(bool b) : rep_(b) {}                      // NOLINT(runtime/explicit)
  Value(int64_t i) : rep_(i) {}                   // NOLINT(runtime/explicit)
  Value(int i) : rep_(static_cast<int64_t>(i)) {} // NOLINT(runtime/explicit)
  Value(double d) : rep_(d) {}                    // NOLINT(runtime/explicit)
  Value(std::string s) : rep_(std::move(s)) {}    // NOLINT(runtime/explicit)
  Value(const char* s) : rep_(std::string(s)) {}  // NOLINT(runtime/explicit)
  Value(ValueList l) : rep_(std::move(l)) {}      // NOLINT(runtime/explicit)

  /// \brief The runtime kind tag.
  ValueKind kind() const {
    return static_cast<ValueKind>(rep_.index());
  }

  bool is_null() const { return kind() == ValueKind::kNull; }
  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_int() const { return kind() == ValueKind::kInt; }
  bool is_double() const { return kind() == ValueKind::kDouble; }
  bool is_string() const { return kind() == ValueKind::kString; }
  bool is_list() const { return kind() == ValueKind::kList; }

  /// \brief True for kInt or kDouble.
  bool is_numeric() const { return is_int() || is_double(); }

  bool as_bool() const { return std::get<bool>(rep_); }
  int64_t as_int() const { return std::get<int64_t>(rep_); }
  double as_double() const { return std::get<double>(rep_); }
  const std::string& as_string() const { return std::get<std::string>(rep_); }
  const ValueList& as_list() const { return std::get<ValueList>(rep_); }
  ValueList& as_list() { return std::get<ValueList>(rep_); }

  /// \brief Numeric payload widened to double; requires is_numeric().
  double numeric() const {
    return is_int() ? static_cast<double>(as_int()) : as_double();
  }

  /// \brief Structural equality (numeric kinds compare numerically).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// \brief Total order: kind tag first (with kInt/kDouble merged into a
  /// numeric class), then payload.
  bool operator<(const Value& other) const;

  /// \brief Stable hash consistent with operator== (numeric kinds hash by
  /// double value).
  size_t Hash() const;

  /// \brief Render for debugging / printing ("foo", 42, 3.5, [1, "a"]).
  std::string ToString() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string, ValueList>
      rep_;
};

/// \brief Hash functor for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace mmv

#endif  // MMV_COMMON_VALUE_H_
