// Small string helpers shared across modules.

#ifndef MMV_COMMON_STRINGS_H_
#define MMV_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace mmv {

/// \brief Joins \p parts with \p sep.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Splits \p s on character \p sep (no trimming; empty pieces kept).
std::vector<std::string> Split(std::string_view s, char sep);

/// \brief Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// \brief True iff \p s starts with \p prefix.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace mmv

#endif  // MMV_COMMON_STRINGS_H_
