// Result<T>: value-or-Status, the return type of fallible producers.

#ifndef MMV_COMMON_RESULT_H_
#define MMV_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace mmv {

/// \brief Holds either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Use MMV_ASSIGN_OR_RETURN to unwrap inside
/// Status-returning functions.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. \p status must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  /// \brief True iff a value is held.
  bool ok() const { return value_.has_value(); }

  /// \brief The status: OK when a value is held.
  const Status& status() const { return status_; }

  /// \brief Access the held value; undefined if !ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// \brief Returns the value or \p alternative when in error state.
  T ValueOr(T alternative) const {
    return ok() ? *value_ : std::move(alternative);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ set
};

/// Unwraps a Result into `lhs`, returning the error status on failure.
#define MMV_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).ValueOrDie();

#define MMV_ASSIGN_OR_RETURN(lhs, expr) \
  MMV_ASSIGN_OR_RETURN_IMPL(            \
      MMV_CONCAT_(_mmv_result_, __LINE__), lhs, expr)

#define MMV_CONCAT_INNER_(a, b) a##b
#define MMV_CONCAT_(a, b) MMV_CONCAT_INNER_(a, b)

}  // namespace mmv

#endif  // MMV_COMMON_RESULT_H_
