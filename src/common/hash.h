// Hash combination helpers.

#ifndef MMV_COMMON_HASH_H_
#define MMV_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace mmv {

/// \brief Mixes \p v into seed \p h (boost::hash_combine recipe).
inline size_t HashCombine(size_t h, size_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

/// \brief Convenience: hash a string into a seed.
inline size_t HashCombineString(size_t h, const std::string& s) {
  return HashCombine(h, std::hash<std::string>{}(s));
}

}  // namespace mmv

#endif  // MMV_COMMON_HASH_H_
