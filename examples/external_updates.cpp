// Section 4 head-to-head: T_P recompute-on-change vs W_P zero-maintenance.
//
// A mediated view over a mutating relational source is maintained under
// both policies through a series of external updates; both answer every
// query identically (Corollary 1), but only T_P pays for maintenance.

#include <iostream>

#include "domain/registry.h"
#include "maintenance/external.h"
#include "parser/parser.h"
#include "query/query.h"

using namespace mmv;

int main() {
  rel::Catalog catalog;
  dom::DomainManager domains(&catalog.clock());
  if (!dom::RegisterStandardDomains(&domains, &catalog).ok()) return 1;

  (void)catalog.CreateTable(rel::Schema{"orders", {"id", "region", "total"}});
  for (int i = 0; i < 20; ++i) {
    (void)catalog.Insert("orders",
                         {Value(i), Value(i % 2 ? "east" : "west"),
                          Value(100 + 10 * i)});
  }

  Program program = *parser::ParseProgram(R"(
    east_order(I) <-
      in(R, rel:select_eq("orders", "region", "east")) &
      in(I, tuple:get(R, 0)).
    big_east(I) <-
      east_order(I) &
      in(R, rel:select_eq("orders", "region", "east")) &
      in(I, tuple:get(R, 0)) &
      in(T, tuple:get(R, 2)) & T >= 200.
  )");

  auto tp = *maint::MaintainedView::Create(
      &program, &domains, maint::MaintenancePolicy::kTpRecompute);
  auto wp = *maint::MaintainedView::Create(
      &program, &domains, maint::MaintenancePolicy::kWpSyntactic);

  auto count = [&](const maint::MaintainedView& mv, const char* pred) {
    auto r = query::QueryPred(mv.view(), pred, {Term::Var(0)}, &domains);
    return r.ok() ? r->instances.size() : size_t{0};
  };

  std::cout << "round | big_east(T_P) | big_east(W_P) | T_P derivs | W_P "
               "derivs\n";
  std::cout << "    0 | " << count(tp, "big_east") << "            | "
            << count(wp, "big_east") << "            | "
            << tp.maintenance_derivations() << "          | "
            << wp.maintenance_derivations() << "\n";

  for (int round = 1; round <= 5; ++round) {
    // External world moves: new orders arrive, an old one is cancelled.
    catalog.clock().Advance();
    (void)catalog.Insert("orders", {Value(100 + round), Value("east"),
                                    Value(150 + 100 * round)});
    (void)catalog.Delete("orders",
                         {Value(2 * round - 1), Value("east"),
                          Value(100 + 10 * (2 * round - 1))});

    (void)tp.OnExternalChange();  // full rematerialization
    (void)wp.OnExternalChange();  // provably a no-op (Theorem 4)

    std::cout << "    " << round << " | " << count(tp, "big_east")
              << "            | " << count(wp, "big_east")
              << "            | " << tp.maintenance_derivations()
              << "         | " << wp.maintenance_derivations() << "\n";
  }

  std::cout << "\nT_P rematerialized " << tp.recompute_count()
            << " times; the W_P view never changed — its DCA-atoms are "
               "re-evaluated at query time against the current tables.\n";
  return 0;
}
