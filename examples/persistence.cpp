// Durable persistence workflow: materialize a mediated view over the text
// domain, open a DurableLog (burst WAL + checkpoints) over it, apply
// update bursts through maint::ApplyBatch with log-ahead-of-apply, crash
// the process mid-workload with the fault-injection filesystem, and then
// Recover() — the recovered view, external counter and snapshot epoch are
// exactly what the committed bursts produced.
//
// The example runs on MemFs + FaultFs so the "crash" is real (the write
// stream stops mid-operation) yet hermetic. A production embedding uses
// durability::PosixFs with a real directory instead — same API.

#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "domain/registry.h"
#include "durability/durable_log.h"
#include "durability/fs.h"
#include "maintenance/batch.h"
#include "parser/parser.h"
#include "query/enumerate.h"

using namespace mmv;

namespace {

void Show(const char* label, const View& view, DcaEvaluator* eval) {
  query::InstanceSet set = *query::EnumerateView(view, eval);
  std::cout << label << ":";
  for (const query::Instance& i : set.instances) {
    std::cout << " " << i.ToString();
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  rel::Catalog catalog;
  dom::DomainManager domains(&catalog.clock());
  auto handles = dom::RegisterStandardDomains(&domains, &catalog);
  if (!handles.ok()) {
    std::cerr << handles.status() << "\n";
    return 1;
  }

  // A small document store, queried through the text domain.
  (void)handles->text->AddDocument("memo1", "the suspect was seen downtown");
  (void)handles->text->AddDocument("memo2", "routine patrol report");
  (void)handles->text->AddDocument("memo3", "suspect entered the building");

  Program program = *parser::ParseProgram(R"(
    mentions_suspect(D) <- in(D, text:match("suspect")).
    flagged(D) <- mentions_suspect(D).
  )");

  Result<View> v = Materialize(program, &domains);
  if (!v.ok()) {
    std::cerr << v.status() << "\n";
    return 1;
  }
  View view = std::move(*v);
  Show("initial view", view, &domains);

  // The durable session: every applied burst is WAL-logged before the
  // first maintenance pass, checkpointed every 2 bursts.
  durability::MemFs disk;
  durability::FaultPlan plan;
  plan.crash_after_writes = 4;   // the machine dies mid-workload...
  plan.tear_crashing_write = true;
  plan.tear_keep_bytes = 5;      // ...tearing the WAL append it was in
  durability::FaultFs faulty(&disk, plan);

  durability::DurabilityOptions opts;
  opts.checkpoint_every_records = 2;
  SnapshotStore snapshots;
  snapshots.Publish(view);  // epoch 1
  auto log = durability::DurableLog::Create(&faulty, "state", program, view,
                                            snapshots.epoch(),
                                            /*ext_counter=*/0, opts);
  if (!log.ok()) {
    std::cerr << log.status() << "\n";
    return 1;
  }

  auto atom = [&](const char* text) {
    auto a = *parser::ParseConstrainedAtom(text, &program);
    return maint::UpdateAtom{a.pred, a.args, a.constraint};
  };
  const std::vector<std::vector<maint::Update>> bursts = {
      {maint::Update::Insert(atom("flagged(D) <- D = \"memo2\".")),
       maint::Update::Delete(atom("flagged(D) <- D = \"memo1\"."))},
      {maint::Update::Delete(atom("mentions_suspect(D) <- D = \"memo3\"."))},
      {maint::Update::Insert(atom("flagged(D) <- D = \"memo1\"."))},
  };

  size_t committed = 0;
  for (const std::vector<maint::Update>& burst : bursts) {
    maint::BatchStats stats;
    Status s = maint::ApplyBatch(program, &view, burst, &domains, {}, &stats,
                                 (*log)->ext_counter(), &snapshots,
                                 log->get());
    if (!s.ok()) {
      std::cout << "\n*** crash during burst " << (committed + 1) << ": "
                << s.message() << "\n";
      break;
    }
    ++committed;
    std::cout << "burst " << committed << " committed (epoch "
              << snapshots.epoch() << ", " << stats.wal_bytes
              << " WAL bytes, " << stats.checkpoints_written
              << " checkpoint)\n";
  }
  Show("live view at the crash", view, &domains);

  // "Restart": recover from the surviving disk image. Replay runs the
  // committed WAL tail through the real ApplyBatch pipeline on top of the
  // newest valid checkpoint.
  SnapshotStore recovered_snapshots;
  durability::RecoveryInfo info;
  auto recovered = durability::DurableLog::Recover(
      &disk, "state", &program, &domains, {}, &recovered_snapshots, &info,
      opts);
  if (!recovered.ok()) {
    std::cerr << recovered.status() << "\n";
    return 1;
  }
  View after = (*recovered)->TakeRecoveredView();
  std::cout << "\nrecovered: checkpoint epoch " << info.checkpoint_epoch
            << ", replayed " << info.replayed_bursts
            << " burst(s), truncated " << info.torn_tail_bytes
            << " torn byte(s), epoch " << info.recovered_epoch << "\n";
  Show("recovered view", after, &domains);

  // The recovered state is exactly the committed prefix: same instances,
  // same snapshot epoch as the pre-crash store had published.
  auto committed_epoch = 1 + committed;
  if (recovered_snapshots.epoch() != committed_epoch) {
    std::cerr << "recovered epoch " << recovered_snapshots.epoch()
              << " != committed epoch " << committed_epoch << "\n";
    return 1;
  }
  std::set<std::string> live_instances, rec_instances;
  query::InstanceSet live = *query::EnumerateView(view, &domains);
  query::InstanceSet rec = *query::EnumerateView(after, &domains);
  for (const query::Instance& i : live.instances) {
    live_instances.insert(i.ToString());
  }
  for (const query::Instance& i : rec.instances) {
    rec_instances.insert(i.ToString());
  }
  if (live_instances != rec_instances) {
    std::cerr << "recovered view diverged from the pre-crash live view\n";
    return 1;
  }
  std::cout << "\nrecovered state matches the committed prefix; maintenance "
               "continues from epoch "
            << (*recovered)->epoch() << ".\n";

  // And the durable session keeps going: the burst the crash interrupted
  // is simply re-applied on the recovered timeline.
  Status s = maint::ApplyBatch(program, &after, bursts[committed], &domains,
                               {}, nullptr, (*recovered)->ext_counter(),
                               &recovered_snapshots, recovered->get());
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  Show("after re-applying the interrupted burst", after, &domains);
  return 0;
}
