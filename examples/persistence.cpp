// Persistence workflow: materialize a mediated view over the text domain,
// maintain it through a batch of updates, serialize it to disk, and load
// it back into a fresh session where maintenance continues seamlessly
// (supports and all).

#include <fstream>
#include <iostream>

#include "domain/registry.h"
#include "maintenance/batch.h"
#include "parser/parser.h"
#include "parser/view_io.h"
#include "query/enumerate.h"

using namespace mmv;

namespace {

void Show(const char* label, const View& view, DcaEvaluator* eval) {
  query::InstanceSet set = *query::EnumerateView(view, eval);
  std::cout << label << ":";
  for (const query::Instance& i : set.instances) {
    std::cout << " " << i.ToString();
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  rel::Catalog catalog;
  dom::DomainManager domains(&catalog.clock());
  auto handles = dom::RegisterStandardDomains(&domains, &catalog);
  if (!handles.ok()) {
    std::cerr << handles.status() << "\n";
    return 1;
  }

  // A small document store, queried through the text domain.
  (void)handles->text->AddDocument("memo1", "the suspect was seen downtown");
  (void)handles->text->AddDocument("memo2", "routine patrol report");
  (void)handles->text->AddDocument("memo3", "suspect entered the building");

  Program program = *parser::ParseProgram(R"(
    mentions_suspect(D) <- in(D, text:match("suspect")).
    flagged(D) <- mentions_suspect(D).
  )");

  Result<View> v = Materialize(program, &domains);
  if (!v.ok()) {
    std::cerr << v.status() << "\n";
    return 1;
  }
  View view = std::move(*v);
  Show("initial view", view, &domains);

  // A batch: analyst flags memo2 manually, retracts memo1's flag.
  auto atom = [&](const char* text) {
    auto a = *parser::ParseConstrainedAtom(text, &program);
    return maint::UpdateAtom{a.pred, a.args, a.constraint};
  };
  maint::BatchStats stats;
  Status s = maint::ApplyBatch(
      program, &view,
      {maint::Update::Insert(atom("flagged(D) <- D = \"memo2\".")),
       maint::Update::Delete(atom("flagged(D) <- D = \"memo1\"."))},
      &domains, {}, &stats);
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "applied batch: " << stats.insertions_applied
            << " insertions, " << stats.deletions_applied << " deletions\n";
  Show("after batch", view, &domains);

  // Persist.
  std::string text = parser::SerializeView(view);
  {
    std::ofstream out("/tmp/mmv_view.txt");
    out << text;
  }
  std::cout << "\nserialized " << view.size() << " atoms to /tmp/mmv_view.txt"
            << " (" << text.size() << " bytes)\n";

  // "Restart": load into a fresh view and keep maintaining it.
  Result<View> loaded = parser::DeserializeView(text, &program);
  if (!loaded.ok()) {
    std::cerr << loaded.status() << "\n";
    return 1;
  }
  Show("reloaded view", *loaded, &domains);

  s = maint::ApplyBatch(
      program, &*loaded,
      {maint::Update::Delete(atom("mentions_suspect(D) <- D = \"memo3\"."))},
      &domains);
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  Show("after post-reload deletion", *loaded, &domains);
  std::cout << "\nnote: supports survived the round trip, so StDel kept "
               "propagating deletions through the reloaded derivations.\n";
  return 0;
}
