// The paper's running example (Section 2.2): who is a suspect?
//
// Integrates five sources through one mediator:
//   - synthetic face recognition (segmentface / matchface / findname)
//   - a mugshot library (rel:scan)
//   - a phonebook in "PARADOX" (paradox:select_eq)
//   - a spatial package (locateaddress / range around "DC")
//   - an employee database in "DBASE" (dbase:select_eq)
//
// Then exercises both kinds of updates:
//   1. view update — exonerate a person by deleting a seenwith atom,
//   2. external update — new surveillance photographs arrive; the W_P view
//      needs no maintenance at all (Theorem 4).

#include <iostream>

#include "maintenance/external.h"
#include "maintenance/stdel.h"
#include "query/query.h"
#include "workload/law_enforcement.h"

using namespace mmv;

namespace {

std::set<std::string> QuerySeconds(const View& view, const std::string& pred,
                                   const std::string& target,
                                   dom::DomainManager* domains) {
  Result<query::InstanceSet> result = query::QueryPred(
      view, pred, {Term::Const(Value(target)), Term::Var(0)}, domains);
  std::set<std::string> names;
  if (!result.ok()) return names;
  for (const query::Instance& i : result->instances) {
    if (i.values[1].is_string()) names.insert(i.values[1].as_string());
  }
  return names;
}

void PrintSet(const char* label, const std::set<std::string>& s) {
  std::cout << label << ":";
  for (const std::string& n : s) std::cout << " " << n;
  std::cout << "\n";
}

}  // namespace

int main() {
  workload::LawEnforcementOptions options;
  options.num_people = 10;
  options.num_photos = 6;
  options.faces_per_photo = 3;
  options.seed = 2024;

  auto scenario_r = workload::MakeLawEnforcement(options);
  if (!scenario_r.ok()) {
    std::cerr << scenario_r.status() << "\n";
    return 1;
  }
  auto scenario = std::move(*scenario_r);
  std::cout << "Mediator:\n" << scenario->mediator.ToString() << "\n";

  // Materialize under W_P so external updates need no maintenance.
  auto mv_r = maint::MaintainedView::Create(
      &scenario->mediator, scenario->domains.get(),
      maint::MaintenancePolicy::kWpSyntactic);
  if (!mv_r.ok()) {
    std::cerr << mv_r.status() << "\n";
    return 1;
  }
  maint::MaintainedView mv = std::move(*mv_r);
  std::cout << "Materialized mediated view: " << mv.view().size()
            << " constrained atoms (non-ground!).\n\n";

  PrintSet("ground truth seenwith",
           std::set<std::string>(scenario->expected_seenwith.begin(),
                                 scenario->expected_seenwith.end()));
  PrintSet("query  seenwith(corleone, Y)",
           QuerySeconds(mv.view(), "seenwith", scenario->target,
                        scenario->domains.get()));
  PrintSet("query  swlndc(corleone, Y)  (lives near DC)",
           QuerySeconds(mv.view(), "swlndc", scenario->target,
                        scenario->domains.get()));
  PrintSet("query  suspect(corleone, Y) (works at ABC Corp)",
           QuerySeconds(mv.view(), "suspect", scenario->target,
                        scenario->domains.get()));
  PrintSet("ground truth suspects",
           std::set<std::string>(scenario->expected_suspects.begin(),
                                 scenario->expected_suspects.end()));

  // ---- Update of the second kind: new surveillance photos ---------------
  std::cout << "\n-- external update: a new photo shows corleone with "
               "person9 --\n";
  scenario->catalog->clock().Advance();
  (void)scenario->handles.facextract->AddSurveillanceFace("surveillance",
                                                          "new_photo", 0);
  (void)scenario->handles.facextract->AddSurveillanceFace("surveillance",
                                                          "new_photo", 9);
  (void)mv.OnExternalChange();
  std::cout << "maintenance work performed: "
            << mv.maintenance_derivations()
            << " derivations (W_P: none needed, Theorem 4)\n";
  PrintSet("query  seenwith(corleone, Y) now",
           QuerySeconds(mv.view(), "seenwith", scenario->target,
                        scenario->domains.get()));

  // ---- Update of the first kind: exonerate someone ----------------------
  std::set<std::string> seen = QuerySeconds(
      mv.view(), "seenwith", scenario->target, scenario->domains.get());
  if (!seen.empty()) {
    std::string victim = *seen.begin();
    std::cout << "\n-- view update: the photo of " << victim
              << " was a forgery; delete seenwith(corleone, " << victim
              << ") --\n";
    maint::UpdateAtom request;
    request.pred = "seenwith";
    VarId x = scenario->mediator.factory()->Fresh();
    VarId y = scenario->mediator.factory()->Fresh();
    request.args = {Term::Var(x), Term::Var(y)};
    request.constraint.Add(
        Primitive::Eq(Term::Var(x), Term::Const(Value(scenario->target))));
    request.constraint.Add(
        Primitive::Eq(Term::Var(y), Term::Const(Value(victim))));

    View view = mv.view();  // maintain a copy through StDel
    maint::StDelStats stats;
    Status s = maint::DeleteStDel(scenario->mediator, &view, request,
                                  scenario->domains.get(), {}, &stats);
    if (!s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
    std::cout << "StDel: " << stats.replacements
              << " replacements, no rederivation.\n";
    PrintSet("query  seenwith(corleone, Y) after exoneration",
             QuerySeconds(view, "seenwith", scenario->target,
                          scenario->domains.get()));
    PrintSet("query  suspect(corleone, Y) after exoneration",
             QuerySeconds(view, "suspect", scenario->target,
                          scenario->domains.get()));
    std::cout << "note: the surveillance *sources* were not touched — the "
                 "view definition absorbed the update.\n";
  }
  return 0;
}
