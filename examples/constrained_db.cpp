// Kanellakis-style constrained databases (paper Example 2): non-ground
// views where a handful of constrained atoms denote large instance sets,
// plus recursive views over constraints (paper Example 6).

#include <iostream>

#include "domain/registry.h"
#include "maintenance/stdel.h"
#include "parser/parser.h"
#include "query/enumerate.h"
#include "workload/generators.h"

using namespace mmv;

int main() {
  rel::Catalog catalog;
  dom::DomainManager domains(&catalog.clock());
  if (!dom::RegisterStandardDomains(&domains, &catalog).ok()) return 1;

  // ---- Part 1: interval constraints -------------------------------------
  // Three base atoms denote 3 * 1000 integers; the chain of rules keeps
  // the representation at one atom per (predicate, base-range) pair.
  Program intervals = *parser::ParseProgram(R"(
    sensor(X) <- in(X, arith:between(0, 999)).
    sensor(X) <- in(X, arith:between(2000, 2999)).
    sensor(X) <- in(X, arith:between(4000, 4999)).
    valid(X) <- sensor(X) & X != 500.
    alarm(X) <- valid(X) & X >= 2500.
  )");

  Result<View> view_r = Materialize(intervals, &domains);
  View view = std::move(*view_r);
  query::InstanceSet all = *query::EnumerateView(view, &domains);
  std::cout << "interval view: " << view.size() << " constrained atoms, "
            << all.instances.size() << " ground instances\n";
  std::cout << view.ToString(intervals.names()) << "\n";

  // Delete a whole subrange with one constrained-atom deletion.
  auto parsed =
      parser::ParseConstrainedAtom(
          "sensor(X) <- in(X, arith:between(2000, 2499)).", &intervals);
  maint::UpdateAtom del{parsed->pred, parsed->args, parsed->constraint};
  maint::StDelStats stats;
  if (!maint::DeleteStDel(intervals, &view, del, &domains, {}, &stats)
           .ok()) {
    return 1;
  }
  query::InstanceSet after = *query::EnumerateView(view, &domains);
  std::cout << "deleted sensor([2000,2499]) with " << stats.replacements
            << " constraint replacements: " << after.instances.size()
            << " instances remain (was " << all.instances.size() << ")\n\n";

  // ---- Part 2: recursive views (Example 6) ------------------------------
  Program tc = workload::MakeTransitiveClosure(workload::ChainEdges(6));
  Result<View> paths_r = Materialize(tc, &domains);
  View paths = std::move(*paths_r);
  std::cout << "transitive closure over the chain 0->1->...->5:\n";
  size_t path_count = 0;
  for (const ViewAtom& a : paths.atoms()) {
    if (a.pred == "path") path_count++;
  }
  std::cout << "  " << path_count
            << " path atoms, one per derivation (duplicate semantics), "
               "each indexed by its support.\n";
  // Show one deep support.
  for (const ViewAtom& a : paths.atoms()) {
    if (a.pred == "path" && a.support.Depth() >= 4) {
      std::cout << "  deepest derivation example: " << a.support.ToString()
                << "\n";
      break;
    }
  }

  auto cut = parser::ParseConstrainedAtom("e(X, Y) <- X = 2 & Y = 3.", &tc);
  maint::UpdateAtom cut_req{cut->pred, cut->args, cut->constraint};
  maint::StDelStats tc_stats;
  if (!maint::DeleteStDel(tc, &paths, cut_req, &domains, {}, &tc_stats)
           .ok()) {
    return 1;
  }
  query::InstanceSet remaining = *query::EnumerateView(paths, &domains);
  size_t path_instances = 0;
  for (const query::Instance& i : remaining.instances) {
    if (i.pred == "path") path_instances++;
  }
  std::cout << "cut edge (2,3): " << path_instances
            << " path instances remain (support-indexed deletion, "
            << tc_stats.pout_pairs << " P_OUT pairs, no rederivation)\n";
  return 0;
}
