// Quickstart: define a small constrained database, materialize its mediated
// view, and maintain it through a deletion and an insertion.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "domain/registry.h"
#include "maintenance/insert.h"
#include "maintenance/stdel.h"
#include "parser/parser.h"
#include "query/enumerate.h"

using namespace mmv;

namespace {

void PrintView(const char* title, const View& view, const Program& program,
               DcaEvaluator* eval) {
  std::cout << "== " << title << " ==\n";
  std::cout << view.ToString(&program.names());
  query::InstanceSet instances =
      *query::EnumerateView(view, eval);
  std::cout << "instances:";
  for (const query::Instance& i : instances.instances) {
    std::cout << " " << i.ToString();
  }
  std::cout << "\n\n";
}

}  // namespace

int main() {
  // The external world: a catalog of tables and the standard domains.
  rel::Catalog catalog;
  dom::DomainManager domains(&catalog.clock());
  auto handles = dom::RegisterStandardDomains(&domains, &catalog);
  if (!handles.ok()) {
    std::cerr << handles.status() << "\n";
    return 1;
  }

  // A constrained database (the paper's Example 4, integer-bounded):
  //   1. A(X) <- 0 <= X <= 3
  //   2. A(X) <- B(X)
  //   3. B(X) <- 0 <= X <= 5
  //   4. C(X) <- A(X)
  Result<Program> parsed = parser::ParseProgram(R"(
    a(X) <- in(X, arith:between(0, 3)).
    a(X) <- b(X).
    b(X) <- in(X, arith:between(0, 5)).
    c(X) <- a(X).
  )");
  if (!parsed.ok()) {
    std::cerr << parsed.status() << "\n";
    return 1;
  }
  Program program = std::move(*parsed);
  std::cout << "Program:\n" << program.ToString() << "\n";

  // Materialize the mediated view: T_P fixpoint over constrained atoms.
  Result<View> materialized = Materialize(program, &domains);
  if (!materialized.ok()) {
    std::cerr << materialized.status() << "\n";
    return 1;
  }
  View view = std::move(*materialized);
  PrintView("materialized view (non-ground atoms + supports)", view,
            program, &domains);

  // Update of the first kind, deletion: remove B(5) with the paper's
  // Straight Delete algorithm — no rederivation.
  auto request = parser::ParseConstrainedAtom("b(X) <- X = 5.", &program);
  maint::UpdateAtom del{request->pred, request->args, request->constraint};
  maint::StDelStats stats;
  Status s = maint::DeleteStDel(program, &view, del, &domains, {}, &stats);
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "Deleted b(5): " << stats.replacements
            << " constraint replacements, " << stats.removed_unsolvable
            << " atoms dropped, 0 rederivations.\n\n";
  PrintView("after StDel of b(5)", view, program, &domains);

  // Update of the first kind, insertion: add A(9); consequences (C(9))
  // follow by unfolding.
  auto ins_parsed = parser::ParseConstrainedAtom("a(X) <- X = 9.", &program);
  maint::UpdateAtom ins{ins_parsed->pred, ins_parsed->args,
                        ins_parsed->constraint};
  int ext_support = 0;
  maint::InsertStats istats;
  s = maint::InsertAtom(program, &view, ins, &domains, {}, &istats,
                        &ext_support);
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "Inserted a(9): " << istats.atoms_added
            << " atoms added (request + consequences).\n\n";
  PrintView("after insertion of a(9)", view, program, &domains);
  return 0;
}
