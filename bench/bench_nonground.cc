// E7 — the payoff of non-ground views: a handful of interval-constrained
// atoms denote thousands of ground instances, and constrained deletion
// touches |M| atoms instead of [M] instances.
//
// Compares StDel on the constrained representation against ground DRed on
// the fully expanded ground twin of the same workload. Expected shape: the
// constrained side is insensitive to the interval span, while the ground
// side scales linearly with it.

#include "bench_util.h"

#include "datalog/dred_ground.h"

namespace mmv {
namespace bench {
namespace {

// Ground twin of MakeIntervalChain: every integer its own fact.
datalog::GProgram GroundIntervalChain(int depth, int width, int span) {
  datalog::GProgram p;
  for (int i = 0; i < width; ++i) {
    int64_t lo = static_cast<int64_t>(i) * span * 2;
    for (int64_t v = lo; v < lo + span; ++v) {
      p.AddFact(datalog::GroundFact{"b0", {Value(v)}});
    }
  }
  for (int k = 0; k < depth; ++k) {
    datalog::GRule r;
    r.head = {"b" + std::to_string(k + 1), {datalog::GTerm::Var(0)}};
    r.body = {{"b" + std::to_string(k), {datalog::GTerm::Var(0)}}};
    // NOTE: the X != k guard of the constrained version is dropped here;
    // it only thins the ground view further, which would *help* the ground
    // baseline. The comparison stays conservative.
    p.AddRule(std::move(r));
  }
  return p;
}

void BM_NonGround_StDel(benchmark::State& state) {
  World w = World::Make();
  int depth = static_cast<int>(state.range(0));
  int span = static_cast<int>(state.range(1));
  Program p = workload::MakeIntervalChain(depth, /*width=*/4, span);
  View base = MustMaterialize(p, w.domains.get());
  // Delete the second base range entirely.
  maint::UpdateAtom req = workload::DeleteFactRequest(p, 1);

  for (auto _ : state) {
    state.PauseTiming();
    View v = base;
    state.ResumeTiming();
    Status s = maint::DeleteStDel(p, &v, req, w.domains.get());
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.counters["atoms"] = static_cast<double>(base.size());
  state.counters["instances_per_atom"] = static_cast<double>(span);
}

void BM_NonGround_GroundDRed(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  int span = static_cast<int>(state.range(1));
  datalog::GProgram p = GroundIntervalChain(depth, 4, span);
  datalog::Database base = datalog::Evaluate(p);
  // Delete the second range: span individual facts.
  std::vector<datalog::GroundFact> victims;
  for (int64_t v = 2 * span; v < 3 * span; ++v) {
    victims.push_back(datalog::GroundFact{"b0", {Value(v)}});
  }

  for (auto _ : state) {
    state.PauseTiming();
    datalog::Database db = base;
    state.ResumeTiming();
    datalog::DeleteFactsDRed(p, &db, victims);
  }
  state.counters["tuples"] = static_cast<double>(base.size());
}

void BM_NonGround_MaterializeConstrained(benchmark::State& state) {
  World w = World::Make();
  Program p = workload::MakeIntervalChain(static_cast<int>(state.range(0)),
                                          4,
                                          static_cast<int>(state.range(1)));
  View last;
  for (auto _ : state) {
    last = MustMaterialize(p, w.domains.get());
  }
  state.counters["atoms"] = static_cast<double>(last.size());
}

void BM_NonGround_MaterializeGround(benchmark::State& state) {
  datalog::GProgram p = GroundIntervalChain(
      static_cast<int>(state.range(0)), 4, static_cast<int>(state.range(1)));
  datalog::Database last;
  for (auto _ : state) {
    last = datalog::Evaluate(p);
  }
  state.counters["tuples"] = static_cast<double>(last.size());
}

void SpanSweep(benchmark::internal::Benchmark* b) {
  // {depth, span}: span multiplies the ground size but not the atom count.
  b->Args({4, 10})
      ->Args({4, 100})
      ->Args({4, 1000})
      ->Args({8, 100})
      ->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_NonGround_StDel)->Apply(SpanSweep);
BENCHMARK(BM_NonGround_GroundDRed)->Apply(SpanSweep);
BENCHMARK(BM_NonGround_MaterializeConstrained)->Apply(SpanSweep);
BENCHMARK(BM_NonGround_MaterializeGround)->Apply(SpanSweep);

}  // namespace
}  // namespace bench
}  // namespace mmv
