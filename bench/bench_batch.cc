// E9 — batched maintenance: a K-update burst through the coalescing
// pipeline (ApplyBatch: one multi-atom StDel pass + one seminaive
// insertion pass per run) against the paper's one-update-at-a-time regime
// (ApplyUpdatesSequential). The headline number: on the deletion-heavy
// workload a K=64 burst must cost at most half the sequential wall time —
// sequential pays K markings, K constraint snapshots and K prunes where the
// pipeline pays one of each.
//
// Bursts are written and re-read through the burst-workload text format
// (parser::SerializeBurst / ParseBurst), the same artifact the tests replay.

#include "bench_util.h"

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "core/snapshot.h"
#include "maintenance/batch.h"
#include "parser/view_io.h"

namespace mmv {
namespace bench {
namespace {

std::vector<maint::Update> ParseBurstOrAbort(const std::string& text,
                                             Program* p) {
  Result<std::vector<parser::ParsedUpdate>> parsed =
      parser::ParseBurst(text, p);
  if (!parsed.ok()) std::abort();
  std::vector<maint::Update> burst;
  burst.reserve(parsed->size());
  for (parser::ParsedUpdate& u : *parsed) {
    maint::UpdateAtom atom{std::move(u.atom.pred), std::move(u.atom.args),
                           std::move(u.atom.constraint)};
    burst.push_back(u.is_delete ? maint::Update::Delete(std::move(atom))
                                : maint::Update::Insert(std::move(atom)));
  }
  return burst;
}

// Deletion-heavy: delete K distinct facts of the first chain of a
// multi-chain view in one burst. The untouched sibling chains model the
// rest of a production view: every sequential pass still pays marking,
// constraint-snapshotting and pruning over ALL of it, which is exactly the
// per-pass overhead the pipeline amortizes.
std::string DeletionBurstText(int k) {
  std::ostringstream os;
  for (int i = 0; i < k; ++i) {
    os << "del c0_p0(X) <- X = " << i << ".\n";
  }
  return os.str();
}

// Mixed: K/2 deletions of existing facts, then K/2 inserts of fresh facts.
std::string MixedBurstText(int k, int width) {
  std::ostringstream os;
  for (int i = 0; i < k / 2; ++i) {
    os << "del p0(X) <- X = " << i << ".\n";
  }
  for (int i = 0; i < k - k / 2; ++i) {
    os << "ins p0(X) <- X = " << width + i << ".\n";
  }
  return os.str();
}

// Fully-cancelling: K/2 insert+retract pairs of absent facts. The planner
// reduces each pair to a single delete, which then provably matches
// nothing. (Delete+re-insert pairs of PRESENT chain facts must execute —
// re-inserting a rule body predicate re-derives its descendants.)
std::string CancellingBurstText(int k, int width) {
  std::ostringstream os;
  for (int i = 0; i < k / 2; ++i) {
    os << "ins p0(X) <- X = " << width + i << ".\n";
    os << "del p0(X) <- X = " << width + i << ".\n";
  }
  return os.str();
}

void RunBurst(benchmark::State& state, const std::string& burst_text,
              Program p, bool pipelined,
              const FixpointOptions* options = nullptr) {
  World w = World::Make();
  FixpointOptions opts = options ? *options : DefaultOptions();
  View base = MustMaterialize(p, w.domains.get(), opts);
  std::vector<maint::Update> burst = ParseBurstOrAbort(burst_text, &p);

  maint::BatchStats stats;
  for (auto _ : state) {
    state.PauseTiming();
    View v = base;
    state.ResumeTiming();
    Status s = pipelined
                   ? maint::ApplyBatch(p, &v, burst, w.domains.get(), opts,
                                       &stats)
                   : maint::ApplyUpdatesSequential(p, &v, burst,
                                                   w.domains.get(), opts,
                                                   &stats);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(v.size());
  }
  state.counters["updates"] = static_cast<double>(burst.size());
  state.counters["coalesced"] = static_cast<double>(stats.coalesced_away);
  state.counters["delete_passes"] = static_cast<double>(stats.delete_passes);
  state.counters["insert_passes"] = static_cast<double>(stats.insert_passes);
  state.counters["replacements"] = static_cast<double>(stats.replacements);
  state.counters["step3"] = static_cast<double>(stats.step3_replacements);
  state.counters["added"] = static_cast<double>(stats.insertion_pass_atoms);
  state.counters["plan_reorders"] = static_cast<double>(stats.plan_reorders);
  state.counters["probe_intersections"] =
      static_cast<double>(stats.probe_intersections);
  state.counters["plan_cache_hits"] =
      static_cast<double>(stats.plan_cache_hits);
  // The thread-safe-domain invariant: CI requires this zero everywhere.
  state.counters["mutex_evaluator_engaged"] =
      static_cast<double>(stats.mutex_evaluator_engaged);
}

// {depth, K}: 8 chains of K facts each; the burst clears chain 0.
void BM_DeletionBurst_Batch(benchmark::State& state) {
  int k = static_cast<int>(state.range(1));
  RunBurst(state, DeletionBurstText(k),
           workload::MakeMultiChain(8, static_cast<int>(state.range(0)), k),
           /*pipelined=*/true);
}
void BM_DeletionBurst_Sequential(benchmark::State& state) {
  int k = static_cast<int>(state.range(1));
  RunBurst(state, DeletionBurstText(k),
           workload::MakeMultiChain(8, static_cast<int>(state.range(0)), k),
           /*pipelined=*/false);
}

void BM_MixedBurst_Batch(benchmark::State& state) {
  int k = static_cast<int>(state.range(1));
  int width = k + 32;
  RunBurst(state, MixedBurstText(k, width),
           workload::MakeChain(static_cast<int>(state.range(0)), width),
           /*pipelined=*/true);
}
void BM_MixedBurst_Sequential(benchmark::State& state) {
  int k = static_cast<int>(state.range(1));
  int width = k + 32;
  RunBurst(state, MixedBurstText(k, width),
           workload::MakeChain(static_cast<int>(state.range(0)), width),
           /*pipelined=*/false);
}

// Bulk load: a K-insert burst into an EMPTY guarded multi-chain view (8
// chains, round-robin requests, every level re-joining its chain's base
// relation), through the full batch pipeline. With no existing facts the
// BuildAdd diffing is near-free and the one seminaive insertion
// continuation — the join — dominates, so this is the bench_batch case the
// join-mode comparison is scored on. {depth, K, mode}.
std::string BulkLoadBurstText(int k) {
  std::ostringstream os;
  for (int i = 0; i < k; ++i) {
    os << "ins c" << (i % 8) << "_p0(X) <- X = " << (i / 8) << ".\n";
  }
  return os.str();
}

void BM_BulkLoadBurst_Batch(benchmark::State& state) {
  int k = static_cast<int>(state.range(1));
  FixpointOptions opts = DefaultOptions();
  opts.join_mode = ModeArg(state.range(2));
  RunBurst(state, BulkLoadBurstText(k),
           workload::MakeGuardedMultiChain(
               8, static_cast<int>(state.range(0)), /*width=*/0),
           /*pipelined=*/true, &opts);
}

// The bulk load thread-paired (the parallel-strata engine under the full
// batch pipeline): trailing arg 0 = 1 thread, 1 = every hardware thread;
// join mode pinned to kIndexed (parallel execution requires the planned
// executor). The .../0 vs .../1 twins must report identical work-product
// counters — CI diffs them. {depth, K, threads flag}.
void BM_BulkLoadBurst_BatchThreads(benchmark::State& state) {
  int k = static_cast<int>(state.range(1));
  FixpointOptions opts = DefaultOptions();
  opts.join_mode = JoinMode::kIndexed;
  opts.num_threads = ThreadsArg(state.range(2));
  state.counters["threads"] = static_cast<double>(opts.num_threads);
  RunBurst(state, BulkLoadBurstText(k),
           workload::MakeGuardedMultiChain(
               8, static_cast<int>(state.range(0)), /*width=*/0),
           /*pipelined=*/true, &opts);
}

// Snapshot serving (core/snapshot.h): a reader thread continuously pins
// the latest epoch and enumerates it WHILE a K-update deletion burst
// applies through ApplyBatch against a SnapshotStore. Manual time measures
// the batch alone (the writer's cost with a concurrent reader attached);
// `reader_qps` reports how many full-view snapshot reads the reader
// completed per second of batch time. The reader is a plain std::thread so
// the engine's ThreadPool stays free for the writer's parallel fan-out.
// Work-product counters stay deterministic (the sidecar diff compares
// them); snapshot_reads/reader_qps are timing-dependent by nature and are
// excluded from COMPARED. {depth, K}.
void BM_SnapshotReadDuringBatch(benchmark::State& state) {
  int k = static_cast<int>(state.range(1));
  Program p =
      workload::MakeMultiChain(8, static_cast<int>(state.range(0)), k);
  World w = World::Make();
  FixpointOptions opts = DefaultOptions();
  View base = MustMaterialize(p, w.domains.get(), opts);
  std::vector<maint::Update> burst = ParseBurstOrAbort(DeletionBurstText(k),
                                                       &p);

  maint::BatchStats stats;
  int64_t reads = 0;
  double batch_seconds = 0.0;
  for (auto _ : state) {
    View v = base;
    SnapshotStore store;
    store.Publish(v);  // epoch 1 = the pre-burst view
    std::atomic<bool> stop{false};
    int64_t local_reads = 0;
    std::thread reader([&] {
      while (!stop.load(std::memory_order_acquire)) {
        SnapshotHandle h = store.Pin();
        Result<query::InstanceSet> r =
            query::EnumerateView(h, w.domains.get());
        if (!r.ok()) std::abort();
        benchmark::DoNotOptimize(r->instances.size());
        ++local_reads;
      }
    });
    auto start = std::chrono::steady_clock::now();
    Status s = maint::ApplyBatch(p, &v, burst, w.domains.get(), opts, &stats,
                                 nullptr, &store);
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    stop.store(true, std::memory_order_release);
    reader.join();
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    state.SetIterationTime(elapsed.count());
    reads += local_reads;
    batch_seconds += elapsed.count();
    benchmark::DoNotOptimize(v.size());
  }
  state.counters["updates"] = static_cast<double>(burst.size());
  state.counters["coalesced"] = static_cast<double>(stats.coalesced_away);
  state.counters["delete_passes"] = static_cast<double>(stats.delete_passes);
  state.counters["insert_passes"] = static_cast<double>(stats.insert_passes);
  state.counters["replacements"] = static_cast<double>(stats.replacements);
  state.counters["step3"] = static_cast<double>(stats.step3_replacements);
  state.counters["epochs_published"] =
      static_cast<double>(stats.epochs_published);
  state.counters["snapshot_nodes_shared"] =
      static_cast<double>(stats.snapshot_nodes_shared);
  state.counters["snapshot_nodes_copied"] =
      static_cast<double>(stats.snapshot_nodes_copied);
  state.counters["mutex_evaluator_engaged"] =
      static_cast<double>(stats.mutex_evaluator_engaged);
  state.counters["snapshot_reads"] = static_cast<double>(reads);
  state.counters["reader_qps"] =
      batch_seconds > 0 ? static_cast<double>(reads) / batch_seconds : 0.0;
}

// Snapshot PUBLICATION cost, copy-on-write vs the whole-view deep copy it
// replaced: a K-update burst dirties chain 0 of an 8-chain view in
// PauseTiming (alternating delete/re-insert keeps the view bounded), then
// the timed region is JUST the publication step. Mode 1 extracts the
// immutable image — the 28 untouched per-pred segments are re-pointed at
// the previous epoch, only chain 0's 4 are copied — and publishes it;
// mode 0 pays what SnapshotStore::Publish cost before images existed, a
// full View copy. The cow flag is the FIRST arg on purpose (the sidecar
// comparator pairs names ending in /0 vs /1 as same-work twins, and the
// two modes' sharing counters legitimately differ). The priming full
// extraction happens in setup, so snapshot_nodes_shared/copied report the
// steady state of the LAST iteration — deterministic whatever iteration
// count the harness picks. {cow, width, K}.
void BM_SnapshotPublish(benchmark::State& state) {
  const bool cow = state.range(0) != 0;
  const int width = static_cast<int>(state.range(1));
  const int k = static_cast<int>(state.range(2));
  Program p = workload::MakeMultiChain(8, 4, width);
  World w = World::Make();
  FixpointOptions opts = DefaultOptions();
  View live = MustMaterialize(p, w.domains.get(), opts);
  const double base_atoms = static_cast<double>(live.size());

  std::ostringstream ins;
  for (int i = 0; i < k; ++i) ins << "ins c0_p0(X) <- X = " << i << ".\n";
  std::vector<maint::Update> del_burst =
      ParseBurstOrAbort(DeletionBurstText(k), &p);
  std::vector<maint::Update> ins_burst = ParseBurstOrAbort(ins.str(), &p);

  SnapshotStore store;
  store.Publish(live);  // the priming (whole-view) extraction
  View::ImageExtractStats last;
  bool deleting = true;
  for (auto _ : state) {
    state.PauseTiming();
    const std::vector<maint::Update>& burst = deleting ? del_burst
                                                       : ins_burst;
    deleting = !deleting;
    Status s = maint::ApplyBatch(p, &live, burst, w.domains.get(), opts,
                                 nullptr);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    state.ResumeTiming();
    if (cow) {
      View::ImageExtractStats es;
      store.PublishImage(live.ExtractImage(&es));
      last = es;
    } else {
      View copy = live;  // the pre-CoW publication: copy everything
      benchmark::DoNotOptimize(copy.size());
    }
  }
  state.counters["updates"] = static_cast<double>(k);
  state.counters["view_atoms"] = base_atoms;
  state.counters["snapshot_nodes_shared"] =
      static_cast<double>(last.segments_shared);
  state.counters["snapshot_nodes_copied"] =
      static_cast<double>(last.segments_copied);
}

void BM_CancellingBurst_Batch(benchmark::State& state) {
  int k = static_cast<int>(state.range(1));
  RunBurst(state, CancellingBurstText(k, k + 32),
           workload::MakeChain(static_cast<int>(state.range(0)), k + 32),
           /*pipelined=*/true);
}
void BM_CancellingBurst_Sequential(benchmark::State& state) {
  int k = static_cast<int>(state.range(1));
  RunBurst(state, CancellingBurstText(k, k + 32),
           workload::MakeChain(static_cast<int>(state.range(0)), k + 32),
           /*pipelined=*/false);
}

void BurstArgs(benchmark::internal::Benchmark* b) {
  // {chain depth, burst size K}
  b->Args({4, 8})
      ->Args({4, 64})
      ->Args({8, 64})
      ->Unit(benchmark::kMillisecond);
}

void BulkLoadArgs(benchmark::internal::Benchmark* b) {
  // {chain depth, burst size K, join mode (0 = naive, 1 = indexed)}
  for (int64_t mode : {0, 1}) {
    b->Args({8, 16, mode})->Args({16, 64, mode})->Args({32, 64, mode});
  }
  b->Unit(benchmark::kMillisecond);
}

void BulkLoadThreadArgs(benchmark::internal::Benchmark* b) {
  // {chain depth, burst size K, threads flag (0 = 1 thread, 1 = hardware)}
  for (int64_t threads : {0, 1}) {
    b->Args({8, 16, threads})->Args({16, 64, threads})->Args(
        {32, 64, threads});
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_DeletionBurst_Batch)->Apply(BurstArgs);
BENCHMARK(BM_DeletionBurst_Sequential)->Apply(BurstArgs);
BENCHMARK(BM_MixedBurst_Batch)->Apply(BurstArgs);
BENCHMARK(BM_MixedBurst_Sequential)->Apply(BurstArgs);
BENCHMARK(BM_CancellingBurst_Batch)->Apply(BurstArgs);
BENCHMARK(BM_CancellingBurst_Sequential)->Apply(BurstArgs);
BENCHMARK(BM_SnapshotReadDuringBatch)
    ->Args({4, 64})
    ->Args({8, 64})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
// {cow, width, K}: width facts per base pred (8 chains x 4 levels), burst
// touches chain 0 only. The largest-width / smallest-K case is the
// headline: publication cost must track the DELTA, not the view.
BENCHMARK(BM_SnapshotPublish)
    ->Args({0, 64, 8})
    ->Args({1, 64, 8})
    ->Args({0, 256, 8})
    ->Args({1, 256, 8})
    ->Args({0, 256, 64})
    ->Args({1, 256, 64})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BulkLoadBurst_Batch)->Apply(BulkLoadArgs);
BENCHMARK(BM_BulkLoadBurst_BatchThreads)->Apply(BulkLoadThreadArgs);

}  // namespace
}  // namespace bench
}  // namespace mmv
