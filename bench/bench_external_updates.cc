// E4 — maintenance under external changes (paper Section 4, Theorem 4,
// Corollary 1): T_P recompute-on-change vs W_P zero-maintenance with
// query-time solvability, swept over the update:query ratio.
//
// Expected shape: W_P wins outright on maintenance (zero work). On total
// cost (maintenance + queries), W_P wins when updates are frequent relative
// to queries; T_P's materialized pruning can win back ground when one
// update is followed by very many queries. The crossover is the interesting
// number.

#include "bench_util.h"

#include "maintenance/external.h"

namespace mmv {
namespace bench {
namespace {

constexpr const char* kViewText = R"(
    east_order(I) <-
      in(R, rel:select_eq("orders", "region", "east")) &
      in(I, tuple:get(R, 0)).
    big_east(I) <-
      east_order(I) &
      in(R, rel:select_eq("orders", "region", "east")) &
      in(I, tuple:get(R, 0)) &
      in(T, tuple:get(R, 2)) & T >= 200.
)";

struct Setup {
  World world;
  Program program;
  int next_id = 0;

  static Setup Make(int rows) {
    Setup s{World::Make(), {}, 0};
    if (!s.world.catalog
             ->CreateTable(rel::Schema{"orders", {"id", "region", "total"}})
             .ok()) {
      std::abort();
    }
    for (int i = 0; i < rows; ++i) {
      (void)s.world.catalog->Insert(
          "orders", {Value(i), Value(i % 2 ? "east" : "west"),
                     Value(100 + i)});
    }
    s.next_id = rows;
    Result<Program> p = parser::ParseProgram(kViewText);
    if (!p.ok()) std::abort();
    s.program = std::move(*p);
    return s;
  }

  void Mutate() {
    world.catalog->clock().Advance();
    (void)world.catalog->Insert(
        "orders", {Value(next_id), Value("east"), Value(250)});
    ++next_id;
  }
};

size_t RunQueries(const maint::MaintainedView& mv, dom::DomainManager* dm,
                  int queries) {
  size_t total = 0;
  for (int q = 0; q < queries; ++q) {
    Result<query::InstanceSet> r =
        query::QueryPred(mv.view(), "big_east", {Term::Var(0)}, dm);
    if (!r.ok()) std::abort();
    total += r->instances.size();
  }
  return total;
}

// One round = a burst of `state.range(2)` external updates, ONE maintenance
// notification, then `queries` queries, under policy. Batching external
// changes before notifying amortizes T_P's recompute the same way
// ApplyBatch amortizes view-update bursts.
void BM_External(benchmark::State& state, maint::MaintenancePolicy policy) {
  Setup s = Setup::Make(static_cast<int>(state.range(0)));
  Result<maint::MaintainedView> mv_r = maint::MaintainedView::Create(
      &s.program, s.world.domains.get(), policy);
  if (!mv_r.ok()) {
    state.SkipWithError(mv_r.status().ToString().c_str());
    return;
  }
  maint::MaintainedView mv = std::move(*mv_r);
  int queries = static_cast<int>(state.range(1));
  int burst = static_cast<int>(state.range(2));

  size_t checksum = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (int b = 0; b < burst; ++b) s.Mutate();
    state.ResumeTiming();
    Status st = mv.OnExternalChange();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    checksum += RunQueries(mv, s.world.domains.get(), queries);
  }
  benchmark::DoNotOptimize(checksum);
  state.counters["maintenance_derivs"] =
      static_cast<double>(mv.maintenance_derivations());
  state.counters["recomputes"] = static_cast<double>(mv.recompute_count());
}

void BM_External_Tp(benchmark::State& state) {
  BM_External(state, maint::MaintenancePolicy::kTpRecompute);
}
void BM_External_Wp(benchmark::State& state) {
  BM_External(state, maint::MaintenancePolicy::kWpSyntactic);
}

void ExternalArgs(benchmark::internal::Benchmark* b) {
  // {table rows, queries per round, external updates per round}
  b->Args({50, 0, 1})
      ->Args({50, 1, 1})
      ->Args({50, 10, 1})
      ->Args({50, 1, 16})
      ->Args({200, 0, 1})
      ->Args({200, 1, 1})
      ->Args({200, 10, 1})
      ->Args({200, 1, 16})
      ->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_External_Tp)->Apply(ExternalArgs);
BENCHMARK(BM_External_Wp)->Apply(ExternalArgs);

}  // namespace
}  // namespace bench
}  // namespace mmv
