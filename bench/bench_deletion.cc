// E1 — deletion algorithms head to head (paper Section 3.1, Conclusion):
//   StDel (Algorithm 2)      — support-indexed, no rederivation
//   Extended DRed (Algorithm 1) — overdelete + rederive
//   full recompute            — the non-incremental baseline
//
// Expected shape: StDel < DRed < recompute, with the gap growing in view
// size; DRed's disadvantage concentrates in the rederivation phase (see
// bench_dred_ablation for the split).

#include "bench_util.h"

namespace mmv {
namespace bench {
namespace {

enum Shape { kChain = 0, kDiamond = 1, kTc = 2, kMultiChain = 3 };

Program MakeShape(int shape, int depth, int width) {
  switch (shape) {
    case kChain:
      return workload::MakeChain(depth, width);
    case kDiamond:
      return workload::MakeDiamond(depth, width);
    case kMultiChain:
      // depth doubles as the chain count; one chain is affected, the rest
      // is ballast that incremental algorithms must not touch.
      return workload::MakeMultiChain(depth, 6, width);
    default:
      return workload::MakeTransitiveClosure(workload::ChainEdges(width));
  }
}

maint::UpdateAtom MakeRequest(Program& p, int shape) {
  if (shape == kTc) {
    auto parsed = parser::ParseConstrainedAtom("e(X, Y) <- X = 1 & Y = 2.",
                                               &p);
    return maint::UpdateAtom{parsed->pred, parsed->args, parsed->constraint};
  }
  return workload::DeleteFactRequest(p, 0);
}

void BM_Delete_StDel(benchmark::State& state) {
  World w = World::Make();
  Program p = MakeShape(static_cast<int>(state.range(0)),
                        static_cast<int>(state.range(1)),
                        static_cast<int>(state.range(2)));
  View base = MustMaterialize(p, w.domains.get());
  maint::UpdateAtom req = MakeRequest(p, static_cast<int>(state.range(0)));

  maint::StDelStats stats;
  for (auto _ : state) {
    state.PauseTiming();
    View v = base;
    state.ResumeTiming();
    Status s = maint::DeleteStDel(p, &v, req, w.domains.get(), {}, &stats);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.counters["view_atoms"] = static_cast<double>(base.size());
  state.counters["replacements"] = static_cast<double>(stats.replacements);
  state.counters["rederivations"] = 0;  // StDel never rederives
  View::IndexStats idx = base.index_stats();
  state.counters["index_postings"] = static_cast<double>(idx.postings);
  state.counters["index_child_entries"] =
      static_cast<double>(idx.child_entries);
}

void BM_Delete_DRed(benchmark::State& state) {
  World w = World::Make();
  Program p = MakeShape(static_cast<int>(state.range(0)),
                        static_cast<int>(state.range(1)),
                        static_cast<int>(state.range(2)));
  FixpointOptions opts = SetSemantics();
  View base = MustMaterialize(p, w.domains.get(), opts);
  maint::UpdateAtom req = MakeRequest(p, static_cast<int>(state.range(0)));

  maint::DRedStats stats;
  for (auto _ : state) {
    Result<View> v =
        maint::DeleteDRed(p, base, req, w.domains.get(), opts, &stats);
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    benchmark::DoNotOptimize(v->size());
  }
  state.counters["view_atoms"] = static_cast<double>(base.size());
  state.counters["pout_atoms"] = static_cast<double>(stats.pout_atoms);
  state.counters["rederivations"] =
      static_cast<double>(stats.rederive_derivations);
}

void BM_Delete_Recompute(benchmark::State& state) {
  World w = World::Make();
  Program p = MakeShape(static_cast<int>(state.range(0)),
                        static_cast<int>(state.range(1)),
                        static_cast<int>(state.range(2)));
  View base = MustMaterialize(p, w.domains.get());
  maint::UpdateAtom req = MakeRequest(p, static_cast<int>(state.range(0)));

  for (auto _ : state) {
    Result<View> v =
        maint::RecomputeAfterDeletion(p, req, w.domains.get());
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    benchmark::DoNotOptimize(v->size());
  }
  state.counters["view_atoms"] = static_cast<double>(base.size());
}

void DeletionArgs(benchmark::internal::Benchmark* b) {
  // {shape, depth, width}
  b->Args({kChain, 8, 8})
      ->Args({kChain, 16, 16})
      ->Args({kChain, 24, 32})
      ->Args({kDiamond, 4, 8})
      ->Args({kDiamond, 8, 16})
      ->Args({kTc, 0, 8})
      ->Args({kTc, 0, 12})
      ->Args({kMultiChain, 8, 8})
      ->Args({kMultiChain, 16, 8})
      ->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Delete_StDel)->Apply(DeletionArgs);
BENCHMARK(BM_Delete_DRed)->Apply(DeletionArgs);
BENCHMARK(BM_Delete_Recompute)->Apply(DeletionArgs);

}  // namespace
}  // namespace bench
}  // namespace mmv
