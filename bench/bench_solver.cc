// E8 — solver cost structure and the value of simplification (the paper's
// Example 5 remark: "in many cases the redundancy can be removed by
// simplification of the constraints").
//
// Measures (a) satisfiability cost vs literal count, (b) cost vs number of
// accumulated not-blocks (the shape repeated deletions produce), and
// (c) constraint growth across repeated update cycles with and without
// simplification in the fixpoint engine.

#include "bench_util.h"

#include "constraint/simplify.h"

namespace mmv {
namespace bench {
namespace {

Term V(VarId v) { return Term::Var(v); }
Term C(int64_t c) { return Term::Const(Value(c)); }

void BM_Solver_ConjunctionScaling(benchmark::State& state) {
  // X0 = X1 = ... = Xn chained, all bound to one constant, plus interval
  // and disequality noise.
  int n = static_cast<int>(state.range(0));
  Constraint c;
  for (int i = 0; i + 1 < n; ++i) {
    c.Add(Primitive::Eq(V(i), V(i + 1)));
  }
  c.Add(Primitive::Eq(V(0), C(5)));
  for (int i = 0; i < n; ++i) {
    c.Add(Primitive::Cmp(V(i), CmpOp::kLe, C(100)));
    c.Add(Primitive::Neq(V(i), C(6)));
  }
  Solver solver(nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(c));
  }
  state.counters["literals"] = static_cast<double>(c.LiteralCount());
}

void BM_Solver_NotBlockScaling(benchmark::State& state) {
  // The post-deletion shape: an interval atom with k subtracted points.
  int k = static_cast<int>(state.range(0));
  Constraint c;
  c.Add(Primitive::Cmp(V(0), CmpOp::kGe, C(0)));
  c.Add(Primitive::Cmp(V(0), CmpOp::kLe, C(1000000)));
  for (int i = 0; i < k; ++i) {
    NotBlock b;
    b.prims.push_back(Primitive::Eq(V(0), C(i)));
    c.AddNot(b);
  }
  Solver solver(nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(c));
  }
  state.counters["not_blocks"] = static_cast<double>(k);
}

void BM_Solver_DcaSplitScaling(benchmark::State& state) {
  // Chained domain calls forcing candidate splits: X in table, Y = 10 * X,
  // Y = target. Split fan-out = table size.
  World w = World::Make();
  int rows = static_cast<int>(state.range(0));
  (void)w.catalog->CreateTable(rel::Schema{"nums", {"n"}});
  for (int i = 0; i < rows; ++i) {
    (void)w.catalog->Insert("nums", {Value(i)});
  }
  Constraint c;
  c.Add(Primitive::In(V(1), DomainCall{"rel", "project",
                                       {C(0), C(0)}}));  // placeholder
  // Rebuild properly: project(nums, n).
  c = Constraint();
  c.Add(Primitive::In(
      V(1), DomainCall{"rel", "project",
                       {Term::Const(Value("nums")),
                        Term::Const(Value("n"))}}));
  c.Add(Primitive::In(V(0), DomainCall{"arith", "times", {V(1), C(10)}}));
  c.Add(Primitive::Eq(V(0), C(10 * (rows - 1))));  // only the last matches
  Solver solver(w.domains.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(c));
  }
  state.counters["split_fanout"] = static_cast<double>(rows);
  state.counters["dca_evals"] =
      static_cast<double>(solver.stats().dca_evaluations);
}

void BM_ConstraintGrowth_DeleteCycles(benchmark::State& state) {
  // Repeated deletions accumulate not-blocks; simplification keeps the
  // canonical size in check. Reports total literals after k cycles.
  World w = World::Make();
  int cycles = static_cast<int>(state.range(0));
  Result<Program> p_r = parser::ParseProgram(R"(
    a(X) <- in(X, arith:between(0, 1000)).
    b(X) <- a(X).
    c(X) <- b(X).
  )");
  if (!p_r.ok()) std::abort();
  Program p = std::move(*p_r);

  size_t literals_after = 0;
  for (auto _ : state) {
    state.PauseTiming();
    View v = MustMaterialize(p, w.domains.get());
    state.ResumeTiming();
    for (int i = 0; i < cycles; ++i) {
      auto parsed = parser::ParseConstrainedAtom(
          "a(X) <- X = " + std::to_string(i) + ".", &p);
      maint::UpdateAtom req{parsed->pred, parsed->args, parsed->constraint};
      Status s = maint::DeleteStDel(p, &v, req, w.domains.get());
      if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    }
    literals_after = v.TotalLiterals();
  }
  state.counters["cycles"] = static_cast<double>(cycles);
  state.counters["literals_after"] = static_cast<double>(literals_after);
}

void BM_Simplify_Throughput(benchmark::State& state) {
  // Simplification of a redundant constraint of the Example 5 flavor.
  int n = static_cast<int>(state.range(0));
  Constraint c;
  for (int i = 0; i + 1 < n; ++i) c.Add(Primitive::Eq(V(i), V(i + 1)));
  c.Add(Primitive::Eq(V(n - 1), C(3)));
  for (int i = 0; i < n; ++i) c.Add(Primitive::Cmp(V(i), CmpOp::kLe, C(9)));
  TermVec head = {V(0)};
  for (auto _ : state) {
    SimplifiedAtom s = SimplifyAtom(head, c);
    benchmark::DoNotOptimize(s.constraint.LiteralCount());
  }
  state.counters["input_literals"] = static_cast<double>(c.LiteralCount());
}

void BM_Materialize_SimplifyOnOff(benchmark::State& state) {
  // Ablation: the fixpoint engine with and without per-derivation
  // simplification. Without it, constraints accumulate the full join
  // equality chains (Example 5's redundancy).
  World w = World::Make();
  Program p = workload::MakeChain(static_cast<int>(state.range(0)),
                                  static_cast<int>(state.range(1)));
  FixpointOptions opts;
  opts.simplify = state.range(2) != 0;
  View last;
  for (auto _ : state) {
    last = MustMaterialize(p, w.domains.get(), opts);
  }
  state.counters["simplify"] = static_cast<double>(state.range(2));
  state.counters["total_literals"] = static_cast<double>(last.TotalLiterals());
  state.counters["bytes"] = static_cast<double>(last.ApproxBytes());
}

BENCHMARK(BM_Materialize_SimplifyOnOff)
    ->Args({8, 8, 1})
    ->Args({8, 8, 0})
    ->Args({16, 16, 1})
    ->Args({16, 16, 0})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Solver_ConjunctionScaling)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Solver_NotBlockScaling)->Arg(1)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_Solver_DcaSplitScaling)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_ConstraintGrowth_DeleteCycles)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Simplify_Throughput)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace bench
}  // namespace mmv
