// E3 — incremental insertion (Algorithm 3) vs full recomputation.
//
// Expected shape: InsertAtom's cost tracks the size of the *delta* (the
// inserted atom plus its unfolded consequences), while recompute tracks the
// size of the whole view; the ratio widens with view size.

#include "bench_util.h"

namespace mmv {
namespace bench {
namespace {

maint::UpdateAtom FreshInsertRequest(Program* p, int value) {
  maint::UpdateAtom req;
  req.pred = "p0";
  VarId x = p->factory()->Fresh();
  req.args = {Term::Var(x)};
  req.constraint.Add(
      Primitive::Eq(Term::Var(x), Term::Const(Value(value))));
  return req;
}

void BM_Insert_Incremental(benchmark::State& state) {
  World w = World::Make();
  Program p = workload::MakeChain(static_cast<int>(state.range(0)),
                                  static_cast<int>(state.range(1)));
  View base = MustMaterialize(p, w.domains.get());
  // Insert a value outside the existing range.
  maint::UpdateAtom req =
      FreshInsertRequest(&p, static_cast<int>(state.range(1)) + 1000);

  maint::InsertStats stats;
  for (auto _ : state) {
    state.PauseTiming();
    View v = base;
    int ext = 0;
    state.ResumeTiming();
    Status s = maint::InsertAtom(p, &v, req, w.domains.get(), {}, &stats,
                                 &ext);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.counters["view_atoms"] = static_cast<double>(base.size());
  state.counters["atoms_added"] = static_cast<double>(stats.atoms_added);
  state.counters["unfold_derivs"] =
      static_cast<double>(stats.unfold_derivations);
  View::IndexStats idx = base.index_stats();
  state.counters["index_postings"] = static_cast<double>(idx.postings);
  state.counters["index_support_entries"] =
      static_cast<double>(idx.support_entries);
}

void BM_Insert_Recompute(benchmark::State& state) {
  World w = World::Make();
  Program p = workload::MakeChain(static_cast<int>(state.range(0)),
                                  static_cast<int>(state.range(1)));
  View base = MustMaterialize(p, w.domains.get());
  maint::UpdateAtom req =
      FreshInsertRequest(&p, static_cast<int>(state.range(1)) + 1000);

  for (auto _ : state) {
    Result<View> v =
        maint::RecomputeAfterInsertion(p, req, w.domains.get());
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    benchmark::DoNotOptimize(v->size());
  }
  state.counters["view_atoms"] = static_cast<double>(base.size());
}

void BM_Insert_Bulk(benchmark::State& state) {
  // A burst of k insertions, maintained incrementally.
  World w = World::Make();
  Program p = workload::MakeChain(8, 8);
  View base = MustMaterialize(p, w.domains.get());
  int k = static_cast<int>(state.range(0));

  for (auto _ : state) {
    state.PauseTiming();
    View v = base;
    int ext = 0;
    state.ResumeTiming();
    for (int i = 0; i < k; ++i) {
      maint::UpdateAtom req = FreshInsertRequest(&p, 1000 + i);
      Status s = maint::InsertAtom(p, &v, req, w.domains.get(), {}, nullptr,
                                   &ext);
      if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    }
    benchmark::DoNotOptimize(v.size());
  }
  state.counters["insertions"] = k;
}

void InsertArgs(benchmark::internal::Benchmark* b) {
  b->Args({8, 8})->Args({16, 16})->Args({24, 32})->Unit(
      benchmark::kMillisecond);
}

BENCHMARK(BM_Insert_Incremental)->Apply(InsertArgs);
BENCHMARK(BM_Insert_Recompute)->Apply(InsertArgs);
BENCHMARK(BM_Insert_Bulk)->Arg(1)->Arg(4)->Arg(16)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mmv
