// E3 — incremental insertion (Algorithm 3) vs full recomputation, plus the
// join-pipeline comparison (E10): the same seminaive insertion continuation
// under the naive nested-loop join (the oracle) and the constraint-aware
// indexed join (arg-value probes, incremental unification, rename-free
// fully-ground derivations, solver memo).
//
// Expected shape: InsertAtom's cost tracks the size of the *delta* (the
// inserted atom plus its unfolded consequences), while recompute tracks the
// size of the whole view; the ratio widens with view size. The mode-paired
// cases (trailing arg 0 = naive, 1 = indexed) must derive identical atom
// counts — CI diffs their counters — with the indexed join >= 3x faster on
// the chain continuations at the largest size.

#include "bench_util.h"

#include <chrono>

#include "plan/plan_cache.h"

namespace mmv {
namespace bench {
namespace {

maint::UpdateAtom FreshInsertRequest(Program* p, int value) {
  maint::UpdateAtom req;
  req.pred = "p0";
  VarId x = p->factory()->Fresh();
  req.args = {Term::Var(x)};
  req.constraint.Add(
      Primitive::Eq(Term::Var(x), Term::Const(Value(value))));
  return req;
}

void BM_Insert_Incremental(benchmark::State& state) {
  World w = World::Make();
  Program p = workload::MakeChain(static_cast<int>(state.range(0)),
                                  static_cast<int>(state.range(1)));
  FixpointOptions opts = DefaultOptions();
  plan::PlanCache plans(opts.plan_mode);
  opts.plan_cache = &plans;
  View base = MustMaterialize(p, w.domains.get(), opts);
  // Insert a value outside the existing range.
  maint::UpdateAtom req =
      FreshInsertRequest(&p, static_cast<int>(state.range(1)) + 1000);

  maint::InsertStats stats;
  for (auto _ : state) {
    state.PauseTiming();
    View v = base;
    int ext = 0;
    state.ResumeTiming();
    Status s = maint::InsertAtom(p, &v, req, w.domains.get(), opts, &stats,
                                 &ext);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.counters["view_atoms"] = static_cast<double>(base.size());
  state.counters["atoms_added"] = static_cast<double>(stats.atoms_added);
  state.counters["unfold_derivs"] =
      static_cast<double>(stats.unfold_derivations);
  state.counters["index_probes"] = static_cast<double>(stats.index_probes);
  state.counters["ground_rejects"] =
      static_cast<double>(stats.ground_rejects);
  state.counters["rename_skipped"] =
      static_cast<double>(stats.rename_skipped);
  state.counters["solver_cache_hits"] = static_cast<double>(
      stats.solver.cache_hits + stats.unfold_solver.cache_hits);
  View::IndexStats idx = base.index_stats();
  state.counters["index_postings"] = static_cast<double>(idx.postings);
  state.counters["index_support_entries"] =
      static_cast<double>(idx.support_entries);
}

void BM_Insert_Recompute(benchmark::State& state) {
  World w = World::Make();
  Program p = workload::MakeChain(static_cast<int>(state.range(0)),
                                  static_cast<int>(state.range(1)));
  View base = MustMaterialize(p, w.domains.get());
  maint::UpdateAtom req =
      FreshInsertRequest(&p, static_cast<int>(state.range(1)) + 1000);

  for (auto _ : state) {
    Result<View> v =
        maint::RecomputeAfterInsertion(p, req, w.domains.get());
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    benchmark::DoNotOptimize(v->size());
  }
  state.counters["view_atoms"] = static_cast<double>(base.size());
}

void BM_Insert_Bulk(benchmark::State& state) {
  // A burst of k insertions, maintained incrementally.
  World w = World::Make();
  Program p = workload::MakeChain(8, 8);
  FixpointOptions opts = DefaultOptions();
  plan::PlanCache plans(opts.plan_mode);
  opts.plan_cache = &plans;
  View base = MustMaterialize(p, w.domains.get(), opts);
  int k = static_cast<int>(state.range(0));

  for (auto _ : state) {
    state.PauseTiming();
    View v = base;
    int ext = 0;
    state.ResumeTiming();
    for (int i = 0; i < k; ++i) {
      maint::UpdateAtom req = FreshInsertRequest(&p, 1000 + i);
      Status s = maint::InsertAtom(p, &v, req, w.domains.get(), opts, nullptr,
                                   &ext);
      if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    }
    benchmark::DoNotOptimize(v.size());
  }
  state.counters["insertions"] = k;
}

// ---- join-pipeline comparison (mode-paired cases) -------------------------

// Appends K external ground facts of \p pred to the view (bypassing the
// BuildAdd diff so the timed region isolates the join) and returns the
// pre-append size to continue from.
size_t AppendExternals(View* v, const std::string& pred, int first_value,
                       int k, int* ext_counter) {
  size_t delta_begin = v->size();
  for (int i = 0; i < k; ++i) {
    ViewAtom a;
    a.pred = pred;
    a.args = {Term::Const(Value(first_value + i))};
    a.support = Support(--(*ext_counter));
    v->Add(std::move(a));
  }
  return delta_begin;
}

// One seminaive continuation over a K-fact delta of a ground chain: every
// derivation is fully ground, the regime where the indexed join's
// rename-free fast path pays. {depth, width, K, mode}.
void BM_Continuation_Chain(benchmark::State& state) {
  World w = World::Make();
  Program p = workload::MakeChain(static_cast<int>(state.range(0)),
                                  static_cast<int>(state.range(1)));
  FixpointOptions opts = DefaultOptions();
  opts.join_mode = ModeArg(state.range(3));
  plan::PlanCache plans(opts.plan_mode);
  opts.plan_cache = &plans;
  View base = MustMaterialize(p, w.domains.get(), opts);
  int k = static_cast<int>(state.range(2));

  FixpointStats fs;
  size_t added = 0;
  for (auto _ : state) {
    state.PauseTiming();
    View v = base;
    int ext = 0;
    size_t delta_begin = AppendExternals(
        &v, "p0", static_cast<int>(state.range(1)) + 1000, k, &ext);
    fs = FixpointStats();
    state.ResumeTiming();
    Status s = ContinueFixpoint(p, &v, w.domains.get(), opts, &fs,
                                delta_begin);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    added = v.size() - base.size();
    benchmark::DoNotOptimize(added);
  }
  state.counters["atoms_added"] = static_cast<double>(added);
  ExportJoinCounters(state, fs);
}

// The same continuation over a chain, but the K inserted facts are
// NON-GROUND interval atoms (lo <= X <= hi plus the integral DCA-atom):
// every level of the chain re-derives the same symbolic constraint, so the
// solver runs once per external under the canonical-form memo instead of
// once per (external, level). {depth, width, K, mode}.
void BM_Continuation_IntervalChain(benchmark::State& state) {
  World w = World::Make();
  int depth = static_cast<int>(state.range(0));
  int width = static_cast<int>(state.range(1));
  Program p = workload::MakeChain(depth, width);
  FixpointOptions opts = DefaultOptions();
  opts.join_mode = ModeArg(state.range(3));
  plan::PlanCache plans(opts.plan_mode);
  opts.plan_cache = &plans;
  View base = MustMaterialize(p, w.domains.get(), opts);
  int k = static_cast<int>(state.range(2));

  // K disjoint interval atoms beyond the ground range, built once.
  std::vector<ViewAtom> externals;
  for (int i = 0; i < k; ++i) {
    int64_t lo = width + 1000 + 8 * i;
    int64_t hi = lo + 3;
    ViewAtom a;
    a.pred = "p0";
    VarId x = p.factory()->Fresh();
    a.args = {Term::Var(x)};
    a.constraint.Add(
        Primitive::Cmp(Term::Var(x), CmpOp::kGe, Term::Const(Value(lo))));
    a.constraint.Add(
        Primitive::Cmp(Term::Var(x), CmpOp::kLe, Term::Const(Value(hi))));
    DomainCall call;
    call.domain = "arith";
    call.function = "between";
    call.args = {Term::Const(Value(lo)), Term::Const(Value(hi))};
    a.constraint.Add(Primitive::In(Term::Var(x), std::move(call)));
    a.support = Support(-1 - i);
    externals.push_back(std::move(a));
  }

  FixpointStats fs;
  size_t added = 0;
  for (auto _ : state) {
    state.PauseTiming();
    View v = base;
    size_t delta_begin = v.size();
    for (const ViewAtom& a : externals) v.Add(a);
    fs = FixpointStats();
    state.ResumeTiming();
    Status s = ContinueFixpoint(p, &v, w.domains.get(), opts, &fs,
                                delta_begin);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    added = v.size() - base.size();
    benchmark::DoNotOptimize(added);
  }
  state.counters["atoms_added"] = static_cast<double>(added);
  state.counters["solve_calls"] =
      static_cast<double>(fs.solver.solve_calls);
  ExportJoinCounters(state, fs);
}

// Transitive-closure edge insertion: the recursive path rule joins the new
// edge against every path atom; the indexed join probes the arg-value
// bucket for the bound join position where the oracle scans the whole
// predicate and rejects via the solver. {n, mode}.
void BM_Continuation_TransitiveClosure(benchmark::State& state) {
  World w = World::Make();
  int n = static_cast<int>(state.range(0));
  Program p = workload::MakeTransitiveClosure(workload::ChainEdges(n));
  FixpointOptions opts = DefaultOptions();
  opts.join_mode = ModeArg(state.range(1));
  plan::PlanCache plans(opts.plan_mode);
  opts.plan_cache = &plans;
  View base = MustMaterialize(p, w.domains.get(), opts);

  FixpointStats fs;
  size_t added = 0;
  for (auto _ : state) {
    state.PauseTiming();
    View v = base;
    size_t delta_begin = v.size();
    {  // the new edge e(n-1, n), appended as an external fact
      ViewAtom a;
      a.pred = "e";
      a.args = {Term::Const(Value(n - 1)), Term::Const(Value(n))};
      a.support = Support(-1);
      v.Add(std::move(a));
    }
    fs = FixpointStats();
    state.ResumeTiming();
    Status s = ContinueFixpoint(p, &v, w.domains.get(), opts, &fs,
                                delta_begin);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    added = v.size() - base.size();
    benchmark::DoNotOptimize(added);
  }
  state.counters["atoms_added"] = static_cast<double>(added);
  ExportJoinCounters(state, fs);
}

// A guarded chain — p{k+1}(X) <- p{k}(X), p0(X): every level re-joins the
// delta against the base relation. The oracle enumerates |delta| x |p0|
// candidates per level and lets the solver reject the mismatches; the
// indexed join probes the p0 bucket for the already-bound X, visiting one
// candidate. This is the sideways-information-passing case the pipeline
// exists for. {depth, width, K, mode}.
void BM_Continuation_GuardedChain(benchmark::State& state) {
  World w = World::Make();
  Program p = workload::MakeGuardedChain(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(1)));
  FixpointOptions opts = DefaultOptions();
  opts.join_mode = ModeArg(state.range(3));
  plan::PlanCache plans(opts.plan_mode);
  opts.plan_cache = &plans;
  View base = MustMaterialize(p, w.domains.get(), opts);
  int k = static_cast<int>(state.range(2));

  FixpointStats fs;
  size_t added = 0;
  for (auto _ : state) {
    state.PauseTiming();
    View v = base;
    int ext = 0;
    size_t delta_begin = AppendExternals(
        &v, "p0", static_cast<int>(state.range(1)) + 1000, k, &ext);
    fs = FixpointStats();
    state.ResumeTiming();
    Status s = ContinueFixpoint(p, &v, w.domains.get(), opts, &fs,
                                delta_begin);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    added = v.size() - base.size();
    benchmark::DoNotOptimize(added);
  }
  state.counters["atoms_added"] = static_cast<double>(added);
  ExportJoinCounters(state, fs);
}

// The guarded chain with the guard written FIRST — p{k+1}(X) <- p0(X),
// p{k}(X): the most selective body atom (the seminaive delta) is textually
// last. Plan-off (declared order, trailing arg 0) scans the whole base
// relation before the delta ever binds X; plan-on (selectivity-ordered,
// trailing arg 1) runs the delta atom first and probes p0's bucket per
// binding, exactly like the forward-written chain. Join mode is kIndexed
// for both — this case scores the PLAN layer, and its atom counters must
// match across the pair (CI diffs them). {depth, width, K, plan mode}.
void BM_Continuation_GuardedChainReversed(benchmark::State& state) {
  World w = World::Make();
  Program p = workload::MakeGuardedChainReversed(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  FixpointOptions opts = DefaultOptions();
  opts.join_mode = JoinMode::kIndexed;
  opts.plan_mode = PlanModeArg(state.range(3));
  plan::PlanCache plans(opts.plan_mode);
  opts.plan_cache = &plans;
  View base = MustMaterialize(p, w.domains.get(), opts);
  int k = static_cast<int>(state.range(2));

  FixpointStats fs;
  size_t added = 0;
  // Manual timing: the untimed per-iteration view copy is large here (the
  // wide base relation dominates the view), and Pause/Resume accounting
  // noise would swamp the plan-on continuation being measured.
  for (auto _ : state) {
    View v = base;
    int ext = 0;
    size_t delta_begin = AppendExternals(
        &v, "p0", static_cast<int>(state.range(1)) + 1000, k, &ext);
    fs = FixpointStats();
    auto start = std::chrono::steady_clock::now();
    Status s = ContinueFixpoint(p, &v, w.domains.get(), opts, &fs,
                                delta_begin);
    auto end = std::chrono::steady_clock::now();
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
    added = v.size() - base.size();
    benchmark::DoNotOptimize(added);
  }
  state.counters["atoms_added"] = static_cast<double>(added);
  ExportJoinCounters(state, fs);
}

// Eight independent guarded chains — eight head-predicate groups per
// stratum, the parallel-strata showcase: with T threads each round's
// chain passes run concurrently against the frozen delta window and merge
// once per round in clause order. Thread-paired: trailing arg 0 = 1
// thread (the sequential engine), 1 = every hardware thread; the
// derived-atom counters must match across the pair byte for byte (CI
// diffs them). {depth, width, K, threads flag}.
void BM_Continuation_GuardedMultiChain(benchmark::State& state) {
  World w = World::Make();
  const int chains = 8;
  int depth = static_cast<int>(state.range(0));
  int width = static_cast<int>(state.range(1));
  int k = static_cast<int>(state.range(2));
  Program p = workload::MakeGuardedMultiChain(chains, depth, width);
  FixpointOptions opts = DefaultOptions();
  opts.join_mode = JoinMode::kIndexed;
  opts.num_threads = ThreadsArg(state.range(3));
  plan::PlanCache plans(opts.plan_mode);
  opts.plan_cache = &plans;
  View base = MustMaterialize(p, w.domains.get(), opts);

  FixpointStats fs;
  size_t added = 0;
  // Manual timing, like the reversed chain: the untimed per-iteration view
  // copy dominates wall time here and Pause/Resume accounting noise would
  // swamp the continuation being measured.
  for (auto _ : state) {
    View v = base;
    size_t delta_begin = v.size();
    int ext = 0;
    // K fresh externals, round-robin across the chains: every chain gets a
    // delta, so every chain's clause group has work each round.
    for (int i = 0; i < k; ++i) {
      ViewAtom a;
      a.pred = "c" + std::to_string(i % chains) + "_p0";
      a.args = {Term::Const(Value(width + 1000 + i / chains))};
      a.support = Support(--ext);
      v.Add(std::move(a));
    }
    fs = FixpointStats();
    auto start = std::chrono::steady_clock::now();
    Status s = ContinueFixpoint(p, &v, w.domains.get(), opts, &fs,
                                delta_begin);
    auto end = std::chrono::steady_clock::now();
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
    added = v.size() - base.size();
    benchmark::DoNotOptimize(added);
  }
  state.counters["atoms_added"] = static_cast<double>(added);
  state.counters["threads"] = static_cast<double>(opts.num_threads);
  ExportJoinCounters(state, fs);
}

// Transitive closure with a DCA-guarded recursive clause — ONE recursive
// predicate, so the whole program is a single SCC and the strata axis
// offers no parallelism at all: any speedup here comes from intra-SCC
// delta partitioning alone. The K delta edges e(n+j, 0) all land in one
// frozen pivot window of the recursive clause, which the engine shards
// across workers; the arith guard makes each candidate pay a real
// solver + domain evaluation on the worker, the regime partitioning is
// for. Thread-paired like GuardedMultiChain: trailing arg 0 = 1 thread,
// 1 = every hardware thread, and the derived-atom counters must match
// across the pair byte for byte (CI diffs them; partitions_run shows how
// many shards actually ran). {n, K, threads flag}.
void BM_Continuation_TransitiveClosureThreads(benchmark::State& state) {
  World w = World::Make();
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  Program p;
  for (int i = 0; i + 1 < n; ++i) {  // the chain edges e(i, i+1)
    Clause c;
    c.head_pred = "e";
    VarId x = p.factory()->Fresh(), y = p.factory()->Fresh();
    c.head_args = {Term::Var(x), Term::Var(y)};
    c.constraint.Add(Primitive::Eq(Term::Var(x), Term::Const(Value(i))));
    c.constraint.Add(
        Primitive::Eq(Term::Var(y), Term::Const(Value(i + 1))));
    p.AddClause(std::move(c));
  }
  {  // path(X,Y) <- e(X,Y)
    Clause c;
    VarId x = p.factory()->Fresh(), y = p.factory()->Fresh();
    c.head_pred = "path";
    c.head_args = {Term::Var(x), Term::Var(y)};
    c.body.push_back(BodyAtom{"e", {Term::Var(x), Term::Var(y)}});
    p.AddClause(std::move(c));
  }
  {  // path(X,Y) <- in(S, arith:plus(X,Y)) || e(X,Z), path(Z,Y)
    Clause c;
    VarId x = p.factory()->Fresh(), y = p.factory()->Fresh(),
          z = p.factory()->Fresh(), s = p.factory()->Fresh();
    c.head_pred = "path";
    c.head_args = {Term::Var(x), Term::Var(y)};
    c.body.push_back(BodyAtom{"e", {Term::Var(x), Term::Var(z)}});
    c.body.push_back(BodyAtom{"path", {Term::Var(z), Term::Var(y)}});
    DomainCall call;
    call.domain = "arith";
    call.function = "plus";
    call.args = {Term::Var(x), Term::Var(y)};
    c.constraint.Add(Primitive::In(Term::Var(s), std::move(call)));
    p.AddClause(std::move(c));
  }
  FixpointOptions opts = DefaultOptions();
  opts.join_mode = JoinMode::kIndexed;
  opts.num_threads = ThreadsArg(state.range(2));
  plan::PlanCache plans(opts.plan_mode);
  opts.plan_cache = &plans;
  View base = MustMaterialize(p, w.domains.get(), opts);

  FixpointStats fs;
  size_t added = 0;
  // Manual timing: the per-iteration copy of the closed view (O(n^2) path
  // atoms) is setup, not the continuation being measured.
  for (auto _ : state) {
    View v = base;
    size_t delta_begin = v.size();
    int ext = 0;
    // K fresh-source edges into node 0: each joins path(0, *) in round
    // one, so the recursive clause sees a single K-atom pivot window
    // fanning out to K * (n-1) guarded derivations.
    for (int j = 0; j < k; ++j) {
      ViewAtom a;
      a.pred = "e";
      a.args = {Term::Const(Value(n + j)), Term::Const(Value(0))};
      a.support = Support(--ext);
      v.Add(std::move(a));
    }
    fs = FixpointStats();
    auto start = std::chrono::steady_clock::now();
    Status s = ContinueFixpoint(p, &v, w.domains.get(), opts, &fs,
                                delta_begin);
    auto end = std::chrono::steady_clock::now();
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
    added = v.size() - base.size();
    benchmark::DoNotOptimize(added);
  }
  state.counters["atoms_added"] = static_cast<double>(added);
  state.counters["threads"] = static_cast<double>(opts.num_threads);
  ExportJoinCounters(state, fs);
}

// A record chain: the same propagation shape as BM_Continuation_Chain but
// with arity-3 atoms (id, attr, attr) — the realistic mediated-view case
// where view atoms are records, not bare keys. Every extra column widens
// the rename/substitution/simplify work the oracle pays per derivation
// while the indexed fast path just copies constants. {depth, width, K, mode}.
void BM_Continuation_RecordChain(benchmark::State& state) {
  World w = World::Make();
  int depth = static_cast<int>(state.range(0));
  int width = static_cast<int>(state.range(1));
  Program p;
  for (int i = 0; i < width; ++i) {
    Clause c;
    c.head_pred = "r0";
    VarId x = p.factory()->Fresh(), y = p.factory()->Fresh(),
          z = p.factory()->Fresh();
    c.head_args = {Term::Var(x), Term::Var(y), Term::Var(z)};
    c.constraint.Add(Primitive::Eq(Term::Var(x), Term::Const(Value(i))));
    c.constraint.Add(Primitive::Eq(Term::Var(y), Term::Const(Value(i + 1))));
    c.constraint.Add(
        Primitive::Eq(Term::Var(z), Term::Const(Value(2 * i))));
    p.AddClause(std::move(c));
  }
  for (int kk = 0; kk < depth; ++kk) {
    Clause c;
    VarId x = p.factory()->Fresh(), y = p.factory()->Fresh(),
          z = p.factory()->Fresh();
    c.head_pred = "r" + std::to_string(kk + 1);
    c.head_args = {Term::Var(x), Term::Var(y), Term::Var(z)};
    c.body.push_back(BodyAtom{
        "r" + std::to_string(kk), {Term::Var(x), Term::Var(y), Term::Var(z)}});
    p.AddClause(std::move(c));
  }
  FixpointOptions opts = DefaultOptions();
  opts.join_mode = ModeArg(state.range(3));
  plan::PlanCache plans(opts.plan_mode);
  opts.plan_cache = &plans;
  View base = MustMaterialize(p, w.domains.get(), opts);
  int k = static_cast<int>(state.range(2));

  FixpointStats fs;
  size_t added = 0;
  for (auto _ : state) {
    state.PauseTiming();
    View v = base;
    size_t delta_begin = v.size();
    int ext = 0;
    for (int i = 0; i < k; ++i) {
      ViewAtom a;
      a.pred = "r0";
      a.args = {Term::Const(Value(width + 1000 + i)),
                Term::Const(Value(width + 1001 + i)),
                Term::Const(Value(2 * (width + 1000 + i)))};
      a.support = Support(--ext);
      v.Add(std::move(a));
    }
    fs = FixpointStats();
    state.ResumeTiming();
    Status s = ContinueFixpoint(p, &v, w.domains.get(), opts, &fs,
                                delta_begin);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    added = v.size() - base.size();
    benchmark::DoNotOptimize(added);
  }
  state.counters["atoms_added"] = static_cast<double>(added);
  ExportJoinCounters(state, fs);
}

// Reciprocal join over a star graph: base edges e(j, 0) into the hub, a
// delta of K out-edges e(0, j), and sym(X,Y) <- e(X,Y) & e(Y,X). Probing
// the second body atom's position 0 returns the whole delta bucket; its
// position 1 must then match the bound X, so incremental unification
// rejects K-1 of K candidates mid-join where the oracle assembles and
// solves every pair. {m, mode}.
void BM_Continuation_ReciprocalStar(benchmark::State& state) {
  World w = World::Make();
  int m = static_cast<int>(state.range(0));
  Program p;
  for (int j = 1; j <= m; ++j) {
    Clause c;
    c.head_pred = "e";
    VarId x = p.factory()->Fresh(), y = p.factory()->Fresh();
    c.head_args = {Term::Var(x), Term::Var(y)};
    c.constraint.Add(Primitive::Eq(Term::Var(x), Term::Const(Value(j))));
    c.constraint.Add(Primitive::Eq(Term::Var(y), Term::Const(Value(0))));
    p.AddClause(std::move(c));
  }
  {
    Clause c;
    VarId x = p.factory()->Fresh(), y = p.factory()->Fresh();
    c.head_pred = "sym";
    c.head_args = {Term::Var(x), Term::Var(y)};
    c.body.push_back(BodyAtom{"e", {Term::Var(x), Term::Var(y)}});
    c.body.push_back(BodyAtom{"e", {Term::Var(y), Term::Var(x)}});
    p.AddClause(std::move(c));
  }
  FixpointOptions opts = DefaultOptions();
  opts.join_mode = ModeArg(state.range(1));
  plan::PlanCache plans(opts.plan_mode);
  opts.plan_cache = &plans;
  View base = MustMaterialize(p, w.domains.get(), opts);

  FixpointStats fs;
  size_t added = 0;
  for (auto _ : state) {
    state.PauseTiming();
    View v = base;
    size_t delta_begin = v.size();
    int ext = 0;
    for (int j = 1; j <= m; ++j) {  // the K out-edges e(0, j)
      ViewAtom a;
      a.pred = "e";
      a.args = {Term::Const(Value(0)), Term::Const(Value(j))};
      a.support = Support(--ext);
      v.Add(std::move(a));
    }
    fs = FixpointStats();
    state.ResumeTiming();
    Status s = ContinueFixpoint(p, &v, w.domains.get(), opts, &fs,
                                delta_begin);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    added = v.size() - base.size();
    benchmark::DoNotOptimize(added);
  }
  state.counters["atoms_added"] = static_cast<double>(added);
  ExportJoinCounters(state, fs);
}

void InsertArgs(benchmark::internal::Benchmark* b) {
  b->Args({8, 8})->Args({16, 16})->Args({24, 32})->Unit(
      benchmark::kMillisecond);
}

void ContinuationArgs(benchmark::internal::Benchmark* b) {
  // {depth, width, K, mode}; mode 0 = naive oracle, 1 = indexed.
  for (int64_t mode : {0, 1}) {
    b->Args({8, 8, 8, mode})
        ->Args({16, 32, 32, mode})
        ->Args({24, 64, 64, mode});
  }
  b->Unit(benchmark::kMillisecond);
}

void IntervalContinuationArgs(benchmark::internal::Benchmark* b) {
  for (int64_t mode : {0, 1}) {
    b->Args({8, 8, 4, mode})->Args({24, 16, 16, mode});
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Insert_Incremental)->Apply(InsertArgs);
BENCHMARK(BM_Insert_Recompute)->Apply(InsertArgs);
BENCHMARK(BM_Insert_Bulk)->Arg(1)->Arg(4)->Arg(16)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_Continuation_Chain)->Apply(ContinuationArgs);
BENCHMARK(BM_Continuation_RecordChain)->Apply(ContinuationArgs);
BENCHMARK(BM_Continuation_GuardedChain)
    ->Args({8, 8, 8, 0})
    ->Args({8, 8, 8, 1})
    ->Args({12, 16, 16, 0})
    ->Args({12, 16, 16, 1})
    ->Args({16, 32, 32, 0})
    ->Args({16, 32, 32, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Continuation_GuardedChainReversed)
    ->Args({8, 8, 8, 0})
    ->Args({8, 8, 8, 1})
    ->Args({12, 256, 8, 0})
    ->Args({12, 256, 8, 1})
    ->Args({16, 1024, 8, 0})
    ->Args({16, 1024, 8, 1})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Continuation_GuardedMultiChain)
    ->Args({8, 16, 16, 0})
    ->Args({8, 16, 16, 1})
    ->Args({12, 64, 32, 0})
    ->Args({12, 64, 32, 1})
    ->Args({16, 256, 64, 0})
    ->Args({16, 256, 64, 1})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Continuation_IntervalChain)->Apply(IntervalContinuationArgs);
BENCHMARK(BM_Continuation_TransitiveClosureThreads)
    ->Args({64, 512, 0})
    ->Args({64, 512, 1})
    ->Args({128, 512, 0})
    ->Args({128, 512, 1})
    ->Args({256, 512, 0})
    ->Args({256, 512, 1})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Continuation_TransitiveClosure)
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Continuation_ReciprocalStar)
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({96, 0})
    ->Args({96, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mmv
