// Durability costs: what the WAL adds to a burst, what a checkpoint of a
// view costs, and how cold-start recovery scales with view size and WAL
// tail length. Everything runs on MemFs so the numbers isolate the
// serialization / framing / replay work from disk latency; the replay half
// of RecoverColdStart exercises the same maint::ApplyBatch pipeline the
// live system runs.
//
// Work-product counters (wal_records, wal_bytes, checkpoints, replayed,
// view_atoms) are deterministic functions of the workload — identical
// across join modes, plan modes and thread counts — so the sidecar diff in
// CI compares them like the other bench binaries' derived-atom counts.

#include "bench_util.h"

#include <cstdint>
#include <sstream>
#include <vector>

#include "core/snapshot.h"
#include "durability/durable_log.h"
#include "durability/fs.h"
#include "maintenance/batch.h"
#include "parser/view_io.h"

namespace mmv {
namespace bench {
namespace {

std::vector<maint::Update> ParseBurstOrAbort(const std::string& text,
                                             Program* p) {
  Result<std::vector<parser::ParsedUpdate>> parsed =
      parser::ParseBurst(text, p);
  if (!parsed.ok()) std::abort();
  std::vector<maint::Update> burst;
  burst.reserve(parsed->size());
  for (parser::ParsedUpdate& u : *parsed) {
    maint::UpdateAtom atom{std::move(u.atom.pred), std::move(u.atom.args),
                           std::move(u.atom.constraint)};
    burst.push_back(u.is_delete ? maint::Update::Delete(std::move(atom))
                                : maint::Update::Insert(std::move(atom)));
  }
  return burst;
}

// K fresh base facts: each ripples through every chain level, so the burst
// is real maintenance work, not a no-op append.
std::string InsertBurstText(int k, int width, int generation) {
  std::ostringstream os;
  for (int i = 0; i < k; ++i) {
    os << "ins p0(X) <- X = " << (width + generation * k + i) << ".\n";
  }
  return os.str();
}

// One K-update burst through ApplyBatch, with or without a DurableLog
// attached. The paired cases share the workload, so .../0 vs .../1 in one
// sidecar is the WAL's marginal cost (serialize + frame + CRC + append).
void RunWalOverhead(benchmark::State& state, bool logged) {
  int depth = static_cast<int>(state.range(1));
  int k = static_cast<int>(state.range(2));
  int width = 64;
  World w = World::Make();
  Program p = workload::MakeChain(depth, width);
  FixpointOptions opts = DefaultOptions();
  View base = MustMaterialize(p, w.domains.get(), opts);
  std::vector<maint::Update> burst =
      ParseBurstOrAbort(InsertBurstText(k, width, 0), &p);

  durability::MemFs fs;
  SnapshotStore snapshots;
  snapshots.Publish(base);
  std::unique_ptr<durability::DurableLog> log;
  if (logged) {
    // Cadence 0: the WAL append alone, never a checkpoint. The view is
    // reset every iteration but the log keeps appending — MemFs makes the
    // growing segment an O(1) concern.
    auto created = durability::DurableLog::Create(
        &fs, "state", p, base, snapshots.epoch(), /*ext_counter=*/0, {});
    if (!created.ok()) std::abort();
    log = std::move(*created);
  }

  maint::BatchStats stats;
  for (auto _ : state) {
    state.PauseTiming();
    View v = base;
    state.ResumeTiming();
    Status s = maint::ApplyBatch(p, &v, burst, w.domains.get(), opts,
                                 &stats, log ? log->ext_counter() : nullptr,
                                 &snapshots, log.get());
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(v.size());
  }
  state.counters["updates"] = static_cast<double>(burst.size());
  state.counters["added"] = static_cast<double>(stats.insertion_pass_atoms);
  state.counters["wal_records"] = static_cast<double>(stats.wal_records);
  state.counters["wal_bytes"] = static_cast<double>(stats.wal_bytes);
  state.counters["wal_syncs"] = static_cast<double>(stats.wal_syncs);
  // Both modes publish to the SnapshotStore, so the CoW sharing counters
  // are twin-equal: the logged/unlogged pair shares one extraction path.
  state.counters["snapshot_nodes_shared"] =
      static_cast<double>(stats.snapshot_nodes_shared);
  state.counters["snapshot_nodes_copied"] =
      static_cast<double>(stats.snapshot_nodes_copied);
  state.counters["checkpoint_delta_bytes"] =
      static_cast<double>(stats.checkpoint_delta_bytes);
  state.counters["mutex_evaluator_engaged"] =
      static_cast<double>(stats.mutex_evaluator_engaged);
}

// {logged, depth, K}. The logged flag is the FIRST arg on purpose: the
// sidecar comparator pairs names ending in /0 vs /1 as same-work twins,
// and a logged run's wal_records/wal_bytes legitimately differ from the
// unlogged run's zeros.
void BM_WalOverhead(benchmark::State& state) {
  RunWalOverhead(state, state.range(0) != 0);
}
BENCHMARK(BM_WalOverhead)
    ->Args({0, 4, 16})
    ->Args({1, 4, 16})
    ->Args({0, 4, 64})
    ->Args({1, 4, 64})
    ->Unit(benchmark::kMillisecond);

// One checkpoint frame, full vs delta: every iteration advances the epoch
// with a paused 2-update burst on chain 0 of an 8-chain view, then times
// ONE Checkpoint call. Mode 0 forces a full frame — serialize all 32
// predicates, the pre-delta format and cost. Mode 1 writes a delta
// against the previous frame's image: just the 4 chain-0 segments the
// burst dirtied, plus the order runs. The delta flag is the FIRST arg on
// purpose (the sidecar comparator pairs names ending in /0 vs /1 as
// same-work twins, and checkpoint_bytes legitimately differs); widths
// 16/64/256 keep the trailing arg out of twin territory. {delta, width}.
void BM_CheckpointWrite(benchmark::State& state) {
  const bool delta = state.range(0) != 0;
  int width = static_cast<int>(state.range(1));
  World w = World::Make();
  Program p = workload::MakeMultiChain(8, 4, width);
  FixpointOptions opts = DefaultOptions();
  View view = MustMaterialize(p, w.domains.get(), opts);
  const double view_atoms = static_cast<double>(view.size());

  std::ostringstream del, ins;
  for (int i = 0; i < 2; ++i) {
    del << "del c0_p0(X) <- X = " << i << ".\n";
    ins << "ins c0_p0(X) <- X = " << i << ".\n";
  }
  std::vector<maint::Update> del_burst = ParseBurstOrAbort(del.str(), &p);
  std::vector<maint::Update> ins_burst = ParseBurstOrAbort(ins.str(), &p);

  durability::MemFs fs;
  // Cadence off: the timed Checkpoint calls are the only frames. Create
  // wrote the initial full, so the first timed delta has a parent.
  auto log = durability::DurableLog::Create(&fs, "state", p, view,
                                            /*initial_epoch=*/1,
                                            /*ext_counter=*/0, {});
  if (!log.ok()) std::abort();

  bool deleting = true;
  int64_t frames = 0;
  for (auto _ : state) {
    state.PauseTiming();
    if (delta && ++frames % 64 == 0) {
      // A paused full keeps retention GC's directory scan bounded (GC
      // runs after every frame; an ever-growing delta chain would bleed
      // List() cost into the timed region). BEFORE the burst, so the
      // timed frame below still sees an advanced epoch and stays a delta.
      Status full = (*log)->Checkpoint(
          view, durability::DurableLog::CheckpointKind::kFull);
      if (!full.ok()) state.SkipWithError(full.ToString().c_str());
    }
    const std::vector<maint::Update>& burst = deleting ? del_burst
                                                       : ins_burst;
    deleting = !deleting;
    Status s = maint::ApplyBatch(p, &view, burst, w.domains.get(), opts,
                                 nullptr, (*log)->ext_counter(), nullptr,
                                 log->get());
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    state.ResumeTiming();
    s = (*log)->Checkpoint(
        view, delta ? durability::DurableLog::CheckpointKind::kDelta
                    : durability::DurableLog::CheckpointKind::kFull);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.counters["view_atoms"] = view_atoms;
  state.counters["checkpoint_bytes"] =
      static_cast<double>((*log)->last_checkpoint_bytes());
  state.counters["delta_checkpoints"] =
      static_cast<double>((*log)->delta_checkpoints_written());
}
BENCHMARK(BM_CheckpointWrite)
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({0, 256})
    ->Args({1, 256})
    ->Unit(benchmark::kMillisecond);

// Cold-start recovery vs view size and WAL tail: build a state directory
// (initial checkpoint of a width-wide chain view + `tail` committed bursts
// of 4 updates each, cadence off so the tail really is replayed), then
// measure DurableLog::Recover — checkpoint validation, view
// deserialization and ApplyBatch replay of the tail.
void BM_RecoverColdStart(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  int tail = static_cast<int>(state.range(1));
  World w = World::Make();
  Program p = workload::MakeChain(4, width);
  FixpointOptions opts = DefaultOptions();
  View view = MustMaterialize(p, w.domains.get(), opts);

  durability::MemFs fs;
  SnapshotStore snapshots;
  snapshots.Publish(view);
  {
    auto log = durability::DurableLog::Create(
        &fs, "state", p, view, snapshots.epoch(), /*ext_counter=*/0, {});
    if (!log.ok()) std::abort();
    for (int g = 0; g < tail; ++g) {
      std::vector<maint::Update> burst =
          ParseBurstOrAbort(InsertBurstText(4, width, g), &p);
      Status s = maint::ApplyBatch(p, &view, burst, w.domains.get(), opts,
                                   nullptr, (*log)->ext_counter(),
                                   &snapshots, log->get());
      if (!s.ok()) std::abort();
    }
  }

  // Recovery never mutates a clean MemFs image (no torn tail to truncate,
  // no orphan tmp), so re-recovering the same directory is idempotent.
  durability::RecoveryInfo info;
  View recovered;
  for (auto _ : state) {
    SnapshotStore rec_snapshots;
    auto rec = durability::DurableLog::Recover(&fs, "state", &p,
                                               w.domains.get(), opts,
                                               &rec_snapshots, &info);
    if (!rec.ok()) {
      state.SkipWithError(rec.status().ToString().c_str());
      break;
    }
    recovered = (*rec)->TakeRecoveredView();
    benchmark::DoNotOptimize(recovered.size());
  }
  state.counters["view_atoms"] = static_cast<double>(recovered.size());
  state.counters["replayed"] = static_cast<double>(info.replayed_bursts);
  state.counters["replay_added"] =
      static_cast<double>(info.replay_stats.insertion_pass_atoms);
  state.counters["checkpoint_epoch"] =
      static_cast<double>(info.checkpoint_epoch);
  state.counters["delta_checkpoints_composed"] =
      static_cast<double>(info.delta_checkpoints_composed);
  state.counters["checkpoint_delta_bytes"] =
      static_cast<double>(info.checkpoint_delta_bytes);
}
// {width, tail}: tail 0 isolates checkpoint load; tail 8 adds replay.
BENCHMARK(BM_RecoverColdStart)
    ->Args({16, 0})
    ->Args({64, 0})
    ->Args({256, 0})
    ->Args({16, 8})
    ->Args({64, 8})
    ->Args({256, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mmv
