// E2 — where does Extended DRed spend its time? (the motivation for StDel:
// "the important advantage of the new algorithm is the elimination of the
// expensive rederivation step").
//
// Reports per-phase milliseconds (P_OUT unfolding / overestimate /
// rederivation) as counters. Expected shape: rederive_ms dominates as the
// view grows, especially on diamonds where overdeleted atoms have
// alternative proofs to re-derive.

#include "bench_util.h"

namespace mmv {
namespace bench {
namespace {

void BM_DRed_Phases_Chain(benchmark::State& state) {
  World w = World::Make();
  Program p = workload::MakeChain(static_cast<int>(state.range(0)),
                                  static_cast<int>(state.range(1)));
  FixpointOptions opts = SetSemantics();
  View base = MustMaterialize(p, w.domains.get(), opts);
  maint::UpdateAtom req = workload::DeleteFactRequest(p, 0);

  double unfold = 0, over = 0, rederive = 0;
  int64_t iters = 0;
  for (auto _ : state) {
    maint::DRedStats stats;
    Result<View> v =
        maint::DeleteDRed(p, base, req, w.domains.get(), opts, &stats);
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    unfold += stats.unfold_ms;
    over += stats.overestimate_ms;
    rederive += stats.rederive_ms;
    ++iters;
  }
  state.counters["unfold_ms"] = unfold / static_cast<double>(iters);
  state.counters["overestimate_ms"] = over / static_cast<double>(iters);
  state.counters["rederive_ms"] = rederive / static_cast<double>(iters);
  state.counters["rederive_share"] =
      rederive / std::max(1e-9, unfold + over + rederive);
}

void BM_DRed_Phases_Diamond(benchmark::State& state) {
  World w = World::Make();
  Program p = workload::MakeDiamond(static_cast<int>(state.range(0)),
                                    static_cast<int>(state.range(1)));
  FixpointOptions opts = SetSemantics();
  View base = MustMaterialize(p, w.domains.get(), opts);
  // Delete a derived atom so the overdeleted suffix must be re-derived
  // through the surviving r-branch.
  Program* pp = &p;
  auto parsed = parser::ParseConstrainedAtom("l(X) <- X = 0.", pp);
  maint::UpdateAtom req{parsed->pred, parsed->args, parsed->constraint};

  double unfold = 0, over = 0, rederive = 0;
  int64_t iters = 0;
  for (auto _ : state) {
    maint::DRedStats stats;
    Result<View> v =
        maint::DeleteDRed(p, base, req, w.domains.get(), opts, &stats);
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    unfold += stats.unfold_ms;
    over += stats.overestimate_ms;
    rederive += stats.rederive_ms;
    ++iters;
  }
  state.counters["unfold_ms"] = unfold / static_cast<double>(iters);
  state.counters["overestimate_ms"] = over / static_cast<double>(iters);
  state.counters["rederive_ms"] = rederive / static_cast<double>(iters);
  state.counters["rederive_share"] =
      rederive / std::max(1e-9, unfold + over + rederive);
}

BENCHMARK(BM_DRed_Phases_Chain)
    ->Args({8, 8})
    ->Args({16, 16})
    ->Args({24, 32})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DRed_Phases_Diamond)
    ->Args({4, 8})
    ->Args({8, 16})
    ->Args({12, 24})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mmv
