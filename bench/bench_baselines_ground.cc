// E5 — the ground baselines the paper improves on: ground DRed [22] and the
// counting algorithm [21], on ground Datalog twins of the workloads.
//
// Expected shape: counting wins on non-recursive programs (no rederivation,
// O(delta) decrement joins) but REJECTS recursive programs outright — the
// limitation the paper's StDel removes. Ground DRed handles recursion but
// pays overdelete + rederive.

#include "bench_util.h"

#include "datalog/counting.h"
#include "datalog/dred_ground.h"

namespace mmv {
namespace bench {
namespace {

using datalog::CountingView;
using datalog::Database;
using datalog::Evaluate;
using datalog::GProgram;
using datalog::GroundFact;

void BM_GroundDRed_Chain(benchmark::State& state) {
  GProgram p = workload::MakeGroundChain(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(1)));
  Database base = Evaluate(p);
  GroundFact victim{"p0", {Value(static_cast<int64_t>(0))}};

  datalog::GroundDRedStats stats;
  for (auto _ : state) {
    state.PauseTiming();
    Database db = base;
    state.ResumeTiming();
    datalog::DeleteFactsDRed(p, &db, {victim}, &stats);
  }
  state.counters["tuples"] = static_cast<double>(base.size());
  state.counters["overdeleted"] = static_cast<double>(stats.overdeleted);
  state.counters["rederived"] = static_cast<double>(stats.rederived);
}

void BM_GroundDRed_Diamond(benchmark::State& state) {
  GProgram p = workload::MakeGroundDiamond(static_cast<int>(state.range(0)),
                                           static_cast<int>(state.range(1)));
  Database base = Evaluate(p);
  GroundFact victim{"b", {Value(static_cast<int64_t>(0))}};

  datalog::GroundDRedStats stats;
  for (auto _ : state) {
    state.PauseTiming();
    Database db = base;
    state.ResumeTiming();
    datalog::DeleteFactsDRed(p, &db, {victim}, &stats);
  }
  state.counters["tuples"] = static_cast<double>(base.size());
  state.counters["rederive_derivs"] =
      static_cast<double>(stats.rederive_derivations);
}

void BM_GroundDRed_TC(benchmark::State& state) {
  GProgram p = workload::MakeGroundTC(
      workload::ChainEdges(static_cast<int>(state.range(0))));
  Database base = Evaluate(p);
  GroundFact victim{"e",
                    {Value(static_cast<int64_t>(1)),
                     Value(static_cast<int64_t>(2))}};

  for (auto _ : state) {
    state.PauseTiming();
    Database db = base;
    state.ResumeTiming();
    datalog::DeleteFactsDRed(p, &db, {victim});
  }
  state.counters["tuples"] = static_cast<double>(base.size());
}

void BM_Counting_Chain(benchmark::State& state) {
  GProgram p = workload::MakeGroundChain(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(1)));
  Result<CountingView> base = CountingView::Build(p);
  if (!base.ok()) {
    state.SkipWithError("counting rejected program");
    return;
  }
  GroundFact victim{"p0", {Value(static_cast<int64_t>(0))}};

  datalog::CountingStats stats;
  for (auto _ : state) {
    state.PauseTiming();
    CountingView v = *base;
    state.ResumeTiming();
    Status s = v.DeleteFacts({victim}, &stats);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.counters["tuples"] = static_cast<double>(base->db().size());
  state.counters["delta_derivs"] =
      static_cast<double>(stats.delta_derivations);
}

void BM_Counting_Diamond(benchmark::State& state) {
  GProgram p = workload::MakeGroundDiamond(static_cast<int>(state.range(0)),
                                           static_cast<int>(state.range(1)));
  Result<CountingView> base = CountingView::Build(p);
  if (!base.ok()) {
    state.SkipWithError("counting rejected program");
    return;
  }
  GroundFact victim{"b", {Value(static_cast<int64_t>(0))}};

  for (auto _ : state) {
    state.PauseTiming();
    CountingView v = *base;
    state.ResumeTiming();
    (void)v.DeleteFacts({victim});
  }
  state.counters["tuples"] = static_cast<double>(base->db().size());
}

// Counting on recursion: demonstrates the rejection (the paper's
// "infinite counts" limitation). Times the *rejection check* only.
void BM_Counting_TC_Rejected(benchmark::State& state) {
  GProgram p = workload::MakeGroundTC(
      workload::ChainEdges(static_cast<int>(state.range(0))));
  int64_t rejected = 0;
  for (auto _ : state) {
    Result<CountingView> v = CountingView::Build(p);
    if (!v.ok()) ++rejected;
  }
  state.counters["rejected"] = static_cast<double>(rejected);
}

BENCHMARK(BM_GroundDRed_Chain)
    ->Args({16, 64})
    ->Args({32, 256})
    ->Args({64, 512})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GroundDRed_Diamond)
    ->Args({8, 64})
    ->Args({16, 256})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GroundDRed_TC)->Arg(16)->Arg(32)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_Counting_Chain)
    ->Args({16, 64})
    ->Args({32, 256})
    ->Args({64, 512})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Counting_Diamond)
    ->Args({8, 64})
    ->Args({16, 256})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Counting_TC_Rejected)->Arg(16)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace mmv
