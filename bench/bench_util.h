// Shared helpers for the benchmark suite. Each bench binary regenerates one
// experiment of EXPERIMENTS.md (E1-E8).

#ifndef MMV_BENCH_BENCH_UTIL_H_
#define MMV_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <memory>

#include "domain/registry.h"
#include "maintenance/dred_constrained.h"
#include "maintenance/insert.h"
#include "maintenance/recompute.h"
#include "maintenance/rewrite.h"
#include "maintenance/stdel.h"
#include "parser/parser.h"
#include "query/query.h"
#include "workload/generators.h"

namespace mmv {
namespace bench {

/// \brief Catalog + standard domains for a benchmark.
struct World {
  std::unique_ptr<rel::Catalog> catalog;
  std::unique_ptr<dom::DomainManager> domains;
  dom::StandardDomains handles;

  static World Make() {
    World w;
    w.catalog = std::make_unique<rel::Catalog>();
    w.domains = std::make_unique<dom::DomainManager>(&w.catalog->clock());
    auto h = dom::RegisterStandardDomains(w.domains.get(), w.catalog.get());
    if (!h.ok()) std::abort();
    w.handles = *h;
    return w;
  }
};

/// \brief Materializes or aborts (benchmark setup only).
inline View MustMaterialize(const Program& p, DcaEvaluator* eval,
                            const FixpointOptions& opts = {}) {
  Result<View> v = Materialize(p, eval, opts);
  if (!v.ok()) std::abort();
  return std::move(*v);
}

inline FixpointOptions SetSemantics() {
  FixpointOptions o;
  o.semantics = DupSemantics::kSet;
  return o;
}

}  // namespace bench
}  // namespace mmv

#endif  // MMV_BENCH_BENCH_UTIL_H_
