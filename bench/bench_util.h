// Shared helpers for the benchmark suite. Each bench binary regenerates one
// experiment of EXPERIMENTS.md (E1-E8).

#ifndef MMV_BENCH_BENCH_UTIL_H_
#define MMV_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string_view>
#include <thread>

#include "domain/registry.h"
#include "maintenance/dred_constrained.h"
#include "maintenance/insert.h"
#include "maintenance/recompute.h"
#include "maintenance/rewrite.h"
#include "maintenance/stdel.h"
#include "parser/parser.h"
#include "query/query.h"
#include "workload/generators.h"

namespace mmv {
namespace bench {

/// \brief Catalog + standard domains for a benchmark.
struct World {
  std::unique_ptr<rel::Catalog> catalog;
  std::unique_ptr<dom::DomainManager> domains;
  dom::StandardDomains handles;

  static World Make() {
    World w;
    w.catalog = std::make_unique<rel::Catalog>();
    w.domains = std::make_unique<dom::DomainManager>(&w.catalog->clock());
    auto h = dom::RegisterStandardDomains(w.domains.get(), w.catalog.get());
    if (!h.ok()) std::abort();
    w.handles = *h;
    return w;
  }
};

/// \brief Join mode selected by $MMV_JOIN_MODE ("naive" = the oracle join,
/// "indexed" or unset = the default). Lets CI run a whole bench binary
/// under each mode and diff the derived atom counters. Unknown values
/// ABORT the binary — a typo must not silently benchmark the wrong engine.
inline JoinMode EnvJoinMode() {
  Result<JoinMode> mode = JoinModeFromEnv();
  if (!mode.ok()) {
    std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
    std::abort();
  }
  return *mode;
}

/// \brief Plan mode selected by $MMV_PLAN_MODE ("declared" = written body
/// order / plan-off baseline, "ordered" or unset = selectivity-ordered
/// plans). Unknown values abort, as for EnvJoinMode.
inline plan::PlanMode EnvPlanMode() {
  Result<plan::PlanMode> mode = PlanModeFromEnv();
  if (!mode.ok()) {
    std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
    std::abort();
  }
  return *mode;
}

/// \brief Thread count selected by $MMV_THREADS (unset = 1, the sequential
/// engine). Lets CI run a whole bench binary single- and multi-threaded
/// and diff the derived-atom counters. Unknown values abort, as for
/// EnvJoinMode.
inline int EnvThreads() {
  Result<int> threads = ThreadsFromEnv();
  if (!threads.ok()) {
    std::fprintf(stderr, "%s\n", threads.status().ToString().c_str());
    std::abort();
  }
  return *threads;
}

/// \brief Solver fast path selected by $MMV_SOLVER_FASTPATH ("off" = the
/// full-procedure oracle, "on" or unset = the default). Lets CI run a
/// whole bench binary under each mode and diff the work-product counters.
/// Unknown values abort, as for EnvJoinMode.
inline bool EnvSolverFastpath() {
  Result<bool> fastpath = SolverFastpathFromEnv();
  if (!fastpath.ok()) {
    std::fprintf(stderr, "%s\n", fastpath.status().ToString().c_str());
    std::abort();
  }
  return *fastpath;
}

/// \brief Baseline options for benchmarks: default fixpoint knobs with the
/// join / plan modes, thread count and solver fast path taken from the
/// environment.
inline FixpointOptions DefaultOptions() {
  FixpointOptions o;
  o.join_mode = EnvJoinMode();
  o.plan_mode = EnvPlanMode();
  o.num_threads = EnvThreads();
  o.solver.fastpath = EnvSolverFastpath();
  return o;
}

/// \brief Thread count from a benchmark range arg for thread-paired cases:
/// 0 = sequential (1 thread), 1 = every hardware thread. Pinned per case,
/// so the .../0 vs .../1 twins within one sidecar diff the parallel engine
/// against the sequential one whatever the environment says.
inline int ThreadsArg(int64_t arg) {
  if (arg == 0) return 1;
  unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::max(2u, hw));
}

/// \brief Join mode from a benchmark range arg (0 = naive, 1 = indexed),
/// for cases that pin the mode per-case instead of per-process.
inline JoinMode ModeArg(int64_t arg) {
  return arg == 0 ? JoinMode::kNaive : JoinMode::kIndexed;
}

/// \brief Plan mode from a benchmark range arg (0 = declared / plan-off,
/// 1 = ordered), for mode-paired plan cases.
inline plan::PlanMode PlanModeArg(int64_t arg) {
  return arg == 0 ? plan::PlanMode::kDeclared : plan::PlanMode::kOrdered;
}

/// \brief Materializes or aborts (benchmark setup only).
inline View MustMaterialize(const Program& p, DcaEvaluator* eval,
                            const FixpointOptions& opts = {}) {
  Result<View> v = Materialize(p, eval, opts);
  if (!v.ok()) std::abort();
  return std::move(*v);
}

inline FixpointOptions SetSemantics() {
  FixpointOptions o = DefaultOptions();
  o.semantics = DupSemantics::kSet;
  return o;
}

/// \brief Exports the join-pipeline counters of a fixpoint run.
inline void ExportJoinCounters(benchmark::State& state,
                               const FixpointStats& stats) {
  state.counters["index_probes"] = static_cast<double>(stats.index_probes);
  state.counters["ground_rejects"] =
      static_cast<double>(stats.ground_rejects);
  state.counters["rename_skipped"] =
      static_cast<double>(stats.rename_skipped);
  state.counters["solver_cache_hits"] =
      static_cast<double>(stats.solver.cache_hits);
  state.counters["plan_reorders"] =
      static_cast<double>(stats.plan_reorders);
  state.counters["probe_intersections"] =
      static_cast<double>(stats.probe_intersections);
  state.counters["plan_cache_hits"] =
      static_cast<double>(stats.plan_cache_hits);
  // Solver fast-path counters: strategy counters like solver_cache_hits —
  // never compared across modes (a fastpath=off replay has all three at
  // zero by construction; naive/indexed differ through DerivePlanned's
  // bypass). Exported so a solver-bound case shows its sat_rejects > 0.
  state.counters["sat_prechecks"] =
      static_cast<double>(stats.solver.sat_prechecks);
  state.counters["sat_rejects"] =
      static_cast<double>(stats.solver.sat_rejects);
  state.counters["reject_cache_hits"] =
      static_cast<double>(stats.solver.reject_cache_hits);
  // Fan-out shape counters: thread-count-DEPENDENT by design, so sidecar
  // diffs across thread counts must not compare them (see
  // scripts/compare_bench_modes.py) — they are exported to show how much
  // partitioning a run actually did.
  state.counters["partitions_run"] =
      static_cast<double>(stats.partitions_run);
  state.counters["partition_skipped_small"] =
      static_cast<double>(stats.partition_skipped_small);
  state.counters["evaluator_clones"] =
      static_cast<double>(stats.evaluator_clones);
}

}  // namespace bench
}  // namespace mmv

#endif  // MMV_BENCH_BENCH_UTIL_H_
