// Shared helpers for the benchmark suite. Each bench binary regenerates one
// experiment of EXPERIMENTS.md (E1-E8).

#ifndef MMV_BENCH_BENCH_UTIL_H_
#define MMV_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string_view>

#include "domain/registry.h"
#include "maintenance/dred_constrained.h"
#include "maintenance/insert.h"
#include "maintenance/recompute.h"
#include "maintenance/rewrite.h"
#include "maintenance/stdel.h"
#include "parser/parser.h"
#include "query/query.h"
#include "workload/generators.h"

namespace mmv {
namespace bench {

/// \brief Catalog + standard domains for a benchmark.
struct World {
  std::unique_ptr<rel::Catalog> catalog;
  std::unique_ptr<dom::DomainManager> domains;
  dom::StandardDomains handles;

  static World Make() {
    World w;
    w.catalog = std::make_unique<rel::Catalog>();
    w.domains = std::make_unique<dom::DomainManager>(&w.catalog->clock());
    auto h = dom::RegisterStandardDomains(w.domains.get(), w.catalog.get());
    if (!h.ok()) std::abort();
    w.handles = *h;
    return w;
  }
};

/// \brief Join mode selected by $MMV_JOIN_MODE ("naive" forces the oracle
/// join; anything else — including unset — keeps the default kIndexed).
/// Lets CI run a whole bench binary under each mode and diff the derived
/// atom counters.
inline JoinMode EnvJoinMode() {
  const char* mode = std::getenv("MMV_JOIN_MODE");
  return (mode && std::string_view(mode) == "naive") ? JoinMode::kNaive
                                                     : JoinMode::kIndexed;
}

/// \brief Baseline options for benchmarks: default fixpoint knobs with the
/// join mode taken from the environment.
inline FixpointOptions DefaultOptions() {
  FixpointOptions o;
  o.join_mode = EnvJoinMode();
  return o;
}

/// \brief Join mode from a benchmark range arg (0 = naive, 1 = indexed),
/// for cases that pin the mode per-case instead of per-process.
inline JoinMode ModeArg(int64_t arg) {
  return arg == 0 ? JoinMode::kNaive : JoinMode::kIndexed;
}

/// \brief Materializes or aborts (benchmark setup only).
inline View MustMaterialize(const Program& p, DcaEvaluator* eval,
                            const FixpointOptions& opts = {}) {
  Result<View> v = Materialize(p, eval, opts);
  if (!v.ok()) std::abort();
  return std::move(*v);
}

inline FixpointOptions SetSemantics() {
  FixpointOptions o = DefaultOptions();
  o.semantics = DupSemantics::kSet;
  return o;
}

/// \brief Exports the join-pipeline counters of a fixpoint run.
inline void ExportJoinCounters(benchmark::State& state,
                               const FixpointStats& stats) {
  state.counters["index_probes"] = static_cast<double>(stats.index_probes);
  state.counters["ground_rejects"] =
      static_cast<double>(stats.ground_rejects);
  state.counters["rename_skipped"] =
      static_cast<double>(stats.rename_skipped);
  state.counters["solver_cache_hits"] =
      static_cast<double>(stats.solver.cache_hits);
}

}  // namespace bench
}  // namespace mmv

#endif  // MMV_BENCH_BENCH_UTIL_H_
