// E6 — what do supports cost? (StDel's prerequisite is a support per atom;
// the paper claims this bookkeeping is cheap.)
//
// Compares materialization under duplicate semantics (supports meaningful,
// one atom per derivation) against set semantics (canonical dedup), and
// reports per-view byte and atom counts. Expected shape: supports add a
// small constant per atom; the duplicate/set atom-count gap depends on the
// workload's proof redundancy (1x on chains, ~2x on diamonds).

#include "bench_util.h"

namespace mmv {
namespace bench {
namespace {

void BM_Materialize_DuplicateSemantics(benchmark::State& state) {
  World w = World::Make();
  Program p = workload::MakeDiamond(static_cast<int>(state.range(0)),
                                    static_cast<int>(state.range(1)));
  View last;
  for (auto _ : state) {
    last = MustMaterialize(p, w.domains.get());
    benchmark::DoNotOptimize(last.size());
  }
  state.counters["atoms"] = static_cast<double>(last.size());
  state.counters["bytes"] = static_cast<double>(last.ApproxBytes());
  size_t support_nodes = 0;
  for (const ViewAtom& a : last.atoms()) {
    support_nodes += a.support.NodeCount();
  }
  state.counters["support_nodes"] = static_cast<double>(support_nodes);
}

void BM_Materialize_SetSemantics(benchmark::State& state) {
  World w = World::Make();
  Program p = workload::MakeDiamond(static_cast<int>(state.range(0)),
                                    static_cast<int>(state.range(1)));
  View last;
  for (auto _ : state) {
    last = MustMaterialize(p, w.domains.get(), SetSemantics());
    benchmark::DoNotOptimize(last.size());
  }
  state.counters["atoms"] = static_cast<double>(last.size());
  state.counters["bytes"] = static_cast<double>(last.ApproxBytes());
}

void BM_SupportIndexBuild(benchmark::State& state) {
  // The per-deletion cost of building StDel's support indexes, isolated.
  World w = World::Make();
  Program p = workload::MakeChain(static_cast<int>(state.range(0)),
                                  static_cast<int>(state.range(1)));
  View view = MustMaterialize(p, w.domains.get());

  for (auto _ : state) {
    std::unordered_multimap<size_t, size_t> by_support;
    std::unordered_multimap<size_t, std::pair<size_t, size_t>> child_index;
    for (size_t i = 0; i < view.atoms().size(); ++i) {
      const Support& s = view.atoms()[i].support;
      by_support.emplace(s.Hash(), i);
      for (size_t k = 0; k < s.children().size(); ++k) {
        child_index.emplace(s.children()[k].Hash(), std::make_pair(i, k));
      }
    }
    benchmark::DoNotOptimize(by_support.size());
    benchmark::DoNotOptimize(child_index.size());
  }
  state.counters["atoms"] = static_cast<double>(view.size());
}

void Sizes(benchmark::internal::Benchmark* b) {
  b->Args({4, 16})->Args({8, 32})->Args({16, 64})->Unit(
      benchmark::kMillisecond);
}

BENCHMARK(BM_Materialize_DuplicateSemantics)->Apply(Sizes);
BENCHMARK(BM_Materialize_SetSemantics)->Apply(Sizes);
BENCHMARK(BM_SupportIndexBuild)->Apply(Sizes);

}  // namespace
}  // namespace bench
}  // namespace mmv
