// E6 — what do supports cost? (StDel's prerequisite is a support per atom;
// the paper claims this bookkeeping is cheap.)
//
// Compares materialization under duplicate semantics (supports meaningful,
// one atom per derivation) against set semantics (canonical dedup), and
// reports per-view byte and atom counts. Expected shape: supports add a
// small constant per atom; the duplicate/set atom-count gap depends on the
// workload's proof redundancy (1x on chains, ~2x on diamonds).

#include "bench_util.h"

namespace mmv {
namespace bench {
namespace {

void BM_Materialize_DuplicateSemantics(benchmark::State& state) {
  World w = World::Make();
  Program p = workload::MakeDiamond(static_cast<int>(state.range(0)),
                                    static_cast<int>(state.range(1)));
  View last;
  for (auto _ : state) {
    last = MustMaterialize(p, w.domains.get());
    benchmark::DoNotOptimize(last.size());
  }
  state.counters["atoms"] = static_cast<double>(last.size());
  state.counters["bytes"] = static_cast<double>(last.ApproxBytes());
  size_t support_nodes = 0;
  for (const ViewAtom& a : last.atoms()) {
    support_nodes += a.support.NodeCount();
  }
  state.counters["support_nodes"] = static_cast<double>(support_nodes);
}

void BM_Materialize_SetSemantics(benchmark::State& state) {
  World w = World::Make();
  Program p = workload::MakeDiamond(static_cast<int>(state.range(0)),
                                    static_cast<int>(state.range(1)));
  View last;
  for (auto _ : state) {
    last = MustMaterialize(p, w.domains.get(), SetSemantics());
    benchmark::DoNotOptimize(last.size());
  }
  state.counters["atoms"] = static_cast<double>(last.size());
  state.counters["bytes"] = static_cast<double>(last.ApproxBytes());
}

void BM_SupportIndexProbe(benchmark::State& state) {
  // StDel's per-deletion support lookups against the view's maintained
  // indexes (formerly an O(|view|) rebuild per deletion call).
  World w = World::Make();
  Program p = workload::MakeChain(static_cast<int>(state.range(0)),
                                  static_cast<int>(state.range(1)));
  View view = MustMaterialize(p, w.domains.get());

  for (auto _ : state) {
    size_t hits = 0;
    for (const ViewAtom& a : view.atoms()) {
      hits += view.HasSupport(a.support) ? 1 : 0;
      hits += view.ParentsOfChildSupport(a.support).size();
    }
    benchmark::DoNotOptimize(hits);
  }
  View::IndexStats idx = view.index_stats();
  state.counters["atoms"] = static_cast<double>(view.size());
  state.counters["index_support_entries"] =
      static_cast<double>(idx.support_entries);
  state.counters["index_child_entries"] =
      static_cast<double>(idx.child_entries);
}

void Sizes(benchmark::internal::Benchmark* b) {
  b->Args({4, 16})->Args({8, 32})->Args({16, 64})->Unit(
      benchmark::kMillisecond);
}

BENCHMARK(BM_Materialize_DuplicateSemantics)->Apply(Sizes);
BENCHMARK(BM_Materialize_SetSemantics)->Apply(Sizes);
BENCHMARK(BM_SupportIndexProbe)->Apply(Sizes);

}  // namespace
}  // namespace bench
}  // namespace mmv
