// Shared main for every bench binary: the standard console table plus a
// machine-readable JSON sidecar (one object per benchmark case) so
// BENCH_*.json trajectories can be recorded across commits.
//
// Sidecar path: $MMV_BENCH_JSON when set ("0" / "off" / empty disables);
// otherwise BENCH_<binary>.json in the working directory.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/fixpoint.h"

namespace mmv {
namespace bench {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

// Console reporter that also appends one JSON object per run to a sidecar
// file: {"name", "real_ms", "cpu_ms", "iterations", "counters": {...}}.
class JsonSidecarReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonSidecarReporter(const std::string& path) : out_(path) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    if (!out_.is_open()) return;
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      double iters = run.iterations > 0
                         ? static_cast<double>(run.iterations)
                         : 1.0;
      out_ << "{\"name\": \"" << JsonEscape(run.benchmark_name())
           << "\", \"real_ms\": " << run.real_accumulated_time / iters * 1e3
           << ", \"cpu_ms\": " << run.cpu_accumulated_time / iters * 1e3
           << ", \"iterations\": " << run.iterations << ", \"counters\": {";
      bool first = true;
      for (const auto& [name, counter] : run.counters) {
        if (!first) out_ << ", ";
        out_ << '"' << JsonEscape(name) << "\": " << counter.value;
        first = false;
      }
      out_ << "}}\n";
    }
    out_.flush();
  }

 private:
  std::ofstream out_;
};

std::string SidecarPath(const char* argv0) {
  if (const char* env = std::getenv("MMV_BENCH_JSON")) {
    std::string v = env;
    if (v.empty() || v == "0" || v == "off") return "";
    return v;
  }
  std::string base = argv0 ? argv0 : "bench";
  size_t slash = base.find_last_of('/');
  if (slash != std::string::npos) base = base.substr(slash + 1);
  return "BENCH_" + base + ".json";
}

}  // namespace
}  // namespace bench
}  // namespace mmv

int main(int argc, char** argv) {
  // Validate the engine-mode environment up front: an unknown value must
  // fail the whole run loudly, not silently benchmark the default engine.
  if (mmv::Result<mmv::JoinMode> mode = mmv::JoinModeFromEnv(); !mode.ok()) {
    std::cerr << mode.status().ToString() << "\n";
    return 1;
  }
  if (mmv::Result<mmv::plan::PlanMode> mode = mmv::PlanModeFromEnv();
      !mode.ok()) {
    std::cerr << mode.status().ToString() << "\n";
    return 1;
  }
  if (mmv::Result<int> threads = mmv::ThreadsFromEnv(); !threads.ok()) {
    std::cerr << threads.status().ToString() << "\n";
    return 1;
  }
  if (mmv::Result<bool> fastpath = mmv::SolverFastpathFromEnv();
      !fastpath.ok()) {
    std::cerr << fastpath.status().ToString() << "\n";
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  std::string path = mmv::bench::SidecarPath(argc > 0 ? argv[0] : nullptr);
  if (path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    mmv::bench::JsonSidecarReporter reporter(path);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  benchmark::Shutdown();
  return 0;
}
