#!/usr/bin/env python3
"""Diffs the derived-atom counters of two or more bench JSON sidecars.

Usage: compare_bench_modes.py [--require-zero COUNTER ...]
           [--require-nonzero COUNTER ...]
           REFERENCE.json OTHER.json [OTHER2.json ...]

Each input is the JSONL sidecar a bench binary writes (one object per case:
name, real_ms, counters). The indexed join pipeline must derive EXACTLY the
atom counts the naive oracle derives, the selectivity-ordered plan executor
exactly what the declared-order (plan-off) executor derives, and the
parallel-strata engine (MMV_THREADS=8 sidecar vs MMV_THREADS=1 sidecar)
exactly what the sequential engine derives — so for every case present in
both files the work-product counters must match bit-for-bit. The first
file is the reference; every other file is diffed against it. Timing
fields are ignored. Exits non-zero on any mismatch, and when nothing
comparable was found (a silently empty comparison would defeat the check).

--require-zero COUNTER (repeatable) additionally asserts the named counter
is zero in EVERY case of EVERY sidecar that reports it — the CI gate for
invariants like mutex_evaluator_engaged, which must never fire now that
the standard domains evaluate thread-safely. A required-zero counter that
no sidecar reports fails too: a filter change silently dropping the
guarded cases would otherwise defeat the gate.

--require-nonzero COUNTER (repeatable) asserts the named counter is
NONZERO in at least one case of at least one sidecar — the CI gate for
"this machinery actually engaged" invariants like sat_rejects: the solver
fast path must refute something on a solver-bound workload, or the whole
tier is dead code. A counter that never appears fails for the same
filter-drift reason as --require-zero.
"""

import json
import sys

# Counters that describe the derived work product (not the strategy).
# Strategy-dependent counters (probes, rejects, derivation attempts, plan
# reorders/intersections/cache and memo hits, thread counts) are
# deliberately excluded: the indexed join legitimately attempts fewer
# derivations than the oracle, the ordered plans probe differently than the
# declared ones, and the parallel engine memoizes solver outcomes per task.
# The deletion-side counters (replacements, step3) are work product too:
# StDel's parallel step-3 must replace exactly what the sequential sweep
# replaces. The fan-out shape counters (partitions_run,
# partition_skipped_small, evaluator_clones) describe the parallel schedule
# itself — they scale with the thread count BY DESIGN, so a 1-vs-8 sidecar
# diff must leave them out; everything in COMPARED is a work-product
# invariant that byte-identity guarantees across thread counts.
# The solver fast-path counters (sat_prechecks, sat_rejects,
# reject_cache_hits) are strategy counters in every pairing this script
# sees: a MMV_SOLVER_FASTPATH=off replay has all three at zero by
# construction, the naive/indexed twins diverge through DerivePlanned's
# ground-tuple bypass (it skips the pre-join screen entirely), and a
# parallel run drops the rejection memo per slice. They are gated with
# --require-nonzero on solver-bound cases instead of compared.
COMPARED = (
    "atoms_added",
    "added",
    "view_atoms",
    "updates",
    "coalesced",
    "insertions",
    "replacements",
    "step3",
    "delete_passes",
    "insert_passes",
    # Snapshot publication is one epoch per clean batch regardless of the
    # join mode, plan mode or thread count; the reader-side counters
    # (snapshot_reads, reader_qps) are timing-dependent and stay excluded.
    "epochs_published",
    # Durability is a function of the burst text, not the engine: the WAL
    # record framing, the replayed-burst count and the checkpoint lineage
    # must be byte-for-byte identical whatever join/plan/thread mode
    # applied the bursts. wal_syncs is policy-driven (one per committed
    # batch under kEveryBatch), so it is an invariant too.
    "wal_records",
    "wal_bytes",
    "wal_syncs",
    "replayed",
    "replay_added",
    "checkpoint_epoch",
    # Copy-on-write publication is a function of the burst's dirty set,
    # not the engine: which per-pred segments an extraction shares vs
    # copies — and how many delta-frame bytes the checkpoint cadence
    # writes — must match across join/plan/thread modes. (The benches that
    # pit CoW against the deep-copy baseline put that mode flag FIRST, so
    # these never land in a /0-vs-/1 twin pair.)
    "snapshot_nodes_shared",
    "snapshot_nodes_copied",
    "checkpoint_delta_bytes",
)


def load(path):
    cases = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            name = obj["name"]
            # Manually-timed cases carry a reporting suffix; strip it so
            # the trailing mode arg stays comparable (".../0" vs ".../1").
            if name.endswith("/manual_time"):
                name = name[: -len("/manual_time")]
            cases[name] = obj.get("counters", {})
    return cases


def diff(failures, label, a, b):
    compared = 0
    for key in COMPARED:
        if key in a and key in b:
            compared += 1
            if a[key] != b[key]:
                failures.append(f"{label}: {key} {a[key]} != {b[key]}")
    return compared


def main():
    argv = sys.argv[1:]
    require_zero = []
    require_nonzero = []
    paths = []
    i = 0
    while i < len(argv):
        if argv[i] == "--require-zero":
            if i + 1 >= len(argv):
                sys.exit("--require-zero needs a counter name")
            require_zero.append(argv[i + 1])
            i += 2
        elif argv[i] == "--require-nonzero":
            if i + 1 >= len(argv):
                sys.exit("--require-nonzero needs a counter name")
            require_nonzero.append(argv[i + 1])
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if len(paths) < 2:
        sys.exit(__doc__)
    reference_path = paths[0]
    reference = load(reference_path)
    others = [(path, load(path)) for path in paths[1:]]
    compared = 0
    failures = []
    # Env-driven cases: same name across the reference and each other file.
    for path, cases in others:
        for name in sorted(set(reference) & set(cases)):
            compared += diff(
                failures, f"{name} [{reference_path} vs {path}]",
                reference[name], cases[name]
            )
    # Mode-paired cases pin their mode via a trailing arg and ignore the
    # environment, so the cross-file diff above compares them against
    # themselves; compare .../0 (naive join, or declared plan for the
    # plan-paired cases) against .../1 WITHIN each file instead.
    for path, cases in [(reference_path, reference)] + others:
        for name in sorted(cases):
            if not name.endswith("/0"):
                continue
            twin = name[:-2] + "/1"
            if twin in cases:
                compared += diff(
                    failures, f"{name} vs {twin} [{path}]",
                    cases[name], cases[twin]
                )
    # The zero gates: every sidecar, every case, no pairing involved.
    for counter in require_zero:
        seen = 0
        for path, cases in [(reference_path, reference)] + others:
            for name in sorted(cases):
                counters = cases[name]
                if counter in counters:
                    seen += 1
                    if counters[counter] != 0:
                        failures.append(
                            f"{name} [{path}]: {counter} ="
                            f" {counters[counter]} (required zero)"
                        )
        if seen == 0:
            failures.append(
                f"required-zero counter {counter!r} never appeared in any"
                " sidecar — check the bench filters"
            )
        compared += seen
    # The nonzero gates: the counter must appear AND fire somewhere.
    for counter in require_nonzero:
        seen = 0
        fired = 0
        for path, cases in [(reference_path, reference)] + others:
            for name in sorted(cases):
                counters = cases[name]
                if counter in counters:
                    seen += 1
                    if counters[counter] != 0:
                        fired += 1
        if seen == 0:
            failures.append(
                f"required-nonzero counter {counter!r} never appeared in"
                " any sidecar — check the bench filters"
            )
        elif fired == 0:
            failures.append(
                f"required-nonzero counter {counter!r} is zero in all"
                f" {seen} cases reporting it — the guarded machinery never"
                " engaged"
            )
        compared += seen
    if failures:
        print("mode counter mismatches:")
        print("\n".join(failures))
        sys.exit(1)
    if compared == 0:
        print("no comparable counters found — check the bench filters")
        sys.exit(1)
    print(f"OK: {compared} counters identical across modes")


if __name__ == "__main__":
    main()
