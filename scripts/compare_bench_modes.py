#!/usr/bin/env python3
"""Diffs the derived-atom counters of two bench JSON sidecars.

Usage: compare_bench_modes.py NAIVE.json INDEXED.json

Each input is the JSONL sidecar a bench binary writes (one object per case:
name, real_ms, counters). The indexed join pipeline must derive EXACTLY the
atom counts the naive oracle derives, so for every case present in both
files the work-product counters must match bit-for-bit. Timing fields are
ignored. Exits non-zero on any mismatch, and when nothing comparable was
found (a silently empty comparison would defeat the check).
"""

import json
import sys

# Counters that describe the derived work product (not the strategy).
# Strategy-dependent counters (probes, rejects, derivation attempts) are
# deliberately excluded: the indexed join legitimately attempts fewer
# derivations than the oracle.
COMPARED = (
    "atoms_added",
    "added",
    "view_atoms",
    "updates",
    "coalesced",
    "insertions",
)


def load(path):
    cases = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            cases[obj["name"]] = obj.get("counters", {})
    return cases


def diff(failures, label, a, b):
    compared = 0
    for key in COMPARED:
        if key in a and key in b:
            compared += 1
            if a[key] != b[key]:
                failures.append(f"{label}: {key} {a[key]} != {b[key]}")
    return compared


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    naive = load(sys.argv[1])
    indexed = load(sys.argv[2])
    compared = 0
    failures = []
    # Env-driven cases: same name across the two runs.
    for name in sorted(set(naive) & set(indexed)):
        compared += diff(failures, name, naive[name], indexed[name])
    # Mode-paired cases pin the join via their trailing arg and ignore
    # MMV_JOIN_MODE, so the cross-file diff above compares them against
    # themselves; compare .../0 (naive) against .../1 (indexed) WITHIN
    # each file instead.
    for cases in (naive, indexed):
        for name in sorted(cases):
            if not name.endswith("/0"):
                continue
            twin = name[:-2] + "/1"
            if twin in cases:
                compared += diff(
                    failures, f"{name} vs {twin}", cases[name], cases[twin]
                )
    if failures:
        print("join-mode counter mismatches:")
        print("\n".join(failures))
        sys.exit(1)
    if compared == 0:
        print("no comparable counters found — check the bench filters")
        sys.exit(1)
    print(f"OK: {compared} counters identical across join modes")


if __name__ == "__main__":
    main()
