// Unit tests for the ground Datalog engine and the DRed / counting
// baselines.

#include <gtest/gtest.h>

#include "datalog/counting.h"
#include "datalog/dred_ground.h"
#include "test_util.h"
#include "workload/generators.h"

namespace mmv {
namespace datalog {
namespace {

using testutil::Unwrap;

Value I(int64_t v) { return Value(v); }

TEST(GroundEngineTest, FactsAndSimpleRule) {
  GProgram p = workload::MakeGroundChain(2, 3);
  EvalStats stats;
  Database db = Evaluate(p, &stats);
  EXPECT_EQ(db.Rel("p0").size(), 3u);
  EXPECT_EQ(db.Rel("p1").size(), 3u);
  EXPECT_EQ(db.Rel("p2").size(), 3u);
  EXPECT_EQ(db.size(), 9u);
  EXPECT_GT(stats.rounds, 0);
}

TEST(GroundEngineTest, TransitiveClosure) {
  GProgram p = workload::MakeGroundTC(workload::ChainEdges(5));
  Database db = Evaluate(p);
  EXPECT_EQ(db.Rel("path").size(), 10u);
  EXPECT_TRUE(db.Contains("path", {I(0), I(4)}));
  EXPECT_FALSE(db.Contains("path", {I(4), I(0)}));
}

TEST(GroundEngineTest, CyclicTC) {
  auto edges = workload::ChainEdges(4);
  edges.emplace_back(3, 0);  // close the cycle
  GProgram p = workload::MakeGroundTC(edges);
  Database db = Evaluate(p);
  // Full closure on a 4-cycle: every ordered pair including self-loops.
  EXPECT_EQ(db.Rel("path").size(), 16u);
}

TEST(GroundEngineTest, JoinWithConstants) {
  GProgram p;
  p.AddFact({"e", {I(1), I(2)}});
  p.AddFact({"e", {I(2), I(3)}});
  GRule r;
  r.head = {"from1", {GTerm::Var(0)}};
  r.body = {{"e", {GTerm::Const(I(1)), GTerm::Var(0)}}};
  p.AddRule(r);
  Database db = Evaluate(p);
  EXPECT_EQ(db.Rel("from1").size(), 1u);
  EXPECT_TRUE(db.Contains("from1", {I(2)}));
}

TEST(GroundEngineTest, StratifyAndRecursionDetection) {
  GProgram tc = workload::MakeGroundTC(workload::ChainEdges(3));
  EXPECT_TRUE(tc.IsRecursive());
  EXPECT_FALSE(tc.Stratify().ok());

  GProgram chain = workload::MakeGroundChain(3, 1);
  EXPECT_FALSE(chain.IsRecursive());
  auto order = Unwrap(chain.Stratify());
  EXPECT_EQ(order, (std::vector<Symbol>{"p1", "p2", "p3"}));
}

TEST(GroundDRedTest, ChainDeletionPropagates) {
  GProgram p = workload::MakeGroundChain(3, 3);
  Database db = Evaluate(p);
  GroundDRedStats stats;
  DeleteFactsDRed(p, &db, {{"p0", {I(1)}}}, &stats);
  EXPECT_EQ(db.Rel("p0").size(), 2u);
  EXPECT_EQ(db.Rel("p3").size(), 2u);
  EXPECT_EQ(stats.overdeleted, 4u);  // one tuple per level
  EXPECT_EQ(stats.rederived, 0u);    // chains have single proofs
}

TEST(GroundDRedTest, DiamondRederives) {
  // m has two proofs (via l and via r); deleting nothing of b keeps m.
  GProgram p = workload::MakeGroundDiamond(1, 2);
  Database db = Evaluate(p);
  // Delete the *derived* l tuples' source: delete b(0): both proofs die.
  GroundDRedStats stats;
  DeleteFactsDRed(p, &db, {{"b", {I(0)}}}, &stats);
  EXPECT_FALSE(db.Contains("m", {I(0)}));
  EXPECT_TRUE(db.Contains("m", {I(1)}));
}

TEST(GroundDRedTest, AlternativeProofSurvives) {
  GProgram p;
  p.AddFact({"a", {I(1)}});
  p.AddFact({"b", {I(1)}});
  GRule r1;
  r1.head = {"c", {GTerm::Var(0)}};
  r1.body = {{"a", {GTerm::Var(0)}}};
  p.AddRule(r1);
  GRule r2;
  r2.head = {"c", {GTerm::Var(0)}};
  r2.body = {{"b", {GTerm::Var(0)}}};
  p.AddRule(r2);
  Database db = Evaluate(p);
  ASSERT_TRUE(db.Contains("c", {I(1)}));

  GroundDRedStats stats;
  DeleteFactsDRed(p, &db, {{"a", {I(1)}}}, &stats);
  // c(1) was overdeleted but rederived via b.
  EXPECT_TRUE(db.Contains("c", {I(1)}));
  EXPECT_EQ(stats.rederived, 1u);
}

TEST(GroundDRedTest, CyclicSupportDoesNotResurrect) {
  // path over a cycle: deleting the only incoming edge of a node must kill
  // paths through it even though the cycle gives "circular" support.
  auto edges = workload::ChainEdges(3);  // 0->1->2
  GProgram p = workload::MakeGroundTC(edges);
  Database db = Evaluate(p);
  GroundDRedStats stats;
  DeleteFactsDRed(p, &db, {{"e", {I(0), I(1)}}}, &stats);
  EXPECT_FALSE(db.Contains("path", {I(0), I(1)}));
  EXPECT_FALSE(db.Contains("path", {I(0), I(2)}));
  EXPECT_TRUE(db.Contains("path", {I(1), I(2)}));
}

TEST(GroundDRedTest, MatchesRecomputation) {
  Rng rng(7);
  auto edges = workload::RandomDagEdges(&rng, 8, 6);
  GProgram p = workload::MakeGroundTC(edges);
  Database db = Evaluate(p);
  GroundFact victim{"e", {I(edges[2].first), I(edges[2].second)}};
  DeleteFactsDRed(p, &db, {victim});

  // Oracle: rebuild without the victim edge.
  GProgram p2 = workload::MakeGroundTC([&] {
    auto e2 = edges;
    e2.erase(e2.begin() + 2);
    return e2;
  }());
  Database oracle = Evaluate(p2);
  EXPECT_EQ(db.Rel("path"), oracle.Rel("path"));
}

TEST(CountingTest, RejectsRecursivePrograms) {
  GProgram tc = workload::MakeGroundTC(workload::ChainEdges(3));
  EXPECT_FALSE(CountingView::Build(tc).ok());
}

TEST(CountingTest, CountsDerivations) {
  GProgram p = workload::MakeGroundDiamond(0, 1);
  CountingView view = Unwrap(CountingView::Build(p));
  // m(0) has two derivations: via l and via r.
  EXPECT_EQ(view.CountOf("m", {I(0)}), 2);
  EXPECT_EQ(view.CountOf("l", {I(0)}), 1);
  EXPECT_EQ(view.CountOf("b", {I(0)}), 1);
}

TEST(CountingTest, DeleteDecrementsAndRemoves) {
  GProgram p = workload::MakeGroundDiamond(1, 2);
  CountingView view = Unwrap(CountingView::Build(p));
  ASSERT_EQ(view.CountOf("m", {I(0)}), 2);

  CountingStats stats;
  ASSERT_TRUE(view.DeleteFacts({{"b", {I(0)}}}, &stats).ok());
  EXPECT_EQ(view.CountOf("m", {I(0)}), 0);
  EXPECT_FALSE(view.db().Contains("m", {I(0)}));
  EXPECT_TRUE(view.db().Contains("m", {I(1)}));
  EXPECT_GT(stats.tuples_removed, 0u);
}

TEST(CountingTest, MatchesRecomputation) {
  GProgram p = workload::MakeGroundDiamond(3, 4);
  CountingView view = Unwrap(CountingView::Build(p));
  ASSERT_TRUE(view.DeleteFacts({{"b", {I(1)}}}).ok());

  GProgram p2 = workload::MakeGroundDiamond(3, 4);
  // Rebuild without b(1): emulate by deleting the fact from the program.
  GProgram p3;
  for (const GroundFact& f : p2.facts()) {
    if (!(f.pred == "b" && f.args == Tuple{I(1)})) p3.AddFact(f);
  }
  for (const GRule& r : p2.rules()) p3.AddRule(r);
  Database oracle = Evaluate(p3);
  for (Symbol pred : oracle.Predicates()) {
    EXPECT_EQ(view.db().Rel(pred), oracle.Rel(pred)) << pred;
  }
}

}  // namespace
}  // namespace datalog
}  // namespace mmv
