// Integration tests: the full law-enforcement scenario (paper Section 2.2)
// across all domains, with both kinds of updates.

#include <gtest/gtest.h>

#include "maintenance/external.h"
#include "maintenance/stdel.h"
#include "query/query.h"
#include "test_util.h"
#include "workload/law_enforcement.h"

namespace mmv {
namespace {

using testutil::Unwrap;
using workload::LawEnforcementOptions;
using workload::LawEnforcementScenario;
using workload::MakeLawEnforcement;

std::set<std::string> SecondArgs(const query::InstanceSet& set,
                                 const std::string& first) {
  std::set<std::string> out;
  for (const query::Instance& i : set.instances) {
    if (i.values.size() == 2 && i.values[0].is_string() &&
        i.values[0].as_string() == first && i.values[1].is_string()) {
      out.insert(i.values[1].as_string());
    }
  }
  return out;
}

class LawEnforcementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LawEnforcementOptions opts;
    opts.num_people = 8;
    opts.num_photos = 5;
    opts.faces_per_photo = 3;
    opts.seed = 17;
    scenario_ = Unwrap(MakeLawEnforcement(opts));
  }
  std::unique_ptr<LawEnforcementScenario> scenario_;
};

TEST_F(LawEnforcementTest, SuspectsMatchGroundTruth) {
  View view = testutil::MaterializeOrDie(scenario_->mediator,
                                         scenario_->domains.get());
  query::EnumerateOptions eopts;
  query::InstanceSet suspects = Unwrap(query::QueryPred(
      view, "suspect",
      {Term::Const(Value(scenario_->target)), Term::Var(0)},
      scenario_->domains.get(), eopts));
  EXPECT_EQ(SecondArgs(suspects, scenario_->target),
            scenario_->expected_suspects);
}

TEST_F(LawEnforcementTest, SeenwithMatchesGroundTruth) {
  View view = testutil::MaterializeOrDie(scenario_->mediator,
                                         scenario_->domains.get());
  query::InstanceSet seen = Unwrap(query::QueryPred(
      view, "seenwith",
      {Term::Const(Value(scenario_->target)), Term::Var(0)},
      scenario_->domains.get()));
  EXPECT_EQ(SecondArgs(seen, scenario_->target),
            scenario_->expected_seenwith);
}

TEST_F(LawEnforcementTest, WpViewTracksSurveillanceExtension) {
  // The Section 4 story: extend the surveillance data; the W_P view needs
  // no maintenance yet answers with the enlarged pool of suspects.
  maint::MaintainedView wp = Unwrap(maint::MaintainedView::Create(
      &scenario_->mediator, scenario_->domains.get(),
      maint::MaintenancePolicy::kWpSyntactic));

  query::InstanceSet before = Unwrap(query::QueryPred(
      wp.view(), "seenwith",
      {Term::Const(Value(scenario_->target)), Term::Var(0)},
      scenario_->domains.get()));

  // Find someone not yet seen with the target and photograph them together.
  std::string newcomer;
  for (const std::string& p : scenario_->people) {
    if (p != scenario_->target && !scenario_->expected_seenwith.count(p)) {
      newcomer = p;
      break;
    }
  }
  if (newcomer.empty()) GTEST_SKIP() << "everyone already seen with target";
  int newcomer_id = -1;
  for (size_t i = 0; i < scenario_->people.size(); ++i) {
    if (scenario_->people[i] == newcomer) newcomer_id = static_cast<int>(i);
  }
  scenario_->catalog->clock().Advance();
  ASSERT_TRUE(scenario_->handles.facextract
                  ->AddSurveillanceFace("surveillance", "newphoto", 0)
                  .ok());
  ASSERT_TRUE(scenario_->handles.facextract
                  ->AddSurveillanceFace("surveillance", "newphoto",
                                        newcomer_id)
                  .ok());
  ASSERT_TRUE(wp.OnExternalChange().ok());
  EXPECT_EQ(wp.recompute_count(), 0);

  query::InstanceSet after = Unwrap(query::QueryPred(
      wp.view(), "seenwith",
      {Term::Const(Value(scenario_->target)), Term::Var(0)},
      scenario_->domains.get()));
  std::set<std::string> names = SecondArgs(after, scenario_->target);
  EXPECT_EQ(names.count(newcomer), 1u);
  EXPECT_EQ(names.size(), SecondArgs(before, scenario_->target).size() + 1);
}

TEST_F(LawEnforcementTest, ViewUpdateDeletionOfSeenwith) {
  // Example 3: external evidence exonerates someone; delete the seenwith
  // atom instance — without touching the sources.
  if (scenario_->expected_seenwith.empty()) {
    GTEST_SKIP() << "nobody seen with target";
  }
  std::string victim = *scenario_->expected_seenwith.begin();

  View view = testutil::MaterializeOrDie(scenario_->mediator,
                                         scenario_->domains.get());
  maint::UpdateAtom request;
  request.pred = "seenwith";
  VarId x = scenario_->mediator.factory()->Fresh();
  VarId y = scenario_->mediator.factory()->Fresh();
  request.args = {Term::Var(x), Term::Var(y)};
  request.constraint.Add(
      Primitive::Eq(Term::Var(x), Term::Const(Value(scenario_->target))));
  request.constraint.Add(
      Primitive::Eq(Term::Var(y), Term::Const(Value(victim))));

  ASSERT_TRUE(maint::DeleteStDel(scenario_->mediator, &view, request,
                                 scenario_->domains.get())
                  .ok());

  query::InstanceSet seen = Unwrap(query::QueryPred(
      view, "seenwith",
      {Term::Const(Value(scenario_->target)), Term::Var(0)},
      scenario_->domains.get()));
  std::set<std::string> names = SecondArgs(seen, scenario_->target);
  EXPECT_EQ(names.count(victim), 0u);

  // The consequences are gone too.
  query::InstanceSet sus = Unwrap(query::QueryPred(
      view, "suspect",
      {Term::Const(Value(scenario_->target)), Term::Var(0)},
      scenario_->domains.get()));
  EXPECT_EQ(SecondArgs(sus, scenario_->target).count(victim), 0u);

  // The surveillance source itself is untouched.
  const rel::Table* sv = Unwrap(
      static_cast<const rel::Catalog&>(*scenario_->catalog)
          .GetTable("faces_surveillance"));
  EXPECT_GT(sv->size(), 0u);
}

TEST(LawEnforcementScaleTest, DeterministicAcrossSeeds) {
  LawEnforcementOptions opts;
  opts.num_people = 6;
  opts.num_photos = 3;
  opts.seed = 99;
  auto s1 = Unwrap(MakeLawEnforcement(opts));
  auto s2 = Unwrap(MakeLawEnforcement(opts));
  EXPECT_EQ(s1->expected_suspects, s2->expected_suspects);
  EXPECT_EQ(s1->expected_seenwith, s2->expected_seenwith);
}

}  // namespace
}  // namespace mmv
