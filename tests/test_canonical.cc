// Unit tests for canonical atom strings.

#include <gtest/gtest.h>

#include "constraint/canonical.h"

namespace mmv {
namespace {

Term V(VarId v) { return Term::Var(v); }
Term C(int64_t c) { return Term::Const(Value(c)); }

TEST(CanonicalTest, VariableRenamingInvariance) {
  Constraint a;
  a.Add(Primitive::Eq(V(10), C(1)));
  Constraint b;
  b.Add(Primitive::Eq(V(99), C(1)));
  EXPECT_EQ(CanonicalAtomString("p", {V(10)}, a),
            CanonicalAtomString("p", {V(99)}, b));
}

TEST(CanonicalTest, LiteralOrderInvariance) {
  Constraint a;
  a.Add(Primitive::Neq(V(0), C(1)));
  a.Add(Primitive::Cmp(V(0), CmpOp::kLe, C(5)));
  Constraint b;
  b.Add(Primitive::Cmp(V(7), CmpOp::kLe, C(5)));
  b.Add(Primitive::Neq(V(7), C(1)));
  EXPECT_EQ(CanonicalAtomString("p", {V(0)}, a),
            CanonicalAtomString("p", {V(7)}, b));
}

TEST(CanonicalTest, DistinguishesDifferentConstraints) {
  Constraint a;
  a.Add(Primitive::Neq(V(0), C(1)));
  Constraint b;
  b.Add(Primitive::Neq(V(0), C(2)));
  EXPECT_NE(CanonicalAtomString("p", {V(0)}, a),
            CanonicalAtomString("p", {V(0)}, b));
}

TEST(CanonicalTest, DistinguishesPredicates) {
  Constraint c;
  EXPECT_NE(CanonicalAtomString("p", {V(0)}, c),
            CanonicalAtomString("q", {V(0)}, c));
}

TEST(CanonicalTest, SimplificationApplied) {
  // X = Y & Y = 3 canonicalizes like the direct X = 3 head binding.
  Constraint a;
  a.Add(Primitive::Eq(V(0), V(1)));
  a.Add(Primitive::Eq(V(1), C(3)));
  Constraint b;
  b.Add(Primitive::Eq(V(5), C(3)));
  EXPECT_EQ(CanonicalAtomString("p", {V(0)}, a),
            CanonicalAtomString("p", {V(5)}, b));
}

TEST(CanonicalTest, FalseConstraint) {
  Constraint c;
  c.Add(Primitive::Eq(C(1), C(2)));
  EXPECT_EQ(CanonicalAtomString("p", {V(0)}, c), "p/false");
}

TEST(CanonicalTest, HeadVariableIdentityMatters) {
  // p(X, X) differs from p(X, Y) even with the same (empty) constraint.
  Constraint c;
  EXPECT_NE(CanonicalAtomString("p", {V(0), V(0)}, c),
            CanonicalAtomString("p", {V(0), V(1)}, c));
}

TEST(CanonicalTest, NotBlockOrderInvariance) {
  Constraint a;
  NotBlock b1;
  b1.prims.push_back(Primitive::Eq(V(0), C(1)));
  NotBlock b2;
  b2.prims.push_back(Primitive::Eq(V(0), C(2)));
  a.AddNot(b1);
  a.AddNot(b2);

  Constraint b;
  b.AddNot(b2);
  b.AddNot(b1);
  EXPECT_EQ(CanonicalAtomString("p", {V(0)}, a),
            CanonicalAtomString("p", {V(0)}, b));
}

}  // namespace
}  // namespace mmv
