// Unit tests for canonical atom strings.

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "constraint/canonical.h"

namespace mmv {
namespace {

Term V(VarId v) { return Term::Var(v); }
Term C(int64_t c) { return Term::Const(Value(c)); }

TEST(CanonicalTest, VariableRenamingInvariance) {
  Constraint a;
  a.Add(Primitive::Eq(V(10), C(1)));
  Constraint b;
  b.Add(Primitive::Eq(V(99), C(1)));
  EXPECT_EQ(CanonicalAtomString("p", {V(10)}, a),
            CanonicalAtomString("p", {V(99)}, b));
}

TEST(CanonicalTest, LiteralOrderInvariance) {
  Constraint a;
  a.Add(Primitive::Neq(V(0), C(1)));
  a.Add(Primitive::Cmp(V(0), CmpOp::kLe, C(5)));
  Constraint b;
  b.Add(Primitive::Cmp(V(7), CmpOp::kLe, C(5)));
  b.Add(Primitive::Neq(V(7), C(1)));
  EXPECT_EQ(CanonicalAtomString("p", {V(0)}, a),
            CanonicalAtomString("p", {V(7)}, b));
}

TEST(CanonicalTest, DistinguishesDifferentConstraints) {
  Constraint a;
  a.Add(Primitive::Neq(V(0), C(1)));
  Constraint b;
  b.Add(Primitive::Neq(V(0), C(2)));
  EXPECT_NE(CanonicalAtomString("p", {V(0)}, a),
            CanonicalAtomString("p", {V(0)}, b));
}

TEST(CanonicalTest, DistinguishesPredicates) {
  Constraint c;
  EXPECT_NE(CanonicalAtomString("p", {V(0)}, c),
            CanonicalAtomString("q", {V(0)}, c));
}

TEST(CanonicalTest, SimplificationApplied) {
  // X = Y & Y = 3 canonicalizes like the direct X = 3 head binding.
  Constraint a;
  a.Add(Primitive::Eq(V(0), V(1)));
  a.Add(Primitive::Eq(V(1), C(3)));
  Constraint b;
  b.Add(Primitive::Eq(V(5), C(3)));
  EXPECT_EQ(CanonicalAtomString("p", {V(0)}, a),
            CanonicalAtomString("p", {V(5)}, b));
}

TEST(CanonicalTest, FalseConstraint) {
  Constraint c;
  c.Add(Primitive::Eq(C(1), C(2)));
  EXPECT_EQ(CanonicalAtomString("p", {V(0)}, c), "p/false");
}

TEST(CanonicalTest, HeadVariableIdentityMatters) {
  // p(X, X) differs from p(X, Y) even with the same (empty) constraint.
  Constraint c;
  EXPECT_NE(CanonicalAtomString("p", {V(0), V(0)}, c),
            CanonicalAtomString("p", {V(0), V(1)}, c));
}

TEST(CanonicalTest, NotBlockOrderInvariance) {
  Constraint a;
  NotBlock b1;
  b1.prims.push_back(Primitive::Eq(V(0), C(1)));
  NotBlock b2;
  b2.prims.push_back(Primitive::Eq(V(0), C(2)));
  a.AddNot(b1);
  a.AddNot(b2);

  Constraint b;
  b.AddNot(b2);
  b.AddNot(b1);
  EXPECT_EQ(CanonicalAtomString("p", {V(0)}, a),
            CanonicalAtomString("p", {V(0)}, b));
}

// ---- 128-bit fingerprint quality ------------------------------------------
//
// The dedup sets and the solver memo treat CanonicalKey equality as atom
// equality, so the two 64-bit halves must behave like independent hashes.
// These tests would have caught the original scheme (two FNV-1a streams
// over one rendering differing only in seed): FNV's odd multiplier makes
// bit 0 of the state a LINEAR function of the input bytes' low bits plus a
// seed parity, so bit 0 of the two halves' deltas agreed for EVERY input
// pair and the effective collision margin was far below 2^-128.

// Keys of a family of distinct canonical atoms: p(V0) <- V0 = i, then
// q(V0, V1) <- V0 = i & V1 = j — near-identical renderings, the regime
// where weak mixing shows.
std::vector<CanonicalKey> KeyFamily(int unary, int binary_side) {
  std::vector<CanonicalKey> keys;
  std::string scratch;
  for (int i = 0; i < unary; ++i) {
    Constraint c;
    c.Add(Primitive::Eq(V(0), C(i)));
    keys.push_back(CanonicalAtomKey("p", {V(0)}, c, false, &scratch));
  }
  for (int i = 0; i < binary_side; ++i) {
    for (int j = 0; j < binary_side; ++j) {
      Constraint c;
      c.Add(Primitive::Eq(V(0), C(i)));
      c.Add(Primitive::Eq(V(1), C(j)));
      keys.push_back(
          CanonicalAtomKey("q", {V(0), V(1)}, c, false, &scratch));
    }
  }
  return keys;
}

TEST(CanonicalKeyTest, NoCollisionsAcrossCorrelatedFamily) {
  std::vector<CanonicalKey> keys = KeyFamily(20000, 100);
  std::unordered_set<CanonicalKey, CanonicalKey::Hasher> seen;
  for (const CanonicalKey& k : keys) {
    EXPECT_TRUE(seen.insert(k).second) << "128-bit collision";
  }
  // The halves must be collision-free on their own too at this sample
  // size (a birthday collision among 30k 64-bit values has probability
  // ~2^-34): a correlated-stream scheme loses exactly this margin first.
  std::unordered_set<uint64_t> lo, hi;
  for (const CanonicalKey& k : keys) {
    EXPECT_TRUE(lo.insert(k.lo).second) << "lo-half collision";
    EXPECT_TRUE(hi.insert(k.hi).second) << "hi-half collision";
  }
}

TEST(CanonicalKeyTest, AvalancheAcrossNeighboringAtoms) {
  // Neighboring atoms (renderings differing in a digit or two) must flip
  // about half of the 128 key bits on average.
  std::vector<CanonicalKey> keys = KeyFamily(5000, 0);
  int64_t total_bits = 0;
  int pairs = 0;
  for (size_t i = 1; i < keys.size(); ++i) {
    total_bits += __builtin_popcountll(keys[i - 1].lo ^ keys[i].lo) +
                  __builtin_popcountll(keys[i - 1].hi ^ keys[i].hi);
    ++pairs;
  }
  double mean = static_cast<double>(total_bits) / pairs;
  EXPECT_GT(mean, 52.0) << "poor avalanche";
  EXPECT_LT(mean, 76.0) << "poor avalanche";
}

TEST(CanonicalKeyTest, HalvesAreNotBitCorrelated) {
  // Regression for the two-seeds-one-algorithm weakness: under it, bit 0
  // of (lo_a ^ lo_b) equaled bit 0 of (hi_a ^ hi_b) for EVERY pair (both
  // were the parity of the differing input bytes' low bits). Independent
  // halves agree on that bit only ~half the time. Check the low bits and
  // a few higher ones.
  std::vector<CanonicalKey> keys = KeyFamily(4000, 0);
  for (int bit : {0, 1, 2, 7, 31}) {
    uint64_t mask = uint64_t{1} << bit;
    int agree = 0, pairs = 0;
    for (size_t i = 1; i < keys.size(); ++i) {
      uint64_t dlo = keys[i - 1].lo ^ keys[i].lo;
      uint64_t dhi = keys[i - 1].hi ^ keys[i].hi;
      agree += (dlo & mask) == (dhi & mask) ? 1 : 0;
      ++pairs;
    }
    double fraction = static_cast<double>(agree) / pairs;
    EXPECT_GT(fraction, 0.40) << "bit " << bit;
    EXPECT_LT(fraction, 0.60) << "bit " << bit;
  }
}

}  // namespace
}  // namespace mmv
