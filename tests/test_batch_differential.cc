// Differential oracle for the batch-maintenance pipeline: on randomized
// programs and randomized update bursts, three independent evaluation paths
// must agree at the instance level —
//
//   1. ApplyBatch            (coalescing planner + multi-atom passes)
//   2. ApplyUpdatesSequential (the paper's one-update-at-a-time regime)
//   3. declarative recompute  (fold the burst into program rewrites —
//      RewriteForDeletion / AppendFact — and rematerialize from scratch)
//
// Views are compared by canonicalized instance sets: constrained atoms have
// many syntactic forms (and the pipeline legitimately produces different
// supports and negation blocks than the sequential replay), but the
// denoted instances are the semantics the paper's theorems speak about.
//
// Duplicate-semantics trials run mixed delete/insert bursts; set-semantics
// trials run insertion-only bursts (StDel requires duplicate semantics —
// supports are only unique derivation identities there, Lemma 1).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "constraint/canonical.h"
#include "core/snapshot.h"
#include "maintenance/batch.h"
#include "test_util.h"
#include "workload/generators.h"

namespace mmv {
namespace {

using testutil::Instances;
using testutil::TestWorld;
using testutil::Unwrap;

// A burst over the generated program's base AND derived predicates. Values
// are drawn from a deliberately tiny pool so canonical-key collisions —
// duplicate inserts, delete+re-insert pairs, re-deletions — are common and
// the planner's coalescing rules are exercised, not just its pass-through.
// Derived-predicate updates matter: an update's observable effect can then
// depend on DERIVED coverage and on support structure, the regime where
// naive coalescing/deferral is unsound (see the regression tests in
// test_batch.cc).
std::vector<maint::Update> RandomBurst(Rng* rng, Program* program,
                                       const workload::RandomProgramOptions& o,
                                       bool deletions_allowed) {
  int size = static_cast<int>(rng->Int(2, 8));
  std::vector<maint::Update> burst;
  burst.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    maint::UpdateAtom atom;
    if (rng->Chance(0.35)) {
      atom.pred = "d" + std::to_string(rng->Int(0, o.derived_preds - 1));
    } else {
      atom.pred = "base" + std::to_string(rng->Int(0, o.base_preds - 1));
    }
    VarId x = program->factory()->Fresh();
    atom.args = {Term::Var(x)};
    atom.constraint.Add(Primitive::Eq(
        Term::Var(x), Term::Const(Value(rng->Int(0, o.const_pool - 1)))));
    bool is_delete = deletions_allowed && rng->Chance(0.5);
    burst.push_back(is_delete ? maint::Update::Delete(std::move(atom))
                              : maint::Update::Insert(std::move(atom)));
  }
  return burst;
}

struct DifferentialOutcome {
  maint::BatchStats batch_stats;
  std::string trace;  // program + burst, for failure messages
};

// The fold-to-rewrites oracle models operational maintenance EXCEPT when a
// derived predicate's deletion precedes an insert: rewrite (4) guards the
// derived clauses permanently, while StDel only edits the view state — a
// later insertion's seminaive continuation legitimately re-derives the
// deleted instances. Both ApplyBatch and ApplyUpdatesSequential implement
// the operational reading (and must agree on EVERY burst); the declarative
// comparison is asserted only where the two readings coincide.
bool FoldOracleApplies(const Program& program,
                       const std::vector<maint::Update>& burst) {
  bool saw_derived_delete = false;
  for (const maint::Update& u : burst) {
    if (u.kind == maint::Update::Kind::kDelete) {
      for (size_t i : program.ClausesFor(u.atom.pred)) {
        if (!program.clauses()[i].IsFact()) {
          saw_derived_delete = true;
          break;
        }
      }
    } else if (saw_derived_delete) {
      return false;
    }
  }
  return true;
}

// Runs one seeded trial and asserts the three-way agreement.
DifferentialOutcome RunTrial(uint64_t seed, DupSemantics semantics,
                             bool deletions_allowed) {
  TestWorld w = TestWorld::Make();
  Rng rng(seed);
  workload::RandomProgramOptions opts;
  opts.base_preds = 2;
  opts.derived_preds = 3;
  opts.facts_per_pred = 3;
  opts.rules_per_pred = 2;
  opts.const_pool = 5;
  if (deletions_allowed) {
    // Ground facts keep deletion subtraction exactly enumerable, matching
    // the single-update property suite's delete/insert round-trip regime.
    opts.interval_fact_prob = 0;
  }
  Program p = workload::MakeRandomProgram(&rng, opts);
  std::vector<maint::Update> burst =
      RandomBurst(&rng, &p, opts, deletions_allowed);

  FixpointOptions fp;
  fp.semantics = semantics;
  View initial = Unwrap(Materialize(p, w.domains.get(), fp));

  // The BATCH pipeline honors $MMV_THREADS (the TSan CI job exports 8, a
  // typo fails the suite loudly) while the sequential replay and the
  // fold-recompute oracle stay single-threaded — so under MMV_THREADS>1
  // this differential also crosses the thread-count boundary on every
  // random burst.
  FixpointOptions batch_fp = fp;
  {
    Result<int> env_threads = ThreadsFromEnv();
    EXPECT_TRUE(env_threads.ok()) << env_threads.status().ToString();
    if (env_threads.ok()) batch_fp.num_threads = *env_threads;
  }

  DifferentialOutcome out;
  out.trace = "seed " + std::to_string(seed) + "\nprogram:\n" + p.ToString() +
              "burst:\n";
  for (const maint::Update& u : burst) {
    out.trace += (u.kind == maint::Update::Kind::kDelete ? "  del " : "  ins ") +
                 u.atom.ToString(p.names()) + "\n";
  }

  // The batch runs against a SnapshotStore: a reader pinned to the
  // pre-batch epoch must read byte-identically after the batch mutated the
  // live view, and the published post-batch epoch must match the live
  // result — the snapshot layer's consistency contract crossed with every
  // random burst of this suite.
  SnapshotStore snapshots;
  snapshots.Publish(initial);  // epoch 1
  SnapshotHandle pre_pin = snapshots.Pin();
  auto initial_instances = Instances(initial, w.domains.get());

  View batch_view = initial;
  int batch_counter = 0;
  Status s = maint::ApplyBatch(p, &batch_view, burst, w.domains.get(),
                               batch_fp, &out.batch_stats, &batch_counter,
                               &snapshots);
  EXPECT_TRUE(s.ok()) << s.ToString() << "\n" << out.trace;
  EXPECT_EQ(out.batch_stats.epochs_published, 1) << out.trace;
  EXPECT_EQ(pre_pin->epoch, 1u);
  EXPECT_EQ(Instances(pre_pin, w.domains.get()), initial_instances)
      << "pre-batch snapshot changed under maintenance\n"
      << out.trace;

  // The $MMV_SOLVER_FASTPATH sweep: the same batch with the solver fast
  // path off (slow-path oracle, no rejection memo) must produce the
  // byte-identical maintained view — canonical atoms AND support multiset,
  // not just instances — and identical work-product counters. Only the
  // strategy counters may differ; with the screen off they are zero.
  {
    auto canonical_atoms = [](const View& v) {
      std::multiset<std::string> out;
      for (const ViewAtom& a : v.atoms()) {
        out.insert(CanonicalAtomString(a.pred, a.args, a.constraint));
      }
      return out;
    };
    auto supports = [](const View& v) {
      std::multiset<std::string> out;
      for (const ViewAtom& a : v.atoms()) out.insert(a.support.ToString());
      return out;
    };
    FixpointOptions off_fp = batch_fp;
    off_fp.solver.fastpath = false;
    SnapshotStore off_snapshots;
    View off_initial = Unwrap(Materialize(p, w.domains.get(), off_fp));
    off_snapshots.Publish(off_initial);
    View off_view = off_initial;
    maint::BatchStats off_stats;
    int off_counter = 0;
    Status off_s =
        maint::ApplyBatch(p, &off_view, burst, w.domains.get(), off_fp,
                          &off_stats, &off_counter, &off_snapshots);
    EXPECT_TRUE(off_s.ok()) << off_s.ToString() << "\n" << out.trace;
    EXPECT_EQ(canonical_atoms(batch_view), canonical_atoms(off_view))
        << "fastpath on/off diverged\n"
        << out.trace;
    EXPECT_EQ(supports(batch_view), supports(off_view))
        << "fastpath on/off support multisets diverged\n"
        << out.trace;
    EXPECT_EQ(out.batch_stats.input_updates, off_stats.input_updates);
    EXPECT_EQ(out.batch_stats.coalesced_away, off_stats.coalesced_away);
    EXPECT_EQ(out.batch_stats.delete_passes, off_stats.delete_passes);
    EXPECT_EQ(out.batch_stats.insert_passes, off_stats.insert_passes);
    EXPECT_EQ(out.batch_stats.epochs_published, off_stats.epochs_published);
    EXPECT_EQ(off_stats.sat_prechecks, 0) << out.trace;
    EXPECT_EQ(off_stats.sat_rejects, 0) << out.trace;
    EXPECT_EQ(off_stats.reject_cache_hits, 0) << out.trace;
  }

  View seq_view = initial;
  int seq_counter = 0;
  s = maint::ApplyUpdatesSequential(p, &seq_view, burst, w.domains.get(), fp,
                                    nullptr, &seq_counter);
  EXPECT_TRUE(s.ok()) << s.ToString() << "\n" << out.trace;

  auto batch_instances = Instances(batch_view, w.domains.get());
  auto seq_instances = Instances(seq_view, w.domains.get());
  EXPECT_EQ(batch_instances, seq_instances)
      << "pipeline diverged from sequential replay\n"
      << out.trace;
  // The published post-batch epoch equals the sequential-oracle result.
  SnapshotHandle post_pin = snapshots.Pin();
  EXPECT_EQ(post_pin->epoch, 2u);
  EXPECT_EQ(Instances(post_pin, w.domains.get()), seq_instances)
      << "published epoch diverged from the sequential oracle\n"
      << out.trace;
  if (FoldOracleApplies(p, burst)) {
    View oracle = testutil::FoldRecompute(p, burst, w.domains.get(), fp);
    auto oracle_instances = Instances(oracle, w.domains.get());
    EXPECT_EQ(seq_instances, oracle_instances)
        << "sequential replay diverged from declarative recompute\n"
        << out.trace;
  }
  return out;
}

class BatchDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchDifferential, MixedBurstUnderDuplicateSemantics) {
  RunTrial(GetParam(), DupSemantics::kDuplicate, /*deletions_allowed=*/true);
}

TEST_P(BatchDifferential, InsertBurstUnderSetSemantics) {
  RunTrial(GetParam() * 7919 + 13, DupSemantics::kSet,
           /*deletions_allowed=*/false);
}

TEST_P(BatchDifferential, InsertBurstUnderDuplicateSemantics) {
  RunTrial(GetParam() * 104729 + 7, DupSemantics::kDuplicate,
           /*deletions_allowed=*/false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchDifferential,
                         ::testing::Range(uint64_t{1}, uint64_t{201}));

TEST(BatchDifferentialAggregate, CoalescerFiresAcrossTheSeedRange) {
  // The randomized bursts above must actually exercise coalescing, not just
  // pass updates through: over a sample of seeds, the planner removes a
  // healthy number of updates.
  size_t coalesced = 0, inputs = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    DifferentialOutcome out =
        RunTrial(seed, DupSemantics::kDuplicate, /*deletions_allowed=*/true);
    coalesced += out.batch_stats.coalesced_away;
    inputs += out.batch_stats.input_updates;
  }
  EXPECT_GT(coalesced, 0u);
  EXPECT_GT(inputs, coalesced);
}

}  // namespace
}  // namespace mmv
