// Unit tests for the durability subsystem: CRC32C, the Fs seam (MemFs +
// FaultFs), WAL framing/scanning, the checkpoint codec and the DurableLog
// lifecycle (create / log / commit / abort / checkpoint / retention /
// recover). The randomized crash-recovery matrix lives in
// test_recovery_fault.cc; this file pins down each layer's contract in
// isolation.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/crc32c.h"
#include "core/snapshot.h"
#include "durability/checkpoint.h"
#include "durability/durable_log.h"
#include "durability/fs.h"
#include "durability/wal.h"
#include "maintenance/batch.h"
#include "parser/view_io.h"
#include "test_util.h"

namespace mmv {
namespace {

using durability::CheckpointMeta;
using durability::DurabilityOptions;
using durability::DurableLog;
using durability::FaultFs;
using durability::FaultPlan;
using durability::MemFs;
using durability::RecoveryInfo;
using durability::SyncPolicy;
using durability::Wal;
using durability::WalScan;
using testutil::CanonicalState;
using testutil::ParseOrDie;
using testutil::ParseUpdate;
using testutil::TestWorld;
using testutil::Unwrap;

// ---- CRC32C ---------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // The Castagnoli check value from RFC 3720 / the canonical test suites.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32cTest, ExtendComposes) {
  std::string all = "hello, durability";
  uint32_t whole = Crc32c(all);
  uint32_t split = Crc32cExtend(Crc32c(all.substr(0, 7)), all.substr(7));
  EXPECT_EQ(whole, split);
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data = "the quick brown fox";
  uint32_t clean = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      EXPECT_NE(Crc32c(flipped), clean);
    }
  }
}

// ---- MemFs ----------------------------------------------------------------

TEST(MemFsTest, WriteReadAppendTruncate) {
  MemFs fs;
  ASSERT_TRUE(fs.WriteFile("d/a", "abc").ok());
  ASSERT_TRUE(fs.Append("d/a", "def").ok());
  EXPECT_EQ(Unwrap(fs.ReadFile("d/a")), "abcdef");
  ASSERT_TRUE(fs.Truncate("d/a", 2).ok());
  EXPECT_EQ(Unwrap(fs.ReadFile("d/a")), "ab");
  EXPECT_FALSE(fs.Truncate("d/a", 100).ok());  // beyond size
  EXPECT_FALSE(fs.ReadFile("d/missing").ok());
  EXPECT_TRUE(Unwrap(fs.Exists("d/a")));
  EXPECT_FALSE(Unwrap(fs.Exists("d/missing")));
}

TEST(MemFsTest, ListNamesSorted) {
  MemFs fs;
  ASSERT_TRUE(fs.WriteFile("dir/b", "").ok());
  ASSERT_TRUE(fs.WriteFile("dir/a", "").ok());
  ASSERT_TRUE(fs.WriteFile("dir/sub/c", "").ok());  // not DIRECTLY inside
  ASSERT_TRUE(fs.WriteFile("other/z", "").ok());
  EXPECT_EQ(Unwrap(fs.List("dir")), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(Unwrap(fs.List("nothing")).empty());
}

TEST(MemFsTest, RenameReplacesAndRemoveIsIdempotent) {
  MemFs fs;
  ASSERT_TRUE(fs.WriteFile("a", "new").ok());
  ASSERT_TRUE(fs.WriteFile("b", "old").ok());
  ASSERT_TRUE(fs.Rename("a", "b").ok());
  EXPECT_EQ(Unwrap(fs.ReadFile("b")), "new");
  EXPECT_FALSE(Unwrap(fs.Exists("a")));
  EXPECT_FALSE(fs.Rename("missing", "x").ok());
  EXPECT_TRUE(fs.Remove("b").ok());
  EXPECT_TRUE(fs.Remove("b").ok());  // already gone: still OK
}

TEST(MemFsTest, CorruptFlipsOneByte) {
  MemFs fs;
  ASSERT_TRUE(fs.WriteFile("f", "abc").ok());
  ASSERT_TRUE(fs.Corrupt("f", 1, 0x01).ok());
  EXPECT_EQ(Unwrap(fs.ReadFile("f")), "acc");  // 'b' ^ 0x01 == 'c'
  EXPECT_FALSE(fs.Corrupt("f", 3, 0x01).ok());  // out of range
}

// ---- FaultFs --------------------------------------------------------------

TEST(FaultFsTest, CrashAfterNWritesFreezesState) {
  MemFs base;
  FaultPlan plan;
  plan.crash_after_writes = 2;
  FaultFs fs(&base, plan);
  ASSERT_TRUE(fs.WriteFile("a", "1").ok());
  ASSERT_TRUE(fs.WriteFile("b", "2").ok());
  EXPECT_FALSE(fs.crashed());
  // The crashing operation fails and is NOT applied.
  EXPECT_FALSE(fs.WriteFile("c", "3").ok());
  EXPECT_TRUE(fs.crashed());
  EXPECT_FALSE(Unwrap(base.Exists("c")));
  // Every later mutation fails; reads pass through.
  EXPECT_FALSE(fs.Append("a", "x").ok());
  EXPECT_FALSE(fs.Remove("a").ok());
  EXPECT_FALSE(fs.Rename("a", "z").ok());
  EXPECT_FALSE(fs.Sync("a").ok());
  EXPECT_EQ(Unwrap(fs.ReadFile("a")), "1");
  EXPECT_EQ(fs.writes_done(), 2);
}

TEST(FaultFsTest, TornCrashingWritePersistsPrefix) {
  MemFs base;
  FaultPlan plan;
  plan.crash_after_writes = 0;
  plan.tear_crashing_write = true;
  plan.tear_keep_bytes = 3;
  FaultFs fs(&base, plan);
  EXPECT_FALSE(fs.Append("wal", "abcdefgh").ok());
  EXPECT_EQ(Unwrap(base.ReadFile("wal")), "abc");
}

TEST(FaultFsTest, DryRunCountsWrites) {
  MemFs base;
  FaultFs fs(&base, FaultPlan{});  // crash_after_writes = -1: never
  ASSERT_TRUE(fs.WriteFile("a", "1").ok());
  ASSERT_TRUE(fs.Append("a", "2").ok());
  ASSERT_TRUE(fs.Remove("a").ok());
  EXPECT_EQ(fs.writes_done(), 3);
  EXPECT_FALSE(fs.crashed());
}

// ---- WAL framing and scanning --------------------------------------------

TEST(WalScanTest, RoundTripsRecords) {
  std::string data = durability::EncodeWalRecord(5, "first") +
                     durability::EncodeWalRecord(6, "second");
  WalScan scan = Unwrap(
      durability::ScanWalSegment(data, "seg", /*tolerate_torn_tail=*/false));
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].seq, 5u);
  EXPECT_EQ(scan.records[0].payload, "first");
  EXPECT_EQ(scan.records[1].seq, 6u);
  EXPECT_EQ(scan.records[1].payload, "second");
  EXPECT_EQ(scan.valid_bytes, data.size());
  EXPECT_EQ(scan.torn_bytes, 0u);
}

TEST(WalScanTest, TornTailToleratedOnlyInFinalSegment) {
  std::string full = durability::EncodeWalRecord(1, "payload");
  for (size_t cut = 1; cut < full.size(); ++cut) {
    std::string torn = durability::EncodeWalRecord(0, "ok") +
                       full.substr(0, full.size() - cut);
    WalScan scan = Unwrap(
        durability::ScanWalSegment(torn, "seg", /*tolerate_torn_tail=*/true));
    ASSERT_EQ(scan.records.size(), 1u) << "cut " << cut;
    EXPECT_EQ(scan.torn_bytes, full.size() - cut) << "cut " << cut;
    // The same bytes in a NON-final segment are corruption.
    EXPECT_FALSE(durability::ScanWalSegment(torn, "seg", false).ok());
  }
}

TEST(WalScanTest, ChecksumMismatchOnCompleteFrameIsLoudEvenAtTheEnd) {
  std::string data = durability::EncodeWalRecord(1, "payload");
  data[data.size() - 1] ^= 0x40;  // flip a payload bit, frame stays complete
  Status s =
      durability::ScanWalSegment(data, "seg", /*tolerate_torn_tail=*/true)
          .status();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("checksum mismatch"), std::string::npos);
}

TEST(WalScanTest, NonIncreasingSeqIsCorruption) {
  std::string data = durability::EncodeWalRecord(3, "a") +
                     durability::EncodeWalRecord(3, "b");
  EXPECT_FALSE(durability::ScanWalSegment(data, "seg", true).ok());
}

TEST(WalScanTest, ImpossibleLengthIsCorruption) {
  std::string data(8, '\0');  // len = 0 < the 8 seq bytes every body holds
  EXPECT_FALSE(durability::ScanWalSegment(data, "seg", true).ok());
}

TEST(WalHandleTest, AppendCommitAbortCycle) {
  MemFs fs;
  ASSERT_TRUE(fs.WriteFile("w", "").ok());
  Wal wal(&fs, "w", SyncPolicy::kEveryBatch, 0, 0);

  ASSERT_TRUE(wal.Append(1, "keep").ok());
  // Double-append without resolving the pending record is a misuse.
  EXPECT_FALSE(wal.Append(2, "oops").ok());
  uint64_t bytes = 0;
  bool synced = false;
  ASSERT_TRUE(wal.Commit(&bytes, &synced).ok());
  EXPECT_GT(bytes, 0u);
  EXPECT_TRUE(synced);  // kEveryBatch

  ASSERT_TRUE(wal.Append(2, "drop").ok());
  ASSERT_TRUE(wal.Abort().ok());

  WalScan scan =
      Unwrap(durability::ScanWalSegment(Unwrap(fs.ReadFile("w")), "w", true));
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].payload, "keep");
  EXPECT_EQ(wal.records(), 1);
  EXPECT_EQ(wal.syncs(), 1);
}

TEST(WalHandleTest, SyncPolicies) {
  MemFs fs;
  {
    Wal wal(&fs, "none", SyncPolicy::kNone, 0, 0);
    for (uint64_t i = 1; i <= 3; ++i) {
      ASSERT_TRUE(wal.Append(i, "x").ok());
      ASSERT_TRUE(wal.Commit(nullptr, nullptr).ok());
    }
    EXPECT_EQ(wal.syncs(), 0);
  }
  {
    // kEveryBytes: the threshold spans two records here, so 4 commits
    // produce 2 syncs.
    uint64_t record = durability::EncodeWalRecord(1, "x").size();
    Wal wal(&fs, "bytes", SyncPolicy::kEveryBytes, 2 * record, 0);
    for (uint64_t i = 1; i <= 4; ++i) {
      ASSERT_TRUE(wal.Append(i, "x").ok());
      ASSERT_TRUE(wal.Commit(nullptr, nullptr).ok());
    }
    EXPECT_EQ(wal.syncs(), 2);
  }
}

// ---- Checkpoint codec -----------------------------------------------------

CheckpointMeta SampleMeta() {
  CheckpointMeta meta;
  meta.epoch = 42;
  meta.ext_counter = -7;
  meta.program_crc = 0xDEADBEEF;
  meta.wal_offset = 12345;
  meta.atoms = 9;
  return meta;
}

TEST(CheckpointCodecTest, RoundTrip) {
  std::string file =
      durability::EncodeCheckpoint(SampleMeta(), "a(X0) <- X0 = 1 @ <1> # 0\n");
  std::string body;
  CheckpointMeta meta = Unwrap(durability::DecodeCheckpoint(file, &body));
  EXPECT_EQ(meta.epoch, 42u);
  EXPECT_EQ(meta.ext_counter, -7);
  EXPECT_EQ(meta.program_crc, 0xDEADBEEFu);
  EXPECT_EQ(meta.wal_offset, 12345u);
  EXPECT_EQ(meta.atoms, 9u);
  EXPECT_EQ(body, "a(X0) <- X0 = 1 @ <1> # 0\n");
}

TEST(CheckpointCodecTest, AnySingleBitFlipIsDetected) {
  std::string file = durability::EncodeCheckpoint(SampleMeta(), "body line\n");
  std::string body;
  for (size_t i = 0; i < file.size(); ++i) {
    std::string flipped = file;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x08);
    EXPECT_FALSE(durability::DecodeCheckpoint(flipped, &body).ok())
        << "flip at byte " << i << " went undetected";
  }
}

TEST(CheckpointCodecTest, EveryTruncationIsDetected) {
  std::string file = durability::EncodeCheckpoint(SampleMeta(), "body\n");
  std::string body;
  for (size_t keep = 0; keep < file.size(); ++keep) {
    EXPECT_FALSE(
        durability::DecodeCheckpoint(file.substr(0, keep), &body).ok())
        << "truncation to " << keep << " bytes went undetected";
  }
}

TEST(CheckpointCodecTest, FileNamesRoundTripAndRejectForeignNames) {
  EXPECT_EQ(Unwrap(durability::ParseCheckpointFileName(
                durability::CheckpointFileName(37))),
            37u);
  EXPECT_EQ(Unwrap(durability::ParseWalSegmentFileName(
                durability::WalSegmentFileName(0))),
            0u);
  // Zero padding keeps lexicographic order == numeric order.
  EXPECT_LT(durability::CheckpointFileName(9),
            durability::CheckpointFileName(10));
  EXPECT_FALSE(durability::ParseCheckpointFileName("ckpt-1.mmv.tmp").ok());
  EXPECT_FALSE(durability::ParseCheckpointFileName("wal-1.log").ok());
  EXPECT_FALSE(durability::ParseWalSegmentFileName("notes.txt").ok());
}

durability::DeltaCheckpointMeta SampleDeltaMeta() {
  durability::DeltaCheckpointMeta meta;
  meta.epoch = 43;
  meta.parent = 42;
  meta.ext_counter = -7;
  meta.program_crc = 0xDEADBEEFu;
  meta.wal_offset = 12345;
  meta.atoms = 9;
  return meta;
}

TEST(DeltaCheckpointCodecTest, RoundTrip) {
  std::string body =
      "seg a 1\na(X0) <- X0 = 1 @ <1> # 0\norder keep 0\norder run a 1\n";
  std::string file = durability::EncodeDeltaCheckpoint(SampleDeltaMeta(), body);
  std::string out;
  durability::DeltaCheckpointMeta meta =
      Unwrap(durability::DecodeDeltaCheckpoint(file, &out));
  EXPECT_EQ(meta.epoch, 43u);
  EXPECT_EQ(meta.parent, 42u);
  EXPECT_EQ(meta.ext_counter, -7);
  EXPECT_EQ(meta.program_crc, 0xDEADBEEFu);
  EXPECT_EQ(meta.wal_offset, 12345u);
  EXPECT_EQ(meta.atoms, 9u);
  EXPECT_EQ(out, body);
}

TEST(DeltaCheckpointCodecTest, AnySingleBitFlipIsDetected) {
  std::string file =
      durability::EncodeDeltaCheckpoint(SampleDeltaMeta(), "removed a\n");
  std::string body;
  for (size_t i = 0; i < file.size(); ++i) {
    std::string flipped = file;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x08);
    EXPECT_FALSE(durability::DecodeDeltaCheckpoint(flipped, &body).ok())
        << "flip at byte " << i << " went undetected";
  }
}

TEST(DeltaCheckpointCodecTest, KindsDoNotCrossDecode) {
  // A delta file is not a full checkpoint and vice versa: the magic lines
  // differ, so recovery can never compose the wrong kind.
  std::string body;
  std::string full = durability::EncodeCheckpoint(SampleMeta(), "x\n");
  std::string delta =
      durability::EncodeDeltaCheckpoint(SampleDeltaMeta(), "x\n");
  EXPECT_FALSE(durability::DecodeDeltaCheckpoint(full, &body).ok());
  EXPECT_FALSE(durability::DecodeCheckpoint(delta, &body).ok());
}

TEST(DeltaCheckpointCodecTest, FileNamesRoundTripAndStayDisjoint) {
  EXPECT_EQ(Unwrap(durability::ParseDeltaCheckpointFileName(
                durability::DeltaCheckpointFileName(37))),
            37u);
  // "dckpt-" names never parse as "ckpt-" names and vice versa.
  EXPECT_FALSE(durability::ParseCheckpointFileName(
                   durability::DeltaCheckpointFileName(37))
                   .ok());
  EXPECT_FALSE(durability::ParseDeltaCheckpointFileName(
                   durability::CheckpointFileName(37))
                   .ok());
}

// ---- DurableLog lifecycle -------------------------------------------------

// One small mediator world for the lifecycle tests: a base predicate
// feeding a derived one, duplicate semantics, MemFs storage.
struct LogWorld {
  TestWorld world = TestWorld::Make();
  Program program = ParseOrDie("a(X) <- X = 1. b(X) <- a(X).");
  FixpointOptions fp;
  MemFs fs;
  SnapshotStore snapshots;
  View view;
  std::unique_ptr<DurableLog> log;

  void Start(DurabilityOptions opts = {}) {
    fp.semantics = DupSemantics::kDuplicate;
    view = Unwrap(Materialize(program, world.domains.get(), fp));
    snapshots.Publish(view);  // epoch 1
    log = Unwrap(DurableLog::Create(&fs, "state", program, view,
                                    snapshots.epoch(), 0, opts));
  }

  Status Apply(const std::string& atom_text, bool is_delete,
               maint::BatchStats* stats = nullptr) {
    maint::UpdateAtom atom = ParseUpdate(atom_text, &program);
    std::vector<maint::Update> burst = {
        is_delete ? maint::Update::Delete(std::move(atom))
                  : maint::Update::Insert(std::move(atom))};
    return maint::ApplyBatch(program, &view, burst, world.domains.get(), fp,
                             stats, log->ext_counter(), &snapshots,
                             log.get());
  }
};

TEST(DurableLogTest, CreateWritesInitialCheckpointAndRefusesReuse) {
  LogWorld w;
  w.Start();
  EXPECT_TRUE(
      Unwrap(w.fs.Exists("state/" + durability::CheckpointFileName(1))));
  EXPECT_TRUE(
      Unwrap(w.fs.Exists("state/" + durability::WalSegmentFileName(1))));
  // Re-initializing over live durability state must refuse.
  Status again = DurableLog::Create(&w.fs, "state", w.program, w.view, 1, 0)
                     .status();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists);
}

TEST(DurableLogTest, CommitAndRecoverRoundTrip) {
  LogWorld w;
  w.Start();
  maint::BatchStats stats;
  ASSERT_TRUE(w.Apply("a(X) <- X = 2.", /*is_delete=*/false, &stats).ok());
  EXPECT_EQ(stats.wal_records, 1);
  EXPECT_GT(stats.wal_bytes, 0);
  EXPECT_EQ(stats.wal_syncs, 1);  // default kEveryBatch
  ASSERT_TRUE(w.Apply("a(X) <- X = 1.", /*is_delete=*/true).ok());
  EXPECT_EQ(w.snapshots.epoch(), 3u);
  EXPECT_EQ(w.log->epoch(), 3u);

  SnapshotStore recovered_snapshots;
  RecoveryInfo info;
  std::unique_ptr<DurableLog> recovered = Unwrap(DurableLog::Recover(
      &w.fs, "state", &w.program, w.world.domains.get(), w.fp,
      &recovered_snapshots, &info));
  EXPECT_EQ(info.checkpoint_epoch, 1u);
  EXPECT_EQ(info.recovered_epoch, 3u);
  EXPECT_EQ(info.replayed_bursts, 2);
  EXPECT_EQ(info.replay_stats.recovery_replayed_bursts, 2);
  EXPECT_EQ(info.torn_tail_bytes, 0u);
  EXPECT_EQ(recovered_snapshots.epoch(), 3u);
  EXPECT_EQ(CanonicalState(recovered->TakeRecoveredView()),
            CanonicalState(w.view));
  EXPECT_EQ(*recovered->ext_counter(), *w.log->ext_counter());
}

TEST(DurableLogTest, AbortedBurstLeavesNoRecord) {
  LogWorld w;
  w.Start();
  // Drive the BurstLog protocol directly: a logged-then-aborted burst (the
  // ApplyBatch failure path) must vanish from the segment.
  maint::UpdateAtom atom = ParseUpdate("a(X) <- X = 9.", &w.program);
  std::vector<maint::Update> burst = {maint::Update::Insert(atom)};
  ASSERT_TRUE(w.log->LogBurst(burst).ok());
  w.log->AbortBurst();
  ASSERT_TRUE(w.Apply("a(X) <- X = 2.", /*is_delete=*/false).ok());

  RecoveryInfo info;
  std::unique_ptr<DurableLog> recovered = Unwrap(DurableLog::Recover(
      &w.fs, "state", &w.program, w.world.domains.get(), w.fp, nullptr,
      &info));
  EXPECT_EQ(info.replayed_bursts, 1);  // only the committed burst
  EXPECT_EQ(CanonicalState(recovered->TakeRecoveredView()),
            CanonicalState(w.view));
}

TEST(DurableLogTest, CheckpointCadenceRollsSegmentsAndCollectsGarbage) {
  LogWorld w;
  DurabilityOptions opts;
  opts.checkpoint_every_records = 1;  // checkpoint after every burst
  opts.keep_checkpoints = 2;
  opts.full_checkpoint_interval = 1;  // all-full: exact file set asserted
  w.Start(opts);
  maint::BatchStats stats;
  for (int i = 2; i <= 6; ++i) {
    ASSERT_TRUE(w.Apply("a(X) <- X = " + std::to_string(i) + ".",
                        /*is_delete=*/false, &stats)
                    .ok());
    EXPECT_EQ(stats.checkpoints_written, 1);
  }
  // 1 initial + 5 cadence checkpoints written, 2 retained (epochs 5, 6)
  // with their segments; everything older collected.
  EXPECT_EQ(w.log->checkpoints_written(), 6);
  std::vector<std::string> names = Unwrap(w.fs.List("state"));
  EXPECT_EQ(names, (std::vector<std::string>{
                       durability::CheckpointFileName(5),
                       durability::CheckpointFileName(6),
                       durability::WalSegmentFileName(5),
                       durability::WalSegmentFileName(6)}));

  RecoveryInfo info;
  std::unique_ptr<DurableLog> recovered = Unwrap(DurableLog::Recover(
      &w.fs, "state", &w.program, w.world.domains.get(), w.fp, nullptr,
      &info));
  EXPECT_EQ(info.checkpoint_epoch, 6u);
  EXPECT_EQ(info.recovered_epoch, 6u);
  EXPECT_EQ(info.replayed_bursts, 0);  // the checkpoint already holds all
  EXPECT_EQ(CanonicalState(recovered->TakeRecoveredView()),
            CanonicalState(w.view));
}

TEST(DurableLogTest, DeltaCadenceWritesFullEveryNthCheckpoint) {
  LogWorld w;
  DurabilityOptions opts;
  opts.checkpoint_every_records = 1;  // checkpoint after every burst
  opts.full_checkpoint_interval = 4;
  w.Start(opts);
  // Create wrote the full image at epoch 1; the next three cadence
  // checkpoints are deltas, the fourth (epoch 5) is full again.
  for (int i = 2; i <= 6; ++i) {
    maint::BatchStats stats;
    ASSERT_TRUE(w.Apply("a(X) <- X = " + std::to_string(i) + ".",
                        /*is_delete=*/false, &stats)
                    .ok());
    EXPECT_EQ(stats.checkpoints_written, 1);
    const bool wrote_full = i == 5;
    EXPECT_EQ(stats.checkpoint_delta_bytes > 0, !wrote_full)
        << "epoch " << i;
  }
  EXPECT_EQ(w.log->checkpoints_written(), 6);
  EXPECT_EQ(w.log->delta_checkpoints_written(), 4);  // epochs 2, 3, 4, 6
  std::vector<std::string> names = Unwrap(w.fs.List("state"));
  EXPECT_EQ(names, (std::vector<std::string>{
                       durability::CheckpointFileName(1),
                       durability::CheckpointFileName(5),
                       durability::DeltaCheckpointFileName(2),
                       durability::DeltaCheckpointFileName(3),
                       durability::DeltaCheckpointFileName(4),
                       durability::DeltaCheckpointFileName(6),
                       durability::WalSegmentFileName(1),
                       durability::WalSegmentFileName(2),
                       durability::WalSegmentFileName(3),
                       durability::WalSegmentFileName(4),
                       durability::WalSegmentFileName(5),
                       durability::WalSegmentFileName(6)}));

  RecoveryInfo info;
  std::unique_ptr<DurableLog> recovered = Unwrap(DurableLog::Recover(
      &w.fs, "state", &w.program, w.world.domains.get(), w.fp, nullptr,
      &info));
  EXPECT_EQ(info.checkpoint_epoch, 6u);       // the delta head at epoch 6
  EXPECT_EQ(info.full_checkpoint_epoch, 5u);  // composed over the full
  EXPECT_EQ(info.delta_checkpoints_composed, 1);
  EXPECT_GT(info.checkpoint_delta_bytes, 0);
  EXPECT_EQ(info.recovered_epoch, 6u);
  EXPECT_EQ(info.replayed_bursts, 0);
  EXPECT_EQ(CanonicalState(recovered->TakeRecoveredView()),
            CanonicalState(w.view));
}

TEST(DurableLogTest, RecoveryComposesAWholeDeltaChain) {
  LogWorld w;
  DurabilityOptions opts;
  opts.checkpoint_every_records = 1;
  opts.full_checkpoint_interval = 4;
  w.Start(opts);
  // Stop at epoch 4: the newest chain is d4 -> d3 -> d2 -> ckpt1, the
  // longest this cadence produces — recovery composes all three deltas
  // over the full image with nothing left for WAL replay. Mixed shapes:
  // an insert, a delete of an initial atom, another insert.
  ASSERT_TRUE(w.Apply("a(X) <- X = 2.", /*is_delete=*/false).ok());
  ASSERT_TRUE(w.Apply("a(X) <- X = 1.", /*is_delete=*/true).ok());
  ASSERT_TRUE(w.Apply("a(X) <- X = 3.", /*is_delete=*/false).ok());
  RecoveryInfo info;
  SnapshotStore rec_store;
  std::unique_ptr<DurableLog> recovered = Unwrap(DurableLog::Recover(
      &w.fs, "state", &w.program, w.world.domains.get(), w.fp, &rec_store,
      &info));
  EXPECT_EQ(info.checkpoint_epoch, 4u);
  EXPECT_EQ(info.full_checkpoint_epoch, 1u);
  EXPECT_EQ(info.delta_checkpoints_composed, 3);
  EXPECT_EQ(info.replayed_bursts, 0);
  EXPECT_EQ(rec_store.epoch(), 4u);
  View rec_view = recovered->TakeRecoveredView();
  EXPECT_EQ(CanonicalState(rec_view), CanonicalState(w.view));
  // Byte-identity, not just state equality: the composed order must equal
  // the live view's enumeration order exactly.
  EXPECT_EQ(parser::SerializeView(rec_view), parser::SerializeView(w.view));
}

// Regression for the delta frame's changed-predicate diff: a burst whose
// net effect is NOTHING (inserts canceled by deletes in the same batch)
// re-materializes the touched segments — pointer inequality alone would
// serialize every one of them into the delta frame. The content
// fingerprint proves them unchanged, so the frame carries only order
// bookkeeping: no seg sections, no removed lines.
TEST(DurableLogTest, FullyCancelingBurstEmitsNearEmptyDeltaFrame) {
  LogWorld w;
  DurabilityOptions opts;
  opts.checkpoint_every_records = 1;
  opts.full_checkpoint_interval = 100;  // cadence checkpoints are deltas
  w.Start(opts);
  std::vector<maint::Update> burst;
  for (const char* t : {"a(X) <- X = 10.", "a(X) <- X = 11."}) {
    burst.push_back(maint::Update::Insert(ParseUpdate(t, &w.program)));
  }
  for (const char* t : {"a(X) <- X = 10.", "a(X) <- X = 11."}) {
    burst.push_back(maint::Update::Delete(ParseUpdate(t, &w.program)));
  }
  maint::BatchStats stats;
  Status s = maint::ApplyBatch(w.program, &w.view, burst,
                               w.world.domains.get(), w.fp, &stats,
                               w.log->ext_counter(), &w.snapshots,
                               w.log.get());
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(stats.checkpoints_written, 1);
  std::string file = Unwrap(
      w.fs.ReadFile("state/" + durability::DeltaCheckpointFileName(2)));
  std::string body;
  Unwrap(durability::DecodeDeltaCheckpoint(file, &body));
  EXPECT_EQ(body.find("seg "), std::string::npos)
      << "unchanged-content segment serialized into the delta frame:\n"
      << body;
  EXPECT_EQ(body.find("removed "), std::string::npos) << body;
  // The near-empty frame still recovers the exact view.
  RecoveryInfo info;
  std::unique_ptr<DurableLog> recovered = Unwrap(DurableLog::Recover(
      &w.fs, "state", &w.program, w.world.domains.get(), w.fp, nullptr,
      &info));
  EXPECT_EQ(info.delta_checkpoints_composed, 1);
  EXPECT_EQ(parser::SerializeView(recovered->TakeRecoveredView()),
            parser::SerializeView(w.view));
}

// The longest chain the streaming composer sees in these suites: four
// deltas over one full image, replayed parent-first with each frame's
// bytes released before the next (recovery peak stays O(view), not
// O(view + all frames)). Mixed shapes again, ending on a delete so the
// final frame rewrites the order.
TEST(DurableLogTest, RecoveryComposesAFourDeltaChain) {
  LogWorld w;
  DurabilityOptions opts;
  opts.checkpoint_every_records = 1;
  opts.full_checkpoint_interval = 5;  // fulls at 1 and 6; deltas at 2-5
  w.Start(opts);
  ASSERT_TRUE(w.Apply("a(X) <- X = 2.", /*is_delete=*/false).ok());
  ASSERT_TRUE(w.Apply("a(X) <- X = 1.", /*is_delete=*/true).ok());
  ASSERT_TRUE(w.Apply("a(X) <- X = 3.", /*is_delete=*/false).ok());
  ASSERT_TRUE(w.Apply("a(X) <- X = 2.", /*is_delete=*/true).ok());
  RecoveryInfo info;
  SnapshotStore rec_store;
  std::unique_ptr<DurableLog> recovered = Unwrap(DurableLog::Recover(
      &w.fs, "state", &w.program, w.world.domains.get(), w.fp, &rec_store,
      &info));
  EXPECT_EQ(info.checkpoint_epoch, 5u);
  EXPECT_EQ(info.full_checkpoint_epoch, 1u);
  EXPECT_EQ(info.delta_checkpoints_composed, 4);
  EXPECT_EQ(info.replayed_bursts, 0);
  EXPECT_EQ(rec_store.epoch(), 5u);
  View rec_view = recovered->TakeRecoveredView();
  EXPECT_EQ(CanonicalState(rec_view), CanonicalState(w.view));
  EXPECT_EQ(parser::SerializeView(rec_view), parser::SerializeView(w.view));
}

TEST(DurableLogTest, RetentionFloorsAtTheOldestRetainedFullImage) {
  LogWorld w;
  DurabilityOptions opts;
  opts.checkpoint_every_records = 1;
  opts.full_checkpoint_interval = 4;
  opts.keep_checkpoints = 2;
  w.Start(opts);
  // Run to epoch 9: fulls at 1, 5, 9. The GC at epoch 9 floors at full 5,
  // dropping ckpt-1, the deltas at 2-4 (their chains bottomed at the
  // collected full) and the segments below 5 — while d6-d8, whose chains
  // bottom at the RETAINED full 5, survive.
  for (int i = 2; i <= 9; ++i) {
    ASSERT_TRUE(w.Apply("a(X) <- X = " + std::to_string(i) + ".",
                        /*is_delete=*/false)
                    .ok());
  }
  std::vector<std::string> names = Unwrap(w.fs.List("state"));
  EXPECT_EQ(names, (std::vector<std::string>{
                       durability::CheckpointFileName(5),
                       durability::CheckpointFileName(9),
                       durability::DeltaCheckpointFileName(6),
                       durability::DeltaCheckpointFileName(7),
                       durability::DeltaCheckpointFileName(8),
                       durability::WalSegmentFileName(5),
                       durability::WalSegmentFileName(6),
                       durability::WalSegmentFileName(7),
                       durability::WalSegmentFileName(8),
                       durability::WalSegmentFileName(9)}));
  RecoveryInfo info;
  std::unique_ptr<DurableLog> recovered = Unwrap(DurableLog::Recover(
      &w.fs, "state", &w.program, w.world.domains.get(), w.fp, nullptr,
      &info));
  EXPECT_EQ(info.recovered_epoch, 9u);
  EXPECT_EQ(CanonicalState(recovered->TakeRecoveredView()),
            CanonicalState(w.view));
}

TEST(DurableLogTest, ExplicitFullCheckpointSupersedesSameEpochDelta) {
  LogWorld w;
  DurabilityOptions opts;
  opts.checkpoint_every_records = 1;
  opts.full_checkpoint_interval = 4;
  w.Start(opts);
  ASSERT_TRUE(w.Apply("a(X) <- X = 2.", /*is_delete=*/false).ok());
  // The cadence wrote d2. An explicit full checkpoint at the SAME epoch
  // must replace it — leaving a full+delta pair at one epoch would make
  // the delta a stale shadow of the full.
  ASSERT_TRUE(Unwrap(
      w.fs.Exists("state/" + durability::DeltaCheckpointFileName(2))));
  ASSERT_TRUE(
      w.log->Checkpoint(w.view, DurableLog::CheckpointKind::kFull).ok());
  EXPECT_FALSE(Unwrap(
      w.fs.Exists("state/" + durability::DeltaCheckpointFileName(2))));
  EXPECT_TRUE(
      Unwrap(w.fs.Exists("state/" + durability::CheckpointFileName(2))));
  RecoveryInfo info;
  std::unique_ptr<DurableLog> recovered = Unwrap(DurableLog::Recover(
      &w.fs, "state", &w.program, w.world.domains.get(), w.fp, nullptr,
      &info));
  EXPECT_EQ(info.checkpoint_epoch, 2u);
  EXPECT_EQ(info.delta_checkpoints_composed, 0);
  EXPECT_EQ(CanonicalState(recovered->TakeRecoveredView()),
            CanonicalState(w.view));
}

TEST(DurableLogTest, FallsBackToOlderCheckpointWhenNewestIsCorrupt) {
  LogWorld w;
  DurabilityOptions opts;
  opts.checkpoint_every_records = 2;
  opts.full_checkpoint_interval = 1;  // the test corrupts ckpt-5 by name
  w.Start(opts);
  for (int i = 2; i <= 5; ++i) {
    ASSERT_TRUE(w.Apply("a(X) <- X = " + std::to_string(i) + ".",
                        /*is_delete=*/false)
                    .ok());
  }
  // Checkpoints now at epochs 1 (collected), 3 and 5. Corrupt the newest:
  // recovery must fall back to epoch 3 and REPLAY the bridging records —
  // byte-identical to the uninterrupted state.
  ASSERT_TRUE(
      w.fs.Corrupt("state/" + durability::CheckpointFileName(5), 40, 0x10)
          .ok());
  RecoveryInfo info;
  std::unique_ptr<DurableLog> recovered = Unwrap(DurableLog::Recover(
      &w.fs, "state", &w.program, w.world.domains.get(), w.fp, nullptr,
      &info));
  EXPECT_EQ(info.checkpoints_skipped, 1);
  EXPECT_EQ(info.checkpoint_epoch, 3u);
  EXPECT_EQ(info.recovered_epoch, 5u);
  EXPECT_EQ(info.replayed_bursts, 2);
  EXPECT_EQ(CanonicalState(recovered->TakeRecoveredView()),
            CanonicalState(w.view));
}

TEST(DurableLogTest, RefusesToRecoverBelowTheNewestClaimedEpoch) {
  LogWorld w;
  DurabilityOptions opts;
  opts.checkpoint_every_records = 2;
  opts.full_checkpoint_interval = 1;  // the test corrupts ckpt-5 by name
  w.Start(opts);
  for (int i = 2; i <= 5; ++i) {
    ASSERT_TRUE(w.Apply("a(X) <- X = " + std::to_string(i) + ".",
                        /*is_delete=*/false)
                    .ok());
  }
  // Corrupt the newest checkpoint AND delete the WAL segment bridging from
  // the previous one: falling back would silently lose epochs 4-5, so
  // recovery must fail loudly instead.
  ASSERT_TRUE(
      w.fs.Corrupt("state/" + durability::CheckpointFileName(5), 40, 0x10)
          .ok());
  ASSERT_TRUE(
      w.fs.Remove("state/" + durability::WalSegmentFileName(3)).ok());
  Status s = DurableLog::Recover(&w.fs, "state", &w.program,
                                 w.world.domains.get(), w.fp, nullptr,
                                 nullptr)
                 .status();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("claims epoch"), std::string::npos);
}

TEST(DurableLogTest, RefusesACheckpointFromADifferentProgram) {
  LogWorld w;
  w.Start();
  ASSERT_TRUE(w.Apply("a(X) <- X = 2.", /*is_delete=*/false).ok());
  Program other = ParseOrDie("a(X) <- X = 1. c(X) <- a(X).");
  Status s = DurableLog::Recover(&w.fs, "state", &other,
                                 w.world.domains.get(), w.fp, nullptr,
                                 nullptr)
                 .status();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("fingerprint"), std::string::npos);
}

TEST(DurableLogTest, RecoveryWithNoStateIsNotFound) {
  MemFs fs;
  Program p = ParseOrDie("a(X) <- X = 1.");
  TestWorld world = TestWorld::Make();
  Status s = DurableLog::Recover(&fs, "empty", &p, world.domains.get(), {},
                                 nullptr, nullptr)
                 .status();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(DurableLogTest, LoggingFailureAbortsTheBatchWithTheViewUntouched) {
  LogWorld w;
  w.Start();
  ASSERT_TRUE(w.Apply("a(X) <- X = 2.", /*is_delete=*/false).ok());
  auto before = CanonicalState(w.view);
  uint64_t epoch_before = w.snapshots.epoch();

  // Crash the fs NOW: the next LogBurst's append fails, so ApplyBatch must
  // return the IO error before any maintenance pass ran.
  FaultPlan plan;
  plan.crash_after_writes = 0;
  FaultFs crashed(&w.fs, plan);
  // Rebind the log's fs by recovering into a faulted environment instead:
  // simpler — drive the protocol directly through a log whose fs crashed.
  std::unique_ptr<DurableLog> log = Unwrap(DurableLog::Recover(
      &crashed, "state", &w.program, w.world.domains.get(), w.fp, nullptr,
      nullptr));
  View view = log->TakeRecoveredView();
  maint::UpdateAtom atom = ParseUpdate("a(X) <- X = 3.", &w.program);
  std::vector<maint::Update> burst = {maint::Update::Insert(atom)};
  Status s = maint::ApplyBatch(w.program, &view, burst,
                               w.world.domains.get(), w.fp, nullptr,
                               log->ext_counter(), &w.snapshots, log.get());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(CanonicalState(view), before) << "failed logging mutated the view";
  EXPECT_EQ(w.snapshots.epoch(), epoch_before);
}

TEST(DurableLogTest, RecoveryIsIdempotent) {
  // Recovering twice (a crash during recovery's truncation, then again)
  // lands on the same state.
  LogWorld w;
  w.Start();
  ASSERT_TRUE(w.Apply("a(X) <- X = 2.", /*is_delete=*/false).ok());
  ASSERT_TRUE(w.Apply("b(X) <- X = 7.", /*is_delete=*/false).ok());

  auto recover = [&]() {
    RecoveryInfo info;
    std::unique_ptr<DurableLog> log = Unwrap(DurableLog::Recover(
        &w.fs, "state", &w.program, w.world.domains.get(), w.fp, nullptr,
        &info));
    return std::make_pair(CanonicalState(log->TakeRecoveredView()),
                          info.recovered_epoch);
  };
  auto first = recover();
  auto second = recover();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
  EXPECT_EQ(first.first, CanonicalState(w.view));
}

}  // namespace
}  // namespace mmv
