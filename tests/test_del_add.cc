// Unit tests for Del / Add construction and the instance-negation helpers.

#include <gtest/gtest.h>

#include "test_util.h"

namespace mmv {
namespace {

using testutil::MaterializeOrDie;
using testutil::ParseOrDie;
using testutil::ParseUpdate;
using testutil::TestWorld;
using testutil::Unwrap;

class DelAddTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = TestWorld::Make();
    program_ = ParseOrDie(R"(
      a(X) <- in(X, arith:between(0, 5)).
      b(X) <- X = 7.
    )");
    view_ = MaterializeOrDie(program_, world_.domains.get());
    solver_ = std::make_unique<Solver>(world_.domains.get());
  }
  TestWorld world_;
  Program program_;
  View view_;
  std::unique_ptr<Solver> solver_;
};

TEST_F(DelAddTest, BuildDelFindsOverlaps) {
  maint::UpdateAtom req = ParseUpdate("a(X) <- X = 3.", &program_);
  auto del = Unwrap(maint::BuildDel(view_, req, solver_.get()));
  ASSERT_EQ(del.size(), 1u);
  EXPECT_EQ(view_.atoms()[del[0].atom_index].pred, "a");
  // The deleted part must pin X to 3.
  SolveOutcome o = solver_->Solve(del[0].deleted_part);
  EXPECT_TRUE(IsSolvable(o));
}

TEST_F(DelAddTest, BuildDelSkipsDisjointRequests) {
  maint::UpdateAtom req = ParseUpdate("a(X) <- X = 99.", &program_);
  auto del = Unwrap(maint::BuildDel(view_, req, solver_.get()));
  EXPECT_TRUE(del.empty());
}

TEST_F(DelAddTest, BuildDelRespectsPredicateAndArity) {
  maint::UpdateAtom req = ParseUpdate("zzz(X) <- X = 3.", &program_);
  EXPECT_TRUE(Unwrap(maint::BuildDel(view_, req, solver_.get())).empty());

  maint::UpdateAtom req2 = ParseUpdate("a(X, Y) <- X = 3.", &program_);
  EXPECT_TRUE(Unwrap(maint::BuildDel(view_, req2, solver_.get())).empty());
}

TEST_F(DelAddTest, BuildDelWholeAtomRequest) {
  maint::UpdateAtom req = ParseUpdate("b(X) <- true.", &program_);
  auto del = Unwrap(maint::BuildDel(view_, req, solver_.get()));
  ASSERT_EQ(del.size(), 1u);
}

TEST_F(DelAddTest, BuildAddExcludesExistingInstances) {
  // Insert a(X) <- 3 <= X <= 8: only 6, 7, 8 are new.
  maint::UpdateAtom req =
      ParseUpdate("a(X) <- in(X, arith:between(3, 8)).", &program_);
  int ext = 0;
  auto add = Unwrap(maint::BuildAdd(view_, req, solver_.get(), &ext));
  ASSERT_EQ(add.size(), 1u);
  EXPECT_EQ(add[0].pred, "a");
  EXPECT_LT(add[0].support.clause(), 0);  // external support tag

  query::InstanceSet inst =
      Unwrap(query::EnumerateAtom(add[0], world_.domains.get()));
  std::set<std::string> got;
  for (const auto& i : inst.instances) got.insert(i.ToString());
  EXPECT_EQ(got, (std::set<std::string>{"a(6)", "a(7)", "a(8)"}));
}

TEST_F(DelAddTest, BuildAddFullyCoveredIsEmpty) {
  maint::UpdateAtom req =
      ParseUpdate("a(X) <- in(X, arith:between(1, 4)).", &program_);
  int ext = 0;
  auto add = Unwrap(maint::BuildAdd(view_, req, solver_.get(), &ext));
  EXPECT_TRUE(add.empty());
}

TEST_F(DelAddTest, ExternalSupportsAreUnique) {
  maint::UpdateAtom r1 = ParseUpdate("c(X) <- X = 1.", &program_);
  maint::UpdateAtom r2 = ParseUpdate("c(X) <- X = 2.", &program_);
  int ext = 0;
  auto a1 = Unwrap(maint::BuildAdd(view_, r1, solver_.get(), &ext));
  auto a2 = Unwrap(maint::BuildAdd(view_, r2, solver_.get(), &ext));
  ASSERT_EQ(a1.size(), 1u);
  ASSERT_EQ(a2.size(), 1u);
  EXPECT_NE(a1[0].support, a2[0].support);
}

TEST_F(DelAddTest, NegatedInstanceBlockSubstitutesHeadVars) {
  // Block for "target X0 is an instance of a(Y) <- Y = 3".
  VarFactory f;
  f.ReserveAbove(100);
  Constraint src;
  src.Add(Primitive::Eq(Term::Var(50), Term::Const(Value(3))));
  NotBlock block = maint::NegatedInstanceBlock(
      {Term::Var(0)}, {Term::Var(50)}, src, &f);
  ASSERT_EQ(block.prims.size(), 1u);
  EXPECT_EQ(block.prims[0].lhs, Term::Var(0));  // substituted, not bridged
}

TEST_F(DelAddTest, InstanceConstraintHandlesConstantsAndRepeats) {
  VarFactory f;
  f.ReserveAbove(100);
  // src atom p(Y, Y, 7) with empty constraint against target (X0, X1, X2).
  Constraint c = maint::InstanceConstraint(
      {Term::Var(0), Term::Var(1), Term::Var(2)},
      {Term::Var(50), Term::Var(50), Term::Const(Value(7))},
      Constraint::True(), &f);
  // Expect X1 = X0 (repeat) and X2 = 7 (constant position).
  ASSERT_EQ(c.prims().size(), 2u);
}

TEST_F(DelAddTest, PruneUnsolvableDropsFalseAtoms) {
  View v = view_;
  ViewAtom dead;
  dead.pred = "x";
  dead.constraint = Constraint::False();
  dead.support = Support(-5);
  v.Add(dead);
  ViewAtom unsat;
  unsat.pred = "y";
  unsat.args = {Term::Var(0)};
  unsat.constraint.Add(Primitive::Eq(Term::Var(0), Term::Const(Value(1))));
  unsat.constraint.Add(Primitive::Eq(Term::Var(0), Term::Const(Value(2))));
  unsat.support = Support(-6);
  v.Add(unsat);

  size_t removed = maint::PruneUnsolvable(&v, solver_.get());
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(v.size(), view_.size());
}

TEST_F(DelAddTest, FreshFactoryIsAboveEverything) {
  maint::UpdateAtom req = ParseUpdate("a(X) <- X = 3.", &program_);
  VarFactory f = maint::FreshFactory(program_, view_, &req);
  VarId fresh = f.Fresh();
  for (const ViewAtom& a : view_.atoms()) {
    for (VarId v : a.constraint.Variables()) EXPECT_GT(fresh, v);
  }
  for (const Clause& c : program_.clauses()) {
    for (VarId v : c.Variables()) EXPECT_GT(fresh, v);
  }
}

}  // namespace
}  // namespace mmv
