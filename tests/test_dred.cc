// Unit tests for the Extended DRed algorithm (Algorithm 1).

#include <gtest/gtest.h>

#include "maintenance/dred_constrained.h"
#include "maintenance/rewrite.h"
#include "maintenance/stdel.h"
#include "test_util.h"
#include "workload/generators.h"

namespace mmv {
namespace {

using testutil::Instances;
using testutil::InstancesOf;
using testutil::ParseOrDie;
using testutil::ParseUpdate;
using testutil::TestWorld;
using testutil::Unwrap;

FixpointOptions SetSemantics() {
  FixpointOptions opts;
  opts.semantics = DupSemantics::kSet;
  return opts;
}

void ExpectDRedMatchesOracle(const Program& program,
                             const maint::UpdateAtom& req, TestWorld& world,
                             maint::DRedStats* stats = nullptr) {
  FixpointOptions opts = SetSemantics();
  View view = Unwrap(Materialize(program, world.domains.get(), opts));
  View result = Unwrap(maint::DeleteDRed(program, view, req,
                                         world.domains.get(), opts, stats));
  View oracle = Unwrap(maint::RecomputeAfterDeletion(
      program, req, world.domains.get(), opts));
  EXPECT_EQ(Instances(result, world.domains.get()),
            Instances(oracle, world.domains.get()));
}

TEST(DRedTest, NoOpWhenNothingMatches) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("a(X) <- X = 1. b(X) <- a(X).");
  FixpointOptions opts = SetSemantics();
  View view = Unwrap(Materialize(p, w.domains.get(), opts));
  maint::UpdateAtom req = ParseUpdate("a(X) <- X = 9.", &p);
  maint::DRedStats stats;
  View result = Unwrap(
      maint::DeleteDRed(p, view, req, w.domains.get(), opts, &stats));
  EXPECT_EQ(result.size(), view.size());
  EXPECT_EQ(stats.del_elements, 0u);
  EXPECT_EQ(stats.pout_atoms, 0u);
}

TEST(DRedTest, ChainDeletion) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeChain(4, 3);
  maint::UpdateAtom req = workload::DeleteFactRequest(p, 0);
  maint::DRedStats stats;
  ExpectDRedMatchesOracle(p, req, w, &stats);
  // P_OUT covers one atom per level.
  EXPECT_EQ(stats.pout_atoms, 5u);
  EXPECT_GT(stats.rederive_derivations, 0);
}

TEST(DRedTest, DiamondRederivesAlternativeProof) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeDiamond(2, 2);
  FixpointOptions opts = SetSemantics();
  View view = Unwrap(Materialize(p, w.domains.get(), opts));

  maint::UpdateAtom req = ParseUpdate("l(X) <- X = 0.", &p);
  maint::DRedStats stats;
  View result = Unwrap(
      maint::DeleteDRed(p, view, req, w.domains.get(), opts, &stats));
  // m(0) survives through r.
  auto m = InstancesOf(result, "m", w.domains.get());
  EXPECT_EQ(m.count("m(0)"), 1u);
  EXPECT_EQ(InstancesOf(result, "l", w.domains.get()).count("l(0)"), 0u);

  View oracle = Unwrap(maint::RecomputeAfterDeletion(
      p, req, w.domains.get(), opts));
  EXPECT_EQ(Instances(result, w.domains.get()),
            Instances(oracle, w.domains.get()));
}

TEST(DRedTest, IntervalDeletion) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    a(X) <- in(X, arith:between(0, 9)).
    b(X) <- a(X).
  )");
  maint::UpdateAtom req =
      ParseUpdate("a(X) <- in(X, arith:between(2, 4)).", &p);
  ExpectDRedMatchesOracle(p, req, w);
}

TEST(DRedTest, RecursiveTC) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeTransitiveClosure(workload::ChainEdges(4));
  maint::UpdateAtom req = ParseUpdate("e(X, Y) <- X = 1 & Y = 2.", &p);
  ExpectDRedMatchesOracle(p, req, w);
}

TEST(DRedTest, PrunesUnaffectedClauses) {
  TestWorld w = TestWorld::Make();
  // Two independent chains; deleting from one must not rerun the other.
  Program p = ParseOrDie(R"(
    a(X) <- X = 1.
    a2(X) <- a(X).
    z(X) <- X = 2.
    z2(X) <- z(X).
  )");
  FixpointOptions opts = SetSemantics();
  View view = Unwrap(Materialize(p, w.domains.get(), opts));
  maint::UpdateAtom req = ParseUpdate("a(X) <- X = 1.", &p);
  maint::DRedStats stats;
  View result = Unwrap(
      maint::DeleteDRed(p, view, req, w.domains.get(), opts, &stats));
  // The z clauses were pruned from P''.
  EXPECT_EQ(stats.pruned_clauses, 2u);
  EXPECT_EQ(InstancesOf(result, "z2", w.domains.get()).size(), 1u);
  EXPECT_TRUE(InstancesOf(result, "a2", w.domains.get()).empty());
}

TEST(DRedTest, PhaseTimersPopulated) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeChain(3, 3);
  FixpointOptions opts = SetSemantics();
  View view = Unwrap(Materialize(p, w.domains.get(), opts));
  maint::UpdateAtom req = workload::DeleteFactRequest(p, 0);
  maint::DRedStats stats;
  (void)Unwrap(maint::DeleteDRed(p, view, req, w.domains.get(), opts,
                                 &stats));
  EXPECT_GE(stats.unfold_ms, 0.0);
  EXPECT_GE(stats.overestimate_ms, 0.0);
  EXPECT_GE(stats.rederive_ms, 0.0);
  EXPECT_GT(stats.atoms_overestimated, 0u);
}

TEST(DRedTest, SequentialDeletions) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    a(X) <- in(X, arith:between(0, 5)).
    b(X) <- a(X).
  )");
  FixpointOptions opts = SetSemantics();
  View view = Unwrap(Materialize(p, w.domains.get(), opts));
  for (int k = 0; k < 3; ++k) {
    maint::UpdateAtom req = ParseUpdate(
        "a(X) <- X = " + std::to_string(k) + ".", &p);
    view = Unwrap(
        maint::DeleteDRed(p, view, req, w.domains.get(), opts));
    // A deletion changes the view definition: thread the rewritten program
    // into subsequent updates so rederivation cannot resurrect instances
    // (see DeleteDRed's doc comment).
    p = maint::RewriteForDeletion(p, req);
  }
  EXPECT_EQ(InstancesOf(view, "b", w.domains.get()).size(), 3u);
}

TEST(DRedTest, AgreesWithStDelOnInstances) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeChain(3, 4);
  maint::UpdateAtom req = workload::DeleteFactRequest(p, 2);

  FixpointOptions set_opts = SetSemantics();
  View dred_in = Unwrap(Materialize(p, w.domains.get(), set_opts));
  View dred_out = Unwrap(
      maint::DeleteDRed(p, dred_in, req, w.domains.get(), set_opts));

  View stdel_view = Unwrap(Materialize(p, w.domains.get(), {}));
  ASSERT_TRUE(
      maint::DeleteStDel(p, &stdel_view, req, w.domains.get()).ok());

  EXPECT_EQ(Instances(dred_out, w.domains.get()),
            Instances(stdel_view, w.domains.get()));
}

}  // namespace
}  // namespace mmv
